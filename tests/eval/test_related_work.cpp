// Table XI normalization math.
#include "eval/related_work.hpp"

#include <gtest/gtest.h>

#include "eval/report.hpp"
#include "physical/area_model.hpp"

namespace cofhee::eval {
namespace {

TEST(RelatedWork, CofheeEfficiencyReproducesPaper) {
  // 53,248 butterfly cycles at 250 MHz, PE area from the area model,
  // 55nm -> 12nm Barrett-resynthesis scaling => 4.54e-4 (paper value).
  physical::AreaModel am;
  const double eff = cofhee_efficiency(53248, 250.0, am.pe_area_mm2(), {});
  EXPECT_NEAR(eff, 4.54e-4, 4.54e-4 * 0.01);
}

TEST(RelatedWork, SpeedupsMatchSectionVii) {
  physical::AreaModel am;
  const double eff = cofhee_efficiency(53248, 250.0, am.pe_area_mm2(), {});
  const struct {
    const char* name;
    double paper;
  } cmp[] = {{"F1", 6.3}, {"CraterLake", 1.39}, {"BTS", 46.19}, {"ARK", 4.72}};
  for (const auto& c : cmp) {
    for (const auto& d : published_table()) {
      if (d.name == c.name) {
        EXPECT_NEAR(eff / d.efficiency, c.paper, c.paper * 0.02) << c.name;
      }
    }
  }
}

TEST(RelatedWork, RnsTowerArithmetic) {
  EXPECT_EQ(rns_towers(128, 128), 1u);
  EXPECT_EQ(rns_towers(64, 128), 2u);
  EXPECT_EQ(rns_towers(32, 128), 4u);
  EXPECT_EQ(rns_towers(28, 128), 5u);
  EXPECT_EQ(rns_towers(27, 128), 5u);
}

TEST(RelatedWork, TableRowsCompleteAndCoFheeOnlySilicon) {
  const auto rows = published_table();
  ASSERT_EQ(rows.size(), 7u);
  unsigned silicon = 0;
  for (const auto& d : rows) {
    if (d.silicon_proven) {
      ++silicon;
      EXPECT_EQ(d.name, "CoFHEE");  // the paper's headline claim
    }
  }
  EXPECT_EQ(silicon, 1u);
}

TEST(RelatedWork, NormalizationDirections) {
  // Scaling down the node must raise efficiency; larger area lowers it.
  NormalizationFactors nf;
  const double base = cofhee_efficiency(53248, 250.0, 0.64, nf);
  nf.area_scale *= 2;
  EXPECT_GT(cofhee_efficiency(53248, 250.0, 0.64, nf), base);
  EXPECT_LT(cofhee_efficiency(53248, 250.0, 1.28, {}), base);
  EXPECT_LT(cofhee_efficiency(2 * 53248, 250.0, 0.64, {}), base);
}

TEST(ReportHelpers, TableAndFormatting) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_sci(0.000454, 2), "4.54e-04");
  EXPECT_EQ(pct_err(110, 100), "10.00%");
  EXPECT_EQ(pct_err(1, 0), "n/a");
  Table t({"a", "b"});
  t.row({"x", "y"});
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("| x"), std::string::npos);
}

}  // namespace
}  // namespace cofhee::eval
