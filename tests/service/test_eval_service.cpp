// Differential battery for the evaluation service: every (strategy, chip
// count, batch size) combination must produce ciphertexts byte-identical
// to the serial software path -- every tower of every component equal, not
// merely decrypting to the same plaintext -- plus stats accounting and
// graceful-shutdown behavior.
#include "service/eval_service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "bfv/encoder.hpp"

namespace cofhee::service {
namespace {

struct ServiceFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/17};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc{scheme.context()};

  // A fixed request mix (products stay inside |x*y| < t/2) with the serial
  // software reference computed once up front.
  std::vector<std::pair<std::int64_t, std::int64_t>> plains = {
      {0, 1}, {1, 1}, {-1, 7}, {2, 3}, {255, -128}, {-181, 181}};
  std::vector<EvalMultRequest> requests;
  std::vector<bfv::Ciphertext> expected;

  ServiceFixture() {
    for (const auto& [x, y] : plains) {
      EvalMultRequest r{scheme.encrypt(pk, enc.encode(x)),
                        scheme.encrypt(pk, enc.encode(y))};
      expected.push_back(scheme.multiply(r.a, r.b));
      requests.push_back(std::move(r));
    }
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

TEST(EvalService, DifferentialMatrixIsBitExact) {
  ServiceFixture f;
  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    for (std::size_t chips : {1u, 2u, 4u}) {
      for (std::size_t batch : {1u, 4u, 16u}) {
        SCOPED_TRACE("strategy=" + std::to_string(static_cast<int>(strategy)) +
                     " chips=" + std::to_string(chips) +
                     " batch=" + std::to_string(batch));
        ChipFarm farm(chips);
        EvalService svc(f.scheme, farm, {strategy, batch});
        auto futures = svc.submit_batch(f.requests);
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const auto got = futures[i].get();
          expect_bit_exact(got, f.expected[i]);
          EXPECT_EQ(f.enc.decode(f.scheme.decrypt(f.sk, got)),
                    f.plains[i].first * f.plains[i].second);
        }
      }
    }
  }
}

TEST(EvalService, ShardedFourChipsMatchesSerialEvaluator) {
  // The acceptance-criterion configuration spelled out: 4 chips,
  // kShardTowers, vs the single-chip serial ChipBfvEvaluator.
  ServiceFixture f;
  chip::CofheeChip solo;
  driver::ChipBfvEvaluator serial(solo);
  ChipFarm farm(4);
  EvalService svc(f.scheme, farm, {Strategy::kShardTowers});
  auto futures = svc.submit_batch(f.requests);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto want = serial.multiply(f.scheme, f.requests[i].a, f.requests[i].b);
    expect_bit_exact(futures[i].get(), want);
  }
}

TEST(EvalService, SerialDispatchMatchesPooled) {
  ServiceFixture f;
  std::vector<bfv::Ciphertext> pooled, serial;
  for (bool pool : {true, false}) {
    ChipFarm farm(3);
    EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, 4, pool});
    auto futures = svc.submit_batch(f.requests);
    for (auto& fu : futures) (pool ? pooled : serial).push_back(fu.get());
  }
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < pooled.size(); ++i)
    expect_bit_exact(pooled[i], serial[i]);
}

TEST(EvalService, StatsAccountTheWork) {
  ServiceFixture f;
  const std::size_t chips = 2;
  ChipFarm farm(chips);
  EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, f.requests.size()});
  auto futures = svc.submit_batch(f.requests);
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s = svc.stats();

  const std::size_t towers = f.scheme.context().ext_basis().size();
  EXPECT_EQ(s.submitted, f.requests.size());
  EXPECT_EQ(s.completed, f.requests.size());
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_GE(s.peak_queue_depth, f.requests.size());
  EXPECT_GT(s.io_seconds, 0.0);
  EXPECT_GT(s.compute_seconds, 0.0);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GT(s.simulated_requests_per_sec(), 0.0);
  ASSERT_EQ(s.per_chip.size(), chips);
  std::uint64_t reqs = 0, tower_runs = 0;
  for (std::size_t c = 0; c < chips; ++c) {
    reqs += s.per_chip[c].requests;
    tower_runs += s.per_chip[c].tower_runs;
    EXPECT_GE(s.utilization(c), 0.0);
  }
  EXPECT_EQ(reqs, f.requests.size());
  EXPECT_EQ(tower_runs, f.requests.size() * towers);
}

TEST(EvalService, BatchingAmortizesRingConfiguration) {
  // The whole point of submit_batch: one session ring-configures each tower
  // once for the group, so the batched service pays fewer reconfigurations
  // -- and strictly less serial-link time -- than one-request-per-session.
  ServiceFixture f;
  auto run = [&](std::size_t max_batch) {
    ChipFarm farm(1);
    EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, max_batch});
    auto futures = svc.submit_batch(f.requests);
    for (auto& fu : futures) (void)fu.get();
    svc.drain();
    return svc.stats();
  };
  const auto batched = run(f.requests.size());
  const auto serial = run(1);
  const std::size_t towers = f.scheme.context().ext_basis().size();
  EXPECT_EQ(batched.per_chip[0].ring_configs, towers);
  EXPECT_EQ(serial.per_chip[0].ring_configs, towers * f.requests.size());
  EXPECT_LT(batched.io_seconds, serial.io_seconds);
  EXPECT_GT(batched.simulated_requests_per_sec(),
            serial.simulated_requests_per_sec());
}

TEST(EvalService, ShutdownDrainsTheQueue) {
  ServiceFixture f;
  ChipFarm farm(2);
  std::vector<std::future<bfv::Ciphertext>> futures;
  {
    EvalService svc(f.scheme, farm, {Strategy::kShardTowers, 2});
    futures = svc.submit_batch(f.requests);
    svc.shutdown();  // must complete every accepted request first
    EXPECT_THROW((void)svc.submit({f.requests[0].a, f.requests[0].b}),
                 std::runtime_error);
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    expect_bit_exact(futures[i].get(), f.expected[i]);
}

TEST(EvalService, MalformedRequestsAreRejectedWithoutPoisoningOthers) {
  ServiceFixture f;
  ChipFarm farm(2);
  EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, 8});
  // 3-element ciphertext (un-relinearized product) is rejected at submit.
  EXPECT_THROW((void)svc.submit({f.expected[0], f.requests[0].b}),
               std::invalid_argument);
  auto ok = svc.submit({f.requests[1].a, f.requests[1].b});
  expect_bit_exact(ok.get(), f.expected[1]);
  svc.drain();  // the round's stats post after its promises are fulfilled
  const auto s = svc.stats();
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(ChipFarm, RejectsEmptyFarmAndOversizedRing) {
  EXPECT_THROW(ChipFarm(0), std::invalid_argument);
  bfv::Bfv big(bfv::BfvParams::create(1u << 14, {54, 55}, 65537), 1);
  ChipFarm farm(1);  // bank_words = 2^14 -> n up to 2^13 in 2 slots
  EXPECT_THROW(EvalService(big, farm), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::service
