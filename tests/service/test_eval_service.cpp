// Differential battery for the evaluation service: every (strategy, chip
// count, batch size) combination must produce ciphertexts byte-identical
// to the serial software path -- every tower of every component equal, not
// merely decrypting to the same plaintext -- plus stats accounting and
// graceful-shutdown behavior.
#include "service/eval_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bfv/encoder.hpp"

namespace cofhee::service {
namespace {

struct ServiceFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/17};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  // A fixed request mix (products stay inside |x*y| < t/2) with the serial
  // software reference computed once up front.
  std::vector<std::pair<std::int64_t, std::int64_t>> plains = {
      {0, 1}, {1, 1}, {-1, 7}, {2, 3}, {255, -128}, {-181, 181}};
  std::vector<EvalMultRequest> requests;
  std::vector<bfv::Ciphertext> expected;

  ServiceFixture() {
    for (const auto& [x, y] : plains) {
      EvalMultRequest r{scheme.encrypt(pk, enc.encode(x)),
                        scheme.encrypt(pk, enc.encode(y))};
      expected.push_back(scheme.multiply(r.a, r.b));
      requests.push_back(std::move(r));
    }
  }

  /// The same traffic re-expressed for `kind`, with its software reference.
  std::vector<EvalRequest> requests_of(RequestKind kind) const {
    std::vector<EvalRequest> out;
    for (const auto& r : requests) {
      if (kind == RequestKind::kRelinearize) {
        out.push_back({scheme.multiply(r.a, r.b), {}, kind});
      } else {
        out.push_back({r.a, r.b, kind});
      }
    }
    return out;
  }
  bfv::Ciphertext expected_of(RequestKind kind, std::size_t i) const {
    if (kind == RequestKind::kEvalMult) return expected[i];
    return scheme.relinearize(expected[i], rk);  // relin and mult+relin agree
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

TEST(EvalService, DifferentialMatrixIsBitExact) {
  ServiceFixture f;
  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    for (std::size_t chips : {1u, 2u, 4u}) {
      for (std::size_t batch : {1u, 4u, 16u}) {
        SCOPED_TRACE("strategy=" + std::to_string(static_cast<int>(strategy)) +
                     " chips=" + std::to_string(chips) +
                     " batch=" + std::to_string(batch));
        ChipFarm farm(chips);
        EvalService svc(f.scheme, farm, {strategy, batch});
        auto futures = svc.submit_batch(f.requests);
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const auto got = futures[i].get();
          expect_bit_exact(got, f.expected[i]);
          EXPECT_EQ(f.enc.decode(f.scheme.decrypt(f.sk, got)),
                    f.plains[i].first * f.plains[i].second);
        }
      }
    }
  }
}

TEST(EvalService, RequestKindMatrixIsBitExact) {
  // The acceptance matrix: 3 request kinds x 2 strategies x 1/2/4 chips,
  // every result byte-identical to the serial software path.
  ServiceFixture f;
  ServiceOptions base;
  base.relin_keys = &f.rk;
  base.max_batch = 4;
  for (RequestKind kind : {RequestKind::kEvalMult, RequestKind::kRelinearize,
                           RequestKind::kMultRelin}) {
    const auto reqs = f.requests_of(kind);
    for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
      for (std::size_t chips : {1u, 2u, 4u}) {
        SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                     " strategy=" + std::to_string(static_cast<int>(strategy)) +
                     " chips=" + std::to_string(chips));
        ChipFarm farm(chips);
        ServiceOptions opts = base;
        opts.strategy = strategy;
        EvalService svc(f.scheme, farm, opts);
        auto futures = svc.submit_batch(reqs);
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const auto got = futures[i].get();
          expect_bit_exact(got, f.expected_of(kind, i));
          EXPECT_EQ(f.enc.decode(f.scheme.decrypt(f.sk, got)),
                    f.plains[i].first * f.plains[i].second);
        }
      }
    }
  }
}

TEST(EvalService, MixedKindRoundIsBitExact) {
  // One dispatcher round carrying all three kinds at once: the chip stage
  // runs the tensor sub-stage for mult/mult-relin slots and the key-switch
  // sub-stage for relin/mult-relin slots without cross-talk.
  ServiceFixture f;
  std::vector<EvalRequest> reqs;
  std::vector<bfv::Ciphertext> want;
  for (std::size_t i = 0; i < f.requests.size(); ++i) {
    const auto kind = static_cast<RequestKind>(i % 3);
    auto all = f.requests_of(kind);
    reqs.push_back(all[i]);
    want.push_back(f.expected_of(kind, i));
  }
  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    ChipFarm farm(2);
    ServiceOptions opts;
    opts.strategy = strategy;
    opts.max_batch = reqs.size();
    opts.relin_keys = &f.rk;
    EvalService svc(f.scheme, farm, opts);
    auto futures = svc.submit_batch(reqs);
    for (std::size_t i = 0; i < futures.size(); ++i)
      expect_bit_exact(futures[i].get(), want[i]);
  }
}

TEST(EvalService, OverlappedRoundsMatchSequentialRounds) {
  // Double-buffering changes scheduling only: with overlap on, trickled
  // rounds must still produce byte-identical ciphertexts, and the stats
  // must show the pipeline actually engaged.
  ServiceFixture f;
  const auto reqs = f.requests_of(RequestKind::kMultRelin);
  std::vector<bfv::Ciphertext> got_overlap, got_serial;
  for (bool overlap : {true, false}) {
    ChipFarm farm(2);
    ServiceOptions opts;
    opts.max_batch = 1;  // one request per round -> many rounds to pipeline
    opts.relin_keys = &f.rk;
    opts.overlap_rounds = overlap;
    EvalService svc(f.scheme, farm, opts);
    std::vector<std::future<bfv::Ciphertext>> futures;
    for (const auto& r : reqs) futures.push_back(svc.submit(r));
    for (auto& fu : futures)
      (overlap ? got_overlap : got_serial).push_back(fu.get());
    svc.drain();
    const auto s = svc.stats();
    EXPECT_EQ(s.completed, reqs.size());
    EXPECT_GT(s.pipeline_span_seconds, 0.0);
    EXPECT_GT(s.serial_span_seconds, 0.0);
    if (overlap) {
      // Not every round is guaranteed to overlap (the queue may run dry
      // between submissions), but the span model must never exceed the
      // back-to-back schedule.
      EXPECT_LE(s.pipeline_span_seconds, s.serial_span_seconds + 1e-12);
    } else {
      EXPECT_EQ(s.overlapped_rounds, 0u);
      EXPECT_NEAR(s.pipeline_span_seconds, s.serial_span_seconds, 1e-12);
    }
  }
  ASSERT_EQ(got_overlap.size(), got_serial.size());
  for (std::size_t i = 0; i < got_overlap.size(); ++i)
    expect_bit_exact(got_overlap[i], got_serial[i]);
}

TEST(EvalService, PipelineModelShowsOverlapOnBackloggedTraffic) {
  // With the whole workload queued up front and max_batch=1, every round
  // after the first is prepared while its predecessor's chip stage is in
  // flight -- the deterministic span model must come out strictly shorter
  // than the back-to-back schedule.
  ServiceFixture f;
  const auto reqs = f.requests_of(RequestKind::kMultRelin);
  ChipFarm farm(1);
  ServiceOptions opts;
  opts.max_batch = 1;
  opts.relin_keys = &f.rk;
  opts.overlap_rounds = true;
  EvalService svc(f.scheme, farm, opts);
  auto futures = svc.submit_batch(reqs);  // atomic: queue is backlogged
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s = svc.stats();
  EXPECT_EQ(s.rounds, reqs.size());
  EXPECT_GE(s.overlapped_rounds, reqs.size() - 1);
  EXPECT_LT(s.pipeline_span_seconds, s.serial_span_seconds);
  EXPECT_GT(s.overlap_saved_seconds(), 0.0);
  EXPECT_GT(s.chip_occupancy(), 0.0);
  EXPECT_GT(s.e2e_requests_per_sec(), 0.0);
}

TEST(EvalService, ShardedFourChipsMatchesSerialEvaluator) {
  // The acceptance-criterion configuration spelled out: 4 chips,
  // kShardTowers, vs the single-chip serial ChipBfvEvaluator.
  ServiceFixture f;
  chip::CofheeChip solo;
  driver::ChipBfvEvaluator serial(solo);
  ChipFarm farm(4);
  EvalService svc(f.scheme, farm, {Strategy::kShardTowers});
  auto futures = svc.submit_batch(f.requests);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto want = serial.multiply(f.scheme, f.requests[i].a, f.requests[i].b);
    expect_bit_exact(futures[i].get(), want);
  }
}

TEST(EvalService, SerialDispatchMatchesPooled) {
  ServiceFixture f;
  std::vector<bfv::Ciphertext> pooled, serial;
  for (bool pool : {true, false}) {
    ChipFarm farm(3);
    EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, 4, pool});
    auto futures = svc.submit_batch(f.requests);
    for (auto& fu : futures) (pool ? pooled : serial).push_back(fu.get());
  }
  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < pooled.size(); ++i)
    expect_bit_exact(pooled[i], serial[i]);
}

TEST(EvalService, StatsAccountTheWork) {
  ServiceFixture f;
  const std::size_t chips = 2;
  ChipFarm farm(chips);
  EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, f.requests.size()});
  auto futures = svc.submit_batch(f.requests);
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s = svc.stats();

  const std::size_t towers = f.scheme.context().ext_basis().size();
  EXPECT_EQ(s.submitted, f.requests.size());
  EXPECT_EQ(s.completed, f.requests.size());
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_GE(s.peak_queue_depth, f.requests.size());
  EXPECT_GT(s.io_seconds, 0.0);
  EXPECT_GT(s.compute_seconds, 0.0);
  EXPECT_GT(s.wall_seconds, 0.0);
  EXPECT_GT(s.simulated_requests_per_sec(), 0.0);
  ASSERT_EQ(s.per_chip.size(), chips);
  std::uint64_t reqs = 0, tower_runs = 0;
  for (std::size_t c = 0; c < chips; ++c) {
    reqs += s.per_chip[c].requests;
    tower_runs += s.per_chip[c].tower_runs;
    EXPECT_GE(s.utilization(c), 0.0);
  }
  EXPECT_EQ(reqs, f.requests.size());
  EXPECT_EQ(tower_runs, f.requests.size() * towers);
}

TEST(EvalService, RelinStatsAccountKeySwitchWork) {
  ServiceFixture f;
  const std::size_t chips = 2;
  ChipFarm farm(chips);
  ServiceOptions opts;
  opts.strategy = Strategy::kBatchPerChip;
  opts.max_batch = f.requests.size();
  opts.relin_keys = &f.rk;
  EvalService svc(f.scheme, farm, opts);
  auto futures = svc.submit_batch(f.requests_of(RequestKind::kMultRelin));
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s = svc.stats();

  const std::size_t qt = f.scheme.context().q_basis().size();
  const std::size_t et = f.scheme.context().ext_basis().size();
  std::uint64_t tower_runs = 0, relin_runs = 0, ks = 0;
  for (const auto& c : s.per_chip) {
    tower_runs += c.tower_runs;
    relin_runs += c.relin_tower_runs;
    ks += c.ks_products;
  }
  // Every request ran its tensor on the extended basis and its key switch
  // on every Q tower, with 2 PolyMuls per (digit, tower).
  EXPECT_EQ(tower_runs, f.requests.size() * et);
  EXPECT_EQ(relin_runs, f.requests.size() * qt);
  EXPECT_EQ(ks, f.requests.size() * qt * f.rk.keys.size() * 2);
  EXPECT_EQ(s.ks_products, ks);
}

TEST(EvalService, RequestsPerSecUsesActiveWindowNotLifetime) {
  ServiceFixture f;
  ChipFarm farm(1);
  EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, 4});
  auto futures = svc.submit_batch(f.requests);
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s1 = svc.stats();
  EXPECT_GT(s1.active_seconds, 0.0);
  EXPECT_GT(s1.requests_per_sec(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto s2 = svc.stats();
  // The active window froze at the last completion, so idling afterwards
  // must not decay the reported throughput (the old cumulative-lifetime
  // bug), while the lifetime wall clock keeps advancing.
  EXPECT_DOUBLE_EQ(s2.active_seconds, s1.active_seconds);
  EXPECT_DOUBLE_EQ(s2.requests_per_sec(), s1.requests_per_sec());
  EXPECT_GT(s2.wall_seconds, s1.wall_seconds);
}

TEST(EvalService, BatchingAmortizesRingConfiguration) {
  // The whole point of submit_batch: one session ring-configures each tower
  // once for the group, so the batched service pays fewer reconfigurations
  // -- and strictly less serial-link time -- than one-request-per-session.
  ServiceFixture f;
  auto run = [&](std::size_t max_batch) {
    ChipFarm farm(1);
    EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, max_batch});
    auto futures = svc.submit_batch(f.requests);
    for (auto& fu : futures) (void)fu.get();
    svc.drain();
    return svc.stats();
  };
  const auto batched = run(f.requests.size());
  const auto serial = run(1);
  const std::size_t towers = f.scheme.context().ext_basis().size();
  EXPECT_EQ(batched.per_chip[0].ring_configs, towers);
  EXPECT_EQ(serial.per_chip[0].ring_configs, towers * f.requests.size());
  EXPECT_LT(batched.io_seconds, serial.io_seconds);
  EXPECT_GT(batched.simulated_requests_per_sec(),
            serial.simulated_requests_per_sec());
}

TEST(EvalService, ShutdownDrainsTheQueue) {
  ServiceFixture f;
  ChipFarm farm(2);
  std::vector<std::future<bfv::Ciphertext>> futures;
  {
    EvalService svc(f.scheme, farm, {Strategy::kShardTowers, 2});
    futures = svc.submit_batch(f.requests);
    svc.shutdown();  // must complete every accepted request first
    EXPECT_THROW((void)svc.submit({f.requests[0].a, f.requests[0].b}),
                 std::runtime_error);
  }
  for (std::size_t i = 0; i < futures.size(); ++i)
    expect_bit_exact(futures[i].get(), f.expected[i]);
}

TEST(EvalService, MalformedRequestsAreRejectedWithoutPoisoningOthers) {
  ServiceFixture f;
  ChipFarm farm(2);
  EvalService svc(f.scheme, farm, {Strategy::kBatchPerChip, 8});
  // 3-element ciphertext (un-relinearized product) is rejected at submit.
  EXPECT_THROW((void)svc.submit({f.expected[0], f.requests[0].b}),
               std::invalid_argument);
  auto ok = svc.submit({f.requests[1].a, f.requests[1].b});
  expect_bit_exact(ok.get(), f.expected[1]);
  svc.drain();  // the round's stats post after its promises are fulfilled
  const auto s = svc.stats();
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(ChipFarm, RejectsEmptyFarmAndOversizedRing) {
  EXPECT_THROW(ChipFarm(0), std::invalid_argument);
  bfv::Bfv big(bfv::BfvParams::create(1u << 14, {54, 55}, 65537), 1);
  ChipFarm farm(1);  // bank_words = 2^14 -> n up to 2^13 in 2 slots
  EXPECT_THROW(EvalService(big, farm), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::service
