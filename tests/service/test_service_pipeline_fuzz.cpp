// Property/fuzz battery for the K-slot session ring and the batch-aware
// relin-key cache.
//
// Seeded randomized request streams (kinds, values, scheduling tags,
// submit chunking) must be bit-exact through pipeline_depth 1, 2 and 4 --
// the ring changes only when phases run, never what they compute.  The
// key cache must be pure savings: hit counters monotone, uploads + hits
// exactly the cache-less upload count (== ks_products), io strictly
// smaller for batched groups, and a key change must never produce a stale
// hit.  Runs under the TSan lane (labels `service`, `scheduler`).
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <random>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"

namespace cofhee::service {
namespace {

struct FuzzFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/53};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  EvalRequest random_request(std::mt19937& rng, bfv::Ciphertext* want) const {
    bfv::Bfv& s = const_cast<bfv::Bfv&>(scheme);
    std::uniform_int_distribution<std::int64_t> val(-100, 100);
    const auto kind = static_cast<RequestKind>(rng() % 3);
    const auto ca = s.encrypt(pk, enc.encode(val(rng)));
    const auto cb = s.encrypt(pk, enc.encode(val(rng)));
    const auto tensor = scheme.multiply(ca, cb);
    if (kind == RequestKind::kEvalMult) {
      *want = tensor;
      return {ca, cb, kind};
    }
    *want = scheme.relinearize(tensor, rk);
    if (kind == RequestKind::kRelinearize) return {tensor, {}, kind};
    return {ca, cb, kind};
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

TEST(ServicePipelineFuzz, RandomStreamsAreBitExactAcrossPipelineDepths) {
  FuzzFixture f;
  constexpr std::uint32_t kSeeds[] = {101, 7777};
  for (std::uint32_t seed : kSeeds) {
    // One scripted stream per seed: requests, scheduling tags and the
    // chunking of submits are all drawn from the seeded generator, so
    // every depth replays the identical trace.
    std::mt19937 gen(seed);
    std::vector<EvalRequest> reqs;
    std::vector<SubmitOptions> tags;
    std::vector<bfv::Ciphertext> want(12);
    for (std::size_t i = 0; i < want.size(); ++i) {
      reqs.push_back(f.random_request(gen, &want[i]));
      tags.push_back({static_cast<Priority>(gen() % kNumPriorities), gen() % 3,
                      static_cast<std::uint32_t>(1 + gen() % 3)});
    }
    std::vector<std::size_t> chunks;
    for (std::size_t left = reqs.size(); left > 0;) {
      const std::size_t c = std::min<std::size_t>(left, 1 + gen() % 4);
      chunks.push_back(c);
      left -= c;
    }
    for (std::size_t depth : {1u, 2u, 4u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " depth=" + std::to_string(depth));
      ChipFarm farm(2);
      ServiceOptions opts;
      opts.max_batch = 3;
      opts.relin_keys = &f.rk;
      opts.pipeline_depth = depth;
      EvalService svc(f.scheme, farm, opts);
      std::vector<std::future<bfv::Ciphertext>> futures;
      std::size_t next = 0;
      for (std::size_t c : chunks) {
        std::vector<EvalRequest> batch(reqs.begin() + next, reqs.begin() + next + c);
        auto fs = svc.submit_batch(std::move(batch), tags[next]);
        for (auto& fu : fs) futures.push_back(std::move(fu));
        next += c;
      }
      for (std::size_t i = 0; i < futures.size(); ++i)
        expect_bit_exact(futures[i].get(), want[i]);
      svc.drain();
      const auto s = svc.stats();
      EXPECT_EQ(s.completed, reqs.size());
      EXPECT_EQ(s.failed, 0u);
      // The pipeline model never beats physics: the pipelined span is
      // bounded by the back-to-back schedule, and depth 1 matches it.
      EXPECT_LE(s.pipeline_span_seconds, s.serial_span_seconds + 1e-12);
      if (depth == 1) {
        EXPECT_EQ(s.overlapped_rounds, 0u);
        EXPECT_NEAR(s.pipeline_span_seconds, s.serial_span_seconds, 1e-12);
      }
    }
  }
}

TEST(ServicePipelineFuzz, KeyCacheCountersAreMonotoneAndConsistent) {
  FuzzFixture f;
  ChipFarm farm(1);
  ServiceOptions opts;
  opts.relin_keys = &f.rk;
  opts.max_batch = 4;
  EvalService svc(f.scheme, farm, opts);
  const auto tensor =
      f.scheme.multiply(f.scheme.encrypt(f.pk, f.enc.encode(21)),
                        f.scheme.encrypt(f.pk, f.enc.encode(-2)));
  std::uint64_t last_hits = 0, last_uploads = 0;
  std::mt19937 gen(99);
  for (int round = 0; round < 6; ++round) {
    std::vector<EvalRequest> batch(1 + gen() % 4,
                                   {tensor, {}, RequestKind::kRelinearize});
    auto futures = svc.submit_batch(batch);
    for (auto& fu : futures) (void)fu.get();
    svc.drain();
    const auto s = svc.stats();
    // Monotone counters, and together they account every key-switch
    // product's key load: cache hits are pure savings, never lost work.
    EXPECT_GE(s.key_cache_hits, last_hits);
    EXPECT_GE(s.key_uploads, last_uploads);
    EXPECT_EQ(s.key_uploads + s.key_cache_hits, s.ks_products);
    last_hits = s.key_cache_hits;
    last_uploads = s.key_uploads;
  }
  EXPECT_GT(last_uploads, 0u);
}

TEST(ServicePipelineFuzz, BatchedGroupsHitTheKeyCacheAndSaveIo) {
  // The same relin traffic once as one-request sessions and once as one
  // batched group: the group shares key uploads (hits > 0) and pays
  // strictly less serial-link time, with bit-identical results.
  FuzzFixture f;
  const auto tensor =
      f.scheme.multiply(f.scheme.encrypt(f.pk, f.enc.encode(17)),
                        f.scheme.encrypt(f.pk, f.enc.encode(5)));
  const auto want = f.scheme.relinearize(tensor, f.rk);
  auto run = [&](std::size_t max_batch) {
    ChipFarm farm(1);
    ServiceOptions opts;
    opts.relin_keys = &f.rk;
    opts.max_batch = max_batch;
    EvalService svc(f.scheme, farm, opts);
    std::vector<EvalRequest> reqs(4, {tensor, {}, RequestKind::kRelinearize});
    auto futures = svc.submit_batch(reqs);
    for (auto& fu : futures) expect_bit_exact(fu.get(), want);
    svc.drain();
    return svc.stats();
  };
  const auto batched = run(4);
  const auto serial = run(1);
  EXPECT_GT(batched.key_cache_hits, 0u);
  EXPECT_EQ(serial.key_cache_hits, 0u);  // R = 1 groups cannot share keys
  EXPECT_LT(batched.key_uploads, serial.key_uploads);
  EXPECT_LT(batched.io_seconds, serial.io_seconds);
  EXPECT_EQ(batched.ks_products, serial.ks_products);
}

TEST(ServicePipelineFuzz, KeyCacheTagNeverHitsAcrossKeyChange) {
  // Unit-level invalidation semantics: a different RelinKeys object (key
  // rotation) or an explicit invalidate() must never produce a hit, while
  // the matching tag does.
  FuzzFixture f;
  const bfv::RelinKeys rk2 = f.scheme.keygen_relin(f.sk, 16);
  driver::RelinKeyCache cache;
  EXPECT_FALSE(cache.hit(&f.rk, 0, 0, 0));
  cache.loaded(&f.rk, 0, 0, 0);
  EXPECT_TRUE(cache.hit(&f.rk, 0, 0, 0));
  EXPECT_FALSE(cache.hit(&rk2, 0, 0, 0));  // key change: stale tag must miss
  EXPECT_FALSE(cache.hit(&f.rk, 1, 0, 0));
  EXPECT_FALSE(cache.hit(&f.rk, 0, 1, 0));
  EXPECT_FALSE(cache.hit(&f.rk, 0, 0, 1));
  cache.invalidate();
  EXPECT_FALSE(cache.hit(&f.rk, 0, 0, 0));
}

TEST(ServicePipelineFuzz, KeyRotationAcrossServicesStaysCorrect) {
  // Two services over the same farm with different key material: the
  // second must never reuse the first's resident keys (fresh caches), and
  // its results must match the software path under the new keys.
  FuzzFixture f;
  const bfv::RelinKeys rk2 = f.scheme.keygen_relin(f.sk, 16);
  const auto tensor =
      f.scheme.multiply(f.scheme.encrypt(f.pk, f.enc.encode(9)),
                        f.scheme.encrypt(f.pk, f.enc.encode(13)));
  ChipFarm farm(1);
  const std::vector<const bfv::RelinKeys*> keysets{&f.rk, &rk2};
  for (const bfv::RelinKeys* keys : keysets) {
    ServiceOptions opts;
    opts.relin_keys = keys;
    opts.max_batch = 3;
    EvalService svc(f.scheme, farm, opts);
    std::vector<EvalRequest> reqs(3, {tensor, {}, RequestKind::kRelinearize});
    auto futures = svc.submit_batch(reqs);
    const auto want = f.scheme.relinearize(tensor, *keys);
    for (auto& fu : futures) expect_bit_exact(fu.get(), want);
  }
}

}  // namespace
}  // namespace cofhee::service
