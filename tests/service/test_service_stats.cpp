// LatencyWindow percentile correctness + the stats-poll cost guarantee.
//
// snapshot() must report the same order statistics a full sort would (the
// nth_element rewrite is an optimization, not a semantic change), including
// across the ring-buffer wraparound, and a monitoring scrape over many
// full class/tenant windows must cost less than the sort-per-window
// implementation it replaced -- measured against an in-test full-sort
// baseline so the bound is self-calibrating, not machine-tuned.  A live
// poller hammering EvalService::stats() during traffic closes the loop:
// monitoring never blocks or torments the dispatcher.
#include "service/service_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"

namespace cofhee::service {
namespace {

/// Reference percentiles: full sort of the retained window, same index rule
/// as LatencyWindow::snapshot().
LatencyStats sorted_reference(std::vector<double> retained, std::uint64_t count,
                              double max_seconds) {
  LatencyStats s;
  s.count = count;
  s.max_seconds = max_seconds;
  if (retained.empty()) return s;
  std::sort(retained.begin(), retained.end());
  const auto at = [&](double q) {
    return retained[static_cast<std::size_t>(
        q * static_cast<double>(retained.size() - 1))];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

TEST(LatencyWindow, EmptyWindowSnapshotsToZeros) {
  LatencyWindow w;
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max_seconds, 0.0);
}

TEST(LatencyWindow, SnapshotMatchesAFullSortAtEverySize) {
  // Sizes straddle the interesting boundaries: single sample, the tiny
  // windows where p50/p95/p99 collapse onto the same index, a mid-size
  // window, and exactly-at-capacity.
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_real_distribution<double> lat(1e-6, 2.5);
  for (std::size_t size : {1u, 2u, 3u, 7u, 100u, 1023u, 4096u}) {
    SCOPED_TRACE(size);
    LatencyWindow w;
    std::vector<double> fed;
    double mx = 0;
    for (std::size_t i = 0; i < size; ++i) {
      const double v = lat(rng);
      fed.push_back(v);
      mx = std::max(mx, v);
      w.record(v);
    }
    const auto got = w.snapshot();
    const auto want = sorted_reference(fed, size, mx);
    EXPECT_EQ(got.count, want.count);
    EXPECT_DOUBLE_EQ(got.p50, want.p50);
    EXPECT_DOUBLE_EQ(got.p95, want.p95);
    EXPECT_DOUBLE_EQ(got.p99, want.p99);
    EXPECT_DOUBLE_EQ(got.max_seconds, want.max_seconds);
  }
}

TEST(LatencyWindow, SnapshotCoversExactlyTheRetainedRingAfterWraparound) {
  // 5000 monotonically increasing samples through a 4096-slot ring: the
  // window must report percentiles of the *last 4096* samples only, while
  // count and max keep the all-time view.
  constexpr std::size_t kTotal = 5000, kCap = 4096;
  LatencyWindow w;
  std::vector<double> all;
  for (std::size_t i = 1; i <= kTotal; ++i) {
    w.record(static_cast<double>(i));
    all.push_back(static_cast<double>(i));
  }
  const std::vector<double> retained(all.end() - kCap, all.end());
  const auto got = w.snapshot();
  const auto want =
      sorted_reference(retained, kTotal, static_cast<double>(kTotal));
  EXPECT_EQ(got.count, kTotal);
  EXPECT_DOUBLE_EQ(got.p50, want.p50);
  EXPECT_DOUBLE_EQ(got.p95, want.p95);
  EXPECT_DOUBLE_EQ(got.p99, want.p99);
  EXPECT_DOUBLE_EQ(got.max_seconds, static_cast<double>(kTotal));
}

TEST(LatencyWindow, PollingManyFullWindowsBeatsTheFullSortBaseline) {
  // The scrape a busy service pays: every class and tracked tenant holds a
  // full 4096-sample window, and a monitoring loop snapshots all of them
  // repeatedly.  The selection-based snapshot must beat a full sort of the
  // same windows -- the in-test baseline keeps the comparison fair on any
  // machine instead of hard-coding a wall-time budget.
  constexpr std::size_t kWindows = 16, kPolls = 100;
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> lat(1e-6, 2.5);
  std::vector<LatencyWindow> windows(kWindows);
  std::vector<std::vector<double>> raw(kWindows);
  for (std::size_t t = 0; t < kWindows; ++t) {
    for (std::size_t i = 0; i < 4096; ++i) {
      const double v = lat(rng);
      windows[t].record(v);
      raw[t].push_back(v);
    }
  }

  using clock = std::chrono::steady_clock;
  double sink = 0;  // defeat dead-code elimination

  const auto t0 = clock::now();
  for (std::size_t p = 0; p < kPolls; ++p)
    for (const auto& w : windows) sink += w.snapshot().p99;
  const double snapshot_s = std::chrono::duration<double>(clock::now() - t0).count();

  const auto t1 = clock::now();
  for (std::size_t p = 0; p < kPolls; ++p) {
    for (const auto& r : raw) {
      std::vector<double> sorted = r;
      std::sort(sorted.begin(), sorted.end());
      sink += sorted[static_cast<std::size_t>(0.99 * (sorted.size() - 1))];
    }
  }
  const double sort_s = std::chrono::duration<double>(clock::now() - t1).count();

  EXPECT_GT(sink, 0.0);
  EXPECT_LT(snapshot_s, sort_s)
      << "selection snapshot (" << snapshot_s << "s for " << kPolls * kWindows
      << " polls) must undercut the full-sort baseline (" << sort_s << "s)";
}

TEST(ServiceStatsPoll, ConcurrentScrapesNeverDisturbTraffic) {
  // A poller thread scrapes stats() as fast as it can while a request batch
  // flows through a 2-chip farm under the fairness scheduler (per-class and
  // per-tenant windows all live).  Results must stay bit-exact and every
  // scrape internally consistent (completed <= submitted).
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), /*seed=*/23};
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc{scheme.context()};

  ChipFarm farm(2);
  ServiceOptions opts;
  opts.sched = SchedPolicy::kPriorityFair;
  opts.max_batch = 4;
  EvalService svc(scheme, farm, opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto st = svc.stats();
      EXPECT_LE(st.completed + st.failed, st.submitted);
      for (const auto& cls : st.per_class)
        EXPECT_LE(cls.completed + cls.failed, cls.submitted);
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::int64_t> xs = {3, -5, 7, 11, -2, 9, 1, -8};
  std::vector<std::future<bfv::Ciphertext>> futs;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EvalRequest r{scheme.encrypt(pk, enc.encode(xs[i])),
                  scheme.encrypt(pk, enc.encode(2)), RequestKind::kEvalMult};
    SubmitOptions so;
    so.tenant = i % 3;
    so.priority = (i % 2) ? Priority::kHigh : Priority::kNormal;
    futs.push_back(svc.submit(std::move(r), so));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const auto got = futs[i].get();
    EXPECT_EQ(enc.decode(scheme.decrypt(sk, got)), xs[i] * 2);
  }
  stop.store(true);
  poller.join();
  EXPECT_GT(scrapes.load(), 0u);
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, xs.size());
  EXPECT_EQ(st.per_tenant.size(), 3u);
}

}  // namespace
}  // namespace cofhee::service
