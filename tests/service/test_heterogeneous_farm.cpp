// Heterogeneous chip farms: mixed ChipConfigs (different ring capacities,
// clocks and serial links) behind one EvalService.  The Placer must route
// work to the modeled-cheapest chips, results must stay bit-exact no
// matter how lopsided the farm is, and a chip whose config cannot serve
// the ring must be skipped cleanly -- with a typed FarmCapacityError when
// no chip can serve at all -- never a hang.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"
#include "service/placer.hpp"

namespace cofhee::service {
namespace {

struct HeteroFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/41};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  std::vector<std::pair<std::int64_t, std::int64_t>> plains = {
      {3, 4}, {-7, 6}, {12, -12}, {1, 0}, {90, 2}, {-33, -3}};
  std::vector<EvalRequest> requests;
  std::vector<bfv::Ciphertext> expected;

  HeteroFixture() {
    for (const auto& [x, y] : plains) {
      EvalRequest r{scheme.encrypt(pk, enc.encode(x)),
                    scheme.encrypt(pk, enc.encode(y))};
      expected.push_back(scheme.multiply(r.a, r.b));
      requests.push_back(std::move(r));
    }
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

/// A fast slot (SPI link, stock clock) and a slow slot (UART bring-up
/// link, half clock) -- the heterogeneity the cost model must see.
std::vector<ChipSpec> fast_and_slow() {
  ChipSpec fast;  // defaults: SPI, 250 MHz
  ChipSpec slow;
  slow.link = driver::Link::kUart;
  slow.cfg.freq_mhz = 125.0;
  return {fast, slow};
}

TEST(HeterogeneousFarm, MixedConfigFarmIsBitExact) {
  HeteroFixture f;
  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    for (Placement placement : {Placement::kRoundRobin, Placement::kLoadAware}) {
      SCOPED_TRACE("strategy=" + std::to_string(static_cast<int>(strategy)) +
                   " placement=" + std::to_string(static_cast<int>(placement)));
      ChipFarm farm(fast_and_slow());
      ServiceOptions opts;
      opts.strategy = strategy;
      opts.placement = placement;
      opts.max_batch = f.requests.size();
      EvalService svc(f.scheme, farm, opts);
      auto futures = svc.submit_batch(f.requests);
      for (std::size_t i = 0; i < futures.size(); ++i)
        expect_bit_exact(futures[i].get(), f.expected[i]);
      svc.drain();
      EXPECT_EQ(svc.stats().failed, 0u);
    }
  }
}

TEST(HeterogeneousFarm, MixedFarmRelinearizationIsBitExact) {
  HeteroFixture f;
  ChipFarm farm(fast_and_slow());
  ServiceOptions opts;
  opts.strategy = Strategy::kShardTowers;
  opts.relin_keys = &f.rk;
  opts.max_batch = 4;
  EvalService svc(f.scheme, farm, opts);
  std::vector<EvalRequest> reqs;
  for (const auto& r : f.requests) reqs.push_back({r.a, r.b, RequestKind::kMultRelin});
  auto futures = svc.submit_batch(reqs);
  for (std::size_t i = 0; i < futures.size(); ++i)
    expect_bit_exact(futures[i].get(), f.scheme.relinearize(f.expected[i], f.rk));
}

TEST(HeterogeneousFarm, PlacementPicksTheModeledCheapestChip) {
  // A single-request round on a {SPI, UART} farm: the load-aware placer
  // must put the session on the SPI chip -- its modeled unit cost is ~20x
  // cheaper -- and the UART chip must sit the round out.
  HeteroFixture f;
  ChipFarm farm(fast_and_slow());
  ServiceOptions opts;
  opts.strategy = Strategy::kBatchPerChip;
  opts.max_batch = 1;
  EvalService svc(f.scheme, farm, opts);
  auto fu = svc.submit({f.requests[0].a, f.requests[0].b});
  expect_bit_exact(fu.get(), f.expected[0]);
  svc.drain();
  const auto s = svc.stats();
  EXPECT_EQ(s.per_chip[0].placements, 1u);
  EXPECT_EQ(s.per_chip[0].sessions, 1u);
  EXPECT_EQ(s.per_chip[1].placements, 0u);
  EXPECT_EQ(s.per_chip[1].sessions, 0u);
}

TEST(HeterogeneousFarm, LoadAwareBeatsRoundRobinOnASkewedFarm) {
  // kShardTowers spreads tower work; round-robin gives the UART chip the
  // same share as the SPI chip, so the round's makespan is bounded by the
  // slow link.  Load-aware placement must strictly shrink the simulated
  // farm makespan while staying bit-exact.
  HeteroFixture f;
  auto run = [&](Placement placement) {
    ChipFarm farm(fast_and_slow());
    ServiceOptions opts;
    opts.strategy = Strategy::kShardTowers;
    opts.placement = placement;
    opts.max_batch = f.requests.size();
    EvalService svc(f.scheme, farm, opts);
    auto futures = svc.submit_batch(f.requests);
    for (std::size_t i = 0; i < futures.size(); ++i)
      expect_bit_exact(futures[i].get(), f.expected[i]);
    svc.drain();
    return svc.stats();
  };
  const auto rr = run(Placement::kRoundRobin);
  const auto la = run(Placement::kLoadAware);
  // Round-robin loaded both chips; load-aware shifted towers to the chip
  // with the cheaper modeled seconds-per-tower.
  EXPECT_GT(rr.per_chip[1].placements, 0u);
  EXPECT_GE(la.per_chip[0].placements, la.per_chip[1].placements);
  EXPECT_LT(la.per_chip[1].placements, rr.per_chip[1].placements);
  EXPECT_LT(la.simulated_seconds(), rr.simulated_seconds());
  EXPECT_GT(la.simulated_requests_per_sec(), rr.simulated_requests_per_sec());
}

TEST(HeterogeneousFarm, UndersizedChipIsSkippedCleanly) {
  // Chip 1's banks cannot hold 2n words for this ring: placement must
  // never select it, traffic must complete bit-exactly on chip 0 alone,
  // and nothing may hang.
  HeteroFixture f;
  ChipSpec ok;
  ChipSpec tiny;
  tiny.cfg.bank_words = 64;  // < 2n = 128
  ChipFarm farm({ok, tiny});
  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    ServiceOptions opts;
    opts.strategy = strategy;
    opts.max_batch = 4;
    EvalService svc(f.scheme, farm, opts);
    auto futures = svc.submit_batch(f.requests);
    for (std::size_t i = 0; i < futures.size(); ++i)
      expect_bit_exact(futures[i].get(), f.expected[i]);
    svc.drain();
    const auto s = svc.stats();
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.per_chip[1].placements, 0u);
    EXPECT_EQ(s.per_chip[1].sessions, 0u);
  }
}

TEST(HeterogeneousFarm, NoEligibleChipIsATypedError) {
  // When no chip in the farm can serve the ring, construction fails with
  // the typed FarmCapacityError (still a std::invalid_argument for
  // compatibility) instead of hanging or failing request by request.
  HeteroFixture f;
  ChipSpec tiny;
  tiny.cfg.bank_words = 64;
  ChipFarm farm({tiny, tiny});
  EXPECT_THROW(EvalService(f.scheme, farm), FarmCapacityError);
  EXPECT_THROW(EvalService(f.scheme, farm), std::invalid_argument);
}

TEST(Placer, AssignSkipsIneligibleAndThrowsTyped) {
  // Unit-level: the greedy pass never selects an ineligible chip, honors
  // unit costs, and an all-ineligible farm is a typed error.
  std::vector<ChipScore> chips(3);
  chips[0] = {true, 0.0, 1.0};
  chips[1] = {false, 0.0, 0.1};  // cheapest but ineligible: must be skipped
  chips[2] = {true, 0.0, 3.0};
  const auto assign = Placer::assign(chips, 5, Placement::kLoadAware);
  ASSERT_EQ(assign.size(), 5u);
  int c0 = 0, c2 = 0;
  for (std::size_t chip : assign) {
    EXPECT_NE(chip, 1u);
    (chip == 0 ? c0 : c2)++;
  }
  // unit costs 1 vs 3: chip 0 absorbs ~3x the items (exactly 4:1 here).
  EXPECT_EQ(c0, 4);
  EXPECT_EQ(c2, 1);

  const auto rr = Placer::assign(chips, 4, Placement::kRoundRobin);
  EXPECT_EQ(rr, (std::vector<std::size_t>{0, 2, 0, 2}));

  std::vector<ChipScore> none(2);  // all ineligible
  EXPECT_THROW(Placer::assign(none, 1, Placement::kLoadAware), FarmCapacityError);
}

}  // namespace
}  // namespace cofhee::service
