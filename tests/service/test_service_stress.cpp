// Concurrency battery for the evaluation service: many producer threads
// submitting simultaneously (from a backend::ThreadPool, the way an
// application layer would), results verified bit-exactly against the
// serial software path.  Runs under the TSan CI lane (label `service`).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "backend/thread_pool.hpp"
#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"

namespace cofhee::service {
namespace {

struct StressFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/23};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc{scheme.context()};
};

TEST(ServiceStress, ConcurrentSubmittersGetBitExactResults) {
  StressFixture f;
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 4;

  // Pre-encrypt outside the pool: Bfv sampling is stateful and the service
  // contract only covers concurrent const evaluation.
  std::vector<std::vector<EvalMultRequest>> reqs(kProducers);
  std::vector<std::vector<bfv::Ciphertext>> want(kProducers);
  std::vector<std::vector<std::int64_t>> prod(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      const auto x = static_cast<std::int64_t>(p + 1);
      const auto y = static_cast<std::int64_t>(i) - 2;
      EvalMultRequest r{f.scheme.encrypt(f.pk, f.enc.encode(x)),
                        f.scheme.encrypt(f.pk, f.enc.encode(y))};
      want[p].push_back(f.scheme.multiply(r.a, r.b));
      prod[p].push_back(x * y);
      reqs[p].push_back(std::move(r));
    }
  }

  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    ChipFarm farm(2);
    EvalService svc(f.scheme, farm, {strategy, /*max_batch=*/8});
    std::atomic<int> mismatches{0};

    backend::ThreadPool producers(kProducers);
    producers.parallel_for(kProducers, [&](std::size_t p) {
      // Mix the two entry points: half the producers batch, half trickle.
      std::vector<std::future<bfv::Ciphertext>> futures;
      if (p % 2 == 0) {
        futures = svc.submit_batch(reqs[p]);
      } else {
        for (const auto& r : reqs[p]) futures.push_back(svc.submit({r.a, r.b}));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto got = futures[i].get();
        if (got.size() != want[p][i].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t k = 0; k < got.size(); ++k)
          if (got.c[k].towers != want[p][i].c[k].towers) ++mismatches;
        if (f.enc.decode(f.scheme.decrypt(f.sk, got)) != prod[p][i]) ++mismatches;
      }
    });

    EXPECT_EQ(mismatches.load(), 0);
    svc.drain();
    const auto s = svc.stats();
    EXPECT_EQ(s.submitted, kProducers * kPerProducer);
    EXPECT_EQ(s.completed, kProducers * kPerProducer);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.queue_depth, 0u);
  }
}

TEST(ServiceStress, PipelinedMixedKindRoundsUnderConcurrentSubmitters) {
  // The double-buffered dispatcher under fire: small rounds (max_batch=2)
  // so consecutive rounds overlap, all three request kinds interleaved from
  // concurrent producers, results checked bit-exactly against the serial
  // software path.  Runs under the TSan lane (label `service`).
  StressFixture f;
  const bfv::RelinKeys rk = f.scheme.keygen_relin(f.sk, 16);
  constexpr std::size_t kProducers = 6;
  constexpr std::size_t kPerProducer = 3;

  std::vector<std::vector<EvalRequest>> reqs(kProducers);
  std::vector<std::vector<bfv::Ciphertext>> want(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      const auto kind = static_cast<RequestKind>((p + i) % 3);
      const auto ca = f.scheme.encrypt(f.pk, f.enc.encode(static_cast<std::int64_t>(p) - 1));
      const auto cb = f.scheme.encrypt(f.pk, f.enc.encode(static_cast<std::int64_t>(i) + 2));
      const auto tensor = f.scheme.multiply(ca, cb);
      if (kind == RequestKind::kEvalMult) {
        want[p].push_back(tensor);
        reqs[p].push_back({ca, cb, kind});
      } else if (kind == RequestKind::kRelinearize) {
        want[p].push_back(f.scheme.relinearize(tensor, rk));
        reqs[p].push_back({tensor, {}, kind});
      } else {
        want[p].push_back(f.scheme.relinearize(tensor, rk));
        reqs[p].push_back({ca, cb, kind});
      }
    }
  }

  for (Strategy strategy : {Strategy::kBatchPerChip, Strategy::kShardTowers}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    ChipFarm farm(2);
    ServiceOptions opts;
    opts.strategy = strategy;
    opts.max_batch = 2;
    opts.relin_keys = &rk;
    opts.overlap_rounds = true;
    EvalService svc(f.scheme, farm, opts);
    std::atomic<int> mismatches{0};

    backend::ThreadPool producers(kProducers);
    producers.parallel_for(kProducers, [&](std::size_t p) {
      std::vector<std::future<bfv::Ciphertext>> futures;
      for (const auto& r : reqs[p]) futures.push_back(svc.submit(r));
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto got = futures[i].get();
        if (got.size() != want[p][i].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t k = 0; k < got.size(); ++k)
          if (got.c[k].towers != want[p][i].c[k].towers) ++mismatches;
      }
    });

    EXPECT_EQ(mismatches.load(), 0);
    svc.drain();
    const auto s = svc.stats();
    EXPECT_EQ(s.completed, kProducers * kPerProducer);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_LE(s.pipeline_span_seconds, s.serial_span_seconds + 1e-12);
  }
}

TEST(ServiceStress, InterleavedSubmitAndStatsPolling) {
  StressFixture f;
  ChipFarm farm(2);
  EvalService svc(f.scheme, farm, {Strategy::kShardTowers, 4});
  const EvalMultRequest proto{f.scheme.encrypt(f.pk, f.enc.encode(9)),
                              f.scheme.encrypt(f.pk, f.enc.encode(-4))};
  const auto want = f.scheme.multiply(proto.a, proto.b);

  backend::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.parallel_for(4, [&](std::size_t worker) {
    if (worker == 0) {
      // A monitoring thread hammering the stats endpoint mid-traffic.
      for (int i = 0; i < 200; ++i) {
        const auto s = svc.stats();
        if (s.completed > s.submitted) ++mismatches;
      }
      return;
    }
    for (int i = 0; i < 6; ++i) {
      auto got = svc.submit({proto.a, proto.b}).get();
      for (std::size_t k = 0; k < got.size(); ++k)
        if (got.c[k].towers != want.c[k].towers) ++mismatches;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 18u);
}

}  // namespace
}  // namespace cofhee::service
