// Deterministic scheduler-v2 harness.
//
// The RequestQueue is exercised directly with a mock clock and scripted
// arrival traces -- pop order depends only on arrival order and
// SubmitOptions, never on wall time, so every assertion here is exact:
// priority ordering, weighted per-tenant fairness (deficit shares converge
// to the weight ratio), and the starvation bound (no backlogged class ever
// waits more than `bound` consecutive picks).  On top of that, the
// EvalService differential matrix shows the v2 scheduler is bit-exact vs
// the v1 FIFO path for every (policy x kind x chips) cell, and that the
// per-class / per-tenant stats account the traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"
#include "service/request_queue.hpp"

namespace cofhee::service {
namespace {

/// Scripted virtual time for the queue's enqueue/dequeue stamps.
struct MockClock {
  double t = 0;
  double tick() { return t += 1.0; }
};

/// Arrival with an id smuggled through the enqueue stamp (the queue never
/// interprets it, so pops can be identified exactly).
Pending arrival(double id, Priority prio, std::uint64_t tenant = 0,
                std::uint32_t weight = 1) {
  Pending p;
  p.so.priority = prio;
  p.so.tenant = tenant;
  p.so.weight = weight;
  p.enqueued = id;
  return p;
}

std::vector<double> pop_ids(RequestQueue& q, std::size_t count, double now = 100) {
  std::vector<double> ids;
  auto round = q.pop_round(count, now);
  ids.reserve(round.size());
  for (const auto& p : round) ids.push_back(p.enqueued);
  return ids;
}

TEST(RequestQueue, FifoPolicyPreservesArrivalOrder) {
  RequestQueue q(SchedPolicy::kFifo, 4);
  MockClock clk;
  // Priorities and tenants are deliberately scrambled: FIFO ignores them.
  q.push(arrival(clk.tick(), Priority::kLow, 7));
  q.push(arrival(clk.tick(), Priority::kHigh, 3));
  q.push(arrival(clk.tick(), Priority::kNormal, 7, 9));
  q.push(arrival(clk.tick(), Priority::kHigh, 1));
  EXPECT_EQ(pop_ids(q, 16), (std::vector<double>{1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, PriorityClassesAreServedInOrder) {
  RequestQueue q(SchedPolicy::kPriorityFair, /*starvation_bound=*/1000);
  MockClock clk;
  q.push(arrival(clk.tick(), Priority::kLow));     // 1
  q.push(arrival(clk.tick(), Priority::kNormal));  // 2
  q.push(arrival(clk.tick(), Priority::kHigh));    // 3
  q.push(arrival(clk.tick(), Priority::kLow));     // 4
  q.push(arrival(clk.tick(), Priority::kHigh));    // 5
  q.push(arrival(clk.tick(), Priority::kNormal));  // 6
  // All high first (FIFO within the class), then normal, then low.
  EXPECT_EQ(pop_ids(q, 16), (std::vector<double>{3, 5, 2, 6, 1, 4}));
  EXPECT_EQ(q.forced_picks(), 0u);
}

TEST(RequestQueue, DequeueStampsUseTheCallerClock) {
  RequestQueue q(SchedPolicy::kPriorityFair, 8);
  q.push(arrival(1.5, Priority::kNormal));
  auto round = q.pop_round(1, 42.25);
  ASSERT_EQ(round.size(), 1u);
  EXPECT_DOUBLE_EQ(round[0].enqueued, 1.5);
  EXPECT_DOUBLE_EQ(round[0].dequeued, 42.25);
}

TEST(RequestQueue, WeightedTenantSharesConvergeToTheWeightRatio) {
  RequestQueue q(SchedPolicy::kPriorityFair, 1000);
  MockClock clk;
  // Tenant 1 (weight 1) and tenant 2 (weight 3), both fully backlogged.
  for (int i = 0; i < 16; ++i) q.push(arrival(clk.tick(), Priority::kNormal, 1, 1));
  for (int i = 0; i < 16; ++i) q.push(arrival(clk.tick(), Priority::kNormal, 2, 3));
  // Deficit round-robin: tenant 1's turn grants 1 pick, tenant 2's grants
  // 3, so every 4-pick window splits exactly 1:3 while both are
  // backlogged -- the "deficit counters converge" property.
  const auto ids = pop_ids(q, 16);
  ASSERT_EQ(ids.size(), 16u);
  for (std::size_t w = 0; w < 16; w += 4) {
    int t1 = 0, t2 = 0;
    for (std::size_t i = w; i < w + 4; ++i) (ids[i] <= 16 ? t1 : t2)++;
    EXPECT_EQ(t1, 1) << "window at " << w;
    EXPECT_EQ(t2, 3) << "window at " << w;
  }
  // Within each tenant the order stayed FIFO.
  double last_t1 = 0, last_t2 = 0;
  for (double id : ids) {
    if (id <= 16) {
      EXPECT_GT(id, last_t1);
      last_t1 = id;
    } else {
      EXPECT_GT(id, last_t2);
      last_t2 = id;
    }
  }
}

TEST(RequestQueue, DrainedTenantForfeitsItsDeficit) {
  RequestQueue q(SchedPolicy::kPriorityFair, 1000);
  MockClock clk;
  // Tenant 9 has weight 5 but only 1 queued request: it must not bank the
  // unused deficit -- tenant 8 gets the rest of the round immediately.
  q.push(arrival(clk.tick(), Priority::kNormal, 9, 5));  // 1
  q.push(arrival(clk.tick(), Priority::kNormal, 8, 1));  // 2
  q.push(arrival(clk.tick(), Priority::kNormal, 8, 1));  // 3
  EXPECT_EQ(pop_ids(q, 16), (std::vector<double>{1, 2, 3}));
}

TEST(RequestQueue, LatestSubmittedWeightWins) {
  RequestQueue q(SchedPolicy::kPriorityFair, 1000);
  MockClock clk;
  // Tenant 1 first submits at weight 1, then re-submits at weight 3; the
  // rotation then grants it 3 picks per turn against tenant 2's 1.
  q.push(arrival(clk.tick(), Priority::kNormal, 1, 1));  // 1
  q.push(arrival(clk.tick(), Priority::kNormal, 2, 1));  // 2
  for (int i = 0; i < 4; ++i) q.push(arrival(clk.tick(), Priority::kNormal, 1, 3));
  for (int i = 0; i < 2; ++i) q.push(arrival(clk.tick(), Priority::kNormal, 2, 1));
  // Turns: t1 x3 (ids 1,3,4), t2 x1 (2), t1 x3 (5,6), t2 x1 (7), ...
  EXPECT_EQ(pop_ids(q, 16), (std::vector<double>{1, 3, 4, 2, 5, 6, 7, 8}));
}

TEST(RequestQueue, LoweringAWeightMidTurnClampsTheBankedDeficit) {
  RequestQueue q(SchedPolicy::kPriorityFair, 1000);
  MockClock clk;
  // Tenant 1 starts a turn at weight 4 (grant of 4 picks), tenant 2 holds
  // weight 1.  Two picks into tenant 1's turn its weight drops to 1: the
  // banked deficit (2 picks left, granted at the old weight) must clamp to
  // the new weight, so tenant 1 gets exactly one more pick before the
  // rotation moves on -- not the full remainder of the stale grant.
  for (int i = 1; i <= 6; ++i)
    q.push(arrival(clk.tick(), Priority::kNormal, 1, 4));  // ids 1..6
  for (int i = 7; i <= 9; ++i)
    q.push(arrival(clk.tick(), Priority::kNormal, 2, 1));  // ids 7..9
  EXPECT_EQ(pop_ids(q, 2), (std::vector<double>{1, 2}));   // deficit 4 -> 2
  q.push(arrival(clk.tick(), Priority::kNormal, 1, 1));    // id 10, clamp
  // One pick left for tenant 1's turn, then strict 1:1 alternation.
  EXPECT_EQ(pop_ids(q, 16), (std::vector<double>{3, 7, 4, 8, 5, 9, 6, 10}));
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, RaisingAWeightMidTurnDoesNotRetroactivelyExtendIt) {
  RequestQueue q(SchedPolicy::kPriorityFair, 1000);
  MockClock clk;
  // Tenant 1's turn was granted at weight 1; re-submitting at weight 3
  // mid-backlog must only affect the *next* turn -- the in-flight grant is
  // already spent, not topped up.
  for (int i = 1; i <= 4; ++i)
    q.push(arrival(clk.tick(), Priority::kNormal, 1, 1));  // ids 1..4
  for (int i = 5; i <= 6; ++i)
    q.push(arrival(clk.tick(), Priority::kNormal, 2, 1));  // ids 5..6
  EXPECT_EQ(pop_ids(q, 1), (std::vector<double>{1}));  // t1 turn spent
  q.push(arrival(clk.tick(), Priority::kNormal, 1, 3));  // id 7, raise
  // Tenant 1's turn is over (deficit 0 stays 0); tenant 2 serves next, and
  // only then does tenant 1 open a fresh turn at the new weight 3.
  EXPECT_EQ(pop_ids(q, 16), (std::vector<double>{5, 2, 3, 4, 6, 7}));
}

TEST(RequestQueue, StarvationBoundForcesALowPickInTime) {
  constexpr std::size_t kBound = 4;
  RequestQueue q(SchedPolicy::kPriorityFair, kBound);
  MockClock clk;
  q.push(arrival(clk.tick(), Priority::kLow));  // 1, the starvation victim
  for (int i = 0; i < 20; ++i) q.push(arrival(clk.tick(), Priority::kHigh));
  // Picks 1..kBound go to the high class; after that the low class has
  // been skipped kBound consecutive times and must be force-served.
  std::vector<Pending> picks;
  for (int i = 0; i < 6; ++i) {
    auto round = q.pop_round(1, clk.tick());
    ASSERT_EQ(round.size(), 1u);
    picks.push_back(std::move(round[0]));
  }
  for (std::size_t i = 0; i < kBound; ++i) {
    EXPECT_EQ(picks[i].so.priority, Priority::kHigh) << "pick " << i;
    EXPECT_FALSE(picks[i].forced);
  }
  EXPECT_EQ(picks[kBound].so.priority, Priority::kLow);
  EXPECT_TRUE(picks[kBound].forced);
  EXPECT_EQ(picks[kBound].enqueued, 1.0);
  EXPECT_EQ(picks[kBound + 1].so.priority, Priority::kHigh);
  EXPECT_EQ(q.forced_picks(), 1u);
  // The no-starvation invariant: no class ever waited past the bound.
  EXPECT_LE(q.max_skip_observed(), kBound);
}

TEST(RequestQueue, BoundZeroMeansStrictPriority) {
  RequestQueue q(SchedPolicy::kPriorityFair, /*starvation_bound=*/0);
  MockClock clk;
  q.push(arrival(clk.tick(), Priority::kLow));  // 1
  for (int i = 0; i < 32; ++i) q.push(arrival(clk.tick(), Priority::kHigh));
  const auto ids = pop_ids(q, 32);
  EXPECT_EQ(ids.size(), 32u);
  for (double id : ids) EXPECT_NE(id, 1.0);  // low never served while high waits
  EXPECT_EQ(q.forced_picks(), 0u);
  // Only once the high class drains does the low request surface.
  EXPECT_EQ(pop_ids(q, 4), (std::vector<double>{1}));
}

// ---------------------------------------------------------------------------
// EvalService-level differential: scheduler v2 must change only the order
// work is picked, never the bytes of any result.

struct SchedulerFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/77};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  std::vector<std::pair<std::int64_t, std::int64_t>> plains = {
      {2, 3}, {-5, 4}, {9, -9}, {0, 11}, {127, 2}, {-64, -2}};

  EvalRequest request_of(RequestKind kind, std::size_t i) const {
    bfv::Bfv& s = const_cast<bfv::Bfv&>(scheme);
    const auto ca = s.encrypt(pk, enc.encode(plains[i].first));
    const auto cb = s.encrypt(pk, enc.encode(plains[i].second));
    if (kind == RequestKind::kRelinearize) return {scheme.multiply(ca, cb), {}, kind};
    return {ca, cb, kind};
  }
  bfv::Ciphertext expected_of(const EvalRequest& r) const {
    if (r.kind == RequestKind::kEvalMult) return scheme.multiply(r.a, r.b);
    if (r.kind == RequestKind::kRelinearize) return scheme.relinearize(r.a, rk);
    return scheme.relinearize(scheme.multiply(r.a, r.b), rk);
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

TEST(SchedulerService, PolicyKindChipsMatrixIsBitExactVsFifo) {
  SchedulerFixture f;
  // Assorted scheduling tags: order changes under kPriorityFair, bytes
  // must not.
  const SubmitOptions tags[] = {
      {Priority::kLow, 1, 1},  {Priority::kHigh, 2, 3}, {Priority::kNormal, 1, 1},
      {Priority::kHigh, 1, 1}, {Priority::kLow, 3, 2},  {Priority::kNormal, 2, 3}};
  for (RequestKind kind : {RequestKind::kEvalMult, RequestKind::kRelinearize,
                           RequestKind::kMultRelin}) {
    std::vector<EvalRequest> reqs;
    std::vector<bfv::Ciphertext> want;
    for (std::size_t i = 0; i < f.plains.size(); ++i) {
      reqs.push_back(f.request_of(kind, i));
      want.push_back(f.expected_of(reqs.back()));
    }
    for (SchedPolicy policy : {SchedPolicy::kFifo, SchedPolicy::kPriorityFair}) {
      for (std::size_t chips : {1u, 2u, 4u}) {
        SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                     " policy=" + std::to_string(static_cast<int>(policy)) +
                     " chips=" + std::to_string(chips));
        ChipFarm farm(chips);
        ServiceOptions opts;
        opts.max_batch = 3;
        opts.relin_keys = &f.rk;
        opts.sched = policy;
        opts.starvation_bound = 2;
        EvalService svc(f.scheme, farm, opts);
        std::vector<std::future<bfv::Ciphertext>> futures;
        for (std::size_t i = 0; i < reqs.size(); ++i)
          futures.push_back(svc.submit(reqs[i], tags[i]));
        for (std::size_t i = 0; i < futures.size(); ++i)
          expect_bit_exact(futures[i].get(), want[i]);
        svc.drain();
        const auto s = svc.stats();
        EXPECT_EQ(s.completed, reqs.size());
        EXPECT_EQ(s.failed, 0u);
        if (opts.starvation_bound != 0) {
          // With several classes starving at once only one is force-served
          // per pick, so the bound degrades by at most kNumPriorities - 2.
          EXPECT_LE(s.max_class_skip, opts.starvation_bound + kNumPriorities - 2);
        }
      }
    }
  }
}

TEST(SchedulerService, ClassAndTenantStatsAccountTheTraffic) {
  SchedulerFixture f;
  ChipFarm farm(2);
  ServiceOptions opts;
  opts.max_batch = 2;
  EvalService svc(f.scheme, farm, opts);
  std::vector<std::future<bfv::Ciphertext>> futures;
  // 4 high-priority requests from tenant 5 (weight 2), 2 low from tenant 9.
  for (std::size_t i = 0; i < 4; ++i)
    futures.push_back(svc.submit(f.request_of(RequestKind::kEvalMult, i),
                                 {Priority::kHigh, 5, 2}));
  for (std::size_t i = 4; i < 6; ++i)
    futures.push_back(svc.submit(f.request_of(RequestKind::kEvalMult, i),
                                 {Priority::kLow, 9, 1}));
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s = svc.stats();

  ASSERT_EQ(s.per_class.size(), kNumPriorities);
  const auto& high = s.per_class[static_cast<std::size_t>(Priority::kHigh)];
  const auto& norm = s.per_class[static_cast<std::size_t>(Priority::kNormal)];
  const auto& low = s.per_class[static_cast<std::size_t>(Priority::kLow)];
  EXPECT_EQ(high.submitted, 4u);
  EXPECT_EQ(high.dispatched, 4u);
  EXPECT_EQ(high.completed, 4u);
  EXPECT_EQ(norm.submitted, 0u);
  EXPECT_EQ(low.submitted, 2u);
  EXPECT_EQ(low.completed, 2u);
  EXPECT_EQ(high.latency.count, 4u);
  EXPECT_LE(high.latency.p50, high.latency.p99);
  EXPECT_LE(high.latency.p99, high.latency.max_seconds + 1e-12);

  ASSERT_EQ(s.per_tenant.size(), 2u);
  EXPECT_EQ(s.per_tenant[0].tenant, 5u);
  EXPECT_EQ(s.per_tenant[0].weight, 2u);
  EXPECT_EQ(s.per_tenant[0].submitted, 4u);
  EXPECT_EQ(s.per_tenant[0].completed, 4u);
  EXPECT_EQ(s.per_tenant[1].tenant, 9u);
  EXPECT_EQ(s.per_tenant[1].submitted, 2u);
  EXPECT_EQ(s.per_tenant[1].latency.count, 2u);
}

TEST(SchedulerService, OutOfRangePriorityIsRejectedAtSubmit) {
  // Priority indexes the fixed class tables, so a value deserialized off
  // the wire must be rejected cleanly at both layers, never index OOB.
  SchedulerFixture f;
  ChipFarm farm(1);
  EvalService svc(f.scheme, farm);
  SubmitOptions bad;
  bad.priority = static_cast<Priority>(kNumPriorities);
  EXPECT_THROW((void)svc.submit(f.request_of(RequestKind::kEvalMult, 0), bad),
               std::invalid_argument);
  RequestQueue q;
  Pending p;
  p.so = bad;
  EXPECT_THROW(q.push(std::move(p)), std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(SchedulerService, TenantTrackingIsBoundedByTheOverflowBucket) {
  // Stats stay bounded for open-ended tenant id spaces: past the cap, new
  // ids aggregate under kOverflowTenantId (scheduling still keys on the
  // real id -- only the breakdown folds).
  SchedulerFixture f;
  ChipFarm farm(1);
  ServiceOptions opts;
  opts.max_batch = 8;
  opts.max_tracked_tenants = 2;
  EvalService svc(f.scheme, farm, opts);
  std::vector<std::future<bfv::Ciphertext>> futures;
  for (std::size_t i = 0; i < 4; ++i)
    futures.push_back(svc.submit(f.request_of(RequestKind::kEvalMult, i),
                                 {Priority::kNormal, /*tenant=*/i, 1}));
  for (auto& fu : futures) (void)fu.get();
  svc.drain();
  const auto s = svc.stats();
  ASSERT_EQ(s.per_tenant.size(), 3u);  // tenants 0, 1, and the overflow bucket
  EXPECT_EQ(s.per_tenant[0].tenant, 0u);
  EXPECT_EQ(s.per_tenant[1].tenant, 1u);
  EXPECT_EQ(s.per_tenant[2].tenant, kOverflowTenantId);
  EXPECT_EQ(s.per_tenant[2].submitted, 2u);  // tenants 2 and 3 folded
  EXPECT_EQ(s.per_tenant[2].completed, 2u);
  EXPECT_EQ(s.per_tenant[2].weight, 0u);  // mixed-weight marker
  EXPECT_EQ(s.per_tenant[0].submitted + s.per_tenant[1].submitted +
                s.per_tenant[2].submitted,
            4u);
}

TEST(SchedulerService, StarvationStaysBoundedUnderPriorityFlood) {
  // One low-priority request inside a flood of high-priority traffic with
  // single-request rounds: it must complete, the bound must hold, and the
  // scheduler must record any forced pick it needed.
  SchedulerFixture f;
  ChipFarm farm(1);
  ServiceOptions opts;
  opts.max_batch = 1;
  opts.starvation_bound = 2;
  EvalService svc(f.scheme, farm, opts);
  std::vector<EvalRequest> flood;
  for (std::size_t i = 0; i < 5; ++i)
    flood.push_back(f.request_of(RequestKind::kEvalMult, i % f.plains.size()));
  auto high = svc.submit_batch(flood, {Priority::kHigh, 1, 1});
  auto low = svc.submit(f.request_of(RequestKind::kEvalMult, 5), {Priority::kLow, 2, 1});
  for (auto& fu : high) (void)fu.get();
  (void)low.get();
  svc.drain();
  const auto s = svc.stats();
  EXPECT_EQ(s.completed, 6u);
  EXPECT_LE(s.max_class_skip, opts.starvation_bound);
  const auto& lowc = s.per_class[static_cast<std::size_t>(Priority::kLow)];
  EXPECT_EQ(lowc.completed, 1u);
}

}  // namespace
}  // namespace cofhee::service
