// Chaos battery for the sick-farm model (chip/fault.hpp + the service's
// healing layer).  The contract under test: with faults injected at the
// link/chip layer, every submitted request either completes BIT-EXACT to
// the serial software reference or fails with the originating typed fault
// -- never silent garbage, never a hang (every test runs under a SIGALRM
// watchdog).  Failing seeded cases print their fault-schedule seed so the
// exact chaos run reproduces from the command line.
#include "chip/fault.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/errors.hpp"
#include "service/eval_service.hpp"

namespace cofhee::service {
namespace {

/// Never-hang guard: if a chaos case deadlocks, SIGALRM's default action
/// kills the process and the test run fails loudly instead of wedging CI.
struct AlarmGuard {
  explicit AlarmGuard(unsigned seconds) { alarm(seconds); }
  ~AlarmGuard() { alarm(0); }
};

struct ChaosFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/17};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  std::vector<std::pair<std::int64_t, std::int64_t>> plains = {
      {0, 1}, {1, 1}, {-1, 7}, {2, 3}, {255, -128}, {-181, 181}};
  std::vector<EvalRequest> requests;         // kMultRelin traffic
  std::vector<bfv::Ciphertext> expected;     // serial software reference

  ChaosFixture() {
    for (const auto& [x, y] : plains) {
      EvalRequest r{scheme.encrypt(pk, enc.encode(x)),
                    scheme.encrypt(pk, enc.encode(y)), RequestKind::kMultRelin};
      expected.push_back(scheme.relinearize(scheme.multiply(r.a, r.b), rk));
      requests.push_back(std::move(r));
    }
  }

  ServiceOptions base_opts() const {
    ServiceOptions o;
    o.relin_keys = &rk;
    return o;
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

/// Drain the futures: each must yield the bit-exact reference or throw a
/// typed retryable fault (or, for an all-dead farm, FarmCapacityError).
/// Returns the number of failed requests.
std::size_t settle(std::vector<std::future<bfv::Ciphertext>>& futs,
                   const ChaosFixture& f) {
  std::size_t failed = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    try {
      expect_bit_exact(futs[i].get(), f.expected[i]);
    } catch (const chip::FaultError&) {
      ++failed;
    } catch (const FarmCapacityError&) {
      ++failed;
    }
    // Anything else (logic_error, bad ciphertext shapes...) escapes and
    // fails the test: faults must stay typed all the way up.
  }
  return failed;
}

/// Counter invariants that must hold for ANY schedule at ANY point.
void expect_counter_invariants(const ServiceStats& st) {
  EXPECT_LE(st.readmissions, st.quarantines);
  EXPECT_GE(st.probes, st.readmissions);
  EXPECT_LE(st.probe_failures, st.probes);
  std::uint64_t per_chip_faults = 0, per_chip_q = 0, per_chip_re = 0;
  for (const auto& c : st.per_chip) {
    per_chip_faults += c.faults;
    per_chip_q += c.quarantines;
    per_chip_re += c.readmissions;
  }
  EXPECT_EQ(per_chip_q, st.quarantines);
  EXPECT_EQ(per_chip_re, st.readmissions);
  // The service can only have *seen* faults the injectors (or probes/stage
  // timeouts, which don't inject) actually produced.
  EXPECT_EQ(st.completed + st.failed, st.submitted);
}

TEST(FaultInjection, InjectorFiresTypedFaultsDeterministically) {
  AlarmGuard guard(120);
  // Corrupt window [2, 4), sub-timeout stall at 5, timed-out stall at 6,
  // kill at 8.
  chip::FaultSchedule sch;
  sch.link_timeout_seconds = 1.0;
  sch.events.push_back({chip::FaultKind::kCorruptFrame, 2, 2, 0});
  sch.events.push_back({chip::FaultKind::kStallLink, 5, 1, 0.25});
  sch.events.push_back({chip::FaultKind::kStallLink, 6, 1, 4.0});
  sch.events.push_back({chip::FaultKind::kKillChip, 8, 1, 0});
  chip::FaultInjector inj(sch);

  EXPECT_DOUBLE_EQ(inj.on_transaction(), 0.0);  // op 0
  EXPECT_DOUBLE_EQ(inj.on_transaction(), 0.0);  // op 1
  EXPECT_THROW(inj.on_transaction(), chip::ChipFaultError);   // op 2
  EXPECT_THROW(inj.on_transaction(), chip::ChipFaultError);   // op 3
  EXPECT_DOUBLE_EQ(inj.on_transaction(), 0.0);                // op 4
  EXPECT_DOUBLE_EQ(inj.on_transaction(), 0.25);               // op 5: late
  EXPECT_THROW(inj.on_transaction(), chip::LinkTimeoutError); // op 6
  EXPECT_FALSE(inj.dead());
  EXPECT_DOUBLE_EQ(inj.on_transaction(), 0.0);                // op 7
  EXPECT_THROW(inj.on_transaction(), chip::ChipFaultError);   // op 8: kill
  EXPECT_TRUE(inj.dead());
  // Death is permanent; repeated rejections are not re-counted as faults.
  const std::uint64_t fired = inj.faults_fired();
  EXPECT_THROW(inj.on_transaction(), chip::ChipFaultError);
  EXPECT_THROW(inj.on_transaction(), chip::ChipFaultError);
  EXPECT_EQ(inj.faults_fired(), fired);
  EXPECT_EQ(fired, 5u);  // 2 corrupt + 2 stalls + 1 kill
}

TEST(FaultInjection, RandomScheduleIsSeedStable) {
  const auto a = chip::FaultSchedule::random(1234, 5000, 8, 0.5);
  const auto b = chip::FaultSchedule::random(1234, 5000, 8, 0.5);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), 8u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at_op, b.events[i].at_op);
    EXPECT_EQ(a.events[i].count, b.events[i].count);
    EXPECT_DOUBLE_EQ(a.events[i].stall_seconds, b.events[i].stall_seconds);
    EXPECT_LT(a.events[i].at_op, 5000u);
  }
  // A different seed is a different schedule (astronomically certain).
  const auto c = chip::FaultSchedule::random(1235, 5000, 8, 0.5);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i)
    differs = differs || c.events[i].at_op != a.events[i].at_op;
  EXPECT_TRUE(differs);
}

TEST(FaultInjection, AdmissionErrorsAreTyped) {
  AlarmGuard guard(120);
  ChaosFixture f;
  ChipFarm farm(1);
  auto opts = f.base_opts();
  opts.max_queue = 1;
  EvalService svc(f.scheme, farm, opts);
  // Queue-full hammer: the transient rejection is QueueFullError (still a
  // std::runtime_error for pre-typed callers).
  std::vector<std::future<bfv::Ciphertext>> futs;
  std::size_t queue_full = 0;
  while (futs.size() < 4) {
    try {
      futs.push_back(svc.submit(f.requests[0]));
    } catch (const QueueFullError&) {
      ++queue_full;
    }
  }
  for (auto& fu : futs) expect_bit_exact(fu.get(), f.expected[0]);
  svc.shutdown();
  EXPECT_THROW((void)svc.submit(f.requests[0]), ServiceStoppedError);
  // The hierarchy: both are ServiceError and std::runtime_error.
  try {
    (void)svc.submit(f.requests[0]);
    FAIL() << "submit after shutdown must throw";
  } catch (const ServiceError&) {
  }
}

TEST(FaultInjection, LoneChipHealsItsOwnTransientFault) {
  AlarmGuard guard(120);
  ChaosFixture f;
  // One chip, one corrupt frame early in the first session: with nowhere
  // else to place, the stage retry must reuse the faulted chip itself.
  std::vector<ChipSpec> specs(1);
  specs[0].faults.events.push_back({chip::FaultKind::kCorruptFrame, 10, 1, 0});
  ChipFarm farm(specs);
  EvalService svc(f.scheme, farm, f.base_opts());
  auto futs = svc.submit_batch(f.requests);
  EXPECT_EQ(settle(futs, f), 0u);
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, f.requests.size());
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.retries, 0u);
  EXPECT_GT(st.faults_injected, 0u);
  expect_counter_invariants(st);
}

TEST(FaultInjection, DeadChipIsQuarantinedAndWorkRequeues) {
  AlarmGuard guard(120);
  ChaosFixture f;
  // Chip 0 dies on its very first transaction; chip 1 is healthy.  Stage
  // retries are disabled so healing must go the round-requeue way, and one
  // fault is enough for quarantine.
  std::vector<ChipSpec> specs(2);
  specs[0].faults.events.push_back({chip::FaultKind::kKillChip, 0, 1, 0});
  ChipFarm farm(specs);
  auto opts = f.base_opts();
  opts.max_stage_retries = 0;
  opts.quarantine_after = 1;
  EvalService svc(f.scheme, farm, opts);
  auto futs = svc.submit_batch(f.requests);
  EXPECT_EQ(settle(futs, f), 0u);
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, f.requests.size());
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.requeues, 0u);
  EXPECT_GE(st.quarantines, 1u);
  EXPECT_GE(st.per_chip[0].faults, 1u);
  // A dead chip never passes a probe: quarantined at sampling time, never
  // re-admitted, and probes against it all failed.
  EXPECT_TRUE(st.per_chip[0].quarantined);
  EXPECT_EQ(st.per_chip[0].readmissions, 0u);
  EXPECT_FALSE(st.per_chip[1].quarantined);
  expect_counter_invariants(st);
}

TEST(FaultInjection, TransientlySickChipIsReadmittedAfterProbe) {
  AlarmGuard guard(180);
  ChaosFixture f;
  // Chip 0 corrupts a window of early frames, then recovers for good.  One
  // fault quarantines it; once the per-round probes burn through the window
  // ([5, 11): each failing probe consumes one transaction, a passing one
  // two), a probe must pass and re-admit it.
  std::vector<ChipSpec> specs(2);
  specs[0].faults.events.push_back({chip::FaultKind::kCorruptFrame, 5, 6, 0});
  ChipFarm farm(specs);
  auto opts = f.base_opts();
  opts.max_stage_retries = 1;
  opts.quarantine_after = 1;
  opts.probe_interval_rounds = 1;
  EvalService svc(f.scheme, farm, opts);
  // Several sequential waves so rounds keep coming after the quarantine --
  // the probe (2 transactions) runs at each chip stage and readmits once
  // the corrupt window [5, 45) is consumed.
  for (int wave = 0; wave < 10; ++wave) {
    auto futs = svc.submit_batch(f.requests);
    EXPECT_EQ(settle(futs, f), 0u);
    svc.drain();
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, 10 * f.requests.size());
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(st.quarantines, 1u);
  EXPECT_GE(st.readmissions, 1u);
  EXPECT_FALSE(st.per_chip[0].quarantined);  // healed and back in rotation
  expect_counter_invariants(st);
}

TEST(FaultInjection, DegradedChipShedsLoadThroughMeasuredCosts) {
  AlarmGuard guard(180);
  ChaosFixture f;
  // Chip 0 stalls every transaction a little (well under the timeout): no
  // errors anywhere, but its measured unit cost must climb above chip 1's
  // and placement must shift work away from it.
  std::vector<ChipSpec> specs(2);
  specs[0].faults.link_timeout_seconds = 1.0;
  specs[0].faults.events.push_back(
      {chip::FaultKind::kStallLink, 0, ~std::uint64_t{0} / 2, 0.002});
  ChipFarm farm(specs);
  EvalService svc(f.scheme, farm, f.base_opts());
  for (int wave = 0; wave < 6; ++wave) {
    auto futs = svc.submit_batch(f.requests);
    EXPECT_EQ(settle(futs, f), 0u);
    svc.drain();
  }
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.faults_injected, 0u);  // late stalls count as fired faults
  EXPECT_GT(st.per_chip[0].ewma_unit_cost, st.per_chip[1].ewma_unit_cost);
  // The healthy chip ends up carrying more of the farm's work.
  EXPECT_GT(st.per_chip[1].placements, st.per_chip[0].placements);
  expect_counter_invariants(st);
}

TEST(FaultInjection, StageTimeoutBudgetTreatsSlowSharesAsFaults) {
  AlarmGuard guard(120);
  ChaosFixture f;
  // Chip 0's share stalls hard but under the link timeout, so only the
  // service-level stage budget can catch it; chip 1 then serves the retry.
  std::vector<ChipSpec> specs(2);
  specs[0].faults.link_timeout_seconds = 1e9;  // link never times out itself
  specs[0].faults.events.push_back({chip::FaultKind::kStallLink, 0, 500, 0.4});
  ChipFarm farm(specs);
  auto opts = f.base_opts();
  opts.stage_timeout_seconds = 5.0;  // far above any healthy share
  opts.quarantine_after = 1;
  EvalService svc(f.scheme, farm, opts);
  auto futs = svc.submit_batch(f.requests);
  EXPECT_EQ(settle(futs, f), 0u);
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.stage_timeouts, 0u);
  EXPECT_GT(st.retries + st.requeues, 0u);
  expect_counter_invariants(st);
}

TEST(FaultInjection, SeededChaosMatrixNeverHangsOrCorrupts) {
  AlarmGuard guard(480);
  ChaosFixture f;
  // The acceptance matrix: random seeded schedules x 1/2/4-chip farms x
  // pipeline depths 1/2/4.  Every request must settle (bit-exact value or
  // typed error) under the alarm; counters must stay coherent.  The traced
  // seed reproduces any failing cell exactly.
  const std::uint64_t seeds[] = {7, 1001, 424242};
  for (std::size_t chips : {1u, 2u, 4u}) {
    for (std::size_t depth : {1u, 2u, 4u}) {
      for (std::uint64_t seed : seeds) {
        SCOPED_TRACE("chips=" + std::to_string(chips) +
                     " depth=" + std::to_string(depth) +
                     " fault_schedule_seed=" + std::to_string(seed));
        std::vector<ChipSpec> specs(chips);
        for (std::size_t c = 0; c < chips; ++c)
          specs[c].faults = chip::FaultSchedule::random(
              seed + c, /*op_horizon=*/3000, /*num_events=*/5,
              /*link_timeout_seconds=*/0.05);
        ChipFarm farm(specs);
        auto opts = f.base_opts();
        opts.pipeline_depth = depth;
        opts.overlap_rounds = depth > 1;
        opts.max_batch = 3;  // several rounds per wave
        EvalService svc(f.scheme, farm, opts);
        auto futs = svc.submit_batch(f.requests);
        (void)settle(futs, f);  // bit-exact or typed -- both acceptable here
        svc.drain();
        expect_counter_invariants(svc.stats());
      }
    }
  }
}

}  // namespace
}  // namespace cofhee::service
