// Tenancy teeth at the submit boundary (service/tenancy.hpp +
// EvalService admission): deterministic token buckets, typed
// RateLimitedError / TenantQuotaError rejections that consume nothing,
// pending quotas spanning queued + in-flight work and released only at
// settlement, per-tenant rejection counters, and the in-flight-aware
// max_queue bound (peak depth can never exceed it, however deep the
// pipeline).
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"
#include "service/tenancy.hpp"

namespace cofhee::service {
namespace {

TEST(TokenBucket, DeterministicRefillOnAnExplicitClock) {
  TokenBucket b(/*rate_per_sec=*/2.0, /*burst=*/4.0, /*now=*/0.0);
  EXPECT_DOUBLE_EQ(b.available(), 4.0);
  EXPECT_TRUE(b.full());
  // Drain the burst; the fifth take must fail with a computable wait.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));
  EXPECT_DOUBLE_EQ(b.retry_after(1.0), 0.5);  // 1 token at 2/s
  // Refill is linear in elapsed time and capped at the burst.
  b.refill(1.0);
  EXPECT_DOUBLE_EQ(b.available(), 2.0);
  b.refill(100.0);
  EXPECT_DOUBLE_EQ(b.available(), 4.0);
  // A stale (earlier) clock value cannot rewind the bucket.
  b.take(4.0);
  b.refill(50.0);
  EXPECT_DOUBLE_EQ(b.available(), 0.0);
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket b(/*rate_per_sec=*/0.0, /*burst=*/2.0, /*now=*/0.0);
  EXPECT_TRUE(b.try_take(0.0, 2.0));
  b.refill(1e9);
  EXPECT_FALSE(b.can_take(1.0));
  EXPECT_DOUBLE_EQ(b.retry_after(1.0), TokenBucket::kNeverSeconds);
}

TEST(TenantLimits, EffectiveBurstDefaultsAndEnablement) {
  TenantLimits none;
  EXPECT_FALSE(none.any());
  TenantLimits rate_only{/*rate_per_sec=*/5.0, /*burst=*/0, /*max_pending=*/0};
  EXPECT_TRUE(rate_only.any());
  EXPECT_DOUBLE_EQ(rate_only.effective_burst(), 5.0);
  TenantLimits tiny_rate{/*rate_per_sec=*/0.25, /*burst=*/0, /*max_pending=*/0};
  EXPECT_DOUBLE_EQ(tiny_rate.effective_burst(), 1.0);  // a lone request always fits

  TenancyOptions opts;
  EXPECT_FALSE(opts.enabled());
  opts.per_tenant[9] = TenantLimits{};  // all-zero entry enforces nothing
  EXPECT_FALSE(opts.enabled());
  opts.per_tenant[9].max_pending = 4;
  EXPECT_TRUE(opts.enabled());
  EXPECT_EQ(opts.limits_for(9).max_pending, 4u);
  EXPECT_EQ(opts.limits_for(1).max_pending, 0u);  // falls back to defaults
}

struct TenancyFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/41};
  bfv::PublicKey pk = scheme.keygen_public(scheme.keygen_secret());
  bfv::IntegerEncoder enc{scheme.context()};

  EvalRequest mult_request(std::int64_t x, std::int64_t y) {
    return {scheme.encrypt(pk, enc.encode(x)), scheme.encrypt(pk, enc.encode(y)),
            RequestKind::kEvalMult};
  }
};

TEST(Tenancy, RateLimitIsTypedAndConsumesNothing) {
  TenancyFixture f;
  ChipFarm farm(1);
  ServiceOptions opts;
  // A rate so slow the bucket effectively never refills during the test:
  // exactly `burst` requests are admitted, deterministically.
  opts.tenancy.per_tenant[7] = TenantLimits{/*rate_per_sec=*/1e-9, /*burst=*/3,
                                            /*max_pending=*/0};
  EvalService svc(f.scheme, farm, opts);
  const auto req = f.mult_request(3, 5);
  const SubmitOptions limited{Priority::kNormal, /*tenant=*/7, /*weight=*/1};

  std::vector<std::future<bfv::Ciphertext>> futures;
  futures.push_back(svc.submit(req, limited));
  futures.push_back(svc.submit(req, limited));
  // One token left: a batch of two must bounce whole -- and burn nothing.
  try {
    (void)svc.submit_batch({req, req}, limited);
    FAIL() << "expected RateLimitedError";
  } catch (const RateLimitedError& e) {
    EXPECT_GT(e.retry_after_seconds(), 0.0);
  }
  // The rejected batch consumed no tokens, so the last single still fits.
  futures.push_back(svc.submit(req, limited));
  EXPECT_THROW((void)svc.submit(req, limited), RateLimitedError);

  // An unlimited tenant shares the service unthrottled.
  futures.push_back(svc.submit(req, {Priority::kNormal, /*tenant=*/1, /*weight=*/1}));
  for (auto& fu : futures) EXPECT_EQ(fu.get().size(), 3u);
  svc.drain();

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected_rate_limited, 3u);  // the 2-batch + the single
  EXPECT_EQ(st.completed, 4u);
  std::uint64_t tenant7_rejected = 0, tenant7_submitted = 0;
  for (const auto& tn : st.per_tenant)
    if (tn.tenant == 7) {
      tenant7_rejected = tn.rejected;
      tenant7_submitted = tn.submitted;
    }
  EXPECT_EQ(tenant7_rejected, 3u);
  EXPECT_EQ(tenant7_submitted, 3u);  // disjoint from rejected
}

TEST(Tenancy, PendingQuotaSpansTheBatchAndReleasesAtSettlement) {
  TenancyFixture f;
  ChipFarm farm(1);
  ServiceOptions opts;
  opts.tenancy.per_tenant[5] = TenantLimits{/*rate_per_sec=*/0, /*burst=*/0,
                                            /*max_pending=*/2};
  EvalService svc(f.scheme, farm, opts);
  const auto req = f.mult_request(2, 6);
  const SubmitOptions quota{Priority::kNormal, /*tenant=*/5, /*weight=*/1};

  // A batch past the quota bounces whole, before anything is enqueued.
  EXPECT_THROW((void)svc.submit_batch({req, req, req}, quota), TenantQuotaError);
  EXPECT_EQ(svc.stats().rejected_quota, 3u);

  // At the quota exactly: admitted.
  auto futures = svc.submit_batch({req, req}, quota);
  for (auto& fu : futures) EXPECT_EQ(fu.get().size(), 3u);
  svc.drain();

  // Settled work released its pending slots, so the quota is free again --
  // if release leaked, this second full-quota batch would bounce.
  auto again = svc.submit_batch({req, req}, quota);
  for (auto& fu : again) EXPECT_EQ(fu.get().size(), 3u);
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 4u);
  EXPECT_EQ(svc.stats().failed, 0u);
}

TEST(Tenancy, DefaultLimitsGovernEveryTenantAndEntriesExempt) {
  TenancyFixture f;
  ChipFarm farm(1);
  ServiceOptions opts;
  opts.tenancy.default_limits.max_pending = 1;
  opts.tenancy.per_tenant[8] = TenantLimits{};  // tenant 8 is exempt
  EvalService svc(f.scheme, farm, opts);
  const auto req = f.mult_request(4, 4);

  EXPECT_THROW((void)svc.submit_batch({req, req},
                                      {Priority::kNormal, /*tenant=*/2, /*weight=*/1}),
               TenantQuotaError);
  auto futures = svc.submit_batch({req, req, req, req},
                                  {Priority::kNormal, /*tenant=*/8, /*weight=*/1});
  for (auto& fu : futures) EXPECT_EQ(fu.get().size(), 3u);
}

TEST(Tenancy, MaxQueueCountsInFlightRounds) {
  // The satellite bugfix pin: max_queue bounds queued + in-flight work, so
  // a deep pipeline cannot hold pipeline_depth x the bound.  The observed
  // peak pending depth must never exceed the bound.
  TenancyFixture f;
  ChipFarm farm(2);
  ServiceOptions opts;
  opts.max_batch = 1;       // every request is its own round
  opts.max_queue = 2;
  opts.pipeline_depth = 4;  // deep ring: the old queue_.size()-only check
                            // would admit up to ~bound x depth requests
  EvalService svc(f.scheme, farm, opts);
  const auto req = f.mult_request(5, 7);

  std::vector<std::future<bfv::Ciphertext>> futures;
  std::size_t rejected = 0;
  while (futures.size() < 16) {
    try {
      futures.push_back(svc.submit(req));
    } catch (const QueueFullError&) {
      ++rejected;
    }
  }
  for (auto& fu : futures) EXPECT_EQ(fu.get().size(), 3u);
  svc.drain();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 16u);
  EXPECT_LE(st.peak_queue_depth, opts.max_queue);
  EXPECT_EQ(st.rejected_queue_full, rejected);
}

}  // namespace
}  // namespace cofhee::service
