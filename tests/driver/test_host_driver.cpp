#include "driver/host_driver.hpp"

#include <gtest/gtest.h>

#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::driver {
namespace {

using chip::Bank;
using nt::Barrett128;

struct DriverFixture {
  chip::CofheeChip chip;
  u128 q;
  std::size_t n;
  Barrett128 ring;

  explicit DriverFixture(std::size_t n_, unsigned bits = 109)
      : q(nt::find_ntt_prime_u128(bits, n_)), n(n_), ring(q) {}

  HostDriver make_driver(ExecMode mode, Link link = Link::kSpi) {
    HostDriver d(chip, mode, link);
    d.configure_ring(q, n, nt::primitive_2nth_root(q, n));
    return d;
  }

  std::vector<u128> random_poly(std::uint64_t seed) {
    poly::Rng rng(seed);
    return poly::sample_uniform128(rng, n, q);
  }
};

TEST(HostDriver, TimedPolynomialUploadRoundTrip) {
  DriverFixture f(128);
  auto d = f.make_driver(ExecMode::kFifo, Link::kSpi);
  const auto a = f.random_poly(1);
  const double up = d.load_polynomial(Bank::kSp0, 0, a);
  EXPECT_GT(up, 0.0);
  double down = 0;
  const auto back = d.read_polynomial(Bank::kSp0, 0, f.n, &down);
  EXPECT_EQ(back, a);
  EXPECT_GT(down, 0.0);
  // SPI at 50 MHz moves ~6.25 MB/s; 128 coeffs x 16 B ~ 2 KiB + framing.
  EXPECT_LT(up, 1e-2);
}

TEST(HostDriver, UartIsSlowerThanSpi) {
  DriverFixture f(128);
  auto du = f.make_driver(ExecMode::kFifo, Link::kUart);
  auto ds = f.make_driver(ExecMode::kFifo, Link::kSpi);
  const auto a = f.random_poly(2);
  const double uart_s = du.load_polynomial(Bank::kSp0, 0, a);
  const double spi_s = ds.load_polynomial(Bank::kSp1, 0, a);
  EXPECT_GT(uart_s, spi_s * 5);  // 3 Mbaud 8N1 vs 50 MHz SPI
}

TEST(HostDriver, PolyMulMatchesSchoolbook) {
  DriverFixture f(128);
  auto d = f.make_driver(ExecMode::kFifo);
  const auto a = f.random_poly(3);
  const auto b = f.random_poly(4);
  f.chip.load_coeffs(Bank::kSp0, 0, a);
  f.chip.load_coeffs(Bank::kSp1, 0, b);
  const auto rep = d.poly_mul();
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n),
            poly::schoolbook_negacyclic_mul(f.ring, a, b));
  EXPECT_EQ(rep.commands, 4u);  // 2 NTT + Hadamard + iNTT
}

TEST(HostDriver, PolyMulCyclesMatchTableV) {
  // Table V PolyMul rows: 83,777 cc at n=2^12 and 179,045 cc at n=2^13.
  // Our composed schedule gives 2*NTT + Had + iNTT + DMA staging; assert
  // within 0.15% of silicon (measurement jitter; see EXPERIMENTS.md).
  for (const auto& [n, silicon] :
       {std::pair<std::size_t, std::uint64_t>{4096, 83777}, {8192, 179045}}) {
    DriverFixture f(n, 60);
    auto d = f.make_driver(ExecMode::kFifo);
    const auto a = f.random_poly(5);
    f.chip.load_coeffs(Bank::kSp0, 0, a);
    f.chip.load_coeffs(Bank::kSp1, 0, a);
    const auto rep = d.poly_mul();
    const double err = std::abs(static_cast<double>(rep.compute_cycles) -
                                static_cast<double>(silicon)) /
                       static_cast<double>(silicon);
    EXPECT_LT(err, 0.0015) << "n=" << n << " cycles=" << rep.compute_cycles;
  }
}

TEST(HostDriver, CiphertextMulMatchesSoftwareTensor) {
  DriverFixture f(64);
  auto d = f.make_driver(ExecMode::kFifo);
  const auto a0 = f.random_poly(6), a1 = f.random_poly(7);
  const auto b0 = f.random_poly(8), b1 = f.random_poly(9);
  f.chip.load_coeffs(Bank::kSp0, 0, a0);
  f.chip.load_coeffs(Bank::kSp1, 0, a1);
  f.chip.load_coeffs(Bank::kSp2, 0, b0);
  f.chip.load_coeffs(Bank::kSp3, 0, b1);
  d.ciphertext_mul();

  // Expected tensor (Eq. 4 numerators): Y0 = a0 b0, Y1 = a0 b1 + a1 b0,
  // Y2 = a1 b1, all negacyclic.
  const auto y0 = poly::schoolbook_negacyclic_mul(f.ring, a0, b0);
  auto y1 = poly::pointwise_add(f.ring, poly::schoolbook_negacyclic_mul(f.ring, a0, b1),
                                poly::schoolbook_negacyclic_mul(f.ring, a1, b0));
  const auto y2 = poly::schoolbook_negacyclic_mul(f.ring, a1, b1);
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp0, 0, f.n), y0);
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp1, 0, f.n), y1);
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), y2);
}

TEST(HostDriver, CiphertextMulLatencyMatchesFig6) {
  // Fig. 6a: 0.84 ms at (n, log q) = (2^12, 109) on one tower.
  DriverFixture f(4096, 109);
  auto d = f.make_driver(ExecMode::kFifo);
  const auto a = f.random_poly(10);
  for (Bank b : {Bank::kSp0, Bank::kSp1, Bank::kSp2, Bank::kSp3})
    f.chip.load_coeffs(b, 0, a);
  const auto rep = d.ciphertext_mul();
  EXPECT_EQ(rep.commands, 12u);  // 4 NTT + 4 Hadamard + 1 add + 3 iNTT
  EXPECT_NEAR(rep.compute_ms, 0.84, 0.01);
}

TEST(HostDriver, AllExecutionModesAgree) {
  // Section III-I: the three modes differ in sequencing cost, not results.
  std::vector<std::vector<u128>> results;
  double direct_io = -1;
  for (ExecMode mode : {ExecMode::kDirect, ExecMode::kFifo, ExecMode::kCm0}) {
    DriverFixture f(64);
    auto d = f.make_driver(mode);
    const auto a = f.random_poly(11);
    const auto b = f.random_poly(12);
    f.chip.load_coeffs(Bank::kSp0, 0, a);
    f.chip.load_coeffs(Bank::kSp1, 0, b);
    const auto rep = d.poly_mul();
    if (mode == ExecMode::kDirect) direct_io = rep.io_seconds;
    if (mode == ExecMode::kCm0) {
      EXPECT_GT(rep.cm0_cycles, 0u);
    }
    results.push_back(f.chip.read_coeffs(Bank::kSp2, 0, f.n));
    EXPECT_GT(rep.compute_cycles, 0u);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
  // Mode 1 pays serial latency per command ("this mode is slow").
  EXPECT_GT(direct_io, 0.0);
}

TEST(HostDriver, Cm0ModeRunsLongPrograms) {
  // More commands than the FIFO depth forces multi-batch firmware.
  DriverFixture f(64);
  auto d = f.make_driver(ExecMode::kCm0);
  const auto a = f.random_poly(13);
  f.chip.load_coeffs(Bank::kSp0, 0, a);
  std::vector<chip::Instr> prog;
  for (int i = 0; i < 40; ++i) {
    prog.push_back({Opcode::kMemCpy, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0},
                    static_cast<std::uint32_t>(f.n), 0});
  }
  const auto rep = d.run(prog);
  EXPECT_EQ(rep.commands, 40u);
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp1, 0, f.n), a);
}

TEST(HostDriver, ConfigureBeforeUseEnforced) {
  chip::CofheeChip c;
  HostDriver d(c, ExecMode::kFifo);
  EXPECT_THROW((void)d.poly_mul(), std::logic_error);
}

}  // namespace
}  // namespace cofhee::driver
