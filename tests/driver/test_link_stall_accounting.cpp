// Chaos pin for link stall accounting (SerialLink::pre_transaction):
// injected kStallLink seconds are charged to the link clock BEFORE byte
// accounting, so LinkStats::seconds must reconcile exactly --
//
//   seconds == (bytes_tx + bytes_rx) / bytes_per_second  +  sum(stalls)
//
// -- on every frame shape the driver sends: register writes, burst frames
// (configure_ring's coalesced uploads) and 17-byte seed-compressed key
// frames (load_polynomial_seeded).  The driver attributes io as deltas of
// stats().seconds and the trace recorder's "link" spans are built from
// the same deltas, so both views must agree with the closed form; a
// timed-out stall must charge nothing (the frame never moved).  Any
// drift between these three books means stalls are being double-counted
// or dropped somewhere in the io-attribution chain.
#include <gtest/gtest.h>

#include <cstdint>

#include "chip/chip.hpp"
#include "chip/config.hpp"
#include "chip/fault.hpp"
#include "driver/host_driver.hpp"
#include "nt/primes.hpp"
#include "obs/trace.hpp"

namespace cofhee {
namespace {

using driver::ExecMode;
using driver::HostDriver;
using driver::Link;
using driver::u128;

constexpr std::size_t kN = 64;
constexpr double kStall = 0.125;  // seconds, well below the 1.0s timeout

/// (bytes_tx + bytes_rx) / bps for a link: the pure line-time component.
double line_seconds(const chip::SerialLink& lk) {
  return static_cast<double>(lk.stats().bytes_tx + lk.stats().bytes_rx) /
         lk.bytes_per_second();
}

TEST(LinkStallAccounting, BurstFramesReconcileUnderStalls) {
  const u128 q = nt::find_ntt_prime_u128(59, kN);
  const u128 psi = nt::primitive_2nth_root(q, kN);

  // Reference run: count the transactions a timed configure performs.
  chip::CofheeChip clean_chip;
  HostDriver clean(clean_chip, ExecMode::kFifo, Link::kSpi);
  const double clean_io = clean.configure_ring(q, kN, psi, /*timed=*/true);
  const std::uint64_t txns = clean_chip.spi().stats().transactions;
  ASSERT_GT(txns, 0u);
  EXPECT_NEAR(clean_io, line_seconds(clean_chip.spi()), 1e-9);

  // Faulted run: stall EVERY one of those transactions.  Same bytes, same
  // transaction count, plus exactly txns * kStall of injected line time.
  chip::FaultSchedule sch;
  sch.events.push_back({chip::FaultKind::kStallLink, 0, txns, kStall});
  chip::FaultInjector inj(sch);
  chip::CofheeChip chip;
  chip.spi().set_fault_injector(&inj);
  HostDriver drv(chip, ExecMode::kFifo, Link::kSpi);
  const double io = drv.configure_ring(q, kN, psi, /*timed=*/true);

  const chip::LinkStats& st = chip.spi().stats();
  EXPECT_EQ(st.transactions, txns);
  EXPECT_EQ(st.bytes_tx, clean_chip.spi().stats().bytes_tx);
  const double expected =
      line_seconds(chip.spi()) + static_cast<double>(txns) * kStall;
  EXPECT_NEAR(st.seconds, expected, 1e-9);
  // The driver's returned io IS the stats delta, stalls included -- this
  // is what flows into ChipMulReport::io_seconds and the service's
  // per-chip attribution, so a degraded link is *visible* there.
  EXPECT_NEAR(io, expected, 1e-9);
  EXPECT_NEAR(io - clean_io, static_cast<double>(txns) * kStall, 1e-9);
}

TEST(LinkStallAccounting, SeedFramesReconcileAndTraceAgrees) {
  const u128 q = nt::find_ntt_prime_u128(59, kN);
  const u128 psi = nt::primitive_2nth_root(q, kN);

  // Stall every transaction of the run; the untimed configure uses the
  // register backdoor (no link traffic), so the seed frame is op 0.
  chip::FaultSchedule sch;
  sch.events.push_back({chip::FaultKind::kStallLink, 0, 1000, kStall});
  chip::FaultInjector inj(sch);
  chip::CofheeChip chip;
  chip.spi().set_fault_injector(&inj);
  HostDriver drv(chip, ExecMode::kFifo, Link::kSpi);
  obs::TraceRecorder rec;
  drv.set_tracer(&rec, /*chip=*/0);

  drv.configure_ring(q, kN, psi, /*timed=*/false);
  ASSERT_EQ(chip.spi().stats().transactions, 0u);  // backdoor: no frames

  const double io = drv.load_polynomial_seeded(chip::Bank::kSp1, 0, kN,
                                               /*seed=*/1234, /*tower=*/0);
  const chip::LinkStats& st = chip.spi().stats();
  // One 17-byte compressed frame, stalled once.
  EXPECT_EQ(st.transactions, 1u);
  EXPECT_EQ(st.bytes_tx, 17u);
  EXPECT_EQ(st.bytes_rx, 0u);
  const double expected = 17.0 / chip.spi().bytes_per_second() + kStall;
  EXPECT_NEAR(st.seconds, expected, 1e-12);
  EXPECT_NEAR(io, expected, 1e-12);

  // The trace's "link" spans are built from the same stats deltas: the
  // simulated link time in the trace equals the link clock exactly.
  if (obs::TraceRecorder::enabled())
    EXPECT_NEAR(rec.sim_category_seconds("link"), st.seconds, 1e-12);
}

TEST(LinkStallAccounting, TimedOutStallChargesNothing) {
  // A stall past link_timeout_seconds throws LinkTimeoutError from
  // pre_transaction -- before the transaction counter or any byte moves,
  // so the link books stay clean (the frame never happened).
  chip::FaultSchedule sch;
  sch.link_timeout_seconds = 1.0;
  sch.events.push_back({chip::FaultKind::kStallLink, 0, 1, 4.0});
  chip::FaultInjector inj(sch);
  chip::CofheeChip chip;
  chip.spi().set_fault_injector(&inj);

  const std::uint32_t dbg = chip::MemoryMap::kGpcfgBase + 0x24;  // DBG_REG
  EXPECT_THROW(chip.spi().host_write32(dbg, 0xDEADBEEF), chip::LinkTimeoutError);
  const chip::LinkStats& st = chip.spi().stats();
  EXPECT_EQ(st.transactions, 0u);
  EXPECT_EQ(st.bytes_tx, 0u);
  EXPECT_DOUBLE_EQ(st.seconds, 0.0);
  // The link recovers once the scheduled window passes: the next frame
  // completes and pays only its line time.
  chip.spi().host_write32(dbg, 7);
  EXPECT_EQ(st.transactions, 1u);
  EXPECT_DOUBLE_EQ(st.seconds, 9.0 / chip.spi().bytes_per_second());
}

}  // namespace
}  // namespace cofhee
