// Full-stack integration: BFV EvalMult with the tensor computed on the
// CoFHEE chip model, bit-exact against the pure-software path.
#include "driver/chip_bfv.hpp"

#include <gtest/gtest.h>

#include "bfv/encoder.hpp"

namespace cofhee::driver {
namespace {

struct StackFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), 5};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  chip::CofheeChip soc;
};

TEST(ChipBfv, MultiplyMatchesSoftwareBitExactly) {
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(321));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(-77));

  const auto sw = f.scheme.multiply(ca, cb);

  ChipBfvEvaluator chip_eval(f.soc);
  ChipMulReport rep;
  const auto hw = chip_eval.multiply(f.scheme, ca, cb, &rep);

  ASSERT_EQ(hw.size(), sw.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    EXPECT_EQ(hw.c[i].towers, sw.c[i].towers) << "component " << i;
  }
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), 321 * -77);
  // One Algorithm-3 run per extended tower (|Q| + |B| = 2 + 3).
  EXPECT_EQ(rep.towers, 5u);
  EXPECT_GT(rep.chip_cycles, 0u);
  EXPECT_GT(rep.io_seconds, 0.0);
}

TEST(ChipBfv, SquaringReusesResidentOperandBanks) {
  // Passing the same ciphertext for both operands must take the SRAM
  // scratch-reuse path: B0/B1 synthesized from SP0/SP1 by on-chip DMA
  // instead of re-uploaded, with bit-identical results and strictly less
  // serial transport than the general two-operand path.
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(150));
  const auto cb = ca;  // same value, distinct object: the general path

  const auto sw = f.scheme.multiply(ca, ca);

  ChipBfvEvaluator ev(f.soc);
  ChipMulReport general, squared;
  const auto hw_general = ev.multiply(f.scheme, ca, cb, &general);
  const auto hw_squared = ev.multiply(f.scheme, ca, ca, &squared);

  ASSERT_EQ(hw_squared.size(), sw.size());
  for (std::size_t i = 0; i < sw.size(); ++i) {
    EXPECT_EQ(hw_squared.c[i].towers, sw.c[i].towers) << "component " << i;
    EXPECT_EQ(hw_general.c[i].towers, sw.c[i].towers) << "component " << i;
  }
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw_squared)), 150 * 150);

  // Two uploads skipped per extended tower, none on the general path.
  const auto ext = f.scheme.context().ext_basis().size();
  EXPECT_EQ(squared.sram_reuses, 2 * ext);
  EXPECT_EQ(general.sram_reuses, 0u);
  // The serial link carries half the uploads (readback unchanged)...
  EXPECT_LT(squared.io_seconds, general.io_seconds);
  // ...and the chip pays the foreground DMA duplication instead.
  EXPECT_GT(squared.chip_cycles, general.chip_cycles);
}

TEST(ChipBfv, PrepareSquareRejectsNonCanonicalCiphertext) {
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(3));
  const auto tensor = f.scheme.multiply(ca, ca);  // 3 elements
  EXPECT_THROW((void)ChipBfvEvaluator::prepare_square(f.scheme, tensor),
               std::invalid_argument);
}

TEST(ChipBfv, AllExecutionModesAgree) {
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(12));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(34));
  std::vector<std::vector<poly::Coeffs<nt::u64>>> results;
  for (ExecMode mode : {ExecMode::kFifo, ExecMode::kCm0}) {
    chip::CofheeChip soc;
    ChipBfvEvaluator ev(soc, mode);
    results.push_back(ev.multiply(f.scheme, ca, cb).c[0].towers);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(ChipBfv, IoDominatesAtSmallRings) {
  // The Section VIII-A observation from the other side: at bring-up scale
  // the serial link, not the PE, is the bottleneck.
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(1));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(2));
  ChipBfvEvaluator ev(f.soc, ExecMode::kFifo, Link::kUart);
  ChipMulReport rep;
  (void)ev.multiply(f.scheme, ca, cb, &rep);
  EXPECT_GT(rep.io_seconds, rep.chip_ms * 1e-3);
}

TEST(ChipBfv, RelinearizeMatchesSoftwareBitExactly) {
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto rk = f.scheme.keygen_relin(f.sk, 16);
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(45));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(-3));
  const auto tensor = f.scheme.multiply(ca, cb);  // 3 elements

  const auto sw = f.scheme.relinearize(tensor, rk);

  ChipBfvEvaluator chip_eval(f.soc);
  ChipMulReport rep;
  const auto hw = chip_eval.relinearize(f.scheme, tensor, rk, &rep);

  ASSERT_EQ(hw.size(), 2u);
  for (std::size_t i = 0; i < hw.size(); ++i)
    EXPECT_EQ(hw.c[i].towers, sw.c[i].towers) << "component " << i;
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), 45 * -3);
  // One ring configuration per Q tower, and per (digit, component) products:
  // |Q| towers x |digits| x 2 PolyMuls.
  const auto qt = f.scheme.context().q_basis().size();
  EXPECT_EQ(rep.towers, qt);
  EXPECT_EQ(rep.ks_products, qt * rk.keys.size() * 2);
  EXPECT_GT(rep.chip_cycles, 0u);
  EXPECT_GT(rep.io_seconds, 0.0);
}

TEST(ChipBfv, MultiplyRelinMatchesSoftwareChain) {
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto rk = f.scheme.keygen_relin(f.sk, 16);
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(19));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(23));

  const auto sw = f.scheme.relinearize(f.scheme.multiply(ca, cb), rk);

  ChipBfvEvaluator chip_eval(f.soc);
  ChipMulReport rep;
  const auto hw = chip_eval.multiply_relin(f.scheme, ca, cb, rk, &rep);

  ASSERT_EQ(hw.size(), 2u);
  for (std::size_t i = 0; i < hw.size(); ++i)
    EXPECT_EQ(hw.c[i].towers, sw.c[i].towers) << "component " << i;
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), 19 * 23);
  // Both halves accounted: tensor ring configs over the extended basis plus
  // key-switch configs over Q.
  const auto& ctx = f.scheme.context();
  EXPECT_EQ(rep.towers, ctx.ext_basis().size() + ctx.q_basis().size());
  EXPECT_EQ(rep.ks_products, ctx.q_basis().size() * rk.keys.size() * 2);
}

TEST(ChipBfv, RelinearizeRejectsMalformedInputs) {
  StackFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto rk = f.scheme.keygen_relin(f.sk, 16);
  const auto ct2 = f.scheme.encrypt(f.pk, enc.encode(7));  // 2 elements
  ChipBfvEvaluator ev(f.soc);
  EXPECT_THROW((void)ev.relinearize(f.scheme, ct2, rk), std::invalid_argument);

  // Keys generated at a different level (one tower vs two) are rejected
  // before touching the chip.
  bfv::Bfv other(bfv::BfvParams::create(64, {40}, 65537), 9);
  const auto other_rk = other.keygen_relin(other.keygen_secret(), 16);
  const auto tensor = f.scheme.multiply(ct2, f.scheme.encrypt(f.pk, enc.encode(2)));
  EXPECT_THROW((void)ev.relinearize(f.scheme, tensor, other_rk), std::invalid_argument);

  // Too few digits to cover log2(Q): high digits would be dropped silently.
  bfv::RelinKeys truncated = rk;
  truncated.keys.resize(1);
  EXPECT_THROW((void)ev.relinearize(f.scheme, tensor, truncated), std::invalid_argument);
}

TEST(ChipBfv, RejectsOversizedRing) {
  chip::CofheeChip soc;  // bank_words = 2^14 -> n up to 2^13 in 2 slots
  bfv::Bfv big(bfv::BfvParams::create(1u << 14, {54, 55}, 65537), 1);
  const auto sk = big.keygen_secret();
  const auto pk = big.keygen_public(sk);
  bfv::Plaintext m;
  m.coeffs.assign(1u << 14, 0);
  const auto ct = big.encrypt(pk, m);
  ChipBfvEvaluator ev(soc);
  EXPECT_THROW((void)ev.multiply(big, ct, ct), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::driver
