// Link-transport optimization battery (burst framing, twiddle-ROM cache,
// seed-compressed key uploads).
//
// The optimizations are only admissible if they are *invisible* to the
// chip: every test here is a differential against the unoptimized path --
// byte-identical register/SRAM state, strictly fewer link transactions,
// exact counter accounting -- plus a chaos case proving a corrupt burst
// frame still faults before any byte lands (the link's CRC-style
// pre-transaction rejection survives coalescing).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "bfv/bfv.hpp"
#include "chip/chip.hpp"
#include "chip/fault.hpp"
#include "chip/gpcfg.hpp"
#include "driver/host_driver.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee {
namespace {

using driver::ExecMode;
using driver::HostDriver;
using driver::Link;
using driver::u128;

/// Every GPCFG register the timed configure path programs, read back through
/// the register file (the bus-visible architectural state).
std::vector<std::uint32_t> ring_register_image(chip::CofheeChip& chip) {
  using chip::Reg;
  static constexpr Reg kRingRegs[] = {
      Reg::kQ0,          Reg::kQ1,          Reg::kQ2,          Reg::kQ3,
      Reg::kFheCtl1,     Reg::kInvPolyDeg0, Reg::kInvPolyDeg1, Reg::kInvPolyDeg2,
      Reg::kInvPolyDeg3, Reg::kBarrettCtl1, Reg::kBarrettCtl2_0,
      Reg::kBarrettCtl2_1, Reg::kBarrettCtl2_2, Reg::kBarrettCtl2_3,
      Reg::kBarrettCtl2_4};
  std::vector<std::uint32_t> image;
  for (const Reg r : kRingRegs) image.push_back(chip.gpcfg().read(r));
  return image;
}

std::vector<u128> random_poly(std::size_t n, u128 q, std::uint64_t seed) {
  poly::Rng rng(seed);
  const auto c = poly::sample_uniform128(rng, n, q);
  return {c.begin(), c.end()};
}

/// Two chips, one ring: the batched driver and the write32-per-register
/// driver must leave byte-identical ring registers and twiddle ROM, and the
/// batched one must spend strictly fewer link transactions doing it.
TEST(LinkBatching, ConfigureRingByteIdenticalAndFewerTransactions) {
  const std::size_t n = 64;
  const u128 q = nt::find_ntt_prime_u128(59, n);
  const u128 psi = nt::primitive_2nth_root(q, n);

  chip::CofheeChip batched_chip;
  chip::CofheeChip plain_chip;
  HostDriver batched(batched_chip, ExecMode::kFifo, Link::kSpi);
  HostDriver plain(plain_chip, ExecMode::kFifo, Link::kSpi);
  plain.set_link_batching(false);

  const double io_b = batched.configure_ring(q, n, psi, /*timed=*/true);
  const double io_p = plain.configure_ring(q, n, psi, /*timed=*/true);

  // Architectural state is byte-identical: ring registers and the ROM bank.
  EXPECT_EQ(ring_register_image(batched_chip), ring_register_image(plain_chip));
  const auto rom_b = batched_chip.read_coeffs(chip::Bank::kTw, 0, n);
  const auto rom_p = plain_chip.read_coeffs(chip::Bank::kTw, 0, n);
  ASSERT_EQ(rom_b.size(), rom_p.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(rom_b[i] == rom_p[i]) << i;

  // Strictly fewer transactions, and cheaper in wire time too.
  const auto tx_b = batched_chip.spi().stats().transactions;
  const auto tx_p = plain_chip.spi().stats().transactions;
  EXPECT_LT(tx_b, tx_p);
  EXPECT_LT(io_b, io_p);

  // 14 register writes (4 Q + 6 Barrett + 4 INV_POLYDEG) rode in bursts;
  // FHECTL1 stays a standalone write32.
  EXPECT_EQ(batched.transport().batched_writes, 14u);
  EXPECT_EQ(plain.transport().batched_writes, 0u);

  // Exact transaction budget: 3 register bursts + FHECTL1 + ROM burst
  // versus 15 standalone writes + ROM burst.
  EXPECT_EQ(tx_b, 5u);
  EXPECT_EQ(tx_p, 16u);
}

/// Mode-1 (direct) execution pushes each command as a 4-word FIFO-window
/// burst; results must match the write32-per-word driver exactly, including
/// the kCommandFifo3 push trigger firing at the same point.
TEST(LinkBatching, DirectModeByteIdenticalAndFewerTransactions) {
  const std::size_t n = 64;
  const u128 q = nt::find_ntt_prime_u128(59, n);
  const u128 psi = nt::primitive_2nth_root(q, n);
  const auto a = random_poly(n, q, 7);
  const auto b = random_poly(n, q, 8);

  auto run = [&](bool batching, std::uint64_t* transactions,
                 std::uint64_t* batched_writes) {
    chip::CofheeChip chip;
    HostDriver drv(chip, ExecMode::kDirect, Link::kSpi);
    drv.set_link_batching(batching);
    drv.configure_ring(q, n, psi);  // untimed: focus the counters on run()
    chip.load_coeffs(chip::Bank::kSp0, 0, a);
    chip.load_coeffs(chip::Bank::kSp1, 0, b);
    const auto before = chip.spi().stats().transactions;
    const auto rep = drv.poly_mul();
    EXPECT_EQ(rep.commands, 4u);
    *transactions = chip.spi().stats().transactions - before;
    *batched_writes = drv.transport().batched_writes;
    return chip.read_coeffs(chip::Bank::kSp2, 0, n);
  };

  std::uint64_t tx_b = 0, tx_p = 0, bw_b = 0, bw_p = 0;
  const auto out_b = run(true, &tx_b, &bw_b);
  const auto out_p = run(false, &tx_p, &bw_p);

  ASSERT_EQ(out_b.size(), out_p.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(out_b[i] == out_p[i]) << i;
  EXPECT_LT(tx_b, tx_p);
  // 4 commands x 4 words coalesced; the plain driver batches nothing.
  EXPECT_EQ(bw_b, 16u);
  EXPECT_EQ(bw_p, 0u);
}

/// Twiddle-ROM cache accounting, down to the exact counter values: hits
/// skip the whole configure (0 wire seconds), reconfigurations invalidate
/// and miss, explicit invalidation forces the next configure to program.
TEST(LinkBatching, TwiddleCacheCountersExact) {
  const std::size_t n = 64;
  const u128 q1 = nt::find_ntt_prime_u128(59, n);
  const u128 psi1 = nt::primitive_2nth_root(q1, n);
  const u128 q2 = nt::find_ntt_prime_u128(58, n);
  const u128 psi2 = nt::primitive_2nth_root(q2, n);

  chip::CofheeChip chip;
  const auto& tag = std::as_const(chip).twiddle_tag();

  HostDriver drv(chip, ExecMode::kFifo, Link::kSpi);
  EXPECT_GT(drv.configure_ring(q1, n, psi1, /*timed=*/true), 0.0);
  EXPECT_EQ(tag.misses, 1u);
  EXPECT_EQ(tag.hits, 0u);
  EXPECT_TRUE(tag.valid);

  // Same ring again: a hit, zero wire time, no new transactions.
  const auto tx0 = chip.spi().stats().transactions;
  EXPECT_EQ(drv.configure_ring(q1, n, psi1, /*timed=*/true), 0.0);
  EXPECT_EQ(chip.spi().stats().transactions, tx0);
  EXPECT_EQ(tag.hits, 1u);
  EXPECT_EQ(tag.misses, 1u);
  EXPECT_EQ(drv.transport().twiddle_cache_hits, 1u);

  // The cache is chip-resident: a *fresh* driver session hits too.
  {
    HostDriver later(chip, ExecMode::kFifo, Link::kSpi);
    EXPECT_EQ(later.configure_ring(q1, n, psi1, /*timed=*/true), 0.0);
    EXPECT_EQ(tag.hits, 2u);
    EXPECT_EQ(later.transport().twiddle_cache_hits, 1u);
  }

  // Different ring: drop the resident tag (one invalidation) and program.
  EXPECT_GT(drv.configure_ring(q2, n, psi2, /*timed=*/true), 0.0);
  EXPECT_EQ(tag.invalidations, 1u);
  EXPECT_EQ(tag.misses, 2u);
  EXPECT_TRUE(tag.valid);
  EXPECT_TRUE(tag.q == q2);

  // Explicit invalidation: the next configure of the same ring must pay.
  drv.invalidate_twiddle_cache();
  EXPECT_FALSE(tag.valid);
  EXPECT_EQ(tag.invalidations, 2u);
  EXPECT_GT(drv.configure_ring(q2, n, psi2, /*timed=*/true), 0.0);
  EXPECT_EQ(tag.misses, 3u);
  EXPECT_EQ(tag.hits, 2u);

  // Cache disabled: a resident matching tag is ignored and reprogrammed.
  drv.set_twiddle_cache(false);
  EXPECT_GT(drv.configure_ring(q2, n, psi2, /*timed=*/true), 0.0);
  EXPECT_EQ(tag.hits, 2u);
  EXPECT_EQ(tag.misses, 4u);
}

/// The untimed (backdoor) configure records the resident ring without
/// touching hit/miss accounting, so a following timed configure of the same
/// ring is a hit -- sessions after a backdoor bring-up skip the preload.
TEST(LinkBatching, UntimedConfigureSeedsTheCache) {
  const std::size_t n = 64;
  const u128 q = nt::find_ntt_prime_u128(59, n);
  const u128 psi = nt::primitive_2nth_root(q, n);

  chip::CofheeChip chip;
  HostDriver drv(chip, ExecMode::kFifo, Link::kSpi);
  drv.configure_ring(q, n, psi);  // untimed
  const auto& tag = std::as_const(chip).twiddle_tag();
  EXPECT_TRUE(tag.valid);
  EXPECT_EQ(tag.hits, 0u);
  EXPECT_EQ(tag.misses, 0u);

  EXPECT_EQ(drv.configure_ring(q, n, psi, /*timed=*/true), 0.0);
  EXPECT_EQ(tag.hits, 1u);
}

/// Seed-compressed key upload: the 17-byte seed frame leaves SRAM
/// bit-identical to the full coefficient burst of the same tower, saves
/// exactly (9 + 16 n) - 17 wire bytes, and charges the modeled expansion
/// cycles to the chip.
TEST(LinkBatching, SeedUploadDecodesBitIdentically) {
  const std::size_t n = 64;
  // expand_uniform samples below a 64-bit modulus; use a u64-range prime.
  const std::uint64_t q64 = nt::find_ntt_prime_u64(50, n);
  const u128 q = q64;
  const u128 psi = nt::primitive_2nth_root(q, n);
  const std::uint64_t seed = 0xC0F4EE5EEDull;
  const std::size_t tower = 3;

  chip::CofheeChip seeded_chip;
  chip::CofheeChip plain_chip;
  HostDriver seeded(seeded_chip, ExecMode::kFifo, Link::kSpi);
  HostDriver plain(plain_chip, ExecMode::kFifo, Link::kSpi);
  plain.set_key_compression(false);
  seeded.configure_ring(q, n, psi);
  plain.configure_ring(q, n, psi);

  const auto cycles_before = seeded_chip.cycles();
  std::uint64_t expand_cycles = 0;
  const double io_s = seeded.load_polynomial_seeded(chip::Bank::kSp1, 0, n, seed,
                                                    tower, &expand_cycles);
  const double io_p =
      plain.load_polynomial_seeded(chip::Bank::kSp1, 0, n, seed, tower);

  // Bit-identical SRAM, against both the compression-off driver and the
  // host-side expansion definition itself.
  const auto mem_s = seeded_chip.read_coeffs(chip::Bank::kSp1, 0, n);
  const auto mem_p = plain_chip.read_coeffs(chip::Bank::kSp1, 0, n);
  const auto host = poly::expand_uniform(seed, tower, n, q64);
  ASSERT_EQ(mem_s.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(mem_s[i] == mem_p[i]) << i;
    EXPECT_TRUE(mem_s[i] == u128{host[i]}) << i;
  }

  // Exact accounting: one 17-byte frame vs one 9 + 16 n byte burst.
  EXPECT_LT(io_s, io_p);
  EXPECT_EQ(seeded.transport().key_bytes_saved, (9 + 16 * n) - 17);
  EXPECT_EQ(plain.transport().key_bytes_saved, 0u);
  EXPECT_EQ(seeded_chip.spi().stats().transactions, 1u);
  EXPECT_EQ(plain_chip.spi().stats().transactions, 1u);

  // Expansion is not free: 2 cycles per 32-bit word, charged to the chip.
  EXPECT_EQ(expand_cycles, 4 * n * HostDriver::kSeedExpandCyclesPerWord);
  EXPECT_EQ(seeded_chip.cycles() - cycles_before, expand_cycles);
}

/// Key generation records one seed per digit and the `a` halves really are
/// the expansion of those seeds -- the property the driver's seed-frame
/// upload relies on for bit-identity.
TEST(LinkBatching, RelinKeygenRecordsExpandableSeeds) {
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(64), /*seed=*/99);
  const auto sk = scheme.keygen_secret();
  const auto rk = scheme.keygen_relin(sk, 16);
  ASSERT_TRUE(rk.seeded());
  const auto& basis = scheme.context().q_basis();
  for (std::size_t d = 0; d < rk.keys.size(); ++d) {
    const auto& a = rk.keys[d].second;
    for (std::size_t t = 0; t < a.towers.size(); ++t) {
      const auto expanded = poly::expand_uniform(
          rk.a_seeds[d], t, a.towers[t].size(), basis.modulus(t));
      EXPECT_EQ(a.towers[t], expanded) << "digit " << d << " tower " << t;
    }
  }
}

/// Chaos: a corrupt-frame fault scheduled onto a coalesced burst rejects
/// the whole frame *before any byte moves* -- registers and SRAM stay
/// untouched and the twiddle tag stays invalid, so a retry reprograms from
/// scratch instead of trusting half-written state.
TEST(LinkBatching, CorruptBurstFrameFaultsPreByte) {
  const std::size_t n = 64;
  const u128 q = nt::find_ntt_prime_u128(59, n);
  const u128 psi = nt::primitive_2nth_root(q, n);

  // Transaction 0 is the Q-register burst of the timed configure: corrupt it.
  chip::FaultSchedule sch;
  sch.events.push_back({chip::FaultKind::kCorruptFrame, 0, 1, 0});
  chip::FaultInjector inj(sch);

  chip::CofheeChip chip;
  chip.spi().set_fault_injector(&inj);
  HostDriver drv(chip, ExecMode::kFifo, Link::kSpi);
  const auto clean = ring_register_image(chip);

  EXPECT_THROW(drv.configure_ring(q, n, psi, /*timed=*/true),
               chip::ChipFaultError);
  EXPECT_EQ(inj.faults_fired(), 1u);

  // Pre-byte rejection: nothing landed, and the tag was dropped before the
  // programming started so no stale hit can follow.
  EXPECT_EQ(ring_register_image(chip), clean);
  const auto rom = chip.read_coeffs(chip::Bank::kTw, 0, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(rom[i] == 0) << i;
  EXPECT_FALSE(chip.twiddle_tag().valid);

  // The window passed; the retry succeeds and programs the full ring.
  EXPECT_GT(drv.configure_ring(q, n, psi, /*timed=*/true), 0.0);
  EXPECT_TRUE(chip.twiddle_tag().valid);
}

/// Chaos: the 17-byte seed frame is a transaction like any other -- a
/// corrupt frame rejects it before the chip-side expansion runs, leaving
/// SRAM untouched and no expansion cycles charged.
TEST(LinkBatching, CorruptSeedFrameFaultsPreByte) {
  const std::size_t n = 64;
  const std::uint64_t q64 = nt::find_ntt_prime_u64(50, n);
  const u128 q = q64;
  const u128 psi = nt::primitive_2nth_root(q, n);

  chip::CofheeChip chip;
  HostDriver drv(chip, ExecMode::kFifo, Link::kSpi);
  drv.configure_ring(q, n, psi);  // untimed bring-up: no link transactions

  chip::FaultSchedule sch;
  sch.events.push_back({chip::FaultKind::kCorruptFrame, 0, 1, 0});
  chip::FaultInjector inj(sch);
  chip.spi().set_fault_injector(&inj);

  const auto cycles_before = chip.cycles();
  std::uint64_t expand_cycles = 0;
  EXPECT_THROW(drv.load_polynomial_seeded(chip::Bank::kSp1, 0, n, 1234, 0,
                                          &expand_cycles),
               chip::ChipFaultError);
  EXPECT_EQ(inj.faults_fired(), 1u);
  EXPECT_EQ(expand_cycles, 0u);
  EXPECT_EQ(chip.cycles(), cycles_before);
  const auto mem = chip.read_coeffs(chip::Bank::kSp1, 0, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(mem[i] == 0) << i;
}

}  // namespace
}  // namespace cofhee
