// Differential test: the chip-executed BFV pipeline (encrypt -> EvalMult on
// the CoFHEE model via ChipBfvEvaluator -> decrypt) must be bit-exact with
// the pure-software Bfv path on test_tiny parameters -- every ciphertext
// tower identical, not merely decrypting to the same plaintext.
#include "driver/chip_bfv.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bfv/encoder.hpp"

namespace cofhee::driver {
namespace {

struct DiffFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/11};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
};

void expect_bit_exact(const bfv::Ciphertext& hw, const bfv::Ciphertext& sw) {
  ASSERT_EQ(hw.size(), sw.size());
  for (std::size_t i = 0; i < hw.size(); ++i)
    EXPECT_EQ(hw.c[i].towers, sw.c[i].towers) << "component " << i;
}

TEST(ChipVsSoftwareBfv, PlaintextSweepIsBitExact) {
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  chip::CofheeChip soc;
  ChipBfvEvaluator ev(soc);

  // Products must stay within the plaintext space: |x*y| < t/2 = 32768.
  const std::vector<std::pair<std::int64_t, std::int64_t>> cases = {
      {0, 0}, {1, 1}, {-1, 1}, {2, 3}, {255, -128}, {-181, 181}, {4096, 7}};
  for (const auto& [x, y] : cases) {
    const auto ca = f.scheme.encrypt(f.pk, enc.encode(x));
    const auto cb = f.scheme.encrypt(f.pk, enc.encode(y));
    const auto sw = f.scheme.multiply(ca, cb);
    const auto hw = ev.multiply(f.scheme, ca, cb);
    expect_bit_exact(hw, sw);
    EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), x * y)
        << "plaintexts " << x << " * " << y;
  }
}

TEST(ChipVsSoftwareBfv, BitExactInEveryExecModeAndLink) {
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(123));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(-56));
  const auto sw = f.scheme.multiply(ca, cb);

  for (ExecMode mode : {ExecMode::kFifo, ExecMode::kCm0}) {
    for (Link link : {Link::kSpi, Link::kUart}) {
      chip::CofheeChip soc;
      ChipBfvEvaluator ev(soc, mode, link);
      const auto hw = ev.multiply(f.scheme, ca, cb);
      expect_bit_exact(hw, sw);
      EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), 123 * -56);
    }
  }
}

TEST(ChipVsSoftwareBfv, ReusedChipStateStaysBitExact) {
  // Run many multiplies through ONE chip instance: stale SP-bank or
  // register state left by an earlier EvalMult would show up as a
  // divergence in a later one.
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  chip::CofheeChip soc;
  ChipBfvEvaluator ev(soc);

  for (std::int64_t v = -5; v <= 5; ++v) {
    const auto ca = f.scheme.encrypt(f.pk, enc.encode(v));
    const auto cb = f.scheme.encrypt(f.pk, enc.encode(7 * v + 1));
    const auto sw = f.scheme.multiply(ca, cb);
    const auto hw = ev.multiply(f.scheme, ca, cb);
    expect_bit_exact(hw, sw);
    EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), v * (7 * v + 1)) << "v=" << v;
  }
}

TEST(ChipVsSoftwareBfv, PooledHostPlumbingStaysBitExactWithChip) {
  // The evaluator's host-side RNS plumbing (centered base extension and t/q
  // rounding) runs on the scheme's ExecPolicy.  A pooled scheme must feed
  // the chip the same towers and fold its results identically to both the
  // serial scheme and the pure-software product.
  DiffFixture serial;
  bfv::Bfv pooled(bfv::BfvParams::test_tiny(64), /*seed=*/11,
                  backend::ExecPolicy::pooled(4, /*grain=*/8));
  const auto sk_p = pooled.keygen_secret();
  const auto pk_p = pooled.keygen_public(sk_p);
  bfv::IntegerEncoder enc(serial.scheme.context());

  const auto ca_s = serial.scheme.encrypt(serial.pk, enc.encode(77));
  const auto cb_s = serial.scheme.encrypt(serial.pk, enc.encode(-33));
  const auto ca_p = pooled.encrypt(pk_p, enc.encode(77));
  const auto cb_p = pooled.encrypt(pk_p, enc.encode(-33));
  expect_bit_exact(ca_p, ca_s);

  const auto sw = serial.scheme.multiply(ca_s, cb_s);
  chip::CofheeChip soc_s, soc_p;
  ChipBfvEvaluator ev_s(soc_s), ev_p(soc_p);
  const auto hw_serial = ev_s.multiply(serial.scheme, ca_s, cb_s);
  const auto hw_pooled = ev_p.multiply(pooled, ca_p, cb_p);
  expect_bit_exact(hw_pooled, hw_serial);
  expect_bit_exact(hw_pooled, sw);
  EXPECT_EQ(enc.decode(pooled.decrypt(sk_p, hw_pooled)), 77 * -33);
}

TEST(ChipVsSoftwareBfv, ReportAccountsForEveryExtendedTower) {
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  chip::CofheeChip soc;
  ChipBfvEvaluator ev(soc);
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(5));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(6));
  ChipMulReport rep;
  (void)ev.multiply(f.scheme, ca, cb, &rep);
  const auto& ctx = f.scheme.context();
  EXPECT_EQ(rep.towers, ctx.ext_basis().size());
  EXPECT_GT(rep.chip_cycles, 0u);
  EXPECT_GT(rep.chip_ms, 0.0);
  EXPECT_GT(rep.io_seconds, 0.0);
}

}  // namespace
}  // namespace cofhee::driver
