// Differential test: the chip-executed BFV pipeline (encrypt -> EvalMult on
// the CoFHEE model via ChipBfvEvaluator -> decrypt) must be bit-exact with
// the pure-software Bfv path on test_tiny parameters -- every ciphertext
// tower identical, not merely decrypting to the same plaintext.
#include "driver/chip_bfv.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bfv/encoder.hpp"

namespace cofhee::driver {
namespace {

struct DiffFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/11};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
};

void expect_bit_exact(const bfv::Ciphertext& hw, const bfv::Ciphertext& sw) {
  ASSERT_EQ(hw.size(), sw.size());
  for (std::size_t i = 0; i < hw.size(); ++i)
    EXPECT_EQ(hw.c[i].towers, sw.c[i].towers) << "component " << i;
}

TEST(ChipVsSoftwareBfv, PlaintextSweepIsBitExact) {
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  chip::CofheeChip soc;
  ChipBfvEvaluator ev(soc);

  // Products must stay within the plaintext space: |x*y| < t/2 = 32768.
  const std::vector<std::pair<std::int64_t, std::int64_t>> cases = {
      {0, 0}, {1, 1}, {-1, 1}, {2, 3}, {255, -128}, {-181, 181}, {4096, 7}};
  for (const auto& [x, y] : cases) {
    const auto ca = f.scheme.encrypt(f.pk, enc.encode(x));
    const auto cb = f.scheme.encrypt(f.pk, enc.encode(y));
    const auto sw = f.scheme.multiply(ca, cb);
    const auto hw = ev.multiply(f.scheme, ca, cb);
    expect_bit_exact(hw, sw);
    EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), x * y)
        << "plaintexts " << x << " * " << y;
  }
}

TEST(ChipVsSoftwareBfv, BitExactInEveryExecModeAndLink) {
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(123));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(-56));
  const auto sw = f.scheme.multiply(ca, cb);

  for (ExecMode mode : {ExecMode::kFifo, ExecMode::kCm0}) {
    for (Link link : {Link::kSpi, Link::kUart}) {
      chip::CofheeChip soc;
      ChipBfvEvaluator ev(soc, mode, link);
      const auto hw = ev.multiply(f.scheme, ca, cb);
      expect_bit_exact(hw, sw);
      EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), 123 * -56);
    }
  }
}

TEST(ChipVsSoftwareBfv, ReusedChipStateStaysBitExact) {
  // Run many multiplies through ONE chip instance: stale SP-bank or
  // register state left by an earlier EvalMult would show up as a
  // divergence in a later one.
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  chip::CofheeChip soc;
  ChipBfvEvaluator ev(soc);

  for (std::int64_t v = -5; v <= 5; ++v) {
    const auto ca = f.scheme.encrypt(f.pk, enc.encode(v));
    const auto cb = f.scheme.encrypt(f.pk, enc.encode(7 * v + 1));
    const auto sw = f.scheme.multiply(ca, cb);
    const auto hw = ev.multiply(f.scheme, ca, cb);
    expect_bit_exact(hw, sw);
    EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, hw)), v * (7 * v + 1)) << "v=" << v;
  }
}

TEST(ChipVsSoftwareBfv, ReportAccountsForEveryExtendedTower) {
  DiffFixture f;
  bfv::IntegerEncoder enc(f.scheme.context());
  chip::CofheeChip soc;
  ChipBfvEvaluator ev(soc);
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(5));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(6));
  ChipMulReport rep;
  (void)ev.multiply(f.scheme, ca, cb, &rep);
  const auto& ctx = f.scheme.context();
  EXPECT_EQ(rep.towers, ctx.ext_basis().size());
  EXPECT_GT(rep.chip_cycles, 0u);
  EXPECT_GT(rep.chip_ms, 0.0);
  EXPECT_GT(rep.io_seconds, 0.0);
}

}  // namespace
}  // namespace cofhee::driver
