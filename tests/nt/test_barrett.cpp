#include "nt/barrett.hpp"
#include "nt/montgomery.hpp"
#include "nt/primes.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cofhee::nt {
namespace {

u128 naive_mulmod128(u128 a, u128 b, u128 q) {
  const auto p = WideInt<2>(a).mul_full(WideInt<2>(b));
  return (p % WideInt<2>(q)).to_u128();
}

TEST(Barrett64, RejectsBadModuli) {
  EXPECT_THROW(Barrett64(0), std::invalid_argument);
  EXPECT_THROW(Barrett64(1), std::invalid_argument);
  EXPECT_THROW(Barrett64(u64{1} << 63), std::invalid_argument);
}

TEST(Barrett64, ReduceMatchesNativeModulo) {
  std::mt19937_64 rng(11);
  for (u64 q : {u64{3}, u64{17}, u64{65537}, u64{(1ull << 61) - 1},
                u64{0x3FFFFFFFFFFFFFFFull}}) {
    Barrett64 br(q);
    for (int i = 0; i < 2000; ++i) {
      const u64 a = rng() % q, b = rng() % q;
      const u128 x = static_cast<u128>(a) * b;
      EXPECT_EQ(br.reduce(x), static_cast<u64>(x % q));
      EXPECT_EQ(br.mul(a, b), static_cast<u64>(x % q));
    }
  }
}

TEST(Barrett64, AddSubNeg) {
  Barrett64 br(101);
  EXPECT_EQ(br.add(100, 100), 99u);
  EXPECT_EQ(br.add(0, 0), 0u);
  EXPECT_EQ(br.sub(3, 5), 99u);
  EXPECT_EQ(br.sub(5, 3), 2u);
  EXPECT_EQ(br.neg(0), 0u);
  EXPECT_EQ(br.neg(1), 100u);
}

TEST(Barrett64, PowAndInv) {
  const u64 q = find_ntt_prime_u64(40, 1024);
  Barrett64 br(q);
  std::mt19937_64 rng(12);
  for (int i = 0; i < 200; ++i) {
    const u64 a = 1 + rng() % (q - 1);
    const u64 ai = br.inv(a);
    EXPECT_EQ(br.mul(a, ai), 1u);
  }
  EXPECT_EQ(br.pow(2, 10), 1024u % q);
  EXPECT_THROW((void)br.inv(0), std::domain_error);
}

TEST(Shoup, MatchesBarrett) {
  const u64 q = find_ntt_prime_u64(55, 4096);
  Barrett64 br(q);
  std::mt19937_64 rng(13);
  for (int i = 0; i < 500; ++i) {
    const u64 w = rng() % q;
    ShoupMul sm(w, q);
    for (int j = 0; j < 20; ++j) {
      const u64 x = rng() % q;
      EXPECT_EQ(sm.mul(x), br.mul(w, x));
    }
  }
}

TEST(Barrett128, ReduceMatchesWideModulo) {
  std::mt19937_64 rng(14);
  const u128 q109 = find_ntt_prime_u128(109, 4096);
  const u128 qbig = (static_cast<u128>(0xFFFFFFFFFFFFFFFFull) << 60) | 0x1ull;
  for (u128 q : {static_cast<u128>(97), static_cast<u128>((1ull << 62) - 57),
                 q109, qbig}) {
    Barrett128 br(q);
    for (int i = 0; i < 500; ++i) {
      const u128 a = ((static_cast<u128>(rng()) << 64) | rng()) % q;
      const u128 b = ((static_cast<u128>(rng()) << 64) | rng()) % q;
      EXPECT_EQ(br.mul(a, b), naive_mulmod128(a, b, q));
    }
  }
}

TEST(Barrett128, FullWidthModulusEdge) {
  // Near-maximal 128-bit modulus: stresses the wide conditional-subtract path.
  const u128 q = ~u128{0} - 158;  // arbitrary large odd value
  Barrett128 br(q);
  const u128 a = q - 1, b = q - 2;
  EXPECT_EQ(br.mul(a, b), naive_mulmod128(a, b, q));
  EXPECT_EQ(br.add(q - 1, q - 1), q - 2);
  EXPECT_EQ(br.sub(0, 1), q - 1);
}

TEST(Barrett128, PowInvRoundtrip) {
  const u128 q = find_ntt_prime_u128(109, 4096);
  Barrett128 br(q);
  std::mt19937_64 rng(15);
  for (int i = 0; i < 50; ++i) {
    const u128 a = 1 + ((static_cast<u128>(rng()) << 64) | rng()) % (q - 1);
    EXPECT_EQ(br.mul(a, br.inv(a)), u128{1});
  }
}

TEST(Barrett128, BarrettConstantMatchesPaperRegisterWidth) {
  // Table II: BARRETTCTL2 holds 2^k_b / q in a 160-bit register.  For any
  // modulus up to 128 bits, mu = floor(2^(2k)/q) needs at most k+1 <= 129
  // bits, so it fits the silicon register with margin.
  const u128 q = find_ntt_prime_u128(127, 8192);
  Barrett128 br(q);
  EXPECT_LE(br.mu().bit_len(), 160u);
  EXPECT_GE(br.mu().bit_len(), br.k());
}

TEST(Montgomery64, MatchesBarrett) {
  const u64 q = find_ntt_prime_u64(55, 4096);
  Barrett64 br(q);
  Montgomery64 mont(q);
  std::mt19937_64 rng(16);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng() % q, b = rng() % q;
    EXPECT_EQ(mont.mul(a, b), br.mul(a, b));
  }
}

TEST(Montgomery64, DomainRoundTrip) {
  const u64 q = find_ntt_prime_u64(50, 1024);
  Montgomery64 mont(q);
  std::mt19937_64 rng(17);
  for (int i = 0; i < 500; ++i) {
    const u64 a = rng() % q;
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
  }
}

TEST(Montgomery64, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery64(100), std::invalid_argument);
}

// Property sweep: Barrett reduction correct across the full modulus size
// range the chip supports (BARRETTCTL1 programs k per modulus).
class BarrettBitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BarrettBitSweep, RandomProductsReduceCorrectly) {
  const unsigned bits = GetParam();
  const u128 q = find_ntt_prime_u128(bits, 64);
  Barrett128 br(q);
  std::mt19937_64 rng(100 + bits);
  for (int i = 0; i < 200; ++i) {
    const u128 a = ((static_cast<u128>(rng()) << 64) | rng()) % q;
    const u128 b = ((static_cast<u128>(rng()) << 64) | rng()) % q;
    EXPECT_EQ(br.mul(a, b), naive_mulmod128(a, b, q));
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusSizes, BarrettBitSweep,
                         ::testing::Values(12u, 20u, 30u, 44u, 54u, 55u, 60u,
                                           80u, 100u, 109u, 118u, 127u));

}  // namespace
}  // namespace cofhee::nt
