// Differential battery for the SIMD kernel dispatch layer (src/nt/simd.hpp).
//
// Contract under test: every vector lane (AVX2, NEON) is bit-exact against
// the scalar reference lane on every kernel -- including the *lazy*
// (redundant-range) outputs of the butterfly kernels, not just canonical
// residues -- over seeded random inputs, boundary values (0, 1, q-1, q,
// 2q-1, 4q-1), vector-width tails (odd lengths), and several moduli up to
// the 62-bit Barrett64 ceiling.  Also pins the runtime dispatch rules:
// force_isa() on an unavailable lane is a no-op returning false, and the
// active table always matches the active lane.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "nt/barrett.hpp"
#include "nt/montgomery.hpp"
#include "nt/simd.hpp"

namespace {

using cofhee::nt::u128;
using cofhee::nt::u64;
namespace simd = cofhee::nt::simd;
using simd::Isa;

// Every vector lane this binary compiled in AND this CPU can run.  Empty
// under -DCOFHEE_SIMD=OFF (or on a CPU without AVX2/NEON); the differential
// loops then vacuously pass and the dispatch tests still run.
std::vector<Isa> vector_lanes() {
  std::vector<Isa> lanes;
  for (Isa isa : {Isa::kAvx2, Isa::kNeon})
    if (simd::available(isa)) lanes.push_back(isa);
  return lanes;
}

// Moduli spanning the supported range: tiny (maximal wraparound pressure in
// the lazy ranges), mid-size, NTT-friendly, and just under the 62-bit
// Barrett64 ceiling (4q - 1 brushes 2^64).  Odd, as Montgomery requires.
const u64 kModuli[] = {
    17,
    12289,                       // classic NTT prime
    (u64{1} << 45) + 39,         // mid-size odd
    4611686018427387847ull,      // largest prime below 2^62
};

// Lengths covering the empty case, sub-vector lengths, exact vector
// multiples, and tails for both 4-wide (AVX2) and 2-wide (NEON) bodies.
const std::size_t kLens[] = {0, 1, 2, 3, 4, 5, 7, 8, 31, 64, 257};

u64 qinv_neg_of(u64 q) {
  u64 inv = q;
  for (int i = 0; i < 5; ++i) inv *= 2 - q * inv;
  return ~inv + 1;
}

u64 shoup_of(u64 w, u64 q) {
  return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}

// Seeded values below `bound`, with the boundary values of the kernel's
// admissible range planted at the front (clamped to the vector length).
std::vector<u64> seeded(std::mt19937_64& rng, std::size_t len, u64 q,
                        u128 bound) {
  std::vector<u64> v(len);
  for (auto& x : v) x = static_cast<u64>(rng() % bound);
  const u64 edges[] = {0,
                       1,
                       q - 1,
                       q,
                       q + 1,
                       static_cast<u64>((bound > q) ? 2 * (u128)q - 1 : 0),
                       static_cast<u64>(bound - 1)};
  for (std::size_t i = 0; i < len && i < std::size(edges); ++i)
    if (edges[i] < bound) v[i] = edges[i];
  return v;
}

}  // namespace

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::available(Isa::kScalar));
  EXPECT_STREQ(simd::isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(Isa::kNeon), "neon");
}

TEST(SimdDispatch, ForceAndClear) {
  // Forcing any available lane redirects kernels() to that lane's table.
  for (Isa isa : vector_lanes()) {
    ASSERT_TRUE(simd::force_isa(isa));
    EXPECT_EQ(simd::active_isa(), isa);
    EXPECT_EQ(&simd::kernels(), &simd::kernels_for(isa));
    simd::clear_forced_isa();
  }
  ASSERT_TRUE(simd::force_isa(Isa::kScalar));
  EXPECT_EQ(simd::active_isa(), Isa::kScalar);
  EXPECT_EQ(&simd::kernels(), &simd::kernels_for(Isa::kScalar));
  simd::clear_forced_isa();
  // AVX2 and NEON are mutually exclusive compile targets, so at least one
  // of them is always the unavailable-lane fallback case: force_isa must
  // refuse and leave the active lane untouched.
  const Isa before = simd::active_isa();
  const Isa missing = simd::available(Isa::kAvx2) ? Isa::kNeon : Isa::kAvx2;
  EXPECT_FALSE(simd::available(missing));
  EXPECT_FALSE(simd::force_isa(missing));
  EXPECT_EQ(simd::active_isa(), before);
  EXPECT_THROW((void)simd::kernels_for(missing), std::invalid_argument);
}

TEST(SimdDispatch, ActiveIsBestAvailable) {
  simd::clear_forced_isa();
  const Isa active = simd::active_isa();
  EXPECT_TRUE(simd::available(active));
  // When a vector lane is available, automatic detection must pick it.
  if (!vector_lanes().empty()) EXPECT_NE(active, Isa::kScalar);
}

TEST(SimdKernels, CtButterflyBitExact) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (Isa isa : vector_lanes()) {
    const auto& lane = simd::kernels_for(isa);
    for (u64 q : kModuli) {
      std::mt19937_64 rng(0xC0F4EE01 ^ q);
      for (std::size_t len : kLens) {
        auto x0 = seeded(rng, len, q, 4 * static_cast<u128>(q));
        auto y0 = seeded(rng, len, q, 4 * static_cast<u128>(q));
        const u64 w = static_cast<u64>(rng() % q);
        const u64 ws = shoup_of(w, q);
        auto x1 = x0, y1 = y0;
        ref.ct_butterfly(x0.data(), y0.data(), len, w, ws, q);
        lane.ct_butterfly(x1.data(), y1.data(), len, w, ws, q);
        ASSERT_EQ(x0, x1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
        ASSERT_EQ(y0, y1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

TEST(SimdKernels, GsButterflyBitExact) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (Isa isa : vector_lanes()) {
    const auto& lane = simd::kernels_for(isa);
    for (u64 q : kModuli) {
      std::mt19937_64 rng(0xC0F4EE02 ^ q);
      for (std::size_t len : kLens) {
        auto x0 = seeded(rng, len, q, 2 * static_cast<u128>(q));
        auto y0 = seeded(rng, len, q, 2 * static_cast<u128>(q));
        const u64 w = static_cast<u64>(rng() % q);
        const u64 ws = shoup_of(w, q);
        auto x1 = x0, y1 = y0;
        ref.gs_butterfly(x0.data(), y0.data(), len, w, ws, q);
        lane.gs_butterfly(x1.data(), y1.data(), len, w, ws, q);
        ASSERT_EQ(x0, x1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
        ASSERT_EQ(y0, y1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

TEST(SimdKernels, CanonicalizeBitExactAndCanonical) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (u64 q : kModuli) {
    std::mt19937_64 rng(0xC0F4EE03 ^ q);
    for (std::size_t len : kLens) {
      const auto input = seeded(rng, len, q, 4 * static_cast<u128>(q));
      auto x0 = input;
      ref.canonicalize(x0.data(), len, q);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_LT(x0[i], q);  // scalar lane maps [0, 4q) into [0, q)
        ASSERT_EQ(x0[i], input[i] % q);
      }
      for (Isa isa : vector_lanes()) {
        auto x1 = input;
        simd::kernels_for(isa).canonicalize(x1.data(), len, q);
        ASSERT_EQ(x0, x1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

TEST(SimdKernels, PointwiseMulBitExact) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (u64 q : kModuli) {
    const cofhee::nt::Barrett64 red(q);
    std::mt19937_64 rng(0xC0F4EE04 ^ q);
    for (std::size_t len : kLens) {
      const auto a = seeded(rng, len, q, q);
      const auto b = seeded(rng, len, q, q);
      std::vector<u64> d0(len, 0);
      ref.pointwise_mul(d0.data(), a.data(), b.data(), len, q, red.mu(), red.k());
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(d0[i], red.mul(a[i], b[i]));  // scalar lane == Barrett64
      for (Isa isa : vector_lanes()) {
        std::vector<u64> d1(len, 0);
        simd::kernels_for(isa).pointwise_mul(d1.data(), a.data(), b.data(), len,
                                             q, red.mu(), red.k());
        ASSERT_EQ(d0, d1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

TEST(SimdKernels, PointwiseMulAccBitExact) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (u64 q : kModuli) {
    const cofhee::nt::Barrett64 red(q);
    std::mt19937_64 rng(0xC0F4EE05 ^ q);
    for (std::size_t len : kLens) {
      const auto a = seeded(rng, len, q, q);
      const auto b = seeded(rng, len, q, q);
      const auto acc = seeded(rng, len, q, q);
      auto d0 = acc;
      ref.pointwise_mul_acc(d0.data(), a.data(), b.data(), len, q, red.mu(),
                            red.k());
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(d0[i], red.add(acc[i], red.mul(a[i], b[i])));
      for (Isa isa : vector_lanes()) {
        auto d1 = acc;
        simd::kernels_for(isa).pointwise_mul_acc(d1.data(), a.data(), b.data(),
                                                 len, q, red.mu(), red.k());
        ASSERT_EQ(d0, d1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

TEST(SimdKernels, ScalarMulShoupBitExactOnFullRange) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (u64 q : kModuli) {
    std::mt19937_64 rng(0xC0F4EE06 ^ q);
    for (std::size_t len : kLens) {
      // Accepts ANY u64 input (this pass doubles as the inverse transform's
      // canonicalization), so draw from the full 64-bit range.
      auto x0 = seeded(rng, len, q, static_cast<u128>(1) << 64);
      const u64 w = static_cast<u64>(rng() % q);
      const u64 ws = shoup_of(w, q);
      auto x1 = x0;
      ref.scalar_mul_shoup(x0.data(), len, w, ws, q);
      for (std::size_t i = 0; i < len; ++i) ASSERT_LT(x0[i], q);
      for (Isa isa : vector_lanes()) {
        auto xi = x1;
        simd::kernels_for(isa).scalar_mul_shoup(xi.data(), len, w, ws, q);
        ASSERT_EQ(x0, xi) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

TEST(SimdKernels, MontMulBitExact) {
  const auto& ref = simd::kernels_for(Isa::kScalar);
  for (u64 q : kModuli) {
    if (q < 3) continue;
    const cofhee::nt::Montgomery64 mont(q);
    const u64 qinv_neg = qinv_neg_of(q);
    std::mt19937_64 rng(0xC0F4EE07 ^ q);
    for (std::size_t len : kLens) {
      const auto a = seeded(rng, len, q, q);
      const auto b = seeded(rng, len, q, q);
      std::vector<u64> d0(len, 0);
      ref.mont_mul(d0.data(), a.data(), b.data(), len, q, qinv_neg);
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(d0[i], mont.mul_raw(a[i], b[i]));  // scalar == Montgomery64
      for (Isa isa : vector_lanes()) {
        std::vector<u64> d1(len, 0);
        simd::kernels_for(isa).mont_mul(d1.data(), a.data(), b.data(), len, q,
                                        qinv_neg);
        ASSERT_EQ(d0, d1) << simd::isa_name(isa) << " q=" << q << " len=" << len;
      }
    }
  }
}

// The runtime-dispatch fallback: the kernels() table observed under a scalar
// pin computes the same answers as the free-running (possibly vector) table.
TEST(SimdKernels, DispatchFallbackMatchesVector) {
  const u64 q = 12289;
  const cofhee::nt::Barrett64 red(q);
  std::mt19937_64 rng(0xC0F4EE08);
  const std::size_t len = 100;
  const auto a = seeded(rng, len, q, q);
  const auto b = seeded(rng, len, q, q);

  simd::clear_forced_isa();
  std::vector<u64> fast(len, 0);
  simd::kernels().pointwise_mul(fast.data(), a.data(), b.data(), len, q,
                                red.mu(), red.k());
  ASSERT_TRUE(simd::force_isa(Isa::kScalar));
  std::vector<u64> slow(len, 0);
  simd::kernels().pointwise_mul(slow.data(), a.data(), b.data(), len, q,
                                red.mu(), red.k());
  simd::clear_forced_isa();
  EXPECT_EQ(fast, slow);
}
