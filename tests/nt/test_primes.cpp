#include "nt/primes.hpp"

#include <gtest/gtest.h>

namespace cofhee::nt {
namespace {

TEST(Primes, SmallKnownValues) {
  EXPECT_FALSE(is_prime(u64{0}));
  EXPECT_FALSE(is_prime(u64{1}));
  EXPECT_TRUE(is_prime(u64{2}));
  EXPECT_TRUE(is_prime(u64{3}));
  EXPECT_FALSE(is_prime(u64{4}));
  EXPECT_TRUE(is_prime(u64{65537}));
  EXPECT_FALSE(is_prime(u64{65536}));
  EXPECT_TRUE(is_prime(u64{(1ull << 61) - 1}));    // Mersenne prime M61
  EXPECT_FALSE(is_prime(u64{(1ull << 59) - 1}));   // composite Mersenne
}

TEST(Primes, CarmichaelNumbersRejected) {
  for (u64 c : {561ull, 1105ull, 1729ull, 2465ull, 2821ull, 6601ull, 8911ull}) {
    EXPECT_FALSE(is_prime(c)) << c;
  }
}

TEST(Primes, Known128BitPrime) {
  // 2^89 - 1 is a Mersenne prime; 2^97 - 1 is composite.
  EXPECT_TRUE(is_prime((u128{1} << 89) - 1));
  EXPECT_FALSE(is_prime((u128{1} << 97) - 1));
}

TEST(Primes, NttPrimeCongruence) {
  for (std::size_t n : {std::size_t{1024}, std::size_t{4096}, std::size_t{8192}}) {
    for (unsigned bits : {30u, 54u, 55u, 60u}) {
      const u64 q = find_ntt_prime_u64(bits, n);
      EXPECT_TRUE(is_prime(q));
      EXPECT_EQ((q - 1) % (2 * n), 0u) << "q=" << q;
      EXPECT_EQ(bit_length(q), bits);
    }
  }
}

TEST(Primes, NttPrime128Congruence) {
  const std::size_t n = 4096;
  const u128 q = find_ntt_prime_u128(109, n);
  EXPECT_TRUE(is_prime(q));
  EXPECT_EQ((q - 1) % (2 * static_cast<u128>(n)), u128{0});
  EXPECT_EQ(bit_length(q), 109u);
}

TEST(Primes, ChainIsDistinctAndCoprime) {
  const auto chain = ntt_prime_chain(55, 8192, 4);
  ASSERT_EQ(chain.size(), 4u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_TRUE(is_prime(chain[i]));
    for (std::size_t j = i + 1; j < chain.size(); ++j) EXPECT_NE(chain[i], chain[j]);
  }
}

TEST(Primes, PrimitiveRootOrder) {
  const std::size_t n = 2048;
  const u64 q = find_ntt_prime_u64(50, n);
  const u64 psi = primitive_2nth_root(q, n);
  Barrett64 br(q);
  EXPECT_EQ(br.pow(psi, n), q - 1);          // psi^n == -1
  EXPECT_EQ(br.pow(psi, 2 * n), u64{1});     // psi^2n == 1
  const u64 omega = br.mul(psi, psi);
  EXPECT_EQ(br.pow(omega, n), u64{1});
  EXPECT_EQ(br.pow(omega, n / 2), q - 1);    // omega is a primitive n-th root
}

TEST(Primes, PrimitiveRoot128) {
  const std::size_t n = 1024;
  const u128 q = find_ntt_prime_u128(100, n);
  const u128 psi = primitive_2nth_root(q, n);
  Barrett128 br(q);
  EXPECT_EQ(br.pow(psi, n), q - 1);
  EXPECT_EQ(br.pow(psi, 2 * n), u128{1});
}

TEST(Primes, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b011, 3), 0b110u);
  EXPECT_EQ(bit_reverse(5, 0), 0u);
  const auto t = bit_reverse_table(8);
  const std::vector<std::size_t> expect{0, 4, 2, 6, 1, 5, 3, 7};
  EXPECT_EQ(t, expect);
}

TEST(Primes, BitReverseIsInvolution) {
  const auto t = bit_reverse_table(1024);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[t[i]], i);
}

TEST(Primes, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(8192));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_EQ(log2_exact(8192), 13u);
}

TEST(Primes, SeedGivesDistinctPrimes) {
  const u64 a = find_ntt_prime_u64(55, 4096, 0);
  const u64 b = find_ntt_prime_u64(55, 4096, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cofhee::nt
