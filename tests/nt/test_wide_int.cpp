#include "nt/wide_int.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cofhee::nt {
namespace {

u128 make_u128(u64 hi, u64 lo) { return (static_cast<u128>(hi) << 64) | lo; }

TEST(WideInt, ConstructionAndAccessors) {
  WideInt<4> z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_len(), 0u);

  WideInt<4> a(u64{42});
  EXPECT_EQ(a.to_u64(), 42u);
  EXPECT_EQ(a.bit_len(), 6u);

  const u128 big = make_u128(0xDEADBEEFull, 0xCAFEBABEull);
  WideInt<4> b(big);
  EXPECT_EQ(b.to_u128(), big);
  EXPECT_EQ(b.bit_len(), 64u + 32u);
}

TEST(WideInt, BitLength128) {
  EXPECT_EQ(bit_length(u128{0}), 0u);
  EXPECT_EQ(bit_length(u128{1}), 1u);
  EXPECT_EQ(bit_length(static_cast<u128>(1) << 127), 128u);
  EXPECT_EQ(bit_length((static_cast<u128>(1) << 100) - 1), 100u);
}

TEST(WideInt, AdditionMatchesU128) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const u128 a = make_u128(rng() >> 1, rng());  // keep headroom
    const u128 b = make_u128(rng() >> 1, rng());
    WideInt<2> wa(a), wb(b);
    EXPECT_EQ((wa + wb).to_u128(), a + b);
  }
}

TEST(WideInt, SubtractionMatchesU128) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 2000; ++i) {
    u128 a = make_u128(rng(), rng());
    u128 b = make_u128(rng(), rng());
    if (a < b) std::swap(a, b);
    EXPECT_EQ((WideInt<2>(a) - WideInt<2>(b)).to_u128(), a - b);
  }
}

TEST(WideInt, CarryPropagatesAcrossAllLimbs) {
  WideInt<4> a;
  a.limb = {~u64{0}, ~u64{0}, ~u64{0}, 0};
  WideInt<4> one(u64{1});
  const auto s = a + one;
  EXPECT_EQ(s.limb[0], 0u);
  EXPECT_EQ(s.limb[1], 0u);
  EXPECT_EQ(s.limb[2], 0u);
  EXPECT_EQ(s.limb[3], 1u);
}

TEST(WideInt, MulFullMatchesU128) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng(), b = rng();
    const auto p = WideInt<1>(a).mul_full(WideInt<1>(b));
    EXPECT_EQ(p.to_u128(), static_cast<u128>(a) * b);
  }
}

TEST(WideInt, MulFullWideAssociatesWithShifts) {
  // (a * 2^64) * b == (a * b) * 2^64
  std::mt19937_64 rng(4);
  for (int i = 0; i < 500; ++i) {
    const u128 a = make_u128(rng(), rng());
    const u128 b = make_u128(rng(), rng());
    const auto lhs = (WideInt<4>(a) << 64).mul_full(WideInt<4>(b));
    const auto rhs = WideInt<4>(a).mul_full(WideInt<4>(b)).resize_trunc<8>() << 64;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(WideInt, ShiftRoundTrip) {
  std::mt19937_64 rng(5);
  for (unsigned s = 0; s < 256; ++s) {
    WideInt<8> v;
    for (auto& l : v.limb) l = rng();
    // Zero the top s bits so the left shift is lossless.
    WideInt<8> masked = (v << s) >> s;
    WideInt<8> expect = v;
    for (unsigned b = 512 - s; b < 512; ++b) {
      if (expect.bit(b)) expect.limb[b / 64] ^= (u64{1} << (b % 64));
    }
    EXPECT_EQ(masked, expect) << "shift " << s;
  }
}

TEST(WideInt, CompareIsLexicographicOnLimbs) {
  WideInt<2> a(make_u128(1, 0)), b(make_u128(0, ~u64{0}));
  EXPECT_GT(a, b);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, a);
}

TEST(WideInt, DivmodMatchesU128) {
  std::mt19937_64 rng(6);
  for (int i = 0; i < 3000; ++i) {
    const u128 a = make_u128(rng(), rng());
    u128 b = make_u128(i % 3 == 0 ? 0 : rng(), rng());
    if (b == 0) b = 1;
    auto [q, r] = divmod(WideInt<2>(a), WideInt<2>(b));
    EXPECT_EQ(q.to_u128(), a / b);
    EXPECT_EQ(r.to_u128(), a % b);
  }
}

TEST(WideInt, DivmodReconstructsDividend) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    WideInt<8> a;
    for (auto& l : a.limb) l = rng();
    WideInt<4> b;
    const int limbs = 1 + static_cast<int>(rng() % 4);
    for (int j = 0; j < limbs; ++j) b.limb[j] = rng();
    if (b.is_zero()) b.limb[0] = 3;
    auto [q, r] = divmod(a, b);
    EXPECT_LT(r, b);
    // a == q*b + r
    auto back = q.mul_full(b).resize_trunc<8>() + r.resize<8>();
    EXPECT_EQ(back, a);
  }
}

TEST(WideInt, DivmodKnuthAddBackCase) {
  // Dividend engineered to trigger the rare qhat-overestimate add-back path:
  // u = B^2 * (B - 1) and v = B + (B - 1) with B = 2^64 is the classic case.
  WideInt<4> u;
  u.limb = {0, 0, ~u64{0}, 0};
  WideInt<2> v;
  v.limb = {~u64{0}, 1};
  auto [q, r] = divmod(u, v);
  auto back = q.mul_full(v).resize_trunc<4>() + r.resize<4>();
  EXPECT_EQ(back, u);
  EXPECT_LT(r, v);
}

TEST(WideInt, DivisionByZeroThrows) {
  EXPECT_THROW((void)divmod(WideInt<2>(u128{5}), WideInt<2>()), std::domain_error);
}

TEST(WideInt, ModU64MatchesDivmod) {
  std::mt19937_64 rng(8);
  for (int i = 0; i < 1000; ++i) {
    WideInt<6> a;
    for (auto& l : a.limb) l = rng();
    u64 m = rng() | 1;
    EXPECT_EQ(a.mod_u64(m), (a % WideInt<1>(m)).to_u64());
  }
}

TEST(WideInt, DivRound) {
  // round(7/2) = 4 (half rounds up), round(5/3) = 2, round(4/3) = 1.
  EXPECT_EQ(div_round(WideInt<2>(u128{7}), WideInt<2>(u128{2})).to_u128(), u128{4});
  EXPECT_EQ(div_round(WideInt<2>(u128{5}), WideInt<2>(u128{3})).to_u128(), u128{2});
  EXPECT_EQ(div_round(WideInt<2>(u128{4}), WideInt<2>(u128{3})).to_u128(), u128{1});
}

TEST(WideInt, ToStringDecimal) {
  EXPECT_EQ(WideInt<2>().to_string(), "0");
  EXPECT_EQ(WideInt<2>(u128{1234567890123456789ull}).to_string(), "1234567890123456789");
  // 2^128 - 1
  WideInt<2> m;
  m.limb = {~u64{0}, ~u64{0}};
  EXPECT_EQ(m.to_string(), "340282366920938463463374607431768211455");
}

TEST(WideInt, ResizeOverflowThrows) {
  WideInt<4> a;
  a.limb[3] = 1;
  EXPECT_THROW((void)a.resize<2>(), std::overflow_error);
  a.limb[3] = 0;
  a.limb[1] = 7;
  EXPECT_EQ((a.resize<2>().to_u128()), make_u128(7, 0));
}

}  // namespace
}  // namespace cofhee::nt
