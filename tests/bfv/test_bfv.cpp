#include "bfv/bfv.hpp"

#include <gtest/gtest.h>

#include "bfv/encoder.hpp"

namespace cofhee::bfv {
namespace {

struct BfvFixture {
  Bfv scheme;
  SecretKey sk;
  PublicKey pk;

  explicit BfvFixture(std::size_t n = 64, std::uint64_t seed = 1)
      : scheme(BfvParams::test_tiny(n), seed), sk(scheme.keygen_secret()),
        pk(scheme.keygen_public(sk)) {}

  Plaintext random_plain(std::uint64_t seed) {
    poly::Rng rng(seed);
    Plaintext m;
    m.coeffs.resize(scheme.context().n());
    for (auto& c : m.coeffs) c = rng.uniform_below(scheme.context().t());
    return m;
  }
};

TEST(Bfv, EncryptDecryptRoundTrip) {
  BfvFixture f;
  const auto m = f.random_plain(10);
  const auto ct = f.scheme.encrypt(f.pk, m);
  EXPECT_EQ(ct.size(), 2u);
  EXPECT_EQ(f.scheme.decrypt(f.sk, ct).coeffs, m.coeffs);
}

TEST(Bfv, FreshCiphertextHasNoiseBudget) {
  BfvFixture f;
  const auto ct = f.scheme.encrypt(f.pk, f.random_plain(11));
  EXPECT_GT(f.scheme.noise_budget_bits(f.sk, ct), 20.0);
}

TEST(Bfv, HomomorphicAddition) {
  BfvFixture f;
  const auto ma = f.random_plain(12);
  const auto mb = f.random_plain(13);
  const auto ct = f.scheme.add(f.scheme.encrypt(f.pk, ma), f.scheme.encrypt(f.pk, mb));
  const auto dec = f.scheme.decrypt(f.sk, ct);
  const u64 t = f.scheme.context().t();
  for (std::size_t j = 0; j < dec.coeffs.size(); ++j)
    EXPECT_EQ(dec.coeffs[j], (ma.coeffs[j] + mb.coeffs[j]) % t);
}

TEST(Bfv, AddPlain) {
  BfvFixture f;
  const auto ma = f.random_plain(14);
  const auto mb = f.random_plain(15);
  const auto ct = f.scheme.add_plain(f.scheme.encrypt(f.pk, ma), mb);
  const auto dec = f.scheme.decrypt(f.sk, ct);
  const u64 t = f.scheme.context().t();
  for (std::size_t j = 0; j < dec.coeffs.size(); ++j)
    EXPECT_EQ(dec.coeffs[j], (ma.coeffs[j] + mb.coeffs[j]) % t);
}

TEST(Bfv, MultiplyWithoutRelinearization) {
  // The Fig. 6 operation: EvalMult yielding a 3-element ciphertext,
  // decryptable with (1, s, s^2).
  BfvFixture f;
  Plaintext ma, mb;
  ma.coeffs.assign(f.scheme.context().n(), 0);
  mb.coeffs.assign(f.scheme.context().n(), 0);
  ma.coeffs[0] = 7;
  ma.coeffs[1] = 3;
  mb.coeffs[0] = 5;
  mb.coeffs[2] = 2;
  const auto ct = f.scheme.multiply(f.scheme.encrypt(f.pk, ma), f.scheme.encrypt(f.pk, mb));
  EXPECT_EQ(ct.size(), 3u);
  const auto dec = f.scheme.decrypt(f.sk, ct);
  // (7 + 3x)(5 + 2x^2) = 35 + 15x + 14x^2 + 6x^3.
  EXPECT_EQ(dec.coeffs[0], 35u);
  EXPECT_EQ(dec.coeffs[1], 15u);
  EXPECT_EQ(dec.coeffs[2], 14u);
  EXPECT_EQ(dec.coeffs[3], 6u);
}

TEST(Bfv, MultiplyMatchesPlaintextConvolution) {
  BfvFixture f(32, 2);
  const auto ma = f.random_plain(16);
  const auto mb = f.random_plain(17);
  const auto ct = f.scheme.multiply(f.scheme.encrypt(f.pk, ma), f.scheme.encrypt(f.pk, mb));
  const auto dec = f.scheme.decrypt(f.sk, ct);
  // Expected: negacyclic convolution over Z_t.
  nt::Barrett64 tr(f.scheme.context().t());
  const auto expect = poly::schoolbook_negacyclic_mul(tr, ma.coeffs, mb.coeffs);
  EXPECT_EQ(dec.coeffs, expect);
}

TEST(Bfv, RelinearizationPreservesPlaintext) {
  BfvFixture f(32, 3);
  const auto rk = f.scheme.keygen_relin(f.sk, 16);
  const auto ma = f.random_plain(18);
  const auto mb = f.random_plain(19);
  const auto ct3 = f.scheme.multiply(f.scheme.encrypt(f.pk, ma), f.scheme.encrypt(f.pk, mb));
  const auto ct2 = f.scheme.relinearize(ct3, rk);
  EXPECT_EQ(ct2.size(), 2u);
  EXPECT_EQ(f.scheme.decrypt(f.sk, ct2).coeffs, f.scheme.decrypt(f.sk, ct3).coeffs);
}

TEST(Bfv, MulPlain) {
  BfvFixture f;
  const auto ma = f.random_plain(20);
  Plaintext mb;
  mb.coeffs.assign(f.scheme.context().n(), 0);
  mb.coeffs[0] = 3;  // multiply by the scalar 3
  const auto ct = f.scheme.mul_plain(f.scheme.encrypt(f.pk, ma), mb);
  const auto dec = f.scheme.decrypt(f.sk, ct);
  const u64 t = f.scheme.context().t();
  for (std::size_t j = 0; j < dec.coeffs.size(); ++j)
    EXPECT_EQ(dec.coeffs[j], (ma.coeffs[j] * 3) % t);
}

TEST(Bfv, NoiseGrowsWithMultiplication) {
  BfvFixture f(32, 4);
  const auto ct = f.scheme.encrypt(f.pk, f.random_plain(21));
  const double fresh = f.scheme.noise_budget_bits(f.sk, ct);
  const auto ct2 = f.scheme.multiply(ct, ct);
  const double after = f.scheme.noise_budget_bits(f.sk, ct2);
  EXPECT_LT(after, fresh);
  EXPECT_GT(after, 0.0) << "parameters too small for one multiplication";
}

TEST(Bfv, MultiplicativeDepthTwo) {
  // ((a*b) relinearized) * c decrypts correctly at test parameters.
  BfvFixture f(32, 5);
  const auto rk = f.scheme.keygen_relin(f.sk, 16);
  IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(11));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(12));
  const auto cc = f.scheme.encrypt(f.pk, enc.encode(13));
  const auto prod = f.scheme.relinearize(f.scheme.multiply(ca, cb), rk);
  const auto prod2 = f.scheme.multiply(prod, cc);
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, prod2)), 11 * 12 * 13);
}

TEST(Bfv, PaperParameterPresetsAreSane) {
  const auto small = BfvParams::paper_small();
  EXPECT_EQ(small.n, 4096u);
  EXPECT_NEAR(small.log_q(), 109, 1);
  const auto large = BfvParams::paper_large();
  EXPECT_EQ(large.n, 8192u);
  EXPECT_NEAR(large.log_q(), 218, 1);
}

TEST(Bfv, RejectsBadInputs) {
  BfvFixture f;
  Plaintext bad;
  bad.coeffs.assign(8, 0);  // wrong length
  EXPECT_THROW((void)f.scheme.encrypt(f.pk, bad), std::invalid_argument);
  const auto ct = f.scheme.encrypt(f.pk, f.random_plain(22));
  EXPECT_THROW((void)f.scheme.relinearize(ct, RelinKeys{}), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::bfv
