#include "bfv/encoder.hpp"

#include <gtest/gtest.h>

namespace cofhee::bfv {
namespace {

struct EncFixture {
  Bfv scheme{BfvParams::test_tiny(64), 7};
  SecretKey sk = scheme.keygen_secret();
  PublicKey pk = scheme.keygen_public(sk);
};

TEST(IntegerEncoder, RoundTripSigned) {
  EncFixture f;
  IntegerEncoder enc(f.scheme.context());
  for (std::int64_t v : {0L, 1L, -1L, 1000L, -1000L, 32768L, -32768L}) {
    EXPECT_EQ(enc.decode(enc.encode(v)), v) << v;
  }
}

TEST(IntegerEncoder, EncryptedArithmetic) {
  EncFixture f;
  IntegerEncoder enc(f.scheme.context());
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(-25));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(17));
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, f.scheme.add(ca, cb))), -8);
  EXPECT_EQ(enc.decode(f.scheme.decrypt(f.sk, f.scheme.multiply(ca, cb))), -425);
}

TEST(BatchEncoder, SlotRoundTrip) {
  EncFixture f;
  BatchEncoder enc(f.scheme.context());
  EXPECT_EQ(enc.slot_count(), 64u);
  std::vector<u64> v(64);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i * 31 + 5) % 65537;
  const auto p = enc.encode(v);
  EXPECT_EQ(enc.decode(p), v);
}

TEST(BatchEncoder, SlotwiseHomomorphicOps) {
  // SIMD semantics: encrypted add/mul act independently per slot -- the
  // property CryptoNets-style batching (Section VI-C) exploits.
  EncFixture f;
  BatchEncoder enc(f.scheme.context());
  std::vector<u64> va(64), vb(64);
  for (std::size_t i = 0; i < 64; ++i) {
    va[i] = i + 1;
    vb[i] = 2 * i + 3;
  }
  const auto ca = f.scheme.encrypt(f.pk, enc.encode(va));
  const auto cb = f.scheme.encrypt(f.pk, enc.encode(vb));
  const auto sum = enc.decode(f.scheme.decrypt(f.sk, f.scheme.add(ca, cb)));
  const auto prod = enc.decode(f.scheme.decrypt(f.sk, f.scheme.multiply(ca, cb)));
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(sum[i], va[i] + vb[i]);
    EXPECT_EQ(prod[i], va[i] * vb[i] % 65537);
  }
}

TEST(BatchEncoder, PartialVectorZeroPads) {
  EncFixture f;
  BatchEncoder enc(f.scheme.context());
  const auto p = enc.encode({5, 6});
  const auto v = enc.decode(p);
  EXPECT_EQ(v[0], 5u);
  EXPECT_EQ(v[1], 6u);
  for (std::size_t i = 2; i < v.size(); ++i) EXPECT_EQ(v[i], 0u);
}

TEST(BatchEncoder, RejectsOversizedInputs) {
  EncFixture f;
  BatchEncoder enc(f.scheme.context());
  EXPECT_THROW((void)enc.encode(std::vector<u64>(65, 0)), std::invalid_argument);
  EXPECT_THROW((void)enc.encode({65537}), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::bfv
