// Differential battery locking in the parallelized RNS-tower hot paths:
// identical ciphertexts must come out of the serial reference path and the
// pooled path (1, 2, 8 threads) bit-for-bit, across parameter sizes and
// through full eval_mult -> relinearize -> decrypt chains.
//
// The two schemes are seeded identically and sampling is always serial, so
// keys and fresh ciphertexts agree by construction; every divergence after
// that would be a parallelization bug (data race, wrong task partition,
// reordered non-associative arithmetic).  Runs under the TSan CI lane via
// the `parallel` label.
#include "bfv/bfv.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "bfv/encoder.hpp"

namespace cofhee::bfv {
namespace {

using backend::ExecPolicy;

void expect_rns_equal(const poly::RnsPoly& a, const poly::RnsPoly& b,
                      const char* what) {
  ASSERT_EQ(a.num_towers(), b.num_towers()) << what;
  for (std::size_t i = 0; i < a.num_towers(); ++i)
    ASSERT_EQ(a.towers[i], b.towers[i]) << what << ", tower " << i;
}

void expect_ct_equal(const Ciphertext& a, const Ciphertext& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t c = 0; c < a.size(); ++c)
    expect_rns_equal(a.c[c], b.c[c], what);
}

struct ParamCase {
  std::size_t n;
  std::vector<unsigned> tower_bits;
  const char* name;
};

const ParamCase kParamCases[] = {
    {64, {40, 41}, "n64_2towers"},
    {256, {40, 41}, "n256_2towers"},
    {1024, {40, 41, 50}, "n1024_3towers"},
};

BfvParams make_params(const ParamCase& pc) {
  return BfvParams::create(pc.n, pc.tower_bits, 65537);
}

Plaintext random_plain(const BfvContext& ctx, std::uint64_t seed) {
  poly::Rng rng(seed);
  Plaintext m;
  m.coeffs.resize(ctx.n());
  for (auto& c : m.coeffs) c = rng.uniform_below(ctx.t());
  return m;
}

class ParallelVsSerialBfv
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  [[nodiscard]] static const ParamCase& param_case() {
    return kParamCases[std::get<0>(GetParam())];
  }
  [[nodiscard]] static std::size_t threads() { return std::get<1>(GetParam()); }
};

TEST_P(ParallelVsSerialBfv, FullChainIsBitExact) {
  const auto& pc = param_case();
  constexpr std::uint64_t kSeed = 42;
  Bfv serial(make_params(pc), kSeed, ExecPolicy::serial());
  Bfv pooled(make_params(pc), kSeed, ExecPolicy::pooled(threads(), /*grain=*/32));

  // Same seed + serial sampling => identical key material on both paths.
  const auto sk_s = serial.keygen_secret();
  const auto sk_p = pooled.keygen_secret();
  expect_rns_equal(sk_s.s, sk_p.s, "secret key");
  const auto pk_s = serial.keygen_public(sk_s);
  const auto pk_p = pooled.keygen_public(sk_p);
  expect_rns_equal(pk_s.p0, pk_p.p0, "public key p0");
  expect_rns_equal(pk_s.p1, pk_p.p1, "public key p1");
  const auto rk_s = serial.keygen_relin(sk_s, 16);
  const auto rk_p = pooled.keygen_relin(sk_p, 16);
  ASSERT_EQ(rk_s.keys.size(), rk_p.keys.size());
  for (std::size_t d = 0; d < rk_s.keys.size(); ++d) {
    expect_rns_equal(rk_s.keys[d].first, rk_p.keys[d].first, "relin b");
    expect_rns_equal(rk_s.keys[d].second, rk_p.keys[d].second, "relin a");
  }

  const auto ma = random_plain(serial.context(), 7);
  const auto mb = random_plain(serial.context(), 8);

  const auto ca_s = serial.encrypt(pk_s, ma);
  const auto ca_p = pooled.encrypt(pk_p, ma);
  expect_ct_equal(ca_s, ca_p, "encrypt(a)");
  const auto cb_s = serial.encrypt(pk_s, mb);
  const auto cb_p = pooled.encrypt(pk_p, mb);
  expect_ct_equal(cb_s, cb_p, "encrypt(b)");

  // The Eq. 4 tensor + t/q rounding (the Fig. 6 hot path).
  const auto prod_s = serial.multiply(ca_s, cb_s);
  const auto prod_p = pooled.multiply(ca_p, cb_p);
  expect_ct_equal(prod_s, prod_p, "eval_mult");

  // Key switching back to 2 components.
  const auto rel_s = serial.relinearize(prod_s, rk_s);
  const auto rel_p = pooled.relinearize(prod_p, rk_p);
  expect_ct_equal(rel_s, rel_p, "relinearize");

  // Decrypt on both paths, including the 3-element pre-relin ciphertext.
  EXPECT_EQ(serial.decrypt(sk_s, prod_s).coeffs, pooled.decrypt(sk_p, prod_p).coeffs);
  EXPECT_EQ(serial.decrypt(sk_s, rel_s).coeffs, pooled.decrypt(sk_p, rel_p).coeffs);

  // And the chain still computes the right thing: negacyclic product over Z_t.
  nt::Barrett64 tr(serial.context().t());
  const auto expect = poly::schoolbook_negacyclic_mul(tr, ma.coeffs, mb.coeffs);
  EXPECT_EQ(pooled.decrypt(sk_p, rel_p).coeffs, expect);
}

TEST_P(ParallelVsSerialBfv, HomomorphicOpsAreBitExact) {
  const auto& pc = param_case();
  constexpr std::uint64_t kSeed = 5;
  Bfv serial(make_params(pc), kSeed, ExecPolicy::serial());
  Bfv pooled(make_params(pc), kSeed, ExecPolicy::pooled(threads()));

  const auto sk_s = serial.keygen_secret();
  const auto sk_p = pooled.keygen_secret();
  const auto pk_s = serial.keygen_public(sk_s);
  const auto pk_p = pooled.keygen_public(sk_p);

  const auto ma = random_plain(serial.context(), 17);
  const auto mb = random_plain(serial.context(), 18);
  const auto ca_s = serial.encrypt(pk_s, ma);
  const auto ca_p = pooled.encrypt(pk_p, ma);

  expect_ct_equal(serial.add(ca_s, serial.encrypt(pk_s, mb)),
                  pooled.add(ca_p, pooled.encrypt(pk_p, mb)), "add");
  expect_ct_equal(serial.negate(ca_s), pooled.negate(ca_p), "negate");
  expect_ct_equal(serial.add_plain(ca_s, mb), pooled.add_plain(ca_p, mb),
                  "add_plain");
  expect_ct_equal(serial.mul_plain(ca_s, mb), pooled.mul_plain(ca_p, mb),
                  "mul_plain");
  EXPECT_DOUBLE_EQ(serial.noise_budget_bits(sk_s, ca_s),
                   pooled.noise_budget_bits(sk_p, ca_p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelVsSerialBfv,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2),  // kParamCases
                       ::testing::Values<std::size_t>(1, 2, 8)),  // threads
    [](const ::testing::TestParamInfo<ParallelVsSerialBfv::ParamType>& info) {
      return std::string(kParamCases[std::get<0>(info.param)].name) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelVsSerialBfv, RuntimePolicySwitchIsBitExact) {
  // The serial reference path stays selectable at runtime on one scheme:
  // switching pooled -> serial -> pooled must not change evaluation results.
  Bfv scheme(BfvParams::test_tiny(64), 3, ExecPolicy::pooled(4));
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto m = random_plain(scheme.context(), 9);
  const auto ct = scheme.encrypt(pk, m);

  const auto pooled = scheme.multiply(ct, ct);
  scheme.set_exec_policy(ExecPolicy::serial());
  const auto serial = scheme.multiply(ct, ct);
  expect_ct_equal(pooled, serial, "pooled vs serial on one context");
  scheme.set_exec_policy(ExecPolicy::pooled(2, /*grain=*/8));
  const auto pooled2 = scheme.multiply(ct, ct);
  expect_ct_equal(serial, pooled2, "re-pooled");
  EXPECT_EQ(scheme.decrypt(sk, pooled2).coeffs, scheme.decrypt(sk, serial).coeffs);
}

TEST(ParallelVsSerialBfv, GrainSizeDoesNotChangeResults) {
  // Sweep pathological grains (1, larger than n, odd sizes) at a fixed
  // thread count; every partition must produce the same ciphertext.
  Bfv reference(BfvParams::test_tiny(128), 11, ExecPolicy::serial());
  const auto sk = reference.keygen_secret();
  const auto pk = reference.keygen_public(sk);
  const auto m = random_plain(reference.context(), 12);
  const auto ct = reference.encrypt(pk, m);
  const auto expect = reference.multiply(ct, ct);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                            std::size_t{1000}}) {
    Bfv pooled(BfvParams::test_tiny(128), 11, ExecPolicy::pooled(4, grain));
    const auto sk_p = pooled.keygen_secret();
    const auto pk_p = pooled.keygen_public(sk_p);
    const auto ct_p = pooled.encrypt(pk_p, m);
    expect_ct_equal(ct, ct_p, "encrypt under grain sweep");
    expect_ct_equal(expect, pooled.multiply(ct_p, ct_p), "multiply under grain sweep");
  }
}

}  // namespace
}  // namespace cofhee::bfv
