// BFV at the paper's full-size parameter sets -- slower tests that pin the
// production configurations (Fig. 6's rings), including one EvalMult at
// n = 2^12 / log q = 109.
#include <gtest/gtest.h>

#include "bfv/bfv.hpp"
#include "bfv/encoder.hpp"

namespace cofhee::bfv {
namespace {

TEST(BfvPaperParams, SmallConfigEncryptDecrypt) {
  Bfv scheme(BfvParams::paper_small(), 3);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  BatchEncoder enc(scheme.context());
  ASSERT_EQ(enc.slot_count(), 4096u);
  std::vector<u64> v(4096);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i * 7 + 1) % 65537;
  const auto ct = scheme.encrypt(pk, enc.encode(v));
  EXPECT_EQ(enc.decode(scheme.decrypt(sk, ct)), v);
  EXPECT_GT(scheme.noise_budget_bits(sk, ct), 40.0);
}

TEST(BfvPaperParams, SmallConfigMultiply) {
  // The Fig. 6 (2^12, 109) operation end to end, with batching.
  Bfv scheme(BfvParams::paper_small(), 4);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  BatchEncoder enc(scheme.context());
  std::vector<u64> va(4096), vb(4096);
  for (std::size_t i = 0; i < va.size(); ++i) {
    va[i] = (i + 1) % 251;
    vb[i] = (3 * i + 2) % 251;
  }
  const auto ct = scheme.multiply(scheme.encrypt(pk, enc.encode(va)),
                                  scheme.encrypt(pk, enc.encode(vb)));
  EXPECT_EQ(ct.size(), 3u);  // without relinearization, as in Fig. 6
  const auto out = enc.decode(scheme.decrypt(sk, ct));
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], va[i] * vb[i] % 65537) << i;
}

TEST(BfvPaperParams, LargeConfigParameters) {
  const auto p = BfvParams::paper_large();
  EXPECT_EQ(p.n, 8192u);
  EXPECT_EQ(p.q_moduli.size(), 4u);   // 54+54+55+55 (the SEAL split)
  EXPECT_EQ(p.aux_moduli.size(), 5u); // |Q|+1 extension towers
  EXPECT_NEAR(p.log_q(), 218, 1);
  // All moduli NTT-friendly for n = 2^13 and pairwise distinct.
  for (std::size_t i = 0; i < p.q_moduli.size(); ++i) {
    EXPECT_EQ((p.q_moduli[i] - 1) % (2 * p.n), 0u);
    for (std::size_t j = i + 1; j < p.q_moduli.size(); ++j)
      EXPECT_NE(p.q_moduli[i], p.q_moduli[j]);
  }
}

TEST(BfvPaperParams, SecurityRelevantShape) {
  // The paper cites 128-bit classical security for both (n, log q) pairs;
  // the structural requirement is log q <= the HE-standard bound for n.
  // (HomomorphicEncryption.org table: n=4096 -> 109 bits, n=8192 -> 218.)
  EXPECT_LE(BfvParams::paper_small().log_q(), 109u + 1);
  EXPECT_LE(BfvParams::paper_large().log_q(), 218u + 1);
}

}  // namespace
}  // namespace cofhee::bfv
