#include "chip/gpcfg.hpp"

#include <gtest/gtest.h>

#include "nt/barrett.hpp"
#include "nt/primes.hpp"

namespace cofhee::chip {
namespace {

TEST(Gpcfg, SignatureIsReadOnly) {
  Gpcfg g;
  EXPECT_EQ(g.read(Reg::kSignature), kSignatureValue);
  g.write(Reg::kSignature, 0xDEAD);
  EXPECT_EQ(g.read(Reg::kSignature), kSignatureValue);
}

TEST(Gpcfg, WideQRegisterRoundTrip) {
  Gpcfg g;
  const u128 q = (static_cast<u128>(0x0123456789ABCDEFull) << 64) | 0xFEDCBA9876543210ull;
  g.set_q(q);
  EXPECT_EQ(g.q(), q);
}

TEST(Gpcfg, SetQDerivesBarrettRegisters) {
  // Table II: BARRETTCTL1 = shift, BARRETTCTL2 = 2^k/q (160-bit register).
  Gpcfg g;
  const u128 q = nt::find_ntt_prime_u128(109, 4096);
  g.set_q(q);
  nt::Barrett128 br(q);
  EXPECT_EQ(g.read(Reg::kBarrettCtl1), 2 * br.k());
  // Low 32 bits of mu must match.
  EXPECT_EQ(g.read(Reg::kBarrettCtl2_0), static_cast<std::uint32_t>(br.mu().limb[0]));
}

TEST(Gpcfg, NRegisterStoresLog2) {
  Gpcfg g;
  g.set_n(8192);
  EXPECT_EQ(g.n(), 8192u);
  EXPECT_EQ(g.read(Reg::kFheCtl1), 13u);
}

TEST(Gpcfg, QVersionBumpsOnWrite) {
  Gpcfg g;
  const auto v0 = g.q_version();
  g.set_q(u128{97});
  EXPECT_GT(g.q_version(), v0);
}

TEST(Gpcfg, IrqRaiseAndWrite1Clear) {
  Gpcfg g;
  g.raise_irq(kIrqOpDone | kIrqFifoEmpty);
  EXPECT_TRUE(g.irq_pending(kIrqOpDone));
  EXPECT_TRUE(g.irq_pending(kIrqFifoEmpty));
  // Host clears via write-1-to-clear semantics.
  g.write(Reg::kIrqStatus, kIrqOpDone);
  EXPECT_FALSE(g.irq_pending(kIrqOpDone));
  EXPECT_TRUE(g.irq_pending(kIrqFifoEmpty));
}

TEST(Gpcfg, CommandPushHookFiresOnWord3) {
  Gpcfg g;
  int pushes = 0;
  std::array<std::uint32_t, 4> got{};
  g.on_command_push = [&](const std::array<std::uint32_t, 4>& w) {
    ++pushes;
    got = w;
  };
  g.write(Reg::kCommandFifo0, 0x11);
  g.write(Reg::kCommandFifo1, 0x22);
  g.write(Reg::kCommandFifo2, 0x33);
  EXPECT_EQ(pushes, 0);
  g.write(Reg::kCommandFifo3, 0x44);
  EXPECT_EQ(pushes, 1);
  EXPECT_EQ(got[0], 0x11u);
  EXPECT_EQ(got[3], 0x44u);
}

TEST(Gpcfg, BadOffsetThrows) {
  Gpcfg g;
  EXPECT_THROW((void)g.read_word(2), std::out_of_range);     // unaligned
  EXPECT_THROW((void)g.read_word(0x1000), std::out_of_range);  // beyond file
}

}  // namespace
}  // namespace cofhee::chip
