// The Section VIII-A architecture knobs of the chip model.
#include <gtest/gtest.h>

#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::chip {
namespace {

struct Knobs {
  std::size_t n = 1024;
  u128 q;
  u128 psi;

  Knobs() : q(nt::find_ntt_prime_u128(60, n)), psi(nt::primitive_2nth_root(q, n)) {}

  std::uint64_t ntt_cycles(const ChipConfig& cfg) {
    CofheeChip soc(cfg);
    driver::HostDriver drv(soc);
    drv.configure_ring(q, n, psi);
    poly::Rng rng(1);
    soc.load_coeffs(Bank::kDp0, 0, poly::sample_uniform128(rng, n, q));
    soc.reset_metrics();
    (void)drv.ntt({Bank::kDp0, 0}, {Bank::kDp1, 0});
    return soc.cycles();
  }

  std::vector<u128> ntt_result(const ChipConfig& cfg) {
    CofheeChip soc(cfg);
    driver::HostDriver drv(soc);
    drv.configure_ring(q, n, psi);
    poly::Rng rng(1);
    soc.load_coeffs(Bank::kDp0, 0, poly::sample_uniform128(rng, n, q));
    (void)drv.ntt({Bank::kDp0, 0}, {Bank::kDp1, 0});
    return soc.read_coeffs(Bank::kDp1, 0, n);
  }
};

TEST(Scalability, QuadPeQuartersButterflyTime) {
  Knobs k;
  ChipConfig base;
  ChipConfig quad = base;
  quad.num_pe = 4;
  const auto c1 = k.ntt_cycles(base);
  const auto c4 = k.ntt_cycles(quad);
  // Butterfly cycles shrink 4x; per-stage overhead stays.
  const unsigned logn = nt::log2_exact(k.n);
  EXPECT_EQ(c1, k.n / 2 * logn + 22 * logn + 1);
  EXPECT_EQ(c4, k.n / 2 * logn / 4 + 22 * logn + 1 + k.n / 8 / 4 * 0);  // fwd NTT only
  EXPECT_GT(static_cast<double>(c1) / static_cast<double>(c4), 3.0);
}

TEST(Scalability, ResultsIndependentOfPeCount) {
  Knobs k;
  ChipConfig base;
  ChipConfig quad = base;
  quad.num_pe = 4;
  EXPECT_EQ(k.ntt_result(base), k.ntt_result(quad));
}

TEST(Scalability, DualPortComputeKnob) {
  Knobs k;
  ChipConfig off;
  off.dual_port_compute = false;  // force II = 2 even on DP banks
  const auto c_on = k.ntt_cycles(ChipConfig{});
  const auto c_off = k.ntt_cycles(off);
  const unsigned logn = nt::log2_exact(k.n);
  EXPECT_EQ(c_off - c_on, k.n / 2 * logn);  // one extra cycle per butterfly
}

TEST(Scalability, FrequencyScalesWallClockOnly) {
  Knobs k;
  ChipConfig fast;
  fast.freq_mhz = 500.0;
  CofheeChip a;  // 250 MHz
  CofheeChip b(fast);
  EXPECT_EQ(a.config().cycle_ns(), 4.0);
  EXPECT_EQ(b.config().cycle_ns(), 2.0);
}

TEST(Scalability, MaxDegreeConfig) {
  ChipConfig cfg;
  EXPECT_EQ(cfg.max_n(), 1u << 14);  // native limit (Section III-A)
  EXPECT_EQ(cfg.log2_opt_n, 13u);    // the optimized operating point
  EXPECT_EQ(cfg.cmd_fifo_depth, 32u);
}

}  // namespace
}  // namespace cofhee::chip
