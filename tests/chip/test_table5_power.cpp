// Regression-pins the power model against the silicon measurements of
// Table V: every row must stay within 10% (the fit currently holds ~7%).
#include <gtest/gtest.h>

#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::chip {
namespace {

struct PowerCase {
  const char* algo;
  std::size_t n;
  double avg_mw, peak_mw;
};

class TableVPower : public ::testing::TestWithParam<PowerCase> {};

TEST_P(TableVPower, WithinTenPercentOfSilicon) {
  const auto& pc = GetParam();
  const auto q = nt::find_ntt_prime_u128(109, pc.n);
  CofheeChip soc;
  driver::HostDriver drv(soc);
  drv.configure_ring(q, pc.n, nt::primitive_2nth_root(q, pc.n));
  poly::Rng rng(pc.n);
  const auto a = poly::sample_uniform128(rng, pc.n, q);
  soc.load_coeffs(Bank::kSp0, 0, a);
  soc.load_coeffs(Bank::kSp1, 0, a);
  soc.load_coeffs(Bank::kDp0, 0, a);
  soc.reset_metrics();

  const std::string op = pc.algo;
  if (op == "PolyMul") {
    (void)drv.poly_mul();
  } else if (op == "NTT") {
    (void)drv.ntt({Bank::kDp0, 0}, {Bank::kDp1, 0});
  } else {
    (void)drv.ntt({Bank::kDp0, 0}, {Bank::kDp1, 0});
    soc.reset_metrics();
    (void)drv.intt({Bank::kDp1, 0}, {Bank::kDp0, 0});
  }
  const auto rep = soc.power_trace().report();
  EXPECT_NEAR(rep.avg_mw, pc.avg_mw, 0.10 * pc.avg_mw) << op << " n=" << pc.n;
  EXPECT_NEAR(rep.peak_mw, pc.peak_mw, 0.10 * pc.peak_mw) << op << " n=" << pc.n;
}

INSTANTIATE_TEST_SUITE_P(PaperTableV, TableVPower,
                         ::testing::Values(PowerCase{"PolyMul", 4096, 22.9, 30.4},
                                           PowerCase{"NTT", 4096, 24.5, 30.4},
                                           PowerCase{"iNTT", 4096, 19.9, 27.2},
                                           PowerCase{"PolyMul", 8192, 21.2, 29.7},
                                           PowerCase{"NTT", 8192, 24.4, 29.7},
                                           PowerCase{"iNTT", 8192, 18.3, 23.9}));

}  // namespace
}  // namespace cofhee::chip
