// AHB-Lite interconnect and serial-interface models (Sections III-G1,
// III-H): address decode, range exclusivity, per-master accounting, link
// timing, and the DMA engine's overlap bookkeeping.
#include <gtest/gtest.h>

#include "chip/chip.hpp"

namespace cofhee::chip {
namespace {

TEST(Ahb, RejectsOverlappingSlaves) {
  AhbBus bus;
  bus.attach({"A", 0x1000, 0x100, [](std::uint32_t) { return 0u; },
              [](std::uint32_t, std::uint32_t) {}});
  EXPECT_THROW(bus.attach({"B", 0x10F0, 0x100, nullptr, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(bus.attach({"C", 0x1000, 0, nullptr, nullptr}), std::invalid_argument);
  // Adjacent is fine.
  bus.attach({"D", 0x1100, 0x100, [](std::uint32_t) { return 7u; },
              [](std::uint32_t, std::uint32_t) {}});
  EXPECT_EQ(bus.read32(BusMaster::kCm0, 0x1100), 7u);
}

TEST(Ahb, UnmappedAddressThrows) {
  AhbBus bus;
  EXPECT_THROW((void)bus.read32(BusMaster::kDma, 0xFFFF0000), std::out_of_range);
}

TEST(Ahb, PerMasterTransactionCounting) {
  CofheeChip soc;
  auto& bus = soc.bus();
  const auto before = bus.stats(BusMaster::kCm0).reads;
  (void)bus.read32(BusMaster::kCm0, MemoryMap::kGpcfgBase);
  (void)bus.read32(BusMaster::kDma, MemoryMap::kGpcfgBase);
  EXPECT_EQ(bus.stats(BusMaster::kCm0).reads, before + 1);
  EXPECT_EQ(bus.stats(BusMaster::kDma).reads, 1u);
}

TEST(Ahb, Wide128BitTransfersAreFourBeats) {
  CofheeChip soc;
  auto& bus = soc.bus();
  const auto before = bus.stats(BusMaster::kHostSpi).writes;
  bus.write128(BusMaster::kHostSpi, MemoryMap::kDataSramBase, u128{42});
  EXPECT_EQ(bus.stats(BusMaster::kHostSpi).writes, before + 4);
}

TEST(Ahb, CrossbarScaleMatchesPaper) {
  // The slave complement: CM0 SRAM + 8 banks + 3 port-B aliases + GPCFG =
  // 13 decode targets for 5 masters -- the "10x11" order of the fabricated
  // 0.07 mm^2 crossbar, vs F1's 3x 3.33 mm^2 (Section III-G1).
  CofheeChip soc;
  EXPECT_EQ(soc.bus().num_slaves(), 13u);
}

TEST(Serial, UartByteTimingIs10BitsPerByte) {
  CofheeChip soc;
  auto& uart = soc.uart();
  uart.reset_stats();
  uart.host_write32(MemoryMap::kGpcfgBase + 0x24, 5);  // DBG_REG, 9 bytes
  EXPECT_EQ(uart.stats().bytes_tx, 9u);
  EXPECT_NEAR(uart.stats().seconds, 9.0 * 10.0 / 3'000'000.0, 1e-12);
}

TEST(Serial, SpiIsEightClocksPerByte) {
  CofheeChip soc;
  auto& spi = soc.spi();
  spi.reset_stats();
  (void)spi.host_read32(MemoryMap::kGpcfgBase);  // 5 out + 4 back
  EXPECT_EQ(spi.stats().bytes_tx, 5u);
  EXPECT_EQ(spi.stats().bytes_rx, 4u);
  EXPECT_NEAR(spi.stats().seconds, 9.0 * 8.0 / 50e6, 1e-12);
}

TEST(Serial, BurstFramingAmortizesHeaders) {
  CofheeChip soc;
  auto& spi = soc.spi();
  spi.reset_stats();
  std::uint32_t words[64] = {};
  spi.host_write_burst(MemoryMap::kDataSramBase, words, 64);
  // 9-byte header + 256-byte payload vs 64 * 9 bytes word-at-a-time.
  EXPECT_EQ(spi.stats().bytes_tx, 9u + 256u);
}

TEST(DmaModel, BackgroundTransferHidesUnderWindow) {
  ChipConfig cfg;
  CofheeChip soc(cfg);
  auto& dma = soc.dma();
  soc.load_coeffs(Bank::kSp0, 0, std::vector<u128>(1024, u128{3}));
  // Window larger than the burst: fully hidden.
  const auto resid = dma.background_transfer({Bank::kSp0, 0}, {Bank::kDp2, 0}, 1024,
                                             100000);
  EXPECT_EQ(resid, 0u);
  EXPECT_EQ(dma.stats().cycles_hidden, 1024u / cfg.dma_words_per_cycle);
  EXPECT_EQ(soc.read_coeffs(Bank::kDp2, 0, 1)[0], u128{3});
  // Window of zero: fully exposed.
  const auto resid2 =
      dma.background_transfer({Bank::kSp0, 0}, {Bank::kDp2, 0}, 1024, 0);
  EXPECT_EQ(resid2, 1024u / cfg.dma_words_per_cycle);
}

TEST(DmaModel, ForegroundConfigNeverHides) {
  ChipConfig cfg;
  cfg.dma_background = false;
  CofheeChip soc(cfg);
  soc.load_coeffs(Bank::kSp0, 0, std::vector<u128>(64, u128{1}));
  const auto resid =
      soc.dma().background_transfer({Bank::kSp0, 0}, {Bank::kDp2, 0}, 64, 1u << 30);
  EXPECT_EQ(resid, 64u / cfg.dma_words_per_cycle);
  EXPECT_EQ(soc.dma().stats().cycles_hidden, 0u);
}

TEST(DmaModel, BitReverseTransfer) {
  CofheeChip soc;
  std::vector<u128> data(8);
  for (std::size_t i = 0; i < 8; ++i) data[i] = i;
  soc.load_coeffs(Bank::kSp0, 0, data);
  (void)soc.dma().transfer({Bank::kSp0, 0}, {Bank::kSp1, 0}, 8, /*bit_reverse=*/true);
  const auto out = soc.read_coeffs(Bank::kSp1, 0, 8);
  const std::vector<u128> expect{0, 4, 2, 6, 1, 5, 3, 7};
  EXPECT_EQ(out, expect);
  EXPECT_THROW(
      (void)soc.dma().transfer({Bank::kSp0, 0}, {Bank::kSp1, 0}, 7, true),
      std::invalid_argument);
}

TEST(ChipTop, PortBAliasIsSameStorage) {
  CofheeChip soc;
  auto& bus = soc.bus();
  const std::uint32_t portA = MemoryMap::kDataSramBase;  // DP0
  const std::uint32_t portB = portA + MemoryMap::kPortBOffset;
  bus.write32(BusMaster::kHostSpi, portA, 0xAA55);
  EXPECT_EQ(bus.read32(BusMaster::kHostUart, portB), 0xAA55u);
  // Single-port banks expose no port-B alias.
  const std::uint32_t sp0 =
      MemoryMap::kDataSramBase + 3 * MemoryMap::kBankStride + MemoryMap::kPortBOffset;
  EXPECT_THROW((void)bus.read32(BusMaster::kHostSpi, sp0), std::out_of_range);
}

}  // namespace
}  // namespace cofhee::chip
