#include "chip/power.hpp"

#include <gtest/gtest.h>

namespace cofhee::chip {
namespace {

TEST(PowerTrace, StaticOnlySegment) {
  EnergyTable et;
  PowerTrace tr(et, 4.0);
  PowerSegment s;
  s.cycles = 1000;
  tr.append(s);
  const auto rep = tr.report();
  // 12 pJ / 4 ns = 3 mW.
  EXPECT_NEAR(rep.avg_mw, et.static_pj_per_cycle / 4.0, 1e-9);
  EXPECT_NEAR(rep.peak_mw, rep.avg_mw, 1e-9);
  EXPECT_EQ(rep.cycles, 1000u);
}

TEST(PowerTrace, PeakIsMaxOverSegments) {
  EnergyTable et;
  PowerTrace tr(et, 4.0);
  PowerSegment light;
  light.cycles = 100;
  PowerSegment heavy;
  heavy.cycles = 100;
  heavy.mult_fwd = 100;
  heavy.sram_reads = 200;
  heavy.sram_writes = 200;
  tr.append(light);
  tr.append(heavy);
  const auto rep = tr.report();
  EXPECT_GT(rep.peak_mw, tr.segment_power_mw(light));
  EXPECT_NEAR(rep.peak_mw, tr.segment_power_mw(heavy), 1e-9);
  EXPECT_LT(rep.avg_mw, rep.peak_mw);
}

TEST(PowerTrace, EnergyAdds) {
  EnergyTable et;
  PowerTrace tr(et, 4.0);
  PowerSegment s;
  s.cycles = 10;
  s.mult_fwd = 10;
  tr.append(s);
  tr.append(s);
  const auto rep = tr.report();
  const double expect_pj = 2 * (10 * et.static_pj_per_cycle + 10 * et.mult_fwd_pj);
  EXPECT_NEAR(rep.energy_uj, expect_pj * 1e-6, 1e-12);
}

TEST(PowerTrace, DmaConcurrentAddsPower) {
  EnergyTable et;
  PowerTrace tr(et, 4.0);
  PowerSegment a;
  a.cycles = 100;
  PowerSegment b = a;
  b.dma_concurrent = true;
  EXPECT_GT(tr.segment_power_mw(b), tr.segment_power_mw(a));
  EXPECT_NEAR(tr.segment_power_mw(b) - tr.segment_power_mw(a),
              et.dma_concurrent_pj / 4.0, 1e-9);
}

TEST(PowerTrace, ClearResets) {
  EnergyTable et;
  PowerTrace tr(et, 4.0);
  PowerSegment s;
  s.cycles = 5;
  tr.append(s);
  tr.clear();
  EXPECT_EQ(tr.report().cycles, 0u);
}

}  // namespace
}  // namespace cofhee::chip
