// MDMC correctness and the Table V cycle calibration.
#include "chip/chip.hpp"

#include <gtest/gtest.h>

#include "nt/primes.hpp"
#include "poly/merged_ntt.hpp"
#include "poly/sampler.hpp"

namespace cofhee::chip {
namespace {

using nt::Barrett128;
using poly::MergedNtt128;

struct ChipFixture {
  CofheeChip chip;
  u128 q;
  std::size_t n;
  Barrett128 ring;
  MergedNtt128 eng;

  explicit ChipFixture(std::size_t n_, unsigned bits = 109)
      : q(nt::find_ntt_prime_u128(bits, n_)), n(n_), ring(q),
        eng(ring, n_, nt::primitive_2nth_root(q, n_)) {
    chip.gpcfg().set_q(q);
    chip.gpcfg().set_n(n);
    chip.gpcfg().set_inv_polydeg(eng.n_inv());
    chip.load_coeffs(Bank::kTw, 0, eng.twiddle_rom());
  }

  std::vector<u128> random_poly(std::uint64_t seed) {
    poly::Rng rng(seed);
    return poly::sample_uniform128(rng, n, q);
  }
};

TEST(Mdmc, NttMatchesReferenceEngine) {
  ChipFixture f(256);
  const auto x = f.random_poly(1);
  f.chip.load_coeffs(Bank::kDp0, 0, x);
  f.chip.direct_execute({Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0}, 0, 0});
  auto expect = x;
  f.eng.forward(expect);
  EXPECT_EQ(f.chip.read_coeffs(Bank::kDp1, 0, f.n), expect);
}

TEST(Mdmc, InttInvertsNtt) {
  ChipFixture f(512);
  const auto x = f.random_poly(2);
  f.chip.load_coeffs(Bank::kDp0, 0, x);
  f.chip.direct_execute({Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0}, 0, 0});
  f.chip.direct_execute({Opcode::kIntt, {Bank::kDp1, 0}, {}, {Bank::kDp0, 0}, 0, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kDp0, 0, f.n), x);
}

TEST(Mdmc, NttHadamardInttIsNegacyclicProduct) {
  // The full Algorithm 2 flow on chip equals the schoolbook negacyclic
  // product -- the end-to-end functional contract of the co-processor.
  ChipFixture f(128);
  const auto a = f.random_poly(3);
  const auto b = f.random_poly(4);
  f.chip.load_coeffs(Bank::kDp0, 0, a);
  f.chip.direct_execute({Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0}, 0, 0});
  f.chip.load_coeffs(Bank::kDp0, 0, b);
  f.chip.direct_execute({Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp2, 0}, 0, 0});
  f.chip.direct_execute({Opcode::kPModMul, {Bank::kDp1, 0}, {Bank::kDp2, 0},
                         {Bank::kDp0, 0}, static_cast<std::uint32_t>(f.n), 0});
  f.chip.direct_execute({Opcode::kIntt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0}, 0, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kDp1, 0, f.n),
            poly::schoolbook_negacyclic_mul(f.ring, a, b));
}

TEST(Mdmc, PointwiseOps) {
  ChipFixture f(64);
  const auto a = f.random_poly(5);
  const auto b = f.random_poly(6);
  f.chip.load_coeffs(Bank::kSp0, 0, a);
  f.chip.load_coeffs(Bank::kSp1, 0, b);
  const auto len = static_cast<std::uint32_t>(f.n);

  f.chip.direct_execute({Opcode::kPModAdd, {Bank::kSp0, 0}, {Bank::kSp1, 0},
                         {Bank::kSp2, 0}, len, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), poly::pointwise_add(f.ring, a, b));

  f.chip.direct_execute({Opcode::kPModSub, {Bank::kSp0, 0}, {Bank::kSp1, 0},
                         {Bank::kSp2, 0}, len, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), poly::pointwise_sub(f.ring, a, b));

  f.chip.direct_execute({Opcode::kPModMul, {Bank::kSp0, 0}, {Bank::kSp1, 0},
                         {Bank::kSp2, 0}, len, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), poly::pointwise_mul(f.ring, a, b));

  f.chip.direct_execute({Opcode::kPModSqr, {Bank::kSp0, 0}, {}, {Bank::kSp2, 0},
                         len, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), poly::pointwise_mul(f.ring, a, a));

  const u128 c = 123456789;
  f.chip.gpcfg().set_cmod_const(c);
  f.chip.direct_execute({Opcode::kCModMul, {Bank::kSp0, 0}, {}, {Bank::kSp2, 0},
                         len, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), poly::scalar_mul(f.ring, a, c));
}

TEST(Mdmc, MemCpyAndBitReverse) {
  ChipFixture f(64);
  const auto a = f.random_poly(7);
  f.chip.load_coeffs(Bank::kSp0, 0, a);
  const auto len = static_cast<std::uint32_t>(f.n);
  f.chip.direct_execute({Opcode::kMemCpy, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0}, len, 0});
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp1, 0, f.n), a);
  f.chip.direct_execute({Opcode::kMemCpyR, {Bank::kSp0, 0}, {}, {Bank::kSp2, 0}, len, 0});
  const auto rev = nt::bit_reverse_table(f.n);
  auto expect = a;
  for (std::size_t i = 0; i < f.n; ++i) expect[rev[i]] = a[i];
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp2, 0, f.n), expect);
}

// ---- Table V cycle calibration: these are the silicon measurements. ----

struct CyclesCase {
  std::size_t n;
  std::uint64_t ntt, intt;
};

class TableVCycles : public ::testing::TestWithParam<CyclesCase> {};

TEST_P(TableVCycles, NttAndInttMatchSilicon) {
  const auto [n, ntt_cc, intt_cc] = GetParam();
  ChipFixture f(n, 60);  // modulus width does not affect cycle counts
  const auto x = f.random_poly(8);
  f.chip.load_coeffs(Bank::kDp0, 0, x);
  const auto c1 =
      f.chip.direct_execute({Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0}, 0, 0});
  EXPECT_EQ(c1, ntt_cc);
  const auto c2 = f.chip.direct_execute(
      {Opcode::kIntt, {Bank::kDp1, 0}, {}, {Bank::kDp0, 0}, 0, 0});
  EXPECT_EQ(c2, intt_cc);
}

INSTANTIATE_TEST_SUITE_P(PaperTableV, TableVCycles,
                         ::testing::Values(CyclesCase{4096, 24841, 29468},
                                           CyclesCase{8192, 53535, 62770}));

TEST(Mdmc, SinglePortNttHasDoubleII) {
  // Section III-C: n >= 2^14 must run from single-port memories at II = 2.
  ChipFixture f(256, 60);
  const auto x = f.random_poly(9);
  f.chip.load_coeffs(Bank::kDp0, 0, x);
  const auto dp = f.chip.direct_execute(
      {Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0}, 0, 0});
  f.chip.load_coeffs(Bank::kSp0, 0, x);
  const auto sp = f.chip.direct_execute(
      {Opcode::kNtt, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0}, 0, 0});
  const unsigned logn = nt::log2_exact(f.n);
  EXPECT_EQ(dp, f.n / 2 * logn + 22 * logn + 1);
  EXPECT_EQ(sp, f.n * logn + 22 * logn + 1);  // butterflies at II = 2
  // Same functional result either way.
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp1, 0, f.n),
            f.chip.read_coeffs(Bank::kDp1, 0, f.n));
}

TEST(Mdmc, RejectsBadLengths) {
  ChipFixture f(64);
  EXPECT_THROW(f.chip.direct_execute({Opcode::kNtt, {Bank::kDp0, 0}, {}, {Bank::kDp1, 0},
                                      32, 0}),
               std::invalid_argument);
  EXPECT_THROW(f.chip.direct_execute({Opcode::kPModAdd, {Bank::kSp0, 0}, {Bank::kSp1, 0},
                                      {Bank::kSp2, 0}, 1u << 20, 0}),
               std::invalid_argument);
}

TEST(Mdmc, OpDoneIrqRaised) {
  ChipFixture f(64);
  f.chip.gpcfg().clear_irq(~0u);
  const auto a = f.random_poly(10);
  f.chip.load_coeffs(Bank::kSp0, 0, a);
  f.chip.direct_execute({Opcode::kMemCpy, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0},
                         static_cast<std::uint32_t>(f.n), 0});
  EXPECT_TRUE(f.chip.gpcfg().irq_pending(kIrqOpDone));
}

TEST(CmdFifoTest, DepthAndOrderAndEmptyIrq) {
  ChipFixture f(64);
  const auto a = f.random_poly(11);
  f.chip.load_coeffs(Bank::kSp0, 0, a);
  const auto len = static_cast<std::uint32_t>(f.n);
  // Chain: SP0 -> SP1 -> SP2 -> SP3; order matters.
  f.chip.fifo().push({Opcode::kMemCpy, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0}, len, 0});
  f.chip.fifo().push({Opcode::kMemCpy, {Bank::kSp1, 0}, {}, {Bank::kSp2, 0}, len, 0});
  f.chip.fifo().push({Opcode::kMemCpy, {Bank::kSp2, 0}, {}, {Bank::kSp3, 0}, len, 0});
  EXPECT_EQ(f.chip.fifo().size(), 3u);
  f.chip.run_fifo();
  EXPECT_EQ(f.chip.read_coeffs(Bank::kSp3, 0, f.n), a);
  EXPECT_TRUE(f.chip.gpcfg().irq_pending(kIrqFifoEmpty));
  EXPECT_EQ(f.chip.fifo().depth(), 32u);  // Section III-I
}

TEST(CmdFifoTest, OverflowThrows) {
  ChipFixture f(64);
  for (int i = 0; i < 32; ++i)
    f.chip.fifo().push({Opcode::kMemCpy, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0}, 8, 0});
  EXPECT_THROW(
      f.chip.fifo().push({Opcode::kMemCpy, {Bank::kSp0, 0}, {}, {Bank::kSp1, 0}, 8, 0}),
      std::overflow_error);
}

TEST(ChipTop, BusMappedBankAccessMatchesBackdoor) {
  ChipFixture f(64);
  auto& bus = f.chip.bus();
  const u128 v = (static_cast<u128>(0x1122334455667788ull) << 64) | 0x99AABBCCDDEEFF00ull;
  bus.write128(BusMaster::kHostSpi, MemoryMap::kDataSramBase, v);
  EXPECT_EQ(f.chip.read_coeffs(Bank::kDp0, 0, 1)[0], v);
  // Dual-port banks respond identically through the port-B address space.
  const u128 back = bus.read128(BusMaster::kHostSpi,
                                MemoryMap::kDataSramBase + MemoryMap::kPortBOffset);
  EXPECT_EQ(back, v);
}

TEST(ChipTop, GpcfgReachableOverBus) {
  ChipFixture f(64);
  const auto sig = f.chip.bus().read32(BusMaster::kHostUart, MemoryMap::kGpcfgBase);
  EXPECT_EQ(sig, kSignatureValue);
}

}  // namespace
}  // namespace cofhee::chip
