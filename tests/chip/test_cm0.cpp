#include "chip/cm0.hpp"

#include <gtest/gtest.h>

#include "chip/chip.hpp"

namespace cofhee::chip {
namespace {

struct Cm0Fixture {
  CofheeChip chip;

  Cm0 make_core(Cm0Asm& as) {
    const auto image = as.assemble();
    for (std::size_t w = 0; w < image.size(); ++w)
      chip.bus().write32(BusMaster::kHostSpi, static_cast<std::uint32_t>(w) * 4,
                         image[w]);
    return Cm0(chip.bus());
  }
};

TEST(Cm0, MovAddSub) {
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 10);
  as.adds_imm(0, 32);
  as.movs_imm(1, 2);
  as.subs_reg(2, 0, 1);  // r2 = 42 - 2
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 42u);
  EXPECT_EQ(core.reg(2), 40u);
}

TEST(Cm0, LiteralPoolLoads32BitConstants) {
  Cm0Fixture f;
  Cm0Asm as;
  as.ldr_lit(0, 0xDEADBEEF);
  as.ldr_lit(1, 0x40020000);
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 0xDEADBEEFu);
  EXPECT_EQ(core.reg(1), 0x40020000u);
}

TEST(Cm0, CountdownLoop) {
  // r0 = 5; loop: r1 += 2; r0 -= 1; bne loop  => r1 = 10.
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 5);
  as.movs_imm(1, 0);
  as.label("loop");
  as.adds_imm(1, 2);
  as.subs_imm(0, 1);
  as.bne("loop");
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(1), 10u);
  EXPECT_GT(core.instret(), 15u);  // 5 iterations x 3 instructions + setup
}

TEST(Cm0, LoadStoreThroughAhb) {
  // Store 0xABCD to data bank word 0 via the bus, read it back.
  Cm0Fixture f;
  Cm0Asm as;
  as.ldr_lit(4, MemoryMap::kDataSramBase);
  as.ldr_lit(0, 0xABCD);
  as.str_imm(0, 4, 0);
  as.ldr_imm(1, 4, 0);
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(1), 0xABCDu);
  EXPECT_EQ(static_cast<std::uint64_t>(f.chip.read_coeffs(Bank::kDp0, 0, 1)[0]),
            0xABCDull);
}

TEST(Cm0, WfiWaitsUntilIrqDelivered) {
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 1);
  as.wfi();
  as.movs_imm(0, 2);
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kWfi);
  EXPECT_EQ(core.reg(0), 1u);
  EXPECT_TRUE(core.waiting_for_irq());
  core.deliver_irq();
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 2u);
}

TEST(Cm0, BranchAndLink) {
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 0);
  as.bl("func");
  as.adds_imm(0, 1);  // runs after return => r0 = 11
  as.bkpt();
  as.label("func");
  as.adds_imm(0, 10);
  as.bx_lr();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 11u);
}

TEST(Cm0, PushPopCallConvention) {
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 0);
  as.bl("outer");
  as.bkpt();
  as.label("outer");
  as.push_lr();
  as.bl("inner");      // clobbers lr; restored by pop
  as.adds_imm(0, 1);
  as.pop_pc();
  as.label("inner");
  as.adds_imm(0, 2);
  as.bx_lr();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 3u);
}

TEST(Cm0, ShiftsAndLogic) {
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 0xF0);
  as.lsls_imm(1, 0, 8);   // r1 = 0xF000
  as.lsrs_imm(2, 1, 4);   // r2 = 0x0F00
  as.movs_imm(3, 0xFF);
  as.ands(2, 3);          // r2 &= 0xFF => 0
  as.orrs(2, 1);          // r2 |= 0xF000
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(1), 0xF000u);
  EXPECT_EQ(core.reg(2), 0xF000u);
}

TEST(Cm0, MulAndFlags) {
  Cm0Fixture f;
  Cm0Asm as;
  as.movs_imm(0, 7);
  as.movs_imm(1, 6);
  as.muls(0, 1);  // r0 = 42
  as.cmp_imm(0, 42);
  as.beq("ok");
  as.movs_imm(2, 1);  // skipped
  as.label("ok");
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 42u);
  EXPECT_EQ(core.reg(2), 0u);
}

TEST(Cm0, CycleLimitStops) {
  Cm0Fixture f;
  Cm0Asm as;
  as.label("spin");
  as.b("spin");
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(100), Cm0Stop::kCycleLimit);
}

TEST(Cm0Assembler, RejectsUndefinedLabel) {
  Cm0Asm as;
  as.b("nowhere");
  EXPECT_THROW((void)as.assemble(), std::invalid_argument);
}

TEST(Cm0Assembler, RejectsDuplicateLabel) {
  Cm0Asm as;
  as.label("x");
  EXPECT_THROW(as.label("x"), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::chip
