#include "chip/sram.hpp"

#include <gtest/gtest.h>

namespace cofhee::chip {
namespace {

TEST(Sram, ReadWriteAndCounters) {
  Sram s("T", 64, 1, 2);
  s.write(3, u128{42});
  EXPECT_EQ(s.read(3), u128{42});
  EXPECT_EQ(s.reads(), 1u);
  EXPECT_EQ(s.writes(), 1u);
  s.reset_counters();
  EXPECT_EQ(s.reads(), 0u);
}

TEST(Sram, PeekPokeDoNotCount) {
  Sram s("T", 8, 1, 2);
  s.poke(0, u128{7});
  EXPECT_EQ(s.peek(0), u128{7});
  EXPECT_EQ(s.reads(), 0u);
  EXPECT_EQ(s.writes(), 0u);
}

TEST(Sram, OutOfRangeThrows) {
  Sram s("T", 8, 1, 2);
  EXPECT_THROW((void)s.read(8), std::out_of_range);
  EXPECT_THROW(s.write(100, u128{0}), std::out_of_range);
}

TEST(Sram, PortConfiguration) {
  Sram sp("SP", 8, 1, 2), dp("DP", 8, 2, 2);
  EXPECT_FALSE(sp.dual_port());
  EXPECT_TRUE(dp.dual_port());
  EXPECT_EQ(sp.accesses_per_cycle(), 1u);
  EXPECT_EQ(dp.accesses_per_cycle(), 2u);
  EXPECT_THROW(Sram("X", 8, 3, 2), std::invalid_argument);
}

TEST(MemorySystem, PaperBankComplement) {
  // 3 dual-port + 5 single-port logical banks (Section III-A).
  ChipConfig cfg;
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.num_banks(), kNumBanks);
  unsigned dp = 0, sp = 0;
  for (std::size_t i = 0; i < kNumBanks; ++i) {
    if (mem.bank(static_cast<Bank>(i)).dual_port()) {
      ++dp;
    } else {
      ++sp;
    }
  }
  EXPECT_EQ(dp, 3u);
  EXPECT_EQ(sp, 5u);
}

TEST(MemorySystem, CapacityMatchesPaperOrder) {
  // Section VIII-A: "the total memory size (1 MB currently used)".  Eight
  // 2^14-word x 128-bit banks = 2 MiB gross; the fabricated chip maps 1 MB
  // of macros into this space -- we only require the same order of
  // magnitude and that a full n=2^13 ciphertext-mult working set fits.
  ChipConfig cfg;
  MemorySystem mem(cfg);
  EXPECT_GE(mem.total_bytes(), 1u << 20);
  EXPECT_LE(mem.total_bytes(), 4u << 20);
}

}  // namespace
}  // namespace cofhee::chip
