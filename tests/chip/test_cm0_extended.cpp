// Extended Thumb-1 coverage: register-offset and sub-word loads/stores,
// SP-relative addressing, block transfers -- the formats real embedded-C
// firmware compiles to (Section III-I mode 3).
#include <gtest/gtest.h>

#include "chip/chip.hpp"
#include "chip/cm0.hpp"

namespace cofhee::chip {
namespace {

struct Cm0Fixture {
  CofheeChip chip;

  Cm0 make_core(Cm0Asm& as) {
    const auto image = as.assemble();
    for (std::size_t w = 0; w < image.size(); ++w)
      chip.bus().write32(BusMaster::kHostSpi, static_cast<std::uint32_t>(w) * 4,
                         image[w]);
    return Cm0(chip.bus());
  }
};

TEST(Cm0Ext, RegisterOffsetLoadStore) {
  Cm0Fixture f;
  Cm0Asm as;
  as.ldr_lit(4, MemoryMap::kDataSramBase);
  as.movs_imm(5, 8);          // byte offset 8 = word 2
  as.ldr_lit(0, 0x1234);
  as.str_reg(0, 4, 5);
  as.ldr_reg(1, 4, 5);
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(1), 0x1234u);
  EXPECT_EQ(static_cast<std::uint32_t>(f.chip.bus().read32(BusMaster::kHostSpi,
                                                           MemoryMap::kDataSramBase + 8)),
            0x1234u);
}

TEST(Cm0Ext, ByteAndHalfwordAccess) {
  Cm0Fixture f;
  Cm0Asm as;
  as.ldr_lit(4, MemoryMap::kDataSramBase);
  as.ldr_lit(0, 0xCAFE);
  as.strh_imm(0, 4, 2);   // halfword into the upper half of word 0
  as.ldrh_imm(1, 4, 2);
  as.movs_imm(0, 0x5A);
  as.strb_imm(0, 4, 5);   // byte 1 of word 1
  as.ldrb_imm(2, 4, 5);
  as.ldr_imm(3, 4, 0);    // whole word 0 back
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(1), 0xCAFEu);
  EXPECT_EQ(core.reg(2), 0x5Au);
  EXPECT_EQ(core.reg(3), 0xCAFE0000u);
}

TEST(Cm0Ext, SpRelativeAndSpAdjust) {
  Cm0Fixture f;
  Cm0Asm as;
  as.add_sp_imm(-16);     // reserve a frame
  as.movs_imm(0, 77);
  as.str_sp(0, 4);
  as.movs_imm(0, 0);
  as.ldr_sp(1, 4);
  as.add_sp_imm(16);      // release
  as.bkpt();
  auto core = f.make_core(as);
  const auto sp_before = core.reg(13);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(1), 77u);
  EXPECT_EQ(core.reg(13), sp_before);
}

TEST(Cm0Ext, BlockTransferLdmStm) {
  Cm0Fixture f;
  Cm0Asm as;
  as.ldr_lit(4, MemoryMap::kDataSramBase);
  as.movs_imm(0, 11);
  as.movs_imm(1, 22);
  as.movs_imm(2, 33);
  as.stmia(4, 0b0000'0111);  // store r0-r2, rb writes back
  as.ldr_lit(4, MemoryMap::kDataSramBase);
  as.movs_imm(0, 0);
  as.movs_imm(1, 0);
  as.movs_imm(2, 0);
  as.ldmia(4, 0b0000'0111);
  as.bkpt();
  auto core = f.make_core(as);
  EXPECT_EQ(core.run(), Cm0Stop::kBkpt);
  EXPECT_EQ(core.reg(0), 11u);
  EXPECT_EQ(core.reg(1), 22u);
  EXPECT_EQ(core.reg(2), 33u);
  EXPECT_EQ(core.reg(4), MemoryMap::kDataSramBase + 12);  // write-back
}

TEST(Cm0Ext, MemcpyLoopFirmware) {
  // A realistic firmware kernel: copy 8 words between banks with a
  // register-offset loop -- exercises fmt 7, fmt 2, branches together.
  Cm0Fixture f;
  for (std::uint32_t i = 0; i < 8; ++i)
    f.chip.bus().write32(BusMaster::kHostSpi, MemoryMap::kDataSramBase + i * 4,
                         0x100 + i);
  Cm0Asm as;
  as.ldr_lit(4, MemoryMap::kDataSramBase);                          // src
  as.ldr_lit(5, MemoryMap::kDataSramBase + MemoryMap::kBankStride); // dst (DP1)
  as.movs_imm(6, 0);        // byte index
  as.movs_imm(7, 32);       // limit
  as.label("loop");
  as.ldr_reg(0, 4, 6);
  as.str_reg(0, 5, 6);
  as.adds_imm(6, 4);
  as.mov_reg(1, 6);
  as.eors(1, 7);            // r1 = 0 when index == limit
  as.bne("loop");
  as.bkpt();
  auto core = f.make_core(as);
  ASSERT_EQ(core.run(), Cm0Stop::kBkpt);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f.chip.bus().read32(BusMaster::kHostUart,
                                  MemoryMap::kDataSramBase +
                                      MemoryMap::kBankStride + i * 4),
              0x100 + i);
  }
}

TEST(Cm0Ext, AsmRangeChecks) {
  Cm0Asm as;
  EXPECT_THROW(as.ldrb_imm(0, 1, 32), std::invalid_argument);
  EXPECT_THROW(as.ldrh_imm(0, 1, 3), std::invalid_argument);
  EXPECT_THROW(as.add_sp_imm(2), std::invalid_argument);
  EXPECT_THROW(as.add_sp_imm(4 * 200), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::chip
