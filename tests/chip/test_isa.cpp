#include "chip/isa.hpp"

#include <gtest/gtest.h>

namespace cofhee::chip {
namespace {

TEST(Isa, EncodeDecodeRoundTrip) {
  for (auto op : {Opcode::kNtt, Opcode::kIntt, Opcode::kPModAdd, Opcode::kPModMul,
                  Opcode::kPModSqr, Opcode::kPModSub, Opcode::kCModMul, Opcode::kPMul,
                  Opcode::kMemCpy, Opcode::kMemCpyR}) {
    Instr in;
    in.op = op;
    in.x = {Bank::kSp1, 1234};
    in.y = {Bank::kDp2, 777};
    in.dst = {Bank::kTw, 4096};
    in.len = 8192;
    const Instr back = decode(encode(in));
    EXPECT_EQ(back.op, in.op);
    EXPECT_EQ(back.x, in.x);
    EXPECT_EQ(back.y, in.y);
    EXPECT_EQ(back.dst, in.dst);
    EXPECT_EQ(back.len, in.len);
  }
}

TEST(Isa, OpcodeNames) {
  EXPECT_EQ(opcode_name(Opcode::kNtt), "NTT");
  EXPECT_EQ(opcode_name(Opcode::kIntt), "iNTT");
  EXPECT_EQ(opcode_name(Opcode::kCModMul), "CMODMUL");
  EXPECT_EQ(opcode_name(Opcode::kMemCpyR), "MEMCPYR");
}

TEST(Isa, ComputeVsMemoryClassification) {
  // Section III-B: compute ops run sequentially; memory ops may overlap.
  EXPECT_TRUE(is_compute_op(Opcode::kNtt));
  EXPECT_TRUE(is_compute_op(Opcode::kPModAdd));
  EXPECT_FALSE(is_compute_op(Opcode::kMemCpy));
  EXPECT_FALSE(is_compute_op(Opcode::kMemCpyR));
}

TEST(Isa, DecodeRejectsGarbage) {
  EncodedInstr bad{};  // opcode 0
  EXPECT_THROW((void)decode(bad), std::invalid_argument);
  bad[0] = 0xFF;  // opcode out of range
  EXPECT_THROW((void)decode(bad), std::invalid_argument);
  bad[0] = 0x01 | (0xF << 8);  // bank 15 does not exist
  EXPECT_THROW((void)decode(bad), std::invalid_argument);
}

TEST(Isa, EncodeRejectsHugeOffsets) {
  Instr in;
  in.x.offset = 1u << 16;
  EXPECT_THROW((void)encode(in), std::invalid_argument);
}

}  // namespace
}  // namespace cofhee::chip
