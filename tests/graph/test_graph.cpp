// Graph layer unit tests: builder invariants, compiler leveling, typed
// rejection of malformed graphs (cycles, width mismatches, dangling
// references) -- every failure mode must throw its specific error type,
// never hang or produce a runnable program.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/executor.hpp"
#include "service/eval_service.hpp"

namespace cofhee::graph {
namespace {

bfv::Plaintext scalar(const bfv::BfvContext& ctx, std::uint64_t v) {
  bfv::Plaintext p;
  p.coeffs.assign(ctx.n(), 0);
  p.coeffs[0] = v % ctx.t();
  return p;
}

TEST(GraphBuilder, RejectsDanglingOperandsEagerly) {
  Graph g;
  const auto x = g.input();
  EXPECT_THROW((void)g.mul(x, 7), GraphInputError);
  EXPECT_THROW((void)g.relin(3), GraphInputError);
  EXPECT_THROW((void)g.add(9, x), GraphInputError);
  EXPECT_THROW(g.mark_output(5), GraphInputError);
  // The graph is still usable after rejected calls.
  const auto y = g.square_relin(x);
  g.mark_output(y);
  EXPECT_EQ(g.size(), 2u);
}

TEST(GraphCompile, LevelsADiamondIntoMinimalRounds) {
  // x -> {x^2, 2x} -> x^2 + 2x: the square is a chip op (round 0, result
  // in round 1), the plaintext double is host work in round 0, the add is
  // host work in round 1 after the chip result lands.
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), 3};
  Graph g;
  const auto x = g.input();
  const auto sq = g.square_relin(x);
  const auto dbl = g.mul_plain(x, scalar(scheme.context(), 2));
  const auto sum = g.add(sq, dbl);
  g.mark_output(sum);

  const auto cg = compile(g);
  ASSERT_EQ(cg.rounds.size(), 2u);
  ASSERT_EQ(cg.rounds[0].chip_ops.size(), 1u);
  EXPECT_EQ(cg.rounds[0].chip_ops[0].node, sq);
  EXPECT_TRUE(cg.rounds[0].chip_ops[0].square);
  EXPECT_EQ(cg.rounds[0].chip_ops[0].kind, service::RequestKind::kMultRelin);
  ASSERT_EQ(cg.rounds[0].host_ops.size(), 1u);
  EXPECT_EQ(cg.rounds[0].host_ops[0], dbl);
  ASSERT_EQ(cg.rounds[1].host_ops.size(), 1u);
  EXPECT_EQ(cg.rounds[1].host_ops[0], sum);
  EXPECT_TRUE(cg.rounds[1].chip_ops.empty());
  EXPECT_EQ(cg.chip_ops, 1u);
  EXPECT_EQ(cg.squares, 1u);
  EXPECT_EQ(cg.host_ops, 2u);
}

TEST(GraphCompile, IndependentMulsShareARound) {
  Graph g;
  const auto a = g.input();
  const auto b = g.input();
  const auto c = g.input();
  const auto ab = g.mul_relin(a, b);
  const auto bc = g.mul_relin(b, c);
  const auto out = g.mul_relin(ab, bc);
  g.mark_output(out);

  const auto cg = compile(g);
  ASSERT_EQ(cg.rounds.size(), 2u);
  EXPECT_EQ(cg.rounds[0].chip_ops.size(), 2u);  // ab and bc batch together
  EXPECT_EQ(cg.rounds[1].chip_ops.size(), 1u);
  EXPECT_EQ(cg.squares, 0u);
}

TEST(GraphCompile, SplitMulRelinLevelsAcrossTwoRounds) {
  // An explicit tensor + separate relin costs one extra round vs the fused
  // kind: the 3-element intermediate must come back before the key switch.
  Graph g;
  const auto a = g.input();
  const auto b = g.input();
  const auto t = g.mul(a, b);
  const auto r = g.relin(t);
  g.mark_output(r);
  const auto cg = compile(g);
  ASSERT_EQ(cg.rounds.size(), 2u);
  EXPECT_EQ(cg.rounds[0].chip_ops[0].kind, service::RequestKind::kEvalMult);
  EXPECT_EQ(cg.rounds[1].chip_ops[0].kind, service::RequestKind::kRelinearize);
  EXPECT_EQ(cg.width[t], 3u);
  EXPECT_EQ(cg.width[r], 2u);
}

TEST(GraphCompile, RejectsCyclesWithTypedError) {
  // add_raw can reference forward, closing a cycle the builder API cannot.
  Graph g;
  const auto x = g.input();
  Node n1{OpKind::kAdd, x, 2, {}};    // depends on node 2...
  Node n2{OpKind::kNegate, 1, 0, {}};  // ...which depends on node 1
  (void)g.add_raw(n1);
  (void)g.add_raw(n2);
  EXPECT_THROW((void)compile(g), GraphCycleError);
}

TEST(GraphCompile, RejectsSelfReferenceAsACycle) {
  Graph g;
  const auto x = g.input();
  (void)x;
  (void)g.add_raw({OpKind::kNegate, 1, 0, {}});  // node 1 consumes itself
  EXPECT_THROW((void)compile(g), GraphCycleError);
}

TEST(GraphCompile, RejectsWidthMismatchesWithTypedError) {
  {
    // Relinearizing a 2-element ciphertext.
    Graph g;
    const auto x = g.input();
    Node bad{OpKind::kRelin, x, 0, {}};
    (void)g.add_raw(bad);
    EXPECT_THROW((void)compile(g), GraphWidthError);
  }
  {
    // Multiplying a 3-element tensor without relinearizing first.
    Graph g;
    const auto x = g.input();
    const auto t = g.mul(x, x);
    (void)g.mul(t, x);
    EXPECT_THROW((void)compile(g), GraphWidthError);
  }
  {
    // Adding a tensor to a canonical ciphertext.
    Graph g;
    const auto x = g.input();
    const auto t = g.mul(x, x);
    (void)g.add(t, x);
    EXPECT_THROW((void)compile(g), GraphWidthError);
  }
}

TEST(GraphCompile, RejectsDanglingRawReferences) {
  Graph g;
  (void)g.input();
  (void)g.add_raw({OpKind::kNegate, 17, 0, {}});
  EXPECT_THROW((void)compile(g), GraphInputError);
}

TEST(GraphCompile, EveryGraphErrorIsAnInvalidArgument) {
  // Callers that don't care about the flavor can catch the family root.
  Graph g;
  (void)g.add_raw({OpKind::kNegate, 5, 0, {}});
  EXPECT_THROW((void)compile(g), GraphError);
  EXPECT_THROW((void)compile(g), std::invalid_argument);
}

TEST(GraphExecutorUnit, RejectsWrongInputCount) {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), 3};
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  Graph g;
  const auto x = g.input();
  const auto y = g.input();
  g.mark_output(g.add(x, y));
  const auto cg = compile(g);

  service::ChipFarm farm(1);
  service::EvalService svc(scheme, farm, {});
  GraphExecutor ex(scheme, svc);
  bfv::Plaintext p;
  p.coeffs.assign(scheme.context().n(), 0);
  const auto ct = scheme.encrypt(pk, p);
  EXPECT_THROW((void)ex.run(cg, {ct}), GraphInputError);
  EXPECT_THROW((void)ex.run(cg, {ct, ct, ct}), GraphInputError);
  EXPECT_THROW((void)evaluate_reference(scheme, g, {ct}), GraphInputError);
}

TEST(GraphExecutorUnit, ReferenceNeedsRelinKeysOnlyWhenUsed) {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), 3};
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  bfv::Plaintext p;
  p.coeffs.assign(scheme.context().n(), 0);
  p.coeffs[0] = 5;
  const auto ct = scheme.encrypt(pk, p);

  Graph needs_rk;
  const auto x = needs_rk.input();
  needs_rk.mark_output(needs_rk.square_relin(x));
  EXPECT_THROW((void)evaluate_reference(scheme, needs_rk, {ct}, nullptr), GraphInputError);

  Graph no_rk;
  const auto y = no_rk.input();
  no_rk.mark_output(no_rk.negate(y));
  EXPECT_NO_THROW((void)evaluate_reference(scheme, no_rk, {ct}, nullptr));
}

TEST(GraphCompile, EmptyAndOutputFreeGraphsAreValid) {
  Graph empty;
  const auto cg0 = compile(empty);
  EXPECT_TRUE(cg0.rounds.empty());
  EXPECT_TRUE(cg0.outputs.empty());

  Graph no_out;
  const auto x = no_out.input();
  (void)no_out.negate(x);
  const auto cg1 = compile(no_out);
  EXPECT_EQ(cg1.host_ops, 1u);
  EXPECT_TRUE(cg1.outputs.empty());
}

}  // namespace
}  // namespace cofhee::graph
