// Seeded random-DAG fuzz: programs of arbitrary depth and fan-out built
// from every OpKind, compiled and executed through the chip-farm service
// under both strategies, multiple pipeline depths, and homogeneous plus
// heterogeneous farms -- every run must be bit-exact against the serial
// pure-software reference evaluator.  Bit-exactness (tower equality, no
// decryption) means plaintext growth mod t is irrelevant, so the generator
// is free to compose ops without magnitude bookkeeping.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "graph/executor.hpp"
#include "service/eval_service.hpp"

namespace cofhee::graph {
namespace {

struct FuzzFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), /*seed=*/23};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
};

/// Random plaintext with a handful of nonzero coefficients.
bfv::Plaintext random_plain(std::mt19937_64& rng, const bfv::BfvContext& ctx) {
  bfv::Plaintext p;
  p.coeffs.assign(ctx.n(), 0);
  const std::size_t nz = 1 + rng() % 3;
  for (std::size_t i = 0; i < nz; ++i) p.coeffs[rng() % ctx.n()] = rng() % ctx.t();
  return p;
}

/// Grow a random program: tracks 2- and 3-element frontiers so every op is
/// width-legal, mixes chip and host ops, and leaves some tensor values
/// unrelinearized on purpose (width-3 adds/negates are legal host work).
Graph random_graph(std::mt19937_64& rng, const bfv::BfvContext& ctx, std::size_t inputs,
                   std::size_t ops) {
  Graph g;
  std::vector<NodeId> w2, w3;
  for (std::size_t i = 0; i < inputs; ++i) w2.push_back(g.input());
  const auto pick = [&](const std::vector<NodeId>& v) { return v[rng() % v.size()]; };

  for (std::size_t i = 0; i < ops; ++i) {
    const auto r = rng() % 100;
    if (!w3.empty() && r < 25) {
      w2.push_back(g.relin(pick(w3)));
    } else if (r < 45) {
      w2.push_back(g.mul_relin(pick(w2), pick(w2)));  // may square (a == b)
    } else if (r < 55) {
      w3.push_back(g.mul(pick(w2), pick(w2)));
    } else if (r < 62) {
      w2.push_back(g.square_relin(pick(w2)));
    } else if (r < 72) {
      if (!w3.empty() && (rng() & 1) != 0)
        w3.push_back(g.add(pick(w3), pick(w3)));
      else
        w2.push_back(g.add(pick(w2), pick(w2)));
    } else if (r < 80) {
      if (!w3.empty() && (rng() & 1) != 0)
        w3.push_back(g.negate(pick(w3)));
      else
        w2.push_back(g.negate(pick(w2)));
    } else if (r < 90) {
      w2.push_back(g.add_plain(pick(w2), random_plain(rng, ctx)));
    } else {
      w2.push_back(g.mul_plain(pick(w2), random_plain(rng, ctx)));
    }
  }
  // A random sample of the frontier as outputs, always at least one, with
  // one 3-element output when available (outputs need not be canonical).
  g.mark_output(w2.back());
  for (NodeId id : w2)
    if (rng() % 4 == 0) g.mark_output(id);
  if (!w3.empty()) g.mark_output(w3.back());
  return g;
}

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

TEST(GraphFuzz, RandomDagsAreBitExactAcrossTheConfigMatrix) {
  FuzzFixture f;
  // The 4-chip farm is heterogeneous: back half on UART bring-up links at
  // half clock, so load-aware placement actually skews the assignment.
  std::vector<service::ChipSpec> hetero(4);
  for (std::size_t i = 2; i < 4; ++i) {
    hetero[i].link = driver::Link::kUart;
    hetero[i].cfg.freq_mhz = 125.0;
  }

  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    std::mt19937_64 rng(seed);
    const std::size_t inputs = 2 + rng() % 3;
    const std::size_t ops = 12 + rng() % 14;
    const Graph g = random_graph(rng, f.scheme.context(), inputs, ops);
    const auto cg = compile(g);

    std::vector<bfv::Ciphertext> enc;
    for (std::size_t i = 0; i < inputs; ++i)
      enc.push_back(f.scheme.encrypt(f.pk, random_plain(rng, f.scheme.context())));
    const auto want = evaluate_reference(f.scheme, g, enc, &f.rk);
    ASSERT_FALSE(want.empty());

    for (auto strategy : {service::Strategy::kBatchPerChip, service::Strategy::kShardTowers}) {
      for (std::size_t depth : {1u, 2u, 4u}) {
        for (std::size_t chips : {1u, 2u, 4u}) {
          SCOPED_TRACE("seed=" + std::to_string(seed) + " ops=" + std::to_string(ops) +
                       " strategy=" + std::to_string(static_cast<int>(strategy)) +
                       " depth=" + std::to_string(depth) + " chips=" + std::to_string(chips));
          service::ChipFarm farm =
              chips == 4 ? service::ChipFarm(hetero) : service::ChipFarm(chips);
          service::ServiceOptions opts;
          opts.strategy = strategy;
          opts.relin_keys = &f.rk;
          opts.pipeline_depth = depth;
          service::EvalService svc(f.scheme, farm, opts);
          GraphExecutor ex(f.scheme, svc);
          const auto got = ex.run(cg, enc);
          ASSERT_EQ(got.size(), want.size());
          for (std::size_t i = 0; i < got.size(); ++i) expect_bit_exact(got[i], want[i]);
        }
      }
    }
  }
}

TEST(GraphFuzz, DeepChainStressesRoundCount) {
  // A serial squaring chain has no intra-round parallelism at all: every
  // op is its own round.  The executor must survive long round sequences
  // and stay bit-exact.
  FuzzFixture f;
  Graph g;
  auto x = g.input();
  constexpr std::size_t kDepth = 12;
  for (std::size_t i = 0; i < kDepth; ++i) x = g.square_relin(x);
  g.mark_output(x);
  const auto cg = compile(g);
  EXPECT_EQ(cg.rounds.size(), kDepth);
  EXPECT_EQ(cg.squares, kDepth);

  std::mt19937_64 rng(99);
  const std::vector<bfv::Ciphertext> enc = {
      f.scheme.encrypt(f.pk, random_plain(rng, f.scheme.context()))};
  const auto want = evaluate_reference(f.scheme, g, enc, &f.rk);

  service::ChipFarm farm(2);
  service::ServiceOptions opts;
  opts.relin_keys = &f.rk;
  service::EvalService svc(f.scheme, farm, opts);
  GraphExecutor ex(f.scheme, svc);
  GraphRunStats rs;
  const auto got = ex.run(cg, enc, {}, &rs);
  ASSERT_EQ(got.size(), 1u);
  expect_bit_exact(got[0], want[0]);
  EXPECT_EQ(rs.rounds, kDepth);
  EXPECT_EQ(rs.squares, kDepth);
  EXPECT_EQ(svc.stats().sram_reuses, 2 * kDepth * f.scheme.context().ext_basis().size());
}

TEST(GraphFuzz, WideFanOutBatchesIntoOneRound) {
  // Maximum fan-out: N independent squarings of one input all land in
  // round 0 and reach the farm as a single batch.
  FuzzFixture f;
  Graph g;
  const auto x = g.input();
  constexpr std::size_t kWidth = 16;
  for (std::size_t i = 0; i < kWidth; ++i) g.mark_output(g.square_relin(x));
  const auto cg = compile(g);
  ASSERT_EQ(cg.rounds.size(), 1u);
  EXPECT_EQ(cg.rounds[0].chip_ops.size(), kWidth);

  std::mt19937_64 rng(7);
  const std::vector<bfv::Ciphertext> enc = {
      f.scheme.encrypt(f.pk, random_plain(rng, f.scheme.context()))};
  const auto want = evaluate_reference(f.scheme, g, enc, &f.rk);

  service::ChipFarm farm(4);
  service::ServiceOptions opts;
  opts.relin_keys = &f.rk;
  service::EvalService svc(f.scheme, farm, opts);
  GraphExecutor ex(f.scheme, svc);
  const auto got = ex.run(cg, enc);
  ASSERT_EQ(got.size(), kWidth);
  for (std::size_t i = 0; i < kWidth; ++i) expect_bit_exact(got[i], want[i]);
}

}  // namespace
}  // namespace cofhee::graph
