// Graph-level chaos: ciphertext DAGs executed over a sick farm.  The
// executor's failure contract (fail fast on the first faulted round, free
// every intermediate, surface the originating typed error, submit nothing
// further) and the acceptance bar for the healing layer (a farm with one
// dead chip completes the full CryptoNets graph, with requeues > 0 and
// simulated throughput within 2x of the healthy (N-1)-chip reference) are
// pinned here.  Alarm-guarded: a wedged round kills the process rather
// than hanging CI; seeded cells print their fault-schedule seed.
#include "graph/executor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/cryptonets.hpp"
#include "chip/fault.hpp"
#include "service/eval_service.hpp"

namespace cofhee::graph {
namespace {

/// Never-hang guard (SIGALRM default action: terminate the process).
struct AlarmGuard {
  explicit AlarmGuard(unsigned seconds) { alarm(seconds); }
  ~AlarmGuard() { alarm(0); }
};

struct GraphFaultFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), 11};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);

  bfv::Ciphertext enc_scalar(std::int64_t v) {
    bfv::Plaintext p;
    p.coeffs.assign(scheme.context().n(), 0);
    const auto t = static_cast<std::int64_t>(scheme.context().t());
    std::int64_t r = v % t;
    if (r < 0) r += t;
    p.coeffs[0] = static_cast<nt::u64>(r);
    return scheme.encrypt(pk, p);
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

/// The standing CryptoNets program: inputs, compiled graph, and the
/// pure-software reference outputs.
struct CryptoNetsCase {
  apps::NetworkConfig cfg{6, 4, 2, 42};
  Graph g;
  CompiledGraph cg;
  std::vector<bfv::Ciphertext> enc_x;
  std::vector<bfv::Ciphertext> reference;

  explicit CryptoNetsCase(GraphFaultFixture& f) {
    apps::CryptoNet net(f.scheme.context(), cfg);
    const std::vector<std::int64_t> x = {1, -2, 3, 0, -1, 2};
    for (auto v : x) enc_x.push_back(f.enc_scalar(v));
    std::vector<NodeId> ins;
    for (std::size_t i = 0; i < cfg.inputs; ++i) ins.push_back(g.input());
    (void)net.build_graph(g, ins);
    cg = compile(g);
    reference = evaluate_reference(f.scheme, g, enc_x, &f.rk);
  }
};

TEST(GraphFaults, RunFailsFastWithTheOriginatingFault) {
  AlarmGuard guard(120);
  GraphFaultFixture f;
  // Chain of dependent squarings -> three chip rounds of one op each, so a
  // first-round fault has later rounds to (not) submit.
  Graph g;
  const auto x = g.input();
  const auto a = g.square_relin(x);
  const auto b = g.square_relin(a);
  g.mark_output(g.square_relin(b));
  const auto cg = compile(g);
  ASSERT_EQ(cg.chip_ops, 3u);

  // A lone chip that dies immediately, with quarantine disabled so every
  // retry and requeue exhausts against the same dead link: the error that
  // reaches the caller must be the originating ChipFaultError, not a
  // follow-on artifact, and no later round may have been submitted.
  std::vector<service::ChipSpec> specs(1);
  specs[0].faults.events.push_back({chip::FaultKind::kKillChip, 0, 1, 0});
  service::ChipFarm farm(specs);
  service::ServiceOptions opts;
  opts.relin_keys = &f.rk;
  opts.quarantine_after = 0;  // no quarantine: the fault itself must surface
  service::EvalService svc(f.scheme, farm, opts);
  GraphExecutor ex(f.scheme, svc);
  const std::vector<bfv::Ciphertext> in = {f.enc_scalar(3)};
  EXPECT_THROW((void)ex.run(cg, in), chip::ChipFaultError);
  // Fail-fast: only the first round's op was ever submitted, and the
  // service has fully settled it (nothing in flight, nothing queued).
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.queue_depth, 0u);
  // The service stays usable for later traffic on this (still sick) farm:
  // submissions settle with typed errors rather than wedging.
  auto fu = svc.submit({in[0], in[0], service::RequestKind::kEvalMult});
  EXPECT_THROW((void)fu.get(), chip::ChipFaultError);
}

TEST(GraphFaults, OneDeadChipFarmCompletesCryptoNetsWithinTwiceHealthy) {
  AlarmGuard guard(240);
  GraphFaultFixture f;
  CryptoNetsCase cn(f);

  // Reference: a healthy (N-1)-chip farm running the same graph.
  service::ServiceOptions base;
  base.relin_keys = &f.rk;
  double healthy_sim = 0;
  {
    service::ChipFarm healthy(2);
    service::EvalService svc(f.scheme, healthy, base);
    GraphExecutor ex(f.scheme, svc);
    const auto outs = ex.run(cn.cg, cn.enc_x);
    ASSERT_EQ(outs.size(), cn.reference.size());
    for (std::size_t i = 0; i < outs.size(); ++i)
      expect_bit_exact(outs[i], cn.reference[i]);
    svc.drain();
    healthy_sim = svc.stats().simulated_seconds();
    ASSERT_GT(healthy_sim, 0.0);
  }

  // Sick farm: 3 chips, chip 0 dead from its first transaction.  Stage
  // retries off so healing must requeue whole requests; one fault
  // quarantines the corpse.
  std::vector<service::ChipSpec> specs(3);
  specs[0].faults.events.push_back({chip::FaultKind::kKillChip, 0, 1, 0});
  service::ChipFarm farm(specs);
  auto opts = base;
  opts.max_stage_retries = 0;
  opts.quarantine_after = 1;
  service::EvalService svc(f.scheme, farm, opts);
  GraphExecutor ex(f.scheme, svc);
  const auto outs = ex.run(cn.cg, cn.enc_x);
  ASSERT_EQ(outs.size(), cn.reference.size());
  for (std::size_t i = 0; i < outs.size(); ++i)
    expect_bit_exact(outs[i], cn.reference[i]);
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.requeues, 0u);
  EXPECT_GE(st.quarantines, 1u);
  EXPECT_TRUE(st.per_chip[0].quarantined);
  // Acceptance bar: the sick farm's simulated makespan stays within 2x of
  // the healthy (N-1)-chip farm serving the same graph.
  EXPECT_LE(st.simulated_seconds(), 2.0 * healthy_sim)
      << "sick=" << st.simulated_seconds() << "s healthy=" << healthy_sim << "s";
}

TEST(GraphFaults, SeededGraphChaosSettlesEveryRun) {
  AlarmGuard guard(480);
  GraphFaultFixture f;
  CryptoNetsCase cn(f);
  // Random schedules over 2-chip farms x pipeline depths 1/2/4: every run
  // either reproduces the reference outputs bit-exactly or throws a typed
  // error; the executor never hangs and the service always drains clean.
  const std::uint64_t seeds[] = {3, 99, 20230615};
  for (std::size_t depth : {1u, 2u, 4u}) {
    for (std::uint64_t seed : seeds) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " fault_schedule_seed=" + std::to_string(seed));
      std::vector<service::ChipSpec> specs(2);
      for (std::size_t c = 0; c < specs.size(); ++c)
        specs[c].faults = chip::FaultSchedule::random(
            seed + c, /*op_horizon=*/2000, /*num_events=*/4,
            /*link_timeout_seconds=*/0.05);
      service::ChipFarm farm(specs);
      service::ServiceOptions opts;
      opts.relin_keys = &f.rk;
      opts.pipeline_depth = depth;
      opts.overlap_rounds = depth > 1;
      service::EvalService svc(f.scheme, farm, opts);
      GraphExecutor ex(f.scheme, svc);
      try {
        const auto outs = ex.run(cn.cg, cn.enc_x);
        ASSERT_EQ(outs.size(), cn.reference.size());
        for (std::size_t i = 0; i < outs.size(); ++i)
          expect_bit_exact(outs[i], cn.reference[i]);
      } catch (const chip::FaultError&) {
        // Typed and expected when the schedule defeats all healing.
      } catch (const service::FarmCapacityError&) {
        // Both chips quarantined/dead: also a typed, explained outcome.
      }
      svc.drain();
      const auto st = svc.stats();
      EXPECT_EQ(st.completed + st.failed, st.submitted);
    }
  }
}

}  // namespace
}  // namespace cofhee::graph
