// Front-door soak: many concurrent connections hammering one EvalServer
// with mixed tenants, priorities and batch sizes while one tenant runs
// deliberately over its rate limit.  Every request must settle exactly
// once -- as a bit-valid result or a typed rejection -- with no hangs, no
// lost replies and no data races (this suite rides the TSan CI lane), and
// the books must balance: client-side tallies equal the server's
// ServiceStats.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bfv/encoder.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/eval_service.hpp"

namespace cofhee::net {
namespace {

TEST(NetSoak, ConcurrentMixedTenantsSettleEveryRequest) {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/71};
  const bfv::SecretKey sk = scheme.keygen_secret();
  const bfv::PublicKey pk = scheme.keygen_public(sk);
  const bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  service::ChipFarm farm(2);
  service::ServiceOptions sopts;
  sopts.relin_keys = &rk;
  // Tenant 99 is throttled hard: at most 4 requests ever (vanishing
  // refill), everyone else is free.
  sopts.tenancy.per_tenant[99] =
      service::TenantLimits{/*rate_per_sec=*/1e-9, /*burst=*/4, /*max_pending=*/0};
  service::EvalService svc(scheme, farm, sopts);
  EvalServer server(svc);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 5;
  // Encrypt every request up front on this thread: Bfv::encrypt draws from
  // the scheme's shared RNG and is deliberately not thread-safe (the
  // header says sampling stays serial).  The threads below only submit,
  // decrypt (const) and decode.
  struct Planned {
    std::vector<service::EvalRequest> batch;
    std::int64_t expected;
  };
  std::vector<std::vector<Planned>> plans(kClients);
  for (int c = 0; c < kClients; ++c)
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const std::int64_t x = 2 + c, y = 3 + i;
      plans[c].push_back(
          {{{scheme.encrypt(pk, enc.encode(x)), scheme.encrypt(pk, enc.encode(y)),
             service::RequestKind::kMultRelin}},
           x * y});
    }
  std::atomic<std::uint64_t> ok_results{0};
  std::atomic<std::uint64_t> rate_rejections{0};
  std::atomic<std::uint64_t> wrong_answers{0};
  std::atomic<std::uint64_t> unexpected_errors{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        // Client c alternates tenants and priorities; clients 0 and 1
        // drive the throttled tenant 99.
        const bool throttled = c < 2;
        service::SubmitOptions so;
        so.tenant = throttled ? 99 : static_cast<std::uint64_t>(c);
        so.priority = static_cast<service::Priority>(c % 3);
        so.weight = 1 + static_cast<std::uint32_t>(c % 4);
        EvalClient cli("127.0.0.1", server.port());
        cli.hello(so);
        for (const Planned& plan : plans[c]) {
          try {
            const auto results = cli.submit_batch(plan.batch);
            for (const auto& item : results) {
              if (!item.ok) {
                unexpected_errors.fetch_add(1);
              } else if (enc.decode(scheme.decrypt(sk, item.value)) != plan.expected) {
                wrong_answers.fetch_add(1);
              } else {
                ok_results.fetch_add(1);
              }
            }
          } catch (const RejectError& e) {
            if (e.code() == RejectCode::kRateLimited && throttled)
              rate_rejections.fetch_add(1);
            else
              unexpected_errors.fetch_add(1);
          }
        }
        cli.bye();
      } catch (const std::exception&) {
        unexpected_errors.fetch_add(kRequestsPerClient);
      }
    });
  }
  for (auto& t : clients) t.join();
  svc.drain();

  // The books balance: every request settled exactly once and the
  // throttled tenant saw exactly its burst admitted.
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_EQ(unexpected_errors.load(), 0u);
  EXPECT_EQ(ok_results.load() + rate_rejections.load(),
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  // Tenant 99: 2 clients x 5 requests against a burst of 4.
  EXPECT_EQ(rate_rejections.load(), 6u);

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, ok_results.load());
  EXPECT_EQ(st.rejected_rate_limited, rate_rejections.load());
  EXPECT_EQ(st.failed, 0u);

  server.stop();  // joins every session thread -> counters are final
  const NetServerStats ns = server.stats();
  EXPECT_EQ(ns.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(ns.rejects_sent, rate_rejections.load());
  EXPECT_EQ(ns.connections_active, 0u);
}

}  // namespace
}  // namespace cofhee::net
