// Front-door end-to-end battery (net/server.hpp + net/client.hpp): a real
// loopback TCP round trip -- encrypt, submit over the wire with
// tenant/priority tags, decrypt bit-exact against the in-process service
// path -- plus the failure-mode contract: a rate-limited tenant gets a
// typed kReject on a connection that STAYS OPEN, version mismatches are
// negotiated not dropped, framing damage is rejected, the HTTP metrics
// endpoint serves Prometheus text whose per-tenant counters match
// ServiceStats, and the connection limit produces polite kServerBusy
// backpressure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bfv/encoder.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket_util.hpp"
#include "net/wire.hpp"
#include "service/eval_service.hpp"

namespace cofhee::net {
namespace {

struct NetFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/61};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};

  service::EvalRequest mult_relin(std::int64_t x, std::int64_t y) {
    return {scheme.encrypt(pk, enc.encode(x)), scheme.encrypt(pk, enc.encode(y)),
            service::RequestKind::kMultRelin};
  }

  std::int64_t decrypt_int(const bfv::Ciphertext& ct) {
    return enc.decode(scheme.decrypt(sk, ct));
  }
};

TEST(NetServer, EndToEndSubmitDecryptsBitExact) {
  NetFixture f;
  service::ChipFarm farm(2);
  service::ServiceOptions sopts;
  sopts.relin_keys = &f.rk;
  service::EvalService svc(f.scheme, farm, sopts);
  EvalServer server(svc);
  ASSERT_GT(server.port(), 0);

  EvalClient cli("127.0.0.1", server.port());
  cli.hello({service::Priority::kHigh, /*tenant=*/3, /*weight=*/2});

  // A CryptoNets-style round: a batch of mult+relin products submitted
  // over TCP under the session's tenant/priority.
  std::vector<service::EvalRequest> reqs;
  std::vector<std::int64_t> expected;
  for (std::int64_t i = 1; i <= 6; ++i) {
    reqs.push_back(f.mult_relin(i, i + 1));
    expected.push_back(i * (i + 1));
  }
  const auto results = cli.submit_batch(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].message;
    EXPECT_EQ(results[i].value.size(), 2u);  // relinearized
    EXPECT_EQ(f.decrypt_int(results[i].value), expected[i]);
  }
  // The wire result is bit-identical to the in-process path on the SAME
  // ciphertext inputs (encryption is randomized; evaluation is not).
  const bfv::Ciphertext local =
      svc.submit(reqs[0], {service::Priority::kHigh, 3, 2}).get();
  ASSERT_EQ(results[0].value.c.size(), local.c.size());
  for (std::size_t e = 0; e < local.c.size(); ++e)
    EXPECT_EQ(results[0].value.c[e].towers, local.c[e].towers);

  // Session defaults stuck: the submit carried no explicit options, so
  // the service accounted it under tenant 3.
  bool saw_tenant3 = false;
  for (const auto& tn : svc.stats().per_tenant)
    if (tn.tenant == 3 && tn.submitted >= reqs.size()) saw_tenant3 = true;
  EXPECT_TRUE(saw_tenant3);

  cli.bye();
  server.stop();
}

TEST(NetServer, RateLimitedTenantGetsTypedRejectAndConnectionSurvives) {
  NetFixture f;
  service::ChipFarm farm(1);
  service::ServiceOptions sopts;
  // Tenant 9: a burst of 2 and a vanishing refill rate -- the third
  // request is deterministically over the limit.
  sopts.tenancy.per_tenant[9] =
      service::TenantLimits{/*rate_per_sec=*/1e-9, /*burst=*/2, /*max_pending=*/0};
  service::EvalService svc(f.scheme, farm, sopts);
  EvalServer server(svc);

  EvalClient cli("127.0.0.1", server.port());
  cli.hello({service::Priority::kNormal, /*tenant=*/9, /*weight=*/1});

  const std::vector<service::EvalRequest> one{
      {f.scheme.encrypt(f.pk, f.enc.encode(3)), f.scheme.encrypt(f.pk, f.enc.encode(4)),
       service::RequestKind::kEvalMult}};
  EXPECT_TRUE(cli.submit_batch(one)[0].ok);
  EXPECT_TRUE(cli.submit_batch(one)[0].ok);
  // Over the limit: a typed, catchable rejection with a retry hint...
  try {
    (void)cli.submit_batch(one);
    FAIL() << "expected RejectError";
  } catch (const RejectError& e) {
    EXPECT_EQ(e.code(), RejectCode::kRateLimited);
    EXPECT_GT(e.retry_after_seconds(), 0.0);
  }
  // ...and the SAME connection keeps working: another tenant's traffic
  // (explicit per-submit options override the session default).
  const auto ok =
      cli.submit_batch(one, {service::Priority::kNormal, /*tenant=*/2, /*weight=*/1});
  EXPECT_TRUE(ok[0].ok);
  EXPECT_EQ(svc.stats().rejected_rate_limited, 1u);
  cli.bye();
}

TEST(NetServer, MetricsEndpointMatchesServiceStats) {
  NetFixture f;
  service::ChipFarm farm(1);
  service::ServiceOptions sopts;
  sopts.tenancy.per_tenant[9] =
      service::TenantLimits{/*rate_per_sec=*/1e-9, /*burst=*/1, /*max_pending=*/0};
  service::EvalService svc(f.scheme, farm, sopts);
  EvalServer server(svc);

  EvalClient cli("127.0.0.1", server.port());
  cli.hello({service::Priority::kNormal, /*tenant=*/9, /*weight=*/1});
  const std::vector<service::EvalRequest> one{
      {f.scheme.encrypt(f.pk, f.enc.encode(2)), f.scheme.encrypt(f.pk, f.enc.encode(5)),
       service::RequestKind::kEvalMult}};
  EXPECT_TRUE(cli.submit_batch(one)[0].ok);
  EXPECT_THROW((void)cli.submit_batch(one), RejectError);
  svc.drain();

  // Both transports serve the same exposition: the wire kStatsRequest and
  // a plain HTTP GET against the same port.
  const std::string via_wire = cli.stats_text();
  const std::string via_http = http_get_metrics("127.0.0.1", server.port());
  for (const std::string& text : {via_wire, via_http}) {
    EXPECT_NE(text.find("cofhee_service_requests_completed_total 1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("cofhee_service_rejected_rate_limited_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("cofhee_tenant_rejected_total{tenant=\"9\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("cofhee_tenant_submitted_total{tenant=\"9\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("cofhee_net_connections_total"), std::string::npos);
  }
  cli.bye();
}

TEST(NetServer, VersionMismatchIsANegotiationNotADrop) {
  NetFixture f;
  service::ChipFarm farm(1);
  service::EvalService svc(f.scheme, farm);
  EvalServer server(svc);

  // Hand-rolled hello claiming a future version: the server answers with
  // kReject{kVersionUnsupported} and keeps the connection; a corrected
  // hello on the same socket then succeeds.
  HelloFrame h;
  h.version = 99;
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  send_frame(fd.get(), FrameKind::kHello, encode_hello(h), /*version=*/99);
  FrameHeader hdr;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(fd.get(), &hdr, &payload));
  ASSERT_EQ(hdr.kind, FrameKind::kReject);
  EXPECT_EQ(decode_reject(payload).code, RejectCode::kVersionUnsupported);
  // Same socket, correct version: accepted.
  h.version = kWireVersion;
  send_frame(fd.get(), FrameKind::kHello, encode_hello(h));
  ASSERT_TRUE(read_frame(fd.get(), &hdr, &payload));
  EXPECT_EQ(hdr.kind, FrameKind::kHelloAck);
}

TEST(NetServer, FramingDamageCostsTheConnection) {
  NetFixture f;
  service::ChipFarm farm(1);
  service::EvalService svc(f.scheme, farm);
  EvalServer server(svc);

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  // Garbage that is neither "GET " nor a CFHE magic: one reject, then EOF.
  const std::uint8_t junk[16] = {0xDE, 0xAD, 0xBE, 0xEF};
  write_all(fd.get(), junk, sizeof(junk));
  FrameHeader hdr;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(fd.get(), &hdr, &payload));
  EXPECT_EQ(hdr.kind, FrameKind::kReject);
  EXPECT_EQ(decode_reject(payload).code, RejectCode::kBadFrame);
  std::uint8_t byte;
  EXPECT_FALSE(read_exact(fd.get(), &byte, 1));  // server hung up
  EXPECT_GE(server.stats().bad_frames, 1u);
}

TEST(NetServer, ConnectionLimitIsPoliteBackpressure) {
  NetFixture f;
  service::ChipFarm farm(1);
  service::EvalService svc(f.scheme, farm);
  ServerOptions nopts;
  nopts.max_connections = 1;
  EvalServer server(svc, nopts);

  EvalClient first("127.0.0.1", server.port());
  first.hello();
  // The second connection is told why, with a frame, before the close.
  try {
    EvalClient second("127.0.0.1", server.port());
    second.hello();
    FAIL() << "expected RejectError (server busy)";
  } catch (const RejectError& e) {
    EXPECT_EQ(e.code(), RejectCode::kServerBusy);
  } catch (const SocketError&) {
    // Accept-thread timing may close before our hello is read; the reject
    // frame was still sent.  Tolerated: the stats below pin the behavior.
  }
  EXPECT_GE(server.stats().connections_busy_rejected, 1u);
  first.bye();
}

}  // namespace
}  // namespace cofhee::net
