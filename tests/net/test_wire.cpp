// Wire-protocol codec battery (net/wire.hpp): header integrity (magic,
// CRC, flags, bounds), symmetric round-trips for every payload codec, and
// the adversarial cases -- truncation at every byte, corruption at every
// byte, hostile length prefixes -- which must all surface as typed
// WireErrors, never as a crash, hang or unbounded allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "bfv/bfv.hpp"
#include "net/wire.hpp"

namespace cofhee::net {
namespace {

poly::RnsPoly make_poly(std::mt19937_64& rng, std::size_t towers, std::size_t n) {
  poly::RnsPoly p;
  p.towers.resize(towers);
  for (auto& tw : p.towers) {
    tw.resize(n);
    for (auto& c : tw) c = rng();
  }
  return p;
}

bfv::Ciphertext make_ct(std::mt19937_64& rng, std::size_t elems, std::size_t towers,
                        std::size_t n) {
  bfv::Ciphertext ct;
  for (std::size_t i = 0; i < elems; ++i) ct.c.push_back(make_poly(rng, towers, n));
  return ct;
}

void expect_equal(const poly::RnsPoly& a, const poly::RnsPoly& b) {
  ASSERT_EQ(a.towers.size(), b.towers.size());
  for (std::size_t t = 0; t < a.towers.size(); ++t) EXPECT_EQ(a.towers[t], b.towers[t]);
}

void expect_equal(const bfv::Ciphertext& a, const bfv::Ciphertext& b) {
  ASSERT_EQ(a.c.size(), b.c.size());
  for (std::size_t i = 0; i < a.c.size(); ++i) expect_equal(a.c[i], b.c[i]);
}

TEST(WireHeader, RoundTripsAndChecksCrc) {
  FrameHeader hdr;
  hdr.kind = FrameKind::kSubmit;
  hdr.payload_len = 12345;
  std::uint8_t raw[kHeaderSize];
  encode_header(hdr, raw);
  const FrameHeader back = decode_header(raw);
  EXPECT_EQ(back.version, kWireVersion);
  EXPECT_EQ(back.kind, FrameKind::kSubmit);
  EXPECT_EQ(back.flags, 0);
  EXPECT_EQ(back.payload_len, 12345u);

  // Every single-byte corruption of the protected region is caught: the
  // magic, version, kind, flags and length are all under the CRC.
  for (std::size_t i = 0; i < kHeaderSize; ++i) {
    std::uint8_t bad[kHeaderSize];
    std::copy(raw, raw + kHeaderSize, bad);
    bad[i] ^= 0x40;
    try {
      const FrameHeader h = decode_header(bad);
      // Flipping a version bit is CRC-protected, so reaching here means
      // the corrupt byte produced a *valid* header -- impossible for a
      // single-bit flip against CRC-32.
      FAIL() << "byte " << i << " corruption passed (version "
             << static_cast<int>(h.version) << ")";
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), RejectCode::kBadFrame);
    }
  }
}

TEST(WireHeader, CrcMatchesTheKnownIeeeVector) {
  // The classic check string: CRC-32("123456789") == 0xCBF43926 for the
  // IEEE 802.3 polynomial, so captures are verifiable with standard tools.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32_ieee(check, sizeof(check)), 0xCBF43926u);
}

TEST(WireHeader, OversizedPayloadLengthIsRejected) {
  FrameHeader hdr;
  hdr.payload_len = kMaxPayloadBytes + 1;
  std::uint8_t raw[kHeaderSize];
  encode_header(hdr, raw);  // encoder is trusting; the decoder is not
  EXPECT_THROW((void)decode_header(raw), WireError);
}

TEST(WireCodec, RnsPolyAndCiphertextRoundTrip) {
  std::mt19937_64 rng(7);
  const bfv::Ciphertext ct = make_ct(rng, 3, 2, 64);
  Writer w;
  put_ciphertext(w, ct);
  Reader r(w.bytes());
  const bfv::Ciphertext back = get_ciphertext(r);
  r.expect_end();
  expect_equal(ct, back);
}

TEST(WireCodec, RelinKeysRoundTripSeededAndExpanded) {
  std::mt19937_64 rng(11);
  for (const bool seeded : {false, true}) {
    bfv::RelinKeys keys;
    keys.digit_bits = 16;
    for (int d = 0; d < 3; ++d)
      keys.keys.emplace_back(make_poly(rng, 2, 32), make_poly(rng, 2, 32));
    if (seeded) keys.a_seeds = {101, 202, 303};
    Writer w;
    put_relin_keys(w, keys);
    Reader r(w.bytes());
    const bfv::RelinKeys back = get_relin_keys(r);
    r.expect_end();
    EXPECT_EQ(back.digit_bits, keys.digit_bits);
    ASSERT_EQ(back.keys.size(), keys.keys.size());
    for (std::size_t d = 0; d < keys.keys.size(); ++d) {
      expect_equal(keys.keys[d].first, back.keys[d].first);
      expect_equal(keys.keys[d].second, back.keys[d].second);
    }
    EXPECT_EQ(back.seeded(), seeded);
    EXPECT_EQ(back.a_seeds, keys.a_seeds);
  }
}

TEST(WireCodec, SubmitFrameRoundTrip) {
  std::mt19937_64 rng(13);
  SubmitFrame sf;
  sf.options.priority = service::Priority::kHigh;
  sf.options.tenant = 42;
  sf.options.weight = 9;
  for (int i = 0; i < 3; ++i) {
    service::EvalRequest req;
    req.kind = service::RequestKind::kMultRelin;
    req.square = (i == 2);
    req.a = make_ct(rng, 2, 2, 32);
    if (!req.square) req.b = make_ct(rng, 2, 2, 32);
    sf.requests.push_back(std::move(req));
  }
  const auto payload = encode_submit(sf);
  const SubmitFrame back = decode_submit(payload);
  EXPECT_EQ(back.options.priority, sf.options.priority);
  EXPECT_EQ(back.options.tenant, sf.options.tenant);
  EXPECT_EQ(back.options.weight, sf.options.weight);
  ASSERT_EQ(back.requests.size(), sf.requests.size());
  for (std::size_t i = 0; i < sf.requests.size(); ++i) {
    EXPECT_EQ(back.requests[i].kind, sf.requests[i].kind);
    EXPECT_EQ(back.requests[i].square, sf.requests[i].square);
    expect_equal(sf.requests[i].a, back.requests[i].a);
    expect_equal(sf.requests[i].b, back.requests[i].b);
  }
}

TEST(WireCodec, RejectAndResultAndHelloRoundTrip) {
  RejectFrame rj;
  rj.code = RejectCode::kRateLimited;
  rj.retry_after_seconds = 1.25;
  rj.message = "tenant 7 over its rate limit";
  const RejectFrame rj2 = decode_reject(encode_reject(rj));
  EXPECT_EQ(rj2.code, rj.code);
  EXPECT_DOUBLE_EQ(rj2.retry_after_seconds, 1.25);  // millisecond grid
  EXPECT_EQ(rj2.message, rj.message);

  std::mt19937_64 rng(17);
  std::vector<ResultItem> items(2);
  items[0].ok = true;
  items[0].value = make_ct(rng, 2, 2, 32);
  items[1].ok = false;
  items[1].code = RejectCode::kInternal;
  items[1].message = "chip fault";
  const auto back = decode_result_batch(encode_result_batch(items));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].ok);
  expect_equal(items[0].value, back[0].value);
  EXPECT_FALSE(back[1].ok);
  EXPECT_EQ(back[1].code, RejectCode::kInternal);
  EXPECT_EQ(back[1].message, "chip fault");

  HelloFrame h;
  h.defaults.tenant = 5;
  h.defaults.priority = service::Priority::kLow;
  const HelloFrame h2 = decode_hello(encode_hello(h));
  EXPECT_EQ(h2.version, kWireVersion);
  EXPECT_EQ(h2.defaults.tenant, 5u);
  EXPECT_EQ(h2.defaults.priority, service::Priority::kLow);
}

TEST(WireCodec, TruncationAtEveryByteIsATypedError) {
  std::mt19937_64 rng(19);
  SubmitFrame sf;
  sf.requests.push_back({make_ct(rng, 2, 2, 16), make_ct(rng, 2, 2, 16),
                         service::RequestKind::kEvalMult});
  const auto payload = encode_submit(sf);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> shorter(payload.begin(), payload.begin() + cut);
    EXPECT_THROW((void)decode_submit(shorter), WireError) << "cut at " << cut;
  }
  // And trailing garbage is equally fatal -- layout disagreement must not
  // pass silently.
  auto longer = payload;
  longer.push_back(0);
  EXPECT_THROW((void)decode_submit(longer), WireError);
}

TEST(WireCodec, HostileLengthPrefixesCannotDriveAllocation) {
  // A tiny payload claiming astronomical counts: every bound is enforced
  // before any allocation sized by the wire value.
  {
    Writer w;
    w.u8(static_cast<std::uint8_t>(kMaxCiphertextElems + 1));  // elems
    Reader r(w.bytes());
    EXPECT_THROW((void)get_ciphertext(r), WireError);
  }
  {
    Writer w;
    w.u16(static_cast<std::uint16_t>(kMaxTowers + 1));  // towers
    Reader r(w.bytes());
    EXPECT_THROW((void)get_rns_poly(r), WireError);
  }
  {
    Writer w;
    w.u16(1);                                            // one tower
    w.u32(static_cast<std::uint32_t>(kMaxDegree + 1));   // absurd degree
    Reader r(w.bytes());
    EXPECT_THROW((void)get_rns_poly(r), WireError);
  }
  {
    Writer w;
    put_submit_options(w, {});
    w.u32(static_cast<std::uint32_t>(kMaxBatch + 1));    // batch count
    const auto wire = w.take();
    EXPECT_THROW((void)decode_submit(wire), WireError);
  }
}

TEST(WireCodec, ByteCorruptionFuzzNeverCrashes) {
  // Flip bytes all over a valid submit payload: each decode either
  // round-trips to *something* or throws a WireError -- no crash, no
  // uncaught type, no runaway allocation.
  std::mt19937_64 rng(23);
  SubmitFrame sf;
  sf.options.tenant = 3;
  sf.requests.push_back({make_ct(rng, 2, 2, 32), make_ct(rng, 2, 2, 32),
                         service::RequestKind::kEvalMult});
  const auto payload = encode_submit(sf);
  std::mt19937_64 fuzz(29);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = payload;
    const std::size_t flips = 1 + fuzz() % 4;
    for (std::size_t f = 0; f < flips; ++f)
      mutated[fuzz() % mutated.size()] ^= static_cast<std::uint8_t>(1 + fuzz() % 255);
    try {
      (void)decode_submit(mutated);
    } catch (const WireError&) {
      // expected for most mutations
    }
  }
}

TEST(WireFrame, WholeFrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = encode_frame(FrameKind::kStatsReply, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());
  const FrameHeader hdr = decode_header(frame.data());
  EXPECT_EQ(hdr.kind, FrameKind::kStatsReply);
  EXPECT_EQ(hdr.payload_len, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), frame.begin() + kHeaderSize));
}

}  // namespace
}  // namespace cofhee::net
