#include "adpll/adpll.hpp"

#include <gtest/gtest.h>

namespace cofhee::adpll {
namespace {

TEST(Dco, MonotoneInCoarseCode) {
  Dco dco;
  double prev = -1;
  for (unsigned c = 0; c < (1u << Dco::kCoarseBits); c += 4) {
    const double f = dco.freq_mhz(c, Dco::kFineSteps / 2);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Dco, MonotoneInFineCode) {
  Dco dco;
  double prev = -1;
  for (unsigned f = 0; f <= Dco::kFineSteps; ++f) {
    const double v = dco.freq_mhz(64, f);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Dco, FineSegmentOverlapsCoarseLsb) {
  // Segmented decoding requirement: the fine range must exceed one coarse
  // LSB so the SAR's terminal bin is always reachable (Section V-E's
  // "avoid potential discontinuities and glitches").
  Dco dco;
  const double coarse_lsb = dco.freq_mhz(65, Dco::kFineSteps / 2) -
                            dco.freq_mhz(64, Dco::kFineSteps / 2);
  const double fine_range =
      dco.freq_mhz(64, Dco::kFineSteps) - dco.freq_mhz(64, 0);
  EXPECT_GT(fine_range, coarse_lsb);
}

TEST(Adpll, LocksToChipFrequency) {
  // 250 MHz from a 25 MHz reference: the CoFHEE operating point.
  Adpll pll;
  const auto r = pll.lock(10);
  EXPECT_TRUE(r.locked);
  EXPECT_NEAR(r.locked_freq_mhz, 250.0, 250.0 * 0.004);  // within ~2 fine LSBs
  EXPECT_EQ(r.sar_steps, Dco::kCoarseBits);
  EXPECT_GT(r.bang_bang_steps, 0u);
  EXPECT_LT(r.lock_time_us, 200.0);
}

TEST(Adpll, WideTuningRange) {
  Adpll pll;
  const auto [lo, hi] = pll.tuning_range_mhz();
  EXPECT_LT(lo, 60.0);
  EXPECT_GT(hi, 600.0);
  // "Wide range of operation is essential to run the chip at different
  // frequencies": lock across the range.
  for (unsigned mult : {4u, 8u, 10u, 16u, 24u}) {  // 100..600 MHz
    const auto r = pll.lock(mult);
    EXPECT_TRUE(r.locked) << mult * 25 << " MHz";
    EXPECT_NEAR(r.locked_freq_mhz, mult * 25.0, mult * 25.0 * 0.01) << mult;
  }
}

TEST(Adpll, FailsGracefullyOutsideRange) {
  Adpll pll;
  const auto r = pll.lock(40);  // 1 GHz, beyond the DCO
  EXPECT_FALSE(r.locked);
}

TEST(Adpll, FllHandsOverInsideCaptureRange) {
  // After the SAR pass the frequency error must be within the fine loop's
  // correction authority (the architectural contract between the loops).
  Adpll pll;
  const auto r = pll.lock(10, 8);  // stop right after the SAR (7 steps)
  const Dco dco;
  const double coarse_lsb = (dco.f_max_mhz() - dco.f_min_mhz()) / 127.0;
  EXPECT_LT(std::abs(r.freq_trace_mhz[Dco::kCoarseBits - 1] - 250.0),
            2.0 * coarse_lsb);
}

TEST(Adpll, LimitCycleJitterIsSmall) {
  Adpll pll;
  const auto r = pll.lock(10);
  ASSERT_TRUE(r.locked);
  // Bang-bang limit cycle bounded by one fine LSB (< 0.2% here).
  EXPECT_LT(r.jitter_limit_cycle_ppm, 5000.0);
}

TEST(Adpll, SiliconFigures) {
  EXPECT_DOUBLE_EQ(Adpll::kActiveAreaMm2, 0.05);
  EXPECT_DOUBLE_EQ(Adpll::kPowerUw, 350.0);
  EXPECT_DOUBLE_EQ(Adpll::kSupplyV, 1.1);
}

}  // namespace
}  // namespace cofhee::adpll
