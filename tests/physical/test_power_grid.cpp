// Power-delivery network checks (paper Section V-B).
#include "physical/power_grid.hpp"

#include <gtest/gtest.h>

namespace cofhee::physical {
namespace {

struct GridFixture {
  Floorplanner fp;
  FloorplanResult plan = fp.plan();
  PowerGrid grid;
  PowerGridResult r = grid.analyze(plan);
};

TEST(PowerGrid, StrapPitchesMatchPaper) {
  // BA/BB at 30 um, M4/M5 at 50 um over a 3400 x 3582 um core.
  GridFixture f;
  EXPECT_EQ(f.r.top_straps_x, static_cast<unsigned>(3400 / 30));
  EXPECT_EQ(f.r.top_straps_y, static_cast<unsigned>(3582 / 30));
  EXPECT_EQ(f.r.mid_straps_x, static_cast<unsigned>(3400 / 50));
  EXPECT_EQ(f.r.mid_straps_y, static_cast<unsigned>(3582 / 50));
}

TEST(PowerGrid, EveryMacroChannelIsPowered) {
  // The paper: "the flow was modified to ensure that every such channel is
  // delivered power and ground sufficiently."
  GridFixture f;
  EXPECT_GT(f.r.macro_channels_total, 0u);
  EXPECT_EQ(f.r.macro_channels_covered, f.r.macro_channels_total);
}

TEST(PowerGrid, IrDropWithinBudget) {
  // At the 30.4 mW Table V peak the drop must stay well under the usual
  // 5% supply budget -- the chip runs at 1.08 V worst-case corner, so the
  // grid cannot eat more than ~60 mV.
  GridFixture f;
  EXPECT_GT(f.r.worst_ir_drop_mv, 0.0);
  EXPECT_LT(f.r.ir_drop_pct, 5.0);
  EXPECT_GT(f.r.effective_resistance_mohm, 0.0);
}

TEST(PowerGrid, DropScalesWithPowerAndPitch) {
  GridFixture f;
  PowerGridSpec hungry;
  hungry.peak_power_mw = 304.0;  // 10x the load
  const auto r10 = PowerGrid(hungry).analyze(f.plan);
  EXPECT_NEAR(r10.worst_ir_drop_mv / f.r.worst_ir_drop_mv, 10.0, 0.01);

  PowerGridSpec sparse;
  sparse.top_strap_pitch_um = 60.0;  // half the straps
  sparse.mid_strap_pitch_um = 100.0;
  const auto rs = PowerGrid(sparse).analyze(f.plan);
  EXPECT_GT(rs.worst_ir_drop_mv, f.r.worst_ir_drop_mv);
}

}  // namespace
}  // namespace cofhee::physical
