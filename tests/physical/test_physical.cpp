#include <gtest/gtest.h>

#include "physical/area_model.hpp"
#include "physical/cts_model.hpp"
#include "physical/floorplan.hpp"
#include "physical/pnr_model.hpp"
#include "physical/via_model.hpp"

namespace cofhee::physical {
namespace {

TEST(AreaModel, MemoriesMatchTableViii) {
  AreaModel am;
  double dp = 0, sp = 0, cm0 = 0;
  for (const auto& b : am.blocks()) {
    if (b.name == "3 DP SRAMs") dp = b.area_mm2;
    if (b.name == "4 SP SRAMs") sp = b.area_mm2;
    if (b.name == "CM0 SRAM") cm0 = b.area_mm2;
  }
  EXPECT_NEAR(dp, 5.3506, 0.05);
  EXPECT_NEAR(sp, 3.2036, 0.05);
  EXPECT_NEAR(cm0, 0.4062, 0.02);
}

TEST(AreaModel, LogicBlocksMatchTableViii) {
  const struct {
    const char* name;
    double paper;
  } rows[] = {{"PE", 0.6394},  {"AHB", 0.0747}, {"GPCFG", 0.0534},
              {"ARM CM0", 0.0354}, {"MDMC", 0.0273}, {"SPI", 0.0202},
              {"DMA", 0.0075}, {"UART", 0.0065}, {"GPIO", 0.0035}};
  AreaModel am;
  const auto blocks = am.blocks();
  for (const auto& row : rows) {
    bool found = false;
    for (const auto& b : blocks) {
      if (b.name == row.name) {
        EXPECT_NEAR(b.area_mm2, row.paper, row.paper * 0.02) << row.name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << row.name;
  }
}

TEST(AreaModel, TotalNearPaperContent) {
  AreaModel am;
  EXPECT_NEAR(am.total_mm2(), 9.8345, 0.15);
  EXPECT_NEAR(am.pe_area_mm2(), 0.6394, 0.02);
}

TEST(AreaModel, PeIsLargestLogicBlock) {
  // Section III-K: "Other than memory, the largest design is the PE,
  // followed by the AHB and configuration registers."
  AreaModel am;
  double pe = 0, ahb = 0, gpcfg = 0, others_max = 0;
  for (const auto& b : am.blocks()) {
    if (b.name.find("SRAM") != std::string::npos) continue;
    if (b.name == "PE") {
      pe = b.area_mm2;
    } else if (b.name == "AHB") {
      ahb = b.area_mm2;
    } else if (b.name == "GPCFG") {
      gpcfg = b.area_mm2;
    } else {
      others_max = std::max(others_max, b.area_mm2);
    }
  }
  EXPECT_GT(pe, ahb);
  EXPECT_GT(ahb, gpcfg);
  EXPECT_GT(gpcfg, others_max);
}

TEST(Floorplan, LegalPacking) {
  Floorplanner fp;
  const auto r = fp.plan();
  EXPECT_EQ(r.macro_count, 68u);  // Section V-A: 68 memory instances
  // All macros inside the core, no overlaps.
  for (std::size_t i = 0; i < r.macros.size(); ++i) {
    const auto& a = r.macros[i].rect;
    EXPECT_GE(a.x, 0.0);
    EXPECT_GE(a.y, 0.0);
    EXPECT_LE(a.x + a.w, r.core_w_um + 1e-6);
    EXPECT_LE(a.y + a.h, r.core_h_um + 1e-6);
    for (std::size_t j = i + 1; j < r.macros.size(); ++j)
      EXPECT_FALSE(a.overlaps(r.macros[j].rect)) << i << " vs " << j;
  }
}

TEST(Floorplan, TableIvParameters) {
  Floorplanner fp;
  const auto r = fp.plan();
  EXPECT_EQ(r.die_w_um, 3660);
  EXPECT_EQ(r.die_h_um, 3842);
  EXPECT_NEAR(r.core_w_um, 3400, 1);
  EXPECT_NEAR(r.core_h_um, 3582, 1);
  EXPECT_NEAR(r.aspect_ratio, 1.05, 0.01);
  // Macro area ~8.94 mm^2, std cells ~1.96 mm^2, IU ~45%.
  EXPECT_NEAR(r.macro_area_um2 * 1e-6, 8.941959, 0.45);
  EXPECT_NEAR(r.stdcell_area_um2 * 1e-6, 1.963585, 0.35);
  EXPECT_NEAR(r.initial_utilization, 0.89, 0.05);  // (macro+cells)/core
  EXPECT_EQ(r.signal_pads, 26u);
  EXPECT_EQ(r.pg_pads, 11u);
  EXPECT_EQ(r.pll_bias_pads, 8u);
}

TEST(Cts, TableIxQor) {
  Floorplanner fp;
  CtsModel cts;
  const auto r = cts.synthesize(fp.plan());
  EXPECT_EQ(r.sinks, 18413u);
  EXPECT_NEAR(r.buffers, 464.0, 120.0);
  EXPECT_NEAR(r.levels, 26.0, 6.0);
  EXPECT_NEAR(r.skew_ps, 240.0, 90.0);
  EXPECT_NEAR(r.max_insertion_ns, 2.079, 0.6);
  EXPECT_GT(r.max_insertion_ns, r.min_insertion_ns);
}

TEST(Cts, DeterministicForSeed) {
  Floorplanner fp;
  const auto plan = fp.plan();
  // Same seed -> bit-identical QoR (balancing quantizes delays, so distinct
  // seeds may legitimately coincide; only reproducibility is contractual).
  CtsModel a({}, 7), b({}, 7);
  const auto ra = a.synthesize(plan);
  const auto rb = b.synthesize(plan);
  EXPECT_EQ(ra.max_insertion_ns, rb.max_insertion_ns);
  EXPECT_EQ(ra.skew_ps, rb.skew_ps);
  EXPECT_EQ(ra.buffers, rb.buffers);
}

TEST(Pnr, TableIiiProgression) {
  Floorplanner fp;
  PnrModel pnr;
  const auto stages = pnr.run(fp.plan());
  ASSERT_EQ(stages.size(), 4u);
  // Cell counts only grow through the flow.
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_GE(stages[i].std_cells, stages[i - 1].std_cells);
    EXPECT_GE(stages[i].buffer_inverter_cells, stages[i - 1].buffer_inverter_cells);
  }
  // Sequential count is invariant (no retiming).
  for (const auto& s : stages) EXPECT_EQ(s.sequential_cells, 18686u);
  // Table III anchors (within a few percent).
  EXPECT_NEAR(static_cast<double>(stages[0].std_cells), 225797, 225797 * 0.01);
  EXPECT_NEAR(static_cast<double>(stages[3].std_cells), 379921, 379921 * 0.03);
  EXPECT_NEAR(stages[0].utilization, 0.45, 0.03);
  EXPECT_NEAR(stages[3].utilization, 0.59, 0.04);
  // VT migration: HVT 100% -> ~13.4%.
  EXPECT_DOUBLE_EQ(stages[0].hvt_fraction, 1.0);
  EXPECT_NEAR(stages[3].hvt_fraction, 0.134, 0.01);
  EXPECT_NEAR(stages[3].lvt_fraction, 0.746, 0.01);
}

TEST(Via, TableViiConversionRates) {
  ViaModel vm;
  const auto stats = vm.run();
  ASSERT_EQ(stats.size(), 6u);
  const struct {
    const char* layer;
    double paper_pct;
  } rows[] = {{"V1", 98.70}, {"V2", 99.49}, {"V3", 99.80},
              {"V4", 99.76}, {"WT", 99.51}, {"WA", 99.78}};
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].layer, rows[i].layer);
    EXPECT_NEAR(stats[i].percent(), rows[i].paper_pct, 0.25) << rows[i].layer;
    EXPECT_LE(stats[i].multi_cut, stats[i].total);
  }
}

TEST(Via, DeterministicForSeed) {
  ViaModel a(3), b(3);
  const auto ra = a.run(), rb = b.run();
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_EQ(ra[i].multi_cut, rb[i].multi_cut);
}

}  // namespace
}  // namespace cofhee::physical
