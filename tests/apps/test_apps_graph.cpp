// End-to-end application differentials: CryptoNets inference and logistic
// scoring expressed as graphs and executed through the chip-farm service
// must be bit-exact -- every tower of every component -- against both the
// serial software implementations in src/apps/ and the pure-software graph
// reference evaluator, and must decode to the plaintext references.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/cryptonets.hpp"
#include "apps/logreg.hpp"
#include "graph/executor.hpp"
#include "service/eval_service.hpp"

namespace cofhee::apps {
namespace {

struct GraphAppFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), 11};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);

  bfv::Ciphertext enc_scalar(std::int64_t v) {
    bfv::Plaintext p;
    p.coeffs.assign(scheme.context().n(), 0);
    const auto t = static_cast<std::int64_t>(scheme.context().t());
    std::int64_t r = v % t;
    if (r < 0) r += t;
    p.coeffs[0] = static_cast<nt::u64>(r);
    return scheme.encrypt(pk, p);
  }
};

void expect_bit_exact(const bfv::Ciphertext& got, const bfv::Ciphertext& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.c[i].towers, want.c[i].towers) << "component " << i;
}

TEST(AppsGraph, CryptoNetsThroughTheFarmIsBitExact) {
  GraphAppFixture f;
  const NetworkConfig cfg{6, 4, 2, 42};
  CryptoNet net(f.scheme.context(), cfg);
  const std::vector<std::int64_t> x = {1, -2, 3, 0, -1, 2};
  std::vector<bfv::Ciphertext> enc_x;
  for (auto v : x) enc_x.push_back(f.enc_scalar(v));

  // Serial software path (the existing implementation).
  const auto serial = net.infer_encrypted(f.scheme, f.pk, f.rk, enc_x);

  // Graph path: build -> compile -> run through a 2-chip farm.
  graph::Graph g;
  std::vector<graph::NodeId> ins;
  for (std::size_t i = 0; i < cfg.inputs; ++i) ins.push_back(g.input());
  const auto logits = net.build_graph(g, ins);
  ASSERT_EQ(logits.size(), cfg.outputs);
  const auto cg = graph::compile(g);
  // One chip op per hidden square activation, all flagged as squarings.
  EXPECT_EQ(cg.chip_ops, cfg.hidden);
  EXPECT_EQ(cg.squares, cfg.hidden);

  service::ChipFarm farm(2);
  service::ServiceOptions opts;
  opts.relin_keys = &f.rk;
  service::EvalService svc(f.scheme, farm, opts);
  graph::GraphExecutor ex(f.scheme, svc);
  graph::GraphRunStats rs;
  const auto outs = ex.run(cg, enc_x, {}, &rs);

  ASSERT_EQ(outs.size(), serial.size());
  for (std::size_t i = 0; i < outs.size(); ++i) expect_bit_exact(outs[i], serial[i]);

  // ...and against the pure-software graph reference and the plain network.
  const auto ref = graph::evaluate_reference(f.scheme, g, enc_x, &f.rk);
  ASSERT_EQ(ref.size(), outs.size());
  const auto plain = net.infer_plain(x);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    expect_bit_exact(outs[i], ref[i]);
    EXPECT_EQ(decode_logit(f.scheme, f.sk, outs[i]), plain[i]) << "logit " << i;
  }

  // The squares traveled with the SRAM scratch-reuse hint: every one shows
  // up in the executor stats and in the service's reuse counter.
  EXPECT_EQ(rs.squares, cfg.hidden);
  EXPECT_EQ(rs.chip_requests, cfg.hidden);
  EXPECT_GT(svc.stats().sram_reuses, 0u);
}

TEST(AppsGraph, LogRegScoreAndSigmoidThroughTheFarmAreBitExact) {
  GraphAppFixture f;
  const std::vector<std::int64_t> w = {3, -2, 5, 1};
  const std::int64_t bias = -4;
  LogisticModel model(f.scheme.context(), w, bias);
  const std::vector<std::int64_t> x = {2, 1, -1, 3};
  std::vector<bfv::Ciphertext> enc_x;
  for (auto v : x) enc_x.push_back(f.enc_scalar(v));

  // Serial software path.
  const auto serial_score = model.score_encrypted(f.scheme, enc_x);
  const auto serial_sig = model.sigmoid_encrypted(f.scheme, f.rk, serial_score);

  // Graph path: score and sigmoid in one program, both marked as outputs.
  graph::Graph g;
  std::vector<graph::NodeId> ins;
  for (std::size_t i = 0; i < w.size(); ++i) ins.push_back(g.input());
  const auto score = model.build_score_graph(g, ins);
  const auto sig = model.build_sigmoid_graph(g, score);
  g.mark_output(score);
  g.mark_output(sig);
  const auto cg = graph::compile(g);
  EXPECT_EQ(cg.chip_ops, 2u);   // z^2 and z * (3 - z^2)
  EXPECT_EQ(cg.squares, 1u);    // only z^2 squares
  EXPECT_EQ(cg.rounds.size(), 2u);

  service::ChipFarm farm(1);
  service::ServiceOptions opts;
  opts.relin_keys = &f.rk;
  service::EvalService svc(f.scheme, farm, opts);
  graph::GraphExecutor ex(f.scheme, svc);
  const auto outs = ex.run(cg, enc_x);

  ASSERT_EQ(outs.size(), 2u);
  expect_bit_exact(outs[0], serial_score);
  expect_bit_exact(outs[1], serial_sig);

  const auto ref = graph::evaluate_reference(f.scheme, g, enc_x, &f.rk);
  expect_bit_exact(outs[0], ref[0]);
  expect_bit_exact(outs[1], ref[1]);

  // Decoded values match the plaintext model.
  const auto z = model.score_plain(x);
  EXPECT_EQ(decode_logit(f.scheme, f.sk, outs[0]), z);
  EXPECT_EQ(decode_logit(f.scheme, f.sk, outs[1]), model.sigmoid_plain(z));
}

TEST(AppsGraph, GraphAndSerialAgreeAcrossStrategiesAndFarms) {
  // The full differential matrix at application scale: both strategies,
  // pipeline depths, and farm sizes produce the serial software logits.
  GraphAppFixture f;
  const NetworkConfig cfg{4, 3, 2, 7};
  CryptoNet net(f.scheme.context(), cfg);
  const std::vector<std::int64_t> x = {-3, 1, 2, -1};
  std::vector<bfv::Ciphertext> enc_x;
  for (auto v : x) enc_x.push_back(f.enc_scalar(v));
  const auto serial = net.infer_encrypted(f.scheme, f.pk, f.rk, enc_x);

  graph::Graph g;
  std::vector<graph::NodeId> ins;
  for (std::size_t i = 0; i < cfg.inputs; ++i) ins.push_back(g.input());
  (void)net.build_graph(g, ins);
  const auto cg = graph::compile(g);

  for (auto strategy : {service::Strategy::kBatchPerChip, service::Strategy::kShardTowers}) {
    for (std::size_t chips : {1u, 4u}) {
      for (std::size_t depth : {1u, 4u}) {
        SCOPED_TRACE("strategy=" + std::to_string(static_cast<int>(strategy)) +
                     " chips=" + std::to_string(chips) + " depth=" + std::to_string(depth));
        service::ChipFarm farm(chips);
        service::ServiceOptions opts;
        opts.strategy = strategy;
        opts.relin_keys = &f.rk;
        opts.pipeline_depth = depth;
        service::EvalService svc(f.scheme, farm, opts);
        graph::GraphExecutor ex(f.scheme, svc);
        const auto outs = ex.run(cg, enc_x);
        ASSERT_EQ(outs.size(), serial.size());
        for (std::size_t i = 0; i < outs.size(); ++i) expect_bit_exact(outs[i], serial[i]);
      }
    }
  }
}

}  // namespace
}  // namespace cofhee::apps
