#include <gtest/gtest.h>

#include "apps/cost_model.hpp"
#include "apps/cryptonets.hpp"
#include "apps/logreg.hpp"

namespace cofhee::apps {
namespace {

TEST(CostModel, WorkloadsMatchPaperCounts) {
  const auto cn = cryptonets_workload();
  EXPECT_EQ(cn.ct_ct_adds, 457550u);
  EXPECT_EQ(cn.ct_pt_muls, 449000u);
  EXPECT_EQ(cn.ct_ct_muls, 10200u);
  const auto lr = logreg_workload();
  EXPECT_EQ(lr.ct_ct_adds, 168298u);
  EXPECT_EQ(lr.ct_pt_muls, 49500u);
  EXPECT_EQ(lr.ct_ct_muls, 128700u);
}

TEST(CostModel, CtCtMatchesChipSimulation) {
  // The closed-form ctct cost must agree with the Fig. 6 chip simulation:
  // 0.84 ms at (n = 2^12, 1 tower).
  const auto c = chip_op_costs(1u << 12, 1, 16, 109);
  EXPECT_NEAR(c.ctct_ms, 0.84, 0.01);
  const auto c2 = chip_op_costs(1u << 13, 2, 16, 218);
  EXPECT_NEAR(c2.ctct_ms, 3.58, 0.03);
}

TEST(CostModel, TableXSameOrderAndDirection) {
  // With the NTT-residency discipline and digit width in the plausible
  // range, both applications land in the paper's ballpark and CoFHEE beats
  // the CPU (Table X direction: 2.23x and 1.46x).
  const auto cn = cryptonets_workload();
  const auto lr = logreg_workload();
  const auto costs = chip_op_costs(1u << 12, 1, 8, 109);
  const double cn_s = estimate_seconds(cn, costs);
  const double lr_s = estimate_seconds(lr, costs);
  EXPECT_GT(cn_s, 20.0);
  EXPECT_LT(cn_s, 200.0);
  EXPECT_LT(cn_s, cn.paper_cpu_seconds);  // CoFHEE faster than CPU
  EXPECT_GT(lr_s, 100.0);
  EXPECT_LT(lr_s, 700.0);
  EXPECT_LT(lr_s, lr.paper_cpu_seconds);
}

struct AppFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(32), 11};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);

  bfv::Ciphertext enc_scalar(std::int64_t v) {
    bfv::Plaintext p;
    p.coeffs.assign(scheme.context().n(), 0);
    const auto t = static_cast<std::int64_t>(scheme.context().t());
    std::int64_t r = v % t;
    if (r < 0) r += t;
    p.coeffs[0] = static_cast<nt::u64>(r);
    return scheme.encrypt(pk, p);
  }
};

TEST(CryptoNets, EncryptedInferenceMatchesPlaintext) {
  AppFixture f;
  NetworkConfig cfg;
  cfg.inputs = 6;
  cfg.hidden = 4;
  cfg.outputs = 3;
  CryptoNet net(f.scheme.context(), cfg);

  std::vector<std::int64_t> x{3, -1, 2, 0, 1, -2};
  const auto expect = net.infer_plain(x);

  std::vector<bfv::Ciphertext> enc;
  enc.reserve(x.size());
  for (auto v : x) enc.push_back(f.enc_scalar(v));
  CryptoNet::OpTally tally;
  const auto out = net.infer_encrypted(f.scheme, f.pk, f.rk, enc, &tally);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(decode_logit(f.scheme, f.sk, out[i]), expect[i]) << "logit " << i;

  // Operation mix matches the Table X inventory structure.
  EXPECT_EQ(tally.ct_pt_muls, cfg.hidden * cfg.inputs + cfg.outputs * cfg.hidden);
  EXPECT_EQ(tally.ct_ct_muls, cfg.hidden);  // one square per hidden unit
  EXPECT_EQ(tally.relins, tally.ct_ct_muls);
}

TEST(LogReg, EncryptedScoreMatchesPlaintext) {
  AppFixture f;
  LogisticModel model(f.scheme.context(), {2, -3, 1, 4}, -5);
  std::vector<std::int64_t> x{1, 2, 3, -1};
  const auto z = model.score_plain(x);
  EXPECT_EQ(z, 2 - 6 + 3 - 4 - 5);

  std::vector<bfv::Ciphertext> enc;
  for (auto v : x) enc.push_back(f.enc_scalar(v));
  const auto cz = model.score_encrypted(f.scheme, enc);
  EXPECT_EQ(decode_logit(f.scheme, f.sk, cz), z);
}

TEST(LogReg, EncryptedSigmoidPreservesSign) {
  AppFixture f;
  LogisticModel model(f.scheme.context(), {1}, 0);
  for (std::int64_t v : {-1, 1}) {
    const auto cz = model.score_encrypted(f.scheme, {f.enc_scalar(v)});
    const auto cs = model.sigmoid_encrypted(f.scheme, f.rk, cz);
    const auto s = decode_logit(f.scheme, f.sk, cs);
    EXPECT_EQ(s, model.sigmoid_plain(v));
    EXPECT_EQ(s > 0, v > 0) << v;
  }
}

}  // namespace
}  // namespace cofhee::apps
