// obs::MetricsRegistry unit battery: histogram bucket exactness against a
// sorted reference, lock-free concurrency, the Prometheus text exposition
// shape, and the ServiceStats -> registry export mapping.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/service_export.hpp"
#include "service/request_queue.hpp"
#include "service/service_stats.hpp"

namespace cofhee::obs {
namespace {

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketCountsMatchSortedReference) {
  // Deterministic sample set spanning below, on and above every bound;
  // the histogram's raw per-bucket counts must equal what brute-force
  // classification of the sorted samples yields.
  const std::vector<double> bounds = {0.001, 0.01, 0.1, 1.0, 10.0};
  Histogram h(bounds);
  std::mt19937_64 rng(20230907);
  std::uniform_real_distribution<double> mag(-4.0, 2.0);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(std::pow(10.0, mag(rng)));
  for (double b : bounds) samples.push_back(b);  // exactly-on-bound samples
  double sum = 0;
  for (double v : samples) {
    h.observe(v);
    sum += v;
  }

  std::vector<std::uint64_t> want(bounds.size() + 1, 0);
  for (double v : samples) {
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i]) ++i;  // le: inclusive upper
    ++want[i];
  }
  for (std::size_t i = 0; i <= bounds.size(); ++i)
    EXPECT_EQ(h.bucket_count(i), want[i]) << "bucket " << i;
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_NEAR(h.sum(), sum, 1e-9 * std::abs(sum));
}

TEST(Histogram, ConcurrentObservesLoseNothing) {
  Histogram h({1.0, 2.0, 3.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>((t + i) % 4) + 0.5);
    });
  for (auto& th : ts) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= 3; ++i) total += h.bucket_count(i);
  EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("cofhee_x_total", "x");
  EXPECT_THROW(reg.gauge("cofhee_x_total", "x"), std::logic_error);
  EXPECT_THROW(reg.histogram("cofhee_x_total", "x", {1.0}), std::logic_error);
}

TEST(MetricsRegistry, InstrumentsAreStableAndLabeled) {
  MetricsRegistry reg;
  Counter& a = reg.counter("cofhee_ops_total", "ops", {{"chip", "0"}});
  Counter& b = reg.counter("cofhee_ops_total", "ops", {{"chip", "1"}});
  Counter& a2 = reg.counter("cofhee_ops_total", "ops", {{"chip", "0"}});
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  a.add(2);
  b.inc();
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(MetricsRegistry, RenderEmitsPrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("cofhee_requests_total", "Requests accepted.").set(42);
  reg.gauge("cofhee_queue_depth", "Queue depth.").set(3);
  Histogram& h = reg.histogram("cofhee_latency_seconds", "Latency.",
                               {0.1, 1.0}, {{"class", "normal"}});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.render_text();

  EXPECT_NE(text.find("# HELP cofhee_requests_total Requests accepted.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cofhee_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("cofhee_requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cofhee_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cofhee_latency_seconds histogram\n"),
            std::string::npos);
  // Buckets are CUMULATIVE in the exposition and close with +Inf == count.
  EXPECT_NE(text.find("cofhee_latency_seconds_bucket{class=\"normal\",le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cofhee_latency_seconds_bucket{class=\"normal\",le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("cofhee_latency_seconds_bucket{class=\"normal\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("cofhee_latency_seconds_count{class=\"normal\"} 3"),
            std::string::npos);
  // Families render sorted by name: latency < queue_depth < requests.
  EXPECT_LT(text.find("cofhee_latency_seconds"), text.find("cofhee_queue_depth"));
  EXPECT_LT(text.find("cofhee_queue_depth"), text.find("cofhee_requests_total"));
}

TEST(ServiceExport, MapsStatsOntoRegistry) {
  service::ServiceStats st;
  st.submitted = 7;
  st.completed = 6;
  st.failed = 1;
  st.io_seconds = 1.25;
  st.compute_seconds = 0.5;
  st.queue_depth = 2;
  st.per_chip.resize(2);
  st.per_chip[0].ewma_unit_cost = 0.125;
  st.per_chip[1].quarantined = true;
  st.per_chip[1].faults = 3;
  st.per_class.resize(service::kNumPriorities);
  st.per_class[0].submitted = 4;  // high
  st.per_class[0].queued = 2;
  st.per_tenant.push_back({});
  st.per_tenant[0].tenant = 9;
  st.per_tenant[0].weight = 2;
  st.per_tenant[0].submitted = 7;

  MetricsRegistry reg;
  export_service_stats(st, reg);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("cofhee_service_requests_submitted_total 7"),
            std::string::npos);
  EXPECT_NE(text.find("cofhee_service_io_seconds_total 1.25"), std::string::npos);
  EXPECT_NE(text.find("cofhee_chip_ewma_unit_cost_seconds{chip=\"0\"} 0.125"),
            std::string::npos);
  EXPECT_NE(text.find("cofhee_chip_quarantined{chip=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cofhee_chip_faults_total{chip=\"1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("cofhee_class_submitted_total{class=\"high\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("cofhee_class_queue_depth{class=\"high\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cofhee_tenant_weight{tenant=\"9\"} 2"), std::string::npos);

  // Re-export after the counters moved: set() semantics overwrite, so the
  // registry tracks the latest snapshot instead of double counting.
  st.submitted = 9;
  export_service_stats(st, reg);
  const std::string text2 = reg.render_text();
  EXPECT_NE(text2.find("cofhee_service_requests_submitted_total 9"),
            std::string::npos);
  EXPECT_EQ(text2.find("cofhee_service_requests_submitted_total 7"),
            std::string::npos);
}

}  // namespace
}  // namespace cofhee::obs
