// obs::TraceRecorder battery: span/instant recording, simulated-axis
// cursor semantics, deterministic sim timelines under seeded multi-thread
// service traffic, JSON export shape, and the disabled-tracing
// differential (tracing must never change results; with COFHEE_TRACING=0
// the recorder must record nothing and export an empty trace).
#include "obs/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bfv/encoder.hpp"
#include "service/eval_service.hpp"

namespace cofhee::obs {
namespace {

struct AlarmGuard {
  explicit AlarmGuard(unsigned seconds) { alarm(seconds); }
  ~AlarmGuard() { alarm(0); }
};

TEST(TraceRecorder, WallSpansAndInstantsAreCounted) {
  TraceRecorder rec;
  {
    auto s = rec.span_wall("outer", "test", {{"k", 1.0}});
    auto inner = rec.span_wall("inner", "test");
    rec.instant_wall("tick", "test");
  }
  if (!TraceRecorder::enabled()) {
    EXPECT_EQ(rec.event_count(), 0u);
    return;
  }
  EXPECT_EQ(rec.event_count(), 3u);
  EXPECT_EQ(rec.count_events("test"), 3u);
  EXPECT_EQ(rec.count_events("test", "outer"), 1u);
  EXPECT_EQ(rec.count_events("test", "tick"), 1u);
  EXPECT_EQ(rec.count_events("absent"), 0u);
}

TEST(TraceRecorder, SimCursorAppendsAndAggregates) {
  TraceRecorder rec;
  const auto track = TraceRecorder::sim_track_chip_phase(0);
  rec.span_sim(track, "configure_tower", "phase", 0.25);
  rec.span_sim(track, "execute_tower", "phase", 0.5);
  rec.span_sim(TraceRecorder::sim_track_chip_phase(1), "execute_tower", "phase",
               0.125);
  rec.span_sim(TraceRecorder::sim_track_chip_link(0), "link.write", "link", 2.0);
  if (!TraceRecorder::enabled()) {
    EXPECT_DOUBLE_EQ(rec.sim_category_seconds("phase"), 0.0);
    return;
  }
  EXPECT_DOUBLE_EQ(rec.sim_category_seconds("phase"), 0.875);
  EXPECT_DOUBLE_EQ(rec.sim_category_seconds("link"), 2.0);
  const auto breakdown = rec.sim_phase_breakdown("phase");
  EXPECT_DOUBLE_EQ(breakdown.at("configure_tower"), 0.25);
  EXPECT_DOUBLE_EQ(breakdown.at("execute_tower"), 0.625);
}

TEST(TraceRecorder, ConcurrentRecordingLosesNothing) {
  AlarmGuard guard(60);
  TraceRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto s = rec.span_wall("work", "mt", {{"t", static_cast<double>(t)}});
        rec.span_sim(TraceRecorder::sim_track_chip_phase(t), "tick", "mt_sim",
                     0.001);
      }
    });
  for (auto& th : ts) th.join();
  if (!TraceRecorder::enabled()) return;
  EXPECT_EQ(rec.count_events("mt", "work"),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.count_events("mt_sim", "tick"),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_NEAR(rec.sim_category_seconds("mt_sim"), kThreads * kPerThread * 0.001,
              1e-6);
}

TEST(TraceRecorder, JsonExportShape) {
  TraceRecorder rec;
  rec.span_sim(TraceRecorder::sim_track_chip_phase(0), "execute_tower", "phase",
               0.5, {{"io_s", 0.1}});
  rec.instant_sim(TraceRecorder::sim_track_chip_link(0), "fault.kill", "fault");
  rec.async_begin(1, "request", "request");
  rec.async_end(1, "request", "request");
  std::ostringstream os;
  rec.write_json(os);
  const std::string j = os.str();
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(j.find('\0'), std::string::npos);
  if (!TraceRecorder::enabled()) {
    EXPECT_EQ(j, "{\"traceEvents\":[]}\n");
    return;
  }
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"chip0.phases\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"chip0.link\""), std::string::npos);
}

/// Seeded service traffic shared by the determinism and differential
/// cases: 8 kMultRelin requests over a 2-chip farm, pipelined.
struct TrafficFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/17};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};
  std::vector<service::EvalRequest> requests;

  TrafficFixture() {
    for (std::int64_t i = 0; i < 8; ++i)
      requests.push_back({scheme.encrypt(pk, enc.encode(i - 3)),
                          scheme.encrypt(pk, enc.encode(2 * i + 1)),
                          service::RequestKind::kMultRelin});
  }

  /// Run all requests through a fresh 2-chip service; returns the results.
  std::vector<bfv::Ciphertext> run(TraceRecorder* trace) {
    service::ChipFarm farm(2);
    service::ServiceOptions opts;
    opts.relin_keys = &rk;
    opts.max_batch = 3;
    opts.trace = trace;
    service::EvalService svc(scheme, farm, opts);
    auto futs = svc.submit_batch(requests);
    std::vector<bfv::Ciphertext> out;
    for (auto& f : futs) out.push_back(f.get());
    svc.drain();
    return out;
  }
};

TEST(TraceRecorder, SimTimelineIsDeterministicAcrossRuns) {
  AlarmGuard guard(300);
  TrafficFixture f;
  TraceRecorder a, b;
  (void)f.run(&a);
  (void)f.run(&b);
  if (!TraceRecorder::enabled()) return;
  // The simulated axis is a pure function of the workload: identical phase
  // breakdowns, identical category totals, identical span counts -- even
  // though wall-clock interleaving differs between runs.
  EXPECT_EQ(a.count_events("phase"), b.count_events("phase"));
  EXPECT_EQ(a.count_events("link"), b.count_events("link"));
  EXPECT_EQ(a.count_events("model"), b.count_events("model"));
  EXPECT_DOUBLE_EQ(a.sim_category_seconds("phase"), b.sim_category_seconds("phase"));
  EXPECT_DOUBLE_EQ(a.sim_category_seconds("link"), b.sim_category_seconds("link"));
  const auto ba = a.sim_phase_breakdown(), bb = b.sim_phase_breakdown();
  EXPECT_EQ(ba.size(), bb.size());
  for (const auto& [name, secs] : ba) {
    ASSERT_TRUE(bb.count(name)) << name;
    EXPECT_DOUBLE_EQ(secs, bb.at(name)) << name;
  }
}

TEST(TraceRecorder, SpanTaxonomyShowsUpUnderTraffic) {
  AlarmGuard guard(300);
  TrafficFixture f;
  TraceRecorder rec;
  (void)f.run(&rec);
  if (!TraceRecorder::enabled()) return;
  // One async begin/end pair per request.
  EXPECT_EQ(rec.count_events("request"), 2 * f.requests.size());
  // Every round records prepare, chip stage, finish and placement spans.
  EXPECT_GT(rec.count_events("round", "round.prepare"), 0u);
  EXPECT_GT(rec.count_events("round", "round.chip_stage"), 0u);
  EXPECT_GT(rec.count_events("round", "round.finish"), 0u);
  EXPECT_GT(rec.count_events("round", "placement"), 0u);
  EXPECT_GT(rec.count_events("round", "stage"), 0u);
  // The per-tower phase spans and the pipeline-model spans exist.
  EXPECT_GT(rec.count_events("phase"), 0u);
  EXPECT_GT(rec.count_events("link"), 0u);
  EXPECT_GT(rec.count_events("model", "model.prep"), 0u);
  EXPECT_GT(rec.count_events("model", "model.finish"), 0u);
  // A clean run heals nothing and faults nothing.
  EXPECT_EQ(rec.count_events("heal"), 0u);
  EXPECT_EQ(rec.count_events("fault"), 0u);
}

TEST(TraceRecorder, TracingNeverChangesResults) {
  AlarmGuard guard(300);
  TrafficFixture f;
  TraceRecorder rec;
  const auto traced = f.run(&rec);
  const auto bare = f.run(nullptr);
  ASSERT_EQ(traced.size(), bare.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    ASSERT_EQ(traced[i].size(), bare[i].size()) << "request " << i;
    for (std::size_t c = 0; c < traced[i].size(); ++c)
      EXPECT_EQ(traced[i].c[c].towers, bare[i].c[c].towers)
          << "request " << i << " component " << c;
  }
  // With tracing compiled out the recorder must have stayed empty; with it
  // compiled in, the traced run must actually have recorded something.
  if (TraceRecorder::enabled())
    EXPECT_GT(rec.event_count(), 0u);
  else
    EXPECT_EQ(rec.event_count(), 0u);
}

}  // namespace
}  // namespace cofhee::obs
