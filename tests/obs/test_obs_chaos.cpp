// Trace/stats reconciliation under the chaos battery: every fault the
// injectors fire lands as exactly one trace instant, every healing action
// (retry, requeue, quarantine, probe, readmission, stage timeout) matches
// its ServiceStats counter, and the per-tower phase spans account for
// exactly the io + compute seconds the stats recorded -- even when phases
// die mid-flight.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "bfv/encoder.hpp"
#include "chip/fault.hpp"
#include "obs/trace.hpp"
#include "service/errors.hpp"
#include "service/eval_service.hpp"

namespace cofhee::obs {
namespace {

struct AlarmGuard {
  explicit AlarmGuard(unsigned seconds) { alarm(seconds); }
  ~AlarmGuard() { alarm(0); }
};

struct ChaosFixture {
  bfv::Bfv scheme{bfv::BfvParams::test_tiny(64), /*seed=*/17};
  bfv::SecretKey sk = scheme.keygen_secret();
  bfv::PublicKey pk = scheme.keygen_public(sk);
  bfv::RelinKeys rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc{scheme.context()};
  std::vector<service::EvalRequest> requests;

  ChaosFixture() {
    const std::int64_t plains[][2] = {{0, 1},  {1, 1},    {-1, 7},
                                      {2, 3},  {255, -128}, {-181, 181}};
    for (const auto& p : plains)
      requests.push_back({scheme.encrypt(pk, enc.encode(p[0])),
                          scheme.encrypt(pk, enc.encode(p[1])),
                          service::RequestKind::kMultRelin});
  }
};

/// Drain every future; faults surface as typed errors, both outcomes OK.
void settle(std::vector<std::future<bfv::Ciphertext>>& futs) {
  for (auto& f : futs) {
    try {
      (void)f.get();
    } catch (const chip::FaultError&) {
    } catch (const service::FarmCapacityError&) {
    }
  }
}

/// Every trace-vs-stats identity that must hold for ANY fault schedule.
void expect_trace_reconciles(const TraceRecorder& rec,
                             const service::ServiceStats& st) {
  if (!TraceRecorder::enabled()) {
    EXPECT_EQ(rec.event_count(), 0u);
    return;
  }
  // One instant per injected fault (kills counted once; dead-chip
  // rejections after the kill are not re-fired).
  EXPECT_EQ(rec.count_events("fault"), st.faults_injected);
  // One healing instant per healing counter tick.
  EXPECT_EQ(rec.count_events("heal", "retry"), st.retries);
  EXPECT_EQ(rec.count_events("heal", "requeue"), st.requeues);
  EXPECT_EQ(rec.count_events("heal", "quarantine"), st.quarantines);
  EXPECT_EQ(rec.count_events("heal", "readmit"), st.readmissions);
  EXPECT_EQ(rec.count_events("heal", "stage_timeout"), st.stage_timeouts);
  EXPECT_EQ(rec.count_events("heal", "probe.ok") +
                rec.count_events("heal", "probe.fail"),
            st.probes);
  EXPECT_EQ(rec.count_events("heal", "probe.fail"), st.probe_failures);
  // The phase tracks carry exactly the io + compute the stats recorded:
  // each driver phase span covers the deltas it added to its report, and a
  // phase that faults mid-flight contributes its partial accounting to
  // both sides identically.
  EXPECT_NEAR(rec.sim_category_seconds("phase"),
              st.io_seconds + st.compute_seconds,
              1e-9 * (1.0 + st.io_seconds + st.compute_seconds));
  // One async 'b' and at most one 'e' per submitted request ('e' missing
  // only for requests still unsettled, which drain() rules out).
  EXPECT_EQ(rec.count_events("request"), 2 * st.submitted);
}

TEST(ObsChaos, DeadChipEventsMatchCounters) {
  AlarmGuard guard(120);
  ChaosFixture f;
  // Chip 0 dies on its first transaction; quarantine after one fault, no
  // stage retries, so healing goes requeue -> quarantine -> probe(fail).
  std::vector<service::ChipSpec> specs(2);
  specs[0].faults.events.push_back({chip::FaultKind::kKillChip, 0, 1, 0});
  service::ChipFarm farm(specs);
  TraceRecorder rec;
  service::ServiceOptions opts;
  opts.relin_keys = &f.rk;
  opts.max_stage_retries = 0;
  opts.quarantine_after = 1;
  opts.trace = &rec;
  service::EvalService svc(f.scheme, farm, opts);
  auto futs = svc.submit_batch(f.requests);
  settle(futs);
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.completed, f.requests.size());
  EXPECT_GT(st.requeues, 0u);
  EXPECT_GE(st.quarantines, 1u);
  expect_trace_reconciles(rec, st);
}

TEST(ObsChaos, SeededScheduleMatrixReconciles) {
  AlarmGuard guard(600);
  ChaosFixture f;
  // Random seeded fault schedules across farm sizes and depths: the
  // trace/stats identities must hold cell by cell.  The traced seed
  // reproduces any failing cell.
  const std::uint64_t seeds[] = {7, 1001, 424242};
  for (std::size_t chips : {1u, 2u, 4u}) {
    for (std::uint64_t seed : seeds) {
      SCOPED_TRACE("chips=" + std::to_string(chips) +
                   " fault_schedule_seed=" + std::to_string(seed));
      std::vector<service::ChipSpec> specs(chips);
      for (std::size_t c = 0; c < chips; ++c)
        specs[c].faults = chip::FaultSchedule::random(
            seed + c, /*op_horizon=*/3000, /*num_events=*/5,
            /*link_timeout_seconds=*/0.05);
      service::ChipFarm farm(specs);
      TraceRecorder rec;
      service::ServiceOptions opts;
      opts.relin_keys = &f.rk;
      opts.max_batch = 3;
      opts.trace = &rec;
      service::EvalService svc(f.scheme, farm, opts);
      auto futs = svc.submit_batch(f.requests);
      settle(futs);
      svc.drain();
      expect_trace_reconciles(rec, svc.stats());
    }
  }
}

}  // namespace
}  // namespace cofhee::obs
