// Concurrency stress tests for the ThreadPool: 10k-task hammering from
// multiple producer threads, exception propagation through both submit()
// futures and parallel_for(), and clean shutdown with work still queued.
#include "backend/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cofhee::backend {
namespace {

constexpr std::size_t kTasks = 10000;

TEST(ThreadPoolStress, MultiProducerHammerCompletesAllTasks) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = kTasks / kProducers;

  std::vector<std::vector<std::future<void>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kPerProducer);
      for (std::size_t i = 0; i < kPerProducer; ++i)
        futures[p].push_back(pool.submit([&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        }));
    });
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futures)
    for (auto& f : fs) f.get();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolStress, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(4);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps executing.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolStress, ParallelForRethrowsFirstExceptionAfterDraining) {
  ThreadPool pool(4);
  std::atomic<std::size_t> attempted{0};
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&attempted](std::size_t i) {
                          attempted.fetch_add(1, std::memory_order_relaxed);
                          if (i % 100 == 7) throw std::invalid_argument("boom");
                        }),
      std::invalid_argument);
  // Every index was still attempted: the barrier drained before rethrow.
  EXPECT_EQ(attempted.load(), 1000u);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedTasksBeforeShutdown) {
  std::atomic<std::size_t> done{0};
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < 1000; ++i)
      (void)pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    // Futures discarded on purpose: shutdown itself must drain the queue.
  }
  EXPECT_EQ(done.load(), 1000u);
}

TEST(ThreadPoolStress, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < 100; ++i)
    pool.submit([&done] { ++done; }).get();
  EXPECT_EQ(done.load(), 100u);
  EXPECT_THROW(pool.submit([] { throw std::runtime_error("inline"); }).get(),
               std::runtime_error);
  pool.parallel_for(kTasks, [&done](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 100u + kTasks);
}

TEST(ThreadPoolStress, ParallelForZeroCountIsNoopForEveryGrain) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{64}})
    pool.parallel_for(0, grain, [](std::size_t) { FAIL() << "body ran"; });
  // The pool is still fully operational afterwards.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(16, [&done](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16u);
}

TEST(ThreadPoolStress, GrainZeroIsTreatedAsOne) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(hits.size(), 0, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolStress, CountSmallerThanThreadsLeavesNoStragglerTasks) {
  // A wide pool given tiny loops must not queue helper tasks it can never
  // feed; interleaved submits would otherwise hit stale no-op drains.
  ThreadPool pool(16);
  std::atomic<std::size_t> done{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(1, [&done](std::size_t) { done.fetch_add(1); });
    pool.parallel_for(3, 2, [&done](std::size_t) { done.fetch_add(1); });
    pool.submit([&done] { done.fetch_add(1); }).get();
  }
  EXPECT_EQ(done.load(), 200u * (1 + 3 + 1));
}

TEST(ThreadPoolStress, GrainChunksCoverEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  // Deliberately non-dividing grains, including one bigger than count.
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{100},
                            std::size_t{100000}}) {
    std::vector<std::atomic<int>> hits(1001);
    pool.parallel_for(hits.size(), grain, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << ", index " << i;
  }
}

TEST(ThreadPoolStress, GrainedParallelForRethrowsAndSkipsRestOfChunk) {
  ThreadPool pool(4);
  std::atomic<std::size_t> attempted{0};
  EXPECT_THROW(
      pool.parallel_for(100, 10,
                        [&attempted](std::size_t i) {
                          if (i % 10 == 5) throw std::runtime_error("chunk boom");
                          attempted.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // Each of the 10 chunks ran indices 0..4 of its decade then threw at 5:
  // the tail of the throwing chunk is skipped, other chunks still ran.
  EXPECT_EQ(attempted.load(), 50u);
}

TEST(ThreadPoolStress, SingleThreadGrainedRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(10, 4, [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolStress, RepeatedConstructDestroyIsClean) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<std::size_t> done{0};
    pool.parallel_for(64, [&done](std::size_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(done.load(), 64u);
  }
}

}  // namespace
}  // namespace cofhee::backend
