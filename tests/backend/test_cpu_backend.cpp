#include "backend/cpu_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::backend {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

struct KernelFixture {
  std::size_t n = 128;
  std::vector<nt::u64> moduli{nt::find_ntt_prime_u64(54, 128),
                              nt::find_ntt_prime_u64(55, 128)};
  CpuTensorKernel kernel{n, moduli};

  poly::RnsPoly random_rns(std::uint64_t seed) {
    poly::Rng rng(seed);
    poly::RnsPoly p;
    for (auto q : moduli) p.towers.push_back(poly::sample_uniform(rng, n, q));
    return p;
  }
};

TEST(CpuTensorKernel, MatchesSchoolbookTensor) {
  KernelFixture f;
  const auto a0 = f.random_rns(1), a1 = f.random_rns(2);
  const auto b0 = f.random_rns(3), b1 = f.random_rns(4);
  ThreadPool pool(2);
  const auto out = f.kernel.multiply(a0, a1, b0, b1, pool);
  for (std::size_t tw = 0; tw < f.moduli.size(); ++tw) {
    nt::Barrett64 ring(f.moduli[tw]);
    EXPECT_EQ(out.y0.towers[tw],
              poly::schoolbook_negacyclic_mul(ring, a0.towers[tw], b0.towers[tw]));
    const auto y1 = poly::pointwise_add(
        ring, poly::schoolbook_negacyclic_mul(ring, a0.towers[tw], b1.towers[tw]),
        poly::schoolbook_negacyclic_mul(ring, a1.towers[tw], b0.towers[tw]));
    EXPECT_EQ(out.y1.towers[tw], y1);
    EXPECT_EQ(out.y2.towers[tw],
              poly::schoolbook_negacyclic_mul(ring, a1.towers[tw], b1.towers[tw]));
  }
}

TEST(CpuTensorKernel, CarriedPolicyMatchesExplicitPool) {
  // The ExecPolicy-carrying construction (serial and pooled) must produce
  // the same tensor as the legacy explicit-pool overload.
  KernelFixture f;
  const auto a0 = f.random_rns(21), a1 = f.random_rns(22);
  const auto b0 = f.random_rns(23), b1 = f.random_rns(24);
  ThreadPool pool(4);
  const auto expect = f.kernel.multiply(a0, a1, b0, b1, pool);
  const CpuTensorKernel serial(f.n, f.moduli, ExecPolicy::serial());
  const CpuTensorKernel pooled(f.n, f.moduli, ExecPolicy::pooled(4));
  const auto rs = serial.multiply(a0, a1, b0, b1);
  const auto rp = pooled.multiply(a0, a1, b0, b1);
  EXPECT_EQ(rs.y0.towers, expect.y0.towers);
  EXPECT_EQ(rs.y1.towers, expect.y1.towers);
  EXPECT_EQ(rs.y2.towers, expect.y2.towers);
  EXPECT_EQ(rp.y0.towers, expect.y0.towers);
  EXPECT_EQ(rp.y1.towers, expect.y1.towers);
  EXPECT_EQ(rp.y2.towers, expect.y2.towers);
  EXPECT_EQ(serial.exec().concurrency(), 1u);
  EXPECT_EQ(pooled.exec().concurrency(), 4u);
}

TEST(CpuTensorKernel, ThreadCountDoesNotChangeResult) {
  KernelFixture f;
  const auto a0 = f.random_rns(5), a1 = f.random_rns(6);
  const auto b0 = f.random_rns(7), b1 = f.random_rns(8);
  ThreadPool p1(1), p4(4), p16(16);
  const auto r1 = f.kernel.multiply(a0, a1, b0, b1, p1);
  const auto r4 = f.kernel.multiply(a0, a1, b0, b1, p4);
  const auto r16 = f.kernel.multiply(a0, a1, b0, b1, p16);
  EXPECT_EQ(r1.y0.towers, r4.y0.towers);
  EXPECT_EQ(r4.y1.towers, r16.y1.towers);
  EXPECT_EQ(r1.y2.towers, r16.y2.towers);
}

TEST(CpuTensorKernel, ModmulCountScalesWithWorkload) {
  KernelFixture f;
  // 2 towers, n=128: 7 * 64 * 7 + 7*128 per tower.
  const std::uint64_t per_tower = 7 * 64 * 7 + 4 * 128 + 3 * 128;
  EXPECT_EQ(f.kernel.modmul_count(), 2 * per_tower);
}

TEST(CpuPowerModel, MatchesPaperAnchors) {
  CpuPowerModel pm;
  // (n=2^12, 2 towers, 1 thread) -> 1.48 W; (n=2^13, 4 towers) -> 2.3 W.
  EXPECT_NEAR(pm.watts(1u << 12, 2, 1), 1.48, 1e-9);
  EXPECT_NEAR(pm.watts(1u << 13, 4, 1), 2.30, 1e-9);
  // Near-linear with threads (paper Section VI-B).
  const double p1 = pm.watts(1u << 12, 2, 1) - pm.idle_w;
  const double p4 = pm.watts(1u << 12, 2, 4) - pm.idle_w;
  EXPECT_NEAR(p4 / p1, 4.0, 1e-9);
}

TEST(CpuTimeModel, DiminishingReturns) {
  CpuTimeModel tm;
  const double t1 = tm.ms(6.91, 1);
  const double t4 = tm.ms(6.91, 4);
  const double t16 = tm.ms(6.91, 16);
  EXPECT_NEAR(t1, 6.91, 1e-9);
  EXPECT_LT(t4, t1);
  EXPECT_LT(t16, t4);
  // Speedup at 16 threads is well below 16x (diminishing returns).
  EXPECT_LT(t1 / t16, 16.0 * 0.7);
  // ...but enough to undercut one CoFHEE instance (3.58 ms at n=2^13).
  EXPECT_LT(t16, 3.58);
}

}  // namespace
}  // namespace cofhee::backend
