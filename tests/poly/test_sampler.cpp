#include "poly/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cofhee::poly {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(97), 97u);
  }
  EXPECT_EQ(rng.uniform_below(0), 0u);
  EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, Uniform128RespectsBound) {
  Rng rng(2);
  const u128 bound = (static_cast<u128>(1) << 100) + 12345;
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform_u128_below(bound), bound);
}

TEST(Sampler, UniformPolyInRange) {
  Rng rng(3);
  const u64 q = (1ull << 55) - 55;
  const auto p = sample_uniform(rng, 4096, q);
  ASSERT_EQ(p.size(), 4096u);
  for (u64 c : p) EXPECT_LT(c, q);
}

TEST(Sampler, UniformIsRoughlyUniform) {
  // Mean of U[0,q) is q/2; with n=65536 samples the relative error of the
  // sample mean should be well under 2%.
  Rng rng(4);
  const u64 q = 1ull << 32;
  const auto p = sample_uniform(rng, 65536, q);
  long double mean = 0;
  for (u64 c : p) mean += static_cast<long double>(c);
  mean /= static_cast<long double>(p.size());
  EXPECT_NEAR(static_cast<double>(mean / (q / 2.0L)), 1.0, 0.02);
}

TEST(Sampler, TernaryValues) {
  Rng rng(5);
  const auto s = sample_ternary(rng, 8192);
  int counts[3] = {0, 0, 0};
  for (int32_t v : s) {
    ASSERT_GE(v, -1);
    ASSERT_LE(v, 1);
    counts[v + 1]++;
  }
  // Each symbol ~ 1/3 of 8192 ~ 2731; allow generous tolerance.
  for (int c : counts) EXPECT_NEAR(c, 8192 / 3, 300);
}

TEST(Sampler, CbdMomentsMatchTheory) {
  // CBD(eta): mean 0, variance eta/2.  eta=21 stands in for SEAL's
  // sigma = 3.2 discrete Gaussian (sigma_cbd = sqrt(10.5) ~ 3.24).
  Rng rng(6);
  const unsigned eta = 21;
  const auto s = sample_cbd(rng, 1 << 16, eta);
  long double mean = 0, var = 0;
  for (int32_t v : s) mean += v;
  mean /= s.size();
  for (int32_t v : s) var += (v - mean) * (v - mean);
  var /= s.size();
  EXPECT_NEAR(static_cast<double>(mean), 0.0, 0.1);
  EXPECT_NEAR(static_cast<double>(var), eta / 2.0, 0.4);
  for (int32_t v : s) {
    ASSERT_GE(v, -static_cast<int32_t>(eta));
    ASSERT_LE(v, static_cast<int32_t>(eta));
  }
}

TEST(Sampler, ToTowerMapsNegativesModQ) {
  const u64 q = 101;
  SignedCoeffs s{-1, 0, 1, -5, 5};
  const auto t = to_tower(s, q);
  const Coeffs<u64> expect{100, 0, 1, 96, 5};
  EXPECT_EQ(t, expect);
}

TEST(Sampler, ToRnsConsistentAcrossTowers) {
  RnsBasis basis({97, 193});
  Rng rng(7);
  const auto s = sample_cbd(rng, 64, 4);
  const auto p = to_rns(s, basis);
  ASSERT_EQ(p.num_towers(), 2u);
  for (std::size_t j = 0; j < s.size(); ++j) {
    // Both towers must represent the same centered value.
    const auto v0 = p.towers[0][j], v1 = p.towers[1][j];
    const int64_t c0 = v0 > 48 ? static_cast<int64_t>(v0) - 97 : static_cast<int64_t>(v0);
    const int64_t c1 = v1 > 96 ? static_cast<int64_t>(v1) - 193 : static_cast<int64_t>(v1);
    EXPECT_EQ(c0, s[j]);
    EXPECT_EQ(c1, s[j]);
  }
}

}  // namespace
}  // namespace cofhee::poly
