#include "poly/ntt.hpp"

#include <gtest/gtest.h>

#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::poly {
namespace {

using nt::Barrett128;
using nt::Barrett64;

struct Fixture64 {
  std::size_t n;
  Barrett64 ring;
  u64 psi;
  Fixture64(std::size_t n_, unsigned bits, u64 seed = 0)
      : n(n_), ring(nt::find_ntt_prime_u64(bits, n_, seed)),
        psi(nt::primitive_2nth_root(ring.modulus(), n_)) {}
};

TEST(CyclicNtt64, ForwardInverseRoundTrip) {
  Fixture64 f(256, 40);
  CyclicNtt64 ntt(f.ring, f.n, f.psi);
  Rng rng(42);
  const auto x = sample_uniform(rng, f.n, f.ring.modulus());
  auto y = x;
  ntt.forward(y);
  EXPECT_NE(y, x);  // astronomically unlikely to be a fixed point
  ntt.inverse(y);
  EXPECT_EQ(y, x);
}

TEST(CyclicNtt64, ForwardIsBitReversedDft) {
  // X[rev(k)] = sum_j x[j] omega^(jk): check directly at small n.
  const std::size_t n = 16;
  Fixture64 f(n, 20);
  CyclicNtt64 ntt(f.ring, n, f.psi);
  Rng rng(43);
  const auto x = sample_uniform(rng, n, f.ring.modulus());
  auto y = x;
  ntt.forward(y);
  const auto rev = nt::bit_reverse_table(n);
  for (std::size_t k = 0; k < n; ++k) {
    u64 acc = 0;
    for (std::size_t j = 0; j < n; ++j)
      acc = f.ring.add(acc, f.ring.mul(x[j], f.ring.pow(ntt.omega(), j * k)));
    EXPECT_EQ(y[rev[k]], acc) << "bin " << k;
  }
}

TEST(CyclicNtt64, ConvolutionTheoremCyclic) {
  Fixture64 f(128, 30);
  CyclicNtt64 ntt(f.ring, f.n, f.psi);
  Rng rng(44);
  const auto a = sample_uniform(rng, f.n, f.ring.modulus());
  const auto b = sample_uniform(rng, f.n, f.ring.modulus());
  auto fa = a, fb = b;
  ntt.forward(fa);
  ntt.forward(fb);
  auto y = pointwise_mul(f.ring, fa, fb);
  ntt.inverse(y);
  EXPECT_EQ(y, schoolbook_cyclic_mul(f.ring, a, b));
}

TEST(CyclicNtt64, NegacyclicMulMatchesSchoolbook) {
  Fixture64 f(64, 32);
  CyclicNtt64 ntt(f.ring, f.n, f.psi);
  Rng rng(45);
  const auto a = sample_uniform(rng, f.n, f.ring.modulus());
  const auto b = sample_uniform(rng, f.n, f.ring.modulus());
  EXPECT_EQ(ntt.negacyclic_mul(a, b), schoolbook_negacyclic_mul(f.ring, a, b));
}

TEST(CyclicNtt64, SharedTwiddleRomMirrorIdentity) {
  // Paper Section VIII-B: iNTT reuses the forward twiddle table.  Verify
  // omega^-e == -omega^(n/2 - e) for every ROM address.
  Fixture64 f(512, 45);
  CyclicNtt64 ntt(f.ring, f.n, f.psi);
  const u64 winv = f.ring.inv(ntt.omega());
  for (std::size_t e = 0; e < f.n / 2; ++e) {
    EXPECT_EQ(ntt.inv_twiddle(e), f.ring.pow(winv, e)) << "e=" << e;
  }
}

TEST(CyclicNtt64, RejectsNonRootPsi) {
  Fixture64 f(64, 30);
  EXPECT_THROW(CyclicNtt64(f.ring, f.n, 1), std::invalid_argument);
}

TEST(CyclicNtt64, RejectsWrongLength) {
  Fixture64 f(64, 30);
  CyclicNtt64 ntt(f.ring, f.n, f.psi);
  Coeffs<u64> x(32, 0);
  EXPECT_THROW(ntt.forward(x), std::invalid_argument);
}

TEST(NegacyclicNtt64, RoundTrip) {
  Fixture64 f(1024, 50);
  NegacyclicNtt64 ntt(f.ring, f.n, f.psi);
  Rng rng(46);
  const auto x = sample_uniform(rng, f.n, f.ring.modulus());
  auto y = x;
  ntt.forward(y);
  ntt.inverse(y);
  EXPECT_EQ(y, x);
}

TEST(NegacyclicNtt64, MulMatchesSchoolbook) {
  Fixture64 f(128, 50);
  NegacyclicNtt64 ntt(f.ring, f.n, f.psi);
  Rng rng(47);
  const auto a = sample_uniform(rng, f.n, f.ring.modulus());
  const auto b = sample_uniform(rng, f.n, f.ring.modulus());
  EXPECT_EQ(ntt.negacyclic_mul(a, b), schoolbook_negacyclic_mul(f.ring, a, b));
}

TEST(NegacyclicNtt64, AgreesWithChipPath) {
  // The merged-psi software NTT and the chip's psi-scale+cyclic-NTT pipeline
  // must produce identical negacyclic products (Algorithm 2 equivalence).
  Fixture64 f(256, 48);
  NegacyclicNtt64 sw(f.ring, f.n, f.psi);
  CyclicNtt64 hw(f.ring, f.n, f.psi);
  Rng rng(48);
  const auto a = sample_uniform(rng, f.n, f.ring.modulus());
  const auto b = sample_uniform(rng, f.n, f.ring.modulus());
  EXPECT_EQ(sw.negacyclic_mul(a, b), hw.negacyclic_mul(a, b));
}

TEST(CyclicNtt128, RoundTripAndSchoolbook) {
  const std::size_t n = 64;
  const u128 q = nt::find_ntt_prime_u128(100, n);
  Barrett128 ring(q);
  const u128 psi = nt::primitive_2nth_root(q, n);
  CyclicNtt128 ntt(ring, n, psi);
  Rng rng(49);
  const auto a = sample_uniform128(rng, n, q);
  const auto b = sample_uniform128(rng, n, q);
  auto y = a;
  ntt.forward(y);
  ntt.inverse(y);
  EXPECT_EQ(y, a);
  EXPECT_EQ(ntt.negacyclic_mul(a, b), schoolbook_negacyclic_mul(ring, a, b));
}

TEST(CyclicNtt128, PaperScaleModulus109Bits) {
  // The Fig. 6 small configuration: one 109-bit tower (n reduced for test
  // speed; the ring width is what matters here).
  const std::size_t n = 128;
  const u128 q = nt::find_ntt_prime_u128(109, n);
  Barrett128 ring(q);
  CyclicNtt128 ntt(ring, n, nt::primitive_2nth_root(q, n));
  Rng rng(50);
  const auto a = sample_uniform128(rng, n, q);
  const auto b = sample_uniform128(rng, n, q);
  EXPECT_EQ(ntt.negacyclic_mul(a, b), schoolbook_negacyclic_mul(ring, a, b));
}

// Parameterized sweep over polynomial degrees (the chip supports any power
// of two up to 2^14; we exercise the algorithmic range).
class NttDegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttDegreeSweep, BothEnginesMatchSchoolbook) {
  const std::size_t n = GetParam();
  Fixture64 f(n, 34);
  CyclicNtt64 hw(f.ring, n, f.psi);
  NegacyclicNtt64 sw(f.ring, n, f.psi);
  Rng rng(1000 + n);
  const auto a = sample_uniform(rng, n, f.ring.modulus());
  const auto b = sample_uniform(rng, n, f.ring.modulus());
  const auto expect = schoolbook_negacyclic_mul(f.ring, a, b);
  EXPECT_EQ(hw.negacyclic_mul(a, b), expect);
  EXPECT_EQ(sw.negacyclic_mul(a, b), expect);
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttDegreeSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512));

// Linearity property: NTT(a + b) == NTT(a) + NTT(b).
class NttLinearity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttLinearity, TransformIsLinear) {
  const std::size_t n = GetParam();
  Fixture64 f(n, 40);
  CyclicNtt64 ntt(f.ring, n, f.psi);
  Rng rng(2000 + n);
  const auto a = sample_uniform(rng, n, f.ring.modulus());
  const auto b = sample_uniform(rng, n, f.ring.modulus());
  auto sum = pointwise_add(f.ring, a, b);
  auto fa = a, fb = b;
  ntt.forward(fa);
  ntt.forward(fb);
  ntt.forward(sum);
  EXPECT_EQ(sum, pointwise_add(f.ring, fa, fb));
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttLinearity,
                         ::testing::Values(16, 64, 256, 1024, 4096));

}  // namespace
}  // namespace cofhee::poly
