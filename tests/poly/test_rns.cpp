#include "poly/rns.hpp"

#include <gtest/gtest.h>

#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::poly {
namespace {

RnsBasis paper_basis_2towers() {
  // The Fig. 6 (n, log q) = (2^12, 109) software split: 54- and 55-bit moduli.
  return RnsBasis({nt::find_ntt_prime_u64(54, 4096), nt::find_ntt_prime_u64(55, 4096)});
}

TEST(RnsBasis, RejectsBadInput) {
  EXPECT_THROW(RnsBasis(std::vector<u64>{}), std::invalid_argument);
  EXPECT_THROW(RnsBasis({15, 21}), std::invalid_argument);  // gcd 3
}

TEST(RnsBasis, ProductAndLogQ) {
  auto basis = paper_basis_2towers();
  EXPECT_EQ(basis.size(), 2u);
  // 54 + 55 bit moduli -> 108..109-bit product, the paper's "log q = 109".
  EXPECT_NEAR(static_cast<double>(basis.log_q()), 109.0, 1.0);
}

TEST(RnsBasis, DecomposeReconstructRoundTrip) {
  auto basis = paper_basis_2towers();
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    BigInt x;
    x.limb[0] = rng.next_u64();
    x.limb[1] = rng.next_u64() & 0x3FFFFFFFFFFull;  // < 2^106 <= Q (>= 2^107)
    const auto res = basis.decompose(x);
    EXPECT_EQ(basis.reconstruct(res), x);
  }
}

TEST(RnsBasis, ReconstructCentered) {
  auto basis = paper_basis_2towers();
  // Small negative value -Q + 5 has residues (q_i - ...) -- centered lift
  // must return magnitude Q - (Q-5) = 5 with the negative flag.
  BigInt five(u64{5});
  BigInt neg5 = basis.product() - five;
  auto [mag, negf] = basis.reconstruct_centered(basis.decompose(neg5));
  EXPECT_TRUE(negf);
  EXPECT_EQ(mag, five);
  auto [mag2, negf2] = basis.reconstruct_centered(basis.decompose(five));
  EXPECT_FALSE(negf2);
  EXPECT_EQ(mag2, five);
}

TEST(RnsPoly, DecomposeReconstructPoly) {
  auto basis = paper_basis_2towers();
  Rng rng(8);
  std::vector<BigInt> coeffs(64);
  for (auto& c : coeffs) {
    c.limb[0] = rng.next_u64();
    c.limb[1] = rng.next_u64() & 0xFFFFFFFFFFull;
  }
  const auto p = rns_decompose(basis, coeffs);
  EXPECT_EQ(p.num_towers(), 2u);
  EXPECT_EQ(p.n(), 64u);
  EXPECT_EQ(rns_reconstruct(basis, p), coeffs);
}

TEST(RnsPoly, BaseConvertExact) {
  auto from = paper_basis_2towers();
  RnsBasis to({nt::find_ntt_prime_u64(55, 4096, 2), nt::find_ntt_prime_u64(55, 4096, 3),
               nt::find_ntt_prime_u64(55, 4096, 4)});
  Rng rng(9);
  std::vector<BigInt> coeffs(32);
  for (auto& c : coeffs) {
    c.limb[0] = rng.next_u64();
    c.limb[1] = rng.next_u64() & 0xFFFFFFFFFFull;
  }
  const auto p = rns_decompose(from, coeffs);
  const auto conv = rns_base_convert(from, to, p);
  // The target basis is larger than the values, so the lift is exact.
  EXPECT_EQ(rns_reconstruct(to, conv), coeffs);
}

TEST(RnsBasis, FourTowerPaperConfig) {
  // Fig. 6 (n, log q) = (2^13, 218): four ~55-bit towers (54+54+55+55).
  const std::size_t n = 8192;
  RnsBasis basis({nt::find_ntt_prime_u64(54, n, 0), nt::find_ntt_prime_u64(54, n, 1),
                  nt::find_ntt_prime_u64(55, n, 0), nt::find_ntt_prime_u64(55, n, 1)});
  EXPECT_NEAR(static_cast<double>(basis.log_q()), 218.0, 1.0);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    BigInt x;
    for (int l = 0; l < 3; ++l) x.limb[l] = rng.next_u64();
    x.limb[3] = rng.next_u64() & 0xFFFFFull;  // < 2^212 <= Q (>= 2^214)
    if (x >= basis.product()) x = (x % basis.product()).resize<8>();
    EXPECT_EQ(basis.reconstruct(basis.decompose(x)), x);
  }
}

TEST(RnsBasis, ResiduesReduceCorrectly) {
  auto basis = paper_basis_2towers();
  BigInt x;
  x.limb = {123456789, 987654321, 0, 0, 0, 0, 0, 0};
  const auto res = basis.decompose(x);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    EXPECT_EQ(res[i], x.mod_u64(basis.modulus(i)));
    EXPECT_LT(res[i], basis.modulus(i));
  }
}

}  // namespace
}  // namespace cofhee::poly
