// Property/stress tests for rns_base_convert under concurrency, extending
// the test_ntt_vs_naive pattern to base conversion:
//
//  * an arithmetic-independent cross-check: values built and reduced with
//    raw __uint128_t division (no WideInt, no Barrett) must match what the
//    library's CRT lift produces in the target basis;
//  * a full-range Q -> QuB -> Q round-trip property (exact conversion is
//    injective for values below prod(Q), so the round trip must reproduce
//    every residue bit-for-bit);
//  * the same conversions hammered concurrently from many pool tasks over
//    shared read-only bases, and pooled-executor conversions diffed against
//    the serial reference -- the TSan lane's target for the RNS layer.
#include "poly/rns.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "backend/exec_policy.hpp"
#include "backend/thread_pool.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace cofhee::poly {
namespace {

using backend::ExecPolicy;
using backend::Executor;
using backend::ThreadPool;

// Independent reduction: raw 128-bit division, no WideInt, no Barrett.
u64 naive_mod(u128 x, u64 q) { return static_cast<u64>(x % q); }

// The Q basis (paper-style tower widths) and the extension QuB.
RnsBasis q_basis() {
  std::vector<u64> moduli;
  u64 seed = 0;
  for (unsigned bits : {40u, 50u, 54u})
    moduli.push_back(nt::find_ntt_prime_u64(bits, 64, seed++));
  return RnsBasis(moduli);
}

RnsBasis ext_basis(const RnsBasis& q) {
  std::vector<u64> moduli;
  for (std::size_t i = 0; i < q.size(); ++i) moduli.push_back(q.modulus(i));
  for (u64 seed = 100; moduli.size() < q.size() * 2 + 1; ++seed)
    moduli.push_back(nt::find_ntt_prime_u64(55, 64, seed));
  return RnsBasis(moduli);
}

/// Random polynomial with full-range residues in every tower of `basis`.
RnsPoly random_rns(const RnsBasis& basis, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RnsPoly p;
  for (std::size_t i = 0; i < basis.size(); ++i)
    p.towers.push_back(sample_uniform(rng, n, basis.modulus(i)));
  return p;
}

TEST(RnsBaseConvertParallel, MatchesNaive128BitReference) {
  // Values x = a * b (a, b random u64) span up to 128 bits -- wide enough to
  // exercise multi-limb CRT, small enough that raw u128 division is an
  // independent referee for both the source decomposition and the target.
  const RnsBasis from = q_basis();
  const RnsBasis to = ext_basis(from);
  const std::size_t n = 128;
  Rng rng(1);
  std::vector<u128> values(n);
  RnsPoly p;
  p.towers.assign(from.size(), Coeffs<u64>(n));
  for (std::size_t j = 0; j < n; ++j) {
    values[j] = static_cast<u128>(rng.next_u64()) * rng.next_u64();
    for (std::size_t i = 0; i < from.size(); ++i)
      p.towers[i][j] = naive_mod(values[j], from.modulus(i));
  }
  for (const Executor& exec :
       {Executor(ExecPolicy::serial()), Executor(ExecPolicy::pooled(4, 16))}) {
    const RnsPoly out = rns_base_convert(from, to, p, exec);
    ASSERT_EQ(out.num_towers(), to.size());
    for (std::size_t i = 0; i < to.size(); ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(out.towers[i][j], naive_mod(values[j], to.modulus(i)))
            << "tower " << i << ", coeff " << j;
  }
}

TEST(RnsBaseConvertParallel, RoundTripQToExtToQIsExact) {
  const RnsBasis from = q_basis();
  const RnsBasis to = ext_basis(from);
  for (std::size_t n : {std::size_t{16}, std::size_t{256}, std::size_t{1024}}) {
    const RnsPoly p = random_rns(from, n, 10 + n);
    const RnsPoly ext = rns_base_convert(from, to, p);
    const RnsPoly back = rns_base_convert(to, from, ext);
    for (std::size_t i = 0; i < from.size(); ++i)
      ASSERT_EQ(back.towers[i], p.towers[i]) << "n " << n << ", tower " << i;
  }
}

TEST(RnsBaseConvertParallel, PooledExecutorMatchesSerialBitExact) {
  const RnsBasis from = q_basis();
  const RnsBasis to = ext_basis(from);
  const std::size_t n = 512;
  const RnsPoly p = random_rns(from, n, 77);
  const RnsPoly serial = rns_base_convert(from, to, p);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{4096}}) {
      const Executor exec{ExecPolicy::pooled(threads, grain)};
      const RnsPoly pooled = rns_base_convert(from, to, p, exec);
      for (std::size_t i = 0; i < to.size(); ++i)
        ASSERT_EQ(pooled.towers[i], serial.towers[i])
            << "threads " << threads << ", grain " << grain << ", tower " << i;
    }
  }
  // The decompose/reconstruct halves are also policy-invariant.
  const auto coeffs_serial = rns_reconstruct(from, p);
  const Executor exec{ExecPolicy::pooled(4, 32)};
  const auto coeffs_pooled = rns_reconstruct(from, p, exec);
  ASSERT_EQ(coeffs_serial.size(), coeffs_pooled.size());
  for (std::size_t j = 0; j < coeffs_serial.size(); ++j)
    ASSERT_TRUE(coeffs_serial[j] == coeffs_pooled[j]) << "coeff " << j;
  const RnsPoly dec_serial = rns_decompose(to, coeffs_serial);
  const RnsPoly dec_pooled = rns_decompose(to, coeffs_pooled, exec);
  for (std::size_t i = 0; i < to.size(); ++i)
    ASSERT_EQ(dec_serial.towers[i], dec_pooled.towers[i]) << "tower " << i;
}

TEST(RnsBaseConvertParallel, ConcurrentRoundTripsOverSharedBases) {
  // Many pool tasks convert distinct randomized polynomials Q -> QuB -> Q
  // concurrently over the same (read-only) bases.  Each task verifies its
  // own round trip; the pool propagates the first failure as an exception.
  const RnsBasis from = q_basis();
  const RnsBasis to = ext_basis(from);
  constexpr std::size_t kTasks = 32;
  ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&from, &to, t] {
      const std::size_t n = 64 << (t % 3);
      const RnsPoly p = random_rns(from, n, 1000 + t);
      const RnsPoly back = rns_base_convert(to, from, rns_base_convert(from, to, p));
      for (std::size_t i = 0; i < from.size(); ++i)
        if (back.towers[i] != p.towers[i])
          throw std::logic_error("round trip diverged in task " + std::to_string(t));
    }));
  }
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
}

TEST(RnsBaseConvertParallel, ConcurrentPooledConversionsAgree) {
  // Stress the pooled executor itself from multiple producer threads: the
  // same input converted by 8 concurrent pooled conversions (each with its
  // own pool) must agree with the serial reference every time.
  const RnsBasis from = q_basis();
  const RnsBasis to = ext_basis(from);
  const RnsPoly p = random_rns(from, 256, 4242);
  const RnsPoly expect = rns_base_convert(from, to, p);
  std::vector<std::thread> threads;
  std::vector<RnsPoly> results(8);
  for (std::size_t t = 0; t < results.size(); ++t)
    threads.emplace_back([&, t] {
      const Executor exec{ExecPolicy::pooled(2, 16)};
      results[t] = rns_base_convert(from, to, p, exec);
    });
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < results.size(); ++t)
    for (std::size_t i = 0; i < to.size(); ++i)
      ASSERT_EQ(results[t].towers[i], expect.towers[i])
          << "producer " << t << ", tower " << i;
}

}  // namespace
}  // namespace cofhee::poly
