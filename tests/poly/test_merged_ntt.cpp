// MergedNtt -- the transform CoFHEE's NTT command executes (one command =
// full negacyclic transform, twiddle ROM of bit-reversed psi powers shared
// between NTT and iNTT per Section VIII-B).
#include "poly/merged_ntt.hpp"

#include <gtest/gtest.h>

#include "nt/primes.hpp"
#include "poly/ntt.hpp"
#include "poly/sampler.hpp"

namespace cofhee::poly {
namespace {

template <class Red, class T>
struct Fix {
  std::size_t n;
  Red ring;
  T psi;
  MergedNtt<Red, T> eng;

  Fix(std::size_t n_, T q)
      : n(n_), ring(q), psi(nt::primitive_2nth_root(q, n_)), eng(ring, n_, psi) {}
};

TEST(MergedNtt, RoundTrip64) {
  const u64 q = nt::find_ntt_prime_u64(50, 512);
  Fix<nt::Barrett64, u64> f(512, q);
  Rng rng(1);
  const auto x = sample_uniform(rng, 512, q);
  auto y = x;
  f.eng.forward(y);
  f.eng.inverse(y);
  EXPECT_EQ(y, x);
}

TEST(MergedNtt, MulMatchesSchoolbook128) {
  const u128 q = nt::find_ntt_prime_u128(109, 128);
  Fix<nt::Barrett128, u128> f(128, q);
  Rng rng(2);
  const auto a = sample_uniform128(rng, 128, q);
  const auto b = sample_uniform128(rng, 128, q);
  EXPECT_EQ(f.eng.negacyclic_mul(a, b), schoolbook_negacyclic_mul(f.ring, a, b));
}

TEST(MergedNtt, AgreesWithShoupEngine) {
  // Same transform as the production 64-bit engine, different arithmetic.
  const u64 q = nt::find_ntt_prime_u64(55, 256);
  Fix<nt::Barrett64, u64> f(256, q);
  NegacyclicNtt64 shoup(f.ring, 256, f.psi);
  Rng rng(3);
  auto a = sample_uniform(rng, 256, q);
  auto b = a;
  f.eng.forward(a);
  shoup.forward(b);
  EXPECT_EQ(a, b);
}

TEST(MergedNtt, AgreesWithExplicitPsiScalingPath) {
  // Algorithm 2 equivalence: merged twiddles == psi-scale + cyclic omega
  // NTT, coefficient for coefficient after the inverse.
  const u128 q = nt::find_ntt_prime_u128(80, 64);
  Fix<nt::Barrett128, u128> f(64, q);
  CyclicNtt128 scaled(f.ring, 64, f.psi);
  Rng rng(4);
  const auto a = sample_uniform128(rng, 64, q);
  const auto b = sample_uniform128(rng, 64, q);
  EXPECT_EQ(f.eng.negacyclic_mul(a, b), scaled.negacyclic_mul(a, b));
}

TEST(MergedNtt, TwiddleRomIsBitReversedPsiPowers) {
  const u64 q = nt::find_ntt_prime_u64(40, 32);
  Fix<nt::Barrett64, u64> f(32, q);
  const auto& rom = f.eng.twiddle_rom();
  ASSERT_EQ(rom.size(), 32u);
  for (std::size_t i = 0; i < rom.size(); ++i) {
    EXPECT_EQ(rom[i], f.ring.pow(f.psi, nt::bit_reverse(i, 5))) << i;
  }
}

TEST(MergedNtt, InverseTwiddlesDerivableFromRomByMirror) {
  // The property the chip's DMA-assisted mirror pass relies on:
  // psi^-e = -psi^(n-e), so the iNTT needs no second table.
  const u64 q = nt::find_ntt_prime_u64(40, 64);
  Fix<nt::Barrett64, u64> f(64, q);
  const auto& rom = f.eng.twiddle_rom();
  const auto& inv = f.eng.inv_twiddles();
  for (std::size_t i = 1; i < 64; ++i) {
    const std::size_t e = nt::bit_reverse(i, 6);
    const u64 from_rom = f.ring.neg(rom[nt::bit_reverse(64 - e, 6)]);
    EXPECT_EQ(inv[i], from_rom) << i;
  }
  EXPECT_EQ(inv[0], 1u);
}

TEST(MergedNtt, NegacyclicWrapProperty) {
  // x * x^(n-1) has an x^n term that must wrap to -1 in coefficient 0.
  const u64 q = nt::find_ntt_prime_u64(40, 16);
  Fix<nt::Barrett64, u64> f(16, q);
  Coeffs<u64> x(16, 0), xn1(16, 0);
  x[1] = 1;
  xn1[15] = 1;
  const auto prod = f.eng.negacyclic_mul(x, xn1);
  EXPECT_EQ(prod[0], q - 1);  // -1 mod q
  for (std::size_t i = 1; i < 16; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(MergedNtt, RejectsBadConstruction) {
  const u64 q = nt::find_ntt_prime_u64(40, 64);
  nt::Barrett64 ring(q);
  EXPECT_THROW((MergedNtt<nt::Barrett64, u64>(ring, 63, 2)), std::invalid_argument);
  EXPECT_THROW((MergedNtt<nt::Barrett64, u64>(ring, 64, 1)), std::invalid_argument);
}

class MergedDegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergedDegreeSweep, MatchesSchoolbook) {
  const std::size_t n = GetParam();
  const u64 q = nt::find_ntt_prime_u64(45, n);
  Fix<nt::Barrett64, u64> f(n, q);
  Rng rng(100 + n);
  const auto a = sample_uniform(rng, n, q);
  const auto b = sample_uniform(rng, n, q);
  EXPECT_EQ(f.eng.negacyclic_mul(a, b), schoolbook_negacyclic_mul(f.ring, a, b));
}

INSTANTIATE_TEST_SUITE_P(Degrees, MergedDegreeSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace cofhee::poly
