// MergedNtt -- the transform CoFHEE's NTT command executes (one command =
// full negacyclic transform, twiddle ROM of bit-reversed psi powers shared
// between NTT and iNTT per Section VIII-B).
#include "poly/merged_ntt.hpp"

#include <gtest/gtest.h>

#include "bfv/bfv.hpp"
#include "nt/primes.hpp"
#include "poly/ntt.hpp"
#include "poly/sampler.hpp"

namespace cofhee::poly {
namespace {

template <class Red, class T>
struct Fix {
  std::size_t n;
  Red ring;
  T psi;
  MergedNtt<Red, T> eng;

  Fix(std::size_t n_, T q)
      : n(n_), ring(q), psi(nt::primitive_2nth_root(q, n_)), eng(ring, n_, psi) {}
};

TEST(MergedNtt, RoundTrip64) {
  const u64 q = nt::find_ntt_prime_u64(50, 512);
  Fix<nt::Barrett64, u64> f(512, q);
  Rng rng(1);
  const auto x = sample_uniform(rng, 512, q);
  auto y = x;
  f.eng.forward(y);
  f.eng.inverse(y);
  EXPECT_EQ(y, x);
}

TEST(MergedNtt, MulMatchesSchoolbook128) {
  const u128 q = nt::find_ntt_prime_u128(109, 128);
  Fix<nt::Barrett128, u128> f(128, q);
  Rng rng(2);
  const auto a = sample_uniform128(rng, 128, q);
  const auto b = sample_uniform128(rng, 128, q);
  EXPECT_EQ(f.eng.negacyclic_mul(a, b), schoolbook_negacyclic_mul(f.ring, a, b));
}

TEST(MergedNtt, AgreesWithShoupEngine) {
  // Same transform as the production 64-bit engine, different arithmetic.
  const u64 q = nt::find_ntt_prime_u64(55, 256);
  Fix<nt::Barrett64, u64> f(256, q);
  NegacyclicNtt64 shoup(f.ring, 256, f.psi);
  Rng rng(3);
  auto a = sample_uniform(rng, 256, q);
  auto b = a;
  f.eng.forward(a);
  shoup.forward(b);
  EXPECT_EQ(a, b);
}

TEST(MergedNtt, AgreesWithExplicitPsiScalingPath) {
  // Algorithm 2 equivalence: merged twiddles == psi-scale + cyclic omega
  // NTT, coefficient for coefficient after the inverse.
  const u128 q = nt::find_ntt_prime_u128(80, 64);
  Fix<nt::Barrett128, u128> f(64, q);
  CyclicNtt128 scaled(f.ring, 64, f.psi);
  Rng rng(4);
  const auto a = sample_uniform128(rng, 64, q);
  const auto b = sample_uniform128(rng, 64, q);
  EXPECT_EQ(f.eng.negacyclic_mul(a, b), scaled.negacyclic_mul(a, b));
}

TEST(MergedNtt, TwiddleRomIsBitReversedPsiPowers) {
  const u64 q = nt::find_ntt_prime_u64(40, 32);
  Fix<nt::Barrett64, u64> f(32, q);
  const auto& rom = f.eng.twiddle_rom();
  ASSERT_EQ(rom.size(), 32u);
  for (std::size_t i = 0; i < rom.size(); ++i) {
    EXPECT_EQ(rom[i], f.ring.pow(f.psi, nt::bit_reverse(i, 5))) << i;
  }
}

TEST(MergedNtt, InverseTwiddlesDerivableFromRomByMirror) {
  // The property the chip's DMA-assisted mirror pass relies on:
  // psi^-e = -psi^(n-e), so the iNTT needs no second table.
  const u64 q = nt::find_ntt_prime_u64(40, 64);
  Fix<nt::Barrett64, u64> f(64, q);
  const auto& rom = f.eng.twiddle_rom();
  const auto& inv = f.eng.inv_twiddles();
  for (std::size_t i = 1; i < 64; ++i) {
    const std::size_t e = nt::bit_reverse(i, 6);
    const u64 from_rom = f.ring.neg(rom[nt::bit_reverse(64 - e, 6)]);
    EXPECT_EQ(inv[i], from_rom) << i;
  }
  EXPECT_EQ(inv[0], 1u);
}

TEST(MergedNtt, NegacyclicWrapProperty) {
  // x * x^(n-1) has an x^n term that must wrap to -1 in coefficient 0.
  const u64 q = nt::find_ntt_prime_u64(40, 16);
  Fix<nt::Barrett64, u64> f(16, q);
  Coeffs<u64> x(16, 0), xn1(16, 0);
  x[1] = 1;
  xn1[15] = 1;
  const auto prod = f.eng.negacyclic_mul(x, xn1);
  EXPECT_EQ(prod[0], q - 1);  // -1 mod q
  for (std::size_t i = 1; i < 16; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(MergedNtt, RejectsBadConstruction) {
  const u64 q = nt::find_ntt_prime_u64(40, 64);
  nt::Barrett64 ring(q);
  EXPECT_THROW((MergedNtt<nt::Barrett64, u64>(ring, 63, 2)), std::invalid_argument);
  EXPECT_THROW((MergedNtt<nt::Barrett64, u64>(ring, 64, 1)), std::invalid_argument);
}

class MergedDegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergedDegreeSweep, MatchesSchoolbook) {
  const std::size_t n = GetParam();
  const u64 q = nt::find_ntt_prime_u64(45, n);
  Fix<nt::Barrett64, u64> f(n, q);
  Rng rng(100 + n);
  const auto a = sample_uniform(rng, n, q);
  const auto b = sample_uniform(rng, n, q);
  EXPECT_EQ(f.eng.negacyclic_mul(a, b), schoolbook_negacyclic_mul(f.ring, a, b));
}

INSTANTIATE_TEST_SUITE_P(Degrees, MergedDegreeSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

// ---------------------------------------------------------------------------
// MergedNtt64 -- the fused/SIMD host engine that replaced NegacyclicNtt64 as
// the default Bfv / CpuTensorKernel path.  The unfused scalar engine stays
// in poly/ntt.hpp purely as the differential reference these tests pin the
// production path against, across every shipped parameter set.
// ---------------------------------------------------------------------------

// Negacyclic schoolbook product over Z_t (u64 modulus, u128 intermediate):
// the plaintext-side ground truth for the end-to-end chain test.
Coeffs<u64> schoolbook_mod_t(const Coeffs<u64>& a, const Coeffs<u64>& b, u64 t) {
  const std::size_t n = a.size();
  Coeffs<u64> y(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = static_cast<u64>(static_cast<u128>(a[i]) * b[j] % t);
      const std::size_t k = i + j;
      if (k < n) {
        y[k] = (y[k] + prod) % t;
      } else {
        y[k - n] = (y[k - n] + t - prod) % t;  // x^n = -1
      }
    }
  }
  return y;
}

std::vector<bfv::BfvParams> all_param_sets() {
  return {bfv::BfvParams::test_tiny(64), bfv::BfvParams::paper_small(),
          bfv::BfvParams::paper_large()};
}

TEST(MergedNtt64, RoundTripAndScalarReferenceAcrossParamSets) {
  // Every tower of every shipped parameter set (Q and the aux extension):
  // forward/inverse round-trips, and the forward image matches the unfused
  // scalar engine bit for bit (so does the inverse, transitively).
  for (const auto& params : all_param_sets()) {
    std::vector<u64> moduli = params.q_moduli;
    moduli.insert(moduli.end(), params.aux_moduli.begin(),
                  params.aux_moduli.end());
    for (u64 q : moduli) {
      const nt::Barrett64 ring(q);
      const u64 psi = nt::primitive_2nth_root(q, params.n);
      const MergedNtt64 fused(ring, params.n, psi);
      const NegacyclicNtt64 reference(ring, params.n, psi);
      Rng rng(q ^ params.n);
      const auto x = sample_uniform(rng, params.n, q);
      auto fwd_fused = x;
      fused.forward(fwd_fused);
      auto fwd_ref = x;
      reference.forward(fwd_ref);
      ASSERT_EQ(fwd_fused, fwd_ref) << "n=" << params.n << " q=" << q;
      fused.inverse(fwd_fused);
      ASSERT_EQ(fwd_fused, x) << "n=" << params.n << " q=" << q;
    }
  }
}

TEST(MergedNtt64, MulMatchesSchoolbookAcrossModulusSizes) {
  for (unsigned bits : {30u, 45u, 55u, 61u}) {
    const std::size_t n = 128;
    const u64 q = nt::find_ntt_prime_u64(bits, n);
    const nt::Barrett64 ring(q);
    const MergedNtt64 eng(ring, n, nt::primitive_2nth_root(q, n));
    Rng rng(bits);
    const auto a = sample_uniform(rng, n, q);
    const auto b = sample_uniform(rng, n, q);
    EXPECT_EQ(eng.negacyclic_mul(a, b), schoolbook_negacyclic_mul(ring, a, b))
        << "bits=" << bits;
  }
}

TEST(MergedNtt64, TensorMatchesUnfusedReference) {
  // The fused tensor (4 forward + 4 pointwise + 3 inverse in one call) must
  // equal the unfused pipeline assembled from the scalar reference engine.
  const std::size_t n = 256;
  const u64 q = nt::find_ntt_prime_u64(50, n);
  const nt::Barrett64 ring(q);
  const u64 psi = nt::primitive_2nth_root(q, n);
  const MergedNtt64 fused(ring, n, psi);
  const NegacyclicNtt64 reference(ring, n, psi);
  Rng rng(7);
  const auto a0 = sample_uniform(rng, n, q);
  const auto a1 = sample_uniform(rng, n, q);
  const auto b0 = sample_uniform(rng, n, q);
  const auto b1 = sample_uniform(rng, n, q);

  Coeffs<u64> y0, y1, y2;
  fused.tensor(a0, a1, b0, b1, y0, y1, y2);

  auto fa0 = a0, fa1 = a1, fb0 = b0, fb1 = b1;
  reference.forward(fa0);
  reference.forward(fa1);
  reference.forward(fb0);
  reference.forward(fb1);
  Coeffs<u64> r0(n), r1(n), r2(n);
  for (std::size_t i = 0; i < n; ++i) {
    r0[i] = ring.mul(fa0[i], fb0[i]);
    r1[i] = ring.add(ring.mul(fa0[i], fb1[i]), ring.mul(fa1[i], fb0[i]));
    r2[i] = ring.mul(fa1[i], fb1[i]);
  }
  reference.inverse(r0);
  reference.inverse(r1);
  reference.inverse(r2);
  EXPECT_EQ(y0, r0);
  EXPECT_EQ(y1, r1);
  EXPECT_EQ(y2, r2);
}

class MergedChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(MergedChainSweep, MultRelinDecryptChainFusedVsUnfused) {
  // Full EvalMult chain differential: the production scheme (fused + SIMD
  // engines everywhere) against a from-parts software reference built on the
  // unfused scalar NegacyclicNtt64 -- byte-identical at the tensor, the
  // relinearized ciphertext, and the decrypted plaintext (which must be the
  // schoolbook negacyclic product mod t).
  const auto params = all_param_sets()[static_cast<std::size_t>(GetParam())];
  bfv::Bfv scheme(params, /*seed=*/42);
  const auto& ctx = scheme.context();
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk);

  Rng rng(9);
  bfv::Plaintext m1{sample_uniform(rng, ctx.n(), ctx.t())};
  bfv::Plaintext m2{sample_uniform(rng, ctx.n(), ctx.t())};
  const auto ct1 = scheme.encrypt(pk, m1);
  const auto ct2 = scheme.encrypt(pk, m2);

  // Production path.
  const auto tensor = scheme.multiply(ct1, ct2);
  const auto relin = scheme.relinearize(tensor, rk);

  // Unfused reference: extend, per-tower scalar-engine tensor, scale-round.
  const auto ea0 = scheme.extend_centered_public(ct1.c[0]);
  const auto ea1 = scheme.extend_centered_public(ct1.c[1]);
  const auto eb0 = scheme.extend_centered_public(ct2.c[0]);
  const auto eb1 = scheme.extend_centered_public(ct2.c[1]);
  poly::RnsPoly y0, y1, y2;
  const std::size_t ext = ctx.ext_basis().size();
  y0.towers.resize(ext);
  y1.towers.resize(ext);
  y2.towers.resize(ext);
  for (std::size_t tw = 0; tw < ext; ++tw) {
    const auto& ring = ctx.ext_basis().tower(tw);
    const NegacyclicNtt64 eng(ring, ctx.n(),
                              nt::primitive_2nth_root(ring.modulus(), ctx.n()));
    auto fa0 = ea0.towers[tw], fa1 = ea1.towers[tw];
    auto fb0 = eb0.towers[tw], fb1 = eb1.towers[tw];
    eng.forward(fa0);
    eng.forward(fa1);
    eng.forward(fb0);
    eng.forward(fb1);
    Coeffs<u64> r0(ctx.n()), r1(ctx.n()), r2(ctx.n());
    for (std::size_t i = 0; i < ctx.n(); ++i) {
      r0[i] = ring.mul(fa0[i], fb0[i]);
      r1[i] = ring.add(ring.mul(fa0[i], fb1[i]), ring.mul(fa1[i], fb0[i]));
      r2[i] = ring.mul(fa1[i], fb1[i]);
    }
    eng.inverse(r0);
    eng.inverse(r1);
    eng.inverse(r2);
    y0.towers[tw] = std::move(r0);
    y1.towers[tw] = std::move(r1);
    y2.towers[tw] = std::move(r2);
  }
  ASSERT_EQ(tensor.c[0].towers, scheme.scale_round_public(y0).towers);
  ASSERT_EQ(tensor.c[1].towers, scheme.scale_round_public(y1).towers);
  ASSERT_EQ(tensor.c[2].towers, scheme.scale_round_public(y2).towers);

  // Unfused relinearization reference over the Q basis.
  const auto digits = scheme.relin_digits_public(tensor.c[2], rk);
  poly::RnsPoly rc0 = tensor.c[0], rc1 = tensor.c[1];
  for (std::size_t tw = 0; tw < ctx.q_basis().size(); ++tw) {
    const auto& ring = ctx.q_basis().tower(tw);
    const NegacyclicNtt64 eng(ring, ctx.n(),
                              nt::primitive_2nth_root(ring.modulus(), ctx.n()));
    for (std::size_t d = 0; d < digits.size(); ++d) {
      const auto pb =
          eng.negacyclic_mul(digits[d].towers[tw], rk.keys[d].first.towers[tw]);
      const auto pa =
          eng.negacyclic_mul(digits[d].towers[tw], rk.keys[d].second.towers[tw]);
      rc0.towers[tw] = pointwise_add(ring, rc0.towers[tw], pb);
      rc1.towers[tw] = pointwise_add(ring, rc1.towers[tw], pa);
    }
  }
  ASSERT_EQ(relin.c[0].towers, rc0.towers);
  ASSERT_EQ(relin.c[1].towers, rc1.towers);

  // And the chain decrypts to the schoolbook plaintext product.
  const auto dec = scheme.decrypt(sk, relin);
  EXPECT_EQ(dec.coeffs, schoolbook_mod_t(m1.coeffs, m2.coeffs, ctx.t()));
}

// Index 2 (paper_large, n = 2^13) is covered by the slow-labeled BFV paper
// suite; the chain differential sticks to the fast sets.
INSTANTIATE_TEST_SUITE_P(ParamSets, MergedChainSweep, ::testing::Values(0, 1));

}  // namespace
}  // namespace cofhee::poly
