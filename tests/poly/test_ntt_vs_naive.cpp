// Property tests cross-checking both NTT engines against a naive O(n^2)
// schoolbook reference that is arithmetically independent of the library:
// it reduces through raw __uint128_t division rather than the Barrett
// reducers the transforms are built on, so a systematic reduction bug
// cannot cancel out of the comparison.  Swept for n in {16, 64, 256}
// across every prime of an RNS basis spanning the tower widths the BFV
// parameter sets use (30..55 bits, q == 1 mod 2n).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nt/primes.hpp"
#include "poly/ntt.hpp"
#include "poly/rns.hpp"
#include "poly/sampler.hpp"

namespace cofhee::poly {
namespace {

// Independent modular arithmetic: no Barrett, no Shoup.
u64 naive_mulmod(u64 a, u64 b, u64 q) {
  return static_cast<u64>((static_cast<u128>(a) * b) % q);
}

u64 naive_addmod(u64 a, u64 b, u64 q) {
  const u64 s = a + b;  // a, b < q < 2^63 for every tower here: no overflow
  return s >= q ? s - q : s;
}

u64 naive_submod(u64 a, u64 b, u64 q) { return a >= b ? a - b : a + q - b; }

// Naive negacyclic product in Z_q[x]/(x^n + 1).
Coeffs<u64> naive_negacyclic(const Coeffs<u64>& a, const Coeffs<u64>& b, u64 q) {
  const std::size_t n = a.size();
  Coeffs<u64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const u64 p = naive_mulmod(a[i], b[j], q);
      const std::size_t k = (i + j) % n;
      c[k] = i + j < n ? naive_addmod(c[k], p, q) : naive_submod(c[k], p, q);
    }
  return c;
}

// Naive cyclic product in Z_q[x]/(x^n - 1).
Coeffs<u64> naive_cyclic(const Coeffs<u64>& a, const Coeffs<u64>& b, u64 q) {
  const std::size_t n = a.size();
  Coeffs<u64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      c[(i + j) % n] =
          naive_addmod(c[(i + j) % n], naive_mulmod(a[i], b[j], q), q);
  return c;
}

// One RNS basis per degree, spanning the tower widths BfvParams uses.
RnsBasis test_basis(std::size_t n) {
  std::vector<u64> moduli;
  u64 seed = 0;
  for (unsigned bits : {30u, 40u, 50u, 54u, 55u})
    moduli.push_back(nt::find_ntt_prime_u64(bits, n, seed++));
  return RnsBasis(moduli);
}

class NttVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttVsNaive, ForwardInverseRoundTripAllPrimes) {
  const std::size_t n = GetParam();
  const RnsBasis basis = test_basis(n);
  Rng rng(100 + n);
  for (std::size_t t = 0; t < basis.size(); ++t) {
    const auto& ring = basis.tower(t);
    const u64 psi = nt::primitive_2nth_root(ring.modulus(), n);
    const CyclicNtt64 hw(ring, n, psi);
    const NegacyclicNtt64 sw(ring, n, psi);
    const auto x = sample_uniform(rng, n, ring.modulus());
    auto y = x;
    hw.forward(y);
    hw.inverse(y);
    EXPECT_EQ(y, x) << "cyclic engine, tower " << t;
    y = x;
    sw.forward(y);
    sw.inverse(y);
    EXPECT_EQ(y, x) << "merged-psi engine, tower " << t;
  }
}

TEST_P(NttVsNaive, NegacyclicMulMatchesNaiveAllPrimes) {
  const std::size_t n = GetParam();
  const RnsBasis basis = test_basis(n);
  Rng rng(200 + n);
  for (std::size_t t = 0; t < basis.size(); ++t) {
    const auto& ring = basis.tower(t);
    const u64 q = ring.modulus();
    const u64 psi = nt::primitive_2nth_root(q, n);
    const CyclicNtt64 hw(ring, n, psi);
    const NegacyclicNtt64 sw(ring, n, psi);
    const auto a = sample_uniform(rng, n, q);
    const auto b = sample_uniform(rng, n, q);
    const auto expect = naive_negacyclic(a, b, q);
    EXPECT_EQ(hw.negacyclic_mul(a, b), expect) << "cyclic engine, tower " << t;
    EXPECT_EQ(sw.negacyclic_mul(a, b), expect) << "merged-psi engine, tower " << t;
  }
}

TEST_P(NttVsNaive, PointwiseConvolutionTheoremAllPrimes) {
  // The negacyclic product decomposes into psi scaling + forward NTT +
  // pointwise product + inverse NTT + psi^-1 scaling (paper Algorithm 2).
  // Run the pipeline by hand and compare each layer against naive math.
  const std::size_t n = GetParam();
  const RnsBasis basis = test_basis(n);
  Rng rng(300 + n);
  for (std::size_t t = 0; t < basis.size(); ++t) {
    const auto& ring = basis.tower(t);
    const u64 q = ring.modulus();
    const u64 psi = nt::primitive_2nth_root(q, n);
    const CyclicNtt64 ntt(ring, n, psi);
    const auto a = sample_uniform(rng, n, q);
    const auto b = sample_uniform(rng, n, q);

    // Cyclic convolution theorem: iNTT(NTT(a) . NTT(b)) == a *cyc b.
    auto fa = a, fb = b;
    ntt.forward(fa);
    ntt.forward(fb);
    auto cyc = pointwise_mul(ring, fa, fb);
    ntt.inverse(cyc);
    EXPECT_EQ(cyc, naive_cyclic(a, b, q)) << "cyclic theorem, tower " << t;

    // Negacyclic via explicit psi wrap of the same pipeline.
    Coeffs<u64> ap(n), bp(n);
    for (std::size_t i = 0; i < n; ++i) {
      ap[i] = naive_mulmod(a[i], ntt.psi_powers()[i], q);
      bp[i] = naive_mulmod(b[i], ntt.psi_powers()[i], q);
    }
    ntt.forward(ap);
    ntt.forward(bp);
    auto neg = pointwise_mul(ring, ap, bp);
    ntt.inverse(neg);
    for (std::size_t i = 0; i < n; ++i)
      neg[i] = naive_mulmod(neg[i], ntt.psi_inv_powers()[i], q);
    EXPECT_EQ(neg, naive_negacyclic(a, b, q)) << "negacyclic wrap, tower " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttVsNaive, ::testing::Values(16, 64, 256));

}  // namespace
}  // namespace cofhee::poly
