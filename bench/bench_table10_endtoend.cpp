// Reproduces paper Table X: end-to-end application comparison
// (CryptoNets and logistic-regression inference, CPU vs CoFHEE).
//
// The paper derives "expected processing times" from operation counts
// (Section VI-C); we reproduce the methodology: per-operation CoFHEE costs
// from the calibrated cycle model (n = 2^12, one 128-bit tower, NTT-domain
// residency through linear layers), the CPU column from the paper's
// SEAL-derived totals.  The relinearization digit width w is the one free
// parameter the paper does not specify, so the bench sweeps it.
#include <cstdio>

#include "apps/cost_model.hpp"
#include "bench_util.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace cofhee;
  cofhee::bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();
  const apps::Workload workloads[] = {apps::cryptonets_workload(),
                                      apps::logreg_workload()};

  eval::section("Table X -- end-to-end application comparison");
  for (const auto& w : workloads) {
    std::printf("\n%s: %llu ct+ct adds, %llu ct*pt muls, %llu ct*ct muls (+relin)\n",
                w.name.c_str(), static_cast<unsigned long long>(w.ct_ct_adds),
                static_cast<unsigned long long>(w.ct_pt_muls),
                static_cast<unsigned long long>(w.ct_ct_muls));
    eval::Table t({"impl", "relin digit w", "time (s)", "paper (s)", "speedup vs CPU",
                   "paper speedup"});
    t.row({"CPU (SEAL, paper-measured)", "-", eval::fmt(w.paper_cpu_seconds, 2),
           eval::fmt(w.paper_cpu_seconds, 2), "1.00x", "1.00x"});
    const double paper_speedup = w.paper_cpu_seconds / w.paper_cofhee_seconds;
    for (unsigned digit_bits : {4u, 8u, 16u}) {
      const auto costs = apps::chip_op_costs(1u << 12, 1, digit_bits, 109);
      const double secs = apps::estimate_seconds(w, costs);
      t.row({"CoFHEE (cycle model)", std::to_string(digit_bits), eval::fmt(secs, 2),
             eval::fmt(w.paper_cofhee_seconds, 2),
             eval::fmt(w.paper_cpu_seconds / secs, 2) + "x",
             eval::fmt(paper_speedup, 2) + "x"});
      const std::string key = w.name + "/w" + std::to_string(digit_bits) + "/";
      metrics.set(key + "seconds", secs);
      metrics.set(key + "speedup_vs_cpu", w.paper_cpu_seconds / secs);
    }
    t.print();
  }

  std::puts(
      "\nShape check: the published totals (88.35 s / 377.6 s) sit inside the\n"
      "model's w = 4..16 envelope -- CryptoNets matches at w ~ 4 (2.24x vs the\n"
      "paper's 2.23x) and LogReg between w = 8 and 16 (1.21x-1.77x vs 1.46x).\n"
      "At w >= 8 CoFHEE beats the CPU on both workloads, matching Table X's\n"
      "direction.  Per-op costs: ct+ct and NTT-resident ct*pt are pointwise\n"
      "passes; ct*ct is Algorithm 3 (the Fig. 6 kernel); relin is digit-wise\n"
      "key switching.");
  return io.finish() ? 0 : 1;
}
