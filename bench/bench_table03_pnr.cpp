// Reproduces paper Table III: design statistics through place and route
// (cell counts, buffer insertion, utilization, VT migration).
#include <cstdio>

#include "eval/report.hpp"
#include "physical/floorplan.hpp"
#include "physical/pnr_model.hpp"

int main() {
  using namespace cofhee;
  physical::Floorplanner fp;
  physical::PnrModel pnr;
  const auto stages = pnr.run(fp.plan());

  // Paper Table III (Initial / Place / CTS / Route).
  const struct {
    const char* stage;
    double cells, seq, bufs, util_pct, nets, hvt, rvt, lvt;
  } paper[] = {
      {"Initial", 225797, 18686, 22561, 45.0, 257856, 100.0, 0.0, 0.0},
      {"Place", 376853, 18686, 89072, 54.0, 398340, 13.75, 17.0, 69.25},
      {"CTS", 378957, 18686, 91372, 56.5, 401407, 13.5, 12.1, 74.4},
      {"Route", 379921, 18686, 92379, 59.0, 401510, 13.4, 12.0, 74.6},
  };

  eval::section("Table III -- design statistics through PnR");
  eval::Table t({"stage", "std cells", "paper", "buf/inv", "paper", "util",
                 "paper", "nets", "paper", "HVT/RVT/LVT %", "paper"});
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    const auto& p = paper[i];
    t.row({s.name, std::to_string(s.std_cells), eval::fmt(p.cells, 0),
           std::to_string(s.buffer_inverter_cells), eval::fmt(p.bufs, 0),
           eval::fmt(s.utilization * 100, 1) + "%", eval::fmt(p.util_pct, 1) + "%",
           std::to_string(s.signal_nets), eval::fmt(p.nets, 0),
           eval::fmt(s.hvt_fraction * 100, 1) + "/" +
               eval::fmt(s.rvt_fraction * 100, 1) + "/" +
               eval::fmt(s.lvt_fraction * 100, 1),
           eval::fmt(p.hvt, 1) + "/" + eval::fmt(p.rvt, 1) + "/" +
               eval::fmt(p.lvt, 1)});
  }
  t.print();
  std::puts("The flow starts 100% HVT (leakage-optimal) and ends at 13.4% HVT /\n"
            "74.6% LVT: timing closure swaps the long combinational Barrett\n"
            "paths of Table VIII onto faster cells, exactly the mechanism the\n"
            "paper describes in Sections III-K and V-C.");
  return 0;
}
