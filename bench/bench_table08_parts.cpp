// Reproduces paper Table VIII: post-synthesis area and delay of every
// CoFHEE block (GF 55nm), from the structural area model.
#include <cstdio>

#include "eval/report.hpp"
#include "physical/area_model.hpp"

int main() {
  using namespace cofhee;
  // Paper Table VIII values for side-by-side comparison.
  const struct {
    const char* name;
    double area, delay;
  } paper[] = {{"3 DP SRAMs", 5.3506, 4.22}, {"4 SP SRAMs", 3.2036, 4.19},
               {"PE", 0.6394, 5.65},         {"CM0 SRAM", 0.4062, 6.13},
               {"AHB", 0.0747, 5.76},        {"GPCFG", 0.0534, 7.03},
               {"ARM CM0", 0.0354, 5.24},    {"MDMC", 0.0273, 4.16},
               {"SPI", 0.0202, 7.74},        {"DMA", 0.0075, 7.17},
               {"UART", 0.0065, 5.66},       {"GPIO", 0.0035, 6.73},
               {"Others", 0.0063, 0.0}};

  physical::AreaModel am;
  const auto blocks = am.blocks();

  eval::section("Table VIII -- part estimations (area mm^2, delay ns)");
  eval::Table t({"module", "area", "paper", "err", "delay", "paper delay"});
  for (const auto& p : paper) {
    for (const auto& b : blocks) {
      if (b.name == p.name) {
        t.row({b.name, eval::fmt(b.area_mm2, 4), eval::fmt(p.area, 4),
               eval::pct_err(b.area_mm2, p.area), eval::fmt(b.delay_ns, 2),
               eval::fmt(p.delay, 2)});
      }
    }
  }
  t.row({"Total", eval::fmt(am.total_mm2(), 4), "9.8345",
         eval::pct_err(am.total_mm2(), 9.8345), "-", "-"});
  t.print();
  std::puts("Memory areas derive from bit-cell/periphery constants solved from\n"
            "the published macro inventory; logic areas from NAND2-equivalent\n"
            "gate counts fitted to the synthesis report (DESIGN.md).  Delays\n"
            "are the pre-layout HVT-corner paths the paper reports; they close\n"
            "to 4 ns after the VT migration shown in Table III.");
  return 0;
}
