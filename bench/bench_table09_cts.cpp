// Reproduces paper Table IX: clock-tree QoR (18,413 sinks, slow-corner
// synthesis) plus the pad/memory inventory rows.
#include <cstdio>

#include "eval/report.hpp"
#include "physical/cts_model.hpp"
#include "physical/floorplan.hpp"

int main() {
  using namespace cofhee;
  physical::Floorplanner fp;
  const auto plan = fp.plan();
  physical::CtsModel cts;
  const auto r = cts.synthesize(plan);

  eval::section("Table IX -- design statistics / clock tree QoR");
  eval::Table t({"parameter", "value", "paper"});
  t.row({"Width", eval::fmt(plan.die_w_um, 0) + " um", "3660 um"});
  t.row({"Height", eval::fmt(plan.die_h_um, 0) + " um", "3842 um"});
  t.row({"Signal pads", std::to_string(plan.signal_pads), "26"});
  t.row({"PG pads", std::to_string(plan.pg_pads), "11"});
  t.row({"PLL bias pads", std::to_string(plan.pll_bias_pads), "8"});
  t.row({"Memories", std::to_string(plan.macro_count), "68"});
  t.row({"CTS corner", "slow", "slow"});
  t.row({"Sinks", std::to_string(r.sinks), "18413"});
  t.row({"Levels", std::to_string(r.levels), "26"});
  t.row({"Clock tree buffers", std::to_string(r.buffers), "464"});
  t.row({"Global skew", eval::fmt(r.skew_ps, 0) + " ps", "240 ps"});
  t.row({"Longest ins. delay", eval::fmt(r.max_insertion_ns, 3) + " ns", "2.079 ns"});
  t.row({"Shortest ins. delay", eval::fmt(r.min_insertion_ns, 3) + " ns", "1.838 ns"});
  t.print();
  std::puts("Tree: geometric leaf clustering (fanout 40) + balanced repeatered\n"
            "trunk with snaked-wire padding; skew is the residual of the\n"
            "3-stage balancing tolerance (see src/physical/cts_model.cpp).");
  return 0;
}
