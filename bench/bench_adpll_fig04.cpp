// Exercises the ADPLL of paper Section V-E / Fig. 4: lock transients at
// several targets across the tuning range (including the 250 MHz chip
// clock), SAR handoff, and the silicon area/power figures.
#include <cstdio>

#include "adpll/adpll.hpp"
#include "eval/report.hpp"

int main() {
  using namespace cofhee;
  adpll::Adpll pll;

  eval::section("ADPLL (Section V-E) -- lock behavior across the tuning range");
  const auto [lo, hi] = pll.tuning_range_mhz();
  std::printf("DCO tuning range: %.0f - %.0f MHz (reference: 25 MHz)\n", lo, hi);

  eval::Table t({"target MHz", "locked", "freq MHz", "err ppm", "SAR steps",
                 "BB steps", "lock time us", "limit-cycle ppm"});
  for (unsigned mult : {3u, 4u, 6u, 8u, 10u, 12u, 16u, 20u, 24u}) {
    const auto r = pll.lock(mult);
    t.row({std::to_string(mult * 25), r.locked ? "yes" : "NO",
           eval::fmt(r.locked_freq_mhz, 1), eval::fmt(r.freq_error_ppm, 0),
           std::to_string(r.sar_steps), std::to_string(r.bang_bang_steps),
           eval::fmt(r.lock_time_us, 1), eval::fmt(r.jitter_limit_cycle_ppm, 0)});
  }
  t.print();

  eval::section("Dual-loop handoff at the 250 MHz operating point");
  const auto r = pll.lock(10);
  std::printf("FLL (SAR over %u-bit coarse DAC): %u steps -> %.1f MHz\n",
              adpll::Dco::kCoarseBits, r.sar_steps,
              r.freq_trace_mhz[r.sar_steps - 1]);
  std::printf("PLL (bang-bang + integral filter on %u-step fine DAC): %llu steps "
              "-> %.2f MHz\n", adpll::Dco::kFineSteps,
              static_cast<unsigned long long>(r.bang_bang_steps), r.locked_freq_mhz);

  eval::section("Silicon figures (GF 55nm implementation)");
  std::printf("active area: %.2f mm^2 (paper: 0.05 mm^2)\n", adpll::Adpll::kActiveAreaMm2);
  std::printf("power: %.0f uW at %.1f V (paper: 350 uW at 1.1 V)\n",
              adpll::Adpll::kPowerUw, adpll::Adpll::kSupplyV);
  std::puts("An analog PLL of equal jitter needs a large loop-filter capacitor;\n"
            "the all-digital implementation is why the PLL fits a corner of the\n"
            "floorplan (Fig. 3a) instead of dominating it.");
  return 0;
}
