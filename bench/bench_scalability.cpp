// Exercises the Section VIII-A scalability discussion with the chip
// model's architecture knobs:
//  * dual-port vs single-port compute memories (II = 1 vs II = 2 -- the
//    n >= 2^14 operating mode);
//  * 1 PE radix-2 vs 4 PE radix-4-equivalent butterflies (the paper's
//    "~4x performance for +1.9 mm^2" claim from Section VI-B);
//  * DMA background staging on/off (Section III-F).
//  * software-stack thread scaling: BFV EvalMult through the parallelized
//    RNS-tower hot paths (ExecPolicy serial vs pooled at 1/2/4/8 threads).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bfv/bfv.hpp"
#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "eval/report.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace {

using namespace cofhee;
using driver::u128;

std::uint64_t ntt_cycles(const chip::ChipConfig& cfg, std::size_t n, bool single_port) {
  const u128 q = nt::find_ntt_prime_u128(109, n);
  chip::CofheeChip soc(cfg);
  driver::HostDriver drv(soc);
  drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));
  poly::Rng rng(n);
  const auto x = poly::sample_uniform128(rng, n, q);
  const auto src = single_port ? chip::Bank::kSp0 : chip::Bank::kDp0;
  const auto dst = single_port ? chip::Bank::kSp1 : chip::Bank::kDp1;
  soc.load_coeffs(src, 0, x);
  soc.reset_metrics();
  (void)drv.ntt({src, 0}, {dst, 0});
  return soc.cycles();
}

double ctmul_ms(const chip::ChipConfig& cfg, std::size_t n) {
  const u128 q = nt::find_ntt_prime_u128(109, n);
  chip::CofheeChip soc(cfg);
  driver::HostDriver drv(soc);
  drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));
  poly::Rng rng(n + 1);
  for (auto b : {chip::Bank::kSp0, chip::Bank::kSp1, chip::Bank::kSp2,
                 chip::Bank::kSp3})
    soc.load_coeffs(b, 0, poly::sample_uniform128(rng, n, q));
  soc.reset_metrics();
  return drv.ciphertext_mul().compute_ms;
}

/// Wall-clock of one EvalMult (Eq. 4 tensor + t/q rounding, no relin) on the
/// software BFV stack under a given execution policy; best of `reps`.
double eval_mult_ms(bfv::Bfv& scheme, const bfv::Ciphertext& ca,
                    const bfv::Ciphertext& cb, int reps = 3) {
  (void)scheme.multiply(ca, cb);  // warm-up
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)scheme.multiply(ca, cb);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  using namespace cofhee;
  const std::size_t n = 1u << 13;

  eval::section("Section VIII-A ablation 1: dual-port vs single-port NTT");
  {
    chip::ChipConfig cfg;
    const auto dp = ntt_cycles(cfg, n, false);
    const auto sp = ntt_cycles(cfg, n, true);
    eval::Table t({"memory", "II", "NTT cycles", "slowdown"});
    t.row({"dual-port (fabricated)", "1", std::to_string(dp), "1.00x"});
    t.row({"single-port (n>=2^14 mode)", "2", std::to_string(sp),
           eval::fmt(static_cast<double>(sp) / static_cast<double>(dp), 2) + "x"});
    t.print();
    std::puts("Dual-port banks cost 2x the area per bit but halve NTT time --\n"
              "the trade Section VIII-B calls out (CoFHEE keeps only 3 of them).");
  }

  eval::section("Section VI-B scaling: 1 PE (radix-2) vs 4 PE (radix-4)");
  {
    chip::ChipConfig base;
    chip::ChipConfig quad = base;
    quad.num_pe = 4;
    const double t1 = ctmul_ms(base, n);
    const double t4 = ctmul_ms(quad, n);
    eval::Table t({"config", "ct-mult ms (1 tower)", "speedup", "extra area"});
    t.row({"1 PE, radix-2 (fabricated)", eval::fmt(t1, 3), "1.00x", "-"});
    t.row({"4 PE, radix-4", eval::fmt(t4, 3), eval::fmt(t1 / t4, 2) + "x",
           "+1.9 mm^2 (3x PE, Table VIII)"});
    t.print();
    std::puts("Paper: \"its performance would increase by a factor of ~4\" --\n"
              "exceeding the 16-thread CPU of Fig. 6 at a fraction of the area.");
  }

  eval::section("Section III-F ablation: DMA background staging");
  {
    chip::ChipConfig on;
    chip::ChipConfig off = on;
    off.dma_background = false;
    const double t_on = ctmul_ms(on, n);
    const double t_off = ctmul_ms(off, n);
    eval::Table t({"staging", "ct-mult ms", "overhead"});
    t.row({"background (fabricated)", eval::fmt(t_on, 3), "-"});
    t.row({"foreground", eval::fmt(t_off, 3),
           "+" + eval::fmt(100.0 * (t_off - t_on) / t_on, 1) + "%"});
    t.print();
    std::puts("The third dual-port bank exists to hide exactly this data\n"
              "movement \"transparently in the background\" (Section III-F).");
  }

  eval::section("Software-stack thread scaling: EvalMult over pooled RNS towers");
  {
    // The RNS towers are independent lanes (CoFHEE's premise); ExecPolicy
    // fans the tensor, base-extension and rounding loops across a
    // backend::ThreadPool.  Acceptance target: wall-clock improves with
    // thread count at n >= 4096 on multi-core hosts.
    std::printf("host hardware threads: %u\n", std::thread::hardware_concurrency());
    eval::Table t({"n", "towers", "policy", "eval_mult ms", "speedup vs serial"});
    for (const bool large : {false, true}) {
      const auto params = large ? bfv::BfvParams::paper_large()
                                : bfv::BfvParams::paper_small();
      const std::size_t towers = params.q_moduli.size();
      const std::size_t ring_n = params.n;
      double serial_ms = 0;
      for (unsigned threads : {0u, 1u, 2u, 4u, 8u}) {  // 0 = serial reference
        const auto policy = threads == 0
                                ? backend::ExecPolicy::serial()
                                : backend::ExecPolicy::pooled(threads, /*grain=*/256);
        bfv::Bfv scheme(params, /*seed=*/9, policy);
        const auto sk = scheme.keygen_secret();
        const auto pk = scheme.keygen_public(sk);
        bfv::Plaintext m;
        m.coeffs.assign(ring_n, 0);
        for (std::size_t j = 0; j < ring_n; ++j) m.coeffs[j] = (j * 7 + 1) % 65537;
        const auto ca = scheme.encrypt(pk, m);
        const auto cb = scheme.encrypt(pk, m);
        const double ms = eval_mult_ms(scheme, ca, cb);
        if (threads == 0) serial_ms = ms;
        t.row({"2^" + std::to_string(nt::log2_exact(ring_n)),
               std::to_string(towers),
               threads == 0 ? "serial" : "pooled x" + std::to_string(threads),
               eval::fmt(ms, 2),
               threads == 0 ? "1.00x" : eval::fmt(serial_ms / ms, 2) + "x"});
      }
    }
    t.print();
    std::puts("Serial is the bit-exact reference path; pooled results are\n"
              "byte-identical (tests/bfv/test_parallel_vs_serial_bfv.cpp) --\n"
              "only the wall clock changes with the thread count.");
  }

  eval::section("Communication cost: n beyond on-chip capacity (Section VIII-A)");
  {
    eval::Table t({"n", "poly bytes", "SPI 50 MHz load ms", "UART 3 Mbaud load ms",
                   "on-chip NTT ms"});
    for (unsigned logn : {12u, 13u, 14u, 15u}) {
      const double bytes = static_cast<double>(1u << logn) * 16;
      const double spi_ms = bytes / 6.25e6 * 1e3;
      const double uart_ms = bytes / 3.0e5 * 1e3;
      const double nn = static_cast<double>(1u << logn);
      const unsigned ii = logn >= 14 ? 2 : 1;
      const double ntt_ms = (nn / 2 * logn * ii + 22.0 * logn + 1) * 4e-6;
      t.row({"2^" + std::to_string(logn), eval::fmt(bytes, 0), eval::fmt(spi_ms, 2),
             eval::fmt(uart_ms, 1), eval::fmt(ntt_ms, 3)});
    }
    t.print();
    std::puts("Interface bandwidth, not compute, dominates beyond n = 2^13 --\n"
              "the paper's motivation for suggesting PCIe in future versions.");
  }
  return 0;
}
