// Reproduces paper Table XI: NTT comparison against related accelerators.
//
// CoFHEE's row is computed from this repository: NTT cycle count from the
// chip model, PE area from the physical area model, normalized to the
// comparison node with the Barrett-resynthesis scaling factors
// (area / 16.7, delay / 3.7).  Competitor rows carry their published
// figures as cited by the paper; 32/64-bit designs pay the RNS tower
// multiplier to cover CoFHEE's native 128-bit coefficients.
#include <cstdio>

#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "eval/related_work.hpp"
#include "eval/report.hpp"
#include "nt/primes.hpp"
#include "physical/area_model.hpp"
#include "poly/sampler.hpp"

int main() {
  using namespace cofhee;
  using driver::u128;

  // Measure the NTT on the chip model at n = 2^13 (the Table XI basis:
  // 53,248 butterfly cycles; the command adds per-stage overheads).
  const std::size_t n = 1u << 13;
  const u128 q = nt::find_ntt_prime_u128(109, n);
  chip::CofheeChip soc;
  driver::HostDriver drv(soc);
  drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));
  poly::Rng rng(5);
  soc.load_coeffs(chip::Bank::kDp0, 0, poly::sample_uniform128(rng, n, q));
  soc.reset_metrics();
  (void)drv.ntt({chip::Bank::kDp0, 0}, {chip::Bank::kDp1, 0});
  const std::uint64_t butterfly_cycles = (n / 2) * 13;  // Table XI counts these
  const std::uint64_t measured_cycles = soc.cycles();

  physical::AreaModel am;
  const eval::NormalizationFactors nf;
  const double eff = eval::cofhee_efficiency(butterfly_cycles, 250.0,
                                             am.pe_area_mm2(), nf);

  eval::section("Table XI -- NTT comparison vs related work (n = 2^13)");
  eval::Table t({"design", "technology", "max n", "log q", "area", "freq MHz",
                 "cycles", "RNS towers@128b", "efficiency*", "silicon"});
  for (const auto& d : eval::published_table()) {
    const bool is_cofhee = d.name == "CoFHEE";
    const double e = is_cofhee ? eff : d.efficiency;
    t.row({d.name, d.technology, "2^" + std::to_string(d.max_log2_n),
           std::to_string(d.log_q_bits),
           d.area_mm2 > 0 ? eval::fmt(d.area_mm2, 1) + " mm^2" : "FPGA",
           eval::fmt(d.freq_mhz, 0),
           std::to_string(is_cofhee ? measured_cycles : d.ntt_cycles),
           std::to_string(eval::rns_towers(d.log_q_bits, nf.target_width_bits)),
           e > 0 ? eval::fmt_sci(e, 2) : "n/a", d.silicon_proven ? "yes" : "no"});
  }
  t.print();
  std::printf("* NTT ops / ns / mm^2, normalized (area/%.1f, delay/%.1f for "
              "CoFHEE's 55nm PE).\n", nf.area_scale, nf.delay_scale);
  std::printf("CoFHEE efficiency computed here: %.2e (paper: 4.54e-4)\n", eff);

  eval::section("Normalized speedups (paper Section VII)");
  eval::Table s({"vs", "computed", "paper"});
  const struct {
    const char* name;
    double paper;
  } cmp[] = {{"F1", 6.3}, {"CraterLake", 1.39}, {"BTS", 46.19}, {"ARK", 4.72}};
  for (const auto& c : cmp) {
    for (const auto& d : eval::published_table()) {
      if (d.name == c.name) {
        s.row({c.name, eval::fmt(eff / d.efficiency, 2) + "x",
               eval::fmt(c.paper, 2) + "x"});
      }
    }
  }
  s.print();
  std::puts("The edge over F1 is attributed to the pipelined Barrett multiplier\n"
            "vs an iterative Montgomery design (see bench_micro_kernels for the\n"
            "Barrett/Montgomery ablation), and CoFHEE's 0.07 mm^2 AHB-Lite\n"
            "crossbar vs F1's 3x 3.33 mm^2 crossbars (Section III-G1).");
  return 0;
}
