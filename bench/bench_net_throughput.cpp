// Front-door cost accounting: what the wire protocol adds on top of the
// in-process evaluation service.
//
// The same seeded batch of EvalMult+relin requests is run two ways --
// submitted directly to EvalService, and round-tripped through a real
// loopback TCP EvalServer -- and the regression-tracked numbers are the
// *deterministic* ones: wire bytes per request (framing + codec overhead
// over the raw ciphertext payload), frame counts, the simulated service
// seconds (identical on both paths: the transport must not perturb the
// model), and the tenancy books for a deliberately throttled tenant.
// Host wall-clock round-trip throughput is printed for orientation but
// kept out of the JSON, since it depends on the machine.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bfv/encoder.hpp"
#include "eval/report.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/service_export.hpp"
#include "service/eval_service.hpp"

int main(int argc, char** argv) {
  using namespace cofhee;
  bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();

  bfv::Bfv scheme(bfv::BfvParams::test_tiny(64), /*seed=*/33);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  constexpr std::size_t kRequests = 16;
  std::vector<service::EvalRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i)
    requests.push_back({scheme.encrypt(pk, enc.encode(static_cast<std::int64_t>(i + 2))),
                        scheme.encrypt(pk, enc.encode(7)),
                        service::RequestKind::kMultRelin});

  // Wire-format overhead is a pure function of the payload shapes.
  net::SubmitFrame sf;
  sf.requests = requests;
  const std::size_t submit_bytes = net::kHeaderSize + net::encode_submit(sf).size();
  std::size_t raw_bytes = 0;
  for (const auto& r : requests)
    for (const auto* ct : {&r.a, &r.b})
      for (const auto& p : ct->c)
        for (const auto& tw : p.towers) raw_bytes += tw.size() * sizeof(std::uint64_t);
  const double overhead =
      static_cast<double>(submit_bytes) / static_cast<double>(raw_bytes) - 1.0;

  // --- In-process baseline ----------------------------------------------
  const auto run_local = [&] {
    service::ChipFarm farm(2);
    service::ServiceOptions sopts;
    sopts.relin_keys = &rk;
    service::EvalService svc(scheme, farm, sopts);
    auto futures = svc.submit_batch(requests);
    for (auto& f : futures) (void)f.get();
    svc.drain();
    return svc.stats();
  };
  const auto t0 = std::chrono::steady_clock::now();
  const service::ServiceStats local = run_local();
  const double local_wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

  // --- The same batch through the socket --------------------------------
  service::ChipFarm farm(2);
  service::ServiceOptions sopts;
  sopts.relin_keys = &rk;
  sopts.tenancy.per_tenant[9] =
      service::TenantLimits{/*rate_per_sec=*/1e-9, /*burst=*/2, /*max_pending=*/0};
  service::EvalService svc(scheme, farm, sopts);
  net::EvalServer server(svc);

  const auto t1 = std::chrono::steady_clock::now();
  net::EvalClient cli("127.0.0.1", server.port());
  cli.hello({service::Priority::kNormal, /*tenant=*/1, /*weight=*/1});
  const auto results = cli.submit_batch(requests);
  const double wire_wall = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t1)
                               .count();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < results.size(); ++i)
    if (results[i].ok &&
        enc.decode(scheme.decrypt(sk, results[i].value)) ==
            static_cast<std::int64_t>((i + 2) * 7))
      ++correct;

  // Tenancy teeth under load: tenant 9 admits exactly its burst of 2.
  std::size_t rate_rejects = 0;
  const std::vector<service::EvalRequest> one{requests[0]};
  for (int i = 0; i < 5; ++i) {
    try {
      (void)cli.submit_batch(one, {service::Priority::kLow, /*tenant=*/9, /*weight=*/1});
    } catch (const net::RejectError&) {
      ++rate_rejects;
    }
  }
  cli.bye();
  svc.drain();
  const service::ServiceStats remote = svc.stats();
  obs::export_service_stats(remote, io.registry());
  server.stop();
  const net::NetServerStats ns = server.stats();

  eval::section("Front door -- wire cost vs in-process (n = 64 model ring)");
  eval::Table t({"path", "requests", "correct", "sim io s", "sim compute ms",
                 "wall ms"});
  t.row({"in_process", std::to_string(kRequests), std::to_string(kRequests),
         eval::fmt(local.io_seconds, 6), eval::fmt(local.compute_seconds * 1e3, 3),
         eval::fmt(local_wall * 1e3, 2)});
  t.row({"tcp_loopback", std::to_string(kRequests), std::to_string(correct),
         eval::fmt(remote.io_seconds, 6), eval::fmt(remote.compute_seconds * 1e3, 3),
         eval::fmt(wire_wall * 1e3, 2)});
  t.print();
  std::printf(
      "\nsubmit frame: %zu bytes for %zu raw ciphertext bytes (%.2f%% framing\n"
      "overhead); rate-limited tenant 9: %zu of 5 extras rejected; server\n"
      "frames rx/tx %llu/%llu.  Wall times are informational only -- the\n"
      "regression-tracked JSON carries the machine-independent numbers.\n",
      submit_bytes, raw_bytes, overhead * 100.0, rate_rejects,
      static_cast<unsigned long long>(ns.frames_rx),
      static_cast<unsigned long long>(ns.frames_tx));

  metrics.set("wire/submit_bytes", static_cast<double>(submit_bytes));
  metrics.set("wire/raw_ciphertext_bytes", static_cast<double>(raw_bytes));
  metrics.set("wire/framing_overhead_frac", overhead);
  metrics.set("wire/correct_results", static_cast<double>(correct));
  metrics.set("wire/rate_limited_rejects", static_cast<double>(rate_rejects));
  metrics.set("wire/server_frames_rx", static_cast<double>(ns.frames_rx));
  metrics.set("wire/server_frames_tx", static_cast<double>(ns.frames_tx));
  metrics.set("wire/server_rejects_sent", static_cast<double>(ns.rejects_sent));
  metrics.set("local/sim_io_seconds", local.io_seconds);
  metrics.set("local/sim_compute_ms", local.compute_seconds * 1e3);
  metrics.set("remote/sim_io_seconds", remote.io_seconds);
  metrics.set("remote/sim_compute_ms", remote.compute_seconds * 1e3);
  metrics.set("remote/completed", static_cast<double>(remote.completed));
  metrics.set("remote/rejected_rate_limited",
              static_cast<double>(remote.rejected_rate_limited));
  return io.finish() ? 0 : 1;
}
