// Reproduces paper Fig. 6: ciphertext multiplication (without
// relinearization) -- CPU software baseline vs one CoFHEE instance, for
// (n, log q) = (2^12, 109) and (2^13, 218).
//
//  * CoFHEE side: the chip model runs Algorithm 3 per 128-bit tower
//    (1 tower at log q = 109; 2 towers at 218), exactly as the silicon
//    measurement did.  Power comes from the chip's event-energy model.
//  * CPU side: the from-scratch 64-bit RNS kernel (SEAL 3.7 stand-in;
//    2 towers of 54/55 bits, resp. 4 of ~55 bits) measured on this
//    machine at 1/4/16 threads, plus the paper-calibrated analytic model
//    that regenerates the published Ryzen 7 5800H numbers (this container
//    may not have 16 hardware threads -- the model carries the shape).
//  * Fig. 6b: power and the power-delay product (PDP).
#include <chrono>
#include <cstdio>
#include <thread>

#include "backend/cpu_backend.hpp"
#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "bench_util.hpp"
#include "eval/report.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace {

using namespace cofhee;
using driver::u128;

struct Config {
  std::size_t n;
  unsigned log_q;
  std::vector<unsigned> cpu_tower_bits;   // SEAL-style 64-bit split
  unsigned cofhee_towers;                 // 128-bit towers
  double paper_seal_1t_ms;
  double paper_cofhee_ms;
  double paper_seal_w;
  double paper_cofhee_mw;
};

const Config kConfigs[] = {
    {1u << 12, 109, {54, 55}, 1, 1.5, 0.84, 1.48, 22.0},
    {1u << 13, 218, {54, 54, 55, 55}, 2, 6.91, 3.58, 2.30, 21.2},
};

struct CofheeResult {
  double ms;
  double mw;
};

CofheeResult run_cofhee(const Config& cfg) {
  // One 128-bit tower per ceil(log q / 128) -- Section III-C's argument for
  // the wide multiplier.  Towers run sequentially on the single PE.
  const unsigned tower_bits = cfg.log_q / cfg.cofhee_towers;
  double total_ms = 0;
  double energy_uj = 0, total_cycles = 0;
  for (unsigned tw = 0; tw < cfg.cofhee_towers; ++tw) {
    const u128 q = nt::find_ntt_prime_u128(tower_bits, cfg.n, tw);
    chip::CofheeChip soc;
    driver::HostDriver drv(soc);
    drv.configure_ring(q, cfg.n, nt::primitive_2nth_root(q, cfg.n));
    poly::Rng rng(1000 + tw);
    for (auto b : {chip::Bank::kSp0, chip::Bank::kSp1, chip::Bank::kSp2,
                   chip::Bank::kSp3})
      soc.load_coeffs(b, 0, poly::sample_uniform128(rng, cfg.n, q));
    soc.reset_metrics();
    const auto rep = drv.ciphertext_mul();
    total_ms += rep.compute_ms;
    const auto pw = soc.power_trace().report();
    energy_uj += pw.energy_uj;
    total_cycles += static_cast<double>(pw.cycles);
  }
  const double avg_mw = energy_uj * 1e6 / (total_cycles * 4.0);  // pJ/ns
  return {total_ms, avg_mw};
}

double measure_cpu_ms(const Config& cfg, unsigned threads) {
  std::vector<nt::u64> moduli;
  for (std::size_t i = 0; i < cfg.cpu_tower_bits.size(); ++i)
    moduli.push_back(nt::find_ntt_prime_u64(cfg.cpu_tower_bits[i], cfg.n, i));
  // The kernel carries its execution policy: serial reference at 1 thread,
  // pooled above (the ExecPolicy path the BFV stack itself runs on).
  const auto policy = threads <= 1 ? backend::ExecPolicy::serial()
                                   : backend::ExecPolicy::pooled(threads);
  backend::CpuTensorKernel kernel(cfg.n, moduli, policy);

  poly::Rng rng(7);
  auto mk = [&] {
    poly::RnsPoly p;
    for (auto q : moduli) p.towers.push_back(poly::sample_uniform(rng, cfg.n, q));
    return p;
  };
  const auto a0 = mk(), a1 = mk(), b0 = mk(), b1 = mk();

  // Warm-up + best-of-5 (matching how short kernels are usually timed).
  (void)kernel.multiply(a0, a1, b0, b1);
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)kernel.multiply(a0, a1, b0, b1);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  cofhee::bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u (paper baseline: Ryzen 7 5800H, 16T)\n", hw);

  backend::CpuTimeModel time_model;
  backend::CpuPowerModel power_model;

  for (const auto& cfg : kConfigs) {
    eval::section("Fig. 6a -- time for all towers, (n, log q) = (2^" +
                  std::to_string(nt::log2_exact(cfg.n)) + ", " +
                  std::to_string(cfg.log_q) + ")");
    const auto hw_res = run_cofhee(cfg);

    eval::Table t({"impl", "threads", "towers", "measured ms", "modelled ms",
                   "paper ms"});
    for (unsigned threads : {1u, 4u, 16u}) {
      const double meas = measure_cpu_ms(cfg, threads);
      const double model = time_model.ms(cfg.paper_seal_1t_ms, threads);
      t.row({"CPU baseline (SEAL role)", std::to_string(threads),
             std::to_string(cfg.cpu_tower_bits.size()), eval::fmt(meas, 2),
             eval::fmt(model, 2), threads == 1 ? eval::fmt(cfg.paper_seal_1t_ms, 2)
                                               : "(fig)"});
    }
    t.row({"CoFHEE (1 PE, chip model)", "-", std::to_string(cfg.cofhee_towers),
           eval::fmt(hw_res.ms, 2), eval::fmt(hw_res.ms, 2),
           eval::fmt(cfg.paper_cofhee_ms, 2)});
    t.print();

    eval::section("Fig. 6b -- power and PDP");
    eval::Table p({"impl", "threads", "power", "paper", "PDP (W*ms)",
                   "paper PDP"});
    const double seal_w = power_model.watts(cfg.n, cfg.cpu_tower_bits.size(), 1);
    const double seal_pdp = cfg.paper_seal_1t_ms * seal_w;
    const double paper_pdp = cfg.paper_seal_1t_ms * cfg.paper_seal_w;
    p.row({"CPU baseline", "1", eval::fmt(seal_w, 2) + " W",
           eval::fmt(cfg.paper_seal_w, 2) + " W", eval::fmt(seal_pdp, 2),
           eval::fmt(paper_pdp, 2)});
    for (unsigned threads : {4u, 16u}) {
      const double w = power_model.watts(cfg.n, cfg.cpu_tower_bits.size(), threads);
      const double ms = time_model.ms(cfg.paper_seal_1t_ms, threads);
      p.row({"CPU baseline", std::to_string(threads), eval::fmt(w, 2) + " W",
             "(fig)", eval::fmt(w * ms, 2), "(fig)"});
    }
    const double cofhee_pdp_wms = hw_res.ms * hw_res.mw * 1e-3;
    const double paper_cofhee_pdp = cfg.paper_cofhee_ms * cfg.paper_cofhee_mw * 1e-3;
    p.row({"CoFHEE", "-", eval::fmt(hw_res.mw, 1) + " mW",
           eval::fmt(cfg.paper_cofhee_mw, 1) + " mW",
           eval::fmt_sci(cofhee_pdp_wms, 2), eval::fmt_sci(paper_cofhee_pdp, 2)});
    p.print();

    const double adv =
        (cfg.paper_seal_1t_ms * seal_w) / (hw_res.ms * hw_res.mw * 1e-3);
    std::printf("PDP advantage of CoFHEE over 1-thread CPU: %.0fx "
                "(paper: 2-3 orders of magnitude)\n", adv);

    // Regression-tracked metrics: the chip-model and analytic-model outputs
    // only (wall-clock 'measured ms' is machine-dependent and excluded).
    const std::string key = "logq" + std::to_string(cfg.log_q) + "/";
    metrics.set(key + "cofhee_ms", hw_res.ms);
    metrics.set(key + "cofhee_mw", hw_res.mw);
    metrics.set(key + "cofhee_pdp_wms", cofhee_pdp_wms);
    metrics.set(key + "seal_w_1t", seal_w);
    for (unsigned threads : {1u, 4u, 16u}) {
      metrics.set(key + "modelled_ms_" + std::to_string(threads) + "t",
                  time_model.ms(cfg.paper_seal_1t_ms, threads));
      metrics.set(key + "model_w_" + std::to_string(threads) + "t",
                  power_model.watts(cfg.n, cfg.cpu_tower_bits.size(), threads));
    }
    metrics.set(key + "pdp_advantage_1t", adv);
  }

  std::puts("\nNotes:\n"
            " * 'measured ms' is this machine's wall clock on the from-scratch\n"
            "   RNS kernel (no AVX, possibly fewer cores than the paper's CPU);\n"
            " * 'modelled ms' is the paper-calibrated Amdahl model that carries\n"
            "   the published Ryzen numbers and thread-scaling shape;\n"
            " * CPU watts come from the powertop-calibrated model (DESIGN.md).");
  return io.finish() ? 0 : 1;
}
