// Host kernel dispatch: scalar unfused vs fused-scalar vs fused+SIMD, per
// ring size, on the BFV tensor workload of one 64-bit RNS tower (4 forward
// NTT + 4 pointwise + 3 inverse NTT -- the hot loop behind Bfv::multiply).
//
//  * scalar      -- NegacyclicNtt64, the unfused Shoup-multiplication
//                   reference path (one transform / pointwise pass at a
//                   time, canonical residues between every stage).
//  * fused       -- MergedNtt64::tensor pinned to the scalar ISA lane:
//                   lazy-reduction butterflies + the single-pass tensor
//                   structure, no vector instructions.
//  * fused+simd  -- the same tensor on the best ISA lane this CPU has
//                   (AVX2/NEON; identical to `fused` in a COFHEE_SIMD=OFF
//                   build, which is exactly the differential CI wants).
//
// The bench asserts in-binary that fused+simd is at least as fast as the
// scalar reference on every scenario (with a small tolerance for timer
// noise) -- a regression here fails `ctest -L bench` even before the JSON
// diff runs.  Wall-clock milliseconds are machine-dependent and stay out of
// the regression JSON; the deterministic modular-multiplication counts and
// per-coefficient pass counts (the model of *why* the fused path wins) are
// what bench_diff.py tracks.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/report.hpp"
#include "nt/primes.hpp"
#include "nt/simd.hpp"
#include "poly/merged_ntt.hpp"
#include "poly/ntt.hpp"
#include "poly/sampler.hpp"

namespace {

using namespace cofhee;
using poly::Coeffs;
using poly::u64;

struct Scenario {
  std::size_t n;
  unsigned bits;
  int reps;  // best-of repetitions (smaller rings get more)
};

const Scenario kScenarios[] = {
    {1u << 10, 59, 40},
    {1u << 12, 59, 15},
    {1u << 13, 59, 8},
};

struct Operands {
  Coeffs<u64> a0, a1, b0, b1;
};

Operands make_operands(std::size_t n, u64 q) {
  poly::Rng rng(0xD15'BA7C4);
  return {poly::sample_uniform(rng, n, q), poly::sample_uniform(rng, n, q),
          poly::sample_uniform(rng, n, q), poly::sample_uniform(rng, n, q)};
}

/// Unfused scalar reference tensor: 4 forward + 4 pointwise + 3 inverse,
/// each its own pass, exactly how the pre-fusion host path ran.
void tensor_unfused(const poly::NegacyclicNtt64& ntt, const Operands& op,
                    Coeffs<u64>& y0, Coeffs<u64>& y1, Coeffs<u64>& y2) {
  const auto& red = ntt.ring();
  Coeffs<u64> a0(op.a0), a1(op.a1), b0(op.b0), b1(op.b1);
  ntt.forward(a0);
  ntt.forward(a1);
  ntt.forward(b0);
  ntt.forward(b1);
  y0 = poly::pointwise_mul(red, a0, b0);
  y1 = poly::pointwise_mul(red, a0, b1);
  const auto cross = poly::pointwise_mul(red, a1, b0);
  for (std::size_t i = 0; i < y1.size(); ++i) y1[i] = red.add(y1[i], cross[i]);
  y2 = poly::pointwise_mul(red, a1, b1);
  ntt.inverse(y0);
  ntt.inverse(y1);
  ntt.inverse(y2);
}

template <class F>
double best_of_ms(int reps, F&& body) {
  body();  // warm-up
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  cofhee::bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();

  const nt::simd::Isa best = nt::simd::active_isa();
  std::printf("best ISA lane: %s (scalar lane always available)\n",
              nt::simd::isa_name(best));

  bool ok = true;
  for (const auto& sc : kScenarios) {
    const std::size_t n = sc.n;
    const unsigned logn = nt::log2_exact(n);
    const u64 q = nt::find_ntt_prime_u64(sc.bits, n);
    const u64 psi = nt::primitive_2nth_root(q, n);
    const nt::Barrett64 red(q);
    const poly::NegacyclicNtt64 scalar_ntt(red, n, psi);
    const poly::MergedNtt64 fused_ntt(red, n, psi);
    const Operands op = make_operands(n, q);

    Coeffs<u64> y0, y1, y2;
    const double scalar_ms = best_of_ms(
        sc.reps, [&] { tensor_unfused(scalar_ntt, op, y0, y1, y2); });

    if (!nt::simd::force_isa(nt::simd::Isa::kScalar))
      std::fprintf(stderr, "cannot pin scalar lane?\n");
    Coeffs<u64> f0, f1, f2;
    const double fused_ms = best_of_ms(
        sc.reps, [&] { fused_ntt.tensor(op.a0, op.a1, op.b0, op.b1, f0, f1, f2); });
    nt::simd::clear_forced_isa();
    Coeffs<u64> s0, s1, s2;
    const double simd_ms = best_of_ms(
        sc.reps, [&] { fused_ntt.tensor(op.a0, op.a1, op.b0, op.b1, s0, s1, s2); });

    // The three paths must agree bit-for-bit (the test battery holds this
    // contract too; the bench re-checks on its own operands for free).
    if (s0 != y0 || s1 != y1 || s2 != y2 || f0 != y0 || f1 != y1 || f2 != y2) {
      std::fprintf(stderr, "n=%zu: fused tensor != scalar reference\n", n);
      ok = false;
    }

    // Deterministic cost model (regression-tracked): both paths run the
    // same 7 * (n/2) * logn butterflies, 4n pointwise muls and 3n scaling
    // muls per tensor -- the fused win is per-butterfly work (lazy
    // reduction drops 2 conditional subtractions each) plus SIMD width,
    // not arithmetic count.  Wall clock is machine-dependent and excluded;
    // these counts pin the workload shape the timings were taken on.
    const std::uint64_t butterflies = 7ull * (n / 2) * logn;
    const std::uint64_t modmuls = butterflies + 7ull * n;
    const std::uint64_t lazy_csubs_saved = 2 * butterflies;
    const std::string key = "n" + std::to_string(n) + "/";
    metrics.set(key + "butterflies", static_cast<double>(butterflies));
    metrics.set(key + "modmuls", static_cast<double>(modmuls));
    metrics.set(key + "lazy_csubs_saved", static_cast<double>(lazy_csubs_saved));

    eval::section("kernel dispatch, n = 2^" + std::to_string(logn) +
                  " (one 59-bit tower, BFV tensor)");
    eval::Table t({"path", "lane", "best ms", "vs scalar"});
    t.row({"scalar unfused", "scalar", eval::fmt(scalar_ms, 3), "1.00x"});
    t.row({"fused", "scalar", eval::fmt(fused_ms, 3),
           eval::fmt(scalar_ms / fused_ms, 2) + "x"});
    t.row({"fused+simd", nt::simd::isa_name(best), eval::fmt(simd_ms, 3),
           eval::fmt(scalar_ms / simd_ms, 2) + "x"});
    t.print();

    // The hard floor: the shipped path may never lose to the reference it
    // replaced.  5% tolerance absorbs timer noise on the small rings.
    if (simd_ms > scalar_ms * 1.05) {
      std::fprintf(stderr,
                   "REGRESSION: n=%zu fused+simd %.3f ms slower than scalar "
                   "%.3f ms\n",
                   n, simd_ms, scalar_ms);
      ok = false;
    }
  }

  if (ok) std::puts("\nfused+simd >= scalar on every scenario: OK");
  return (io.finish() && ok) ? 0 : 1;
}
