// Reproduces paper Table IV (layout physical parameters) and the Fig. 3a
// floorplan: 68 memory macros shelf-packed into the core with the PLL
// corner keep-out, plus the pad inventory of Table IX.
#include <cstdio>

#include "eval/report.hpp"
#include "physical/floorplan.hpp"
#include "physical/power_grid.hpp"

int main() {
  using namespace cofhee;
  physical::Floorplanner fp;
  const auto r = fp.plan();

  eval::section("Table IV -- layout physical parameters");
  eval::Table t({"parameter", "value", "paper"});
  t.row({"IU (initial utilization)", eval::fmt(45.0, 0) + " % (see Table III bench)",
         "45 %"});
  t.row({"FU (final utilization)", "59 % (see Table III bench)", "59 %"});
  t.row({"MA (macro area)", eval::fmt(r.macro_area_um2, 0) + " um^2",
         "8,941,959 um^2"});
  t.row({"HIO (IO pad height)", eval::fmt(r.io_pad_height_um, 0) + " um", "120 um"});
  t.row({"CIO (core-to-IO)", eval::fmt(r.core_to_io_um, 0) + " um", "10 um"});
  t.row({"A (aspect ratio)", eval::fmt(r.aspect_ratio, 2), "1.05"});
  t.row({"CA (std cell area)", eval::fmt(r.stdcell_area_um2, 0) + " um^2",
         "1,963,585 um^2"});
  t.row({"CW (core width)", eval::fmt(r.core_w_um, 0) + " um", "3400 um"});
  t.row({"CH (core height)", eval::fmt(r.core_h_um, 0) + " um", "3582 um"});
  t.row({"DW (die width)", eval::fmt(r.die_w_um, 0) + " um", "3660 um"});
  t.row({"DH (die height)", eval::fmt(r.die_h_um, 0) + " um", "3842 um"});
  t.print();

  eval::section("Macro placement summary (Fig. 3a / Section V-A)");
  double max_y = 0;
  for (const auto& m : r.macros) max_y = std::max(max_y, m.rect.y + m.rect.h);
  std::printf("macros placed: %u (paper: 68)\n", r.macro_count);
  std::printf("macro rows occupy %.0f of %.0f um core height (%.0f%%)\n", max_y,
              r.core_h_um, 100.0 * max_y / r.core_h_um);
  std::printf("pads: %u signal + %u power/ground + %u PLL bias (Table IX: 26/11/8)\n",
              r.signal_pads, r.pg_pads, r.pll_bias_pads);
  std::printf("die area incl. seal ring: %.1f mm^2 (paper: ~15 mm^2 gross, 12 mm^2 "
              "quoted design area)\n", r.die_w_um * r.die_h_um * 1e-6);

  eval::section("Power-delivery network (Section V-B, Fig. 3b/3d/3e)");
  physical::PowerGrid grid;
  const auto pg = grid.analyze(r);
  std::printf("rings: 4 VDD/VSS pairs on BA/BB; straps: %u+%u BA/BB @30um, "
              "%u+%u M4/M5 @50um\n", pg.top_straps_x, pg.top_straps_y,
              pg.mid_straps_x, pg.mid_straps_y);
  std::printf("macro channels powered: %u / %u (paper: every channel "
              "covered after flow modification)\n", pg.macro_channels_covered,
              pg.macro_channels_total);
  std::printf("worst static IR drop at the 30.4 mW Table V peak: %.1f mV "
              "(%.2f%% of 1.2 V; within the 5%% budget)\n", pg.worst_ir_drop_mv,
              pg.ir_drop_pct);
  std::printf("effective pad-to-sink resistance: %.0f mOhm\n",
              pg.effective_resistance_mohm);
  return 0;
}
