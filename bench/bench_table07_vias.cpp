// Reproduces paper Table VII: redundant-via conversion statistics per cut
// layer (yield optimization, Section V-C).
#include <cstdio>

#include "eval/report.hpp"
#include "physical/via_model.hpp"

int main() {
  using namespace cofhee;
  physical::ViaModel vm;
  const auto stats = vm.run();

  const struct {
    const char* layer;
    unsigned multi, total;
    double pct;
  } paper[] = {{"V1", 21659, 21945, 98.70}, {"V2", 21732, 21844, 99.49},
               {"V3", 21991, 22035, 99.80}, {"V4", 26391, 26455, 99.76},
               {"WT", 2438, 2450, 99.51},   {"WA", 1390, 1393, 99.78}};

  eval::section("Table VII -- redundant via statistics");
  eval::Table t({"layer", "multi-cut", "paper", "total", "multi-cut %", "paper %"});
  for (std::size_t i = 0; i < stats.size(); ++i) {
    t.row({stats[i].layer, std::to_string(stats[i].multi_cut),
           std::to_string(paper[i].multi), std::to_string(stats[i].total),
           eval::fmt(stats[i].percent(), 2), eval::fmt(paper[i].pct, 2)});
  }
  t.print();
  std::puts("Monte-Carlo conversion with layer-dependent congestion blocking;\n"
            "lower via layers convert at >98.7% as in the fabricated design.");
  return 0;
}
