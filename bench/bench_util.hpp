// Shared CLI plumbing for the bench binaries.
//
// Every bench grows the same artifact flags; this header keeps the parsing
// and the write-out in one place so a new bench gets all of them for free:
//
//   --json <path>         flat regression metrics, diffed by
//                         tools/bench_diff.py against bench/reference/
//   --trace <path>        Chrome trace-event JSON of the run (load in
//                         chrome://tracing or https://ui.perfetto.dev);
//                         lintable with tools/trace_lint.py
//   --metrics-out <path>  Prometheus text exposition of the final
//                         ServiceStats (obs::MetricsRegistry::render)
//   --chips <n>           restrict chip-count sweeps (benches that sweep
//                         read it via chips(); others ignore it)
//
// A TraceRecorder is constructed only when --trace is given, so the traced
// code paths stay on their single-pointer-check fast path by default.  In a
// COFHEE_TRACING=0 build the flag still parses and the output file is a
// valid empty trace.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "eval/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cofhee::bench {

class BenchIo {
 public:
  BenchIo(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--json") {
        json_path_ = argv[i + 1];
      } else if (a == "--trace") {
        trace_path_ = argv[i + 1];
      } else if (a == "--metrics-out") {
        metrics_path_ = argv[i + 1];
      } else if (a == "--chips") {
        chips_ = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
      }
    }
    if (!trace_path_.empty()) recorder_ = std::make_unique<obs::TraceRecorder>();
  }

  /// Regression-metric sink; written to the --json path by finish().
  [[nodiscard]] eval::MetricsJson& metrics() noexcept { return metrics_; }

  /// The run's trace recorder, or nullptr when --trace was not given.
  /// Plumb into ServiceOptions::trace; export happens in finish().
  [[nodiscard]] obs::TraceRecorder* trace() noexcept { return recorder_.get(); }

  /// Prometheus registry; rendered to the --metrics-out path by finish().
  /// Feed it with obs::export_service_stats(svc.stats(), io.registry()).
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }

  /// --chips override, or `fallback` when the flag was absent or zero.
  [[nodiscard]] std::size_t chips(std::size_t fallback) const noexcept {
    return chips_ != 0 ? chips_ : fallback;
  }

  /// Write every requested artifact.  Returns false (with a message on
  /// stderr) if any write failed -- benches `return io.finish() ? 0 : 1;`.
  /// Call only at quiescence (services drained): trace export requires it.
  [[nodiscard]] bool finish() {
    bool ok = true;
    if (!json_path_.empty() && !metrics_.write(json_path_)) {
      std::fprintf(stderr, "failed to write %s\n", json_path_.c_str());
      ok = false;
    }
    if (recorder_ != nullptr && !recorder_->write_json_file(trace_path_)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path_.c_str());
      ok = false;
    }
    if (!metrics_path_.empty()) {
      std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
      const std::string text = registry_.render_text();
      if (f == nullptr || std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
        std::fprintf(stderr, "failed to write %s\n", metrics_path_.c_str());
        ok = false;
      }
      if (f != nullptr) std::fclose(f);
    }
    return ok;
  }

 private:
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  std::size_t chips_ = 0;
  eval::MetricsJson metrics_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

}  // namespace cofhee::bench
