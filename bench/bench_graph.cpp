// Homomorphic-program throughput: CryptoNets inference and logistic
// scoring built as expression graphs and driven through the chip farm.
//
// Each scenario packs a batch of independent inputs (images / patient
// feature vectors) into ONE graph: compile() levels every image's ops into
// shared rounds, so round k of the whole batch reaches the farm as a
// single submit_batch and the scheduler spreads it across however many
// chips exist.  Reported rates are per *simulated* second of farm pipeline
// span (link byte accounting + chip cycle model + deterministic host cost
// model) -- machine-independent and regression-tracked, like the other
// benches.
//
//   cryptonets_{1,2,4}chip -- a 4-image batch through the square-activation
//                          network; one kMultRelin chip op per hidden
//                          neuron per image, all squarings, so every chip
//                          op rides the SRAM scratch-reuse path (B banks
//                          synthesized by on-chip DMA, serial uploads
//                          halved: sram_reuses > 0 in the stats).
//   logreg_{1,2,4}chip   -- an 8-patient batch of linear score + cubic
//                          sigmoid; two chip rounds per patient (z^2, then
//                          z * (3 - z^2)) with the host add/negate/plain
//                          work leveled between them.
//
// Acceptance bars: the multi-chip rates must be >= the single-chip
// baseline for both applications (farm scaling never loses throughput),
// checked here and regression-tracked via tools/bench_diff.py.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cryptonets.hpp"
#include "apps/logreg.hpp"
#include "bench_util.hpp"
#include "eval/report.hpp"
#include "graph/executor.hpp"
#include "obs/service_export.hpp"
#include "service/eval_service.hpp"

namespace {

using namespace cofhee;

struct Run {
  service::ServiceStats stats;
  graph::GraphRunStats graph_stats;
  double per_sec = 0;  // batch items per simulated pipeline second
};

Run run_graph(const bfv::Bfv& scheme, const bfv::RelinKeys& rk, const graph::Graph& g,
              const std::vector<bfv::Ciphertext>& inputs, std::size_t chips,
              std::size_t items, obs::TraceRecorder* trace) {
  const auto cg = graph::compile(g);
  service::ChipFarm farm(chips);
  service::ServiceOptions opts;
  opts.relin_keys = &rk;
  opts.trace = trace;
  service::EvalService svc(scheme, farm, opts);
  graph::GraphExecutor ex(scheme, svc);
  Run r;
  (void)ex.run(cg, inputs, {}, &r.graph_stats);
  svc.drain();
  r.stats = svc.stats();
  r.per_sec = static_cast<double>(items) / r.stats.pipeline_span_seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cofhee::bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();

  bfv::Bfv scheme(bfv::BfvParams::paper_small(), /*seed=*/42);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  const auto enc_scalar = [&](std::int64_t v) {
    bfv::Plaintext p;
    p.coeffs.assign(scheme.context().n(), 0);
    const auto t = static_cast<std::int64_t>(scheme.context().t());
    std::int64_t r = v % t;
    if (r < 0) r += t;
    p.coeffs[0] = static_cast<nt::u64>(r);
    return scheme.encrypt(pk, p);
  };

  // CryptoNets: a 4-image batch through one graph.
  constexpr std::size_t kImages = 4;
  const apps::NetworkConfig net_cfg{8, 4, 2, /*weight_seed=*/42};
  apps::CryptoNet net(scheme.context(), net_cfg);
  graph::Graph cn_graph;
  std::vector<bfv::Ciphertext> cn_inputs;
  for (std::size_t img = 0; img < kImages; ++img) {
    std::vector<graph::NodeId> ins;
    for (std::size_t i = 0; i < net_cfg.inputs; ++i) ins.push_back(cn_graph.input());
    (void)net.build_graph(cn_graph, ins);
    for (std::size_t i = 0; i < net_cfg.inputs; ++i)
      cn_inputs.push_back(enc_scalar(static_cast<std::int64_t>((img * 7 + i) % 5) - 2));
  }

  // Logistic regression: an 8-patient batch of score + sigmoid.
  constexpr std::size_t kPatients = 8;
  const std::vector<std::int64_t> weights = {3, -2, 5, 1, -4, 2, 0, -1};
  apps::LogisticModel model(scheme.context(), weights, /*bias=*/-4);
  graph::Graph lr_graph;
  std::vector<bfv::Ciphertext> lr_inputs;
  for (std::size_t p = 0; p < kPatients; ++p) {
    std::vector<graph::NodeId> feats;
    for (std::size_t i = 0; i < weights.size(); ++i) feats.push_back(lr_graph.input());
    const auto z = model.build_score_graph(lr_graph, feats);
    lr_graph.mark_output(model.build_sigmoid_graph(lr_graph, z));
    for (std::size_t i = 0; i < weights.size(); ++i)
      lr_inputs.push_back(enc_scalar(static_cast<std::int64_t>((p + i) % 7) - 3));
  }

  eval::section("Homomorphic programs through the farm, n = 4096 (simulated)");
  eval::Table t({"scenario", "chips", "rounds", "chip reqs", "squares", "sram reuse",
                 "io s", "span s", "items/s", "speedup"});

  const struct {
    const char* app;
    const graph::Graph* g;
    const std::vector<bfv::Ciphertext>* inputs;
    std::size_t items;
    const char* unit;
  } programs[] = {
      {"cryptonets", &cn_graph, &cn_inputs, kImages, "images_per_sec"},
      {"logreg", &lr_graph, &lr_inputs, kPatients, "predictions_per_sec"},
  };

  // Trace reconciliation accumulator: the recorder's "phase" track totals
  // must match the io + compute seconds every traced service recorded.
  double sim_total = 0;
  bool scaling_ok = true;
  for (const auto& prog : programs) {
    double base = 0;
    for (std::size_t chips : {1u, 2u, 4u}) {
      // --chips restricts the sweep (CI traces a single 2-chip run).
      if (io.chips(0) != 0 && chips != io.chips(0)) continue;
      const Run r =
          run_graph(scheme, rk, *prog.g, *prog.inputs, chips, prog.items, io.trace());
      sim_total += r.stats.io_seconds + r.stats.compute_seconds;
      obs::export_service_stats(r.stats, io.registry());
      if (base == 0) base = r.per_sec;
      const double speedup = r.per_sec / base;
      if (r.per_sec + 1e-12 < base) scaling_ok = false;
      const std::string name = std::string(prog.app) + "_" + std::to_string(chips) + "chip";
      t.row({name, std::to_string(chips), std::to_string(r.graph_stats.rounds),
             std::to_string(r.graph_stats.chip_requests),
             std::to_string(r.graph_stats.squares), std::to_string(r.stats.sram_reuses),
             eval::fmt(r.stats.io_seconds, 4), eval::fmt(r.stats.pipeline_span_seconds, 4),
             eval::fmt(r.per_sec, 2), eval::fmt(speedup, 2)});
      const std::string key = name + "/";
      metrics.set(key + prog.unit, r.per_sec);
      metrics.set(key + "pipeline_span_s", r.stats.pipeline_span_seconds);
      metrics.set(key + "io_seconds", r.stats.io_seconds);
      metrics.set(key + "chip_requests", static_cast<double>(r.graph_stats.chip_requests));
      metrics.set(key + "rounds", static_cast<double>(r.graph_stats.rounds));
      metrics.set(key + "sram_reuses", static_cast<double>(r.stats.sram_reuses));
      metrics.set(key + "speedup_vs_1chip", speedup);
    }
  }
  t.print();

  std::puts(
      "\nReading: one graph carries the whole batch, so each dependency\n"
      "round reaches the farm as a single submit_batch and scales with the\n"
      "chip count.  All CryptoNets chip ops are squarings: the chip\n"
      "synthesizes the second operand's SRAM banks by on-chip DMA (sram\n"
      "reuse column) instead of re-uploading them over the serial link.\n"
      "Rates are per simulated second (transport + cycle + host model),\n"
      "not host wall clock.");
  if (!scaling_ok) {
    std::fprintf(stderr, "FAIL: multi-chip throughput fell below the 1-chip baseline\n");
    return 1;
  }
  // Reconcile the trace against the stats: every driver phase span carries
  // exactly the io + compute it added to its ChipMulReport, so the "phase"
  // track total must match the summed ServiceStats to within 1% (it is
  // exact by construction; the margin absorbs float accumulation order).
  if (io.trace() != nullptr && obs::TraceRecorder::enabled()) {
    const double traced = io.trace()->sim_category_seconds("phase");
    if (std::abs(traced - sim_total) > 0.01 * sim_total) {
      std::fprintf(stderr,
                   "FAIL: trace phase total %.6fs vs stats io+compute %.6fs "
                   "(> 1%% apart)\n",
                   traced, sim_total);
      return 1;
    }
    std::printf("\ntrace reconciliation: phase spans %.6fs vs stats %.6fs OK\n",
                traced, sim_total);
  }
  return io.finish() ? 0 : 1;
}
