# CTest driver for net_quickstart_wire_lint: run the net_quickstart example
# against a real loopback EvalServer (it scrapes its own GET /metrics over
# HTTP and writes the exposition), then lint the scraped text with
# tools/wire_lint.py.  Split into a -P script because the two steps must
# share the artifact path and fail the test as one unit.
execute_process(
  COMMAND ${QUICKSTART} --metrics-out ${OUT_DIR}/net_quickstart.prom
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "net_quickstart run failed (rc=${run_rc})")
endif()
execute_process(
  COMMAND ${PYTHON} ${LINT} ${OUT_DIR}/net_quickstart.prom
  RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "wire_lint failed (rc=${lint_rc})")
endif()
