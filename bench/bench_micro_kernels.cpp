// google-benchmark micro kernels: the Barrett-vs-Montgomery design choice
// (paper Section IV-A), the two NTT organizations (merged psi twiddles vs
// explicit psi scaling, Algorithm 2), and the 64-bit tower primitives the
// CPU baseline is built from.
#include <benchmark/benchmark.h>

#include "nt/barrett.hpp"
#include "nt/montgomery.hpp"
#include "nt/primes.hpp"
#include "poly/merged_ntt.hpp"
#include "poly/ntt.hpp"
#include "poly/sampler.hpp"

namespace {

using namespace cofhee;
using nt::u128;
using nt::u64;

void BM_Barrett64Mul(benchmark::State& state) {
  const u64 q = nt::find_ntt_prime_u64(55, 4096);
  nt::Barrett64 br(q);
  poly::Rng rng(1);
  u64 a = rng.uniform_below(q), b = rng.uniform_below(q) | 1;
  for (auto _ : state) {
    a = br.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Barrett64Mul);

void BM_Montgomery64MulRaw(benchmark::State& state) {
  // Montgomery-domain operands (the favorable case for Montgomery).
  const u64 q = nt::find_ntt_prime_u64(55, 4096);
  nt::Montgomery64 mont(q);
  poly::Rng rng(2);
  u64 a = mont.to_mont(rng.uniform_below(q)), b = mont.to_mont(rng.uniform_below(q));
  for (auto _ : state) {
    a = mont.mul_raw(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Montgomery64MulRaw);

void BM_Montgomery64MulWithTransforms(benchmark::State& state) {
  // The cost the paper's Section IV-A rationale counts: operands must be
  // transformed into/out of the Montgomery domain.
  const u64 q = nt::find_ntt_prime_u64(55, 4096);
  nt::Montgomery64 mont(q);
  poly::Rng rng(3);
  u64 a = rng.uniform_below(q), b = rng.uniform_below(q) | 1;
  for (auto _ : state) {
    a = mont.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Montgomery64MulWithTransforms);

void BM_Barrett128Mul(benchmark::State& state) {
  // The chip's native datapath width.
  const u128 q = nt::find_ntt_prime_u128(109, 4096);
  nt::Barrett128 br(q);
  poly::Rng rng(4);
  u128 a = rng.uniform_u128_below(q), b = rng.uniform_u128_below(q) | 1;
  for (auto _ : state) {
    a = br.mul(a, b);
    benchmark::DoNotOptimize(&a);
  }
}
BENCHMARK(BM_Barrett128Mul);

void BM_ShoupMul(benchmark::State& state) {
  const u64 q = nt::find_ntt_prime_u64(55, 4096);
  poly::Rng rng(5);
  nt::ShoupMul sm(rng.uniform_below(q), q);
  u64 x = rng.uniform_below(q);
  for (auto _ : state) {
    x = sm.mul(x) | 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ShoupMul);

void BM_NegacyclicNtt64Forward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const u64 q = nt::find_ntt_prime_u64(55, n);
  nt::Barrett64 br(q);
  poly::NegacyclicNtt64 ntt(br, n, nt::primitive_2nth_root(q, n));
  poly::Rng rng(6);
  auto x = poly::sample_uniform(rng, n, q);
  for (auto _ : state) {
    ntt.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n / 2 * nt::log2_exact(n)));
}
BENCHMARK(BM_NegacyclicNtt64Forward)->Arg(1 << 12)->Arg(1 << 13);

void BM_MergedVsScaledNtt128(benchmark::State& state) {
  // Ablation: merged psi twiddles (one command) vs explicit psi scaling +
  // omega-only cyclic NTT (Algorithm 2 written literally).
  const std::size_t n = 1u << 10;
  const u128 q = nt::find_ntt_prime_u128(109, n);
  nt::Barrett128 br(q);
  const u128 psi = nt::primitive_2nth_root(q, n);
  poly::MergedNtt128 merged(br, n, psi);
  poly::CyclicNtt128 scaled(br, n, psi);
  poly::Rng rng(7);
  const auto a = poly::sample_uniform128(rng, n, q);
  const auto b = poly::sample_uniform128(rng, n, q);
  const bool use_merged = state.range(0) == 1;
  for (auto _ : state) {
    auto y = use_merged ? merged.negacyclic_mul(a, b) : scaled.negacyclic_mul(a, b);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MergedVsScaledNtt128)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
