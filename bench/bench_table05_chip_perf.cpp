// Reproduces paper Table V: CoFHEE latency (clock cycles, microseconds) and
// average/peak power for PolyMul, NTT, and iNTT at n = 2^12 and 2^13.
//
// The chip model executes the real operations (bit-exact arithmetic) with
// the calibrated structural cycle model; power comes from the event-energy
// model of src/chip/power.hpp.  Paper values are printed alongside.
#include <cstdio>
#include <vector>

#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "bench_util.hpp"
#include "eval/report.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

namespace {

using namespace cofhee;
using chip::Bank;
using driver::u128;

struct PaperRow {
  const char* algo;
  std::size_t n;
  double cc, us, avg_mw, peak_mw;
};

// Table V of the paper (silicon measurements).
const PaperRow kPaper[] = {
    {"PolyMul", 1u << 12, 83777, 335.1, 22.9, 30.4},
    {"NTT", 1u << 12, 24841, 99.4, 24.5, 30.4},
    {"iNTT", 1u << 12, 29468, 117.9, 19.9, 27.2},
    {"PolyMul", 1u << 13, 179045, 716.2, 21.2, 29.7},
    {"NTT", 1u << 13, 53535, 214.1, 24.4, 29.7},
    {"iNTT", 1u << 13, 62770, 251.1, 18.3, 23.9},
};

struct Measured {
  std::uint64_t cc;
  double us, avg_mw, peak_mw;
};

Measured run_op(const char* algo, std::size_t n) {
  const u128 q = nt::find_ntt_prime_u128(109, n);
  chip::CofheeChip soc;
  driver::HostDriver drv(soc);
  drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));

  poly::Rng rng(n);
  const auto a = poly::sample_uniform128(rng, n, q);
  const auto b = poly::sample_uniform128(rng, n, q);
  soc.load_coeffs(Bank::kSp0, 0, a);
  soc.load_coeffs(Bank::kSp1, 0, b);
  soc.load_coeffs(Bank::kDp0, 0, a);
  soc.reset_metrics();

  std::string op(algo);
  if (op == "PolyMul") {
    (void)drv.poly_mul();
  } else if (op == "NTT") {
    (void)drv.ntt({Bank::kDp0, 0}, {Bank::kDp1, 0});
  } else {
    // Transform first (untimed), then measure the inverse.
    (void)drv.ntt({Bank::kDp0, 0}, {Bank::kDp1, 0});
    soc.reset_metrics();
    (void)drv.intt({Bank::kDp1, 0}, {Bank::kDp0, 0});
  }

  const auto rep = soc.power_trace().report();
  Measured m;
  m.cc = soc.cycles();
  m.us = static_cast<double>(m.cc) * soc.config().cycle_ns() * 1e-3;
  m.avg_mw = rep.avg_mw;
  m.peak_mw = rep.peak_mw;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  cofhee::bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();

  eval::section("Table V -- CoFHEE performance & power, n = {2^12, 2^13}");
  eval::Table t({"algo", "n", "cycles", "paper cc", "err", "us", "paper us",
                 "avg mW", "paper", "err", "peak mW", "paper", "err"});
  for (const auto& row : kPaper) {
    const auto m = run_op(row.algo, row.n);
    t.row({row.algo, std::to_string(row.n), std::to_string(m.cc),
           eval::fmt(row.cc, 0), eval::pct_err(static_cast<double>(m.cc), row.cc),
           eval::fmt(m.us, 1), eval::fmt(row.us, 1), eval::fmt(m.avg_mw, 1),
           eval::fmt(row.avg_mw, 1), eval::pct_err(m.avg_mw, row.avg_mw),
           eval::fmt(m.peak_mw, 1), eval::fmt(row.peak_mw, 1),
           eval::pct_err(m.peak_mw, row.peak_mw)});
    const std::string key =
        std::string(row.algo) + "/n" + std::to_string(row.n) + "/";
    metrics.set(key + "cycles", static_cast<double>(m.cc));
    metrics.set(key + "us", m.us);
    metrics.set(key + "avg_mw", m.avg_mw);
    metrics.set(key + "peak_mw", m.peak_mw);
  }
  t.print();
  std::puts("Latency: structural cycle model (calibrated constants asserted by "
            "tests/chip/test_mdmc.cpp).\nPower: event-energy model fit; see "
            "DESIGN.md substitution register.");
  return io.finish() ? 0 : 1;
}
