# CTest driver for bench_graph_trace_lint: run bench_graph restricted to
# the 2-chip scenarios with trace + metrics export, then lint both
# artifacts with tools/trace_lint.py.  Split into a -P script because the
# two steps must share the artifact paths and fail the test as one unit.
execute_process(
  COMMAND ${BENCH} --chips 2
          --trace ${OUT_DIR}/bench_graph_2chip.trace.json
          --metrics-out ${OUT_DIR}/bench_graph_2chip.prom
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_graph --trace run failed (rc=${bench_rc})")
endif()
execute_process(
  COMMAND ${PYTHON} ${LINT} ${OUT_DIR}/bench_graph_2chip.trace.json
          --metrics ${OUT_DIR}/bench_graph_2chip.prom
  RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "trace_lint failed (rc=${lint_rc})")
endif()
