// Evaluation-service throughput at the IO-dominated operating point.
//
// ChipBfv.IoDominatesAtSmallRings (and the paper's Section VIII-A remark)
// says the serial link, not the PE, bounds EvalMult at n = 2^12.  This
// bench measures what the cofhee::service scheduler buys back there, in
// *simulated* seconds (link byte accounting + chip cycle model + the
// service's deterministic host cost model, so the numbers are
// machine-independent and regression-tracked):
//
//   serial_1chip        -- one EvalMult per session (the pre-service
//                          behavior): every request re-pays ring
//                          configuration per tower.
//   batched_1chip       -- one session per round: ring configuration
//                          amortized over the whole batch.
//   batched_4chip       -- kBatchPerChip over 4 chips: throughput scaling.
//   sharded_4chip       -- kShardTowers over 4 chips: latency scaling.
//   relin_batched_1chip -- Algorithm-2 key switching as its own request
//                          kind, batched through one chip (the batch-aware
//                          relin-key cache shares key uploads across the
//                          group: key_cache_hits > 0, io down).
//   multrelin_noverlap_1chip / multrelin_overlap_1chip -- the paper's
//                          complete EvalMult (tensor + key switch) with
//                          pipelined rounds off vs on: host base extension
//                          / rounding hidden under the previous round's
//                          chip stage.
//   multrelin_overlap_4chip -- overlap + farm scaling combined.
//   multrelin_depth4_1chip -- the K-slot session ring at depth 4 (chained
//                          chip stages, finishes deferred behind the ring).
//   hetero_roundrobin_4chip / hetero_loadaware_4chip -- a mixed farm (2x
//                          SPI at 250 MHz + 2x UART at 125 MHz): blind
//                          striding pays the slow link's makespan, the
//                          load-aware Placer routes towers to the cheap
//                          chips.
//   hetero_loadaware_depth4_4chip -- heterogeneous placement + the depth-4
//                          ring combined on full EvalMult traffic.
//
// Acceptance bars: batched EvalMult/sec >= the one-request-per-session
// baseline, pipelined end-to-end throughput >= the non-overlapped
// schedule (at every depth), and load-aware placement >= round-robin on
// the heterogeneous farm, all at n = 4096.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bfv/encoder.hpp"
#include "eval/report.hpp"
#include "obs/service_export.hpp"
#include "service/eval_service.hpp"

namespace {

using namespace cofhee;
using service::RequestKind;
using service::Strategy;

struct Scenario {
  const char* name;
  std::size_t chips;
  Strategy strategy;
  std::size_t max_batch;
  RequestKind kind;
  bool overlap;
  std::size_t depth = 2;  // session-ring depth (2 = classic double buffer)
  bool hetero = false;    // back half of the farm on UART at 125 MHz
  service::Placement placement = service::Placement::kLoadAware;
};

service::ChipFarm make_farm(const Scenario& sc) {
  if (!sc.hetero) return service::ChipFarm(sc.chips);
  std::vector<service::ChipSpec> specs(sc.chips);
  for (std::size_t c = sc.chips / 2; c < sc.chips; ++c) {
    specs[c].link = cofhee::driver::Link::kUart;
    specs[c].cfg.freq_mhz = 125.0;
  }
  return service::ChipFarm(specs);
}

struct Run {
  service::ServiceStats stats;
  double evalmult_per_sec;  // chip-axis throughput (farm makespan)
  double e2e_per_sec;       // pipeline-model end-to-end throughput
};

Run run_scenario(const bfv::Bfv& scheme, const bfv::RelinKeys& rk, const Scenario& sc,
                 const std::vector<service::EvalRequest>& requests,
                 obs::TraceRecorder* trace) {
  service::ChipFarm farm = make_farm(sc);
  service::ServiceOptions opts;
  opts.strategy = sc.strategy;
  opts.max_batch = sc.max_batch;
  opts.relin_keys = &rk;
  opts.overlap_rounds = sc.overlap;
  opts.pipeline_depth = sc.depth;
  opts.placement = sc.placement;
  opts.trace = trace;
  service::EvalService svc(scheme, farm, opts);
  std::vector<service::EvalRequest> reqs = requests;
  for (auto& r : reqs) r.kind = sc.kind;
  if (sc.kind == RequestKind::kRelinearize)
    for (auto& r : reqs) {
      r.a = scheme.multiply(r.a, r.b);
      r.b = {};
    }
  auto futures = svc.submit_batch(reqs);
  for (auto& f : futures) (void)f.get();
  svc.drain();
  Run r;
  r.stats = svc.stats();
  r.evalmult_per_sec = r.stats.simulated_requests_per_sec();
  r.e2e_per_sec = r.stats.e2e_requests_per_sec();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cofhee::bench::BenchIo io(argc, argv);
  eval::MetricsJson& metrics = io.metrics();

  // The Fig. 6 small configuration: n = 2^12, log q = 109 -> 5 extended
  // towers, squarely in the IO-dominated regime.
  bfv::Bfv scheme(bfv::BfvParams::paper_small(), /*seed=*/42);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());
  const auto ca = scheme.encrypt(pk, enc.encode(1234));
  const auto cb = scheme.encrypt(pk, enc.encode(-56));

  constexpr std::size_t kRequests = 6;
  std::vector<service::EvalRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i)
    requests.push_back({ca, cb, RequestKind::kEvalMult});

  const Scenario scenarios[] = {
      {"serial_1chip", 1, Strategy::kBatchPerChip, 1, RequestKind::kEvalMult, true},
      {"batched_1chip", 1, Strategy::kBatchPerChip, kRequests, RequestKind::kEvalMult,
       true},
      {"batched_4chip", 4, Strategy::kBatchPerChip, kRequests, RequestKind::kEvalMult,
       true},
      {"sharded_4chip", 4, Strategy::kShardTowers, kRequests, RequestKind::kEvalMult,
       true},
      {"relin_batched_1chip", 1, Strategy::kBatchPerChip, kRequests,
       RequestKind::kRelinearize, true},
      {"multrelin_noverlap_1chip", 1, Strategy::kBatchPerChip, 2,
       RequestKind::kMultRelin, false},
      {"multrelin_overlap_1chip", 1, Strategy::kBatchPerChip, 2,
       RequestKind::kMultRelin, true},
      {"multrelin_overlap_4chip", 4, Strategy::kShardTowers, 2,
       RequestKind::kMultRelin, true},
      {"multrelin_depth4_1chip", 1, Strategy::kBatchPerChip, 2,
       RequestKind::kMultRelin, true, /*depth=*/4},
      {"hetero_roundrobin_4chip", 4, Strategy::kShardTowers, kRequests,
       RequestKind::kEvalMult, true, 2, /*hetero=*/true,
       service::Placement::kRoundRobin},
      {"hetero_loadaware_4chip", 4, Strategy::kShardTowers, kRequests,
       RequestKind::kEvalMult, true, 2, /*hetero=*/true,
       service::Placement::kLoadAware},
      {"hetero_loadaware_depth4_4chip", 4, Strategy::kShardTowers, 2,
       RequestKind::kMultRelin, true, /*depth=*/4, /*hetero=*/true,
       service::Placement::kLoadAware},
  };

  eval::section("Evaluation service -- throughput, n = 4096 (simulated)");
  eval::Table t({"scenario", "chips", "batch", "sessions", "ring cfgs", "ks muls",
                 "key hits", "io s", "compute ms", "req/s chip", "req/s e2e",
                 "overlap s"});
  double baseline = 0;
  double overlap_ref_e2e = 0;  // multrelin_noverlap_1chip
  for (const auto& sc : scenarios) {
    const Run r = run_scenario(scheme, rk, sc, requests, io.trace());
    obs::export_service_stats(r.stats, io.registry());
    if (baseline == 0) baseline = r.evalmult_per_sec;
    if (std::string(sc.name) == "multrelin_noverlap_1chip") overlap_ref_e2e = r.e2e_per_sec;
    std::uint64_t ring_configs = 0;
    for (const auto& c : r.stats.per_chip) ring_configs += c.ring_configs;
    t.row({sc.name, std::to_string(sc.chips), std::to_string(sc.max_batch),
           std::to_string(r.stats.sessions), std::to_string(ring_configs),
           std::to_string(r.stats.ks_products),
           std::to_string(r.stats.key_cache_hits), eval::fmt(r.stats.io_seconds, 4),
           eval::fmt(r.stats.compute_seconds * 1e3, 2),
           eval::fmt(r.evalmult_per_sec, 2), eval::fmt(r.e2e_per_sec, 2),
           eval::fmt(r.stats.overlap_saved_seconds(), 4)});
    const std::string key = std::string(sc.name) + "/";
    metrics.set(key + "evalmult_per_sec", r.evalmult_per_sec);
    metrics.set(key + "e2e_per_sec", r.e2e_per_sec);
    metrics.set(key + "io_seconds", r.stats.io_seconds);
    metrics.set(key + "compute_ms", r.stats.compute_seconds * 1e3);
    metrics.set(key + "sessions", static_cast<double>(r.stats.sessions));
    metrics.set(key + "ring_configs", static_cast<double>(ring_configs));
    metrics.set(key + "ks_products", static_cast<double>(r.stats.ks_products));
    metrics.set(key + "key_uploads", static_cast<double>(r.stats.key_uploads));
    metrics.set(key + "key_cache_hits", static_cast<double>(r.stats.key_cache_hits));
    metrics.set(key + "pipeline_span_s", r.stats.pipeline_span_seconds);
    metrics.set(key + "serial_span_s", r.stats.serial_span_seconds);
    metrics.set(key + "overlap_saved_s", r.stats.overlap_saved_seconds());
    metrics.set(key + "chip_occupancy", r.stats.chip_occupancy());
    metrics.set(key + "speedup_vs_serial", r.evalmult_per_sec / baseline);
    if (overlap_ref_e2e > 0)
      metrics.set(key + "e2e_gain_vs_noverlap", r.e2e_per_sec / overlap_ref_e2e);
  }
  t.print();

  std::puts(
      "\nReading: all times are the deterministic transport + cycle + host\n"
      "cost model (UART/SPI byte counts, 250 MHz PE, modeled host\n"
      "coefficient rate), not host wall clock.  Batching pays ring\n"
      "reconfiguration (Q/BARRETT/INV_POLYDEG registers + twiddle ROM) once\n"
      "per tower per session instead of once per tower per request;\n"
      "sharding additionally spreads one request's towers across the farm;\n"
      "relinearization rides the same sessions as per-(digit, tower)\n"
      "Algorithm-2 PolyMuls, with the batch-aware key cache sharing key\n"
      "uploads across a group (R+1 instead of 2R per digit and tower);\n"
      "pipelined rounds (K-slot ring, depth 2 = double buffering) hide\n"
      "host-side base extension / rounding under earlier rounds' chip\n"
      "stages (req/s e2e up, req/s chip unchanged); on the heterogeneous\n"
      "farm the load-aware Placer keeps tower work off the 10x-slower UART\n"
      "links, which blind round-robin cannot.");
  return io.finish() ? 0 : 1;
}
