// Evaluation-service throughput at the IO-dominated operating point.
//
// ChipBfv.IoDominatesAtSmallRings (and the paper's Section VIII-A remark)
// says the serial link, not the PE, bounds EvalMult at n = 2^12.  This
// bench measures what the cofhee::service scheduler buys back there, in
// *simulated* seconds (link byte accounting + chip cycle model, so the
// numbers are machine-independent and regression-tracked):
//
//   serial_1chip   -- one request per session (the pre-service behavior):
//                     every request re-pays ring configuration per tower.
//   batched_1chip  -- one session per round: ring configuration amortized
//                     over the whole batch (the submit_batch win).
//   batched_4chip  -- kBatchPerChip over 4 chips: throughput scaling.
//   sharded_4chip  -- kShardTowers over 4 chips: latency scaling (one
//                     request's towers run concurrently).
//
// The acceptance bar: batched EvalMult/sec >= the one-request-per-session
// baseline at n = 4096.
#include <cstdio>
#include <string>
#include <vector>

#include "bfv/encoder.hpp"
#include "eval/report.hpp"
#include "service/eval_service.hpp"

namespace {

using namespace cofhee;
using service::Strategy;

struct Scenario {
  const char* name;
  std::size_t chips;
  Strategy strategy;
  std::size_t max_batch;
};

struct Run {
  service::ServiceStats stats;
  double evalmult_per_sec;
};

Run run_scenario(const bfv::Bfv& scheme, const Scenario& sc,
                 const std::vector<service::EvalMultRequest>& requests) {
  service::ChipFarm farm(sc.chips);
  service::EvalService svc(scheme, farm, {sc.strategy, sc.max_batch});
  auto futures = svc.submit_batch(requests);
  for (auto& f : futures) (void)f.get();
  svc.drain();
  Run r;
  r.stats = svc.stats();
  r.evalmult_per_sec = r.stats.simulated_requests_per_sec();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = eval::MetricsJson::path_from_args(argc, argv);
  eval::MetricsJson metrics;

  // The Fig. 6 small configuration: n = 2^12, log q = 109 -> 5 extended
  // towers, squarely in the IO-dominated regime.
  bfv::Bfv scheme(bfv::BfvParams::paper_small(), /*seed=*/42);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc(scheme.context());
  const auto ca = scheme.encrypt(pk, enc.encode(1234));
  const auto cb = scheme.encrypt(pk, enc.encode(-56));

  constexpr std::size_t kRequests = 6;
  std::vector<service::EvalMultRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i) requests.push_back({ca, cb});

  const Scenario scenarios[] = {
      {"serial_1chip", 1, Strategy::kBatchPerChip, 1},
      {"batched_1chip", 1, Strategy::kBatchPerChip, kRequests},
      {"batched_4chip", 4, Strategy::kBatchPerChip, kRequests},
      {"sharded_4chip", 4, Strategy::kShardTowers, kRequests},
  };

  eval::section("Evaluation service -- EvalMult throughput, n = 4096 (simulated)");
  eval::Table t({"scenario", "chips", "max batch", "sessions", "ring cfgs",
                 "io s", "compute ms", "EvalMult/s", "vs serial"});
  double baseline = 0;
  for (const auto& sc : scenarios) {
    const Run r = run_scenario(scheme, sc, requests);
    if (baseline == 0) baseline = r.evalmult_per_sec;
    std::uint64_t ring_configs = 0;
    for (const auto& c : r.stats.per_chip) ring_configs += c.ring_configs;
    t.row({sc.name, std::to_string(sc.chips), std::to_string(sc.max_batch),
           std::to_string(r.stats.sessions), std::to_string(ring_configs),
           eval::fmt(r.stats.io_seconds, 4), eval::fmt(r.stats.compute_seconds * 1e3, 2),
           eval::fmt(r.evalmult_per_sec, 2),
           eval::fmt(r.evalmult_per_sec / baseline, 2) + "x"});
    const std::string key = std::string(sc.name) + "/";
    metrics.set(key + "evalmult_per_sec", r.evalmult_per_sec);
    metrics.set(key + "io_seconds", r.stats.io_seconds);
    metrics.set(key + "compute_ms", r.stats.compute_seconds * 1e3);
    metrics.set(key + "sessions", static_cast<double>(r.stats.sessions));
    metrics.set(key + "ring_configs", static_cast<double>(ring_configs));
    metrics.set(key + "speedup_vs_serial", r.evalmult_per_sec / baseline);
  }
  t.print();

  std::puts(
      "\nReading: all times are the deterministic transport + cycle model\n"
      "(UART/SPI byte counts, 250 MHz PE), not host wall clock.  Batching\n"
      "pays ring reconfiguration (Q/BARRETT/INV_POLYDEG registers + twiddle\n"
      "ROM) once per tower per session instead of once per tower per\n"
      "request; sharding additionally spreads one request's towers across\n"
      "the farm, cutting its latency by ~towers/chips.");
  if (!json_path.empty() && !metrics.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
