// Evaluation-service throughput at the IO-dominated operating point.
//
// ChipBfv.IoDominatesAtSmallRings (and the paper's Section VIII-A remark)
// says the serial link, not the PE, bounds EvalMult at n = 2^12.  This
// bench measures what the cofhee::service scheduler buys back there, in
// *simulated* seconds (link byte accounting + chip cycle model + the
// service's deterministic host cost model, so the numbers are
// machine-independent and regression-tracked):
//
//   serial_1chip        -- one EvalMult per session (the pre-service
//                          behavior): every request re-pays ring
//                          configuration per tower.
//   batched_1chip       -- one session per round: ring configuration
//                          amortized over the whole batch.
//   batched_4chip       -- kBatchPerChip over 4 chips: throughput scaling.
//   sharded_4chip       -- kShardTowers over 4 chips: latency scaling.
//   relin_batched_1chip -- Algorithm-2 key switching as its own request
//                          kind, batched through one chip.
//   multrelin_noverlap_1chip / multrelin_overlap_1chip -- the paper's
//                          complete EvalMult (tensor + key switch) with
//                          double-buffered rounds off vs on: host base
//                          extension / rounding hidden under the previous
//                          round's chip stage.
//   multrelin_overlap_4chip -- overlap + farm scaling combined.
//
// Acceptance bars: batched EvalMult/sec >= the one-request-per-session
// baseline, and double-buffered end-to-end throughput >= the
// non-overlapped schedule, both at n = 4096.
#include <cstdio>
#include <string>
#include <vector>

#include "bfv/encoder.hpp"
#include "eval/report.hpp"
#include "service/eval_service.hpp"

namespace {

using namespace cofhee;
using service::RequestKind;
using service::Strategy;

struct Scenario {
  const char* name;
  std::size_t chips;
  Strategy strategy;
  std::size_t max_batch;
  RequestKind kind;
  bool overlap;
};

struct Run {
  service::ServiceStats stats;
  double evalmult_per_sec;  // chip-axis throughput (farm makespan)
  double e2e_per_sec;       // pipeline-model end-to-end throughput
};

Run run_scenario(const bfv::Bfv& scheme, const bfv::RelinKeys& rk, const Scenario& sc,
                 const std::vector<service::EvalRequest>& requests) {
  service::ChipFarm farm(sc.chips);
  service::ServiceOptions opts;
  opts.strategy = sc.strategy;
  opts.max_batch = sc.max_batch;
  opts.relin_keys = &rk;
  opts.overlap_rounds = sc.overlap;
  service::EvalService svc(scheme, farm, opts);
  std::vector<service::EvalRequest> reqs = requests;
  for (auto& r : reqs) r.kind = sc.kind;
  if (sc.kind == RequestKind::kRelinearize)
    for (auto& r : reqs) {
      r.a = scheme.multiply(r.a, r.b);
      r.b = {};
    }
  auto futures = svc.submit_batch(reqs);
  for (auto& f : futures) (void)f.get();
  svc.drain();
  Run r;
  r.stats = svc.stats();
  r.evalmult_per_sec = r.stats.simulated_requests_per_sec();
  r.e2e_per_sec = r.stats.e2e_requests_per_sec();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = eval::MetricsJson::path_from_args(argc, argv);
  eval::MetricsJson metrics;

  // The Fig. 6 small configuration: n = 2^12, log q = 109 -> 5 extended
  // towers, squarely in the IO-dominated regime.
  bfv::Bfv scheme(bfv::BfvParams::paper_small(), /*seed=*/42);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());
  const auto ca = scheme.encrypt(pk, enc.encode(1234));
  const auto cb = scheme.encrypt(pk, enc.encode(-56));

  constexpr std::size_t kRequests = 6;
  std::vector<service::EvalRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i)
    requests.push_back({ca, cb, RequestKind::kEvalMult});

  const Scenario scenarios[] = {
      {"serial_1chip", 1, Strategy::kBatchPerChip, 1, RequestKind::kEvalMult, true},
      {"batched_1chip", 1, Strategy::kBatchPerChip, kRequests, RequestKind::kEvalMult,
       true},
      {"batched_4chip", 4, Strategy::kBatchPerChip, kRequests, RequestKind::kEvalMult,
       true},
      {"sharded_4chip", 4, Strategy::kShardTowers, kRequests, RequestKind::kEvalMult,
       true},
      {"relin_batched_1chip", 1, Strategy::kBatchPerChip, kRequests,
       RequestKind::kRelinearize, true},
      {"multrelin_noverlap_1chip", 1, Strategy::kBatchPerChip, 2,
       RequestKind::kMultRelin, false},
      {"multrelin_overlap_1chip", 1, Strategy::kBatchPerChip, 2,
       RequestKind::kMultRelin, true},
      {"multrelin_overlap_4chip", 4, Strategy::kShardTowers, 2,
       RequestKind::kMultRelin, true},
  };

  eval::section("Evaluation service -- throughput, n = 4096 (simulated)");
  eval::Table t({"scenario", "chips", "batch", "sessions", "ring cfgs", "ks muls",
                 "io s", "compute ms", "req/s chip", "req/s e2e", "overlap s"});
  double baseline = 0;
  double overlap_ref_e2e = 0;  // multrelin_noverlap_1chip
  for (const auto& sc : scenarios) {
    const Run r = run_scenario(scheme, rk, sc, requests);
    if (baseline == 0) baseline = r.evalmult_per_sec;
    if (std::string(sc.name) == "multrelin_noverlap_1chip") overlap_ref_e2e = r.e2e_per_sec;
    std::uint64_t ring_configs = 0;
    for (const auto& c : r.stats.per_chip) ring_configs += c.ring_configs;
    t.row({sc.name, std::to_string(sc.chips), std::to_string(sc.max_batch),
           std::to_string(r.stats.sessions), std::to_string(ring_configs),
           std::to_string(r.stats.ks_products), eval::fmt(r.stats.io_seconds, 4),
           eval::fmt(r.stats.compute_seconds * 1e3, 2),
           eval::fmt(r.evalmult_per_sec, 2), eval::fmt(r.e2e_per_sec, 2),
           eval::fmt(r.stats.overlap_saved_seconds(), 4)});
    const std::string key = std::string(sc.name) + "/";
    metrics.set(key + "evalmult_per_sec", r.evalmult_per_sec);
    metrics.set(key + "e2e_per_sec", r.e2e_per_sec);
    metrics.set(key + "io_seconds", r.stats.io_seconds);
    metrics.set(key + "compute_ms", r.stats.compute_seconds * 1e3);
    metrics.set(key + "sessions", static_cast<double>(r.stats.sessions));
    metrics.set(key + "ring_configs", static_cast<double>(ring_configs));
    metrics.set(key + "ks_products", static_cast<double>(r.stats.ks_products));
    metrics.set(key + "pipeline_span_s", r.stats.pipeline_span_seconds);
    metrics.set(key + "serial_span_s", r.stats.serial_span_seconds);
    metrics.set(key + "overlap_saved_s", r.stats.overlap_saved_seconds());
    metrics.set(key + "chip_occupancy", r.stats.chip_occupancy());
    metrics.set(key + "speedup_vs_serial", r.evalmult_per_sec / baseline);
    if (overlap_ref_e2e > 0)
      metrics.set(key + "e2e_gain_vs_noverlap", r.e2e_per_sec / overlap_ref_e2e);
  }
  t.print();

  std::puts(
      "\nReading: all times are the deterministic transport + cycle + host\n"
      "cost model (UART/SPI byte counts, 250 MHz PE, modeled host\n"
      "coefficient rate), not host wall clock.  Batching pays ring\n"
      "reconfiguration (Q/BARRETT/INV_POLYDEG registers + twiddle ROM) once\n"
      "per tower per session instead of once per tower per request;\n"
      "sharding additionally spreads one request's towers across the farm;\n"
      "relinearization rides the same sessions as per-(digit, tower)\n"
      "Algorithm-2 PolyMuls; double-buffered rounds hide host-side base\n"
      "extension / rounding under the previous round's chip stage\n"
      "(req/s e2e up, req/s chip unchanged).");
  if (!json_path.empty() && !metrics.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
