// BFV with the EvalMult tensor offloaded to the CoFHEE chip model -- the
// deployment the paper envisions (Section I: the chip "will eventually
// serve as a small component in a much bigger design", accelerating the
// low-level polynomial work under a software FHE stack).
#include <cstdio>

#include "bfv/encoder.hpp"
#include "driver/chip_bfv.hpp"

int main() {
  using namespace cofhee;

  // Pooled ExecPolicy: the host-side RNS plumbing (base extension, t/q
  // rounding) fans out over 4 threads; results are bit-identical to the
  // serial reference path.
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(128), 17,
                  backend::ExecPolicy::pooled(4));
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc(scheme.context());

  const auto ca = scheme.encrypt(pk, enc.encode(171));
  const auto cb = scheme.encrypt(pk, enc.encode(-187));

  // Software path (reference).
  const auto sw = scheme.multiply(ca, cb);

  // Hardware path: one Algorithm-3 run per extended-basis tower on the
  // chip model, with polynomial transport over SPI and the t/q rounding
  // back on the host.
  chip::CofheeChip soc;
  driver::ChipBfvEvaluator eval(soc);
  driver::ChipMulReport rep;
  const auto hw = eval.multiply(scheme, ca, cb, &rep);

  std::printf("plaintext product:        %d\n", 171 * -187);
  std::printf("software EvalMult:        %lld\n",
              static_cast<long long>(enc.decode(scheme.decrypt(sk, sw))));
  std::printf("chip-accelerated EvalMult:%lld\n",
              static_cast<long long>(enc.decode(scheme.decrypt(sk, hw))));
  bool identical = true;
  for (std::size_t i = 0; i < sw.size(); ++i)
    identical = identical && sw.c[i].towers == hw.c[i].towers;
  std::printf("ciphertexts bit-identical: %s\n", identical ? "yes" : "NO");

  std::printf("\nchip work: %u towers x Algorithm 3 = %llu cycles (%.3f ms at "
              "250 MHz)\n", rep.towers,
              static_cast<unsigned long long>(rep.chip_cycles), rep.chip_ms);
  std::printf("SPI transport: %.3f ms (7 polynomials per tower)\n",
              rep.io_seconds * 1e3);
  const auto pw = soc.power_trace().report();
  std::printf("chip power during the run: %.1f mW avg / %.1f mW peak\n", pw.avg_mw,
              pw.peak_mw);
  std::puts("\nAt bring-up ring sizes the SPI link dominates; at the paper's\n"
            "n = 2^13 operating point compute dominates and one chip instance\n"
            "beats a single-threaded CPU 1.9x (Fig. 6 / bench_fig06).");
  return 0;
}
