// Private membership test (the paper's motivating application class;
// Section III-A cites "Real-time private membership test using homomorphic
// encryption", ref [28]).
//
// The client encrypts a query value x; the server, holding a set S,
// homomorphically evaluates P(x) = prod_{s in S} (x - s).  P(x) = 0 exactly
// when x is a member -- and the server learns nothing about x.  The product
// tree uses EvalMult + relinearization, the operation CoFHEE accelerates.
#include <cstdio>
#include <vector>

#include "bfv/bfv.hpp"
#include "bfv/encoder.hpp"

int main() {
  using namespace cofhee;
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(64), 13);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  const std::vector<std::int64_t> server_set{102, 417, 8080, 31337};
  std::printf("server set: {102, 417, 8080, 31337}\n\n");

  for (std::int64_t query : {417L, 500L, 31337L}) {
    // Client: encrypt the query.
    const auto cx = scheme.encrypt(pk, enc.encode(query));

    // Server: evaluate prod (x - s) as a balanced tree (depth log2 |S|).
    std::vector<bfv::Ciphertext> terms;
    for (const auto s : server_set) {
      // x - s == x + (-s), a plaintext addition (noise-free).
      terms.push_back(scheme.add_plain(cx, enc.encode(-s)));
    }
    while (terms.size() > 1) {
      std::vector<bfv::Ciphertext> next;
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        next.push_back(scheme.relinearize(scheme.multiply(terms[i], terms[i + 1]), rk));
      }
      if (terms.size() % 2 == 1) next.push_back(terms.back());
      terms = std::move(next);
    }

    // Client: decrypt; zero means "member".
    const auto result = enc.decode(scheme.decrypt(sk, terms.front()));
    std::printf("query %6lld -> P(x) %s 0 -> %s\n", static_cast<long long>(query),
                result == 0 ? "==" : "!=", result == 0 ? "MEMBER" : "not a member");
  }

  std::puts("\nEach membership test above ran 3 EvalMult + relinearization --\n"
            "the exact workload Fig. 6 measures on CoFHEE (0.84 ms per tensor\n"
            "at n = 2^12 vs 1.5 ms for single-thread CPU).");
  return 0;
}
