// Encrypted logistic-regression inference (paper Section VI-C, ref [39]:
// privacy-preserving cancer-type prediction).  A client submits encrypted
// feature vectors; the server computes the linear score and a cubic
// sigmoid surrogate without ever decrypting.
#include <cstdio>
#include <vector>

#include "apps/cryptonets.hpp"  // decode_logit
#include "apps/logreg.hpp"
#include "bfv/encoder.hpp"

int main() {
  using namespace cofhee;
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(32), 21);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  // A small trained model (fixed-point integer weights).  Inputs are
  // normalized so |z| < sqrt(3), the validity region of the cubic sigmoid
  // surrogate -- the same feature scaling the fixed-point deployments of
  // ref [39] apply before encryption.
  apps::LogisticModel model(scheme.context(), {3, -2, 1, 4, -1}, -2);

  const std::vector<std::vector<std::int64_t>> patients = {
      {1, 0, 0, 0, 0},   // z = +1: expected positive
      {1, 1, 0, 0, 0},   // z = -1: expected negative
      {0, 0, 3, 0, 0},   // z = +1: expected positive
  };

  std::puts("patient  score  sigmoid~  class   (plaintext check)");
  for (std::size_t p = 0; p < patients.size(); ++p) {
    std::vector<bfv::Ciphertext> enc_features;
    for (const auto v : patients[p])
      enc_features.push_back(scheme.encrypt(pk, enc.encode(v)));

    const auto cz = model.score_encrypted(scheme, enc_features);
    const auto cs = model.sigmoid_encrypted(scheme, rk, cz);

    const auto z = apps::decode_logit(scheme, sk, cz);
    const auto s = apps::decode_logit(scheme, sk, cs);
    const auto z_ref = model.score_plain(patients[p]);
    std::printf("  %zu      %4lld   %6lld   %s  (z_ref=%lld, %s)\n", p,
                static_cast<long long>(z), static_cast<long long>(s),
                s > 0 ? "POS" : "NEG", static_cast<long long>(z_ref),
                z == z_ref ? "match" : "MISMATCH");
  }

  std::puts("\nOperation mix per patient: 5 ct*pt muls + 4 ct+ct adds (score) +\n"
            "2 EvalMult + 2 relinearizations (cubic sigmoid) -- scaled to the\n"
            "full dataset this is the Table X logistic-regression workload\n"
            "(168,298 adds / 49,500 ct*pt / 128,700 ct*ct+relin).");
  return 0;
}
