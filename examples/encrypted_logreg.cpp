// Encrypted logistic-regression inference (paper Section VI-C, ref [39]:
// privacy-preserving cancer-type prediction).  A client submits encrypted
// feature vectors; the server computes the linear score and a cubic
// sigmoid surrogate without ever decrypting.
//
// All three patients are packed into ONE expression graph: compile()
// levels the per-patient circuits into shared rounds (every patient's z^2
// is round 0, every z * (3 - z^2) is round 1), so the whole cohort batches
// onto the chip farm two rounds deep instead of patient-by-patient.
#include <cstdio>
#include <vector>

#include "apps/cryptonets.hpp"  // decode_logit
#include "apps/logreg.hpp"
#include "bfv/encoder.hpp"
#include "graph/executor.hpp"
#include "service/eval_service.hpp"

int main() {
  using namespace cofhee;
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(32), 21);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  // A small trained model (fixed-point integer weights).  Inputs are
  // normalized so |z| < sqrt(3), the validity region of the cubic sigmoid
  // surrogate -- the same feature scaling the fixed-point deployments of
  // ref [39] apply before encryption.
  apps::LogisticModel model(scheme.context(), {3, -2, 1, 4, -1}, -2);

  const std::vector<std::vector<std::int64_t>> patients = {
      {1, 0, 0, 0, 0},   // z = +1: expected positive
      {1, 1, 0, 0, 0},   // z = -1: expected negative
      {0, 0, 3, 0, 0},   // z = +1: expected positive
  };

  // Build one graph covering the whole cohort: per patient, the linear
  // score (host-side plaintext muls + adds) feeding the two-level cubic.
  graph::Graph g;
  std::vector<bfv::Ciphertext> enc_features;
  for (const auto& x : patients) {
    std::vector<graph::NodeId> feats;
    for (const auto v : x) {
      feats.push_back(g.input());
      enc_features.push_back(scheme.encrypt(pk, enc.encode(v)));
    }
    const auto z = model.build_score_graph(g, feats);
    g.mark_output(z);
    g.mark_output(model.build_sigmoid_graph(g, z));
  }
  const auto cg = graph::compile(g);
  std::printf("compiled cohort: %zu rounds, %zu chip ops for %zu patients\n\n",
              cg.rounds.size(), cg.chip_ops, patients.size());

  service::ChipFarm farm(2);
  service::ServiceOptions opts;
  opts.relin_keys = &rk;
  service::EvalService svc(scheme, farm, opts);
  graph::GraphExecutor ex(scheme, svc);
  const auto outs = ex.run(cg, enc_features);  // [score, sigmoid] per patient

  std::puts("patient  score  sigmoid~  class   (plaintext check)");
  for (std::size_t p = 0; p < patients.size(); ++p) {
    const auto z = apps::decode_logit(scheme, sk, outs[2 * p]);
    const auto s = apps::decode_logit(scheme, sk, outs[2 * p + 1]);
    const auto z_ref = model.score_plain(patients[p]);
    std::printf("  %zu      %4lld   %6lld   %s  (z_ref=%lld, %s)\n", p,
                static_cast<long long>(z), static_cast<long long>(s),
                s > 0 ? "POS" : "NEG", static_cast<long long>(z_ref),
                z == z_ref ? "match" : "MISMATCH");
  }

  std::puts("\nOperation mix per patient: 5 ct*pt muls + 4 ct+ct adds (score) +\n"
            "2 EvalMult + 2 relinearizations (cubic sigmoid) -- scaled to the\n"
            "full dataset this is the Table X logistic-regression workload\n"
            "(168,298 adds / 49,500 ct*pt / 128,700 ct*ct+relin).");
  return 0;
}
