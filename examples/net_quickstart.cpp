// Front-door quickstart: the evaluation service behind a real TCP socket.
//
// Starts an EvalServer on a loopback port, then walks the full client
// lifecycle over the wire protocol (docs/WIRE_PROTOCOL.md):
//
//   [1] hello       -- pin the session's tenant + priority defaults
//   [2] submit      -- a batch of encrypted multiply+relinearize requests,
//                      length-prefixed, CRC-framed, decrypted bit-exact
//   [3] rate limit  -- a second tenant runs over its token bucket and gets
//                      a *typed* kRateLimited reject with a retry hint --
//                      the connection survives
//   [4] metrics     -- plain HTTP GET /metrics against the same port
//                      (Prometheus text; lintable with tools/wire_lint.py)
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/net_quickstart [--metrics-out out.prom]
//
// Exits non-zero if any decrypted result is wrong or an expected typed
// rejection did not arrive, so CI can run it as a smoke test.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bfv/encoder.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/eval_service.hpp"

int main(int argc, char** argv) {
  using namespace cofhee;

  std::string metrics_out;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_out = argv[i + 1];

  bfv::Bfv scheme(bfv::BfvParams::test_tiny(64), /*seed=*/9);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  // A 2-chip farm behind the socket; tenant 2 is throttled to a burst of 2
  // with a vanishing refill so its third request deterministically bounces.
  service::ChipFarm farm(2);
  service::ServiceOptions sopts;
  sopts.relin_keys = &rk;
  sopts.tenancy.per_tenant[2] =
      service::TenantLimits{/*rate_per_sec=*/1e-9, /*burst=*/2, /*max_pending=*/0};
  service::EvalService svc(scheme, farm, sopts);
  net::EvalServer server(svc);
  std::printf("[0] server listening on 127.0.0.1:%d\n", server.port());

  bool ok = true;

  // --- [1]+[2] the happy path over the wire ------------------------------
  net::EvalClient alice("127.0.0.1", server.port());
  alice.hello({service::Priority::kHigh, /*tenant=*/1, /*weight=*/2});
  std::vector<service::EvalRequest> batch;
  std::vector<long long> expect;
  for (long long i = 2; i <= 5; ++i) {
    batch.push_back({scheme.encrypt(pk, enc.encode(i)),
                     scheme.encrypt(pk, enc.encode(i + 10)),
                     service::RequestKind::kMultRelin});
    expect.push_back(i * (i + 10));
  }
  const auto results = alice.submit_batch(batch);
  std::puts("[1] tenant 1 (high priority): batch of 4 EvalMult+relin over TCP");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const long long got =
        results[i].ok ? static_cast<long long>(
                            enc.decode(scheme.decrypt(sk, results[i].value)))
                      : -1;
    std::printf("    %lld * %lld -> %lld %s\n", 2LL + static_cast<long long>(i),
                12LL + static_cast<long long>(i), got,
                got == expect[i] ? "(correct)" : "(WRONG)");
    ok = ok && got == expect[i];
  }

  // --- [3] tenancy teeth: typed rejection, connection survives -----------
  net::EvalClient bob("127.0.0.1", server.port());
  bob.hello({service::Priority::kNormal, /*tenant=*/2, /*weight=*/1});
  const std::vector<service::EvalRequest> one{
      {scheme.encrypt(pk, enc.encode(6)), scheme.encrypt(pk, enc.encode(7)),
       service::RequestKind::kEvalMult}};
  std::puts("[2] tenant 2 (rate limit: burst 2): 3 submits");
  bool saw_reject = false;
  for (int i = 0; i < 3; ++i) {
    try {
      (void)bob.submit_batch(one);
      std::printf("    submit %d: accepted\n", i + 1);
    } catch (const net::RejectError& e) {
      std::printf("    submit %d: typed reject [%s] retry_after=%.3fs -- %s\n",
                  i + 1, net::reject_code_name(e.code()), e.retry_after_seconds(),
                  e.what());
      saw_reject = saw_reject || e.code() == net::RejectCode::kRateLimited;
    }
  }
  ok = ok && saw_reject;
  // The same socket still works for an unthrottled tenant.
  const auto after =
      bob.submit_batch(one, {service::Priority::kLow, /*tenant=*/3, /*weight=*/1});
  std::printf("    connection survived the reject: 6 * 7 -> %lld as tenant 3\n",
              static_cast<long long>(enc.decode(scheme.decrypt(sk, after[0].value))));

  // --- [4] the stats endpoint over plain HTTP ----------------------------
  svc.drain();
  const std::string prom = net::http_get_metrics("127.0.0.1", server.port());
  std::printf("[3] GET /metrics: %zu bytes of Prometheus text\n", prom.size());
  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(prom.data(), 1, prom.size(), f) != prom.size()) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      ok = false;
    }
    if (f != nullptr) std::fclose(f);
  }

  alice.bye();
  bob.bye();
  server.stop();
  const service::ServiceStats st = svc.stats();
  std::printf("[4] books: %llu completed, %llu rate-limited, %llu failed\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected_rate_limited),
              static_cast<unsigned long long>(st.failed));
  ok = ok && st.failed == 0 && st.rejected_rate_limited >= 1;
  return ok ? 0 : 1;
}
