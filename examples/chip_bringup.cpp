// Post-silicon bring-up flow (paper Section V-F, Fig. 5): what the host PC
// does when a packaged CoFHEE arrives on the bench -- talk UART through the
// FTDI adapter, check the chip ID, program the ring, run each execution
// mode, and watch the interrupt line.
#include <cstdio>

#include "chip/chip.hpp"
#include "chip/cm0.hpp"
#include "driver/host_driver.hpp"
#include "nt/primes.hpp"
#include "poly/merged_ntt.hpp"
#include "poly/sampler.hpp"

int main() {
  using namespace cofhee;
  std::puts("=== CoFHEE bring-up (Section V-F) ===");
  std::puts("board: QFN-48 on DIP adapter; UMFT230XA USB-UART at 3 Mbaud;");
  std::puts("1.2 V core from DC-DC step-down, 3.3 V IO from the FTDI board.\n");

  chip::CofheeChip soc;
  driver::HostDriver drv(soc, driver::ExecMode::kDirect, driver::Link::kUart);

  // Step 1: sign of life -- read the SIGNATURE register over UART.
  const auto sig = soc.uart().host_read32(chip::MemoryMap::kGpcfgBase +
                                          static_cast<std::uint32_t>(
                                              chip::Reg::kSignature));
  std::printf("[1] SIGNATURE = 0x%08X %s\n", sig,
              sig == chip::kSignatureValue ? "(chip alive)" : "(BAD)");

  // Step 2: program the ring registers and twiddle ROM (timed over UART).
  const std::size_t n = 256;  // small vectors for serial-link bring-up
  const auto q = nt::find_ntt_prime_u128(109, n);
  drv.configure_ring(q, n, nt::primitive_2nth_root(q, n), /*timed=*/true);
  std::printf("[2] ring programmed: n=%zu, log q=%u, Barrett k=%u\n", n,
              nt::bit_length(q), soc.gpcfg().read(chip::Reg::kBarrettCtl1) / 2);

  // Step 3: mode-1 smoke test -- NTT round trip, triggered via registers.
  poly::Rng rng(99);
  const auto x = poly::sample_uniform128(rng, n, q);
  drv.load_polynomial(chip::Bank::kDp0, 0, x);
  const chip::Instr fwd{chip::Opcode::kNtt, {chip::Bank::kDp0, 0}, {},
                        {chip::Bank::kDp1, 0}, 0, 0};
  const chip::Instr inv{chip::Opcode::kIntt, {chip::Bank::kDp1, 0}, {},
                        {chip::Bank::kDp0, 0}, 0, 0};
  const chip::Instr prog[] = {fwd, inv};
  const auto rep1 = drv.run(prog);
  const bool roundtrip = soc.read_coeffs(chip::Bank::kDp0, 0, n) == x;
  std::printf("[3] mode 1 (register-triggered): NTT+iNTT round trip %s; "
              "%.3f ms UART overhead vs %.4f ms compute\n",
              roundtrip ? "OK" : "FAIL", rep1.io_seconds * 1e3, rep1.compute_ms);

  // Step 4: mode 2 -- preloaded command FIFO, wait for the empty interrupt.
  driver::HostDriver fifo_drv(soc, driver::ExecMode::kFifo, driver::Link::kUart);
  fifo_drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));
  const auto rep2 = fifo_drv.run(prog);
  std::printf("[4] mode 2 (command FIFO): %llu cycles, FIFO-empty IRQ %s\n",
              static_cast<unsigned long long>(rep2.compute_cycles),
              soc.gpcfg().irq_pending(chip::kIrqFifoEmpty) ? "raised" : "missing");

  // Step 5: mode 3 -- the on-chip Cortex-M0 sequences the same commands.
  driver::HostDriver cm0_drv(soc, driver::ExecMode::kCm0, driver::Link::kUart);
  cm0_drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));
  const auto rep3 = cm0_drv.run(prog);
  std::printf("[5] mode 3 (ARM CM0 firmware): %llu chip cycles, %llu CM0 cycles "
              "(overlapped)\n", static_cast<unsigned long long>(rep3.compute_cycles),
              static_cast<unsigned long long>(rep3.cm0_cycles));

  // Step 6: a power sanity number, as the bench oscilloscope would show.
  const auto pw = soc.power_trace().report();
  std::printf("[6] supply check: avg %.1f mW / peak %.1f mW at 1.2 V "
              "(scope + current probe)\n", pw.avg_mw, pw.peak_mw);
  std::puts("\nbring-up complete: chip fully functional (paper Fig. 5).");
  return 0;
}
