// Quickstart: encrypted arithmetic with the BFV library, then the same
// polynomial product executed on the CoFHEE chip model.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "bfv/bfv.hpp"
#include "bfv/encoder.hpp"
#include "chip/chip.hpp"
#include "driver/host_driver.hpp"
#include "nt/primes.hpp"
#include "poly/sampler.hpp"

int main() {
  using namespace cofhee;

  // --- 1. Homomorphic arithmetic in software -----------------------------
  std::puts("[1] BFV: encrypt two numbers, add and multiply them encrypted");
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(64), /*seed=*/7);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc(scheme.context());

  const auto ca = scheme.encrypt(pk, enc.encode(123));
  const auto cb = scheme.encrypt(pk, enc.encode(-45));
  std::printf("    123 + (-45) -> %lld (encrypted add)\n",
              static_cast<long long>(
                  enc.decode(scheme.decrypt(sk, scheme.add(ca, cb)))));
  std::printf("    123 * (-45) -> %lld (encrypted multiply, Eq. 4 tensor)\n",
              static_cast<long long>(
                  enc.decode(scheme.decrypt(sk, scheme.multiply(ca, cb)))));

  // --- 2. The same low-level kernel on the co-processor ------------------
  std::puts("\n[2] CoFHEE chip model: polynomial product via NTT commands");
  const std::size_t n = 1u << 12;  // the paper's small configuration
  const auto q = nt::find_ntt_prime_u128(109, n);
  chip::CofheeChip soc;
  driver::HostDriver drv(soc, driver::ExecMode::kFifo);
  drv.configure_ring(q, n, nt::primitive_2nth_root(q, n));

  poly::Rng rng(1);
  const auto a = poly::sample_uniform128(rng, n, q);
  const auto b = poly::sample_uniform128(rng, n, q);
  const double up_a = drv.load_polynomial(chip::Bank::kSp0, 0, a);
  const double up_b = drv.load_polynomial(chip::Bank::kSp1, 0, b);
  soc.reset_metrics();
  const auto rep = drv.poly_mul();  // 2 NTT + Hadamard + iNTT (Algorithm 2)
  const auto pw = soc.power_trace().report();

  std::printf("    chip signature: 0x%08X\n",
              soc.gpcfg().read(chip::Reg::kSignature));
  std::printf("    upload: %.2f ms over SPI; compute: %.3f ms (%llu cycles at "
              "250 MHz)\n", (up_a + up_b) * 1e3, rep.compute_ms,
              static_cast<unsigned long long>(rep.compute_cycles));
  std::printf("    power: %.1f mW avg / %.1f mW peak (Table V band)\n", pw.avg_mw,
              pw.peak_mw);

  // Verify against the software engine.
  const auto chip_result = soc.read_coeffs(chip::Bank::kSp2, 0, n);
  nt::Barrett128 ring(q);
  poly::MergedNtt128 sw(ring, n, nt::primitive_2nth_root(q, n));
  std::printf("    chip result == software NTT result: %s\n",
              chip_result == sw.negacyclic_mul(a, b) ? "yes" : "NO");
  return 0;
}
