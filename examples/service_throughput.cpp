// Evaluation-service walkthrough: a farm of CoFHEE chips serving EvalMult
// traffic through the async cofhee::service API.
//
//   host                               chip farm
//   ----------------------------       -----------------------------
//   submit()/submit_batch()            CofheeChip 0 -- HostDriver 0
//     -> request queue                 CofheeChip 1 -- HostDriver 1
//     -> dispatcher coalesces          CofheeChip 2 -- HostDriver 2
//        rounds, fans sessions         CofheeChip 3 -- HostDriver 3
//        out over the Executor         (one serial link per chip)
//
// Build with -DCOFHEE_BUILD_EXAMPLES=ON; run build/examples/service_throughput.
#include <cstdio>
#include <vector>

#include "bfv/encoder.hpp"
#include "eval/report.hpp"
#include "service/eval_service.hpp"

int main() {
  using namespace cofhee;

  // Fig. 6 small configuration: n = 4096, log q = 109 -- the regime where
  // the serial link, not the PE, bounds a single chip.
  bfv::Bfv scheme(bfv::BfvParams::paper_small(), /*seed=*/7);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  bfv::IntegerEncoder enc(scheme.context());

  const auto rk = scheme.keygen_relin(sk, 16);

  // A heterogeneous farm: three SPI-linked chips plus one legacy bring-up
  // slot on UART at half clock.  The load-aware Placer keeps tower work on
  // the cheap links; the slow chip only helps when it actually pays off.
  std::vector<service::ChipSpec> specs(4);
  specs[3].link = driver::Link::kUart;
  specs[3].cfg.freq_mhz = 125.0;
  service::ChipFarm farm(specs);
  service::ServiceOptions opts;
  opts.strategy = service::Strategy::kShardTowers;
  opts.max_batch = 4;       // several rounds, so the pipeline can engage
  opts.pipeline_depth = 4;  // K-slot session ring (2 = classic double buffer)
  opts.relin_keys = &rk;
  service::EvalService svc(scheme, farm, opts);

  std::printf("Submitting 8 complete EvalMult (tensor + relinearize) "
              "requests to a %zu-chip heterogeneous farm (kShardTowers, "
              "load-aware placement, depth-4 session ring)...\n", farm.size());
  std::vector<service::EvalRequest> requests;
  std::vector<std::int64_t> expect;
  for (int i = 1; i <= 8; ++i) {
    requests.push_back({scheme.encrypt(pk, enc.encode(100 + i)),
                        scheme.encrypt(pk, enc.encode(-i)),
                        service::RequestKind::kMultRelin});
    expect.push_back(static_cast<std::int64_t>(100 + i) * -i);
  }
  // Two tenants sharing the farm: the batch tenant outweighs the
  // interactive one 1:2, and the interactive tenant's requests ride the
  // high-priority class.
  std::vector<service::EvalRequest> tail(requests.begin() + 4, requests.end());
  requests.resize(4);
  auto futures = svc.submit_batch(std::move(requests),
                                  {service::Priority::kNormal, /*tenant=*/1,
                                   /*weight=*/2});
  auto urgent = svc.submit_batch(std::move(tail),
                                 {service::Priority::kHigh, /*tenant=*/2,
                                  /*weight=*/1});
  for (auto& f : urgent) futures.push_back(std::move(f));

  bool all_ok = true;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto product = futures[i].get();  // std::future: block per result
    const auto got = enc.decode(scheme.decrypt(sk, product));
    all_ok = all_ok && got == expect[i] && product.size() == 2;
    std::printf("  request %zu: decrypt(EvalMult+relin) = %lld (expected %lld, "
                "%zu components)\n", i, static_cast<long long>(got),
                static_cast<long long>(expect[i]), product.size());
  }
  svc.drain();

  const auto s = svc.stats();
  eval::section("ServiceStats");
  std::printf("requests: %llu submitted, %llu completed; %llu sessions in "
              "%llu rounds\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.sessions),
              static_cast<unsigned long long>(s.rounds));
  std::printf("simulated: %.4f s io + %.4f s compute -> %.2f EvalMult/s "
              "(farm makespan %.4f s)\n",
              s.io_seconds, s.compute_seconds, s.simulated_requests_per_sec(),
              s.simulated_seconds());
  std::printf("pipeline model: %.4f s double-buffered vs %.4f s back-to-back "
              "(%llu/%llu rounds overlapped, %.2f req/s end-to-end, chip "
              "occupancy %.1f%%)\n",
              s.pipeline_span_seconds, s.serial_span_seconds,
              static_cast<unsigned long long>(s.overlapped_rounds),
              static_cast<unsigned long long>(s.rounds),
              s.e2e_requests_per_sec(), 100.0 * s.chip_occupancy());
  std::printf("relin-key cache: %llu uploads paid, %llu skipped as hits\n",
              static_cast<unsigned long long>(s.key_uploads),
              static_cast<unsigned long long>(s.key_cache_hits));
  eval::Table t({"chip", "sessions", "placements", "requests", "tower runs",
                 "relin runs", "ks muls", "ring cfgs", "io s", "compute ms",
                 "utilization"});
  for (std::size_t c = 0; c < s.per_chip.size(); ++c) {
    const auto& pc = s.per_chip[c];
    t.row({std::to_string(c), std::to_string(pc.sessions),
           std::to_string(pc.placements), std::to_string(pc.requests),
           std::to_string(pc.tower_runs), std::to_string(pc.relin_tower_runs),
           std::to_string(pc.ks_products), std::to_string(pc.ring_configs),
           eval::fmt(pc.io_seconds, 4), eval::fmt(pc.compute_seconds * 1e3, 2),
           eval::fmt(100.0 * s.utilization(c), 1) + "%"});
  }
  t.print();

  eval::section("Scheduler (classes and tenants)");
  static const char* kClassNames[] = {"high", "normal", "low"};
  eval::Table sched({"class", "submitted", "completed", "forced picks",
                     "p50 ms", "p99 ms"});
  for (std::size_t c = 0; c < s.per_class.size(); ++c) {
    const auto& pc = s.per_class[c];
    if (pc.submitted == 0) continue;
    sched.row({kClassNames[c], std::to_string(pc.submitted),
               std::to_string(pc.completed), std::to_string(pc.forced_picks),
               eval::fmt(pc.latency.p50 * 1e3, 2),
               eval::fmt(pc.latency.p99 * 1e3, 2)});
  }
  sched.print();
  eval::Table tens({"tenant", "weight", "submitted", "completed", "p50 ms"});
  for (const auto& tn : s.per_tenant)
    tens.row({std::to_string(tn.tenant), std::to_string(tn.weight),
              std::to_string(tn.submitted), std::to_string(tn.completed),
              eval::fmt(tn.latency.p50 * 1e3, 2)});
  tens.print();

  std::puts(all_ok ? "\nAll products decrypted correctly."
                   : "\nMISMATCH: some products decrypted wrong!");
  return all_ok ? 0 : 1;
}
