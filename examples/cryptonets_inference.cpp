// CryptoNets-style encrypted neural-network inference (paper Section VI-C,
// ref [38]): dense -> square activation -> dense, entirely on ciphertexts,
// expressed as an expression graph and executed through the chip farm.
//
// The graph API is the three-step lifecycle:
//   1. build   -- declare inputs, compose ops (CryptoNet::build_graph emits
//                 the whole network into the graph);
//   2. compile -- topologically level the DAG into dependency rounds: all
//                 hidden-neuron squarings are mutually independent, so they
//                 land in one round and batch onto the farm together;
//   3. run     -- GraphExecutor submits each round to the EvalService and
//                 keeps intermediates resident host-side between rounds.
#include <cstdio>
#include <vector>

#include "apps/cryptonets.hpp"
#include "bfv/encoder.hpp"
#include "graph/executor.hpp"
#include "service/eval_service.hpp"

int main() {
  using namespace cofhee;
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(32), 31);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  apps::NetworkConfig cfg;
  cfg.inputs = 9;   // a 3x3 "image"
  cfg.hidden = 5;
  cfg.outputs = 3;
  apps::CryptoNet net(scheme.context(), cfg);

  const std::vector<std::int64_t> image{1, 2, 0, -1, 3, 1, 0, -2, 1};
  const auto expected = net.infer_plain(image);

  // Client side: encrypt each pixel.
  std::vector<bfv::Ciphertext> enc_pixels;
  for (const auto v : image) enc_pixels.push_back(scheme.encrypt(pk, enc.encode(v)));

  // Server side, step 1: build the inference circuit as a graph.
  graph::Graph g;
  std::vector<graph::NodeId> pixels;
  for (std::size_t i = 0; i < cfg.inputs; ++i) pixels.push_back(g.input());
  (void)net.build_graph(g, pixels);

  // Step 2: compile into dependency-leveled rounds.
  const auto cg = graph::compile(g);
  std::printf("compiled: %zu rounds, %zu chip ops (%zu squarings), %zu host ops\n",
              cg.rounds.size(), cg.chip_ops, cg.squares, cg.host_ops);

  // Step 3: run through a 2-chip farm.  All five x^2 activations are one
  // round, submitted as one batch; the squaring hint lets each chip build
  // the second operand's SRAM banks by DMA instead of re-uploading them.
  service::ChipFarm farm(2);
  service::ServiceOptions opts;
  opts.relin_keys = &rk;
  service::EvalService svc(scheme, farm, opts);
  graph::GraphExecutor ex(scheme, svc);
  const auto logits = ex.run(cg, enc_pixels);

  std::puts("logit  encrypted  plaintext");
  std::size_t best = 0;
  std::int64_t best_v = -1'000'000;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const auto v = apps::decode_logit(scheme, sk, logits[i]);
    std::printf("  %zu    %8lld   %8lld %s\n", i, static_cast<long long>(v),
                static_cast<long long>(expected[i]),
                v == expected[i] ? "" : "  <-- MISMATCH");
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  std::printf("predicted class: %zu\n\n", best);

  const auto st = svc.stats();
  std::printf("farm: %llu sessions, %llu SRAM scratch reuses, %.4f simulated io s\n",
              static_cast<unsigned long long>(st.sessions),
              static_cast<unsigned long long>(st.sram_reuses), st.io_seconds);
  std::puts("The full MNIST CryptoNets run is 457,550 adds / 449,000 ct*pt /\n"
            "10,200 ct*ct -- Table X estimates 88.35 s on CoFHEE vs 197 s on the\n"
            "CPU (see bench_table10_endtoend; bench_graph tracks this graph\n"
            "path's images/sec on 1-, 2- and 4-chip farms).");
  return 0;
}
