// CryptoNets-style encrypted neural-network inference (paper Section VI-C,
// ref [38]): dense -> square activation -> dense, entirely on ciphertexts.
#include <cstdio>
#include <vector>

#include "apps/cryptonets.hpp"
#include "bfv/encoder.hpp"

int main() {
  using namespace cofhee;
  bfv::Bfv scheme(bfv::BfvParams::test_tiny(32), 31);
  const auto sk = scheme.keygen_secret();
  const auto pk = scheme.keygen_public(sk);
  const auto rk = scheme.keygen_relin(sk, 16);
  bfv::IntegerEncoder enc(scheme.context());

  apps::NetworkConfig cfg;
  cfg.inputs = 9;   // a 3x3 "image"
  cfg.hidden = 5;
  cfg.outputs = 3;
  apps::CryptoNet net(scheme.context(), cfg);

  const std::vector<std::int64_t> image{1, 2, 0, -1, 3, 1, 0, -2, 1};
  const auto expected = net.infer_plain(image);

  // Client side: encrypt each pixel.
  std::vector<bfv::Ciphertext> enc_pixels;
  for (const auto v : image) enc_pixels.push_back(scheme.encrypt(pk, enc.encode(v)));

  // Server side: blind inference.
  apps::CryptoNet::OpTally ops;
  const auto logits = net.infer_encrypted(scheme, pk, rk, enc_pixels, &ops);

  std::puts("logit  encrypted  plaintext");
  std::size_t best = 0;
  std::int64_t best_v = -1'000'000;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const auto v = apps::decode_logit(scheme, sk, logits[i]);
    std::printf("  %zu    %8lld   %8lld %s\n", i, static_cast<long long>(v),
                static_cast<long long>(expected[i]),
                v == expected[i] ? "" : "  <-- MISMATCH");
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  std::printf("predicted class: %zu\n\n", best);

  std::printf("operation tally: %llu ct*pt muls, %llu ct+ct adds, %llu ct*ct muls, "
              "%llu relins\n", static_cast<unsigned long long>(ops.ct_pt_muls),
              static_cast<unsigned long long>(ops.ct_ct_adds),
              static_cast<unsigned long long>(ops.ct_ct_muls),
              static_cast<unsigned long long>(ops.relins));
  std::puts("The full MNIST CryptoNets run is 457,550 adds / 449,000 ct*pt /\n"
            "10,200 ct*ct -- Table X estimates 88.35 s on CoFHEE vs 197 s on the\n"
            "CPU (see bench_table10_endtoend).");
  return 0;
}
