#!/usr/bin/env python3
"""Validate a --trace artifact (Chrome trace-event JSON) and, optionally, a
--metrics-out artifact (Prometheus text exposition), with no third-party
dependencies.  Wired into CTest under the `bench` label: CI produces a
2-chip bench_graph trace and lints it here, so a malformed exporter fails
the build rather than a Perfetto load three weeks later.

    tools/trace_lint.py trace.json [--metrics metrics.prom]

Checks on the trace:
  * top level is {"traceEvents": [...]} and nothing else is required;
  * every event has name/ph/pid/tid/ts of the right JSON types;
  * ph is one of X (needs numeric dur >= 0), i, b, e (need an id), M;
  * async b/e events balance per (name, id);
  * per (pid, tid) track, events are sorted by ts (the exporter promises
    deterministic (pid, tid, ts) order);
  * pids are the known wall (1) / simulated (2) tracks.

Checks on the metrics text:
  * every non-comment line matches  name{labels} value  with a float value;
  * every sample is preceded by # HELP and # TYPE lines for its family;
  * histogram families expose _bucket/_sum/_count with a closing le="+Inf".

Exits 0 when clean, 1 with a per-problem report otherwise.
"""

import argparse
import json
import math
import re
import sys
from collections import defaultdict
from pathlib import Path

KNOWN_PIDS = {1, 2}  # wall, simulated
VALID_PH = {"X", "i", "b", "e", "M"}

METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[-+0-9.eE]+|NaN|[+-]Inf)$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def lint_trace(path: Path) -> list[str]:
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not readable JSON: {e}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: top level must be an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: traceEvents is not an array"]

    async_depth = defaultdict(int)  # (name, id) -> open count
    last_ts = {}  # (pid, tid) -> last seen ts
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for field, types in (("name", str), ("ph", str), ("pid", int)):
            if not isinstance(ev.get(field), types):
                errors.append(f"{where}: missing or mistyped {field!r}")
        ph = ev.get("ph")
        if ph not in VALID_PH:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        # tid is required everywhere except process-scoped metadata
        # (process_name events carry only a pid).
        if not isinstance(ev.get("tid"), int) and not (
            ph == "M" and ev.get("name") == "process_name"
        ):
            errors.append(f"{where}: missing or mistyped 'tid'")
        if isinstance(ev.get("pid"), int) and ev["pid"] not in KNOWN_PIDS:
            errors.append(f"{where}: unknown pid {ev['pid']} (wall=1, simulated=2)")
        if ph == "M":
            continue  # metadata events carry no ts
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts):
            errors.append(f"{where}: missing or non-finite ts")
            continue
        key = (ev.get("pid"), ev.get("tid"))
        if key in last_ts and ts < last_ts[key]:
            errors.append(
                f"{where}: ts {ts} goes backwards on track pid={key[0]} tid={key[1]}"
            )
        last_ts[key] = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                errors.append(f"{where}: 'X' span needs a finite dur >= 0")
        elif ph in ("b", "e"):
            if "id" not in ev:
                errors.append(f"{where}: async {ph!r} event needs an id")
                continue
            k = (ev.get("name"), ev["id"])
            if ph == "b":
                async_depth[k] += 1
            else:
                async_depth[k] -= 1
                if async_depth[k] < 0:
                    errors.append(f"{where}: async end without begin for {k}")
    for k, depth in sorted(async_depth.items(), key=str):
        if depth > 0:
            errors.append(f"{path}: async begin without end for {k} (depth {depth})")
    return errors


def lint_metrics(path: Path) -> list[str]:
    errors = []
    try:
        lines = path.read_text().splitlines()
    except OSError as e:
        return [f"{path}: unreadable: {e}"]
    helped, typed = set(), {}
    families = defaultdict(list)  # family name -> [(labels dict, value str)]
    for n, line in enumerate(lines, 1):
        where = f"{path}:{n}"
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                errors.append(f"{where}: malformed HELP line")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: malformed TYPE line")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = METRIC_LINE.match(line)
        if m is None:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        labels = dict(LABEL.findall(m.group("labels") or ""))
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if family not in typed and name not in typed:
            errors.append(f"{where}: sample {name} has no preceding # TYPE")
        if family not in helped and name not in helped:
            errors.append(f"{where}: sample {name} has no preceding # HELP")
        families[family if family in typed else name].append((labels, m.group("value")))
    for family, kind in sorted(typed.items()):
        if kind != "histogram":
            continue
        bucket_les = [
            labels.get("le")
            for labels, _ in families.get(family, [])
            if labels.get("le") is not None
        ]
        if "+Inf" not in bucket_les:
            errors.append(f"{path}: histogram {family} has no le=\"+Inf\" bucket")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=Path, help="Chrome trace-event JSON to lint")
    ap.add_argument(
        "--metrics", type=Path, help="Prometheus text exposition to lint too"
    )
    args = ap.parse_args()
    errors = lint_trace(args.trace)
    if args.metrics is not None:
        errors += lint_metrics(args.metrics)
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"trace_lint: OK ({args.trace}" +
              (f", {args.metrics}" if args.metrics else "") + ")")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
