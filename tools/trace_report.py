#!/usr/bin/env python3
"""Summarize a --trace artifact: per-phase breakdown of the simulated axis
plus healing/fault event counts.  Pure stdlib; the terminal complement to
loading the trace in Perfetto.

    tools/trace_report.py trace.json [--category phase]

Prints, for the chosen category (default "phase", the per-tower driver
phases), total simulated seconds per span name with share-of-total and
span counts, then the same per sim track (per chip), then instant-event
tallies (fault injections, retries, requeues, quarantines, probes).
"""

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

SIM_PID = 2


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=Path)
    ap.add_argument(
        "--category",
        default="phase",
        help="span category to break down (default: phase; try link, model)",
    )
    args = ap.parse_args()
    try:
        events = json.loads(args.trace.read_text())["traceEvents"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print(f"{args.trace}: cannot load: {e}", file=sys.stderr)
        return 1

    track_names = {}
    by_name = defaultdict(lambda: [0.0, 0])  # name -> [us, count]
    by_track = defaultdict(lambda: [0.0, 0])  # tid -> [us, count]
    instants = defaultdict(int)  # (cat, name) -> count
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            track_names[(ev.get("pid"), ev.get("tid"))] = ev["args"]["name"]
            continue
        cat = ev.get("cat", "")
        if ev.get("ph") == "i":
            instants[(cat, ev.get("name", ""))] += 1
        if (
            ev.get("ph") == "X"
            and ev.get("pid") == SIM_PID
            and cat == args.category
        ):
            agg = by_name[ev.get("name", "")]
            agg[0] += ev.get("dur", 0.0)
            agg[1] += 1
            tr = by_track[ev.get("tid", -1)]
            tr[0] += ev.get("dur", 0.0)
            tr[1] += 1

    total_us = sum(us for us, _ in by_name.values())
    print(f"category {args.category!r}: {total_us / 1e6:.6f} simulated seconds "
          f"across {sum(n for _, n in by_name.values())} spans\n")
    if by_name:
        width = max(len(n) for n in by_name)
        print(f"{'span':<{width}}  {'seconds':>12}  {'share':>7}  {'count':>7}")
        for name, (us, count) in sorted(by_name.items(), key=lambda kv: -kv[1][0]):
            share = 100.0 * us / total_us if total_us else 0.0
            print(f"{name:<{width}}  {us / 1e6:>12.6f}  {share:>6.1f}%  {count:>7}")
        print()
        print(f"{'track':<{width}}  {'seconds':>12}  {'share':>7}  {'count':>7}")
        for tid, (us, count) in sorted(by_track.items(), key=lambda kv: -kv[1][0]):
            name = track_names.get((SIM_PID, tid), f"track{tid}")
            share = 100.0 * us / total_us if total_us else 0.0
            print(f"{name:<{width}}  {us / 1e6:>12.6f}  {share:>6.1f}%  {count:>7}")
    if instants:
        print("\ninstant events:")
        for (cat, name), count in sorted(instants.items()):
            print(f"  {cat}/{name}: {count}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
