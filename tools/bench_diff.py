#!/usr/bin/env python3
"""Benchmark regression diff: run a bench binary in --json mode and compare
its metrics against a checked-in reference within a relative tolerance.

Wired into CTest under the `bench` label (bench/CMakeLists.txt):

    bench_diff.py --run build/bench/bench_table05_chip_perf \\
                  --reference bench/reference/bench_table05_chip_perf.json

Exits 0 when every metric is present and within tolerance, 1 otherwise with
a per-metric report.  To re-seed the reference after an intentional change:

    build/bench/<bench> --json bench/reference/<bench>.json
"""

import argparse
import json
import math
import subprocess
import sys
import tempfile
from pathlib import Path


def compare(reference: dict, candidate: dict, rtol: float, atol: float) -> list[str]:
    errors = []
    for key in sorted(set(reference) | set(candidate)):
        if key not in candidate:
            errors.append(f"missing metric: {key} (reference {reference[key]!r})")
            continue
        if key not in reference:
            errors.append(
                f"new metric not in reference: {key} (candidate {candidate[key]!r}); "
                "re-seed the reference JSON if intentional"
            )
            continue
        ref, got = reference[key], candidate[key]
        if not isinstance(ref, (int, float)) or not isinstance(got, (int, float)):
            if ref != got:
                errors.append(f"{key}: {got!r} != reference {ref!r}")
            continue
        if not math.isclose(got, ref, rel_tol=rtol, abs_tol=atol):
            drift = (got - ref) / ref * 100 if ref else float("inf")
            errors.append(
                f"{key}: {got:g} vs reference {ref:g} ({drift:+.2f}%, rtol {rtol:g})"
            )
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--run", required=True, help="bench binary supporting --json <path>")
    ap.add_argument("--reference", required=True, help="checked-in reference JSON")
    ap.add_argument("--rtol", type=float, default=0.05,
                    help="relative tolerance per metric (default 5%%)")
    ap.add_argument("--atol", type=float, default=1e-12,
                    help="absolute tolerance for near-zero metrics")
    args = ap.parse_args()

    reference_path = Path(args.reference)
    if not reference_path.exists():
        print(f"reference not found: {reference_path}", file=sys.stderr)
        print(f"seed it with: {args.run} --json {reference_path}", file=sys.stderr)
        return 1
    reference = json.loads(reference_path.read_text())

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "candidate.json"
        proc = subprocess.run([args.run, "--json", str(out)],
                              stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                              text=True)
        if proc.returncode != 0:
            print(proc.stdout, file=sys.stderr)
            print(f"bench exited with {proc.returncode}", file=sys.stderr)
            return 1
        if not out.exists():
            print("bench did not produce a JSON file", file=sys.stderr)
            return 1
        candidate = json.loads(out.read_text())

    errors = compare(reference, candidate, args.rtol, args.atol)
    if errors:
        print(f"{len(errors)} metric(s) drifted beyond tolerance:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"{len(reference)} metrics within rtol {args.rtol:g} of "
          f"{reference_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
