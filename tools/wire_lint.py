#!/usr/bin/env python3
"""Validate the front door's live /metrics exposition, with no third-party
dependencies.  Wired into CTest under the `bench` label: CI runs
examples/net_quickstart against a real loopback EvalServer, scrapes
GET /metrics over HTTP, and lints the scraped text here -- so a malformed
or incoherent exposition fails the build rather than a Prometheus scrape
in production.

    tools/wire_lint.py metrics.prom

Checks:
  * every non-comment line matches  name{labels} value  with a float value;
  * every sample is preceded by # HELP and # TYPE lines for its family;
  * TYPE is counter/gauge/histogram and counter samples are finite, >= 0;
  * the net-server families are present (connections, frames, rejects,
    HTTP requests, active gauge) alongside the service families;
  * the books balance: completed + failed <= submitted at the service
    level AND per tenant label; frames_tx >= rejects_sent; every tenant
    with a rejected count also appears in the submitted-or-rejected set.

Exits 0 when clean, 1 with a per-problem report otherwise.
"""

import argparse
import math
import re
import sys
from pathlib import Path

METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[-+0-9.eE]+|NaN|[+-]Inf)$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

REQUIRED_FAMILIES = [
    "cofhee_net_connections_total",
    "cofhee_net_connections_active",
    "cofhee_net_frames_rx_total",
    "cofhee_net_frames_tx_total",
    "cofhee_net_rejects_sent_total",
    "cofhee_net_http_requests_total",
    "cofhee_service_requests_submitted_total",
    "cofhee_service_requests_completed_total",
    "cofhee_tenant_submitted_total",
]


def parse(path: Path):
    """Return (samples, types, errors).

    samples: {family: {labels_tuple: value}};  types: {family: type}.
    """
    errors = []
    samples = {}
    types = {}
    helped = set()
    try:
        lines = path.read_text().splitlines()
    except OSError as e:
        return {}, {}, [f"{path}: unreadable: {e}"]
    for no, line in enumerate(lines, 1):
        where = f"{path}:{no}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                errors.append(f"{where}: HELP without text")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: TYPE must be counter/gauge/histogram")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = METRIC_LINE.match(line)
        if m is None:
            errors.append(f"{where}: not a valid sample line: {line!r}")
            continue
        name = m.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name) \
            if types.get(re.sub(r"_(bucket|sum|count)$", "", name)) == "histogram" \
            else name
        if family not in types:
            errors.append(f"{where}: sample {name!r} has no preceding # TYPE")
        if family not in helped:
            errors.append(f"{where}: sample {name!r} has no preceding # HELP")
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"{where}: unparsable value {m.group('value')!r}")
            continue
        if types.get(family) == "counter" and not (
            math.isfinite(value) and value >= 0
        ):
            errors.append(f"{where}: counter {name!r} must be finite and >= 0")
        labels = tuple(sorted(LABEL.findall(m.group("labels") or "")))
        fam = samples.setdefault(name, {})
        if labels in fam:
            errors.append(f"{where}: duplicate sample {name}{dict(labels)}")
        fam[labels] = value
    return samples, types, errors


def total(samples, family):
    return sum(samples.get(family, {}).values())


def by_label(samples, family, key="tenant"):
    out = {}
    for labels, value in samples.get(family, {}).items():
        for k, v in labels:
            if k == key:
                out[v] = value
    return out


def lint(path: Path) -> list[str]:
    samples, _types, errors = parse(path)
    if not samples:
        return errors or [f"{path}: no samples at all"]

    for family in REQUIRED_FAMILIES:
        if family not in samples:
            errors.append(f"{path}: required family {family!r} is missing")

    # Service-level book balance: settled work cannot exceed admitted work.
    submitted = total(samples, "cofhee_service_requests_submitted_total")
    completed = total(samples, "cofhee_service_requests_completed_total")
    failed = total(samples, "cofhee_service_requests_failed_total")
    if completed + failed > submitted + 1e-9:
        errors.append(
            f"{path}: completed ({completed}) + failed ({failed}) exceeds "
            f"submitted ({submitted})"
        )

    # Per-tenant balance, and every rejected tenant must be accounted for.
    t_sub = by_label(samples, "cofhee_tenant_submitted_total")
    t_done = by_label(samples, "cofhee_tenant_completed_total")
    t_rej = by_label(samples, "cofhee_tenant_rejected_total")
    for tenant, done in t_done.items():
        if done > t_sub.get(tenant, 0) + 1e-9:
            errors.append(
                f"{path}: tenant {tenant}: completed ({done}) exceeds "
                f"submitted ({t_sub.get(tenant, 0)})"
            )
    for tenant in t_rej:
        if tenant not in t_sub:
            errors.append(
                f"{path}: tenant {tenant} has rejections but no "
                f"cofhee_tenant_submitted_total sample"
            )

    # Wire-level sanity: every reject rode a tx frame; the active gauge is
    # a plausible instantaneous count.
    if total(samples, "cofhee_net_frames_tx_total") < total(
        samples, "cofhee_net_rejects_sent_total"
    ):
        errors.append(f"{path}: frames_tx < rejects_sent -- rejects not framed?")
    active = total(samples, "cofhee_net_connections_active")
    if active < 0 or active > total(samples, "cofhee_net_connections_total"):
        errors.append(f"{path}: implausible connections_active ({active})")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", type=Path, help="scraped /metrics text")
    args = ap.parse_args()
    errors = lint(args.metrics)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"wire_lint: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"wire_lint: {args.metrics} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
