#include "adpll/adpll.hpp"

#include <cmath>

namespace cofhee::adpll {

LockResult Adpll::lock(unsigned target_mult, std::uint64_t max_ref_cycles) const {
  LockResult r{};
  const double f_target = cfg_.ref_mhz * target_mult;

  // --- Frequency-Locking Loop: SAR over the coarse DAC. ---
  // Each SAR step counts DCO edges over one reference period (a digital
  // frequency detector) and keeps the trial bit if the count is below the
  // target multiplier (DCO too slow -> need more current).
  unsigned coarse = 0;
  unsigned fine = Dco::kFineSteps / 2;
  std::uint64_t ref_cycles = 0;
  double phase = 0.0;  // DCO cycles accumulated modulo 1 ref period
  for (int bit = Dco::kCoarseBits - 1; bit >= 0; --bit) {
    const unsigned trial = coarse | (1u << bit);
    const double f = dco_.freq_mhz(trial, fine);
    const double edges = f / cfg_.ref_mhz;  // edge count in one ref period
    if (edges <= static_cast<double>(target_mult)) coarse = trial;
    ++r.sar_steps;
    ++ref_cycles;
    r.freq_trace_mhz.push_back(dco_.freq_mhz(coarse, fine));
  }

  // Hand over only if the FLL brought the error inside the BBPD capture
  // range (paper: "a few percent of the reference clock frequency", scaled
  // by the multiplier at the divider output).
  const double f_after_fll = dco_.freq_mhz(coarse, fine);
  const double capture = cfg_.capture_range_frac * f_target;
  if (std::abs(f_after_fll - f_target) > capture + 3.0 * (dco_.f_max_mhz() - dco_.f_min_mhz()) / ((1u << Dco::kCoarseBits) - 1)) {
    // Target outside the DCO range: no lock.
    r.locked = false;
    r.locked_freq_mhz = f_after_fll;
    r.lock_time_us = static_cast<double>(ref_cycles) / cfg_.ref_mhz;
    return r;
  }

  // --- Phase-Locking Loop: bang-bang PD + integral filter on fine DAC. ---
  // The Alexander PD only reports early/late; the integrator walks the fine
  // code.  The lock detector requires `lock_window` consecutive samples
  // with |phase error| < half a DCO period.
  unsigned consecutive = 0;
  std::int32_t integ = 0;
  bool prev_late = false;
  const double t_ref_us = 1.0 / cfg_.ref_mhz;
  while (ref_cycles < max_ref_cycles) {
    const double f = dco_.freq_mhz(coarse, fine);
    r.freq_trace_mhz.push_back(f);
    phase += f / cfg_.ref_mhz - static_cast<double>(target_mult);
    ++ref_cycles;
    ++r.bang_bang_steps;
    // Early/late decision (three-sample Alexander PD reduces to the sign
    // of the accumulated phase error at this abstraction level).
    const bool late = phase > 0.0;
    // Anti-windup: a phase-error sign flip dumps the integrator, the
    // digital equivalent of the lock detector gating the loops so they do
    // not fight (Section V-E).
    if (late != prev_late) integ = 0;
    prev_late = late;
    integ += late ? -1 : 1;
    const std::int32_t step = integ >> cfg_.ki_shift;
    std::int64_t nf = static_cast<std::int64_t>(fine) + (late ? -1 : 1) + step;
    integ -= step << cfg_.ki_shift;
    if (nf < 0) nf = 0;
    if (nf > static_cast<std::int64_t>(Dco::kFineSteps)) nf = Dco::kFineSteps;
    fine = static_cast<unsigned>(nf);

    if (std::abs(phase) < 0.5) {
      if (++consecutive >= cfg_.lock_window) {
        r.locked = true;
        break;
      }
    } else {
      consecutive = 0;
      // Keep the phase accumulator bounded (a real PD saturates).
      if (phase > 1.5) phase = 1.5;
      if (phase < -1.5) phase = -1.5;
    }
  }

  r.locked_freq_mhz = dco_.freq_mhz(coarse, fine);
  r.freq_error_ppm = (r.locked_freq_mhz - f_target) / f_target * 1e6;
  r.lock_time_us = static_cast<double>(ref_cycles) * t_ref_us;
  // Bang-bang limit cycle: +/-1 fine LSB around the target.
  const double lsb = std::abs(dco_.freq_mhz(coarse, fine + 1) - r.locked_freq_mhz);
  r.jitter_limit_cycle_ppm = lsb / f_target * 1e6;
  return r;
}

}  // namespace cofhee::adpll
