// All-Digital PLL behavioral model (paper Section V-E, Fig. 4).
//
// Dual-loop architecture exactly as fabricated:
//  * a Frequency-Locking Loop: SAR controller binary-searching the DCO's
//    coarse (binary-weighted) current DAC until the frequency error falls
//    inside the phase detector's capture range;
//  * a Phase-Locking Loop: modified Alexander bang-bang phase detector
//    driving an all-digital proportional-integral loop filter onto the
//    fine (unary/thermometer) current DAC segment -- segmented decoding
//    avoids DAC discontinuities;
//  * a lock detector arbitrating the two loops so they never fight.
// Simulation advances one reference-clock period per step; the DCO phase
// accumulator provides edge counts (FLL) and sampled phase (BBPD).
// Silicon figures: 0.05 mm^2 active area, ~350 uW at 1.1 V, wide tuning
// range -- the test suite and bench check lock behavior across the range.
#pragma once

#include <cstdint>
#include <vector>

namespace cofhee::adpll {

/// Digitally-controlled oscillator with segmented current DAC:
/// binary-weighted coarse bits + thermometer fine bits.
class Dco {
 public:
  static constexpr unsigned kCoarseBits = 7;
  static constexpr unsigned kFineSteps = 63;  // unary segment

  Dco(double f_min_mhz = 40.0, double f_max_mhz = 640.0)
      : f_min_(f_min_mhz), f_max_(f_max_mhz) {}

  [[nodiscard]] double f_min_mhz() const noexcept { return f_min_; }
  [[nodiscard]] double f_max_mhz() const noexcept { return f_max_; }

  /// Output frequency for a coarse/fine control word (monotone in both).
  [[nodiscard]] double freq_mhz(unsigned coarse, unsigned fine) const {
    const double coarse_span = f_max_ - f_min_;
    const double c = static_cast<double>(coarse) / ((1u << kCoarseBits) - 1);
    // One fine LSB ~ 1/3 coarse LSB: segments overlap so the PLL can always
    // reach the target inside the SAR's terminal coarse bin.
    const double coarse_lsb = coarse_span / ((1u << kCoarseBits) - 1);
    const double f = static_cast<double>(fine) - kFineSteps / 2.0;
    return f_min_ + c * coarse_span + f * (coarse_lsb / 3.0) / (kFineSteps / 8.0);
  }

 private:
  double f_min_, f_max_;
};

struct LockResult {
  bool locked = false;
  double lock_time_us = 0;       // reference cycles to lock * T_ref
  double locked_freq_mhz = 0;
  double freq_error_ppm = 0;
  unsigned sar_steps = 0;        // FLL iterations
  std::uint64_t bang_bang_steps = 0;
  double jitter_limit_cycle_ppm = 0;  // BBPD quantization limit cycle
  std::vector<double> freq_trace_mhz;  // per reference cycle
};

class Adpll {
 public:
  struct Config {
    double ref_mhz = 25.0;       // bring-up reference (UMFT230XA clock out)
    unsigned lock_window = 64;   // consecutive in-range samples to declare lock
    double capture_range_frac = 0.02;  // BBPD pull-in: few % of f_ref (paper)
    unsigned ki_shift = 6;       // integral gain 2^-ki_shift (fine LSBs)
  };

  Adpll() = default;
  explicit Adpll(Dco dco) : dco_(dco) {}
  Adpll(Dco dco, Config cfg) : dco_(dco), cfg_(cfg) {}

  [[nodiscard]] const Dco& dco() const noexcept { return dco_; }

  /// Attempt to lock the DCO to target_mult * f_ref.  max_ref_cycles bounds
  /// the simulation.
  [[nodiscard]] LockResult lock(unsigned target_mult,
                                std::uint64_t max_ref_cycles = 20000) const;

  /// Min/max achievable output frequency (the paper's wide tuning range).
  [[nodiscard]] std::pair<double, double> tuning_range_mhz() const {
    return {dco_.freq_mhz(0, Dco::kFineSteps / 2),
            dco_.freq_mhz((1u << Dco::kCoarseBits) - 1, Dco::kFineSteps / 2)};
  }

  /// Silicon figures for the report (GF 55nm implementation).
  static constexpr double kActiveAreaMm2 = 0.05;
  static constexpr double kPowerUw = 350.0;
  static constexpr double kSupplyV = 1.1;

 private:
  Dco dco_{};
  Config cfg_{};
};

}  // namespace cofhee::adpll
