// Encrypted logistic-regression inference (paper Section VI-C, ref [39]:
// privacy-preserving cancer-type prediction).
//
// The model computes z = w . x + b on encrypted features, then a cubic
// polynomial approximation of the sigmoid (the standard FHE substitution
// for the transcendental function); classification needs only the sign of
// z, which the cubic preserves.  Fixed-point encoding: features and
// weights scaled by 2^frac_bits.  The operation mix again matches Table X:
// ct*pt multiplications and ct+ct additions for the dot product, ct*ct
// multiplications + relinearizations for the cubic.
#pragma once

#include <cstdint>
#include <vector>

#include "bfv/bfv.hpp"
#include "graph/graph.hpp"

namespace cofhee::apps {

class LogisticModel {
 public:
  LogisticModel(const bfv::BfvContext& ctx, std::vector<std::int64_t> weights,
                std::int64_t bias);

  /// Plaintext score z = w.x + b (fixed-point integers over Z_t).
  [[nodiscard]] std::int64_t score_plain(const std::vector<std::int64_t>& x) const;

  /// Encrypted linear score.
  [[nodiscard]] bfv::Ciphertext score_encrypted(
      bfv::Bfv& scheme, const std::vector<bfv::Ciphertext>& enc_features) const;

  /// Encrypted cubic sigmoid surrogate s(z) = z * (c1 - c3 z^2) with
  /// c1 = 3, c3 = 1 (sign-preserving for |z| < sqrt(3) in scaled units);
  /// consumes two multiplicative levels.
  [[nodiscard]] bfv::Ciphertext sigmoid_encrypted(bfv::Bfv& scheme,
                                                  const bfv::RelinKeys& rk,
                                                  const bfv::Ciphertext& z) const;

  [[nodiscard]] std::int64_t sigmoid_plain(std::int64_t z) const;

  /// Build the linear score z = w.x + b as a graph over `features` (one
  /// input node per feature); returns the score node (not yet marked as an
  /// output).  Same arithmetic as score_encrypted, bit-exact.
  graph::NodeId build_score_graph(graph::Graph& g,
                                  const std::vector<graph::NodeId>& features) const;

  /// Extend a graph with the cubic sigmoid surrogate s(z) = z * (3 - z^2)
  /// applied to node `z`; returns the result node.  Same composition as
  /// sigmoid_encrypted (square + relin, negate + plain add, mul + relin).
  graph::NodeId build_sigmoid_graph(graph::Graph& g, graph::NodeId z) const;

 private:
  const bfv::BfvContext& ctx_;
  std::vector<std::int64_t> w_;
  std::int64_t b_;
};

}  // namespace cofhee::apps
