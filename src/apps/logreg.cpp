#include "apps/logreg.hpp"

#include <stdexcept>

namespace cofhee::apps {

namespace {

bfv::Plaintext scalar_plain(const bfv::BfvContext& ctx, std::int64_t v) {
  bfv::Plaintext p;
  p.coeffs.assign(ctx.n(), 0);
  const auto t = static_cast<std::int64_t>(ctx.t());
  std::int64_t r = v % t;
  if (r < 0) r += t;
  p.coeffs[0] = static_cast<nt::u64>(r);
  return p;
}

/// ct * w for signed w with noise-free sign handling (see cryptonets.cpp).
bfv::Ciphertext mul_signed_scalar(bfv::Bfv& scheme, const bfv::Ciphertext& ct,
                                  std::int64_t w) {
  const auto mag = scalar_plain(scheme.context(), w < 0 ? -w : w);
  auto r = scheme.mul_plain(ct, mag);
  return w < 0 ? scheme.negate(r) : r;
}

std::int64_t modt_center(std::int64_t v, std::int64_t t) {
  std::int64_t r = v % t;
  if (r > t / 2) r -= t;
  if (r < -t / 2) r += t;
  return r;
}

}  // namespace

LogisticModel::LogisticModel(const bfv::BfvContext& ctx,
                             std::vector<std::int64_t> weights, std::int64_t bias)
    : ctx_(ctx), w_(std::move(weights)), b_(bias) {
  if (w_.empty()) throw std::invalid_argument("LogisticModel: empty weights");
}

std::int64_t LogisticModel::score_plain(const std::vector<std::int64_t>& x) const {
  const auto t = static_cast<std::int64_t>(ctx_.t());
  std::int64_t acc = b_;
  for (std::size_t i = 0; i < w_.size(); ++i) acc = modt_center(acc + w_[i] * x[i], t);
  return acc;
}

bfv::Ciphertext LogisticModel::score_encrypted(
    bfv::Bfv& scheme, const std::vector<bfv::Ciphertext>& enc_features) const {
  if (enc_features.size() != w_.size())
    throw std::invalid_argument("LogisticModel: feature count mismatch");
  bfv::Ciphertext acc = mul_signed_scalar(scheme, enc_features[0], w_[0]);
  for (std::size_t i = 1; i < w_.size(); ++i)
    acc = scheme.add(acc, mul_signed_scalar(scheme, enc_features[i], w_[i]));
  return scheme.add_plain(acc, scalar_plain(ctx_, b_));
}

std::int64_t LogisticModel::sigmoid_plain(std::int64_t z) const {
  const auto t = static_cast<std::int64_t>(ctx_.t());
  return modt_center(z * modt_center(3 - z * z, t), t);
}

bfv::Ciphertext LogisticModel::sigmoid_encrypted(bfv::Bfv& scheme,
                                                 const bfv::RelinKeys& rk,
                                                 const bfv::Ciphertext& z) const {
  // s(z) = z * (3 - z^2): one square + relin, one subtraction from the
  // plaintext constant, one more multiply + relin.
  const auto z2 = scheme.relinearize(scheme.multiply(z, z), rk);
  // 3 - z^2 == (-z^2) + 3.
  const auto inner = scheme.add_plain(scheme.negate(z2), scalar_plain(ctx_, 3));
  return scheme.relinearize(scheme.multiply(z, inner), rk);
}

graph::NodeId LogisticModel::build_score_graph(
    graph::Graph& g, const std::vector<graph::NodeId>& features) const {
  if (features.size() != w_.size())
    throw graph::GraphInputError("LogisticModel: expected " + std::to_string(w_.size()) +
                                 " feature nodes, got " + std::to_string(features.size()));
  const auto mul_signed = [&](graph::NodeId x, std::int64_t w) {
    const auto r = g.mul_plain(x, scalar_plain(ctx_, w < 0 ? -w : w));
    return w < 0 ? g.negate(r) : r;
  };
  graph::NodeId acc = mul_signed(features[0], w_[0]);
  for (std::size_t i = 1; i < w_.size(); ++i)
    acc = g.add(acc, mul_signed(features[i], w_[i]));
  return g.add_plain(acc, scalar_plain(ctx_, b_));
}

graph::NodeId LogisticModel::build_sigmoid_graph(graph::Graph& g, graph::NodeId z) const {
  // Mirrors sigmoid_encrypted: z^2 as a complete EvalMult, 3 - z^2 as
  // negate + plaintext add, then the outer multiply + relin.
  const auto z2 = g.square_relin(z);
  const auto inner = g.add_plain(g.negate(z2), scalar_plain(ctx_, 3));
  return g.mul_relin(z, inner);
}

}  // namespace cofhee::apps
