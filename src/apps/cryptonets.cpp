#include "apps/cryptonets.hpp"

#include "poly/sampler.hpp"

namespace cofhee::apps {

namespace {

/// Magnitude into Z_t plaintext (constant coefficient).
bfv::Plaintext scalar_plain(const bfv::BfvContext& ctx, std::uint64_t v) {
  bfv::Plaintext p;
  p.coeffs.assign(ctx.n(), 0);
  p.coeffs[0] = v % ctx.t();
  return p;
}

/// ct * w for signed w: multiply by |w|, negate the ciphertext for w < 0 --
/// negation is noise-free, whereas encoding w as t - |w| multiplies the
/// noise by ~t.
bfv::Ciphertext mul_signed_scalar(bfv::Bfv& scheme, const bfv::Ciphertext& ct,
                                  std::int64_t w) {
  const auto mag = scalar_plain(scheme.context(),
                                static_cast<std::uint64_t>(w < 0 ? -w : w));
  auto r = scheme.mul_plain(ct, mag);
  return w < 0 ? scheme.negate(r) : r;
}

/// Graph-side twin of mul_signed_scalar: same magnitude/negate split.
graph::NodeId mul_signed_node(graph::Graph& g, const bfv::BfvContext& ctx,
                              graph::NodeId x, std::int64_t w) {
  const auto r =
      g.mul_plain(x, scalar_plain(ctx, static_cast<std::uint64_t>(w < 0 ? -w : w)));
  return w < 0 ? g.negate(r) : r;
}

std::int64_t centered(nt::u64 c, nt::u64 t) {
  return c > t / 2 ? static_cast<std::int64_t>(c) - static_cast<std::int64_t>(t)
                   : static_cast<std::int64_t>(c);
}

}  // namespace

CryptoNet::CryptoNet(const bfv::BfvContext& ctx, NetworkConfig cfg)
    : ctx_(ctx), cfg_(cfg) {
  poly::Rng rng(cfg.weight_seed);
  w1_.assign(cfg.hidden, std::vector<std::int64_t>(cfg.inputs));
  w2_.assign(cfg.outputs, std::vector<std::int64_t>(cfg.hidden));
  for (auto& row : w1_)
    for (auto& w : row) w = static_cast<std::int64_t>(rng.uniform_below(5)) - 2;
  for (auto& row : w2_)
    for (auto& w : row) w = static_cast<std::int64_t>(rng.uniform_below(5)) - 2;
}

std::vector<std::int64_t> CryptoNet::infer_plain(
    const std::vector<std::int64_t>& x) const {
  const auto t = static_cast<std::int64_t>(ctx_.t());
  auto modt = [&](std::int64_t v) {
    std::int64_t r = v % t;
    if (r > t / 2) r -= t;
    if (r < -t / 2) r += t;
    return r;
  };
  std::vector<std::int64_t> h(cfg_.hidden, 0);
  for (std::size_t i = 0; i < cfg_.hidden; ++i) {
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < cfg_.inputs; ++j) acc = modt(acc + w1_[i][j] * x[j]);
    h[i] = modt(acc * acc);  // square activation
  }
  std::vector<std::int64_t> out(cfg_.outputs, 0);
  for (std::size_t i = 0; i < cfg_.outputs; ++i) {
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < cfg_.hidden; ++j) acc = modt(acc + w2_[i][j] * h[j]);
    out[i] = acc;
  }
  return out;
}

std::vector<bfv::Ciphertext> CryptoNet::infer_encrypted(
    bfv::Bfv& scheme, const bfv::PublicKey& pk, const bfv::RelinKeys& rk,
    const std::vector<bfv::Ciphertext>& enc_inputs, OpTally* tally) const {
  OpTally t{};
  // Hidden layer: dense + square activation.
  std::vector<bfv::Ciphertext> hidden;
  hidden.reserve(cfg_.hidden);
  for (std::size_t i = 0; i < cfg_.hidden; ++i) {
    bfv::Ciphertext acc = mul_signed_scalar(scheme, enc_inputs[0], w1_[i][0]);
    ++t.ct_pt_muls;
    for (std::size_t j = 1; j < cfg_.inputs; ++j) {
      acc = scheme.add(acc, mul_signed_scalar(scheme, enc_inputs[j], w1_[i][j]));
      ++t.ct_pt_muls;
      ++t.ct_ct_adds;
    }
    acc = scheme.relinearize(scheme.multiply(acc, acc), rk);  // x^2
    ++t.ct_ct_muls;
    ++t.relins;
    hidden.push_back(std::move(acc));
  }
  // Output layer: dense.
  std::vector<bfv::Ciphertext> out;
  out.reserve(cfg_.outputs);
  for (std::size_t i = 0; i < cfg_.outputs; ++i) {
    bfv::Ciphertext acc = mul_signed_scalar(scheme, hidden[0], w2_[i][0]);
    ++t.ct_pt_muls;
    for (std::size_t j = 1; j < cfg_.hidden; ++j) {
      acc = scheme.add(acc, mul_signed_scalar(scheme, hidden[j], w2_[i][j]));
      ++t.ct_pt_muls;
      ++t.ct_ct_adds;
    }
    out.push_back(std::move(acc));
  }
  if (tally != nullptr) *tally = t;
  (void)pk;
  return out;
}

std::vector<graph::NodeId> CryptoNet::build_graph(
    graph::Graph& g, const std::vector<graph::NodeId>& inputs) const {
  if (inputs.size() != cfg_.inputs)
    throw graph::GraphInputError("CryptoNet: expected " + std::to_string(cfg_.inputs) +
                                 " input nodes, got " + std::to_string(inputs.size()));
  std::vector<graph::NodeId> hidden;
  hidden.reserve(cfg_.hidden);
  for (std::size_t i = 0; i < cfg_.hidden; ++i) {
    graph::NodeId acc = mul_signed_node(g, ctx_, inputs[0], w1_[i][0]);
    for (std::size_t j = 1; j < cfg_.inputs; ++j)
      acc = g.add(acc, mul_signed_node(g, ctx_, inputs[j], w1_[i][j]));
    hidden.push_back(g.square_relin(acc));  // x^2 activation
  }
  std::vector<graph::NodeId> out;
  out.reserve(cfg_.outputs);
  for (std::size_t i = 0; i < cfg_.outputs; ++i) {
    graph::NodeId acc = mul_signed_node(g, ctx_, hidden[0], w2_[i][0]);
    for (std::size_t j = 1; j < cfg_.hidden; ++j)
      acc = g.add(acc, mul_signed_node(g, ctx_, hidden[j], w2_[i][j]));
    g.mark_output(acc);
    out.push_back(acc);
  }
  return out;
}

/// Helper shared with tests/examples: decode a logit ciphertext.
std::int64_t decode_logit(const bfv::Bfv& scheme, const bfv::SecretKey& sk,
                          const bfv::Ciphertext& ct) {
  const auto p = scheme.decrypt(sk, ct);
  return centered(p.coeffs.at(0), scheme.context().t());
}

}  // namespace cofhee::apps
