// Executable CryptoNets-style encrypted inference (paper Section VI-C,
// ref [38]).
//
// A square-activation neural network evaluated entirely on BFV
// ciphertexts: dense layer -> x^2 activation (the CryptoNets trick: the
// only FHE-friendly nonlinearity) -> dense layer.  One ciphertext per
// input feature (no rotation keys needed), weights as plaintexts, so the
// operation mix is exactly the Table X inventory: ct*pt multiplications,
// ct+ct additions, and ct*ct multiplications with relinearization.
// Runs at reduced scale (the paper's MNIST-sized run is op-count modelled
// by apps/cost_model); correctness is checked against the plaintext
// reference network.
#pragma once

#include <cstdint>
#include <vector>

#include "bfv/bfv.hpp"
#include "bfv/encoder.hpp"
#include "graph/graph.hpp"

namespace cofhee::apps {

struct NetworkConfig {
  std::size_t inputs = 16;
  std::size_t hidden = 8;
  std::size_t outputs = 4;
  std::uint64_t weight_seed = 42;
};

class CryptoNet {
 public:
  CryptoNet(const bfv::BfvContext& ctx, NetworkConfig cfg);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

  /// Plaintext reference inference (all values over Z_t).
  [[nodiscard]] std::vector<std::int64_t> infer_plain(
      const std::vector<std::int64_t>& x) const;

  /// Encrypted inference; returns one ciphertext per output logit.
  struct OpTally {
    std::uint64_t ct_pt_muls = 0, ct_ct_adds = 0, ct_ct_muls = 0, relins = 0;
  };
  [[nodiscard]] std::vector<bfv::Ciphertext> infer_encrypted(
      bfv::Bfv& scheme, const bfv::PublicKey& pk, const bfv::RelinKeys& rk,
      const std::vector<bfv::Ciphertext>& enc_inputs, OpTally* tally = nullptr) const;

  /// Build the same inference circuit as a graph over `inputs` (one input
  /// node per feature, declared in feature order); returns one node per
  /// output logit and marks each as a graph output.  Op-for-op the exact
  /// arithmetic of infer_encrypted -- same signed-scalar handling, squares
  /// as complete EvalMults -- so executing the compiled graph through the
  /// chip farm is bit-exact vs the serial software path.
  std::vector<graph::NodeId> build_graph(graph::Graph& g,
                                         const std::vector<graph::NodeId>& inputs) const;

  [[nodiscard]] const std::vector<std::vector<std::int64_t>>& w1() const {
    return w1_;
  }
  [[nodiscard]] const std::vector<std::vector<std::int64_t>>& w2() const {
    return w2_;
  }

 private:
  const bfv::BfvContext& ctx_;
  NetworkConfig cfg_;
  std::vector<std::vector<std::int64_t>> w1_;  // hidden x inputs
  std::vector<std::vector<std::int64_t>> w2_;  // outputs x hidden
};

/// Decrypt one logit ciphertext to a centered signed value.
std::int64_t decode_logit(const bfv::Bfv& scheme, const bfv::SecretKey& sk,
                          const bfv::Ciphertext& ct);

}  // namespace cofhee::apps
