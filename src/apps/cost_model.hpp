// End-to-end application cost model (paper Section VI-C, Table X).
//
// The paper derives "expected processing times" from operation counts:
// CryptoNets needs 457,550 ct+ct additions, 449,000 ct*pt multiplications,
// and 10,200 ct*ct multiplications + relinearizations; logistic regression
// needs 168,298 / 49,500 / 128,700 respectively.  We reproduce that
// methodology: per-operation chip costs come from the calibrated cycle
// model (ciphertexts resident in the NTT domain through linear layers, the
// standard CryptoNets batching discipline), the CPU column carries the
// paper's SEAL-derived totals, and the bench sweeps the relinearization
// digit width -- the one free parameter the paper does not pin down.
#pragma once

#include <cstdint>
#include <string>

namespace cofhee::apps {

struct Workload {
  std::string name;
  std::uint64_t ct_ct_adds;
  std::uint64_t ct_pt_muls;
  std::uint64_t ct_ct_muls;     // each followed by a relinearization
  double paper_cpu_seconds;     // Table X CPU column
  double paper_cofhee_seconds;  // Table X CoFHEE column
};

/// The two Table X applications.
Workload cryptonets_workload();
Workload logreg_workload();

/// Per-operation CoFHEE costs (milliseconds) for a given ring
/// configuration, from the calibrated cycle model at 250 MHz.
struct ChipOpCosts {
  double add_ms;    // ct + ct: 2 polynomials per tower, pointwise
  double ctpt_ms;   // ct * pt with both sides NTT-resident: 2 Hadamards
  double ctct_ms;   // Algorithm 3 (4 NTT + 4 Had + 1 add + 3 iNTT + DMA)
  double relin_ms;  // digit-decomposition key switch
};

ChipOpCosts chip_op_costs(std::size_t n, unsigned towers, unsigned relin_digit_bits,
                          unsigned log_q_bits);

/// Total seconds for a workload under the given per-op costs.
double estimate_seconds(const Workload& w, const ChipOpCosts& c);

}  // namespace cofhee::apps
