#include "apps/cost_model.hpp"

#include "chip/config.hpp"
#include "nt/primes.hpp"

namespace cofhee::apps {

Workload cryptonets_workload() {
  return {"CryptoNets", 457550, 449000, 10200, 197.0, 88.35};
}

Workload logreg_workload() {
  return {"Logistic Regression", 168298, 49500, 128700, 550.25, 377.6};
}

ChipOpCosts chip_op_costs(std::size_t n, unsigned towers, unsigned relin_digit_bits,
                          unsigned log_q_bits) {
  const chip::ChipConfig cfg;
  const double ms_per_cycle = cfg.cycle_ns() * 1e-6;
  const double logn = static_cast<double>(nt::log2_exact(n));

  const double ntt = (n / 2.0) * logn + cfg.stage_overhead * logn + 1;
  const double intt = ntt + (n + cfg.pointwise_fill) + n / cfg.dma_words_per_cycle;
  const double pw = n + cfg.pointwise_fill + 1.0;

  ChipOpCosts c{};
  // ct + ct: both ciphertext polynomials, every tower.
  c.add_ms = 2.0 * towers * pw * ms_per_cycle;
  // ct * pt, NTT-resident: one Hadamard per ciphertext polynomial.
  c.ctpt_ms = 2.0 * towers * pw * ms_per_cycle;
  // ct * ct: Algorithm 3 with the 3 exposed DMA staging bursts.
  c.ctct_ms = towers *
              (4 * ntt + 5 * pw + 3 * intt + 3.0 * n / cfg.dma_words_per_cycle) *
              ms_per_cycle;
  // Relinearization: d = ceil(log q / w) digits; per digit and tower one
  // NTT of the digit polynomial plus two Hadamard multiply-accumulates
  // (against both key polynomials); two inverse NTTs per tower at the end.
  const double digits =
      (log_q_bits + relin_digit_bits - 1) / static_cast<double>(relin_digit_bits);
  c.relin_ms = towers * (digits * (ntt + 4 * pw) + 2 * intt) * ms_per_cycle;
  return c;
}

double estimate_seconds(const Workload& w, const ChipOpCosts& c) {
  const double ms = static_cast<double>(w.ct_ct_adds) * c.add_ms +
                    static_cast<double>(w.ct_pt_muls) * c.ctpt_ms +
                    static_cast<double>(w.ct_ct_muls) * (c.ctct_ms + c.relin_ms);
  return ms * 1e-3;
}

}  // namespace cofhee::apps
