#include "net/server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "service/errors.hpp"

namespace cofhee::net {

namespace {

/// Bound on the HTTP request head we are willing to buffer before replying.
constexpr std::size_t kMaxHttpHead = 8192;

}  // namespace

EvalServer::EvalServer(service::EvalService& svc, ServerOptions opts)
    : svc_(svc), opts_(opts) {
  opts_.max_connections = std::max<std::size_t>(1, opts_.max_connections);
  listen_fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd_.valid())
    throw SocketError(std::string("net: socket failed: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw SocketError(std::string("net: bind failed: ") + std::strerror(errno));
  if (::listen(listen_fd_.get(), opts_.backlog) != 0)
    throw SocketError(std::string("net: listen failed: ") + std::strerror(errno));
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw SocketError(std::string("net: getsockname failed: ") + std::strerror(errno));
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

EvalServer::~EvalServer() { stop(); }

void EvalServer::stop() {
  if (stopping_.exchange(true)) return;  // first caller tears down
  // Wake the accept loop and join it first, so no new session can appear,
  // then kick every live session off its blocking read (shutdown, not
  // close -- the owning session thread still closes).
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    threads.swap(session_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  listen_fd_.reset();
}

NetServerStats EvalServer::stats() const {
  NetServerStats s;
  s.connections_accepted = accepted_.load();
  s.connections_busy_rejected = busy_rejected_.load();
  s.connections_active = active_.load();
  s.frames_rx = frames_rx_.load();
  s.frames_tx = frames_tx_.load();
  s.rejects_sent = rejects_sent_.load();
  s.http_requests = http_requests_.load();
  s.bad_frames = bad_frames_.load();
  return s;
}

std::string EvalServer::metrics_text() {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  obs::export_service_stats(svc_.stats(), registry_);
  const NetServerStats ns = stats();
  const auto c = [&](const char* name, const char* help, std::uint64_t v) {
    registry_.counter(name, help).set(static_cast<double>(v));
  };
  c("cofhee_net_connections_total", "TCP connections accepted.",
    ns.connections_accepted);
  c("cofhee_net_connections_busy_rejected_total",
    "Connections rejected with kServerBusy at the session limit.",
    ns.connections_busy_rejected);
  c("cofhee_net_frames_rx_total", "Wire frames received (valid headers).",
    ns.frames_rx);
  c("cofhee_net_frames_tx_total", "Wire frames sent.", ns.frames_tx);
  c("cofhee_net_rejects_sent_total", "kReject frames sent (all causes).",
    ns.rejects_sent);
  c("cofhee_net_http_requests_total", "HTTP metrics scrapes served.",
    ns.http_requests);
  c("cofhee_net_bad_frames_total",
    "Sessions dropped for unrecoverable framing damage.", ns.bad_frames);
  registry_.gauge("cofhee_net_connections_active", "Client sessions open now.")
      .set(static_cast<double>(ns.connections_active));
  return registry_.render_text();
}

void EvalServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or unrecoverable
    }
    accepted_.fetch_add(1);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    if (active_.load() >= opts_.max_connections) {
      // Polite backpressure: a typed reject, not a silent hangup.
      busy_rejected_.fetch_add(1);
      send_reject(fd, RejectCode::kServerBusy, 0,
                  "server at its connection limit; retry later");
      ::close(fd);
      continue;
    }
    active_.fetch_add(1);
    std::lock_guard<std::mutex> lk(sessions_mu_);
    session_fds_.push_back(fd);
    session_threads_.emplace_back([this, fd] { session(fd); });
  }
}

void EvalServer::session(int fd) {
  ScopedFd conn(fd);
  service::SubmitOptions defaults;
  std::uint8_t sniff[4];
  try {
    if (read_exact(fd, sniff, sizeof(sniff))) {
      if (std::memcmp(sniff, "GET ", 4) == 0) {
        // One-shot HTTP scrape: drain the request head (bounded), answer
        // with the Prometheus text, close.
        http_requests_.fetch_add(1);
        std::string head(reinterpret_cast<const char*>(sniff), 4);
        std::uint8_t b = 0;
        while (head.size() < kMaxHttpHead && head.find("\r\n\r\n") == std::string::npos &&
               read_exact(fd, &b, 1))
          head.push_back(static_cast<char>(b));
        const std::string body = metrics_text();
        const std::string resp =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "Connection: close\r\n\r\n" + body;
        write_all(fd, reinterpret_cast<const std::uint8_t*>(resp.data()), resp.size());
      } else {
        // Framed session: the sniffed bytes are the first 4 header bytes.
        std::vector<std::uint8_t> prefix(sniff, sniff + sizeof(sniff));
        FrameHeader hdr;
        std::vector<std::uint8_t> payload;
        bool open = read_frame(fd, &hdr, &payload, prefix);
        while (open) {
          frames_rx_.fetch_add(1);
          try {
            if (!handle_frame(fd, hdr, payload, &defaults)) break;
          } catch (const WireError& e) {
            // Header was fine and the payload fully read: framing is
            // intact, so reject the request and keep the session.
            send_reject(fd, e.code(), 0, e.what());
          }
          open = read_frame(fd, &hdr, &payload);
        }
      }
    }
  } catch (const WireError& e) {
    // Header-level damage (magic/CRC/flags): resynchronizing the stream is
    // impossible, so reject once and drop the connection.
    bad_frames_.fetch_add(1);
    send_reject(fd, e.code(), 0, e.what());
  } catch (const SocketError&) {
    // Peer went away mid-frame; nothing to answer.
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    const auto it = std::find(session_fds_.begin(), session_fds_.end(), fd);
    if (it != session_fds_.end()) session_fds_.erase(it);
  }
  active_.fetch_sub(1);
}

bool EvalServer::handle_frame(int fd, const FrameHeader& hdr,
                              const std::vector<std::uint8_t>& payload,
                              service::SubmitOptions* defaults) {
  if (hdr.version != kWireVersion) {
    send_reject(fd, RejectCode::kVersionUnsupported, 0,
                "server speaks wire protocol v" + std::to_string(kWireVersion) +
                    ", got v" + std::to_string(hdr.version));
    return true;  // framing is version-independent; the session survives
  }
  switch (hdr.kind) {
    case FrameKind::kHello: {
      const HelloFrame h = decode_hello(payload);
      if (h.version != kWireVersion) {
        send_reject(fd, RejectCode::kVersionUnsupported, 0,
                    "unsupported protocol version in hello");
        return true;
      }
      *defaults = h.defaults;
      HelloFrame ack;
      ack.version = kWireVersion;
      ack.defaults = *defaults;
      send_frame(fd, FrameKind::kHelloAck, encode_hello(ack));
      frames_tx_.fetch_add(1);
      return true;
    }
    case FrameKind::kSubmit: {
      SubmitFrame sf = decode_submit(payload);
      // A submit tagged with all-default options inherits the session
      // defaults from hello (how a connection "carries" its tenant).
      const service::SubmitOptions none;
      if (sf.options.tenant == none.tenant && sf.options.priority == none.priority &&
          sf.options.weight == none.weight)
        sf.options = *defaults;
      handle_submit(fd, std::move(sf));
      return true;
    }
    case FrameKind::kStatsRequest: {
      Writer w;
      w.str(metrics_text());
      send_frame(fd, FrameKind::kStatsReply, w.take());
      frames_tx_.fetch_add(1);
      return true;
    }
    case FrameKind::kBye:
      return false;
    default:
      // Server-to-client kinds arriving at the server are a protocol
      // violation, but the framing is intact -- reject and keep going.
      send_reject(fd, RejectCode::kMalformedRequest,
                  0, std::string("unexpected frame kind at the server: ") +
                         std::to_string(static_cast<int>(hdr.kind)));
      return true;
  }
}

void EvalServer::handle_submit(int fd, SubmitFrame sf) {
  std::vector<std::future<bfv::Ciphertext>> futures;
  try {
    futures = svc_.submit_batch(std::move(sf.requests), sf.options);
  } catch (const service::RateLimitedError& e) {
    send_reject(fd, RejectCode::kRateLimited, e.retry_after_seconds(), e.what());
    return;
  } catch (const service::TenantQuotaError& e) {
    send_reject(fd, RejectCode::kQuotaExceeded, 0, e.what());
    return;
  } catch (const service::BatchTooLargeError& e) {
    send_reject(fd, RejectCode::kBatchTooLarge, 0, e.what());
    return;
  } catch (const service::QueueFullError& e) {
    send_reject(fd, RejectCode::kQueueFull, 0, e.what());
    return;
  } catch (const service::ServiceStoppedError& e) {
    send_reject(fd, RejectCode::kServiceStopped, 0, e.what());
    return;
  } catch (const std::invalid_argument& e) {
    send_reject(fd, RejectCode::kMalformedRequest, 0, e.what());
    return;
  } catch (const std::exception& e) {
    send_reject(fd, RejectCode::kInternal, 0, e.what());
    return;
  }
  // Admission succeeded: every request now settles individually.  Waiting
  // here blocks only this session's thread, which is the back-to-back
  // request/response discipline the protocol promises.
  std::vector<ResultItem> items;
  items.reserve(futures.size());
  for (auto& fu : futures) {
    ResultItem item;
    try {
      item.value = fu.get();
      item.ok = true;
    } catch (const std::exception& e) {
      item.ok = false;
      item.code = RejectCode::kInternal;
      item.message = e.what();
    }
    items.push_back(std::move(item));
  }
  send_frame(fd, FrameKind::kResultBatch, encode_result_batch(items));
  frames_tx_.fetch_add(1);
}

void EvalServer::send_reject(int fd, RejectCode code, double retry_after_seconds,
                             const std::string& message) {
  RejectFrame rj;
  rj.code = code;
  rj.retry_after_seconds = retry_after_seconds;
  rj.message = message;
  try {
    send_frame(fd, FrameKind::kReject, encode_reject(rj));
    rejects_sent_.fetch_add(1);
    frames_tx_.fetch_add(1);
  } catch (const SocketError&) {
    // The peer is gone; the session loop notices on its next read.
  }
}

}  // namespace cofhee::net
