// Minimal POSIX TCP plumbing shared by the server (net/server.hpp) and
// client (net/client.hpp): an RAII fd wrapper and EINTR-safe whole-buffer
// read/write loops that turn every transport failure into one typed
// SocketError.  Loopback IPv4 only -- the front door binds 127.0.0.1; this
// is a software model's service port, not an internet-facing listener.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/wire.hpp"

namespace cofhee::net {

/// RAII owner of a socket file descriptor (closed on destruction).
class ScopedFd {
 public:
  /// Empty (no fd).
  ScopedFd() = default;
  /// Take ownership of `fd` (-1 for none).
  explicit ScopedFd(int fd) noexcept : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  /// The owned descriptor (-1 when empty).
  [[nodiscard]] int get() const noexcept { return fd_; }
  /// Whether a descriptor is owned.
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Give up ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }
  /// Close the owned descriptor (if any) and own `fd` instead.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// Write all `len` bytes to `fd`, retrying on EINTR and short writes.
/// MSG_NOSIGNAL keeps a hung-up peer an error, not a SIGPIPE.  Throws
/// SocketError on failure.
inline void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(std::string("net: send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Read exactly `len` bytes from `fd`, retrying on EINTR and short reads.
/// Returns false on a clean EOF *before the first byte* (the peer closed
/// between frames -- an orderly end of session); EOF mid-buffer is a
/// truncated frame and throws SocketError, as does any read error.
inline bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(std::string("net: recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0) return false;
      throw SocketError("net: peer closed mid-frame (" + std::to_string(off) +
                        " of " + std::to_string(len) + " bytes)");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one whole frame: header, validation, then the payload the header
/// promises.  Returns false on a clean EOF between frames; throws WireError
/// for a damaged header (framing is lost -- the caller must close) and
/// SocketError for transport failures.  `header_prefix` (optional) supplies
/// bytes of the header already consumed by protocol sniffing.
inline bool read_frame(int fd, FrameHeader* hdr, std::vector<std::uint8_t>* payload,
                       const std::vector<std::uint8_t>& header_prefix = {}) {
  std::uint8_t raw[kHeaderSize];
  if (header_prefix.size() > kHeaderSize)
    throw WireError(RejectCode::kBadFrame, "net: header prefix longer than a header");
  if (header_prefix.empty()) {
    if (!read_exact(fd, raw, kHeaderSize)) return false;
  } else {
    std::memcpy(raw, header_prefix.data(), header_prefix.size());
    if (!read_exact(fd, raw + header_prefix.size(), kHeaderSize - header_prefix.size()))
      throw SocketError("net: peer closed inside a sniffed header");
  }
  *hdr = decode_header(raw);
  payload->resize(hdr->payload_len);
  if (hdr->payload_len != 0 && !read_exact(fd, payload->data(), hdr->payload_len))
    throw SocketError("net: peer closed before the payload arrived");
  return true;
}

/// Encode and send one frame.  Throws SocketError on transport failure.
inline void send_frame(int fd, FrameKind kind, const std::vector<std::uint8_t>& payload,
                       std::uint8_t version = kWireVersion) {
  const std::vector<std::uint8_t> frame = encode_frame(kind, payload, version);
  write_all(fd, frame.data(), frame.size());
}

}  // namespace cofhee::net
