#include "net/wire.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace cofhee::net {

namespace {

/// Little-endian store/load helpers (the protocol is LE regardless of host
/// endianness; byte-at-a-time keeps it portable and alignment-safe).
void store16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void store32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t load16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void malformed(const std::string& what) {
  throw WireError(RejectCode::kMalformedRequest, "wire: " + what);
}

}  // namespace

const char* reject_code_name(RejectCode code) noexcept {
  switch (code) {
    case RejectCode::kNone: return "ok";
    case RejectCode::kBadFrame: return "bad_frame";
    case RejectCode::kVersionUnsupported: return "version_unsupported";
    case RejectCode::kMalformedRequest: return "malformed_request";
    case RejectCode::kQueueFull: return "queue_full";
    case RejectCode::kRateLimited: return "rate_limited";
    case RejectCode::kQuotaExceeded: return "quota_exceeded";
    case RejectCode::kBatchTooLarge: return "batch_too_large";
    case RejectCode::kServiceStopped: return "service_stopped";
    case RejectCode::kServerBusy: return "server_busy";
    case RejectCode::kInternal: return "internal";
  }
  return "unknown";
}

std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len) noexcept {
  const auto& t = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_header(const FrameHeader& hdr, std::uint8_t* out) noexcept {
  store32(out, kMagic);
  out[4] = hdr.version;
  out[5] = static_cast<std::uint8_t>(hdr.kind);
  store16(out + 6, hdr.flags);
  store32(out + 8, hdr.payload_len);
  store32(out + 12, crc32_ieee(out, 12));
}

FrameHeader decode_header(const std::uint8_t* bytes) {
  if (load32(bytes) != kMagic)
    throw WireError(RejectCode::kBadFrame, "wire: bad magic (not a CFHE frame)");
  if (load32(bytes + 12) != crc32_ieee(bytes, 12))
    throw WireError(RejectCode::kBadFrame, "wire: header CRC mismatch");
  FrameHeader hdr;
  hdr.version = bytes[4];
  const std::uint8_t kind = bytes[5];
  if (kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      kind > static_cast<std::uint8_t>(FrameKind::kBye))
    throw WireError(RejectCode::kBadFrame, "wire: unknown frame kind");
  hdr.kind = static_cast<FrameKind>(kind);
  hdr.flags = load16(bytes + 6);
  if (hdr.flags != 0)
    throw WireError(RejectCode::kBadFrame, "wire: reserved flags set (v1 expects 0)");
  hdr.payload_len = load32(bytes + 8);
  if (hdr.payload_len > kMaxPayloadBytes)
    throw WireError(RejectCode::kBadFrame, "wire: payload length past bound");
  return hdr;
}

std::vector<std::uint8_t> encode_frame(FrameKind kind,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint8_t version) {
  FrameHeader hdr;
  hdr.version = version;
  hdr.kind = kind;
  hdr.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out(kHeaderSize + payload.size());
  encode_header(hdr, out.data());
  std::copy(payload.begin(), payload.end(), out.begin() + kHeaderSize);
  return out;
}

void Writer::u16(std::uint16_t v) {
  buf_.resize(buf_.size() + 2);
  store16(buf_.data() + buf_.size() - 2, v);
}
void Writer::u32(std::uint32_t v) {
  buf_.resize(buf_.size() + 4);
  store32(buf_.data() + buf_.size() - 4, v);
}
void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}
void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Reader::require(std::size_t n) const {
  if (len_ - pos_ < n) malformed("truncated payload");
}
std::uint8_t Reader::u8() {
  require(1);
  return p_[pos_++];
}
std::uint16_t Reader::u16() {
  require(2);
  const std::uint16_t v = load16(p_ + pos_);
  pos_ += 2;
  return v;
}
std::uint32_t Reader::u32() {
  require(4);
  const std::uint32_t v = load32(p_ + pos_);
  pos_ += 4;
  return v;
}
std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}
std::string Reader::str() {
  const std::uint32_t n = u32();
  if (n > kMaxStringBytes) malformed("string length past bound");
  require(n);
  std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
  pos_ += n;
  return s;
}
void Reader::expect_end() const {
  if (pos_ != len_) malformed("trailing bytes after payload");
}

void put_rns_poly(Writer& w, const poly::RnsPoly& p) {
  w.u16(static_cast<std::uint16_t>(p.towers.size()));
  for (const auto& tw : p.towers) {
    w.u32(static_cast<std::uint32_t>(tw.size()));
    for (std::uint64_t c : tw) w.u64(c);
  }
}

poly::RnsPoly get_rns_poly(Reader& r) {
  const std::size_t towers = r.u16();
  if (towers > kMaxTowers) malformed("tower count past bound");
  poly::RnsPoly p;
  p.towers.resize(towers);
  for (auto& tw : p.towers) {
    const std::size_t n = r.u32();
    if (n > kMaxDegree) malformed("polynomial degree past bound");
    tw.resize(n);
    for (auto& c : tw) c = r.u64();
  }
  return p;
}

void put_ciphertext(Writer& w, const bfv::Ciphertext& ct) {
  w.u8(static_cast<std::uint8_t>(ct.c.size()));
  for (const auto& el : ct.c) put_rns_poly(w, el);
}

bfv::Ciphertext get_ciphertext(Reader& r) {
  const std::size_t elems = r.u8();
  if (elems > kMaxCiphertextElems) malformed("ciphertext element count past bound");
  bfv::Ciphertext ct;
  ct.c.resize(elems);
  for (auto& el : ct.c) el = get_rns_poly(r);
  return ct;
}

void put_relin_keys(Writer& w, const bfv::RelinKeys& keys) {
  w.u16(static_cast<std::uint16_t>(keys.digit_bits));
  w.u16(static_cast<std::uint16_t>(keys.keys.size()));
  for (const auto& [b, a] : keys.keys) {
    put_rns_poly(w, b);
    put_rns_poly(w, a);
  }
  const bool seeded = keys.seeded();
  w.u8(seeded ? 1 : 0);
  if (seeded)
    for (std::uint64_t s : keys.a_seeds) w.u64(s);
}

bfv::RelinKeys get_relin_keys(Reader& r) {
  bfv::RelinKeys keys;
  keys.digit_bits = r.u16();
  const std::size_t digits = r.u16();
  if (digits > kMaxRelinDigits) malformed("relin digit count past bound");
  keys.keys.resize(digits);
  for (auto& [b, a] : keys.keys) {
    b = get_rns_poly(r);
    a = get_rns_poly(r);
  }
  const std::uint8_t seeded = r.u8();
  if (seeded > 1) malformed("relin seeded flag not 0/1");
  if (seeded != 0) {
    keys.a_seeds.resize(digits);
    for (auto& s : keys.a_seeds) s = r.u64();
  }
  return keys;
}

void put_submit_options(Writer& w, const service::SubmitOptions& so) {
  w.u8(static_cast<std::uint8_t>(so.priority));
  w.u64(so.tenant);
  w.u32(so.weight);
}

service::SubmitOptions get_submit_options(Reader& r) {
  service::SubmitOptions so;
  const std::uint8_t pr = r.u8();
  if (pr >= service::kNumPriorities) malformed("unknown priority class");
  so.priority = static_cast<service::Priority>(pr);
  so.tenant = r.u64();
  so.weight = r.u32();
  return so;
}

void put_eval_request(Writer& w, const service::EvalRequest& req) {
  w.u8(static_cast<std::uint8_t>(req.kind));
  w.u8(req.square ? 1 : 0);
  put_ciphertext(w, req.a);
  put_ciphertext(w, req.b);
}

service::EvalRequest get_eval_request(Reader& r) {
  service::EvalRequest req;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(service::RequestKind::kMultRelin))
    malformed("unknown request kind");
  req.kind = static_cast<service::RequestKind>(kind);
  const std::uint8_t square = r.u8();
  if (square > 1) malformed("square flag not 0/1");
  req.square = square != 0;
  req.a = get_ciphertext(r);
  req.b = get_ciphertext(r);
  return req;
}

std::vector<std::uint8_t> encode_submit(const SubmitFrame& sf) {
  Writer w;
  put_submit_options(w, sf.options);
  w.u32(static_cast<std::uint32_t>(sf.requests.size()));
  for (const auto& req : sf.requests) put_eval_request(w, req);
  return w.take();
}

SubmitFrame decode_submit(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  SubmitFrame sf;
  sf.options = get_submit_options(r);
  const std::size_t count = r.u32();
  if (count > kMaxBatch) malformed("submit batch size past bound");
  sf.requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) sf.requests.push_back(get_eval_request(r));
  r.expect_end();
  return sf;
}

std::vector<std::uint8_t> encode_reject(const RejectFrame& rj) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(rj.code));
  const double ms = rj.retry_after_seconds * 1e3;
  w.u32(ms <= 0 ? 0
                : ms >= 4294967295.0 ? 4294967295u
                                     : static_cast<std::uint32_t>(ms + 0.5));
  w.str(rj.message);
  return w.take();
}

RejectFrame decode_reject(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  RejectFrame rj;
  const std::uint16_t code = r.u16();
  if (code == 0 || code > static_cast<std::uint16_t>(RejectCode::kInternal))
    malformed("unknown reject code");
  rj.code = static_cast<RejectCode>(code);
  rj.retry_after_seconds = static_cast<double>(r.u32()) * 1e-3;
  rj.message = r.str();
  r.expect_end();
  return rj;
}

std::vector<std::uint8_t> encode_result_batch(const std::vector<ResultItem>& items) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& it : items) {
    w.u8(it.ok ? 0 : 1);
    if (it.ok) {
      put_ciphertext(w, it.value);
    } else {
      w.u16(static_cast<std::uint16_t>(it.code));
      w.str(it.message);
    }
  }
  return w.take();
}

std::vector<ResultItem> decode_result_batch(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  const std::size_t count = r.u32();
  if (count > kMaxBatch) malformed("result batch size past bound");
  std::vector<ResultItem> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ResultItem it;
    const std::uint8_t status = r.u8();
    if (status > 1) malformed("result status not 0/1");
    it.ok = status == 0;
    if (it.ok) {
      it.value = get_ciphertext(r);
    } else {
      it.code = static_cast<RejectCode>(r.u16());
      it.message = r.str();
    }
    items.push_back(std::move(it));
  }
  r.expect_end();
  return items;
}

std::vector<std::uint8_t> encode_hello(const HelloFrame& h) {
  Writer w;
  w.u8(h.version);
  put_submit_options(w, h.defaults);
  return w.take();
}

HelloFrame decode_hello(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  HelloFrame h;
  h.version = r.u8();
  h.defaults = get_submit_options(r);
  r.expect_end();
  return h;
}

}  // namespace cofhee::net
