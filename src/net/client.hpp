// Client side of the CoFHEE front door: a blocking TCP connection that
// speaks the wire protocol (net/wire.hpp) against net/server.hpp.
//
//   EvalClient cli("127.0.0.1", server.port());
//   cli.hello({.priority = Priority::kHigh, .tenant = 7});
//   auto results = cli.submit_batch(reqs);        // RejectError if refused
//   bfv::Ciphertext ct = results[0].value;        // decrypts bit-exact
//
// A server-side refusal (rate limit, quota, queue full, ...) surfaces as a
// typed RejectError carrying the wire RejectCode and retry-after hint; the
// connection itself stays connected and usable, so a rate-limited tenant
// backs off and retries on the same socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket_util.hpp"
#include "net/wire.hpp"
#include "service/request_queue.hpp"

namespace cofhee::net {

/// Blocking wire-protocol client over one TCP connection.
class EvalClient {
 public:
  /// Connect to `host`:`port` (IPv4 dotted quad; the server binds
  /// loopback).  Throws SocketError when the connection fails.
  EvalClient(const std::string& host, std::uint16_t port);
  /// Closes the connection (no goodbye frame; use bye() for an orderly
  /// end).
  ~EvalClient() = default;

  EvalClient(const EvalClient&) = delete;
  EvalClient& operator=(const EvalClient&) = delete;

  /// Version + session-default handshake: sends kHello, waits for the
  /// kHelloAck.  `defaults` tag this connection's tenant/priority; submits
  /// sent with all-default options inherit them server-side.  Throws
  /// RejectError (kVersionUnsupported) when the server refuses the
  /// version.
  void hello(service::SubmitOptions defaults = {});

  /// Submit a batch and wait for the results.  Returns one ResultItem per
  /// request, in order.  A server-side admission refusal throws
  /// RejectError (the connection survives and may be retried); transport
  /// failures throw SocketError; a malformed reply throws WireError.
  std::vector<ResultItem> submit_batch(const std::vector<service::EvalRequest>& reqs,
                                       service::SubmitOptions so = {});

  /// Fetch the server's Prometheus metrics text over the wire protocol
  /// (kStatsRequest/kStatsReply).
  [[nodiscard]] std::string stats_text();

  /// Orderly goodbye: sends kBye and closes the socket.
  void bye();

  /// Whether the socket is still open client-side.
  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

 private:
  /// Send one frame and read the reply frame; decodes a kReject reply into
  /// a thrown RejectError.  Returns the reply kind + payload otherwise.
  std::pair<FrameKind, std::vector<std::uint8_t>> roundtrip(
      FrameKind kind, const std::vector<std::uint8_t>& payload);

  ScopedFd fd_;
};

/// One-shot HTTP scrape of the server's metrics endpoint: connects, sends
/// `GET /metrics`, returns the response body (the Prometheus text).
/// Throws SocketError on connection/transport failure.
[[nodiscard]] std::string http_get_metrics(const std::string& host, std::uint16_t port);

}  // namespace cofhee::net
