// The production front door: a loopback TCP server wrapping an
// EvalService behind the CoFHEE wire protocol (net/wire.hpp).
//
//   ChipFarm farm(4);
//   EvalService svc(scheme, farm, opts);          // tenancy limits live here
//   EvalServer server(svc);                       // ephemeral loopback port
//   // clients connect to 127.0.0.1:server.port() (net/client.hpp)
//
// One accept thread hands each connection to its own session thread.  A
// session speaks framed requests -- Hello/Submit/StatsRequest/Bye -- and
// every admission failure the service raises (rate limit, quota, queue
// full, oversized batch, shutdown) is translated into a typed kReject
// frame on the SAME connection: an over-limit tenant gets a catchable
// error with a retry-after hint, never a dropped socket.  Only losing the
// framing itself (bad magic, CRC failure) costs the connection.
//
// The same port doubles as the observability endpoint: a session whose
// first bytes are "GET " is served one HTTP response -- the Prometheus
// text exposition of obs::export_service_stats over the live
// EvalService::stats() snapshot plus the server's own cofhee_net_*
// counters -- and closed, so `curl http://127.0.0.1:PORT/metrics` works
// against the same front door the clients use.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_util.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/service_export.hpp"
#include "service/eval_service.hpp"

namespace cofhee::net {

/// Runtime configuration of an EvalServer.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back via EvalServer::port()).
  std::uint16_t port = 0;
  /// Most concurrent client sessions; a connection past the limit is sent
  /// a kReject{kServerBusy} frame and closed (polite backpressure, not a
  /// silent RST).  Normalized to >= 1.
  std::size_t max_connections = 64;
  /// Listen backlog handed to listen(2).
  int backlog = 64;
};

/// Monotonic transport-layer counters (wire traffic, not service work).
struct NetServerStats {
  /// Connections accepted (including ones rejected as busy).
  std::uint64_t connections_accepted = 0;
  /// Connections rejected with kServerBusy at the limit.
  std::uint64_t connections_busy_rejected = 0;
  /// Sessions currently open.
  std::uint64_t connections_active = 0;
  /// Frames read from clients (valid headers only).
  std::uint64_t frames_rx = 0;
  /// Frames written to clients (results, acks, rejects, stats).
  std::uint64_t frames_tx = 0;
  /// kReject frames sent (all causes).
  std::uint64_t rejects_sent = 0;
  /// HTTP GET /metrics requests served.
  std::uint64_t http_requests = 0;
  /// Sessions dropped for unrecoverable framing damage (bad magic/CRC).
  std::uint64_t bad_frames = 0;
};

/// Loopback TCP front end over an EvalService.
class EvalServer {
 public:
  /// Bind 127.0.0.1, start the accept thread.  `svc` must outlive the
  /// server.  Throws SocketError when the socket cannot be bound.
  explicit EvalServer(service::EvalService& svc, ServerOptions opts = {});
  /// Stops and joins (see stop()).
  ~EvalServer();

  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  /// The bound TCP port (the ephemeral pick when ServerOptions::port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stop accepting, close the listener, join every session thread.
  /// In-flight sessions finish their current request first.  Idempotent.
  void stop();

  /// Transport-counter snapshot.
  [[nodiscard]] NetServerStats stats() const;

  /// The Prometheus text exposition served on HTTP GET and kStatsRequest:
  /// export_service_stats over a live EvalService::stats() snapshot plus
  /// the cofhee_net_* transport counters, rendered from a registry that
  /// persists across scrapes (counters are monotonic as Prometheus
  /// expects).  Thread-safe; scrapes are serialized.
  [[nodiscard]] std::string metrics_text();

 private:
  void accept_loop();
  void session(int fd);
  /// Dispatch one decoded frame; returns false when the session must end
  /// (kBye, or a reply could not be sent).
  bool handle_frame(int fd, const FrameHeader& hdr,
                    const std::vector<std::uint8_t>& payload,
                    service::SubmitOptions* defaults);
  /// Run a decoded submit against the service and reply (kResultBatch on
  /// admission, kReject on a typed admission failure).
  void handle_submit(int fd, SubmitFrame sf);
  /// Send a kReject frame (counted; send failures are swallowed -- the
  /// session loop notices the dead socket on its next read).
  void send_reject(int fd, RejectCode code, double retry_after_seconds,
                   const std::string& message);

  service::EvalService& svc_;
  ServerOptions opts_;
  ScopedFd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> busy_rejected_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> frames_rx_{0};
  std::atomic<std::uint64_t> frames_tx_{0};
  std::atomic<std::uint64_t> rejects_sent_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> bad_frames_{0};

  std::mutex sessions_mu_;                // guards session_threads_ + session_fds_
  std::vector<std::thread> session_threads_;
  std::vector<int> session_fds_;          // live session sockets (for stop())
  std::mutex metrics_mu_;                 // serializes scrapes over registry_
  obs::MetricsRegistry registry_;
  std::thread accept_thread_;
};

}  // namespace cofhee::net
