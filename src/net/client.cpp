#include "net/client.hpp"

#include <cstring>

namespace cofhee::net {

namespace {

/// Connect a blocking IPv4 TCP socket to `host`:`port`.
ScopedFd connect_tcp(const std::string& host, std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid())
    throw SocketError(std::string("net: socket failed: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("net: not an IPv4 address: " + host);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw SocketError("net: connect to " + host + ":" + std::to_string(port) +
                      " failed: " + std::strerror(errno));
  return fd;
}

}  // namespace

EvalClient::EvalClient(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {}

std::pair<FrameKind, std::vector<std::uint8_t>> EvalClient::roundtrip(
    FrameKind kind, const std::vector<std::uint8_t>& payload) {
  send_frame(fd_.get(), kind, payload);
  FrameHeader hdr;
  std::vector<std::uint8_t> reply;
  if (!read_frame(fd_.get(), &hdr, &reply))
    throw SocketError("net: server closed the connection instead of replying");
  if (hdr.kind == FrameKind::kReject) {
    const RejectFrame rj = decode_reject(reply);
    throw RejectError(rj.code, rj.retry_after_seconds,
                      "server rejected (" + std::string(reject_code_name(rj.code)) +
                          "): " + rj.message);
  }
  return {hdr.kind, std::move(reply)};
}

void EvalClient::hello(service::SubmitOptions defaults) {
  HelloFrame h;
  h.version = kWireVersion;
  h.defaults = defaults;
  auto [kind, payload] = roundtrip(FrameKind::kHello, encode_hello(h));
  if (kind != FrameKind::kHelloAck)
    throw WireError(RejectCode::kMalformedRequest,
                    "net: expected kHelloAck, got kind " +
                        std::to_string(static_cast<int>(kind)));
  (void)decode_hello(payload);  // validates the ack's shape
}

std::vector<ResultItem> EvalClient::submit_batch(
    const std::vector<service::EvalRequest>& reqs, service::SubmitOptions so) {
  SubmitFrame sf;
  sf.options = so;
  sf.requests = reqs;
  auto [kind, payload] = roundtrip(FrameKind::kSubmit, encode_submit(sf));
  if (kind != FrameKind::kResultBatch)
    throw WireError(RejectCode::kMalformedRequest,
                    "net: expected kResultBatch, got kind " +
                        std::to_string(static_cast<int>(kind)));
  std::vector<ResultItem> items = decode_result_batch(payload);
  if (items.size() != reqs.size())
    throw WireError(RejectCode::kMalformedRequest,
                    "net: result count mismatch: sent " +
                        std::to_string(reqs.size()) + ", got " +
                        std::to_string(items.size()));
  return items;
}

std::string EvalClient::stats_text() {
  auto [kind, payload] = roundtrip(FrameKind::kStatsRequest, {});
  if (kind != FrameKind::kStatsReply)
    throw WireError(RejectCode::kMalformedRequest,
                    "net: expected kStatsReply, got kind " +
                        std::to_string(static_cast<int>(kind)));
  Reader r(payload);
  std::string text = r.str();
  r.expect_end();
  return text;
}

void EvalClient::bye() {
  if (!fd_.valid()) return;
  try {
    send_frame(fd_.get(), FrameKind::kBye, {});
  } catch (const SocketError&) {
    // The server already hung up; closing is all that is left.
  }
  fd_.reset();
}

std::string http_get_metrics(const std::string& host, std::uint16_t port) {
  ScopedFd fd = connect_tcp(host, port);
  const std::string req =
      "GET /metrics HTTP/1.1\r\nHost: " + host + "\r\nConnection: close\r\n\r\n";
  write_all(fd.get(), reinterpret_cast<const std::uint8_t*>(req.data()), req.size());
  // Read to EOF (the server closes after one response), then split off the
  // head.
  std::string resp;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(std::string("net: recv failed: ") + std::strerror(errno));
    }
    if (n == 0) break;
    resp.append(reinterpret_cast<const char*>(buf), static_cast<std::size_t>(n));
  }
  const std::size_t split = resp.find("\r\n\r\n");
  if (split == std::string::npos)
    throw SocketError("net: malformed HTTP response (no header terminator)");
  return resp.substr(split + 4);
}

}  // namespace cofhee::net
