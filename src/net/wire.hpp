// CoFHEE wire protocol v1: versioned, length-prefixed frames carrying
// ciphertexts, relinearization keys and scheduling options between a
// client and the TCP front door (net/server.hpp).
//
// The framing discipline mirrors the chip's own serial links
// (chip/serial.hpp, docs/REGISTER_MAP.md): every message is one framed
// transaction -- a fixed 16-byte header naming the protocol, version,
// frame kind and payload length, integrity-checked by a CRC before any
// payload byte is trusted -- and a malformed frame is rejected *whole*
// (typed WireError, nothing partially applied), exactly like a corrupt
// serial frame bounces off the link before a byte reaches SRAM.
//
// Frame header (16 bytes, all fields little-endian):
//
//   offset  size  field        meaning
//   ------  ----  -----------  -------------------------------------------
//        0     4  magic        0x45484643 ("CFHE" in byte order)
//        4     1  version      protocol version (kWireVersion = 1)
//        5     1  kind         FrameKind
//        6     2  flags        reserved; must be 0 in v1
//        8     4  payload_len  payload bytes following the header
//       12     4  crc          CRC-32 (IEEE) of header bytes [0, 12)
//
// Payload encodings are length-prefixed throughout (element, tower and
// coefficient counts precede their data) and every count is checked
// against the kMax* bounds below during decode, so a hostile frame cannot
// make the decoder allocate unbounded memory.  See docs/WIRE_PROTOCOL.md
// for the per-kind payload layouts and the version-negotiation rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bfv/bfv.hpp"
#include "service/request_queue.hpp"

namespace cofhee::net {

/// Base of every network-layer error (framing, transport, rejection), a
/// std::runtime_error so transport-oblivious callers still catch it.
class NetError : public std::runtime_error {
 public:
  /// Construct with a human-readable description.
  using std::runtime_error::runtime_error;
};

/// Reject/error codes carried on the wire (kReject frames and per-item
/// result statuses).  Stable u16 values -- part of the protocol.
enum class RejectCode : std::uint16_t {
  kNone = 0,                ///< not an error (per-item OK status)
  kBadFrame = 1,            ///< header malformed: magic/CRC/flags/length
  kVersionUnsupported = 2,  ///< peer speaks a version this side does not
  kMalformedRequest = 3,    ///< header fine, payload undecodable/invalid
  kQueueFull = 4,           ///< service::QueueFullError (retryable)
  kRateLimited = 5,         ///< service::RateLimitedError (retry after hint)
  kQuotaExceeded = 6,       ///< service::TenantQuotaError (retryable)
  kBatchTooLarge = 7,       ///< service::BatchTooLargeError (split batch)
  kServiceStopped = 8,      ///< service::ServiceStoppedError (give up)
  kServerBusy = 9,          ///< connection limit reached (backpressure)
  kInternal = 10,           ///< unexpected server-side failure
};

/// A stable human-readable name for `code` (for logs and error messages).
[[nodiscard]] const char* reject_code_name(RejectCode code) noexcept;

/// A malformed or truncated frame: bad magic, failed CRC, a count past its
/// bound, or a payload shorter than its own length prefixes promise.  The
/// attached RejectCode is what a server maps the failure to on the wire
/// (kBadFrame for header damage, kMalformedRequest for payload damage,
/// kVersionUnsupported for a version mismatch).
class WireError : public NetError {
 public:
  /// Construct with the wire-level code and a description.
  WireError(RejectCode code, const std::string& what)
      : NetError(what), code_(code) {}

  /// The RejectCode this failure maps to on the wire.
  [[nodiscard]] RejectCode code() const noexcept { return code_; }

 private:
  RejectCode code_;
};

/// A transport (socket) failure: connect, read or write on the underlying
/// TCP stream failed or the peer hung up mid-frame.
class SocketError : public NetError {
 public:
  /// Construct with a human-readable description.
  using NetError::NetError;
};

/// A typed rejection the *server* sent (a kReject frame): the connection
/// is intact and -- for the retryable codes -- the request may be resent.
/// This is how a rate-limited tenant experiences its limit: a catchable
/// error with a retry-after hint, not a dropped connection.
class RejectError : public NetError {
 public:
  /// Construct from the decoded reject frame.
  RejectError(RejectCode code, double retry_after_seconds, const std::string& what)
      : NetError(what), code_(code), retry_after_(retry_after_seconds) {}

  /// Why the server rejected the request.
  [[nodiscard]] RejectCode code() const noexcept { return code_; }
  /// Server's refill hint for kRateLimited (0 when not applicable).
  [[nodiscard]] double retry_after_seconds() const noexcept { return retry_after_; }

 private:
  RejectCode code_;
  double retry_after_;
};

/// Frame kinds (header `kind` field).  Stable u8 values -- part of the
/// protocol.
enum class FrameKind : std::uint8_t {
  kHello = 1,         ///< client -> server: version + session defaults
  kHelloAck = 2,      ///< server -> client: accepted version
  kSubmit = 3,        ///< client -> server: SubmitOptions + request batch
  kResultBatch = 4,   ///< server -> client: per-request results
  kReject = 5,        ///< server -> client: typed rejection (conn stays up)
  kStatsRequest = 6,  ///< client -> server: ask for the metrics text
  kStatsReply = 7,    ///< server -> client: Prometheus text exposition
  kBye = 8,           ///< client -> server: orderly goodbye
};

/// Protocol magic: the bytes "CFHE" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x45484643u;
/// The protocol version this build speaks.
inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header size on the wire, bytes.
inline constexpr std::size_t kHeaderSize = 16;

/// Decode bounds: any count past these makes the frame malformed
/// (WireError), so a hostile length prefix cannot drive allocation.
/// @{
/// Largest admissible payload, bytes.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;
/// Most polynomial elements in one ciphertext (tensor outputs have 3).
inline constexpr std::size_t kMaxCiphertextElems = 8;
/// Most RNS towers per polynomial element.
inline constexpr std::size_t kMaxTowers = 256;
/// Largest polynomial degree (coefficients per tower).
inline constexpr std::size_t kMaxDegree = 1u << 20;
/// Most requests in one kSubmit frame.
inline constexpr std::size_t kMaxBatch = 4096;
/// Most relinearization key digits.
inline constexpr std::size_t kMaxRelinDigits = 256;
/// Longest embedded string (reject messages, stats text), bytes.
inline constexpr std::size_t kMaxStringBytes = 4u << 20;
/// @}

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) over `len` bytes.
/// The same polynomial every PC tool computes, so captures are checkable
/// with standard utilities.
[[nodiscard]] std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len) noexcept;

/// Decoded frame header (see the file comment for the wire layout).
struct FrameHeader {
  /// Protocol version the sender speaks.
  std::uint8_t version = kWireVersion;
  /// What the payload carries.
  FrameKind kind = FrameKind::kHello;
  /// Reserved flag bits; 0 in v1.
  std::uint16_t flags = 0;
  /// Payload bytes following the header.
  std::uint32_t payload_len = 0;
};

/// Serialize `hdr` into the 16-byte wire layout (computes the CRC).
/// `out` must have room for kHeaderSize bytes.
void encode_header(const FrameHeader& hdr, std::uint8_t* out) noexcept;

/// Parse and integrity-check a 16-byte header: magic, CRC, zero flags and
/// the payload bound are enforced here (WireError{kBadFrame} otherwise).
/// The version is *returned, not enforced* -- kind dispatch decides whether
/// a mismatch is negotiable (kHello) or a kVersionUnsupported rejection.
[[nodiscard]] FrameHeader decode_header(const std::uint8_t* bytes);

/// One whole frame: header bytes + payload, ready for a single write.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameKind kind, const std::vector<std::uint8_t>& payload,
    std::uint8_t version = kWireVersion);

/// Little-endian payload builder.  Append-only; the finished buffer goes
/// out via encode_frame().
class Writer {
 public:
  /// Append one byte.
  void u8(std::uint8_t v) { buf_.push_back(v); }
  /// Append a little-endian u16.
  void u16(std::uint16_t v);
  /// Append a little-endian u32.
  void u32(std::uint32_t v);
  /// Append a little-endian u64.
  void u64(std::uint64_t v);
  /// Append a length-prefixed string (u32 byte count + bytes).
  void str(const std::string& s);

  /// The bytes written so far.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  /// Move the finished payload out.
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload parser over a borrowed buffer.
/// Every read past the end -- including one promised by a corrupt length
/// prefix -- throws WireError{kMalformedRequest}; nothing is ever read out
/// of bounds.
class Reader {
 public:
  /// Parse `len` bytes at `data` (borrowed; must outlive the Reader).
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), len_(len) {}
  /// Parse a whole payload vector (borrowed).
  explicit Reader(const std::vector<std::uint8_t>& payload)
      : Reader(payload.data(), payload.size()) {}

  /// Read one byte.
  std::uint8_t u8();
  /// Read a little-endian u16.
  std::uint16_t u16();
  /// Read a little-endian u32.
  std::uint32_t u32();
  /// Read a little-endian u64.
  std::uint64_t u64();
  /// Read a length-prefixed string (bounded by kMaxStringBytes).
  std::string str();

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }
  /// Throw WireError{kMalformedRequest} unless the payload is fully
  /// consumed -- trailing garbage means the peer and we disagree on the
  /// layout, which must not pass silently.
  void expect_end() const;

 private:
  void require(std::size_t n) const;

  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// @name Payload codecs
/// Symmetric put/get pairs; every get_* validates counts against the
/// kMax* bounds and throws WireError{kMalformedRequest} on violation.
/// @{

/// Append an RNS polynomial: u16 tower count, then per tower a u32
/// coefficient count + that many u64 coefficients.
void put_rns_poly(Writer& w, const poly::RnsPoly& p);
/// Parse an RNS polynomial (bounds: kMaxTowers, kMaxDegree).
[[nodiscard]] poly::RnsPoly get_rns_poly(Reader& r);

/// Append a ciphertext: u8 element count, then each element as an RNS
/// polynomial.
void put_ciphertext(Writer& w, const bfv::Ciphertext& ct);
/// Parse a ciphertext (bounds: kMaxCiphertextElems and the RnsPoly bounds).
[[nodiscard]] bfv::Ciphertext get_ciphertext(Reader& r);

/// Append relinearization keys: u16 digit_bits, u16 digit count, per digit
/// the (b, a) polynomial pair, u8 seeded flag, and -- when seeded -- one
/// u64 seed per digit (the same seed-compression the chip link uses for
/// key uploads).
void put_relin_keys(Writer& w, const bfv::RelinKeys& keys);
/// Parse relinearization keys (bounds: kMaxRelinDigits + RnsPoly bounds).
[[nodiscard]] bfv::RelinKeys get_relin_keys(Reader& r);

/// Append scheduling options: u8 priority, u64 tenant, u32 weight.
void put_submit_options(Writer& w, const service::SubmitOptions& so);
/// Parse scheduling options (priority must name a real class).
[[nodiscard]] service::SubmitOptions get_submit_options(Reader& r);

/// Append one evaluation request: u8 kind, u8 square flag, ciphertext a,
/// ciphertext b (element count 0 when unused).
void put_eval_request(Writer& w, const service::EvalRequest& req);
/// Parse one evaluation request (kind and flag values validated).
[[nodiscard]] service::EvalRequest get_eval_request(Reader& r);

/// @}

/// Decoded kSubmit payload: the batch and the options it rides under.
struct SubmitFrame {
  /// Scheduling tags for every request in the batch.
  service::SubmitOptions options;
  /// The request batch (bounded by kMaxBatch on decode).
  std::vector<service::EvalRequest> requests;
};

/// Encode a kSubmit payload (options + u32 count + requests).
[[nodiscard]] std::vector<std::uint8_t> encode_submit(const SubmitFrame& sf);
/// Decode a kSubmit payload (must consume the whole buffer).
[[nodiscard]] SubmitFrame decode_submit(const std::vector<std::uint8_t>& payload);

/// Decoded kReject payload.
struct RejectFrame {
  /// Why the server refused.
  RejectCode code = RejectCode::kInternal;
  /// Rate-limit refill hint, seconds (0 when not applicable).
  double retry_after_seconds = 0;
  /// Human-readable explanation.
  std::string message;
};

/// Encode a kReject payload (u16 code, u32 retry-after in milliseconds
/// saturated, length-prefixed message).
[[nodiscard]] std::vector<std::uint8_t> encode_reject(const RejectFrame& rj);
/// Decode a kReject payload.
[[nodiscard]] RejectFrame decode_reject(const std::vector<std::uint8_t>& payload);

/// One request's outcome inside a kResultBatch payload.
struct ResultItem {
  /// True when `value` holds the result ciphertext.
  bool ok = false;
  /// The result (ok only).
  bfv::Ciphertext value;
  /// Failure code (ok == false only; kInternal for evaluation errors).
  RejectCode code = RejectCode::kNone;
  /// Failure description (ok == false only).
  std::string message;
};

/// Encode a kResultBatch payload (u32 count, then per item a u8 status
/// followed by the ciphertext or the u16 code + message).
[[nodiscard]] std::vector<std::uint8_t> encode_result_batch(
    const std::vector<ResultItem>& items);
/// Decode a kResultBatch payload.
[[nodiscard]] std::vector<ResultItem> decode_result_batch(
    const std::vector<std::uint8_t>& payload);

/// Decoded kHello payload: the version the client wants to speak plus the
/// session-default scheduling options the connection carries.
struct HelloFrame {
  /// Requested protocol version.
  std::uint8_t version = kWireVersion;
  /// Session defaults for submits that rely on them (the server also
  /// accepts per-submit options; these tag the connection's tenant).
  service::SubmitOptions defaults;
};

/// Encode a kHello payload (u8 version + options).
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloFrame& h);
/// Decode a kHello payload.
[[nodiscard]] HelloFrame decode_hello(const std::vector<std::uint8_t>& payload);

}  // namespace cofhee::net
