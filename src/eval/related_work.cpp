#include "eval/related_work.hpp"

namespace cofhee::eval {

double cofhee_efficiency(std::uint64_t ntt_cycles, double freq_mhz,
                         double pe_area_mm2, const NormalizationFactors& nf) {
  const double ns = static_cast<double>(ntt_cycles) * (1e3 / freq_mhz);
  const double scaled_ns = ns / nf.delay_scale;
  const double scaled_area = pe_area_mm2 / nf.area_scale;
  return 1.0 / (scaled_ns * scaled_area);
}

unsigned rns_towers(unsigned native_bits, unsigned target_bits) {
  return (target_bits + native_bits - 1) / native_bits;
}

std::vector<DesignEntry> published_table() {
  // Paper Table XI.  Efficiency values are as published (already
  // normalized); CoFHEE's row carries the paper numbers for reference and
  // is recomputed by the bench.
  return {
      {"CoFHEE", "ASIC GF 55nm", 14, 128, 12.0, 2.3e-2, 250, 53248, 4.54e-4, true},
      {"F1", "ASIC GF 14/12nm", 14, 32, 151.4, 1.8e2, 1000, 476, 7.21e-5, false},
      {"CraterLake", "ASIC 14/12nm", 16, 28, 472.3, 3.2e2, 1000, 22, 3.26e-4, false},
      {"BTS", "ASIC 7nm", 17, 64, 373.6, 1.6e2, 1200, 554, 9.83e-6, false},
      {"ARK", "ASIC 7nm", 16, 64, 418.3, 2.8e2, 1000, 104, 9.62e-5, false},
      {"HEAX", "FPGA Arria10 GX1150", 14, 27, 0.0, 0.0, 300, 1536, 0.0, false},
      {"Roy", "FPGA ZCU102", 12, 30, 0.0, 0.0, 200, 16425, 0.0, false},
  };
}

}  // namespace cofhee::eval
