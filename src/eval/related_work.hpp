// Table XI: cross-design NTT comparison (paper Section VII).
//
// The paper's efficiency metric is NTT operations per nanosecond per mm^2,
// evaluated for n = 2^13, after two normalizations:
//   1. Technology: CoFHEE's 55 nm PE is scaled to F1's node with the
//      factors obtained by re-synthesizing the Barrett multiplier
//      (area / 16.7, delay / 3.7).
//   2. Word width: 32/64-bit designs must run RNS towers to cover CoFHEE's
//      native 128-bit coefficients, multiplying their NTT time.
// CoFHEE's entry is computed from this repository's chip model (cycles) and
// area model (PE area); the competitors' entries come from their published
// numbers as cited in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cofhee::eval {

struct DesignEntry {
  std::string name;
  std::string technology;
  unsigned max_log2_n;
  unsigned log_q_bits;     // native coefficient width
  double area_mm2;         // full-chip area (or FPGA: n/a -> 0)
  double power_w;          // reported power
  double freq_mhz;
  std::uint64_t ntt_cycles;  // for n = 2^13
  double efficiency;         // NTT ops / ns / mm^2 (normalized); 0 if n/a
  bool silicon_proven;
};

struct NormalizationFactors {
  double area_scale = 16.7;   // 55 nm -> GF 12 nm (Barrett resynthesis)
  double delay_scale = 3.7;
  unsigned target_width_bits = 128;  // RNS penalty reference width
};

/// CoFHEE's efficiency from first principles: measured cycles at `freq_mhz`
/// and the PE area (the paper's comparison basis) scaled by `nf`.
double cofhee_efficiency(std::uint64_t ntt_cycles, double freq_mhz,
                         double pe_area_mm2, const NormalizationFactors& nf);

/// RNS width penalty: ceil(target / native) towers.
unsigned rns_towers(unsigned native_bits, unsigned target_bits);

/// The published Table XI rows (competitors as cited; CoFHEE's cycles and
/// efficiency recomputed by bench_table11_related_work).
std::vector<DesignEntry> published_table();

}  // namespace cofhee::eval
