// Lightweight fixed-width table formatting for the benchmark harnesses.
// Every bench prints "paper" vs "measured/modelled" columns so the
// reproduction status is visible at a glance (and greppable into
// EXPERIMENTS.md).
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace cofhee::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    auto line = [&] {
      os << '+';
      for (auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : "";
        os << ' ' << s << std::string(width[c] - s.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& r : rows_) emit(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

inline std::string fmt_sci(double v, int precision = 2) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

/// Relative error in percent against a paper-reported value.
inline std::string pct_err(double measured, double paper) {
  if (paper == 0) return "n/a";
  return fmt(100.0 * (measured - paper) / paper, 2) + "%";
}

inline void section(const std::string& title, std::ostream& os = std::cout) {
  os << "\n=== " << title << " ===\n";
}

/// Flat metric sink for benchmark regression tracking: benches record the
/// deterministic numbers they print (cycle counts, model outputs) under
/// stable slash-separated keys, and `--json <path>` dumps them for
/// tools/bench_diff.py to diff against the checked-in reference.
class MetricsJson {
 public:
  void set(const std::string& key, double value) { metrics_[key] = value; }

  /// Parse a `--json <path>` pair out of argv; returns the path or "".
  static std::string path_from_args(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--json") return argv[i + 1];
    return "";
  }

  /// Write `{ "key": value, ... }` sorted by key; round-trip precision.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\n";
    const char* sep = "";
    os << std::setprecision(17);
    for (const auto& [k, v] : metrics_) {
      os << sep << "  \"" << k << "\": " << v;
      sep = ",\n";
    }
    os << "\n}\n";
    return os.good();
  }

 private:
  std::map<std::string, double> metrics_;
};

}  // namespace cofhee::eval
