#include "nt/primes.hpp"

#include <limits>
#include <stdexcept>

namespace cofhee::nt {

namespace {

u64 mulmod_u64(u64 a, u64 b, u64 m) {
  return static_cast<u64>(static_cast<u128>(a) * b % m);
}

u64 powmod_u64(u64 base, u64 exp, u64 m) {
  u64 r = 1;
  base %= m;
  while (exp != 0) {
    if (exp & 1) r = mulmod_u64(r, base, m);
    base = mulmod_u64(base, base, m);
    exp >>= 1;
  }
  return r;
}

bool miller_rabin_u64(u64 n, u64 a) {
  if (a % n == 0) return true;
  u64 d = n - 1;
  unsigned s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  u64 x = powmod_u64(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (unsigned i = 1; i < s; ++i) {
    x = mulmod_u64(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

u128 mulmod_u128(u128 a, u128 b, u128 m) {
  const auto p = WideInt<2>(a).mul_full(WideInt<2>(b));
  return (p % WideInt<2>(m)).to_u128();
}

u128 powmod_u128(u128 base, u128 exp, u128 m) {
  u128 r = 1;
  base %= m;
  while (exp != 0) {
    if (exp & 1) r = mulmod_u128(r, base, m);
    base = mulmod_u128(base, base, m);
    exp >>= 1;
  }
  return r;
}

bool miller_rabin_u128(u128 n, u128 a) {
  if (a % n == 0) return true;
  u128 d = n - 1;
  unsigned s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  u128 x = powmod_u128(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (unsigned i = 1; i < s; ++i) {
    x = mulmod_u128(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

// xorshift generator for Miller-Rabin witness sampling; determinism keeps
// prime searches reproducible across runs.
struct XorShift64 {
  u64 s;
  u64 next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Deterministic for all 64-bit n (Sinclair base set).
  for (u64 a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull, 1795265022ull}) {
    if (!miller_rabin_u64(n, a)) return false;
  }
  return true;
}

bool is_prime(u128 n) {
  if (n <= std::numeric_limits<u64>::max()) return is_prime(static_cast<u64>(n));
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
                31ull, 37ull, 41ull, 43ull, 47ull}) {
    if (n % p == 0) return false;
  }
  XorShift64 rng{0x9E3779B97F4A7C15ull ^ static_cast<u64>(n)};
  for (int i = 0; i < 24; ++i) {
    const u128 a = 2 + (static_cast<u128>(rng.next()) % (n - 3));
    if (!miller_rabin_u128(n, a)) return false;
  }
  return true;
}

u64 find_ntt_prime_u64(unsigned bits, std::size_t n, u64 seed) {
  if (bits < 4 || bits > 62) throw std::invalid_argument("find_ntt_prime_u64: bits in [4,62]");
  if (!is_power_of_two(n)) throw std::invalid_argument("find_ntt_prime_u64: n must be 2^k");
  const u64 step = 2 * static_cast<u64>(n);
  const u64 lo = u64{1} << (bits - 1);
  const u64 hi = (bits == 64) ? ~u64{0} : (u64{1} << bits) - 1;
  // Scan downward from 2^bits - 1 (SEAL convention: log q_i ~ bits), keeping
  // q == 1 mod 2n; `seed` selects the (seed+1)-th prime found so distinct
  // seeds give distinct, coprime moduli.
  u64 c = hi;
  c -= (c - 1) % step;
  u64 skip = seed;
  for (; c >= lo; c -= step) {
    if (is_prime(c)) {
      if (skip == 0) return c;
      --skip;
    }
    if (c < lo + step) break;  // avoid wrap
  }
  throw std::runtime_error("find_ntt_prime_u64: no prime in range");
}

u128 find_ntt_prime_u128(unsigned bits, std::size_t n, u64 seed) {
  if (bits < 4 || bits > 127)
    throw std::invalid_argument("find_ntt_prime_u128: bits in [4,127]");
  if (bits <= 62) return find_ntt_prime_u64(bits, n, seed);
  if (!is_power_of_two(n)) throw std::invalid_argument("find_ntt_prime_u128: n must be 2^k");
  const u128 step = 2 * static_cast<u128>(n);
  const u128 lo = u128{1} << (bits - 1);
  const u128 hi = (u128{1} << bits) - 1;
  u128 c = hi;
  c -= (c - 1) % step;
  u64 skip = seed;
  for (; c >= lo; c -= step) {
    if (is_prime(c)) {
      if (skip == 0) return c;
      --skip;
    }
    if (c < lo + step) break;  // avoid wrap
  }
  throw std::runtime_error("find_ntt_prime_u128: no prime in range");
}

std::vector<u64> ntt_prime_chain(unsigned bits, std::size_t n, std::size_t count) {
  std::vector<u64> primes;
  primes.reserve(count);
  u64 seed = 0;
  while (primes.size() < count) {
    u64 q = find_ntt_prime_u64(bits, n, seed++);
    bool dup = false;
    for (u64 p : primes) dup = dup || (p == q);
    if (!dup) primes.push_back(q);
    if (seed > 4096) throw std::runtime_error("ntt_prime_chain: exhausted search");
  }
  return primes;
}

u64 primitive_2nth_root(u64 q, std::size_t n) {
  if ((q - 1) % (2 * n) != 0)
    throw std::invalid_argument("primitive_2nth_root: q != 1 mod 2n");
  const u64 exp = (q - 1) / (2 * static_cast<u64>(n));
  // psi = g^((q-1)/2n) has order dividing 2n; it is primitive iff
  // psi^n == -1.  Scan deterministic candidates.
  for (u64 g = 2; g < q; ++g) {
    const u64 psi = powmod_u64(g, exp, q);
    if (powmod_u64(psi, static_cast<u64>(n), q) == q - 1) return psi;
  }
  throw std::runtime_error("primitive_2nth_root: none found (q not prime?)");
}

u128 primitive_2nth_root(u128 q, std::size_t n) {
  if (q <= std::numeric_limits<u64>::max())
    return primitive_2nth_root(static_cast<u64>(q), n);
  if ((q - 1) % (2 * static_cast<u128>(n)) != 0)
    throw std::invalid_argument("primitive_2nth_root: q != 1 mod 2n");
  const u128 exp = (q - 1) / (2 * static_cast<u128>(n));
  for (u128 g = 2; g < 1000; ++g) {
    const u128 psi = powmod_u128(g, exp, q);
    if (powmod_u128(psi, static_cast<u128>(n), q) == q - 1) return psi;
  }
  throw std::runtime_error("primitive_2nth_root: none found (q not prime?)");
}

std::vector<std::size_t> bit_reverse_table(std::size_t n) {
  if (!is_power_of_two(n)) throw std::invalid_argument("bit_reverse_table: n must be 2^k");
  const unsigned bits = log2_exact(n);
  std::vector<std::size_t> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = bit_reverse(i, bits);
  return t;
}

}  // namespace cofhee::nt
