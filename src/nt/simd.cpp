#include "nt/simd.hpp"

#include <atomic>
#include <stdexcept>
#include <string>

#ifndef COFHEE_SIMD
#define COFHEE_SIMD 1
#endif

#if COFHEE_SIMD && (defined(__x86_64__) || defined(_M_X64))
#define COFHEE_SIMD_AVX2 1
#include <immintrin.h>
#else
#define COFHEE_SIMD_AVX2 0
#endif

#if COFHEE_SIMD && defined(__aarch64__)
#define COFHEE_SIMD_NEON 1
#include <arm_neon.h>
#else
#define COFHEE_SIMD_NEON 0
#endif

namespace cofhee::nt::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar lane -- the reference every vector lane is differentially tested
// against.  The vector lanes below execute these exact recurrences.
// ---------------------------------------------------------------------------

inline u64 mulhi64(u64 a, u64 b) noexcept {
  return static_cast<u64>((static_cast<u128>(a) * b) >> 64);
}

// Lazy Shoup product: w * x mod q plus possibly one extra q, i.e. a value in
// [0, 2q).  Valid for any 64-bit x when w < q (Harvey).
inline u64 shoup_lazy(u64 x, u64 w, u64 wshoup, u64 q) noexcept {
  return w * x - mulhi64(wshoup, x) * q;
}

void ct_butterfly_scalar(u64* x, u64* y, std::size_t len, u64 w, u64 wshoup,
                         u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t i = 0; i < len; ++i) {
    u64 u = x[i];
    if (u >= two_q) u -= two_q;
    const u64 v = shoup_lazy(y[i], w, wshoup, q);
    x[i] = u + v;
    y[i] = u - v + two_q;
  }
}

void gs_butterfly_scalar(u64* x, u64* y, std::size_t len, u64 w, u64 wshoup,
                         u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t i = 0; i < len; ++i) {
    const u64 u = x[i];
    const u64 v = y[i];
    u64 s = u + v;
    if (s >= two_q) s -= two_q;
    x[i] = s;
    y[i] = shoup_lazy(u - v + two_q, w, wshoup, q);
  }
}

void canonicalize_scalar(u64* x, std::size_t len, u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t i = 0; i < len; ++i) {
    u64 v = x[i];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    x[i] = v;
  }
}

// Barrett64::reduce with the quotient-estimate shifts unrolled and the
// (at most two) trailing subtractions made unconditional-count so the
// vector lanes can mirror it step for step.
inline u64 barrett_mul_one(u64 a, u64 b, u64 q, u64 mu, unsigned k) noexcept {
  const u128 x = static_cast<u128>(a) * b;
  const u64 q1 = static_cast<u64>(x >> (k - 1));
  const u64 q3 = static_cast<u64>((static_cast<u128>(q1) * mu) >> (k + 1));
  u64 r = static_cast<u64>(x) - q3 * q;  // < 3q, wraparound intentional
  if (r >= q) r -= q;
  if (r >= q) r -= q;
  return r;
}

void pointwise_mul_scalar(u64* dst, const u64* a, const u64* b,
                          std::size_t len, u64 q, u64 mu, unsigned k) {
  for (std::size_t i = 0; i < len; ++i) dst[i] = barrett_mul_one(a[i], b[i], q, mu, k);
}

void pointwise_mul_acc_scalar(u64* dst, const u64* a, const u64* b,
                              std::size_t len, u64 q, u64 mu, unsigned k) {
  for (std::size_t i = 0; i < len; ++i) {
    const u64 p = barrett_mul_one(a[i], b[i], q, mu, k);
    const u64 s = dst[i] + p;
    dst[i] = s >= q ? s - q : s;
  }
}

void scalar_mul_shoup_scalar(u64* x, std::size_t len, u64 w, u64 wshoup,
                             u64 q) {
  for (std::size_t i = 0; i < len; ++i) {
    u64 r = shoup_lazy(x[i], w, wshoup, q);
    if (r >= q) r -= q;
    x[i] = r;
  }
}

void mont_mul_scalar(u64* dst, const u64* a, const u64* b, std::size_t len,
                     u64 q, u64 qinv_neg) {
  for (std::size_t i = 0; i < len; ++i) {
    const u128 t = static_cast<u128>(a[i]) * b[i];
    const u64 m = static_cast<u64>(t) * qinv_neg;
    u64 r = static_cast<u64>((t + static_cast<u128>(m) * q) >> 64);
    if (r >= q) r -= q;
    dst[i] = r;
  }
}

constexpr KernelTable kScalarTable = {
    ct_butterfly_scalar,     gs_butterfly_scalar,
    canonicalize_scalar,     pointwise_mul_scalar,
    pointwise_mul_acc_scalar, scalar_mul_shoup_scalar,
    mont_mul_scalar,
};

// ---------------------------------------------------------------------------
// AVX2 lane.  AVX2 has no 64x64 multiply, so the 128-bit products are built
// from four 32x32 partials (_mm256_mul_epu32) exactly as Intel HEXL does;
// unsigned 64-bit compares go through the sign-bit flip + signed cmpgt
// trick.  Tail elements (< 4) fall through to the scalar lane, which keeps
// the vector/scalar outputs identical at every length.
// ---------------------------------------------------------------------------
#if COFHEE_SIMD_AVX2

#define COFHEE_AVX2_FN __attribute__((target("avx2")))

COFHEE_AVX2_FN inline __m256i mm_mulhi_epu64(__m256i a, __m256i b) noexcept {
  const __m256i lomask = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i p00 = _mm256_mul_epu32(a, b);
  const __m256i p01 = _mm256_mul_epu32(a, b_hi);
  const __m256i p10 = _mm256_mul_epu32(a_hi, b);
  const __m256i p11 = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(p00, 32), _mm256_and_si256(p01, lomask)),
      _mm256_and_si256(p10, lomask));
  return _mm256_add_epi64(
      _mm256_add_epi64(p11, _mm256_srli_epi64(p01, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(p10, 32), _mm256_srli_epi64(mid, 32)));
}

COFHEE_AVX2_FN inline __m256i mm_mullo_epu64(__m256i a, __m256i b) noexcept {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b), _mm256_slli_epi64(cross, 32));
}

// a - (a >= m ? m : 0), unsigned.
COFHEE_AVX2_FN inline __m256i mm_csub_epu64(__m256i a, __m256i m) noexcept {
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i lt = _mm256_cmpgt_epi64(_mm256_xor_si256(m, sign),
                                        _mm256_xor_si256(a, sign));
  return _mm256_sub_epi64(a, _mm256_andnot_si256(lt, m));
}

COFHEE_AVX2_FN void ct_butterfly_avx2(u64* x, u64* y, std::size_t len, u64 w,
                                      u64 wshoup, u64 q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vq2 = _mm256_set1_epi64x(static_cast<long long>(2 * q));
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  const __m256i vws = _mm256_set1_epi64x(static_cast<long long>(wshoup));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    __m256i u = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    u = mm_csub_epu64(u, vq2);
    const __m256i hi = mm_mulhi_epu64(vws, t);
    const __m256i v =
        _mm256_sub_epi64(mm_mullo_epu64(vw, t), mm_mullo_epu64(hi, vq));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), _mm256_add_epi64(u, v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm256_add_epi64(_mm256_sub_epi64(u, v), vq2));
  }
  if (i < len) ct_butterfly_scalar(x + i, y + i, len - i, w, wshoup, q);
}

COFHEE_AVX2_FN void gs_butterfly_avx2(u64* x, u64* y, std::size_t len, u64 w,
                                      u64 wshoup, u64 q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vq2 = _mm256_set1_epi64x(static_cast<long long>(2 * q));
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  const __m256i vws = _mm256_set1_epi64x(static_cast<long long>(wshoup));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i u = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i s = mm_csub_epu64(_mm256_add_epi64(u, v), vq2);
    const __m256i d = _mm256_add_epi64(_mm256_sub_epi64(u, v), vq2);
    const __m256i hi = mm_mulhi_epu64(vws, d);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), s);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(y + i),
        _mm256_sub_epi64(mm_mullo_epu64(vw, d), mm_mullo_epu64(hi, vq)));
  }
  if (i < len) gs_butterfly_scalar(x + i, y + i, len - i, w, wshoup, q);
}

COFHEE_AVX2_FN void canonicalize_avx2(u64* x, std::size_t len, u64 q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vq2 = _mm256_set1_epi64x(static_cast<long long>(2 * q));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    v = mm_csub_epu64(mm_csub_epu64(v, vq2), vq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), v);
  }
  if (i < len) canonicalize_scalar(x + i, len - i, q);
}

// One Barrett product vector: identical shift/estimate recurrence as
// barrett_mul_one, two fixed conditional subtractions.
COFHEE_AVX2_FN inline __m256i mm_barrett_mul(__m256i a, __m256i b, __m256i vq,
                                             __m256i vmu, unsigned k) noexcept {
  const __m128i sh_lo = _mm_cvtsi32_si128(static_cast<int>(k - 1));
  const __m128i sh_lo_c = _mm_cvtsi32_si128(static_cast<int>(65 - k));
  const __m128i sh_hi = _mm_cvtsi32_si128(static_cast<int>(k + 1));
  const __m128i sh_hi_c = _mm_cvtsi32_si128(static_cast<int>(63 - k));
  const __m256i xlo = mm_mullo_epu64(a, b);
  const __m256i xhi = mm_mulhi_epu64(a, b);
  const __m256i q1 = _mm256_or_si256(_mm256_srl_epi64(xlo, sh_lo),
                                     _mm256_sll_epi64(xhi, sh_lo_c));
  const __m256i q2lo = mm_mullo_epu64(q1, vmu);
  const __m256i q2hi = mm_mulhi_epu64(q1, vmu);
  const __m256i q3 = _mm256_or_si256(_mm256_srl_epi64(q2lo, sh_hi),
                                     _mm256_sll_epi64(q2hi, sh_hi_c));
  __m256i r = _mm256_sub_epi64(xlo, mm_mullo_epu64(q3, vq));
  r = mm_csub_epu64(r, vq);
  return mm_csub_epu64(r, vq);
}

COFHEE_AVX2_FN void pointwise_mul_avx2(u64* dst, const u64* a, const u64* b,
                                       std::size_t len, u64 q, u64 mu,
                                       unsigned k) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vmu = _mm256_set1_epi64x(static_cast<long long>(mu));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mm_barrett_mul(va, vb, vq, vmu, k));
  }
  if (i < len) pointwise_mul_scalar(dst + i, a + i, b + i, len - i, q, mu, k);
}

COFHEE_AVX2_FN void pointwise_mul_acc_avx2(u64* dst, const u64* a,
                                           const u64* b, std::size_t len,
                                           u64 q, u64 mu, unsigned k) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vmu = _mm256_set1_epi64x(static_cast<long long>(mu));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i p = mm_barrett_mul(va, vb, vq, vmu, k);
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mm_csub_epu64(_mm256_add_epi64(d, p), vq));
  }
  if (i < len) pointwise_mul_acc_scalar(dst + i, a + i, b + i, len - i, q, mu, k);
}

COFHEE_AVX2_FN void scalar_mul_shoup_avx2(u64* x, std::size_t len, u64 w,
                                          u64 wshoup, u64 q) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  const __m256i vws = _mm256_set1_epi64x(static_cast<long long>(wshoup));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i hi = mm_mulhi_epu64(vws, t);
    const __m256i r =
        _mm256_sub_epi64(mm_mullo_epu64(vw, t), mm_mullo_epu64(hi, vq));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), mm_csub_epu64(r, vq));
  }
  if (i < len) scalar_mul_shoup_scalar(x + i, len - i, w, wshoup, q);
}

COFHEE_AVX2_FN void mont_mul_avx2(u64* dst, const u64* a, const u64* b,
                                  std::size_t len, u64 q, u64 qinv_neg) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
  const __m256i vqi = _mm256_set1_epi64x(static_cast<long long>(qinv_neg));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i tlo = mm_mullo_epu64(va, vb);
    const __m256i thi = mm_mulhi_epu64(va, vb);
    const __m256i m = mm_mullo_epu64(tlo, vqi);
    // REDC zeroes the low 64 bits of t + m*q, so the carry into the high
    // half is exactly (tlo != 0).
    const __m256i carry =
        _mm256_andnot_si256(_mm256_cmpeq_epi64(tlo, zero), one);
    const __m256i r = _mm256_add_epi64(
        _mm256_add_epi64(thi, mm_mulhi_epu64(m, vq)), carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mm_csub_epu64(r, vq));
  }
  if (i < len) mont_mul_scalar(dst + i, a + i, b + i, len - i, q, qinv_neg);
}

constexpr KernelTable kAvx2Table = {
    ct_butterfly_avx2,     gs_butterfly_avx2,
    canonicalize_avx2,     pointwise_mul_avx2,
    pointwise_mul_acc_avx2, scalar_mul_shoup_avx2,
    mont_mul_avx2,
};

#endif  // COFHEE_SIMD_AVX2

// ---------------------------------------------------------------------------
// NEON lane (aarch64).  64x64 products from vmull_u32 partials; aarch64
// provides a native unsigned 64-bit compare (vcgeq_u64), so the conditional
// subtraction is a compare-and-mask.  Structure mirrors the AVX2 lane.
// ---------------------------------------------------------------------------
#if COFHEE_SIMD_NEON

inline uint64x2_t nn_mulhi_epu64(uint64x2_t a, uint64x2_t b) noexcept {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t p00 = vmull_u32(a_lo, b_lo);
  const uint64x2_t p01 = vmull_u32(a_lo, b_hi);
  const uint64x2_t p10 = vmull_u32(a_hi, b_lo);
  const uint64x2_t p11 = vmull_u32(a_hi, b_hi);
  const uint64x2_t lomask = vdupq_n_u64(0xffffffffULL);
  const uint64x2_t mid = vaddq_u64(
      vaddq_u64(vshrq_n_u64(p00, 32), vandq_u64(p01, lomask)),
      vandq_u64(p10, lomask));
  return vaddq_u64(vaddq_u64(p11, vshrq_n_u64(p01, 32)),
                   vaddq_u64(vshrq_n_u64(p10, 32), vshrq_n_u64(mid, 32)));
}

inline uint64x2_t nn_mullo_epu64(uint64x2_t a, uint64x2_t b) noexcept {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t cross = vaddq_u64(vmull_u32(a_lo, b_hi), vmull_u32(a_hi, b_lo));
  return vaddq_u64(vmull_u32(a_lo, b_lo), vshlq_n_u64(cross, 32));
}

inline uint64x2_t nn_csub_u64(uint64x2_t a, uint64x2_t m) noexcept {
  return vsubq_u64(a, vandq_u64(vcgeq_u64(a, m), m));
}

void ct_butterfly_neon(u64* x, u64* y, std::size_t len, u64 w, u64 wshoup,
                       u64 q) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vq2 = vdupq_n_u64(2 * q);
  const uint64x2_t vw = vdupq_n_u64(w);
  const uint64x2_t vws = vdupq_n_u64(wshoup);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    uint64x2_t u = vld1q_u64(x + i);
    const uint64x2_t t = vld1q_u64(y + i);
    u = nn_csub_u64(u, vq2);
    const uint64x2_t hi = nn_mulhi_epu64(vws, t);
    const uint64x2_t v = vsubq_u64(nn_mullo_epu64(vw, t), nn_mullo_epu64(hi, vq));
    vst1q_u64(x + i, vaddq_u64(u, v));
    vst1q_u64(y + i, vaddq_u64(vsubq_u64(u, v), vq2));
  }
  if (i < len) ct_butterfly_scalar(x + i, y + i, len - i, w, wshoup, q);
}

void gs_butterfly_neon(u64* x, u64* y, std::size_t len, u64 w, u64 wshoup,
                       u64 q) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vq2 = vdupq_n_u64(2 * q);
  const uint64x2_t vw = vdupq_n_u64(w);
  const uint64x2_t vws = vdupq_n_u64(wshoup);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    const uint64x2_t u = vld1q_u64(x + i);
    const uint64x2_t v = vld1q_u64(y + i);
    const uint64x2_t s = nn_csub_u64(vaddq_u64(u, v), vq2);
    const uint64x2_t d = vaddq_u64(vsubq_u64(u, v), vq2);
    const uint64x2_t hi = nn_mulhi_epu64(vws, d);
    vst1q_u64(x + i, s);
    vst1q_u64(y + i, vsubq_u64(nn_mullo_epu64(vw, d), nn_mullo_epu64(hi, vq)));
  }
  if (i < len) gs_butterfly_scalar(x + i, y + i, len - i, w, wshoup, q);
}

void canonicalize_neon(u64* x, std::size_t len, u64 q) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vq2 = vdupq_n_u64(2 * q);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    uint64x2_t v = vld1q_u64(x + i);
    v = nn_csub_u64(nn_csub_u64(v, vq2), vq);
    vst1q_u64(x + i, v);
  }
  if (i < len) canonicalize_scalar(x + i, len - i, q);
}

inline uint64x2_t nn_barrett_mul(uint64x2_t a, uint64x2_t b, uint64x2_t vq,
                                 uint64x2_t vmu, unsigned k) noexcept {
  const int64x2_t sh_lo = vdupq_n_s64(-static_cast<int64_t>(k - 1));
  const int64x2_t sh_lo_c = vdupq_n_s64(static_cast<int64_t>(65 - k));
  const int64x2_t sh_hi = vdupq_n_s64(-static_cast<int64_t>(k + 1));
  const int64x2_t sh_hi_c = vdupq_n_s64(static_cast<int64_t>(63 - k));
  const uint64x2_t xlo = nn_mullo_epu64(a, b);
  const uint64x2_t xhi = nn_mulhi_epu64(a, b);
  const uint64x2_t q1 =
      vorrq_u64(vshlq_u64(xlo, sh_lo), vshlq_u64(xhi, sh_lo_c));
  const uint64x2_t q2lo = nn_mullo_epu64(q1, vmu);
  const uint64x2_t q2hi = nn_mulhi_epu64(q1, vmu);
  const uint64x2_t q3 =
      vorrq_u64(vshlq_u64(q2lo, sh_hi), vshlq_u64(q2hi, sh_hi_c));
  uint64x2_t r = vsubq_u64(xlo, nn_mullo_epu64(q3, vq));
  r = nn_csub_u64(r, vq);
  return nn_csub_u64(r, vq);
}

void pointwise_mul_neon(u64* dst, const u64* a, const u64* b, std::size_t len,
                        u64 q, u64 mu, unsigned k) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vmu = vdupq_n_u64(mu);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2)
    vst1q_u64(dst + i,
              nn_barrett_mul(vld1q_u64(a + i), vld1q_u64(b + i), vq, vmu, k));
  if (i < len) pointwise_mul_scalar(dst + i, a + i, b + i, len - i, q, mu, k);
}

void pointwise_mul_acc_neon(u64* dst, const u64* a, const u64* b,
                            std::size_t len, u64 q, u64 mu, unsigned k) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vmu = vdupq_n_u64(mu);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    const uint64x2_t p =
        nn_barrett_mul(vld1q_u64(a + i), vld1q_u64(b + i), vq, vmu, k);
    vst1q_u64(dst + i, nn_csub_u64(vaddq_u64(vld1q_u64(dst + i), p), vq));
  }
  if (i < len) pointwise_mul_acc_scalar(dst + i, a + i, b + i, len - i, q, mu, k);
}

void scalar_mul_shoup_neon(u64* x, std::size_t len, u64 w, u64 wshoup, u64 q) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vw = vdupq_n_u64(w);
  const uint64x2_t vws = vdupq_n_u64(wshoup);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    const uint64x2_t t = vld1q_u64(x + i);
    const uint64x2_t hi = nn_mulhi_epu64(vws, t);
    const uint64x2_t r = vsubq_u64(nn_mullo_epu64(vw, t), nn_mullo_epu64(hi, vq));
    vst1q_u64(x + i, nn_csub_u64(r, vq));
  }
  if (i < len) scalar_mul_shoup_scalar(x + i, len - i, w, wshoup, q);
}

void mont_mul_neon(u64* dst, const u64* a, const u64* b, std::size_t len,
                   u64 q, u64 qinv_neg) {
  const uint64x2_t vq = vdupq_n_u64(q);
  const uint64x2_t vqi = vdupq_n_u64(qinv_neg);
  const uint64x2_t one = vdupq_n_u64(1);
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint64x2_t tlo = nn_mullo_epu64(va, vb);
    const uint64x2_t thi = nn_mulhi_epu64(va, vb);
    const uint64x2_t m = nn_mullo_epu64(tlo, vqi);
    // REDC zeroes the low 64 bits of t + m*q, so the carry into the high
    // half is exactly (tlo != 0); vtst yields all-ones where tlo is nonzero.
    const uint64x2_t carry = vandq_u64(vtstq_u64(tlo, tlo), one);
    const uint64x2_t r =
        vaddq_u64(vaddq_u64(thi, nn_mulhi_epu64(m, vq)), carry);
    vst1q_u64(dst + i, nn_csub_u64(r, vq));
  }
  if (i < len) mont_mul_scalar(dst + i, a + i, b + i, len - i, q, qinv_neg);
}

constexpr KernelTable kNeonTable = {
    ct_butterfly_neon,     gs_butterfly_neon,
    canonicalize_neon,     pointwise_mul_neon,
    pointwise_mul_acc_neon, scalar_mul_shoup_neon,
    mont_mul_neon,
};

#endif  // COFHEE_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

Isa detect_isa() noexcept {
#if COFHEE_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if COFHEE_SIMD_NEON
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

// -1 == no forced lane.
std::atomic<int> g_forced{-1};

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
    default:
      return "scalar";
  }
}

bool available(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if COFHEE_SIMD_AVX2
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kNeon:
#if COFHEE_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

Isa active_isa() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa detected = detect_isa();
  return detected;
}

bool force_isa(Isa isa) noexcept {
  if (!available(isa)) return false;
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

void clear_forced_isa() noexcept { g_forced.store(-1, std::memory_order_relaxed); }

const KernelTable& kernels() noexcept {
  switch (active_isa()) {
#if COFHEE_SIMD_AVX2
    case Isa::kAvx2:
      return kAvx2Table;
#endif
#if COFHEE_SIMD_NEON
    case Isa::kNeon:
      return kNeonTable;
#endif
    default:
      return kScalarTable;
  }
}

const KernelTable& kernels_for(Isa isa) {
  if (!available(isa))
    throw std::invalid_argument(std::string("simd lane unavailable: ") +
                                isa_name(isa));
  switch (isa) {
#if COFHEE_SIMD_AVX2
    case Isa::kAvx2:
      return kAvx2Table;
#endif
#if COFHEE_SIMD_NEON
    case Isa::kNeon:
      return kNeonTable;
#endif
    default:
      return kScalarTable;
  }
}

}  // namespace cofhee::nt::simd
