// SIMD kernel dispatch for the host-side 64-bit tower hot paths.
//
// HEAAN Demystified's analysis (PAPERS.md) shows the host kernels of an FHE
// stack are memory-bandwidth-bound: the win is not only wider multiplies but
// fewer passes over coefficient memory.  This layer provides both halves of
// that bargain for the u64 RNS towers:
//
//  * ISA lanes.  Each kernel exists as a scalar reference, an AVX2 lane
//    (x86-64, 64x64 products assembled from four 32x32 partials, HEXL-style)
//    and a NEON lane (aarch64, vmull_u32 partials).  Lanes are selected at
//    run time -- `active_isa()` picks the best lane the CPU supports -- and
//    at configure time: building with -DCOFHEE_SIMD=OFF compiles every
//    vector lane out, leaving only the scalar reference.  `force_isa()` lets
//    the differential battery pin a specific lane.
//
//  * Lazy (redundant) representation.  The butterfly kernels keep values in
//    a redundant range -- [0, 4q) through the forward (CT) stages, [0, 2q)
//    through the inverse (GS) stages -- postponing canonicalization to one
//    final pass per transform (Harvey, "Faster arithmetic for number-
//    theoretic transforms").  This removes two conditional subtractions per
//    butterfly.  Valid for q < 2^62, which Barrett64 already enforces.
//
// Every kernel is bit-exact against its scalar reference: the vector lanes
// execute the identical integer recurrence (same shifts, same estimate, same
// fixed number of conditional subtractions), so even the *lazy* outputs --
// not just the canonical residues -- match the scalar lane word for word.
// tests/nt/test_simd_kernels.cpp holds that contract.
#pragma once

#include <cstddef>

#include "nt/wide_int.hpp"

namespace cofhee::nt::simd {

/// Instruction-set lanes a kernel can dispatch to.
enum class Isa : unsigned {
  kScalar = 0,  ///< portable reference lane, always compiled
  kAvx2 = 1,    ///< x86-64 AVX2 lane (four 64-bit values per vector)
  kNeon = 2,    ///< aarch64 NEON lane (two 64-bit values per vector)
};

/// Human-readable lane name ("scalar", "avx2", "neon").
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// True when `isa` was compiled in AND the running CPU supports it.
/// kScalar is always available; vector lanes are compiled out entirely
/// under -DCOFHEE_SIMD=OFF.
[[nodiscard]] bool available(Isa isa) noexcept;

/// The lane kernels dispatch to: the forced lane if one is set, else the
/// best available lane for this CPU.
[[nodiscard]] Isa active_isa() noexcept;

/// Pin dispatch to a specific lane (test hook; also how the runtime-dispatch
/// fallback is exercised).  Returns false -- and changes nothing -- when the
/// lane is unavailable.
bool force_isa(Isa isa) noexcept;

/// Drop any force_isa() pin and return to automatic detection.
void clear_forced_isa() noexcept;

/// One resolved set of kernel entry points (a single lane).  Fetch once per
/// transform via kernels() so the per-block dispatch cost is a plain
/// indirect call, not a re-detection.
struct KernelTable {
  /// Forward (Cooley-Tukey) butterfly block over `len` pairs (x[i], y[i])
  /// sharing the twiddle w (wshoup = floor(w * 2^64 / q)).  Lazy: inputs in
  /// [0, 4q), outputs in [0, 4q):
  ///   u = x[i] - (x[i] >= 2q ? 2q : 0)        // [0, 2q)
  ///   v = w * y[i] - mulhi(wshoup, y[i]) * q  // Shoup product in [0, 2q)
  ///   x[i] = u + v;  y[i] = u - v + 2q
  void (*ct_butterfly)(u64* x, u64* y, std::size_t len, u64 w, u64 wshoup,
                       u64 q);
  /// Inverse (Gentleman-Sande) butterfly block.  Lazy: inputs in [0, 2q),
  /// outputs in [0, 2q):
  ///   s = u + v - (u + v >= 2q ? 2q : 0)
  ///   x[i] = s;  y[i] = shoup_lazy(w, u - v + 2q)
  void (*gs_butterfly)(u64* x, u64* y, std::size_t len, u64 w, u64 wshoup,
                       u64 q);
  /// One canonicalization pass: maps the lazy range [0, 4q) to [0, q) with
  /// two fixed conditional subtractions (2q then q).
  void (*canonicalize)(u64* x, std::size_t len, u64 q);
  /// dst[i] = a[i] * b[i] mod q by Barrett reduction -- the identical
  /// recurrence as Barrett64::reduce (mu = floor(2^2k / q), k = bits(q)).
  /// Canonical inputs (< q), canonical output.
  void (*pointwise_mul)(u64* dst, const u64* a, const u64* b, std::size_t len,
                        u64 q, u64 mu, unsigned k);
  /// dst[i] = (dst[i] + a[i] * b[i] mod q) mod q -- the fused
  /// multiply-accumulate used by the middle tensor component.
  void (*pointwise_mul_acc)(u64* dst, const u64* a, const u64* b,
                            std::size_t len, u64 q, u64 mu, unsigned k);
  /// x[i] = w * x[i] mod q by canonical Shoup multiplication (ShoupMul::mul
  /// semantics); accepts *any* u64 input, so it doubles as the inverse
  /// transform's canonicalization + n^-1 scaling pass.
  void (*scalar_mul_shoup)(u64* x, std::size_t len, u64 w, u64 wshoup, u64 q);
  /// dst[i] = REDC(a[i] * b[i]) for Montgomery-domain residues < q
  /// (Montgomery64::mul_raw semantics; qinv_neg = -q^-1 mod 2^64).
  void (*mont_mul)(u64* dst, const u64* a, const u64* b, std::size_t len,
                   u64 q, u64 qinv_neg);
};

/// Kernel table of the active lane.
[[nodiscard]] const KernelTable& kernels() noexcept;

/// Kernel table of a specific lane; throws std::invalid_argument when the
/// lane is unavailable (compiled out or unsupported by this CPU).
[[nodiscard]] const KernelTable& kernels_for(Isa isa);

}  // namespace cofhee::nt::simd
