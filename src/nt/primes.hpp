// NTT-friendly prime generation and roots of unity.
//
// CoFHEE's pre-silicon verification (Section III-J) generates moduli of the
// form q = 2k*n + 1 (i.e. q == 1 mod 2n) so that a primitive 2n-th root of
// unity psi exists in Z_q -- psi powers feed the twiddle SRAM, psi^2 = omega
// is the n-th root used by the cyclic NTT, and psi itself drives the
// negacyclic wrapped convolution (Section IV-C).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nt/barrett.hpp"
#include "nt/wide_int.hpp"

namespace cofhee::nt {

/// Miller-Rabin with a deterministic base set valid for all 64-bit inputs.
[[nodiscard]] bool is_prime(u64 n);

/// Miller-Rabin for 128-bit candidates (deterministic small-base screen plus
/// 24 pseudo-random rounds; error probability < 4^-24).
[[nodiscard]] bool is_prime(u128 n);

/// Smallest prime q >= 2^(bits-1) with q == 1 (mod 2n) and q < 2^bits,
/// scanning upward from an offset derived from `seed` so distinct seeds give
/// distinct coprime moduli.  Throws std::runtime_error if none exists.
[[nodiscard]] u64 find_ntt_prime_u64(unsigned bits, std::size_t n, u64 seed = 0);

/// 128-bit variant for the chip's native coefficient width.
[[nodiscard]] u128 find_ntt_prime_u128(unsigned bits, std::size_t n, u64 seed = 0);

/// A chain of `count` distinct NTT-friendly primes of the given size.
[[nodiscard]] std::vector<u64> ntt_prime_chain(unsigned bits, std::size_t n,
                                               std::size_t count);

/// Primitive 2n-th root of unity psi mod q (q == 1 mod 2n, q prime):
/// psi^n == -1 (mod q).  Deterministic for a given q.
[[nodiscard]] u64 primitive_2nth_root(u64 q, std::size_t n);
[[nodiscard]] u128 primitive_2nth_root(u128 q, std::size_t n);

/// Bit-reversal of `v` within `bits` bits.
[[nodiscard]] constexpr std::size_t bit_reverse(std::size_t v, unsigned bits) noexcept {
  std::size_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

/// Table of bit-reversed indices for a power-of-two length n.
[[nodiscard]] std::vector<std::size_t> bit_reverse_table(std::size_t n);

/// True iff v is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_power_of_two(std::size_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

[[nodiscard]] constexpr unsigned log2_exact(std::size_t v) {
  unsigned l = 0;
  while ((std::size_t{1} << l) < v) ++l;
  return l;
}

}  // namespace cofhee::nt
