// Fixed-width multi-limb unsigned integers.
//
// CoFHEE operates on coefficients of up to 128 bits with a 160-bit Barrett
// constant (paper Table II, BARRETTCTL2) and 256-bit multiplier products.
// The BFV tensor (Eq. 4) additionally needs ~450-bit exact CRT lifts for the
// t/q rounding step.  WideInt<N> provides the little-endian N x 64-bit limb
// arithmetic (add/sub/mul/divmod/shift/compare) that backs all of this.
//
// The design favors verifiable correctness: schoolbook multiplication and
// Knuth Algorithm D division, both exercised by property tests against
// unsigned __int128 ground truth.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace cofhee::nt {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Number of significant bits in a 64-bit value (0 for 0).
constexpr unsigned bit_length(u64 v) noexcept {
  return v == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(v));
}

/// Number of significant bits in a 128-bit value (0 for 0).
constexpr unsigned bit_length(u128 v) noexcept {
  const u64 hi = static_cast<u64>(v >> 64);
  return hi != 0 ? 64u + bit_length(hi) : bit_length(static_cast<u64>(v));
}

/// Little-endian fixed-width unsigned integer with N 64-bit limbs.
template <std::size_t N>
struct WideInt {
  static_assert(N >= 1 && N <= 16, "unsupported limb count");
  std::array<u64, N> limb{};  // limb[0] is least significant

  constexpr WideInt() = default;
  constexpr explicit WideInt(u64 v) { limb[0] = v; }
  constexpr explicit WideInt(u128 v) {
    limb[0] = static_cast<u64>(v);
    if constexpr (N >= 2) limb[1] = static_cast<u64>(v >> 64);
    else if (static_cast<u64>(v >> 64) != 0)
      throw std::overflow_error("WideInt<1> from u128");
  }

  static constexpr std::size_t limbs() noexcept { return N; }
  static constexpr unsigned bits() noexcept { return 64 * N; }

  [[nodiscard]] constexpr bool is_zero() const noexcept {
    for (u64 l : limb)
      if (l != 0) return false;
    return true;
  }

  [[nodiscard]] constexpr u64 to_u64() const { return limb[0]; }

  [[nodiscard]] constexpr u128 to_u128() const {
    if constexpr (N == 1) return limb[0];
    return (static_cast<u128>(limb[1]) << 64) | limb[0];
  }

  [[nodiscard]] constexpr unsigned bit_len() const noexcept {
    for (std::size_t i = N; i-- > 0;)
      if (limb[i] != 0) return static_cast<unsigned>(64 * i) + bit_length(limb[i]);
    return 0;
  }

  [[nodiscard]] constexpr bool bit(unsigned i) const noexcept {
    return (limb[i / 64] >> (i % 64)) & 1u;
  }

  constexpr void set_bit(unsigned i) noexcept { limb[i / 64] |= (u64{1} << (i % 64)); }

  /// Widen (or narrow, asserting no overflow) to M limbs.
  template <std::size_t M>
  [[nodiscard]] constexpr WideInt<M> resize() const {
    WideInt<M> r;
    for (std::size_t i = 0; i < M && i < N; ++i) r.limb[i] = limb[i];
    if constexpr (M < N) {
      for (std::size_t i = M; i < N; ++i)
        if (limb[i] != 0) throw std::overflow_error("WideInt::resize overflow");
    }
    return r;
  }

  constexpr auto operator<=>(const WideInt& o) const noexcept {
    for (std::size_t i = N; i-- > 0;) {
      if (limb[i] != o.limb[i]) return limb[i] <=> o.limb[i];
    }
    return std::strong_ordering::equal;
  }
  constexpr bool operator==(const WideInt& o) const noexcept = default;

  constexpr WideInt& operator+=(const WideInt& o) noexcept {
    u64 carry = 0;
    for (std::size_t i = 0; i < N; ++i) {
      const u128 s = static_cast<u128>(limb[i]) + o.limb[i] + carry;
      limb[i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    return *this;
  }

  constexpr WideInt& operator-=(const WideInt& o) noexcept {
    u64 borrow = 0;
    for (std::size_t i = 0; i < N; ++i) {
      const u128 d = static_cast<u128>(limb[i]) - o.limb[i] - borrow;
      limb[i] = static_cast<u64>(d);
      borrow = static_cast<u64>(d >> 64) ? 1 : 0;
    }
    return *this;
  }

  friend constexpr WideInt operator+(WideInt a, const WideInt& b) noexcept { return a += b; }
  friend constexpr WideInt operator-(WideInt a, const WideInt& b) noexcept { return a -= b; }

  constexpr WideInt& operator<<=(unsigned s) noexcept {
    if (s >= bits()) { limb.fill(0); return *this; }
    const unsigned word = s / 64, bitoff = s % 64;
    for (std::size_t i = N; i-- > 0;) {
      u64 v = (i >= word) ? limb[i - word] : 0;
      if (bitoff != 0) {
        v <<= bitoff;
        if (i >= word + 1) v |= limb[i - word - 1] >> (64 - bitoff);
      }
      limb[i] = v;
    }
    return *this;
  }

  constexpr WideInt& operator>>=(unsigned s) noexcept {
    if (s >= bits()) { limb.fill(0); return *this; }
    const unsigned word = s / 64, bitoff = s % 64;
    for (std::size_t i = 0; i < N; ++i) {
      u64 v = (i + word < N) ? limb[i + word] : 0;
      if (bitoff != 0) {
        v >>= bitoff;
        if (i + word + 1 < N) v |= limb[i + word + 1] << (64 - bitoff);
      }
      limb[i] = v;
    }
    return *this;
  }

  friend constexpr WideInt operator<<(WideInt a, unsigned s) noexcept { return a <<= s; }
  friend constexpr WideInt operator>>(WideInt a, unsigned s) noexcept { return a >>= s; }

  /// Full schoolbook product: no truncation, result has N+M limbs.
  template <std::size_t M>
  [[nodiscard]] constexpr WideInt<N + M> mul_full(const WideInt<M>& o) const noexcept {
    WideInt<N + M> r;
    for (std::size_t i = 0; i < N; ++i) {
      if (limb[i] == 0) continue;
      u64 carry = 0;
      for (std::size_t j = 0; j < M; ++j) {
        const u128 cur = static_cast<u128>(limb[i]) * o.limb[j] + r.limb[i + j] + carry;
        r.limb[i + j] = static_cast<u64>(cur);
        carry = static_cast<u64>(cur >> 64);
      }
      r.limb[i + M] += carry;
    }
    return r;
  }

  /// Truncated product (mod 2^(64N)); use mul_full when overflow matters.
  friend constexpr WideInt operator*(const WideInt& a, const WideInt& b) noexcept {
    return a.mul_full(b).template resize_trunc<N>();
  }

  template <std::size_t M>
  [[nodiscard]] constexpr WideInt<M> resize_trunc() const noexcept {
    WideInt<M> r;
    for (std::size_t i = 0; i < M && i < N; ++i) r.limb[i] = limb[i];
    return r;
  }

  /// Multiply by a single 64-bit word, keeping N limbs plus carry-out.
  [[nodiscard]] constexpr WideInt mul_small(u64 m, u64* carry_out = nullptr) const noexcept {
    WideInt r;
    u64 carry = 0;
    for (std::size_t i = 0; i < N; ++i) {
      const u128 cur = static_cast<u128>(limb[i]) * m + carry;
      r.limb[i] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    if (carry_out != nullptr) *carry_out = carry;
    return r;
  }

  /// Remainder modulo a 64-bit value (Horner fold, no division object needed).
  [[nodiscard]] constexpr u64 mod_u64(u64 m) const {
    if (m == 0) throw std::domain_error("mod by zero");
    u128 r = 0;
    for (std::size_t i = N; i-- > 0;) r = ((r << 64) | limb[i]) % m;
    return static_cast<u64>(r);
  }

  [[nodiscard]] std::string to_string() const;  // decimal, for diagnostics
};

namespace detail {

/// Knuth Algorithm D on raw limb spans.  u = dividend (un limbs, little
/// endian), v = divisor (vn limbs, vn >= 1, v[vn-1] != 0).  Writes the
/// quotient to q (un - vn + 1 limbs) and the remainder to r (vn limbs).
void knuth_divmod(const u64* u, std::size_t un, const u64* v, std::size_t vn,
                  u64* q, u64* r);

}  // namespace detail

/// Quotient and remainder of a/b.  Throws std::domain_error on b == 0.
template <std::size_t N, std::size_t M>
std::pair<WideInt<N>, WideInt<M>> divmod(const WideInt<N>& a,
                                         const WideInt<M>& b) {
  if (b.is_zero()) throw std::domain_error("division by zero");
  WideInt<N> q;
  WideInt<M> r;
  // Trim divisor to its significant limbs.
  std::size_t vn = M;
  while (vn > 1 && b.limb[vn - 1] == 0) --vn;
  std::size_t un = N;
  while (un > 1 && a.limb[un - 1] == 0) --un;
  if (vn == 1) {
    // Short division.
    const u64 d = b.limb[0];
    u128 rem = 0;
    for (std::size_t i = un; i-- > 0;) {
      const u128 cur = (rem << 64) | a.limb[i];
      q.limb[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    r.limb[0] = static_cast<u64>(rem);
    return {q, r};
  }
  if (un < vn || a < b.template resize_trunc<N>()) {
    // Quotient zero; remainder is a (must fit in M limbs; it does since a<b).
    for (std::size_t i = 0; i < M && i < N; ++i) r.limb[i] = a.limb[i];
    return {q, r};
  }
  std::array<u64, N + 1> qbuf{};
  std::array<u64, M> rbuf{};
  detail::knuth_divmod(a.limb.data(), un, b.limb.data(), vn, qbuf.data(), rbuf.data());
  for (std::size_t i = 0; i + vn <= un + 1 && i < N; ++i) q.limb[i] = qbuf[i];
  for (std::size_t i = 0; i < vn; ++i) r.limb[i] = rbuf[i];
  return {q, r};
}

template <std::size_t N, std::size_t M>
WideInt<N> operator/(const WideInt<N>& a, const WideInt<M>& b) {
  return divmod(a, b).first;
}

template <std::size_t N, std::size_t M>
WideInt<M> operator%(const WideInt<N>& a, const WideInt<M>& b) {
  return divmod(a, b).second;
}

/// Rounded division: floor((a + b/2) / b).  Caller guarantees a + b/2 fits
/// in N limbs (true whenever b <= a's width, as in all t/q scaling uses).
template <std::size_t N, std::size_t M>
WideInt<N> div_round(const WideInt<N>& a, const WideInt<M>& b) {
  WideInt<N> half = (b >> 1).template resize_trunc<N>();
  // For odd b, floor(b/2) biases down, matching round-half-up on a/b.
  return divmod(a + half, b).first;
}

template <std::size_t N>
std::string WideInt<N>::to_string() const {
  if (is_zero()) return "0";
  WideInt<N> v = *this;
  std::string s;
  const WideInt<1> ten{u64{10}};
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, ten);
    s.push_back(static_cast<char>('0' + r.to_u64()));
    v = q;
  }
  return {s.rbegin(), s.rend()};
}

using U128 = WideInt<2>;
using U192 = WideInt<3>;
using U256 = WideInt<4>;
using U320 = WideInt<5>;
using U512 = WideInt<8>;

}  // namespace cofhee::nt
