#include "nt/wide_int.hpp"

#include <vector>

namespace cofhee::nt::detail {

// Knuth TAOCP vol. 2, 4.3.1, Algorithm D, base 2^64.
void knuth_divmod(const u64* u_in, std::size_t un, const u64* v_in, std::size_t vn,
                  u64* q_out, u64* r_out) {
  // Normalize so the divisor's top bit is set.
  const unsigned shift = 64u - bit_length(v_in[vn - 1]);
  std::vector<u64> u(un + 1, 0), v(vn, 0);
  if (shift == 0) {
    for (std::size_t i = 0; i < un; ++i) u[i] = u_in[i];
    for (std::size_t i = 0; i < vn; ++i) v[i] = v_in[i];
  } else {
    u[un] = u_in[un - 1] >> (64 - shift);
    for (std::size_t i = un; i-- > 1;)
      u[i] = (u_in[i] << shift) | (u_in[i - 1] >> (64 - shift));
    u[0] = u_in[0] << shift;
    for (std::size_t i = vn; i-- > 1;)
      v[i] = (v_in[i] << shift) | (v_in[i - 1] >> (64 - shift));
    v[0] = v_in[0] << shift;
  }

  for (std::size_t j = un - vn + 1; j-- > 0;) {
    // Estimate quotient limb from the top two dividend limbs.
    const u128 num = (static_cast<u128>(u[j + vn]) << 64) | u[j + vn - 1];
    u128 qhat = num / v[vn - 1];
    u128 rhat = num % v[vn - 1];
    const u128 b = static_cast<u128>(1) << 64;
    while (qhat >= b ||
           qhat * v[vn - 2] > ((rhat << 64) | u[j + vn - 2])) {
      --qhat;
      rhat += v[vn - 1];
      if (rhat >= b) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+vn].
    u64 borrow = 0, carry = 0;
    for (std::size_t i = 0; i < vn; ++i) {
      const u128 p = qhat * v[i] + carry;
      carry = static_cast<u64>(p >> 64);
      const u128 sub = static_cast<u128>(u[i + j]) - static_cast<u64>(p) - borrow;
      u[i + j] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    const u128 subtop = static_cast<u128>(u[j + vn]) - carry - borrow;
    u[j + vn] = static_cast<u64>(subtop);
    u64 qj = static_cast<u64>(qhat);
    if (subtop >> 64) {  // qhat was one too large: add back.
      --qj;
      u64 c = 0;
      for (std::size_t i = 0; i < vn; ++i) {
        const u128 s = static_cast<u128>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<u64>(s);
        c = static_cast<u64>(s >> 64);
      }
      u[j + vn] += c;
    }
    q_out[j] = qj;
  }
  // Denormalize remainder.
  if (shift == 0) {
    for (std::size_t i = 0; i < vn; ++i) r_out[i] = u[i];
  } else {
    for (std::size_t i = 0; i < vn - 1; ++i)
      r_out[i] = (u[i] >> shift) | (u[i + 1] << (64 - shift));
    r_out[vn - 1] = u[vn - 1] >> shift;
  }
}

}  // namespace cofhee::nt::detail
