// Barrett modular reduction, the multiplier family CoFHEE fabricates.
//
// The paper (Section IV-A) selects Barrett over Montgomery because it needs
// no argument transformation and pipelines well; the chip stores the Barrett
// constant mu = floor(2^k_b / q) in the 160-bit BARRETTCTL2 register and the
// shift amount in BARRETTCTL1 (Table II).  Barrett64 is the software
// baseline's workhorse (64-bit towers with __int128 intermediates);
// Barrett128 mirrors the chip datapath (128-bit operands, 256-bit products).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "nt/wide_int.hpp"

namespace cofhee::nt {

/// Barrett reducer for moduli q with 2 <= bits(q) <= 62.
/// Precomputes mu = floor(2^(2k) / q), k = bits(q).  reduce() accepts any
/// x < 2^(2k) (in particular any product of two residues).
class Barrett64 {
 public:
  Barrett64() = default;
  explicit Barrett64(u64 q) : q_(q) {
    if (q < 2) throw std::invalid_argument("Barrett64: modulus must be >= 2");
    if (bit_length(q) > 62)
      throw std::invalid_argument("Barrett64: modulus must fit in 62 bits");
    k_ = bit_length(q);
    const u128 two_2k = (k_ == 64) ? 0 : (static_cast<u128>(1) << (2 * k_));
    mu_ = static_cast<u64>(two_2k / q);  // fits: mu < 2^(k+1) <= 2^63
  }

  [[nodiscard]] u64 modulus() const noexcept { return q_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] u64 mu() const noexcept { return mu_; }

  /// x mod q for x < 2^(2k).
  [[nodiscard]] u64 reduce(u128 x) const noexcept {
    const u64 q1 = static_cast<u64>(x >> (k_ - 1));   // < 2^(k+1)
    const u128 q2 = static_cast<u128>(q1) * mu_;      // < 2^(2k+2)
    const u64 q3 = static_cast<u64>(q2 >> (k_ + 1));  // quotient estimate
    u128 r = x - static_cast<u128>(q3) * q_;          // r < 3q
    while (r >= q_) r -= q_;                          // at most 2 iterations
    return static_cast<u64>(r);
  }

  [[nodiscard]] u64 mul(u64 a, u64 b) const noexcept {
    return reduce(static_cast<u128>(a) * b);
  }

  [[nodiscard]] u64 add(u64 a, u64 b) const noexcept {
    const u64 s = a + b;
    return s >= q_ ? s - q_ : s;
  }

  [[nodiscard]] u64 sub(u64 a, u64 b) const noexcept {
    return a >= b ? a - b : a + q_ - b;
  }

  [[nodiscard]] u64 neg(u64 a) const noexcept { return a == 0 ? 0 : q_ - a; }

  [[nodiscard]] u64 pow(u64 base, u64 exp) const noexcept {
    u64 r = 1, b = base % q_;
    while (exp != 0) {
      if (exp & 1) r = mul(r, b);
      b = mul(b, b);
      exp >>= 1;
    }
    return r;
  }

  /// a^(-1) mod q via Fermat; requires q prime and a != 0.
  [[nodiscard]] u64 inv(u64 a) const {
    if (a % q_ == 0) throw std::domain_error("Barrett64::inv of zero");
    return pow(a, q_ - 2);
  }

 private:
  u64 q_ = 0;
  u64 mu_ = 0;
  unsigned k_ = 0;
};

/// Shoup precomputation for repeated multiplication by a fixed operand w:
/// w' = floor(w * 2^64 / q).  mul_shoup(x) costs one 64x64 high product and
/// one low product -- the software NTT hot path.
class ShoupMul {
 public:
  ShoupMul() = default;
  ShoupMul(u64 w, u64 q) : w_(w), q_(q) {
    wshoup_ = static_cast<u64>((static_cast<u128>(w) << 64) / q);
  }

  [[nodiscard]] u64 operand() const noexcept { return w_; }

  [[nodiscard]] u64 mul(u64 x) const noexcept {
    const u64 hi = static_cast<u64>((static_cast<u128>(wshoup_) * x) >> 64);
    u64 r = w_ * x - hi * q_;  // wraparound arithmetic is intentional
    if (r >= q_) r -= q_;
    return r;
  }

 private:
  u64 w_ = 0, q_ = 0, wshoup_ = 0;
};

/// Barrett reducer for moduli up to 128 bits -- the chip datapath width.
/// mu = floor(2^(2k) / q) has at most k+1 <= 129 bits and is held in a
/// 192-bit register (the silicon stores 160 bits; Table II).
class Barrett128 {
 public:
  Barrett128() = default;
  explicit Barrett128(u128 q) : q_(q) {
    if (q < 2) throw std::invalid_argument("Barrett128: modulus must be >= 2");
    k_ = bit_length(q);
    // mu = floor(2^(2k) / q) computed with 512-bit long division.
    WideInt<8> two_2k;
    two_2k.set_bit(2 * k_);
    mu_ = (two_2k / WideInt<2>(q)).resize_trunc<3>();
  }

  [[nodiscard]] u128 modulus() const noexcept { return q_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] const U192& mu() const noexcept { return mu_; }

  /// x mod q for x < 2^(2k) (any product of two residues).
  [[nodiscard]] u128 reduce(const U256& x) const noexcept {
    // q1 = floor(x / 2^(k-1)) < 2^(k+1)
    const U192 q1 = (x >> (k_ - 1)).resize_trunc<3>();
    // q3 = floor(q1 * mu / 2^(k+1)) <= floor(x/q), off by at most 2.
    const auto q2 = q1.mul_full(mu_);  // 6 limbs
    const U256 q3 = (q2 >> (k_ + 1)).template resize_trunc<4>();
    const U256 qq = q3.mul_full(WideInt<2>(q_)).resize_trunc<4>();
    U256 r = x - qq;  // r < 3q < 2^130
    const u128 q = q_;
    u128 rv = r.to_u128();
    // r may exceed 128 bits only transiently when q is full-width; handle
    // via one wide subtract first.
    if (r.limb[2] != 0 || r.limb[3] != 0) {
      r -= WideInt<4>(q);
      rv = r.to_u128();
    }
    while (rv >= q) rv -= q;
    return rv;
  }

  [[nodiscard]] u128 mul(u128 a, u128 b) const noexcept {
    return reduce(WideInt<2>(a).mul_full(WideInt<2>(b)));
  }

  [[nodiscard]] u128 add(u128 a, u128 b) const noexcept {
    // a, b < q <= 2^128 - 1: the sum may wrap; when it does, the true value
    // is s + 2^128 and the reduced result s + 2^128 - q equals s - q in
    // two's-complement wraparound arithmetic.
    const u128 s = a + b;
    if (s < a) return s - q_;
    return s >= q_ ? s - q_ : s;
  }

  [[nodiscard]] u128 sub(u128 a, u128 b) const noexcept {
    return a >= b ? a - b : a + (q_ - b);
  }

  [[nodiscard]] u128 neg(u128 a) const noexcept { return a == 0 ? 0 : q_ - a; }

  [[nodiscard]] u128 pow(u128 base, u128 exp) const noexcept {
    u128 r = 1, b = base % q_;
    while (exp != 0) {
      if (exp & 1) r = mul(r, b);
      b = mul(b, b);
      exp >>= 1;
    }
    return r;
  }

  [[nodiscard]] u128 inv(u128 a) const {
    if (a % q_ == 0) throw std::domain_error("Barrett128::inv of zero");
    return pow(a, q_ - 2);
  }

 private:
  u128 q_ = 0;
  U192 mu_{};
  unsigned k_ = 0;
};

}  // namespace cofhee::nt
