// Montgomery multiplication -- the alternative the paper evaluated and
// rejected (Section IV-A): it requires transforming operands into the
// Montgomery domain, which Barrett avoids.  Kept as a first-class unit so
// the design choice can be benchmarked (bench_micro_kernels) and so the
// F1-style comparison (Table XI attributes CoFHEE's edge to "a pipelined
// Barrett multiplier, as opposed to an iterative Montgomery multiplier")
// rests on real code.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "nt/wide_int.hpp"

namespace cofhee::nt {

/// Montgomery reducer for odd moduli q < 2^62, R = 2^64.
class Montgomery64 {
 public:
  Montgomery64() = default;
  explicit Montgomery64(u64 q) : q_(q) {
    if (q < 3 || (q & 1) == 0)
      throw std::invalid_argument("Montgomery64: modulus must be odd and >= 3");
    if (bit_length(q) > 62)
      throw std::invalid_argument("Montgomery64: modulus must fit in 62 bits");
    // qinv = -q^(-1) mod 2^64 by Newton iteration (5 doublings of precision).
    u64 inv = q;  // q * inv == 1 mod 2^3
    for (int i = 0; i < 5; ++i) inv *= 2 - q * inv;
    qinv_neg_ = ~inv + 1;
    r_ = static_cast<u64>((static_cast<u128>(1) << 64) % q);   // 2^64 mod q
    r2_ = static_cast<u64>((static_cast<u128>(r_) * r_) % q);  // 2^128 mod q
  }

  [[nodiscard]] u64 modulus() const noexcept { return q_; }

  /// Map into the Montgomery domain: a -> a * 2^64 mod q.
  [[nodiscard]] u64 to_mont(u64 a) const noexcept { return mul_raw(a, r2_); }

  /// Map out of the Montgomery domain: a~ -> a~ * 2^-64 mod q.
  [[nodiscard]] u64 from_mont(u64 a) const noexcept {
    return reduce_wide(static_cast<u128>(a));
  }

  /// Product of two Montgomery-domain residues (stays in the domain).
  [[nodiscard]] u64 mul_raw(u64 a, u64 b) const noexcept {
    return reduce_wide(static_cast<u128>(a) * b);
  }

  /// Plain-domain modular product, paying both conversions -- exactly the
  /// overhead the paper's argument for Barrett is about.
  [[nodiscard]] u64 mul(u64 a, u64 b) const noexcept {
    return from_mont(mul_raw(to_mont(a), to_mont(b)));
  }

  /// REDC: t * 2^-64 mod q for t < q * 2^64.
  [[nodiscard]] u64 reduce_wide(u128 t) const noexcept {
    const u64 m = static_cast<u64>(t) * qinv_neg_;
    const u128 s = t + static_cast<u128>(m) * q_;
    u64 r = static_cast<u64>(s >> 64);
    if (r >= q_) r -= q_;
    return r;
  }

 private:
  u64 q_ = 0, qinv_neg_ = 0, r_ = 0, r2_ = 0;
};

}  // namespace cofhee::nt
