// A fleet of CoFHEE instances with one host link each.
//
// The paper drives a single chip from a bring-up PC; the scaling story
// (Section VIII, and the HEAX / HEAAN-demystified line of work) is many
// accelerators behind one host.  ChipFarm owns N CofheeChip models, each
// paired with its own HostDriver -- one serial link per chip, so no bus is
// ever shared between concurrent scheduler tasks and a chip's (driver,
// link, cycle counter) triple can be handed to a worker wholesale.  Farms
// may be heterogeneous: each slot carries its own ChipConfig, execution
// mode and link (the ChipSpec constructor), and the scheduler's Placer
// scores work onto the mixed fleet instead of striding blindly.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "chip/chip.hpp"
#include "chip/fault.hpp"
#include "driver/host_driver.hpp"

namespace cofhee::service {

/// One farm slot's build recipe: the chip's structural config plus how its
/// host link drives it.  Defaults reproduce the homogeneous v1 farm slot
/// (fabricated-chip config, FIFO mode, SPI link, no faults).
struct ChipSpec {
  /// Structural + cycle-model parameters of this chip instance.
  chip::ChipConfig cfg{};
  /// Command-execution mode the slot's driver uses (Section III-I).
  driver::ExecMode mode = driver::ExecMode::kFifo;
  /// Serial link the slot's driver moves polynomials over (Section III-H).
  driver::Link link = driver::Link::kSpi;
  /// Deterministic fault plan for this slot (chip/fault.hpp); empty means a
  /// perfectly healthy chip (no injector is even attached).
  chip::FaultSchedule faults{};
};

/// Owns N chip models (identical or mixed), each paired with its own
/// HostDriver and serial link, so a scheduler task can take a whole
/// (chip, driver, link) triple without sharing a bus.
class ChipFarm {
 public:
  /// `chips` identical instances (all built from `cfg`), each driven in
  /// `mode` over its own `link`.  Throws std::invalid_argument on 0 chips.
  explicit ChipFarm(std::size_t chips, driver::ExecMode mode = driver::ExecMode::kFifo,
                    driver::Link link = driver::Link::kSpi, chip::ChipConfig cfg = {});

  /// Heterogeneous farm: one chip per spec, each with its own config, mode
  /// and link.  Throws std::invalid_argument on an empty spec list.
  explicit ChipFarm(const std::vector<ChipSpec>& specs);

  /// Number of chips in the farm.
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  /// Chip model `i` (throws std::out_of_range past size()).
  [[nodiscard]] chip::CofheeChip& chip(std::size_t i) { return *slots_.at(i).soc; }
  /// The driver owning chip `i`'s serial link.
  [[nodiscard]] driver::HostDriver& driver(std::size_t i) { return *slots_.at(i).drv; }
  /// Const view of chip model `i`.
  [[nodiscard]] const chip::CofheeChip& chip(std::size_t i) const {
    return *slots_.at(i).soc;
  }
  /// Structural config of chip `i` (the placement eligibility source).
  [[nodiscard]] const chip::ChipConfig& config(std::size_t i) const {
    return chip(i).config();
  }

  /// Attach a fault injector built from `schedule` to chip `i`'s host links
  /// (both UART and SPI), replacing any previous injector.  Chips built from
  /// a ChipSpec with a non-empty `faults` schedule get this automatically.
  void inject_faults(std::size_t i, const chip::FaultSchedule& schedule);
  /// Chip `i`'s fault injector, or nullptr for a healthy (untapped) chip.
  [[nodiscard]] const chip::FaultInjector* fault_injector(std::size_t i) const;
  /// Mutable view of chip `i`'s injector (the service attaches its trace
  /// recorder through this); nullptr for a healthy chip.
  [[nodiscard]] chip::FaultInjector* fault_injector(std::size_t i) {
    return slots_.at(i).fault.get();
  }

 private:
  // Heap slots: HostDriver keeps a reference to its chip, so both need
  // stable addresses across vector growth.  The fault injector (optional) is
  // referenced by the chip's links, so it too needs a stable address.
  struct Slot {
    std::unique_ptr<chip::CofheeChip> soc;
    std::unique_ptr<driver::HostDriver> drv;
    std::unique_ptr<chip::FaultInjector> fault;
  };
  std::vector<Slot> slots_;
};

}  // namespace cofhee::service
