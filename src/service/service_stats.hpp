// Observability for the evaluation service (service/eval_service.hpp).
//
// Three time axes coexist and every field below names its own:
//
//  * *simulated* seconds come from the chip model's cycle counter, the
//    serial links' byte accounting, and the service's deterministic host
//    cost model (see ServiceOptions::host_coeff_ops_per_sec).  They are
//    machine-independent -- the numbers bench_service_throughput
//    regression-tracks.
//  * *wall* seconds are host wall-clock (how long the scheduler actually
//    ran; machine-dependent, never regression-tracked).
//  * the *pipeline model* replays the dispatcher's actual schedule on the
//    simulated axis: one virtual host resource, one virtual chip-farm
//    resource, advanced in the order phases really executed.  With
//    double-buffered rounds enabled, host phases hide under chip phases and
//    pipeline_span_seconds < serial_span_seconds; with overlap disabled the
//    two spans coincide.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cofhee::service {

/// Per-chip accounting.  A "session" is one continuous occupancy of a chip
/// by a request group: its towers are ring-configured once each and then
/// shared by every request in the group (the transport amortization the
/// service exists for).
struct ChipStats {
  /// Sessions (continuous chip occupancies) this chip ran.  Count.
  std::uint64_t sessions = 0;
  /// Work items (whole requests under kBatchPerChip, tower shards under
  /// kShardTowers) the Placer assigned to this chip.  Count.
  std::uint64_t placements = 0;
  /// Requests this chip touched (a sharded request counts on every chip
  /// serving one of its towers).  Count.
  std::uint64_t requests = 0;
  /// Algorithm-3 (ciphertext-tensor) executions.  Count.
  std::uint64_t tower_runs = 0;
  /// Per-(request, Q-tower) relinearization runs (each bundling this
  /// tower's key-switch products).  Count.
  std::uint64_t relin_tower_runs = 0;
  /// Algorithm-2 key-switch PolyMuls executed.  Count.
  std::uint64_t ks_products = 0;
  /// Relin-key tower uploads paid over this chip's serial link.  Count.
  std::uint64_t key_uploads = 0;
  /// Relin-key tower uploads skipped because the key was already resident
  /// in SP1 (batch-aware key caching).  key_uploads + key_cache_hits is the
  /// cache-less upload count.  Count.
  std::uint64_t key_cache_hits = 0;
  /// Ring reconfigurations paid (register writes + twiddle preload).  Count.
  std::uint64_t ring_configs = 0;
  /// Operand uploads replaced by on-chip DMA duplication because the
  /// polynomial was already resident in an SP bank (squaring scratch-reuse
  /// hint; 2 per tower run of a squared request).  Count.
  std::uint64_t sram_reuses = 0;
  /// Register writes that traveled inside coalesced burst frames instead of
  /// standalone write transactions (link batching).  Count.
  std::uint64_t batched_writes = 0;
  /// Timed ring configurations skipped because this chip's twiddle ROM
  /// already held the requested ring (cross-session twiddle-ROM cache).
  /// Count.
  std::uint64_t twiddle_cache_hits = 0;
  /// Wire bytes avoided by shipping relin-key `a` towers as seed frames
  /// instead of full coefficient bursts.  Bytes.
  std::uint64_t key_bytes_saved = 0;
  /// Typed faults (ChipFaultError / LinkTimeoutError) sessions or probes on
  /// this chip surfaced to the service.  Count.
  std::uint64_t faults = 0;
  /// Times the service quarantined this chip (after
  /// ServiceOptions::quarantine_after consecutive faults).  Count.
  std::uint64_t quarantines = 0;
  /// Times a health probe passed and the chip was re-admitted from
  /// quarantine.  Count.
  std::uint64_t readmissions = 0;
  /// Health probes sent to this chip (while quarantined).  Count.
  std::uint64_t probes = 0;
  /// Whether the chip is quarantined (receiving probes, not sessions) at
  /// sampling time.
  bool quarantined = false;
  /// Measured seconds per work item: EWMA over this chip's completed
  /// sessions, seeded from the modeled unit cost.  Feeds placement, so a
  /// degraded chip (injected stalls inflating its link time) sheds load.
  /// Seconds (simulated) per item.
  double ewma_unit_cost = 0;
  /// PE cycles at the configured clock.  Cycles.
  std::uint64_t chip_cycles = 0;
  /// Simulated serial-link transport.  Seconds (simulated).
  double io_seconds = 0;
  /// Simulated chip compute (chip_cycles at the modeled clock).  Seconds
  /// (simulated).
  double compute_seconds = 0;
  /// Host wall-clock spent inside this chip's sessions.  Seconds (wall).
  double busy_wall_seconds = 0;

  /// Simulated time this chip's serial link + PE were owned by sessions.
  /// Seconds (simulated).
  [[nodiscard]] double simulated_seconds() const noexcept {
    return io_seconds + compute_seconds;
  }
};

/// Order statistics of request latencies (submit to completion), computed
/// over a bounded window of the most recent samples.  Seconds (wall,
/// machine-dependent -- observability only, never regression-tracked).
struct LatencyStats {
  /// Samples ever recorded (not bounded by the window).  Count.
  std::uint64_t count = 0;
  /// Median latency over the retained window.  Seconds (wall).
  double p50 = 0;
  /// 95th-percentile latency over the retained window.  Seconds (wall).
  double p95 = 0;
  /// 99th-percentile latency over the retained window.  Seconds (wall).
  double p99 = 0;
  /// Largest latency ever recorded.  Seconds (wall).
  double max_seconds = 0;
};

/// Bounded sample window feeding LatencyStats: a fixed-capacity ring that
/// overwrites the oldest sample, so long-lived services track recent
/// behavior at O(1) memory per class/tenant.
class LatencyWindow {
 public:
  /// Record one latency sample.  Seconds.
  void record(double seconds) {
    ++count_;
    max_ = std::max(max_, seconds);
    if (samples_.size() < kCapacity) {
      samples_.push_back(seconds);
    } else {
      samples_[next_] = seconds;
      next_ = (next_ + 1) % kCapacity;
    }
  }

  /// Percentile snapshot of the retained window.  O(N) selection, not a
  /// full sort: stats() polls snapshot every class and tenant window, so a
  /// sort here made monitoring O(tenants x N log N) per scrape.  One scratch
  /// copy serves all three ranks; ranks are selected in ascending order so
  /// each nth_element only partitions the suffix left unresolved by the
  /// previous one (everything before the last selected rank is already <=
  /// that rank's value).
  [[nodiscard]] LatencyStats snapshot() const {
    LatencyStats s;
    s.count = count_;
    s.max_seconds = max_;
    if (samples_.empty()) return s;
    std::vector<double> scratch = samples_;
    std::size_t done = 0;  // prefix [0, done) is already partitioned correctly
    const auto at = [&](double q) {
      const auto i = static_cast<std::size_t>(q * static_cast<double>(scratch.size() - 1));
      if (i >= done) {
        std::nth_element(scratch.begin() + static_cast<std::ptrdiff_t>(done),
                         scratch.begin() + static_cast<std::ptrdiff_t>(i),
                         scratch.end());
        done = i;
      }
      return scratch[i];
    };
    s.p50 = at(0.50);
    s.p95 = at(0.95);
    s.p99 = at(0.99);
    return s;
  }

 private:
  static constexpr std::size_t kCapacity = 4096;
  std::vector<double> samples_;
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
  double max_ = 0;
};

/// Per-priority-class accounting (index = static_cast<size_t>(Priority)).
struct ClassStats {
  /// Requests accepted into this class.  Count.
  std::uint64_t submitted = 0;
  /// Requests the scheduler handed to a round.  Count.
  std::uint64_t dispatched = 0;
  /// Requests completed with a value.  Count.
  std::uint64_t completed = 0;
  /// Requests completed with an exception.  Count.
  std::uint64_t failed = 0;
  /// Picks the starvation bound forced for this class out of priority
  /// order (i.e. this class was force-served past waiting higher-priority
  /// work).  Count.
  std::uint64_t forced_picks = 0;
  /// Requests waiting in the queue for this class at sampling time (not
  /// counting in-flight rounds).  Count.
  std::uint64_t queued = 0;
  /// Submit-to-completion latency percentiles.  Seconds (wall).
  LatencyStats latency;
};

/// Sentinel tenant id that aggregates every tenant beyond the tracking cap
/// (ServiceOptions::max_tracked_tenants), so per-tenant accounting stays
/// bounded no matter how many distinct ids traffic carries.
inline constexpr std::uint64_t kOverflowTenantId = ~std::uint64_t{0};

/// Per-tenant accounting inside the fairness scheduler.
struct TenantStats {
  /// Tenant id (SubmitOptions::tenant).
  std::uint64_t tenant = 0;
  /// Latest submitted DRR weight; 0 for the kOverflowTenantId bucket,
  /// whose traffic mixes tenants of different weights.  Dimensionless.
  std::uint32_t weight = 1;
  /// Requests accepted from this tenant.  Count.
  std::uint64_t submitted = 0;
  /// Requests completed with a value.  Count.
  std::uint64_t completed = 0;
  /// Requests completed with an exception.  Count.
  std::uint64_t failed = 0;
  /// Requests rejected at admission -- rate limit, pending quota, queue
  /// full or oversized batch (see ServiceStats::rejected_*).  These never
  /// entered the queue, so they are disjoint from submitted.  Count.
  std::uint64_t rejected = 0;
  /// Submit-to-completion latency percentiles.  Seconds (wall).
  LatencyStats latency;
};

/// Aggregate service counters.  Snapshot-consistent when obtained through
/// EvalService::stats().
struct ServiceStats {
  /// Requests accepted by submit()/submit_batch().  Count.
  std::uint64_t submitted = 0;
  /// Requests whose future was fulfilled with a value.  Count.
  std::uint64_t completed = 0;
  /// Requests whose future was fulfilled with an exception.  Count.
  std::uint64_t failed = 0;
  /// Dispatcher rounds (coalesced batches).  Count.
  std::uint64_t rounds = 0;
  /// Rounds whose host-side preparation ran while a previous round's chip
  /// stage was still in flight (double-buffering engaged).  Count.
  std::uint64_t overlapped_rounds = 0;
  /// Sum of per-chip sessions.  Count.
  std::uint64_t sessions = 0;
  /// Algorithm-2 key-switch PolyMuls, summed over chips.  Count.
  std::uint64_t ks_products = 0;
  /// Relin-key tower uploads paid, summed over chips.  Count.
  std::uint64_t key_uploads = 0;
  /// Relin-key tower uploads skipped by the batch-aware key cache, summed
  /// over chips (key_uploads + key_cache_hits == the cache-less count, and
  /// for relin traffic that cache-less count equals ks_products).  Count.
  std::uint64_t key_cache_hits = 0;
  /// Operand uploads the squaring scratch-reuse hint turned into on-chip
  /// DMA copies, summed over chips (see ChipStats::sram_reuses).  Count.
  std::uint64_t sram_reuses = 0;
  /// Register writes coalesced into burst frames, summed over chips (see
  /// ChipStats::batched_writes).  Count.
  std::uint64_t batched_writes = 0;
  /// Ring configurations skipped by the twiddle-ROM cache, summed over
  /// chips (see ChipStats::twiddle_cache_hits).  Count.
  std::uint64_t twiddle_cache_hits = 0;
  /// Wire bytes saved by seed-compressed relin-key uploads, summed over
  /// chips (see ChipStats::key_bytes_saved).  Bytes.
  std::uint64_t key_bytes_saved = 0;
  /// Injected faults the chips' link injectors actually fired (corrupt
  /// frames, timed-out stalls, kill events -- sub-timeout stalls that merely
  /// slowed a transaction count too), summed over attached injectors.  Count.
  std::uint64_t faults_injected = 0;
  /// Intra-stage retries: a chip's share of a stage faulted and its items
  /// were re-placed (usually onto other chips) within the same round.  Count.
  std::uint64_t retries = 0;
  /// Round-level requeues: a request's round faulted after stage retries
  /// were exhausted and the request went back into the queue for a fresh
  /// round (bounded by ServiceOptions::request_retries).  Count.
  std::uint64_t requeues = 0;
  /// Chips quarantined after ServiceOptions::quarantine_after consecutive
  /// faults, summed over chips (a chip re-quarantined later counts again).
  /// Count.
  std::uint64_t quarantines = 0;
  /// Quarantined chips re-admitted after a passing health probe, summed
  /// over chips.  Count.
  std::uint64_t readmissions = 0;
  /// Health probes sent to quarantined chips, summed over chips.  Count.
  std::uint64_t probes = 0;
  /// Probes that faulted or read back the wrong word (chip stays
  /// quarantined).  Count.
  std::uint64_t probe_failures = 0;
  /// Stage attempts abandoned because a chip's share exceeded the modeled
  /// stage timeout (ServiceOptions::stage_timeout_seconds).  Count.
  std::uint64_t stage_timeouts = 0;
  /// Picks the starvation bound forced out of priority order, summed over
  /// classes.  Count.
  std::uint64_t forced_picks = 0;
  /// Largest consecutive-pick deficit any waiting class ever reached; with
  /// a non-zero ServiceOptions::starvation_bound B this never exceeds
  /// B + kNumPriorities - 2 (only one starved class can be force-served
  /// per pick).  Count.
  std::uint64_t max_class_skip = 0;
  /// Requests rejected at admission because the tenant's token bucket ran
  /// dry (TenantLimits::rate_per_sec; the submit threw RateLimitedError).
  /// Count.
  std::uint64_t rejected_rate_limited = 0;
  /// Requests rejected because admitting them would exceed the tenant's
  /// pending quota (TenantLimits::max_pending; TenantQuotaError).  Count.
  std::uint64_t rejected_quota = 0;
  /// Requests rejected because the service's bounded queue (queued + in
  /// flight) was at capacity (ServiceOptions::max_queue; QueueFullError).
  /// Count.
  std::uint64_t rejected_queue_full = 0;
  /// Requests rejected because their batch exceeded max_queue outright and
  /// could never be admitted (BatchTooLargeError).  Count.
  std::uint64_t rejected_batch_too_large = 0;
  /// Requests pending (queued + in flight) at sampling time.  Count.
  std::size_t queue_depth = 0;
  /// Largest pending depth (queued + in flight) ever observed at submit
  /// time; with a non-zero ServiceOptions::max_queue this never exceeds
  /// the bound.  Count.
  std::size_t peak_queue_depth = 0;
  /// Simulated serial-link transport, summed over chips.  Seconds
  /// (simulated).
  double io_seconds = 0;
  /// Simulated chip compute, summed over chips.  Seconds (simulated).
  double compute_seconds = 0;
  /// Modeled host time in pre-chip phases (base extension, relin digit
  /// decomposition).  Seconds (simulated, host cost model).
  double sim_host_prep_seconds = 0;
  /// Modeled host time in post-chip phases (tensor reassembly + t/q
  /// rounding, relin stacking).  Seconds (simulated, host cost model).
  double sim_host_finish_seconds = 0;
  /// Sum over rounds of each round's chip-stage span: the busiest chip's
  /// simulated session time plus modeled host work executed inside the
  /// stage (mult-relin mid-round assembly/decompose, key-switch
  /// accumulation).  Seconds (simulated).
  double sim_chip_round_seconds = 0;
  /// Pipeline-model makespan of the schedule as actually executed:
  /// double-buffered rounds hide host phases under chip phases here.
  /// Seconds (simulated).
  double pipeline_span_seconds = 0;
  /// Pipeline-model makespan had every phase run back-to-back
  /// (prep + chip + finish summed per round).  Seconds (simulated).
  double serial_span_seconds = 0;
  /// Host wall-clock spent in host phases while a chip stage was in flight
  /// (the measured, machine-dependent counterpart of the model's overlap).
  /// Seconds (wall).
  double overlap_wall_seconds = 0;
  /// Wall-clock since service construction.  Seconds (wall).
  double wall_seconds = 0;
  /// Active window on the monotonic clock: first accepted submit to the
  /// last completion (or to the sampling instant while work is in flight).
  /// 0 before any request is accepted.  Seconds (wall).
  double active_seconds = 0;
  /// Per-chip breakdowns, indexed by ChipFarm chip index.
  std::vector<ChipStats> per_chip;
  /// Per-priority-class breakdowns, indexed by static_cast<size_t>(Priority)
  /// (always kNumPriorities entries).
  std::vector<ClassStats> per_class;
  /// Per-tenant breakdowns, sorted by tenant id.  At most
  /// ServiceOptions::max_tracked_tenants distinct ids are tracked; traffic
  /// from later ids aggregates under kOverflowTenantId (always the last
  /// entry when present, since the sentinel is the largest id).
  std::vector<TenantStats> per_tenant;

  /// Simulated farm makespan: the busiest chip's serial-link + compute
  /// time.  Chips run concurrently, so this is the model's answer to "how
  /// long did the chip side of serving these requests take".  Seconds
  /// (simulated).
  [[nodiscard]] double simulated_seconds() const noexcept {
    double m = 0;
    for (const auto& c : per_chip)
      if (c.simulated_seconds() > m) m = c.simulated_seconds();
    return m;
  }

  /// Deterministic chip-side throughput: completed requests over the
  /// simulated farm makespan.  Requests per second (simulated).
  [[nodiscard]] double simulated_requests_per_sec() const noexcept {
    const double s = simulated_seconds();
    return s > 0 ? static_cast<double>(completed) / s : 0.0;
  }

  /// Deterministic end-to-end throughput: completed requests over the
  /// pipeline-model makespan (host + chip resources, overlapped the way the
  /// dispatcher actually scheduled them) -- the double-buffering headline
  /// number bench_service_throughput regression-tracks.  Requests per
  /// second (simulated).
  [[nodiscard]] double e2e_requests_per_sec() const noexcept {
    return pipeline_span_seconds > 0
               ? static_cast<double>(completed) / pipeline_span_seconds
               : 0.0;
  }

  /// Simulated time double-buffering removed from the serial schedule.
  /// Seconds (simulated).
  [[nodiscard]] double overlap_saved_seconds() const noexcept {
    return std::max(0.0, serial_span_seconds - pipeline_span_seconds);
  }

  /// Fraction of the pipeline-model span the chip resource was busy --
  /// 1.0 means host work is fully hidden.  Dimensionless in [0, 1].
  [[nodiscard]] double chip_occupancy() const noexcept {
    return pipeline_span_seconds > 0
               ? sim_chip_round_seconds / pipeline_span_seconds
               : 0.0;
  }

  /// Wall-clock throughput over the active window (first accepted submit to
  /// last completion on the monotonic clock), so an idle service's rate does
  /// not decay with lifetime.  Requests per second (wall,
  /// machine-dependent).
  [[nodiscard]] double requests_per_sec() const noexcept {
    return active_seconds > 0 ? static_cast<double>(completed) / active_seconds
                              : 0.0;
  }

  /// Fraction of the active window (not the service lifetime -- idling
  /// after the traffic must not decay this, same as requests_per_sec())
  /// chip `i`'s sessions were running.  Dimensionless.
  [[nodiscard]] double utilization(std::size_t i) const {
    return active_seconds > 0 ? per_chip.at(i).busy_wall_seconds / active_seconds
                              : 0.0;
  }
};

}  // namespace cofhee::service
