// Observability for the evaluation service (service/eval_service.hpp).
//
// Two time axes coexist: *simulated* seconds come from the chip model's
// cycle counter and the serial links' byte accounting (deterministic --
// the numbers bench_service_throughput regression-tracks), while *wall*
// seconds are host wall-clock (how long the scheduler actually ran;
// machine-dependent, never regression-tracked).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cofhee::service {

/// Per-chip accounting.  A "session" is one continuous occupancy of a chip
/// by a request group: its towers are ring-configured once each and then
/// shared by every request in the group (the transport amortization the
/// service exists for).
struct ChipStats {
  std::uint64_t sessions = 0;
  std::uint64_t requests = 0;     // requests this chip touched
  std::uint64_t tower_runs = 0;   // Algorithm-3 executions
  std::uint64_t ring_configs = 0; // ring reconfigurations paid
  std::uint64_t chip_cycles = 0;
  double io_seconds = 0;          // simulated serial-link transport
  double compute_seconds = 0;     // simulated chip compute
  double busy_wall_seconds = 0;   // host wall-clock inside sessions

  /// Simulated time this chip's serial link + PE were owned by sessions.
  [[nodiscard]] double simulated_seconds() const noexcept {
    return io_seconds + compute_seconds;
  }
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;      // completed exceptionally
  std::uint64_t rounds = 0;      // dispatcher rounds (coalesced batches)
  std::uint64_t sessions = 0;    // sum of per-chip sessions
  std::size_t queue_depth = 0;   // pending requests at sampling time
  std::size_t peak_queue_depth = 0;
  double io_seconds = 0;         // simulated, summed over chips
  double compute_seconds = 0;    // simulated, summed over chips
  double wall_seconds = 0;       // since service construction
  std::vector<ChipStats> per_chip;

  /// Simulated farm makespan: the busiest chip's serial-link + compute
  /// time.  Chips run concurrently, so this is the model's answer to "how
  /// long did serving these requests take".
  [[nodiscard]] double simulated_seconds() const noexcept {
    double m = 0;
    for (const auto& c : per_chip)
      if (c.simulated_seconds() > m) m = c.simulated_seconds();
    return m;
  }

  /// Deterministic throughput: completed requests over the simulated
  /// makespan (the bench_service_throughput headline number).
  [[nodiscard]] double simulated_requests_per_sec() const noexcept {
    const double s = simulated_seconds();
    return s > 0 ? static_cast<double>(completed) / s : 0.0;
  }

  /// Wall-clock throughput since service start (machine-dependent).
  [[nodiscard]] double requests_per_sec() const noexcept {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds : 0.0;
  }

  /// Fraction of wall time chip `i`'s sessions were running.
  [[nodiscard]] double utilization(std::size_t i) const {
    return wall_seconds > 0 ? per_chip.at(i).busy_wall_seconds / wall_seconds : 0.0;
  }
};

}  // namespace cofhee::service
