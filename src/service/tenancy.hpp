// Tenancy enforcement for the evaluation service: per-tenant token-bucket
// rate limits and pending-request quotas.
//
// The DRR scheduler (service/request_queue.hpp) makes admitted traffic
// *fair*, but nothing before this layer made admission itself bounded per
// tenant: one client could fill the whole queue and every other tenant's
// submissions would bounce off QueueFullError through no fault of their
// own.  TenancyOptions adds the missing teeth at the submit boundary:
//
//  * TokenBucket rate limits -- a tenant sustains rate_per_sec requests
//    per second with bursts up to `burst`; past that, submit throws
//    RateLimitedError carrying a retry-after hint.
//  * Pending quotas -- a tenant may hold at most max_pending requests
//    queued + in flight; past that, submit throws TenantQuotaError until
//    the tenant's own work completes.
//
// Both are deterministic given the submit timestamps: the bucket advances
// on an explicit clock value (the service passes wall seconds since
// construction; tests pass scripted instants), never reads a clock itself,
// and holds no lock -- EvalService serializes access under its own mutex.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace cofhee::service {

/// Deterministic token bucket: refills continuously at `rate` tokens per
/// second up to a cap of `burst`, on an explicit clock (the caller supplies
/// every `now`; the bucket never reads time itself, so scripted-clock tests
/// reproduce exactly).
class TokenBucket {
 public:
  /// An unlimited bucket (never runs dry).
  TokenBucket() = default;

  /// A bucket refilling at `rate_per_sec`, holding at most `burst` tokens
  /// (clamped to >= 1), starting full at clock value `now`.
  TokenBucket(double rate_per_sec, double burst, double now = 0)
      : rate_(rate_per_sec),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)),
        last_(now) {}

  /// Advance the bucket to clock value `now` (monotonic; earlier values are
  /// ignored so a stale caller cannot rewind the refill).
  void refill(double now) noexcept {
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
    last_ = now;
  }

  /// Tokens available at the last refill() instant.
  [[nodiscard]] double available() const noexcept { return tokens_; }

  /// True when the bucket is back at its burst cap (idle long enough that
  /// its state carries no information -- safe to drop and recreate).
  [[nodiscard]] bool full() const noexcept { return tokens_ >= burst_; }

  /// Consume `n` tokens unconditionally (the caller checked can_take()).
  void take(double n) noexcept { tokens_ = std::max(0.0, tokens_ - n); }

  /// True when `n` tokens can be taken at the last refill() instant.  The
  /// epsilon forgives accumulated refill rounding so a tenant paced exactly
  /// at its rate is not spuriously rejected.
  [[nodiscard]] bool can_take(double n) const noexcept {
    return tokens_ + kEpsilon >= n;
  }

  /// refill(now) then take n tokens if available; false (nothing consumed)
  /// otherwise.
  bool try_take(double now, double n = 1.0) noexcept {
    refill(now);
    if (!can_take(n)) return false;
    take(n);
    return true;
  }

  /// Seconds from the last refill() instant until `n` tokens will be
  /// available (0 when they already are; a large constant when the rate is
  /// 0 and the deficit can never refill).
  [[nodiscard]] double retry_after(double n = 1.0) const noexcept {
    if (can_take(n)) return 0;
    if (rate_ <= 0) return kNeverSeconds;
    return (std::min(n, burst_) - tokens_) / rate_;
  }

  /// The retry_after() value for a deficit that can never refill (rate 0).
  static constexpr double kNeverSeconds = 1e18;

 private:
  static constexpr double kEpsilon = 1e-9;
  double rate_ = 0;        // tokens per second; 0 never refills
  double burst_ = 1;       // cap (and initial fill)
  double tokens_ = 1;      // available at clock value last_
  double last_ = 0;        // clock value of the latest refill
};

/// Per-tenant admission limits.  Zero for any field disables that check,
/// so the default-constructed value enforces nothing.
struct TenantLimits {
  /// Sustained submission rate, requests per second; 0 = unlimited.
  double rate_per_sec = 0;
  /// Burst capacity of the rate bucket (requests admitted back-to-back
  /// from a full bucket).  0 defaults to max(rate_per_sec, 1); clamped to
  /// >= 1 so a configured limit always admits a lone request eventually.
  double burst = 0;
  /// Most requests the tenant may hold pending (queued + in flight) at
  /// once; 0 = unlimited.
  std::size_t max_pending = 0;

  /// True when any limit is configured.
  [[nodiscard]] bool any() const noexcept {
    return rate_per_sec > 0 || max_pending > 0;
  }

  /// The effective burst cap (see `burst`).
  [[nodiscard]] double effective_burst() const noexcept {
    return burst > 0 ? std::max(burst, 1.0) : std::max(rate_per_sec, 1.0);
  }
};

/// Tenancy configuration of an EvalService (ServiceOptions::tenancy):
/// limits applied per tenant id at the submit boundary.  Enforcement keys
/// on the *real* tenant id (unlike the stats breakdown, which folds ids
/// past max_tracked_tenants into an overflow bucket), so a flood of fresh
/// ids cannot dodge its own limits by hiding in the fold.
struct TenancyOptions {
  /// Limits applied to every tenant without a per_tenant entry.  The
  /// default (all zero) enforces nothing.
  TenantLimits default_limits;
  /// Per-tenant overrides, keyed by SubmitOptions::tenant.  An entry with
  /// all-zero limits exempts that tenant from default_limits.
  std::unordered_map<std::uint64_t, TenantLimits> per_tenant;

  /// True when any tenant could be limited (the service then keeps
  /// per-tenant bucket/pending state; otherwise admission skips tenancy
  /// entirely).
  [[nodiscard]] bool enabled() const noexcept {
    if (default_limits.any()) return true;
    for (const auto& [id, lim] : per_tenant)
      if (lim.any()) return true;
    return false;
  }

  /// The limits governing `tenant`: its per_tenant entry, else the default.
  [[nodiscard]] const TenantLimits& limits_for(std::uint64_t tenant) const {
    const auto it = per_tenant.find(tenant);
    return it != per_tenant.end() ? it->second : default_limits;
  }
};

}  // namespace cofhee::service
