#include "service/eval_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace cofhee::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

EvalService::EvalService(const bfv::Bfv& scheme, ChipFarm& farm, ServiceOptions opts)
    : scheme_(scheme),
      farm_(farm),
      opts_(opts),
      exec_(opts.pooled_dispatch && farm.size() > 1
                ? backend::ExecPolicy::pooled(farm.size())
                : backend::ExecPolicy::serial()),
      start_(Clock::now()) {
  if (2 * scheme_.context().n() > farm_.chip(0).config().bank_words)
    throw std::invalid_argument("EvalService: ring too large for the farm's chips");
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  stats_.per_chip.resize(farm_.size());
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

EvalService::~EvalService() { shutdown(); }

std::future<bfv::Ciphertext> EvalService::submit(EvalMultRequest req) {
  std::vector<EvalMultRequest> one;
  one.push_back(std::move(req));
  auto futures = submit_batch(std::move(one));
  return std::move(futures.front());
}

std::vector<std::future<bfv::Ciphertext>> EvalService::submit_batch(
    std::vector<EvalMultRequest> reqs) {
  for (const auto& r : reqs)
    if (r.a.size() != 2 || r.b.size() != 2)
      throw std::invalid_argument("EvalService: 2-element ciphertexts expected");
  std::vector<std::future<bfv::Ciphertext>> futures;
  futures.reserve(reqs.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) throw std::runtime_error("EvalService: submit after shutdown");
    for (auto& r : reqs) {
      Pending p;
      p.req = std::move(r);
      futures.push_back(p.promise.get_future());
      queue_.push_back(std::move(p));
    }
    stats_.submitted += reqs.size();
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  }
  work_cv_.notify_one();
  return futures;
}

void EvalService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void EvalService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats EvalService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s = stats_;
  s.queue_depth = queue_.size() + in_flight_;
  s.wall_seconds = seconds_since(start_);
  return s;
}

void EvalService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> round;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) break;  // stopping with nothing left: drained
      const std::size_t take = std::min(queue_.size(), opts_.max_batch);
      round.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        round.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += take;
      ++stats_.rounds;
    }
    run_round(round);
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_flight_ -= round.size();
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
  // Unblock any drain() racing a shutdown with an empty queue.
  idle_cv_.notify_all();
}

void EvalService::run_round(std::vector<Pending>& round) {
  using driver::ChipBfvEvaluator;
  const std::size_t count = round.size();
  const std::size_t towers = scheme_.context().ext_basis().size();

  // Host phase 1, per request: centered base extension Q -> Q u B.
  std::vector<driver::EvalMultOperands> ops(count);
  std::vector<std::vector<driver::TowerTensor>> tensors(count);
  std::vector<std::exception_ptr> errs(count);
  exec_.for_each(count, [&](std::size_t r) {
    try {
      ops[r] = ChipBfvEvaluator::prepare(scheme_, round[r].req.a, round[r].req.b);
      tensors[r].resize(towers);
    } catch (...) {
      errs[r] = std::current_exception();
    }
  });

  std::vector<std::size_t> live;
  live.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (errs[r] == nullptr) live.push_back(r);

  // Chip phase: per-(group, chip) or per-(tower-shard, chip) sessions.
  if (!live.empty()) {
    const auto chip_errs = opts_.strategy == Strategy::kBatchPerChip
                               ? run_batch_per_chip(live, ops, tensors)
                               : run_shard_towers(live, ops, tensors);
    for (std::size_t c = 0; c < chip_errs.size(); ++c) {
      if (chip_errs[c] == nullptr) continue;
      if (opts_.strategy == Strategy::kBatchPerChip) {
        // Chip c only served live[c], live[c + C], ...
        for (std::size_t k = c; k < live.size(); k += chip_errs.size())
          errs[live[k]] = chip_errs[c];
      } else {
        // A tower shard failed: every request in the round misses towers.
        for (std::size_t r : live)
          if (errs[r] == nullptr) errs[r] = chip_errs[c];
      }
    }
  }

  // Host phase 2, per request: reassemble towers, t/q-round, fulfill.
  exec_.for_each(count, [&](std::size_t r) {
    if (errs[r] == nullptr) {
      try {
        round[r].promise.set_value(ChipBfvEvaluator::assemble(scheme_, tensors[r]));
        return;
      } catch (...) {
        errs[r] = std::current_exception();
      }
    }
    round[r].promise.set_exception(errs[r]);
  });

  std::size_t failed = 0;
  for (const auto& e : errs)
    if (e != nullptr) ++failed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.completed += count - failed;
    stats_.failed += failed;
  }
}

std::vector<std::exception_ptr> EvalService::run_batch_per_chip(
    const std::vector<std::size_t>& live,
    const std::vector<driver::EvalMultOperands>& ops,
    std::vector<std::vector<driver::TowerTensor>>& tensors) {
  using driver::ChipBfvEvaluator;
  const std::size_t chips = std::min(farm_.size(), live.size());
  const std::size_t towers = scheme_.context().ext_basis().size();
  std::vector<std::exception_ptr> chip_errs(chips);
  exec_.for_each(chips, [&](std::size_t c) {
    const auto t0 = Clock::now();
    driver::ChipMulReport rep;
    std::uint64_t tower_runs = 0;
    // Chip c's share of the stride-C round-robin below (c < chips <= live).
    const std::uint64_t requests = (live.size() - c + chips - 1) / chips;
    auto& drv = farm_.driver(c);
    try {
      // Tower-outer loop: one ring configuration serves the whole group.
      for (std::size_t tw = 0; tw < towers; ++tw) {
        ChipBfvEvaluator::configure_tower(drv, scheme_, tw, &rep);
        for (std::size_t k = c; k < live.size(); k += chips) {
          const std::size_t r = live[k];
          ChipBfvEvaluator::load_tower(drv, ops[r], tw, &rep);
          ChipBfvEvaluator::execute_tower(drv, &rep);
          tensors[r][tw] = ChipBfvEvaluator::read_tower(drv, &rep);
          ++tower_runs;
        }
      }
    } catch (...) {
      chip_errs[c] = std::current_exception();
    }
    note_chip_session(c, rep, requests, tower_runs, seconds_since(t0));
  });
  return chip_errs;
}

std::vector<std::exception_ptr> EvalService::run_shard_towers(
    const std::vector<std::size_t>& live,
    const std::vector<driver::EvalMultOperands>& ops,
    std::vector<std::vector<driver::TowerTensor>>& tensors) {
  using driver::ChipBfvEvaluator;
  const std::size_t towers = scheme_.context().ext_basis().size();
  const std::size_t chips = std::min(farm_.size(), towers);
  std::vector<std::exception_ptr> chip_errs(chips);
  exec_.for_each(chips, [&](std::size_t c) {
    const auto t0 = Clock::now();
    driver::ChipMulReport rep;
    std::uint64_t tower_runs = 0;
    auto& drv = farm_.driver(c);
    try {
      // Chip c owns extended towers {c, c + C, ...} of every request in the
      // round; each is configured once and shared by the group.
      for (std::size_t tw = c; tw < towers; tw += chips) {
        ChipBfvEvaluator::configure_tower(drv, scheme_, tw, &rep);
        for (std::size_t r : live) {
          ChipBfvEvaluator::load_tower(drv, ops[r], tw, &rep);
          ChipBfvEvaluator::execute_tower(drv, &rep);
          tensors[r][tw] = ChipBfvEvaluator::read_tower(drv, &rep);
          ++tower_runs;
        }
      }
    } catch (...) {
      chip_errs[c] = std::current_exception();
    }
    note_chip_session(c, rep, live.size(), tower_runs, seconds_since(t0));
  });
  return chip_errs;
}

void EvalService::note_chip_session(std::size_t chip, const driver::ChipMulReport& rep,
                                    std::uint64_t requests, std::uint64_t tower_runs,
                                    double busy_wall_seconds) {
  if (tower_runs == 0 && rep.towers == 0) return;  // chip sat this round out
  const double compute_seconds = rep.chip_ms * 1e-3;
  std::lock_guard<std::mutex> lk(mu_);
  auto& c = stats_.per_chip[chip];
  ++c.sessions;
  c.requests += requests;
  c.tower_runs += tower_runs;
  c.ring_configs += rep.towers;
  c.chip_cycles += rep.chip_cycles;
  c.io_seconds += rep.io_seconds;
  c.compute_seconds += compute_seconds;
  c.busy_wall_seconds += busy_wall_seconds;
  ++stats_.sessions;
  stats_.io_seconds += rep.io_seconds;
  stats_.compute_seconds += compute_seconds;
}

}  // namespace cofhee::service
