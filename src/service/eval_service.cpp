#include "service/eval_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace cofhee::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double sim_seconds(const driver::ChipMulReport& rep) {
  return rep.io_seconds + rep.chip_ms * 1e-3;
}

}  // namespace

EvalService::EvalService(const bfv::Bfv& scheme, ChipFarm& farm, ServiceOptions opts)
    : scheme_(scheme),
      farm_(farm),
      opts_(opts),
      exec_(opts.pooled_dispatch && farm.size() > 1
                ? backend::ExecPolicy::pooled(farm.size())
                : backend::ExecPolicy::serial()),
      start_(Clock::now()) {
  if (2 * scheme_.context().n() > farm_.chip(0).config().bank_words)
    throw std::invalid_argument("EvalService: ring too large for the farm's chips");
  // Reject mismatched key material up front (wrong level / ring) instead of
  // letting every relin request fail at dispatch.
  if (opts_.relin_keys != nullptr) scheme_.validate_relin_keys(*opts_.relin_keys);
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.host_coeff_ops_per_sec <= 0) opts_.host_coeff_ops_per_sec = 250e6;
  stats_.per_chip.resize(farm_.size());
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

EvalService::~EvalService() { shutdown(); }

std::future<bfv::Ciphertext> EvalService::submit(EvalRequest req) {
  std::vector<EvalRequest> one;
  one.push_back(std::move(req));
  auto futures = submit_batch(std::move(one));
  return std::move(futures.front());
}

std::vector<std::future<bfv::Ciphertext>> EvalService::submit_batch(
    std::vector<EvalRequest> reqs) {
  if (reqs.empty()) return {};  // nothing accepted: leave the active window alone
  for (const auto& r : reqs) {
    switch (r.kind) {
      case RequestKind::kEvalMult:
      case RequestKind::kMultRelin:
        if (r.a.size() != 2 || r.b.size() != 2)
          throw std::invalid_argument("EvalService: 2-element ciphertexts expected");
        break;
      case RequestKind::kRelinearize:
        if (r.a.size() != 3)
          throw std::invalid_argument(
              "EvalService: relinearize expects a 3-element ciphertext");
        break;
      default:
        throw std::invalid_argument("EvalService: unknown request kind");
    }
    if (r.kind != RequestKind::kEvalMult && opts_.relin_keys == nullptr)
      throw std::invalid_argument(
          "EvalService: relinearization request but no relin_keys configured");
  }
  if (opts_.max_queue != 0 && reqs.size() > opts_.max_queue)
    throw std::invalid_argument(
        "EvalService: batch larger than the queue capacity can ever admit");
  std::vector<std::future<bfv::Ciphertext>> futures;
  futures.reserve(reqs.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) throw std::runtime_error("EvalService: submit after shutdown");
    if (opts_.max_queue != 0 && queue_.size() + reqs.size() > opts_.max_queue)
      throw std::runtime_error("EvalService: queue full");
    for (auto& r : reqs) {
      Pending p;
      p.req = std::move(r);
      futures.push_back(p.promise.get_future());
      queue_.push_back(std::move(p));
    }
    stats_.submitted += reqs.size();
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
    if (!any_accepted_) {
      any_accepted_ = true;
      first_accept_ = Clock::now();
    }
  }
  work_cv_.notify_one();
  return futures;
}

void EvalService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void EvalService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats EvalService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s = stats_;
  s.queue_depth = queue_.size() + in_flight_;
  s.wall_seconds = seconds_since(start_);
  if (any_accepted_) {
    const auto end =
        (queue_.empty() && in_flight_ == 0) ? last_done_ : Clock::now();
    s.active_seconds =
        std::max(0.0, std::chrono::duration<double>(end - first_accept_).count());
  }
  return s;
}

double EvalService::host_seconds(double ops) const noexcept {
  return ops / opts_.host_coeff_ops_per_sec;
}

void EvalService::dispatcher_loop() {
  // Two-slot session buffer: `prev` holds round k-1 with its chip stage in
  // flight while this thread prepares round k host-side (overlap_rounds),
  // then finishes k-1 while round k's chip stage runs.
  std::unique_ptr<Session> prev;
  auto chip_stage_guarded = [this](Session& s) {
    try {
      run_chip_stage(s);
    } catch (...) {
      const auto e = std::current_exception();
      for (auto& err : s.errs)
        if (err == nullptr) err = e;
    }
  };
  for (;;) {
    std::unique_ptr<Session> cur;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (prev == nullptr)
        work_cv_.wait(lk, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && prev == nullptr) break;  // stopping and drained
      if (!queue_.empty()) {
        const std::size_t take = std::min(queue_.size(), opts_.max_batch);
        cur = std::make_unique<Session>();
        cur->round.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          cur->round.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        in_flight_ += take;
        ++stats_.rounds;
      }
    }

    if (cur != nullptr) {
      // Host phase 1 of round k -- with a chip stage in flight this is the
      // double-buffering overlap (base extension hidden under chip time).
      const bool overlapped = prev != nullptr;
      const auto t0 = Clock::now();
      host_prepare(*cur);
      const double prep_wall = seconds_since(t0);
      std::lock_guard<std::mutex> lk(mu_);
      stats_.sim_host_prep_seconds += cur->sim_prep;
      model_host_ += cur->sim_prep;
      cur->model_ready = model_host_;
      if (overlapped) {
        ++stats_.overlapped_rounds;
        stats_.overlap_wall_seconds += prep_wall;
      }
    }

    if (prev != nullptr) {
      prev->chip.get();  // join round k-1's chip stage (never throws; errors
                         // were folded into prev->errs)
      std::lock_guard<std::mutex> lk(mu_);
      const double start = std::max(prev->model_ready, model_chip_);
      prev->model_chip_end = start + prev->sim_chip;
      model_chip_ = prev->model_chip_end;
      stats_.sim_chip_round_seconds += prev->sim_chip;
    }

    bool cur_async = false;
    if (cur != nullptr) {
      if (opts_.overlap_rounds) {
        Session* raw = cur.get();
        cur->chip =
            std::async(std::launch::async, [chip_stage_guarded, raw] { chip_stage_guarded(*raw); });
        cur_async = true;
      } else {
        chip_stage_guarded(*cur);
        std::lock_guard<std::mutex> lk(mu_);
        const double start = std::max(cur->model_ready, model_chip_);
        cur->model_chip_end = start + cur->sim_chip;
        model_chip_ = cur->model_chip_end;
        stats_.sim_chip_round_seconds += cur->sim_chip;
      }
    }

    auto finish_session = [this](Session& s, bool overlapped_finish) {
      const auto t0 = Clock::now();
      host_finish(s);
      const double fin_wall = seconds_since(t0);
      {
        std::lock_guard<std::mutex> lk(mu_);
        model_host_ = std::max(model_host_, s.model_chip_end) + s.sim_finish;
        stats_.sim_host_finish_seconds += s.sim_finish;
        stats_.serial_span_seconds += s.sim_prep + s.sim_chip + s.sim_finish;
        stats_.pipeline_span_seconds = std::max(model_host_, model_chip_);
        if (overlapped_finish) stats_.overlap_wall_seconds += fin_wall;
      }
      retire(s);
    };

    if (prev != nullptr) {
      // Host phase 2 of round k-1 overlaps round k's chip stage.
      finish_session(*prev, cur_async);
      prev.reset();
    }
    if (cur != nullptr) {
      if (cur_async) {
        prev = std::move(cur);
      } else {
        finish_session(*cur, false);
      }
    }
  }
  // Unblock any drain() racing a shutdown with an empty queue.
  idle_cv_.notify_all();
}

void EvalService::host_prepare(Session& s) {
  using driver::ChipBfvEvaluator;
  const std::size_t count = s.round.size();
  const auto& ctx = scheme_.context();
  const double n = static_cast<double>(ctx.n());
  const double qt = static_cast<double>(ctx.q_basis().size());
  const double et = static_cast<double>(ctx.ext_basis().size());
  const double nd =
      opts_.relin_keys != nullptr ? static_cast<double>(opts_.relin_keys->keys.size()) : 0;
  s.slots.resize(count);
  s.errs.assign(count, nullptr);

  double ops = 0;  // host cost model: coefficient operations this phase
  for (const auto& p : s.round)
    ops += p.req.kind == RequestKind::kRelinearize
               ? n * qt * (1.0 + nd)      // CRT lift + digit residue writes
               : 4.0 * n * (qt + et);     // centered base extension, 4 polys

  exec_.for_each(count, [&](std::size_t r) {
    auto& req = s.round[r].req;
    auto& slot = s.slots[r];
    try {
      if (req.kind == RequestKind::kRelinearize) {
        slot.relin = ChipBfvEvaluator::prepare_relin(scheme_, req.a, *opts_.relin_keys);
      } else {
        slot.mult = ChipBfvEvaluator::prepare(scheme_, req.a, req.b);
        slot.tensors.resize(ctx.ext_basis().size());
      }
    } catch (...) {
      s.errs[r] = std::current_exception();
    }
  });
  s.sim_prep = host_seconds(ops);
}

void EvalService::run_chip_stage(Session& s) {
  using driver::ChipBfvEvaluator;
  const std::size_t count = s.round.size();
  const auto& ctx = scheme_.context();
  const double n = static_cast<double>(ctx.n());
  const double qt = static_cast<double>(ctx.q_basis().size());
  const double et = static_cast<double>(ctx.ext_basis().size());
  const double nd =
      opts_.relin_keys != nullptr ? static_cast<double>(opts_.relin_keys->keys.size()) : 0;
  // The two sub-stages are barrier-serialized (the key switch consumes the
  // mid-round host output), so each gets its own per-chip span and the
  // round's span is busiest(A) + mid-host + busiest(B).
  std::vector<double> chip_sim_a(farm_.size(), 0.0);
  std::vector<double> chip_sim_b(farm_.size(), 0.0);

  // Sub-stage A: Eq. 4 tensor sessions over the extended basis.
  std::vector<std::size_t> mult_live;
  mult_live.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr && s.round[r].req.kind != RequestKind::kRelinearize)
      mult_live.push_back(r);
  if (!mult_live.empty()) {
    const auto chip_errs = opts_.strategy == Strategy::kBatchPerChip
                               ? run_mult_batch_per_chip(s, mult_live, chip_sim_a)
                               : run_mult_shard_towers(s, mult_live, chip_sim_a);
    for (std::size_t c = 0; c < chip_errs.size(); ++c) {
      if (chip_errs[c] == nullptr) continue;
      if (opts_.strategy == Strategy::kBatchPerChip) {
        // Chip c only served mult_live[c], mult_live[c + C], ...
        for (std::size_t k = c; k < mult_live.size(); k += chip_errs.size())
          s.errs[mult_live[k]] = chip_errs[c];
      } else {
        // A tower shard failed: every tensor in the round misses towers.
        for (std::size_t r : mult_live)
          if (s.errs[r] == nullptr) s.errs[r] = chip_errs[c];
      }
    }
  }

  // Mid-round host work (kMultRelin): reassemble the tensor, t/q-round it
  // to a 3-element ciphertext, digit-decompose c2 for the key switch.
  double stage_host_ops = 0;
  std::vector<std::size_t> mid;
  mid.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr && s.round[r].req.kind == RequestKind::kMultRelin)
      mid.push_back(r);
  if (!mid.empty()) {
    exec_.for_each(mid.size(), [&](std::size_t i) {
      const std::size_t r = mid[i];
      auto& slot = s.slots[r];
      try {
        const bfv::Ciphertext tensor = ChipBfvEvaluator::assemble(scheme_, slot.tensors);
        slot.relin = ChipBfvEvaluator::prepare_relin(scheme_, tensor, *opts_.relin_keys);
        slot.tensors.clear();
        slot.tensors.shrink_to_fit();
      } catch (...) {
        s.errs[r] = std::current_exception();
      }
    });
    stage_host_ops +=
        static_cast<double>(mid.size()) * (3.0 * n * (et + qt) + n * qt * (1.0 + nd));
  }

  // Sub-stage B: Algorithm-2 key-switch sessions over the Q basis.
  std::vector<std::size_t> relin_live;
  relin_live.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr && s.round[r].req.kind != RequestKind::kEvalMult)
      relin_live.push_back(r);
  if (!relin_live.empty()) {
    for (std::size_t r : relin_live) s.slots[r].relin_accs.resize(ctx.q_basis().size());
    const auto chip_errs = opts_.strategy == Strategy::kBatchPerChip
                               ? run_relin_batch_per_chip(s, relin_live, chip_sim_b)
                               : run_relin_shard_towers(s, relin_live, chip_sim_b);
    for (std::size_t c = 0; c < chip_errs.size(); ++c) {
      if (chip_errs[c] == nullptr) continue;
      if (opts_.strategy == Strategy::kBatchPerChip) {
        for (std::size_t k = c; k < relin_live.size(); k += chip_errs.size())
          if (s.errs[relin_live[k]] == nullptr) s.errs[relin_live[k]] = chip_errs[c];
      } else {
        for (std::size_t r : relin_live)
          if (s.errs[r] == nullptr) s.errs[r] = chip_errs[c];
      }
    }
    // Host-side accumulation of the read-back key-switch products runs
    // inside the sessions (pointwise adds per digit, component, tower).
    stage_host_ops += static_cast<double>(relin_live.size()) * 2.0 * n * qt * nd;
  }

  // The round's chip-stage span: the busiest chip of each serialized
  // sub-stage plus the host work that executed inside the stage.
  double busiest_a = 0, busiest_b = 0;
  for (double cs : chip_sim_a) busiest_a = std::max(busiest_a, cs);
  for (double cs : chip_sim_b) busiest_b = std::max(busiest_b, cs);
  s.sim_chip = busiest_a + busiest_b + host_seconds(stage_host_ops);
}

void EvalService::host_finish(Session& s) {
  using driver::ChipBfvEvaluator;
  const std::size_t count = s.round.size();
  const auto& ctx = scheme_.context();
  const double n = static_cast<double>(ctx.n());
  const double qt = static_cast<double>(ctx.q_basis().size());
  const double et = static_cast<double>(ctx.ext_basis().size());

  double ops = 0;
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr)
      ops += s.round[r].req.kind == RequestKind::kEvalMult
                 ? 3.0 * n * (et + qt)  // tensor reassembly + t/q rounding
                 : 2.0 * n * qt;        // stacking the relinearized towers

  exec_.for_each(count, [&](std::size_t r) {
    if (s.errs[r] == nullptr) {
      try {
        auto& slot = s.slots[r];
        if (s.round[r].req.kind == RequestKind::kEvalMult) {
          s.round[r].promise.set_value(ChipBfvEvaluator::assemble(scheme_, slot.tensors));
        } else {
          s.round[r].promise.set_value(ChipBfvEvaluator::assemble_relin(slot.relin_accs));
        }
        return;
      } catch (...) {
        s.errs[r] = std::current_exception();
      }
    }
    s.round[r].promise.set_exception(s.errs[r]);
  });
  s.sim_finish = host_seconds(ops);
}

void EvalService::retire(Session& s) {
  std::size_t failed = 0;
  for (const auto& e : s.errs)
    if (e != nullptr) ++failed;
  std::lock_guard<std::mutex> lk(mu_);
  stats_.completed += s.round.size() - failed;
  stats_.failed += failed;
  in_flight_ -= s.round.size();
  last_done_ = Clock::now();
  if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
}

std::vector<std::exception_ptr> EvalService::run_mult_batch_per_chip(
    Session& s, const std::vector<std::size_t>& live, std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t chips = std::min(farm_.size(), live.size());
  const std::size_t towers = scheme_.context().ext_basis().size();
  std::vector<std::exception_ptr> chip_errs(chips);
  exec_.for_each(chips, [&](std::size_t c) {
    const auto t0 = Clock::now();
    driver::ChipMulReport rep;
    std::uint64_t tower_runs = 0;
    // Chip c's share of the stride-C round-robin below (c < chips <= live).
    const std::uint64_t requests = (live.size() - c + chips - 1) / chips;
    auto& drv = farm_.driver(c);
    try {
      // Tower-outer loop: one ring configuration serves the whole group.
      for (std::size_t tw = 0; tw < towers; ++tw) {
        ChipBfvEvaluator::configure_tower(drv, scheme_, tw, &rep);
        for (std::size_t k = c; k < live.size(); k += chips) {
          const std::size_t r = live[k];
          ChipBfvEvaluator::load_tower(drv, s.slots[r].mult, tw, &rep);
          ChipBfvEvaluator::execute_tower(drv, &rep);
          s.slots[r].tensors[tw] = ChipBfvEvaluator::read_tower(drv, &rep);
          ++tower_runs;
        }
      }
    } catch (...) {
      chip_errs[c] = std::current_exception();
    }
    chip_sim[c] += sim_seconds(rep);
    note_chip_session(c, rep, requests, tower_runs, 0, seconds_since(t0));
  });
  return chip_errs;
}

std::vector<std::exception_ptr> EvalService::run_mult_shard_towers(
    Session& s, const std::vector<std::size_t>& live, std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t towers = scheme_.context().ext_basis().size();
  const std::size_t chips = std::min(farm_.size(), towers);
  std::vector<std::exception_ptr> chip_errs(chips);
  exec_.for_each(chips, [&](std::size_t c) {
    const auto t0 = Clock::now();
    driver::ChipMulReport rep;
    std::uint64_t tower_runs = 0;
    auto& drv = farm_.driver(c);
    try {
      // Chip c owns extended towers {c, c + C, ...} of every request in the
      // round; each is configured once and shared by the group.
      for (std::size_t tw = c; tw < towers; tw += chips) {
        ChipBfvEvaluator::configure_tower(drv, scheme_, tw, &rep);
        for (std::size_t r : live) {
          ChipBfvEvaluator::load_tower(drv, s.slots[r].mult, tw, &rep);
          ChipBfvEvaluator::execute_tower(drv, &rep);
          s.slots[r].tensors[tw] = ChipBfvEvaluator::read_tower(drv, &rep);
          ++tower_runs;
        }
      }
    } catch (...) {
      chip_errs[c] = std::current_exception();
    }
    chip_sim[c] += sim_seconds(rep);
    note_chip_session(c, rep, live.size(), tower_runs, 0, seconds_since(t0));
  });
  return chip_errs;
}

std::vector<std::exception_ptr> EvalService::run_relin_batch_per_chip(
    Session& s, const std::vector<std::size_t>& live, std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t chips = std::min(farm_.size(), live.size());
  const std::size_t towers = scheme_.context().q_basis().size();
  std::vector<std::exception_ptr> chip_errs(chips);
  exec_.for_each(chips, [&](std::size_t c) {
    const auto t0 = Clock::now();
    driver::ChipMulReport rep;
    std::uint64_t relin_runs = 0;
    const std::uint64_t requests = (live.size() - c + chips - 1) / chips;
    auto& drv = farm_.driver(c);
    try {
      // Tower-outer again: one Q-tower ring configuration serves every
      // digit of every request in the chip's share.
      for (std::size_t tw = 0; tw < towers; ++tw) {
        ChipBfvEvaluator::configure_relin_tower(drv, scheme_, tw, &rep);
        for (std::size_t k = c; k < live.size(); k += chips) {
          const std::size_t r = live[k];
          s.slots[r].relin_accs[tw] = ChipBfvEvaluator::relin_tower(
              drv, scheme_, s.slots[r].relin, *opts_.relin_keys, tw, &rep);
          ++relin_runs;
        }
      }
    } catch (...) {
      chip_errs[c] = std::current_exception();
    }
    chip_sim[c] += sim_seconds(rep);
    note_chip_session(c, rep, requests, 0, relin_runs, seconds_since(t0));
  });
  return chip_errs;
}

std::vector<std::exception_ptr> EvalService::run_relin_shard_towers(
    Session& s, const std::vector<std::size_t>& live, std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t towers = scheme_.context().q_basis().size();
  const std::size_t chips = std::min(farm_.size(), towers);
  std::vector<std::exception_ptr> chip_errs(chips);
  exec_.for_each(chips, [&](std::size_t c) {
    const auto t0 = Clock::now();
    driver::ChipMulReport rep;
    std::uint64_t relin_runs = 0;
    auto& drv = farm_.driver(c);
    try {
      // Chip c owns Q towers {c, c + C, ...} of every request's key switch.
      for (std::size_t tw = c; tw < towers; tw += chips) {
        ChipBfvEvaluator::configure_relin_tower(drv, scheme_, tw, &rep);
        for (std::size_t r : live) {
          s.slots[r].relin_accs[tw] = ChipBfvEvaluator::relin_tower(
              drv, scheme_, s.slots[r].relin, *opts_.relin_keys, tw, &rep);
          ++relin_runs;
        }
      }
    } catch (...) {
      chip_errs[c] = std::current_exception();
    }
    chip_sim[c] += sim_seconds(rep);
    note_chip_session(c, rep, live.size(), 0, relin_runs, seconds_since(t0));
  });
  return chip_errs;
}

void EvalService::note_chip_session(std::size_t chip, const driver::ChipMulReport& rep,
                                    std::uint64_t requests, std::uint64_t tower_runs,
                                    std::uint64_t relin_tower_runs,
                                    double busy_wall_seconds) {
  if (tower_runs == 0 && relin_tower_runs == 0 && rep.towers == 0)
    return;  // chip sat this round out
  const double compute_seconds = rep.chip_ms * 1e-3;
  std::lock_guard<std::mutex> lk(mu_);
  auto& c = stats_.per_chip[chip];
  ++c.sessions;
  c.requests += requests;
  c.tower_runs += tower_runs;
  c.relin_tower_runs += relin_tower_runs;
  c.ks_products += rep.ks_products;
  c.ring_configs += rep.towers;
  c.chip_cycles += rep.chip_cycles;
  c.io_seconds += rep.io_seconds;
  c.compute_seconds += compute_seconds;
  c.busy_wall_seconds += busy_wall_seconds;
  ++stats_.sessions;
  stats_.ks_products += rep.ks_products;
  stats_.io_seconds += rep.io_seconds;
  stats_.compute_seconds += compute_seconds;
}

}  // namespace cofhee::service
