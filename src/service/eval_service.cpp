#include "service/eval_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "chip/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/errors.hpp"

namespace cofhee::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double sim_seconds(const driver::ChipMulReport& rep) {
  return rep.io_seconds + rep.chip_ms * 1e-3;
}

// Retryable failures are exactly the chip/link fault family: a session is a
// pure function of host-resident operands, so a faulted one can be re-run
// elsewhere.  Anything else (bad operands, logic bugs) must surface as-is.
bool is_fault(const std::exception_ptr& e) {
  if (e == nullptr) return false;
  try {
    std::rethrow_exception(e);
  } catch (const chip::FaultError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

EvalService::EvalService(const bfv::Bfv& scheme, ChipFarm& farm, ServiceOptions opts)
    : scheme_(scheme),
      farm_(farm),
      opts_(opts),
      depth_(1),
      exec_(opts.pooled_dispatch && farm.size() > 1
                ? backend::ExecPolicy::pooled(farm.size())
                : backend::ExecPolicy::serial()),
      queue_(opts.sched, opts.starvation_bound),
      start_(Clock::now()) {
  // Per-chip eligibility: the farm may be heterogeneous, so the ring only
  // has to fit somewhere; chips it does not fit are skipped by placement.
  const std::size_t n = scheme_.context().n();
  chip_eligible_.resize(farm_.size());
  chip_unit_cost_.resize(farm_.size());
  key_caches_.resize(farm_.size());
  bool any_eligible = false;
  for (std::size_t c = 0; c < farm_.size(); ++c) {
    chip_eligible_[c] = 2 * n <= farm_.config(c).bank_words;
    any_eligible = any_eligible || chip_eligible_[c];
  }
  if (!any_eligible)
    throw FarmCapacityError("EvalService: ring too large for every chip in the farm");
  // Modeled simulated seconds one tower run costs per chip (link transport
  // of the 7 tower polynomials + an NTT-dominated cycle estimate).  Only
  // the ranking across chips matters: it seeds the Placer before any
  // measured per-chip load exists.
  for (std::size_t c = 0; c < farm_.size(); ++c) {
    auto& soc = farm_.chip(c);
    const auto& cfg = soc.config();
    const double bps = farm_.driver(c).link() == driver::Link::kUart
                           ? soc.uart().bytes_per_second()
                           : soc.spi().bytes_per_second();
    const double dn = static_cast<double>(n);
    const double lg = std::log2(dn);
    const double io = (7.0 * dn * 16.0 + 7.0 * 9.0) / bps;
    const double cycles =
        7.0 * (dn / 2.0 * lg + cfg.stage_overhead * lg + cfg.pointwise_fill + 1.0);
    chip_unit_cost_[c] = io + cycles * cfg.cycle_ns() * 1e-9;
  }
  // Reject mismatched key material up front (wrong level / ring) instead of
  // letting every relin request fail at dispatch.
  if (opts_.relin_keys != nullptr) scheme_.validate_relin_keys(*opts_.relin_keys);
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.pipeline_depth == 0) opts_.pipeline_depth = 1;
  if (opts_.max_tracked_tenants == 0) opts_.max_tracked_tenants = 1;
  if (opts_.host_coeff_ops_per_sec <= 0) opts_.host_coeff_ops_per_sec = 250e6;
  if (opts_.probe_interval_rounds == 0) opts_.probe_interval_rounds = 1;
  opts_.cost_ewma_alpha = std::clamp(opts_.cost_ewma_alpha, 0.0, 1.0);
  health_.resize(farm_.size());
  tenancy_enabled_ = opts_.tenancy.enabled();
  depth_ = opts_.overlap_rounds ? opts_.pipeline_depth : 1;
  stats_.per_chip.resize(farm_.size());
  stats_.per_class.resize(kNumPriorities);
  class_latency_.resize(kNumPriorities);
  // Observability wiring, before any traffic: hand the recorder to every
  // chip's driver and fault injector (they emit link/phase/fault events on
  // their chip's sim tracks), and resolve the latency histograms once so
  // the retire path only observe()s.
  if (opts_.trace != nullptr) {
    for (std::size_t c = 0; c < farm_.size(); ++c) {
      farm_.driver(c).set_tracer(opts_.trace, static_cast<std::uint32_t>(c));
      if (chip::FaultInjector* inj = farm_.fault_injector(c))
        inj->set_tracer(opts_.trace, static_cast<std::uint32_t>(c));
    }
  }
  if (opts_.metrics != nullptr) {
    const std::vector<double> bounds = {0.0001, 0.00025, 0.0005, 0.001, 0.0025,
                                        0.005,  0.01,    0.025,  0.05,  0.1,
                                        0.25,   0.5,     1,      2.5,   5,
                                        10};
    static constexpr const char* kClassNames[kNumPriorities] = {"high", "normal",
                                                                "low"};
    for (std::size_t i = 0; i < kNumPriorities; ++i)
      latency_hist_[i] = &opts_.metrics->histogram(
          "cofhee_request_latency_seconds",
          "Submit-to-completion request latency (wall seconds).", bounds,
          {{"class", kClassNames[i]}});
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

EvalService::~EvalService() { shutdown(); }

std::future<bfv::Ciphertext> EvalService::submit(EvalRequest req, SubmitOptions so) {
  std::vector<EvalRequest> one;
  one.push_back(std::move(req));
  auto futures = submit_batch(std::move(one), so);
  return std::move(futures.front());
}

std::vector<std::future<bfv::Ciphertext>> EvalService::submit_batch(
    std::vector<EvalRequest> reqs, SubmitOptions so) {
  if (reqs.empty()) return {};  // nothing accepted: leave the active window alone
  if (static_cast<std::size_t>(so.priority) >= kNumPriorities)
    throw std::invalid_argument("EvalService: unknown priority class");
  for (const auto& r : reqs) {
    switch (r.kind) {
      case RequestKind::kEvalMult:
      case RequestKind::kMultRelin:
        // Under the squaring hint b is ignored entirely (B == A).
        if (r.a.size() != 2 || (!r.square && r.b.size() != 2))
          throw std::invalid_argument("EvalService: 2-element ciphertexts expected");
        break;
      case RequestKind::kRelinearize:
        if (r.square)
          throw std::invalid_argument(
              "EvalService: the squaring hint applies to multiplication kinds only");
        if (r.a.size() != 3)
          throw std::invalid_argument(
              "EvalService: relinearize expects a 3-element ciphertext");
        break;
      default:
        throw std::invalid_argument("EvalService: unknown request kind");
    }
    if (r.kind != RequestKind::kEvalMult && opts_.relin_keys == nullptr)
      throw std::invalid_argument(
          "EvalService: relinearization request but no relin_keys configured");
  }
  so.weight = std::max<std::uint32_t>(1, so.weight);
  std::vector<std::future<bfv::Ciphertext>> futures;
  futures.reserve(reqs.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) throw ServiceStoppedError("EvalService: submit after shutdown");
    const double now = seconds_since(start_);
    // Admission control.  Every check runs before anything is consumed, so
    // a rejection leaves no partial state (no tokens burned, no pending
    // slots held) and the caller can retry cleanly.
    if (opts_.max_queue != 0 && reqs.size() > opts_.max_queue) {
      note_rejected_locked(so.tenant, reqs.size(),
                           &stats_.rejected_batch_too_large);
      throw BatchTooLargeError(
          "EvalService: batch larger than the queue capacity can ever admit");
    }
    TenantState* ts = nullptr;
    const TenantLimits* lim = nullptr;
    const double need = static_cast<double>(reqs.size());
    if (tenancy_enabled_) {
      lim = &opts_.tenancy.limits_for(so.tenant);
      if (lim->any()) {
        ts = &tenancy_.try_emplace(so.tenant).first->second;
        if (lim->rate_per_sec > 0) {
          // Lazily (re)arm the bucket: a fresh entry starts full, and a
          // GC'd idle tenant re-enters in the same state it left.
          if (ts->pending == 0 && ts->bucket.full())
            ts->bucket = TokenBucket(lim->rate_per_sec, lim->effective_burst(), now);
          ts->bucket.refill(now);
          if (!ts->bucket.can_take(need)) {
            const double after = ts->bucket.retry_after(need);
            note_rejected_locked(so.tenant, reqs.size(),
                                 &stats_.rejected_rate_limited);
            throw RateLimitedError(
                "EvalService: tenant " + std::to_string(so.tenant) +
                    " over its rate limit; retry after " +
                    std::to_string(after) + "s",
                after);
          }
        }
        if (lim->max_pending > 0 && ts->pending + reqs.size() > lim->max_pending) {
          note_rejected_locked(so.tenant, reqs.size(), &stats_.rejected_quota);
          throw TenantQuotaError(
              "EvalService: tenant " + std::to_string(so.tenant) + " holds " +
              std::to_string(ts->pending) + " pending requests (quota " +
              std::to_string(lim->max_pending) + ")");
        }
      }
    }
    // The bound covers queued AND in-flight requests: rounds drained into
    // the pipeline ring still hold capacity until they retire, so a deep
    // pipeline cannot stack ~pipeline_depth x max_queue of work.
    if (opts_.max_queue != 0 &&
        queue_.size() + in_flight_ + reqs.size() > opts_.max_queue) {
      note_rejected_locked(so.tenant, reqs.size(), &stats_.rejected_queue_full);
      throw QueueFullError("EvalService: queue full");
    }
    // Admitted: commit the tenancy charges.
    if (ts != nullptr) {
      if (lim->rate_per_sec > 0) ts->bucket.take(need);
      ts->pending += reqs.size();
    }
    for (auto& r : reqs) {
      Pending p;
      p.req = std::move(r);
      p.so = so;
      p.enqueued = now;
      p.id = ++next_req_id_;
      if (opts_.trace != nullptr)
        opts_.trace->async_begin(p.id, "request", "request",
                                 {{"kind", static_cast<double>(p.req.kind)},
                                  {"priority", static_cast<double>(so.priority)},
                                  {"tenant", static_cast<double>(so.tenant)}});
      futures.push_back(p.promise.get_future());
      queue_.push(std::move(p));
    }
    stats_.submitted += reqs.size();
    stats_.per_class[static_cast<std::size_t>(so.priority)].submitted += reqs.size();
    TenantAgg& ten = tenant_agg(so.tenant);
    // The overflow bucket mixes tenants of different weights; a single
    // reported weight would be meaningless, so it stays at the 0 marker.
    if (ten.counts.tenant != kOverflowTenantId) ten.counts.weight = so.weight;
    ten.counts.submitted += reqs.size();
    stats_.peak_queue_depth =
        std::max(stats_.peak_queue_depth, queue_.size() + in_flight_);
    if (!any_accepted_) {
      any_accepted_ = true;
      first_accept_ = Clock::now();
    }
  }
  work_cv_.notify_one();
  return futures;
}

void EvalService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void EvalService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats EvalService::stats() const {
  ServiceStats s;
  std::vector<LatencyWindow> cls_windows;
  std::vector<LatencyWindow> ten_windows;
  {
    // Under the mutex: plain copies only.  The percentile snapshots sort
    // up to 4096 samples per window, so they run after the lock is
    // released -- a monitoring poll must not stall submit/dispatch.
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
    for (std::size_t c = 0; c < farm_.size(); ++c) {
      s.per_chip[c].ewma_unit_cost = chip_unit_cost_[c];
      s.per_chip[c].quarantined = health_[c].quarantined;
    }
    s.max_class_skip = std::max(s.max_class_skip, queue_.max_skip_observed());
    for (std::size_t c = 0; c < kNumPriorities; ++c)
      s.per_class[c].queued = queue_.class_depth(c);
    cls_windows = class_latency_;
    s.per_tenant.reserve(tenants_.size());
    ten_windows.reserve(tenants_.size());
    for (const auto& [id, agg] : tenants_) {
      s.per_tenant.push_back(agg.counts);
      ten_windows.push_back(agg.latency);
    }
    s.queue_depth = queue_.size() + in_flight_;
    s.wall_seconds = seconds_since(start_);
    if (any_accepted_) {
      const auto end =
          (queue_.empty() && in_flight_ == 0) ? last_done_ : Clock::now();
      s.active_seconds =
          std::max(0.0, std::chrono::duration<double>(end - first_accept_).count());
    }
  }
  // Injector counters are atomics (the chips' stage threads bump them);
  // no lock needed, and farms without injectors contribute nothing.
  for (std::size_t c = 0; c < farm_.size(); ++c)
    if (const chip::FaultInjector* inj = farm_.fault_injector(c))
      s.faults_injected += inj->faults_fired();
  for (std::size_t c = 0; c < cls_windows.size(); ++c)
    s.per_class[c].latency = cls_windows[c].snapshot();
  for (std::size_t t = 0; t < s.per_tenant.size(); ++t)
    s.per_tenant[t].latency = ten_windows[t].snapshot();
  std::sort(s.per_tenant.begin(), s.per_tenant.end(),
            [](const TenantStats& a, const TenantStats& b) { return a.tenant < b.tenant; });
  return s;
}

double EvalService::host_seconds(double ops) const noexcept {
  return ops / opts_.host_coeff_ops_per_sec;
}

void EvalService::note_rejected_locked(std::uint64_t tenant, std::uint64_t n,
                                       std::uint64_t* service_counter) {
  *service_counter += n;
  tenant_agg(tenant).counts.rejected += n;
}

void EvalService::tenancy_release_locked(std::uint64_t tenant, double now) {
  const auto it = tenancy_.find(tenant);
  if (it == tenancy_.end()) return;
  TenantState& ts = it->second;
  if (ts.pending > 0) --ts.pending;
  // Garbage-collect idle state: once nothing is pending and the bucket has
  // refilled to its cap, the entry carries no information (a fresh entry
  // reproduces it exactly), so the table stays bounded by *active* tenants
  // rather than every id ever seen.
  if (ts.pending == 0) {
    ts.bucket.refill(now);
    if (ts.bucket.full()) tenancy_.erase(it);
  }
}

EvalService::TenantAgg& EvalService::tenant_agg(std::uint64_t tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    // Bound the table: once max_tracked_tenants distinct ids exist, later
    // ids share the overflow bucket (fairness itself is unaffected -- the
    // queue keys on the real tenant id, only the stats breakdown folds).
    if (tenant != kOverflowTenantId && tenants_.size() >= opts_.max_tracked_tenants)
      return tenant_agg(kOverflowTenantId);
    it = tenants_.try_emplace(tenant).first;
    it->second.counts.tenant = tenant;
    // The overflow bucket aggregates mixed-weight tenants: weight 0 marks
    // "not a single tenant's weight" (see TenantStats::weight).
    if (tenant == kOverflowTenantId) it->second.counts.weight = 0;
  }
  return it->second;
}

void EvalService::dispatcher_loop() {
  // K-slot session ring: up to depth_ - 1 sessions keep their chip stages
  // in flight (chained back-to-back, since the chips are an exclusive
  // resource) while this thread prepares new rounds ahead of them and
  // defers their finishes.  depth_ == 2 is the classic two-slot double
  // buffer; depth_ == 1 runs every phase back-to-back.
  std::deque<std::unique_ptr<Session>> ring;
  std::shared_future<void> chip_tail;  // most recently launched chip stage
  auto chip_stage_guarded = [this](Session& s) {
    try {
      run_chip_stage(s);
    } catch (...) {
      const auto e = std::current_exception();
      for (auto& err : s.errs)
        if (err == nullptr) err = e;
    }
  };
  // Join, model and finish the ring's oldest session (ring order == chip
  // order, so the pipeline model advances exactly as executed).
  auto retire_oldest = [&] {
    std::unique_ptr<Session> s = std::move(ring.front());
    ring.pop_front();
    s->chip.wait();  // never throws; errors were folded into s->errs
    {
      std::lock_guard<std::mutex> lk(mu_);
      const double start = std::max(s->model_ready, model_chip_);
      if (opts_.trace != nullptr && s->sim_chip > 0)
        opts_.trace->span_sim_at(obs::TraceRecorder::kSimTrackChipModel,
                                 "model.chip", "model", start, s->sim_chip);
      s->model_chip_end = start + s->sim_chip;
      model_chip_ = s->model_chip_end;
      stats_.sim_chip_round_seconds += s->sim_chip;
    }
    finish_session(*s, /*overlapped_finish=*/!ring.empty());
  };

  for (;;) {
    std::unique_ptr<Session> cur;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (ring.empty())
        work_cv_.wait(lk, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && ring.empty()) break;  // stopping and drained
      if (!queue_.empty()) {
        cur = std::make_unique<Session>();
        cur->round = queue_.pop_round(opts_.max_batch, seconds_since(start_));
        in_flight_ += cur->round.size();
        ++stats_.rounds;
        for (const Pending& p : cur->round) {
          auto& cls = stats_.per_class[static_cast<std::size_t>(p.so.priority)];
          ++cls.dispatched;
          if (p.forced) {
            ++cls.forced_picks;
            ++stats_.forced_picks;
          }
        }
        stats_.max_class_skip =
            std::max(stats_.max_class_skip, queue_.max_skip_observed());
      }
    }

    if (cur != nullptr) {
      // Host phase 1 of round k -- with chip stages in flight this is the
      // pipelining overlap (base extension hidden under chip time).
      const bool overlapped = !ring.empty();
      const auto t0 = Clock::now();
      host_prepare(*cur);
      const double prep_wall = seconds_since(t0);
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.sim_host_prep_seconds += cur->sim_prep;
        if (opts_.trace != nullptr && cur->sim_prep > 0)
          opts_.trace->span_sim_at(obs::TraceRecorder::kSimTrackHostModel,
                                   "model.prep", "model", model_host_,
                                   cur->sim_prep);
        model_host_ += cur->sim_prep;
        cur->model_ready = model_host_;
        if (overlapped) {
          ++stats_.overlapped_rounds;
          stats_.overlap_wall_seconds += prep_wall;
        }
      }
      if (depth_ > 1) {
        // Chain this round's chip stage behind the previous one (chips are
        // exclusive) and slot the session into the ring.
        Session* raw = cur.get();
        std::shared_future<void> prev = chip_tail;
        cur->chip = std::async(std::launch::async,
                               [chip_stage_guarded, raw, prev] {
                                 if (prev.valid()) prev.wait();
                                 chip_stage_guarded(*raw);
                               })
                        .share();
        chip_tail = cur->chip;
        ring.push_back(std::move(cur));
        while (ring.size() > depth_ - 1) retire_oldest();
      } else {
        chip_stage_guarded(*cur);
        {
          std::lock_guard<std::mutex> lk(mu_);
          const double start = std::max(cur->model_ready, model_chip_);
          if (opts_.trace != nullptr && cur->sim_chip > 0)
            opts_.trace->span_sim_at(obs::TraceRecorder::kSimTrackChipModel,
                                     "model.chip", "model", start, cur->sim_chip);
          cur->model_chip_end = start + cur->sim_chip;
          model_chip_ = cur->model_chip_end;
          stats_.sim_chip_round_seconds += cur->sim_chip;
        }
        finish_session(*cur, false);
      }
    } else {
      // Queue ran dry (or shutdown): drain one pipelined session, then
      // re-check for new arrivals.
      retire_oldest();
    }
  }
  // Unblock any drain() racing a shutdown with an empty queue.
  idle_cv_.notify_all();
}

void EvalService::finish_session(Session& s, bool overlapped_finish) {
  const auto t0 = Clock::now();
  host_finish(s);
  const double fin_wall = seconds_since(t0);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const double fstart = std::max(model_host_, s.model_chip_end);
    if (opts_.trace != nullptr && s.sim_finish > 0)
      opts_.trace->span_sim_at(obs::TraceRecorder::kSimTrackHostModel,
                               "model.finish", "model", fstart, s.sim_finish);
    model_host_ = fstart + s.sim_finish;
    stats_.sim_host_finish_seconds += s.sim_finish;
    stats_.serial_span_seconds += s.sim_prep + s.sim_chip + s.sim_finish;
    stats_.pipeline_span_seconds = std::max(model_host_, model_chip_);
    if (overlapped_finish) stats_.overlap_wall_seconds += fin_wall;
  }
  retire(s);
}

void EvalService::host_prepare(Session& s) {
  using driver::ChipBfvEvaluator;
  const auto span =
      opts_.trace != nullptr
          ? opts_.trace->span_wall(
                "round.prepare", "round",
                {{"requests", static_cast<double>(s.round.size())}})
          : obs::TraceRecorder::WallSpan();
  const std::size_t count = s.round.size();
  const auto& ctx = scheme_.context();
  const double n = static_cast<double>(ctx.n());
  const double qt = static_cast<double>(ctx.q_basis().size());
  const double et = static_cast<double>(ctx.ext_basis().size());
  const double nd =
      opts_.relin_keys != nullptr ? static_cast<double>(opts_.relin_keys->keys.size()) : 0;
  s.slots.resize(count);
  s.errs.assign(count, nullptr);

  double ops = 0;  // host cost model: coefficient operations this phase
  for (const auto& p : s.round)
    ops += p.req.kind == RequestKind::kRelinearize
               ? n * qt * (1.0 + nd)  // CRT lift + digit residue writes
               : (p.req.square ? 2.0 : 4.0) * n * (qt + et);  // base extension

  exec_.for_each(count, [&](std::size_t r) {
    auto& req = s.round[r].req;
    auto& slot = s.slots[r];
    try {
      if (req.kind == RequestKind::kRelinearize) {
        slot.relin = ChipBfvEvaluator::prepare_relin(scheme_, req.a, *opts_.relin_keys);
      } else {
        slot.mult = req.square ? ChipBfvEvaluator::prepare_square(scheme_, req.a)
                               : ChipBfvEvaluator::prepare(scheme_, req.a, req.b);
        slot.tensors.resize(ctx.ext_basis().size());
      }
    } catch (...) {
      s.errs[r] = std::current_exception();
    }
  });
  s.sim_prep = host_seconds(ops);
}

void EvalService::run_chip_stage(Session& s) {
  using driver::ChipBfvEvaluator;
  const auto span =
      opts_.trace != nullptr
          ? opts_.trace->span_wall(
                "round.chip_stage", "round",
                {{"requests", static_cast<double>(s.round.size())}})
          : obs::TraceRecorder::WallSpan();
  // Chip stages are chained (the chips are an exclusive resource), so this
  // is the one spot where probing a quarantined chip cannot race a session:
  // quarantined chips receive no placements, and no other stage is running.
  probe_quarantined(/*force=*/false);
  const std::size_t count = s.round.size();
  const auto& ctx = scheme_.context();
  const double n = static_cast<double>(ctx.n());
  const double qt = static_cast<double>(ctx.q_basis().size());
  const double et = static_cast<double>(ctx.ext_basis().size());
  const double nd =
      opts_.relin_keys != nullptr ? static_cast<double>(opts_.relin_keys->keys.size()) : 0;
  // The two sub-stages are barrier-serialized (the key switch consumes the
  // mid-round host output), so each gets its own per-chip span and the
  // round's span is busiest(A) + mid-host + busiest(B).
  std::vector<double> chip_sim_a(farm_.size(), 0.0);
  std::vector<double> chip_sim_b(farm_.size(), 0.0);

  // Sub-stage A: Eq. 4 tensor sessions over the extended basis.
  std::vector<std::size_t> mult_live;
  mult_live.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr && s.round[r].req.kind != RequestKind::kRelinearize)
      mult_live.push_back(r);
  if (!mult_live.empty()) {
    if (opts_.strategy == Strategy::kBatchPerChip)
      run_mult_batch_per_chip(s, mult_live, chip_sim_a);
    else
      run_mult_shard_towers(s, mult_live, chip_sim_a);
  }

  // Mid-round host work (kMultRelin): reassemble the tensor, t/q-round it
  // to a 3-element ciphertext, digit-decompose c2 for the key switch.
  double stage_host_ops = 0;
  std::vector<std::size_t> mid;
  mid.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr && s.round[r].req.kind == RequestKind::kMultRelin)
      mid.push_back(r);
  if (!mid.empty()) {
    exec_.for_each(mid.size(), [&](std::size_t i) {
      const std::size_t r = mid[i];
      auto& slot = s.slots[r];
      try {
        const bfv::Ciphertext tensor = ChipBfvEvaluator::assemble(scheme_, slot.tensors);
        slot.relin = ChipBfvEvaluator::prepare_relin(scheme_, tensor, *opts_.relin_keys);
        slot.tensors.clear();
        slot.tensors.shrink_to_fit();
      } catch (...) {
        s.errs[r] = std::current_exception();
      }
    });
    stage_host_ops +=
        static_cast<double>(mid.size()) * (3.0 * n * (et + qt) + n * qt * (1.0 + nd));
  }

  // Sub-stage B: Algorithm-2 key-switch sessions over the Q basis.
  std::vector<std::size_t> relin_live;
  relin_live.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr && s.round[r].req.kind != RequestKind::kEvalMult)
      relin_live.push_back(r);
  if (!relin_live.empty()) {
    for (std::size_t r : relin_live) s.slots[r].relin_accs.resize(ctx.q_basis().size());
    if (opts_.strategy == Strategy::kBatchPerChip)
      run_relin_batch_per_chip(s, relin_live, chip_sim_b);
    else
      run_relin_shard_towers(s, relin_live, chip_sim_b);
    // Host-side accumulation of the read-back key-switch products runs
    // inside the sessions (pointwise adds per digit, component, tower).
    stage_host_ops += static_cast<double>(relin_live.size()) * 2.0 * n * qt * nd;
  }

  // The round's chip-stage span: the busiest chip of each serialized
  // sub-stage plus the host work that executed inside the stage.
  double busiest_a = 0, busiest_b = 0;
  for (double cs : chip_sim_a) busiest_a = std::max(busiest_a, cs);
  for (double cs : chip_sim_b) busiest_b = std::max(busiest_b, cs);
  s.sim_chip = busiest_a + busiest_b + host_seconds(stage_host_ops);
}

void EvalService::host_finish(Session& s) {
  using driver::ChipBfvEvaluator;
  const auto span =
      opts_.trace != nullptr
          ? opts_.trace->span_wall(
                "round.finish", "round",
                {{"requests", static_cast<double>(s.round.size())}})
          : obs::TraceRecorder::WallSpan();
  const std::size_t count = s.round.size();
  const auto& ctx = scheme_.context();
  const double n = static_cast<double>(ctx.n());
  const double qt = static_cast<double>(ctx.q_basis().size());
  const double et = static_cast<double>(ctx.ext_basis().size());

  double ops = 0;
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] == nullptr)
      ops += s.round[r].req.kind == RequestKind::kEvalMult
                 ? 3.0 * n * (et + qt)  // tensor reassembly + t/q rounding
                 : 2.0 * n * qt;        // stacking the relinearized towers

  // Poison faulted slots: a faulted request's intermediates (partial
  // tensors, relin accumulators) are dropped wholesale and deterministically
  // here, so nothing downstream can observe a half-written artifact -- the
  // dependent promise gets the originating exception (first error wins, set
  // in retire()) or a fresh round via requeue, never follow-on garbage.
  for (std::size_t r = 0; r < count; ++r)
    if (s.errs[r] != nullptr) s.slots[r] = RoundSlot{};

  exec_.for_each(count, [&](std::size_t r) {
    if (s.errs[r] != nullptr) return;  // promise settled (or requeued) in retire()
    try {
      auto& slot = s.slots[r];
      if (s.round[r].req.kind == RequestKind::kEvalMult) {
        s.round[r].promise.set_value(ChipBfvEvaluator::assemble(scheme_, slot.tensors));
      } else {
        s.round[r].promise.set_value(ChipBfvEvaluator::assemble_relin(slot.relin_accs));
      }
    } catch (...) {
      s.errs[r] = std::current_exception();
    }
  });
  s.sim_finish = host_seconds(ops);
}

void EvalService::retire(Session& s) {
  const double now = seconds_since(start_);
  bool requeued = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < s.round.size(); ++i) {
      Pending& p = s.round[i];
      if (s.errs[i] != nullptr && is_fault(s.errs[i]) &&
          p.attempts < opts_.request_retries) {
        // Healing layer 2: the round lost this request to a chip/link fault
        // even after intra-stage retries -- give it a fresh round (fresh
        // placement, quarantine may have kicked in by then) instead of its
        // future the error.  Bounded by request_retries, so a drain
        // terminates even on an all-dead farm.  Requeues run during
        // shutdown too: stop() promises to drain accepted work, and a
        // retryable fault is not yet an answer.
        ++p.attempts;
        ++stats_.requeues;
        if (opts_.trace != nullptr)
          opts_.trace->instant_wall(
              "requeue", "heal",
              {{"request", static_cast<double>(p.id)},
               {"attempts", static_cast<double>(p.attempts)}});
        queue_.push(std::move(p));
        requeued = true;
        continue;
      }
      const std::size_t cls_idx = static_cast<std::size_t>(p.so.priority);
      auto& cls = stats_.per_class[cls_idx];
      TenantAgg& ten = tenant_agg(p.so.tenant);
      // Settled either way: release the tenancy pending slot here, not at
      // requeue -- a requeued request still occupies its tenant's quota.
      if (tenancy_enabled_) tenancy_release_locked(p.so.tenant, now);
      if (s.errs[i] != nullptr) {
        // Promise settlement was deferred past host_finish precisely so the
        // requeue branch above could reclaim it; settle it now.
        p.promise.set_exception(s.errs[i]);
        ++stats_.failed;
        ++cls.failed;
        ++ten.counts.failed;
      } else {
        ++stats_.completed;
        ++cls.completed;
        ++ten.counts.completed;
      }
      if (opts_.trace != nullptr)
        opts_.trace->async_end(
            p.id, "request", "request",
            {{"ok", s.errs[i] == nullptr ? 1.0 : 0.0},
             {"attempts", static_cast<double>(p.attempts)}});
      const double lat = std::max(0.0, now - p.enqueued);
      class_latency_[cls_idx].record(lat);
      ten.latency.record(lat);
      if (latency_hist_[cls_idx] != nullptr) latency_hist_[cls_idx]->observe(lat);
    }
    in_flight_ -= s.round.size();
    last_done_ = Clock::now();
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
  if (requeued) work_cv_.notify_one();
}

std::vector<ChipScore> EvalService::chip_scores(
    const std::vector<bool>* exclude) const {
  // Caller holds mu_: the unit costs are a live EWMA and the quarantine
  // flags flip under the same lock.  Chip stages are barrier-synchronized,
  // so every placement starts from idle chips; heterogeneity and measured
  // degradation both enter through the per-chip unit costs.
  std::vector<ChipScore> scores(chip_eligible_.size());
  for (std::size_t c = 0; c < scores.size(); ++c) {
    scores[c].eligible = chip_eligible_[c] && !health_[c].quarantined &&
                         (exclude == nullptr || !(*exclude)[c]);
    scores[c].load = 0;
    scores[c].unit_cost = chip_unit_cost_[c];
  }
  return scores;
}

std::vector<std::vector<std::size_t>> EvalService::place_items(
    std::size_t items, const std::vector<bool>* exclude) {
  const auto span =
      opts_.trace != nullptr
          ? opts_.trace->span_wall("placement", "round",
                                   {{"items", static_cast<double>(items)}})
          : obs::TraceRecorder::WallSpan();
  const auto any_eligible = [](const std::vector<ChipScore>& sc) {
    for (const ChipScore& x : sc)
      if (x.eligible) return true;
    return false;
  };
  std::vector<ChipScore> scores;
  {
    std::lock_guard<std::mutex> lk(mu_);
    scores = chip_scores(exclude);
    // A same-stage blacklist that would empty the farm is dropped: a lone
    // eligible chip's transient fault must stay retryable on that chip.
    if (exclude != nullptr && !any_eligible(scores)) scores = chip_scores(nullptr);
  }
  if (!any_eligible(scores)) {
    // Quarantine emptied the farm.  Force-probe every quarantined chip
    // right now (we are serialized with all chip activity -- see
    // run_chip_stage) and re-score; only a farm that still answers nothing
    // is a hard capacity error.
    probe_quarantined(/*force=*/true);
    std::lock_guard<std::mutex> lk(mu_);
    scores = chip_scores(exclude);
    if (exclude != nullptr && !any_eligible(scores)) scores = chip_scores(nullptr);
    if (!any_eligible(scores))
      throw FarmCapacityError(
          "EvalService: every eligible chip is quarantined and failing probes");
  }
  const auto assign = Placer::assign(scores, items, opts_.placement);
  std::vector<std::vector<std::size_t>> mine(farm_.size());
  for (std::size_t i = 0; i < items; ++i) mine[assign[i]].push_back(i);
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t c = 0; c < mine.size(); ++c)
    stats_.per_chip[c].placements += mine[c].size();
  return mine;
}

template <typename Work>
void EvalService::run_stage(Session& s, const std::vector<std::size_t>& live,
                            std::vector<double>& chip_sim, std::size_t items,
                            bool per_item_errors, Work&& work) {
  // Stage-local item ids (requests under the batch strategies, towers under
  // the shard strategies) still waiting for a successful chip share.
  std::vector<std::size_t> todo(items);
  for (std::size_t i = 0; i < items; ++i) todo[i] = i;
  // Chips that faulted during this stage: blacklisted from re-placement so
  // a retry lands elsewhere (place_items drops the blacklist when it would
  // empty the farm -- a lone chip must get to retry its own transient).
  std::vector<bool> stage_faulted(farm_.size(), false);
  bool any_faulted = false;
  std::size_t retries_left = opts_.max_stage_retries;

  while (!todo.empty()) {
    const auto assign =
        place_items(todo.size(), any_faulted ? &stage_faulted : nullptr);
    std::vector<std::size_t> active;
    for (std::size_t c = 0; c < assign.size(); ++c)
      if (!assign[c].empty()) active.push_back(c);
    std::vector<std::exception_ptr> chip_errs(farm_.size());
    exec_.for_each(active.size(), [&](std::size_t k) {
      const std::size_t c = active[k];
      // Translate placement-local indices back to stage-local item ids.
      std::vector<std::size_t> placed;
      placed.reserve(assign[c].size());
      for (std::size_t j : assign[c]) placed.push_back(todo[j]);
      const auto t0 = Clock::now();
      const auto stage_span =
          opts_.trace != nullptr
              ? opts_.trace->span_wall(
                    "stage", "round",
                    {{"chip", static_cast<double>(c)},
                     {"items", static_cast<double>(placed.size())}})
              : obs::TraceRecorder::WallSpan();
      driver::ChipMulReport rep;
      rep.trace = opts_.trace;
      rep.trace_chip = static_cast<std::uint32_t>(c);
      StageCounters n;
      try {
        work(c, placed, rep, n);
        if (opts_.stage_timeout_seconds > 0 &&
            sim_seconds(rep) > opts_.stage_timeout_seconds) {
          // Modeled stage budget blown (injected stalls inflating the
          // link): handled exactly like a link fault, results discarded.
          {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.stage_timeouts;
          }
          if (opts_.trace != nullptr)
            opts_.trace->instant_wall("stage_timeout", "heal",
                                      {{"chip", static_cast<double>(c)}});
          throw chip::LinkTimeoutError(
              "chip " + std::to_string(c) + " stage took " +
              std::to_string(sim_seconds(rep)) + "s (budget " +
              std::to_string(opts_.stage_timeout_seconds) + "s)");
        }
      } catch (...) {
        chip_errs[c] = std::current_exception();
      }
      chip_sim[c] += sim_seconds(rep);
      note_chip_session(c, rep, n.requests, n.tower_runs, n.relin_tower_runs,
                        seconds_since(t0));
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (chip_errs[c] == nullptr) {
          note_chip_ok_locked(
              c, sim_seconds(rep) / static_cast<double>(placed.size()));
        } else if (is_fault(chip_errs[c])) {
          note_chip_fault_locked(c);
        }
      }
    });

    std::vector<std::size_t> next_todo;
    bool round_poisoned = false;
    for (std::size_t c : active) {
      if (chip_errs[c] == nullptr) continue;
      if (is_fault(chip_errs[c]) && retries_left > 0) {
        // Healing layer 1: re-place this chip's share within the stage.
        // The work bodies are pure functions of host-resident operands, so
        // re-running them (usually on another chip) is idempotent.
        stage_faulted[c] = true;
        any_faulted = true;
        for (std::size_t j : assign[c]) next_todo.push_back(todo[j]);
        if (opts_.trace != nullptr)
          opts_.trace->instant_wall("retry", "heal",
                                    {{"chip", static_cast<double>(c)}});
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.retries;
        continue;
      }
      // Out of retries, or not a fault at all: surface the originating
      // error.  First error wins -- nothing may overwrite it later.
      if (per_item_errors) {
        // Batch strategies: only the chip's own placed requests are lost.
        for (std::size_t j : assign[c]) {
          const std::size_t r = live[todo[j]];
          if (s.errs[r] == nullptr) s.errs[r] = chip_errs[c];
        }
      } else {
        // Tower shards: a lost shard starves every request in the round.
        for (std::size_t r : live)
          if (s.errs[r] == nullptr) s.errs[r] = chip_errs[c];
        round_poisoned = true;
      }
    }
    if (round_poisoned || next_todo.empty()) break;
    --retries_left;
    std::sort(next_todo.begin(), next_todo.end());
    todo = std::move(next_todo);
  }
}

void EvalService::run_mult_batch_per_chip(Session& s,
                                          const std::vector<std::size_t>& live,
                                          std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t towers = scheme_.context().ext_basis().size();
  // Whole requests onto chips, then one tower-outer session per chip: one
  // ring configuration serves the chip's whole share of the round.
  run_stage(s, live, chip_sim, live.size(), /*per_item_errors=*/true,
            [&](std::size_t c, const std::vector<std::size_t>& placed,
                driver::ChipMulReport& rep, StageCounters& n) {
              auto& drv = farm_.driver(c);
              key_caches_[c].invalidate();  // tensor uploads clobber SP1
              n.requests = placed.size();
              for (std::size_t tw = 0; tw < towers; ++tw) {
                ChipBfvEvaluator::configure_tower(drv, scheme_, tw, &rep);
                for (std::size_t i : placed) {
                  const std::size_t r = live[i];
                  ChipBfvEvaluator::load_tower(drv, s.slots[r].mult, tw, &rep);
                  ChipBfvEvaluator::execute_tower(drv, &rep);
                  s.slots[r].tensors[tw] = ChipBfvEvaluator::read_tower(drv, &rep);
                  ++n.tower_runs;
                }
              }
            });
}

void EvalService::run_mult_shard_towers(Session& s,
                                        const std::vector<std::size_t>& live,
                                        std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t towers = scheme_.context().ext_basis().size();
  // Towers onto chips: every chip configures its towers once each and runs
  // them for every request in the round.
  run_stage(s, live, chip_sim, towers, /*per_item_errors=*/false,
            [&](std::size_t c, const std::vector<std::size_t>& placed,
                driver::ChipMulReport& rep, StageCounters& n) {
              auto& drv = farm_.driver(c);
              key_caches_[c].invalidate();  // tensor uploads clobber SP1
              n.requests = live.size();
              for (std::size_t tw : placed) {
                ChipBfvEvaluator::configure_tower(drv, scheme_, tw, &rep);
                for (std::size_t r : live) {
                  ChipBfvEvaluator::load_tower(drv, s.slots[r].mult, tw, &rep);
                  ChipBfvEvaluator::execute_tower(drv, &rep);
                  s.slots[r].tensors[tw] = ChipBfvEvaluator::read_tower(drv, &rep);
                  ++n.tower_runs;
                }
              }
            });
}

void EvalService::run_relin_batch_per_chip(Session& s,
                                           const std::vector<std::size_t>& live,
                                           std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  const std::size_t towers = scheme_.context().q_basis().size();
  run_stage(s, live, chip_sim, live.size(), /*per_item_errors=*/true,
            [&](std::size_t c, const std::vector<std::size_t>& placed,
                driver::ChipMulReport& rep, StageCounters& n) {
              auto& drv = farm_.driver(c);
              // The chip's share of the round as one group per tower: the
              // batched key switch shares key uploads across the group
              // (SP1 key cache).
              std::vector<const driver::RelinOperands*> group;
              group.reserve(placed.size());
              for (std::size_t i : placed) group.push_back(&s.slots[live[i]].relin);
              n.requests = placed.size();
              for (std::size_t tw = 0; tw < towers; ++tw) {
                ChipBfvEvaluator::configure_relin_tower(drv, scheme_, tw, &rep);
                auto accs = ChipBfvEvaluator::relin_tower_batch(
                    drv, scheme_, group, *opts_.relin_keys, tw, &key_caches_[c],
                    &rep);
                for (std::size_t j = 0; j < placed.size(); ++j)
                  s.slots[live[placed[j]]].relin_accs[tw] = std::move(accs[j]);
                n.relin_tower_runs += group.size();
              }
            });
}

void EvalService::run_relin_shard_towers(Session& s,
                                         const std::vector<std::size_t>& live,
                                         std::vector<double>& chip_sim) {
  using driver::ChipBfvEvaluator;
  run_stage(s, live, chip_sim, scheme_.context().q_basis().size(),
            /*per_item_errors=*/false,
            [&](std::size_t c, const std::vector<std::size_t>& placed,
                driver::ChipMulReport& rep, StageCounters& n) {
              auto& drv = farm_.driver(c);
              std::vector<const driver::RelinOperands*> group;
              group.reserve(live.size());
              for (std::size_t r : live) group.push_back(&s.slots[r].relin);
              n.requests = live.size();
              // Chip c owns its placed Q towers of every request's key
              // switch.
              for (std::size_t tw : placed) {
                ChipBfvEvaluator::configure_relin_tower(drv, scheme_, tw, &rep);
                auto accs = ChipBfvEvaluator::relin_tower_batch(
                    drv, scheme_, group, *opts_.relin_keys, tw, &key_caches_[c],
                    &rep);
                for (std::size_t j = 0; j < live.size(); ++j)
                  s.slots[live[j]].relin_accs[tw] = std::move(accs[j]);
                n.relin_tower_runs += live.size();
              }
            });
}

void EvalService::note_chip_fault_locked(std::size_t chip) {
  auto& h = health_[chip];
  ++stats_.per_chip[chip].faults;
  ++h.consecutive_faults;
  if (!h.quarantined && opts_.quarantine_after > 0 &&
      h.consecutive_faults >= opts_.quarantine_after) {
    h.quarantined = true;
    h.last_probe_round = stats_.rounds;
    ++stats_.quarantines;
    ++stats_.per_chip[chip].quarantines;
    if (opts_.trace != nullptr)
      opts_.trace->instant_wall("quarantine", "heal",
                                {{"chip", static_cast<double>(chip)}});
  }
}

void EvalService::note_chip_ok_locked(std::size_t chip, double unit_cost_sample) {
  health_[chip].consecutive_faults = 0;
  const double a = opts_.cost_ewma_alpha;
  if (a > 0 && unit_cost_sample > 0)
    chip_unit_cost_[chip] = (1.0 - a) * chip_unit_cost_[chip] + a * unit_cost_sample;
}

void EvalService::probe_quarantined(bool force) {
  // Snapshot the due probes under the lock, run them outside it (a probe is
  // real link traffic and can throw).  Serialization with sessions comes
  // from the call sites: the chained chip stage, which never places work on
  // a quarantined chip.
  std::vector<std::size_t> due;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t c = 0; c < health_.size(); ++c) {
      auto& h = health_[c];
      if (!h.quarantined || !chip_eligible_[c]) continue;
      if (!force && stats_.rounds - h.last_probe_round < opts_.probe_interval_rounds)
        continue;
      h.last_probe_round = stats_.rounds;
      due.push_back(c);
    }
  }
  for (std::size_t c : due) {
    bool ok = true;
    try {
      farm_.driver(c).probe();
    } catch (...) {
      ok = false;  // still sick: keep quarantined, try again next interval
    }
    if (opts_.trace != nullptr)
      opts_.trace->instant_wall(ok ? "probe.ok" : "probe.fail", "heal",
                                {{"chip", static_cast<double>(c)}});
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.probes;
    ++stats_.per_chip[c].probes;
    if (ok) {
      health_[c].quarantined = false;
      health_[c].consecutive_faults = 0;
      ++stats_.readmissions;
      ++stats_.per_chip[c].readmissions;
      if (opts_.trace != nullptr)
        opts_.trace->instant_wall("readmit", "heal",
                                  {{"chip", static_cast<double>(c)}});
    } else {
      ++stats_.probe_failures;
    }
  }
}

void EvalService::note_chip_session(std::size_t chip, const driver::ChipMulReport& rep,
                                    std::uint64_t requests, std::uint64_t tower_runs,
                                    std::uint64_t relin_tower_runs,
                                    double busy_wall_seconds) {
  if (tower_runs == 0 && relin_tower_runs == 0 && rep.towers == 0)
    return;  // chip sat this round out
  const double compute_seconds = rep.chip_ms * 1e-3;
  std::lock_guard<std::mutex> lk(mu_);
  auto& c = stats_.per_chip[chip];
  ++c.sessions;
  c.requests += requests;
  c.tower_runs += tower_runs;
  c.relin_tower_runs += relin_tower_runs;
  c.ks_products += rep.ks_products;
  c.key_uploads += rep.key_uploads;
  c.key_cache_hits += rep.key_cache_hits;
  c.sram_reuses += rep.sram_reuses;
  c.batched_writes += rep.batched_writes;
  c.twiddle_cache_hits += rep.twiddle_cache_hits;
  c.key_bytes_saved += rep.key_bytes_saved;
  c.ring_configs += rep.towers;
  c.chip_cycles += rep.chip_cycles;
  c.io_seconds += rep.io_seconds;
  c.compute_seconds += compute_seconds;
  c.busy_wall_seconds += busy_wall_seconds;
  ++stats_.sessions;
  stats_.ks_products += rep.ks_products;
  stats_.key_uploads += rep.key_uploads;
  stats_.key_cache_hits += rep.key_cache_hits;
  stats_.sram_reuses += rep.sram_reuses;
  stats_.batched_writes += rep.batched_writes;
  stats_.twiddle_cache_hits += rep.twiddle_cache_hits;
  stats_.key_bytes_saved += rep.key_bytes_saved;
  stats_.io_seconds += rep.io_seconds;
  stats_.compute_seconds += compute_seconds;
}

}  // namespace cofhee::service
