#include "service/chip_farm.hpp"

#include <stdexcept>

namespace cofhee::service {

ChipFarm::ChipFarm(std::size_t chips, driver::ExecMode mode, driver::Link link,
                   chip::ChipConfig cfg)
    : ChipFarm(std::vector<ChipSpec>(chips, ChipSpec{cfg, mode, link})) {}

ChipFarm::ChipFarm(const std::vector<ChipSpec>& specs) {
  if (specs.empty())
    throw std::invalid_argument("ChipFarm: at least one chip required");
  slots_.reserve(specs.size());
  for (const ChipSpec& spec : specs) {
    Slot s;
    s.soc = std::make_unique<chip::CofheeChip>(spec.cfg);
    s.drv = std::make_unique<driver::HostDriver>(*s.soc, spec.mode, spec.link);
    slots_.push_back(std::move(s));
  }
}

}  // namespace cofhee::service
