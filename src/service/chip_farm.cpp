#include "service/chip_farm.hpp"

#include <stdexcept>

namespace cofhee::service {

ChipFarm::ChipFarm(std::size_t chips, driver::ExecMode mode, driver::Link link,
                   chip::ChipConfig cfg)
    : ChipFarm(std::vector<ChipSpec>(chips, ChipSpec{cfg, mode, link})) {}

ChipFarm::ChipFarm(const std::vector<ChipSpec>& specs) {
  if (specs.empty())
    throw std::invalid_argument("ChipFarm: at least one chip required");
  slots_.reserve(specs.size());
  for (const ChipSpec& spec : specs) {
    Slot s;
    s.soc = std::make_unique<chip::CofheeChip>(spec.cfg);
    s.drv = std::make_unique<driver::HostDriver>(*s.soc, spec.mode, spec.link);
    slots_.push_back(std::move(s));
    if (!spec.faults.empty()) inject_faults(slots_.size() - 1, spec.faults);
  }
}

void ChipFarm::inject_faults(std::size_t i, const chip::FaultSchedule& schedule) {
  Slot& s = slots_.at(i);
  s.fault = std::make_unique<chip::FaultInjector>(schedule);
  // Tap both links: the injector models the chip's host interface as a
  // whole, so faults hit whichever transport the slot's driver uses.
  s.soc->uart().set_fault_injector(s.fault.get());
  s.soc->spi().set_fault_injector(s.fault.get());
}

const chip::FaultInjector* ChipFarm::fault_injector(std::size_t i) const {
  return slots_.at(i).fault.get();
}

}  // namespace cofhee::service
