#include "service/chip_farm.hpp"

#include <stdexcept>

namespace cofhee::service {

ChipFarm::ChipFarm(std::size_t chips, driver::ExecMode mode, driver::Link link,
                   chip::ChipConfig cfg) {
  if (chips == 0) throw std::invalid_argument("ChipFarm: at least one chip required");
  slots_.reserve(chips);
  for (std::size_t i = 0; i < chips; ++i) {
    Slot s;
    s.soc = std::make_unique<chip::CofheeChip>(cfg);
    s.drv = std::make_unique<driver::HostDriver>(*s.soc, mode, link);
    slots_.push_back(std::move(s));
  }
}

}  // namespace cofhee::service
