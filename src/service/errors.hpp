// Typed service-layer errors (admission control and lifecycle).
//
// Callers of EvalService::submit previously got a bare std::runtime_error
// for both "queue full" and "service stopping"; retry logic upstream had to
// string-match to tell them apart.  These types keep std::runtime_error as
// the base so existing catch sites still work, while new code can
// distinguish back-pressure (QueueFullError: wait and resubmit) from
// shutdown (ServiceStoppedError: give up).  Chip/link-layer faults are a
// different family -- see chip/fault.hpp.
#pragma once

#include <stdexcept>
#include <string>

namespace cofhee::service {

/// Base of all service-layer admission/lifecycle errors.  Derives from
/// std::runtime_error so pre-existing catch (std::runtime_error&) sites keep
/// working.
class ServiceError : public std::runtime_error {
 public:
  /// Construct with a human-readable description.
  explicit ServiceError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by submit when the bounded request queue is at capacity
/// (back-pressure).  Retryable: wait for in-flight work to drain, resubmit.
class QueueFullError : public ServiceError {
 public:
  /// Construct with a human-readable description.
  explicit QueueFullError(const std::string& what) : ServiceError(what) {}
};

/// Thrown by submit once stop() has begun.  Not retryable on this instance.
class ServiceStoppedError : public ServiceError {
 public:
  /// Construct with a human-readable description.
  explicit ServiceStoppedError(const std::string& what) : ServiceError(what) {}
};

}  // namespace cofhee::service
