// Typed service-layer errors (admission control and lifecycle).
//
// Callers of EvalService::submit previously got a bare std::runtime_error
// for both "queue full" and "service stopping"; retry logic upstream had to
// string-match to tell them apart.  These types keep std::runtime_error as
// the base so existing catch sites still work, while new code can
// distinguish back-pressure (QueueFullError: wait and resubmit) from
// shutdown (ServiceStoppedError: give up).  Chip/link-layer faults are a
// different family -- see chip/fault.hpp.
#pragma once

#include <stdexcept>
#include <string>

namespace cofhee::service {

/// Base of all service-layer admission/lifecycle errors.  Derives from
/// std::runtime_error so pre-existing catch (std::runtime_error&) sites keep
/// working.
class ServiceError : public std::runtime_error {
 public:
  /// Construct with a human-readable description.
  explicit ServiceError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by submit when the bounded request queue is at capacity
/// (back-pressure).  Retryable: wait for in-flight work to drain, resubmit.
class QueueFullError : public ServiceError {
 public:
  /// Construct with a human-readable description.
  explicit QueueFullError(const std::string& what) : ServiceError(what) {}
};

/// Thrown by submit once stop() has begun.  Not retryable on this instance.
class ServiceStoppedError : public ServiceError {
 public:
  /// Construct with a human-readable description.
  explicit ServiceStoppedError(const std::string& what) : ServiceError(what) {}
};

/// Thrown by submit_batch for a batch larger than the bounded queue could
/// ever admit (ServiceOptions::max_queue), even from empty.  Not retryable
/// as submitted: the caller must split the batch.
class BatchTooLargeError : public ServiceError {
 public:
  /// Construct with a human-readable description.
  explicit BatchTooLargeError(const std::string& what) : ServiceError(what) {}
};

/// Thrown by submit when the tenant's token bucket has run dry
/// (TenantLimits::rate_per_sec).  Retryable after retry_after_seconds().
class RateLimitedError : public ServiceError {
 public:
  /// Construct with a description and the bucket's modeled refill horizon.
  RateLimitedError(const std::string& what, double retry_after_seconds)
      : ServiceError(what), retry_after_(retry_after_seconds) {}

  /// Seconds until the tenant's bucket will hold enough tokens for the
  /// rejected submission (a hint, not a reservation -- competing submits
  /// may drain the refill first).
  [[nodiscard]] double retry_after_seconds() const noexcept { return retry_after_; }

 private:
  double retry_after_;
};

/// Thrown by submit when admitting the batch would push the tenant's
/// pending requests (queued + in flight) past TenantLimits::max_pending.
/// Retryable: wait for the tenant's own work to complete, resubmit.
class TenantQuotaError : public ServiceError {
 public:
  /// Construct with a human-readable description.
  explicit TenantQuotaError(const std::string& what) : ServiceError(what) {}
};

}  // namespace cofhee::service
