#include "service/request_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cofhee::service {

RequestQueue::RequestQueue(SchedPolicy policy, std::size_t starvation_bound)
    : policy_(policy), bound_(starvation_bound) {}

void RequestQueue::push(Pending p) {
  // Priority indexes the fixed class table, so an out-of-range value (e.g.
  // deserialized from the wire) must be a clean error, not a stray write.
  if (static_cast<std::size_t>(p.so.priority) >= kNumPriorities)
    throw std::invalid_argument("RequestQueue: unknown priority class");
  ++size_;
  ++class_size_[static_cast<std::size_t>(p.so.priority)];
  if (policy_ == SchedPolicy::kFifo) {
    fifo_.push_back(std::move(p));
    return;
  }
  auto& cls = classes_[static_cast<std::size_t>(p.so.priority)];
  auto [it, inserted] = cls.tenants.try_emplace(p.so.tenant);
  TenantQueue& tq = it->second;
  tq.weight = std::max<std::uint32_t>(1, p.so.weight);  // latest submit wins
  // A turn in progress must not keep picks granted at the old weight:
  // lowering a backlogged tenant's weight re-clamps its banked deficit, so
  // the new weight takes effect this turn, not one full rotation later.
  tq.deficit = std::min(tq.deficit, tq.weight);
  if (tq.q.empty()) cls.rotation.push_back(p.so.tenant);
  tq.q.push_back(std::move(p));
  ++cls.size;
}

std::size_t RequestQueue::pick_class(bool* forced) {
  // Normal order: the highest-priority (lowest-index) non-empty class.
  std::size_t best = kNumPriorities;
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    if (classes_[c].size != 0) {
      best = c;
      break;
    }
  }
  // Starvation override: a lower class that already lost `bound_` picks in
  // a row is served now (the most-starved one; ties to the higher class).
  if (bound_ != 0) {
    std::size_t starved = kNumPriorities;
    for (std::size_t c = 0; c < kNumPriorities; ++c) {
      if (c == best || classes_[c].size == 0 || classes_[c].skipped < bound_)
        continue;
      if (starved == kNumPriorities ||
          classes_[c].skipped > classes_[starved].skipped)
        starved = c;
    }
    if (starved != kNumPriorities) {
      *forced = true;
      return starved;
    }
  }
  *forced = false;
  return best;
}

Pending RequestQueue::pop_one(double now) {
  bool forced = false;
  const std::size_t picked = pick_class(&forced);
  if (forced) ++forced_picks_;
  // Every other class with a backlog just lost this pick.
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    if (c == picked || classes_[c].size == 0) continue;
    ++classes_[c].skipped;
    max_skip_observed_ = std::max(max_skip_observed_, classes_[c].skipped);
  }
  ClassState& cls = classes_[picked];
  cls.skipped = 0;

  // Weighted deficit round-robin inside the class: the tenant at the front
  // of the rotation holds the turn; a fresh turn grants `weight` picks.
  const std::uint64_t tenant = cls.rotation.front();
  TenantQueue& tq = cls.tenants.at(tenant);
  if (tq.deficit == 0) tq.deficit = tq.weight;
  Pending p = std::move(tq.q.front());
  tq.q.pop_front();
  --tq.deficit;
  --cls.size;
  --class_size_[picked];
  --size_;
  if (tq.q.empty()) {
    // Drained: the tenant leaves the rotation and forfeits its leftover
    // deficit (so an idle tenant cannot bank credit -- DRR's anti-burst
    // rule, which makes the deficit counters converge).
    cls.rotation.pop_front();
    tq.deficit = 0;
  } else if (tq.deficit == 0) {
    cls.rotation.pop_front();
    cls.rotation.push_back(tenant);
  }
  p.dequeued = now;
  p.forced = forced;
  return p;
}

std::vector<Pending> RequestQueue::pop_round(std::size_t max_batch, double now) {
  std::vector<Pending> round;
  round.reserve(std::min(max_batch, size_));
  if (policy_ == SchedPolicy::kFifo) {
    while (!fifo_.empty() && round.size() < max_batch) {
      Pending p = std::move(fifo_.front());
      fifo_.pop_front();
      --class_size_[static_cast<std::size_t>(p.so.priority)];
      --size_;
      p.dequeued = now;
      round.push_back(std::move(p));
    }
    return round;
  }
  while (size_ != 0 && round.size() < max_batch) round.push_back(pop_one(now));
  return round;
}

}  // namespace cofhee::service
