// Load-aware placement of round work onto a (possibly heterogeneous) chip
// farm.
//
// v1 placement was a blind stride: chip c took work items {c, c+C, ...} of
// every round, which is optimal only when every chip is identical.  With
// per-chip ChipConfigs (different ring capacity, clock, serial link) the
// farm is heterogeneous, and the HEAX line of work shows throughput comes
// from matching work to the unit that serves it cheapest.  The Placer does
// that with the same deterministic cost model ServiceStats accounts in
// (simulated io + compute seconds per chip): every chip carries a modeled
// cost per work item, and greedy least-projected-finish-time assignment
// fills the stage so its makespan -- the busiest chip's seconds, exactly
// what ServiceStats::simulated_seconds() measures afterwards -- stays
// minimal.  The farm's chip stages are barrier-synchronized, so each
// placement starts from idle chips (load 0) unless the caller injects
// carry-over load.  Fast chips absorb proportionally more items; a chip
// whose config cannot serve the ring at all is skipped entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace cofhee::service {

/// Thrown when no chip in the farm can serve a request (e.g. the ring does
/// not fit any chip's bank capacity) -- a typed, clean failure instead of a
/// hang or a generic error.
class FarmCapacityError : public std::invalid_argument {
 public:
  /// Construct with a message, like std::invalid_argument.
  using std::invalid_argument::invalid_argument;
};

/// How round work is mapped onto chips.
enum class Placement : std::uint8_t {
  /// Blind stride over the eligible chips (the v1 reference behavior).
  kRoundRobin = 0,
  /// Greedy least-projected-finish-time over the per-chip cost model
  /// (scheduler v2, the default).
  kLoadAware = 1,
};

/// One chip's standing in a placement decision.
struct ChipScore {
  /// False when this chip's config cannot serve the ring (it is skipped).
  bool eligible = false;
  /// Simulated seconds (io + compute) already committed to this chip
  /// within the placement horizon.  The service passes 0 (its stages are
  /// barrier-synchronized, so every chip starts a stage idle); the greedy
  /// pass accumulates projected load here as it assigns.
  double load = 0;
  /// Modeled simulated seconds one work item costs on this chip (link rate
  /// + cycle model estimate; only the ranking across chips matters).
  double unit_cost = 0;
};

/// Stateless assignment of uniform work items onto scored chips.
class Placer {
 public:
  /// Assign `items` uniform work items; returns item index -> chip index.
  /// Ineligible chips receive nothing.  Deterministic: ties break toward
  /// the lower chip index.  Throws FarmCapacityError when no chip is
  /// eligible.
  static std::vector<std::size_t> assign(std::vector<ChipScore> chips,
                                         std::size_t items, Placement policy);
};

}  // namespace cofhee::service
