// Async multi-chip EvalMult service: the scheduler layer above
// driver::ChipBfvEvaluator.
//
// ChipBfv.IoDominatesAtSmallRings shows the serial link, not the PE,
// bounding EvalMult at bring-up ring sizes; the two levers against that are
// (a) amortizing per-tower ring reconfiguration over many requests in one
// chip session and (b) spreading one request's independent extended-basis
// towers across several chips.  EvalService implements both behind one
// async API:
//
//   ChipFarm farm(4);
//   EvalService svc(scheme, farm, {Strategy::kShardTowers});
//   std::future<bfv::Ciphertext> f = svc.submit({ca, cb});
//   bfv::Ciphertext product = f.get();     // == scheme.multiply(ca, cb)
//
// A dispatcher thread coalesces queued requests into rounds of at most
// `max_batch` and fans the chip sessions out over a backend::Executor --
// per (request-group, chip) in kBatchPerChip, per (tower-shard, chip) in
// kShardTowers -- the same pool shapes Bfv::multiply uses for its (tower,
// transform) tasks.  Host-side phases (base extension, t/q rounding) fan
// out per request.  Both strategies produce ciphertexts byte-identical to
// the serial single-chip path (tests/service/test_eval_service.cpp).
//
// Shutdown is graceful: shutdown() (and the destructor) stop intake,
// drain every queued request, and join the dispatcher.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/exec_policy.hpp"
#include "bfv/bfv.hpp"
#include "driver/chip_bfv.hpp"
#include "service/chip_farm.hpp"
#include "service/service_stats.hpp"

namespace cofhee::service {

/// One EvalMult (without relinearization, the Fig. 6 operation).
struct EvalMultRequest {
  bfv::Ciphertext a, b;
};

enum class Strategy : std::uint8_t {
  /// Whole requests round-robined over chips; each chip runs its share of a
  /// round as one session, ring-configuring every tower once for the group.
  kBatchPerChip = 0,
  /// One round's extended-basis towers sharded across all chips (chip c
  /// owns towers {c, c+C, ...} of every request) and reassembled on the
  /// host.  Cuts single-request latency by ~|towers|/C.
  kShardTowers = 1,
};

struct ServiceOptions {
  Strategy strategy = Strategy::kBatchPerChip;
  /// Most requests one dispatcher round coalesces into chip sessions.
  /// 1 reproduces the one-request-per-session serial behavior.
  std::size_t max_batch = 16;
  /// Fan sessions out over a pooled Executor sized to the farm; false runs
  /// the whole scheduler single-threaded (the bit-exact reference shape).
  bool pooled_dispatch = true;
};

class EvalService {
 public:
  /// `scheme` supplies host-side RNS plumbing and must outlive the service;
  /// its const evaluation entry points are used concurrently.  Throws
  /// std::invalid_argument when the scheme's ring does not fit the farm's
  /// chips.
  EvalService(const bfv::Bfv& scheme, ChipFarm& farm, ServiceOptions opts = {});
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Enqueue one EvalMult; the future carries the product ciphertext or the
  /// exception that defeated it.  Throws std::invalid_argument on non-2-
  /// element ciphertexts and std::runtime_error after shutdown().
  std::future<bfv::Ciphertext> submit(EvalMultRequest req);

  /// Enqueue a group atomically, so one dispatcher round can coalesce it
  /// into batched chip sessions (subject to max_batch).
  std::vector<std::future<bfv::Ciphertext>> submit_batch(
      std::vector<EvalMultRequest> reqs);

  /// Block until every request accepted so far has completed.
  void drain();

  /// Stop intake, drain the queue, join the dispatcher.  Idempotent.
  void shutdown();

  /// Consistent snapshot (including live queue depth and wall clock).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }
  [[nodiscard]] ChipFarm& farm() noexcept { return farm_; }

 private:
  struct Pending {
    EvalMultRequest req;
    std::promise<bfv::Ciphertext> promise;
  };

  void dispatcher_loop();
  void run_round(std::vector<Pending>& round);
  /// Chip-session fan-out; writes tensors for `live` request slots and
  /// records per-chip stats.  Returns per-chip exceptions (null = clean).
  std::vector<std::exception_ptr> run_batch_per_chip(
      const std::vector<std::size_t>& live,
      const std::vector<driver::EvalMultOperands>& ops,
      std::vector<std::vector<driver::TowerTensor>>& tensors);
  std::vector<std::exception_ptr> run_shard_towers(
      const std::vector<std::size_t>& live,
      const std::vector<driver::EvalMultOperands>& ops,
      std::vector<std::vector<driver::TowerTensor>>& tensors);
  void note_chip_session(std::size_t chip, const driver::ChipMulReport& rep,
                         std::uint64_t requests, std::uint64_t tower_runs,
                         double busy_wall_seconds);

  const bfv::Bfv& scheme_;
  ChipFarm& farm_;
  ServiceOptions opts_;
  backend::Executor exec_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // dispatcher: queue non-empty or stopping
  std::condition_variable idle_cv_;  // drain(): queue empty and nothing in flight
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  ServiceStats stats_;  // per_chip sized to the farm; queue_depth/wall filled on read
  std::chrono::steady_clock::time_point start_;
  std::thread dispatcher_;
};

}  // namespace cofhee::service
