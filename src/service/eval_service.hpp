// Async multi-chip evaluation service: the scheduler layer above
// driver::ChipBfvEvaluator.
//
// ChipBfv.IoDominatesAtSmallRings shows the serial link, not the PE,
// bounding EvalMult at bring-up ring sizes; the levers against that are
// (a) amortizing per-tower ring reconfiguration over many requests in one
// chip session, (b) spreading one request's independent towers across
// several chips, and (c) hiding host-side base conversion / rounding under
// the previous round's chip phases (double-buffered rounds, the
// HEAAN-demystified overlap).  EvalService implements all three behind one
// async API:
//
//   ChipFarm farm(4);
//   EvalService svc(scheme, farm, {Strategy::kShardTowers});
//   std::future<bfv::Ciphertext> f = svc.submit({ca, cb});
//   bfv::Ciphertext product = f.get();     // == scheme.multiply(ca, cb)
//
// Three request kinds flow through the same farm: kEvalMult (the Eq. 4
// tensor), kRelinearize (Algorithm-2 key switching of a 3-element
// ciphertext), and kMultRelin (the paper's complete EvalMult -- tensor,
// then key switching, chained inside one round).  A dispatcher thread
// coalesces queued requests into rounds of at most `max_batch`, fans chip
// sessions out over a backend::Executor -- per (request-group, chip) in
// kBatchPerChip, per (tower-shard, chip) in kShardTowers -- and, with
// overlap_rounds enabled, prepares round k host-side while round k-1's
// chip stage is still in flight (a two-slot session buffer).  All paths
// produce ciphertexts byte-identical to the serial single-chip software
// path (tests/service/test_eval_service.cpp).
//
// Shutdown is graceful: shutdown() (and the destructor) stop intake,
// drain every queued request and the pipelined session, and join the
// dispatcher.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/exec_policy.hpp"
#include "bfv/bfv.hpp"
#include "driver/chip_bfv.hpp"
#include "service/chip_farm.hpp"
#include "service/service_stats.hpp"

namespace cofhee::service {

/// What a request asks the farm to compute.
enum class RequestKind : std::uint8_t {
  /// Eq. 4 tensor + t/q rounding; 2-element inputs, 3-element result
  /// ("without relinearization", the Fig. 6 operation).
  kEvalMult = 0,
  /// Algorithm-2 key switching of a 3-element ciphertext (field `a`; `b` is
  /// ignored) back to 2 elements.  Requires ServiceOptions::relin_keys.
  kRelinearize = 1,
  /// The paper's complete EvalMult: tensor then key switching, chained
  /// inside one round.  Requires ServiceOptions::relin_keys.
  kMultRelin = 2,
};

/// One evaluation request.  Field use depends on `kind` (see RequestKind).
struct EvalRequest {
  /// First operand: 2-element for kEvalMult/kMultRelin, 3-element for
  /// kRelinearize.
  bfv::Ciphertext a;
  /// Second operand (kEvalMult/kMultRelin); ignored for kRelinearize.
  bfv::Ciphertext b;
  /// Operation to perform; defaults to the tensor-only EvalMult.
  RequestKind kind = RequestKind::kEvalMult;
};

/// Backward-compatible name from when the service only knew EvalMult.
using EvalMultRequest = EvalRequest;

/// How a round's chip work is split across the farm.
enum class Strategy : std::uint8_t {
  /// Whole requests round-robined over chips; each chip runs its share of a
  /// round as one session, ring-configuring every tower once for the group.
  kBatchPerChip = 0,
  /// One round's towers sharded across all chips (chip c owns towers
  /// {c, c+C, ...} of every request) and reassembled on the host.  Cuts
  /// single-request latency by ~|towers|/C.
  kShardTowers = 1,
};

/// Runtime configuration of an EvalService.
struct ServiceOptions {
  /// Chip-work split for every round.
  Strategy strategy = Strategy::kBatchPerChip;
  /// Most requests one dispatcher round coalesces into chip sessions.
  /// 1 reproduces the one-request-per-session serial behavior.
  std::size_t max_batch = 16;
  /// Fan sessions out over a pooled Executor sized to the farm; false runs
  /// the whole scheduler single-threaded (the bit-exact reference shape).
  bool pooled_dispatch = true;
  /// Key material for kRelinearize / kMultRelin requests; the caller keeps
  /// it alive for the service's lifetime.  Validated against the scheme at
  /// construction (std::invalid_argument on a level/ring mismatch).
  /// Submitting a relin request while this is null throws.
  const bfv::RelinKeys* relin_keys = nullptr;
  /// Double-buffered rounds: prepare round k host-side while round k-1's
  /// chip stage is in flight, and finish round k-1 while round k's chip
  /// stage runs.  false executes every phase back-to-back (the reference
  /// schedule; results are bit-identical either way).
  bool overlap_rounds = true;
  /// Request-queue capacity; 0 means unbounded.  submit()/submit_batch()
  /// throw std::invalid_argument for a batch that could never fit and
  /// std::runtime_error when the queue is currently full.
  std::size_t max_queue = 0;
  /// Deterministic host cost model: coefficient operations per second the
  /// virtual host resource processes (base extension, digit decompose, t/q
  /// rounding).  Feeds the sim_host_* / *_span_seconds stats; never affects
  /// results or wall-clock behavior.
  double host_coeff_ops_per_sec = 250e6;
};

/// Async multi-chip evaluation front end over a ChipFarm.
class EvalService {
 public:
  /// `scheme` supplies host-side RNS plumbing and must outlive the service;
  /// its const evaluation entry points are used concurrently.  Throws
  /// std::invalid_argument when the scheme's ring does not fit the farm's
  /// chips or opts.relin_keys mismatches the scheme's level.
  EvalService(const bfv::Bfv& scheme, ChipFarm& farm, ServiceOptions opts = {});
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Enqueue one request; the future carries the result ciphertext or the
  /// exception that defeated it.  Throws std::invalid_argument on malformed
  /// operands (wrong element count for the kind, relin kinds without keys)
  /// and std::runtime_error after shutdown() or when the queue is full.
  std::future<bfv::Ciphertext> submit(EvalRequest req);

  /// Enqueue a group atomically, so one dispatcher round can coalesce it
  /// into batched chip sessions (subject to max_batch).  Kinds may be
  /// mixed freely within a batch.
  std::vector<std::future<bfv::Ciphertext>> submit_batch(
      std::vector<EvalRequest> reqs);

  /// Block until every request accepted so far has completed.
  void drain();

  /// Stop intake, drain the queue and the pipelined session, join the
  /// dispatcher.  Idempotent.
  void shutdown();

  /// Consistent snapshot (including live queue depth and wall clock).
  [[nodiscard]] ServiceStats stats() const;

  /// The options this service was built with (max_batch normalized to >= 1).
  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }
  /// The farm this service schedules onto.
  [[nodiscard]] ChipFarm& farm() noexcept { return farm_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    EvalRequest req;
    std::promise<bfv::Ciphertext> promise;
  };

  /// Per-request working state inside a round.
  struct RoundSlot {
    driver::EvalMultOperands mult;               // kEvalMult / kMultRelin
    driver::RelinOperands relin;                 // kRelinearize / kMultRelin
    std::vector<driver::TowerTensor> tensors;    // tensor-stage outputs
    std::vector<driver::RelinTowerAcc> relin_accs;  // key-switch outputs
  };

  /// One dispatcher round flowing through the two-slot session buffer.
  struct Session {
    std::vector<Pending> round;
    std::vector<RoundSlot> slots;
    std::vector<std::exception_ptr> errs;
    std::future<void> chip;   // in-flight chip stage (overlap mode)
    double sim_prep = 0;      // modeled host seconds, pre-chip
    double sim_chip = 0;      // round chip-stage span (simulated)
    double sim_finish = 0;    // modeled host seconds, post-chip
    double model_ready = 0;   // virtual host clock when the chip stage could start
    double model_chip_end = 0;  // virtual chip clock at this round's chip end
  };

  void dispatcher_loop();
  /// Host phase 1: base extension / digit decomposition per request.
  void host_prepare(Session& s);
  /// Chip stage: tensor sessions, mult-relin mid-round host work, then
  /// key-switch sessions.  Fills s.sim_chip.
  void run_chip_stage(Session& s);
  /// Host phase 2: reassembly / rounding, promise fulfillment.
  void host_finish(Session& s);
  /// Final stats + in-flight accounting for a finished session.
  void retire(Session& s);

  /// Tensor-stage fan-out; writes tensors for `live` slots and records
  /// per-chip stats.  Returns per-chip exceptions (null = clean).
  std::vector<std::exception_ptr> run_mult_batch_per_chip(
      Session& s, const std::vector<std::size_t>& live,
      std::vector<double>& chip_sim);
  std::vector<std::exception_ptr> run_mult_shard_towers(
      Session& s, const std::vector<std::size_t>& live,
      std::vector<double>& chip_sim);
  /// Key-switch-stage fan-out over the Q basis, same shapes as above.
  std::vector<std::exception_ptr> run_relin_batch_per_chip(
      Session& s, const std::vector<std::size_t>& live,
      std::vector<double>& chip_sim);
  std::vector<std::exception_ptr> run_relin_shard_towers(
      Session& s, const std::vector<std::size_t>& live,
      std::vector<double>& chip_sim);

  void note_chip_session(std::size_t chip, const driver::ChipMulReport& rep,
                         std::uint64_t requests, std::uint64_t tower_runs,
                         std::uint64_t relin_tower_runs, double busy_wall_seconds);
  /// Modeled host seconds for `ops` coefficient operations.
  [[nodiscard]] double host_seconds(double ops) const noexcept;

  const bfv::Bfv& scheme_;
  ChipFarm& farm_;
  ServiceOptions opts_;
  backend::Executor exec_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // dispatcher: queue non-empty or stopping
  std::condition_variable idle_cv_;  // drain(): queue empty and nothing in flight
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  ServiceStats stats_;  // per_chip sized to the farm; queue_depth/wall filled on read
  double model_host_ = 0;  // pipeline model: virtual host resource clock
  double model_chip_ = 0;  // pipeline model: virtual chip-farm resource clock
  bool any_accepted_ = false;
  Clock::time_point first_accept_{};
  Clock::time_point last_done_{};
  Clock::time_point start_;
  std::thread dispatcher_;
};

}  // namespace cofhee::service
