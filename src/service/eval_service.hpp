// Async multi-chip evaluation service: the scheduler layer above
// driver::ChipBfvEvaluator.
//
// ChipBfv.IoDominatesAtSmallRings shows the serial link, not the PE,
// bounding EvalMult at bring-up ring sizes; the levers against that are
// (a) amortizing per-tower ring reconfiguration over many requests in one
// chip session, (b) spreading one request's independent towers across
// several chips, and (c) hiding host-side base conversion / rounding under
// earlier rounds' chip phases (pipelined rounds, the HEAAN-demystified
// overlap).  EvalService implements all three behind one async API:
//
//   ChipFarm farm(4);
//   EvalService svc(scheme, farm, {Strategy::kShardTowers});
//   std::future<bfv::Ciphertext> f = svc.submit({ca, cb});
//   bfv::Ciphertext product = f.get();     // == scheme.multiply(ca, cb)
//
// Three request kinds flow through the same farm: kEvalMult (the Eq. 4
// tensor), kRelinearize (Algorithm-2 key switching of a 3-element
// ciphertext), and kMultRelin (the paper's complete EvalMult -- tensor,
// then key switching, chained inside one round).
//
// Scheduler v2 (this layer's second generation) adds:
//
//  * a priority + fairness request queue (service/request_queue.hpp):
//    submits carry SubmitOptions{priority, tenant, weight}; classes are
//    served in priority order with a starvation bound, tenants inside a
//    class in weighted deficit round-robin (SchedPolicy::kFifo restores
//    the v1 arrival-order reference schedule);
//  * heterogeneous farms: ChipFarm slots may differ in ChipConfig, mode
//    and link, and a Placer (service/placer.hpp) scores each round's work
//    onto chips by projected finish time under the deterministic cost
//    model instead of striding round-robin -- a chip whose config cannot
//    serve the ring is skipped; if no chip can, requests fail with
//    FarmCapacityError;
//  * a K-slot session ring (ServiceOptions::pipeline_depth): up to K-1
//    rounds ride the pipeline with their chip stages chained while the
//    dispatcher prepares ahead and defers finishes, generalizing the v1
//    two-slot double buffer (depth 1 = fully serial reference);
//  * batch-aware relin-key caching: one driver::RelinKeyCache per chip
//    skips re-uploading key towers shared by consecutive key-switch
//    products in a session (counted in ServiceStats::key_cache_hits,
//    invalidated whenever tensor traffic clobbers SP1 or keys change).
//
// The healing layer (this PR's generation) makes the farm survivable: chip
// and link faults (chip/fault.hpp -- corrupt frames, stalled links, dead
// chips) surface as typed errors, a faulted chip's share of a stage is
// retried on the remaining chips (sessions are pure functions of
// host-resident operands, so re-running is idempotent), whole requests that
// still fault are requeued for a fresh round, chips faulting repeatedly are
// quarantined behind health probes and re-admitted when they answer again,
// and a per-chip EWMA of measured unit costs feeds placement so a degraded
// (stalling) chip sheds load before it ever trips quarantine.  See the
// ServiceOptions healing knobs and ServiceStats::{faults_injected, retries,
// requeues, quarantines, readmissions}.
//
// All paths produce ciphertexts byte-identical to the serial single-chip
// software path (tests/service/: test_eval_service.cpp, test_scheduler.cpp,
// test_heterogeneous_farm.cpp, test_service_pipeline_fuzz.cpp).
//
// Shutdown is graceful: shutdown() (and the destructor) stop intake,
// drain every queued request and the pipelined sessions, and join the
// dispatcher.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "backend/exec_policy.hpp"
#include "bfv/bfv.hpp"
#include "driver/chip_bfv.hpp"
#include "service/chip_farm.hpp"
#include "service/errors.hpp"
#include "service/placer.hpp"
#include "service/request_queue.hpp"
#include "service/service_stats.hpp"
#include "service/tenancy.hpp"

namespace cofhee::obs {
class Histogram;
class MetricsRegistry;
class TraceRecorder;
}  // namespace cofhee::obs

namespace cofhee::service {

/// How a round's chip work is split across the farm.
enum class Strategy : std::uint8_t {
  /// Whole requests placed onto chips; each chip runs its share of a round
  /// as one session, ring-configuring every tower once for the group.
  kBatchPerChip = 0,
  /// One round's towers placed across the farm (every chip serves its
  /// towers for every request) and reassembled on the host.  Cuts
  /// single-request latency by ~|towers|/C.
  kShardTowers = 1,
};

/// Runtime configuration of an EvalService.
struct ServiceOptions {
  /// Chip-work split for every round.
  Strategy strategy = Strategy::kBatchPerChip;
  /// Most requests one dispatcher round coalesces into chip sessions.
  /// 1 reproduces the one-request-per-session serial behavior.
  std::size_t max_batch = 16;
  /// Fan sessions out over a pooled Executor sized to the farm; false runs
  /// the whole scheduler single-threaded (the bit-exact reference shape).
  bool pooled_dispatch = true;
  /// Key material for kRelinearize / kMultRelin requests; the caller keeps
  /// it alive for the service's lifetime.  Validated against the scheme at
  /// construction (std::invalid_argument on a level/ring mismatch).
  /// Submitting a relin request while this is null throws.
  const bfv::RelinKeys* relin_keys = nullptr;
  /// Pipelined rounds: prepare round k host-side while earlier rounds'
  /// chip stages are in flight, and defer finishes behind the session
  /// ring.  false executes every phase back-to-back (the reference
  /// schedule; results are bit-identical either way).  Equivalent to
  /// pipeline_depth = 1 when false.
  bool overlap_rounds = true;
  /// Pending-request capacity, counting queued requests AND requests
  /// already drained into in-flight rounds (so a deep pipeline cannot hold
  /// ~pipeline_depth x the bound); 0 means unbounded.  submit_batch()
  /// throws BatchTooLargeError for a batch that could never fit even from
  /// empty and QueueFullError when admission would exceed the bound right
  /// now (both ServiceErrors; the latter is retryable back-pressure).
  std::size_t max_queue = 0;
  /// Deterministic host cost model: coefficient operations per second the
  /// virtual host resource processes (base extension, digit decompose, t/q
  /// rounding).  Feeds the sim_host_* / *_span_seconds stats; never affects
  /// results or wall-clock behavior.
  double host_coeff_ops_per_sec = 250e6;
  /// Queue ordering: priority classes + per-tenant weighted deficit
  /// round-robin (the default), or strict arrival order (the v1 reference
  /// path the scheduler tests differentiate against).
  SchedPolicy sched = SchedPolicy::kPriorityFair;
  /// Most consecutive picks a backlogged priority class may lose to other
  /// classes before it is force-served (0 = strict priority, unbounded
  /// starvation).  Only meaningful under SchedPolicy::kPriorityFair.
  std::size_t starvation_bound = 64;
  /// Work-onto-chip mapping: load-aware scoring over the per-chip cost
  /// model (the default) or the v1 round-robin stride.
  Placement placement = Placement::kLoadAware;
  /// Session-ring depth K: up to K-1 rounds keep their chip stages in
  /// flight while the dispatcher prepares ahead and defers finishes.
  /// 1 disables pipelining (fully serial reference), 2 reproduces the v1
  /// two-slot double buffer.  Normalized to >= 1; ignored (treated as 1)
  /// when overlap_rounds is false.
  std::size_t pipeline_depth = 2;
  /// Most distinct tenant ids tracked individually in
  /// ServiceStats::per_tenant; later ids aggregate under
  /// kOverflowTenantId, keeping per-tenant memory bounded for services
  /// fronting open-ended id spaces.  Normalized to >= 1.  Scheduling
  /// fairness is unaffected -- only the stats breakdown is capped.
  std::size_t max_tracked_tenants = 256;
  /// Healing, layer 1 -- intra-stage retries: when a chip's share of a
  /// stage faults (chip::FaultError), its items are re-placed onto the
  /// remaining eligible chips and the stage re-run, up to this many times
  /// per stage before the fault is surfaced to the round.  Sessions are
  /// pure functions of host-resident operands, so re-running is safe.
  std::size_t max_stage_retries = 2;
  /// Healing, layer 2 -- round requeues: a request whose round still
  /// faulted after stage retries goes back into the queue for a fresh
  /// round, at most this many times, before its future gets the
  /// originating fault.
  std::size_t request_retries = 2;
  /// Consecutive faults (without an intervening success) after which a chip
  /// is quarantined: it receives health probes instead of sessions until a
  /// probe passes.  0 disables quarantine.
  std::size_t quarantine_after = 2;
  /// Dispatcher rounds between health probes of a quarantined chip.
  /// Normalized to >= 1.
  std::size_t probe_interval_rounds = 1;
  /// Modeled per-chip stage budget: a chip whose share of a stage takes
  /// longer than this in simulated seconds is treated as faulted (counted
  /// in ServiceStats::stage_timeouts) and its items retried elsewhere.
  /// 0 disables the check.  Seconds (simulated).
  double stage_timeout_seconds = 0;
  /// Smoothing factor for the measured per-chip unit-cost EWMA that feeds
  /// placement (cost := (1-a)*cost + a*sample).  0 freezes costs at the
  /// modeled seed (the v2 reference behavior); clamped to [0, 1].
  double cost_ewma_alpha = 0.3;
  /// Optional trace recorder (obs/trace.hpp, caller-owned, must outlive the
  /// service): the service then emits hierarchical spans -- async "request"
  /// spans from submit to settle, wall spans for every round phase and
  /// per-chip stage, simulated-axis spans for driver phases / link
  /// transactions / the pipeline model, and "heal" instants for retries,
  /// requeues, quarantines and probes.  Tracing never changes results or
  /// scheduling; when the recorder is null (or COFHEE_TRACING=0) every call
  /// site reduces to a pointer check (or nothing at all).  Export the trace
  /// only after drain() or shutdown() -- the recorder requires quiescence.
  obs::TraceRecorder* trace = nullptr;
  /// Optional metrics registry (obs/metrics.hpp, caller-owned): the service
  /// records per-class request-latency histograms
  /// (cofhee_request_latency_seconds{class=...}) as requests settle.  For
  /// the counter exposition, render obs::export_service_stats(stats(), reg)
  /// into the same registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-tenant admission limits (service/tenancy.hpp): token-bucket rate
  /// limits (submit throws RateLimitedError with a retry-after hint) and
  /// pending quotas over queued + in-flight requests (TenantQuotaError).
  /// Enforcement keys on the real tenant id even past max_tracked_tenants.
  /// The default enforces nothing and costs nothing at admission.
  TenancyOptions tenancy;
};

/// Async multi-chip evaluation front end over a ChipFarm.
class EvalService {
 public:
  /// `scheme` supplies host-side RNS plumbing and must outlive the service;
  /// its const evaluation entry points are used concurrently.  Throws
  /// FarmCapacityError (a std::invalid_argument) when the scheme's ring
  /// fits none of the farm's chips, and std::invalid_argument when
  /// opts.relin_keys mismatches the scheme's level.
  EvalService(const bfv::Bfv& scheme, ChipFarm& farm, ServiceOptions opts = {});
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Enqueue one request; the future carries the result ciphertext or the
  /// exception that defeated it (for chip/link faults, the originating
  /// chip::FaultError once every retry and requeue is exhausted).  `so`
  /// tags the request with its priority class, tenant and fairness weight.
  /// Throws std::invalid_argument on malformed operands (wrong element
  /// count for the kind, relin kinds without keys); admission failures are
  /// typed ServiceErrors (std::runtime_errors): ServiceStoppedError after
  /// shutdown(), QueueFullError when queued + in-flight work is at
  /// ServiceOptions::max_queue, BatchTooLargeError for a batch that could
  /// never fit, and -- with ServiceOptions::tenancy configured --
  /// RateLimitedError / TenantQuotaError when the tenant is over its rate
  /// or pending limit.  Rejected requests are counted in
  /// ServiceStats::rejected_* and per tenant, and consume nothing.
  std::future<bfv::Ciphertext> submit(EvalRequest req, SubmitOptions so = {});

  /// Enqueue a group atomically, so one dispatcher round can coalesce it
  /// into batched chip sessions (subject to max_batch).  Kinds may be
  /// mixed freely within a batch; every request carries the same `so`.
  std::vector<std::future<bfv::Ciphertext>> submit_batch(
      std::vector<EvalRequest> reqs, SubmitOptions so = {});

  /// Block until every request accepted so far has completed.
  void drain();

  /// Stop intake, drain the queue and the pipelined sessions, join the
  /// dispatcher.  Idempotent.
  void shutdown();

  /// Consistent snapshot (including live queue depth and wall clock).
  [[nodiscard]] ServiceStats stats() const;

  /// The options this service was built with (max_batch / pipeline_depth
  /// normalized to >= 1).
  [[nodiscard]] const ServiceOptions& options() const noexcept { return opts_; }
  /// The farm this service schedules onto.
  [[nodiscard]] ChipFarm& farm() noexcept { return farm_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-request working state inside a round.
  struct RoundSlot {
    driver::EvalMultOperands mult;               // kEvalMult / kMultRelin
    driver::RelinOperands relin;                 // kRelinearize / kMultRelin
    std::vector<driver::TowerTensor> tensors;    // tensor-stage outputs
    std::vector<driver::RelinTowerAcc> relin_accs;  // key-switch outputs
  };

  /// One dispatcher round flowing through the K-slot session ring.
  struct Session {
    std::vector<Pending> round;
    std::vector<RoundSlot> slots;
    std::vector<std::exception_ptr> errs;
    std::shared_future<void> chip;  // in-flight chip stage (pipelined mode)
    double sim_prep = 0;      // modeled host seconds, pre-chip
    double sim_chip = 0;      // round chip-stage span (simulated)
    double sim_finish = 0;    // modeled host seconds, post-chip
    double model_ready = 0;   // virtual host clock when the chip stage could start
    double model_chip_end = 0;  // virtual chip clock at this round's chip end
  };

  /// Per-tenant accumulator behind ServiceStats::per_tenant.
  struct TenantAgg {
    TenantStats counts;
    LatencyWindow latency;
  };

  /// The tracked accumulator for `tenant`, or the kOverflowTenantId bucket
  /// once max_tracked_tenants distinct ids exist.  Caller holds mu_.
  TenantAgg& tenant_agg(std::uint64_t tenant);

  /// Per-tenant enforcement state, keyed by the *real* tenant id (tenancy
  /// must not fold into the stats overflow bucket).  Entries are dropped
  /// once idle (nothing pending, bucket refilled), so the table tracks
  /// active tenants only.
  struct TenantState {
    TokenBucket bucket;        ///< rate-limit bucket (when rate-limited)
    std::size_t pending = 0;   ///< this tenant's queued + in-flight requests
  };

  /// Count `n` admission-rejected requests for `tenant` into the service
  /// and per-tenant stats.  Caller holds mu_.
  void note_rejected_locked(std::uint64_t tenant, std::uint64_t n,
                            std::uint64_t* service_counter);
  /// Release one settled request's tenancy pending slot (and garbage-collect
  /// the tenant's state once idle).  Caller holds mu_.
  void tenancy_release_locked(std::uint64_t tenant, double now);

  void dispatcher_loop();
  /// Host phase 1: base extension / digit decomposition per request.
  void host_prepare(Session& s);
  /// Chip stage: tensor sessions, mult-relin mid-round host work, then
  /// key-switch sessions.  Fills s.sim_chip.
  void run_chip_stage(Session& s);
  /// Host phase 2: reassembly / rounding, promise fulfillment.
  void host_finish(Session& s);
  /// Final stats + in-flight accounting for a finished session.
  void retire(Session& s);
  /// Model + stats bookkeeping once a session's chip stage has completed
  /// (in ring order), then host_finish + retire.
  void finish_session(Session& s, bool overlapped_finish);

  /// Placement inputs for one stage: per-chip eligibility (config fit AND
  /// not quarantined AND not in `exclude`) and the measured (EWMA) unit
  /// cost, starting from idle chips (stages are barrier-synchronized).
  [[nodiscard]] std::vector<ChipScore> chip_scores(
      const std::vector<bool>* exclude) const;
  /// Place `items` uniform work items onto chips; returns the item indices
  /// grouped per chip (empty for chips that sat the stage out) and counts
  /// the placements into ServiceStats.  `exclude` (optional) blacklists
  /// chips that already faulted this stage; if the blacklist would leave no
  /// chip, it is ignored (a lone chip's transient fault must stay
  /// retryable).  If quarantine alone leaves no chip, every quarantined
  /// chip is force-probed once and passing chips re-admitted; only if the
  /// farm is still empty does this throw FarmCapacityError.
  std::vector<std::vector<std::size_t>> place_items(
      std::size_t items, const std::vector<bool>* exclude = nullptr);

  /// Work counters one chip's stage body reports into note_chip_session.
  struct StageCounters {
    std::uint64_t requests = 0;
    std::uint64_t tower_runs = 0;
    std::uint64_t relin_tower_runs = 0;
  };

  /// Shared stage scaffold: place `items` onto chips, fan the per-chip
  /// `work(chip, placed_items, report, counters)` body out over the
  /// Executor, and record per-chip stats/sim time.  A chip whose share
  /// faults (chip::FaultError, or a modeled stage timeout) has its items
  /// re-placed onto the other eligible chips and re-run, up to
  /// ServiceOptions::max_stage_retries times -- the work bodies are pure
  /// functions of host-resident operands, so re-running is idempotent.
  /// Only when retries are exhausted (or the failure is not a fault) is
  /// the error folded into s.errs: onto the chip's own placed slots when
  /// `per_item_errors` (batch strategies, items index `live`), onto every
  /// live slot otherwise (tower shards: any lost shard starves the whole
  /// round).  Defined in eval_service.cpp (only used there).
  template <typename Work>
  void run_stage(Session& s, const std::vector<std::size_t>& live,
                 std::vector<double>& chip_sim, std::size_t items,
                 bool per_item_errors, Work&& work);

  /// Tensor-stage fan-out; writes tensors for `live` slots, records
  /// per-chip stats and folds chip failures into s.errs.
  void run_mult_batch_per_chip(Session& s, const std::vector<std::size_t>& live,
                               std::vector<double>& chip_sim);
  void run_mult_shard_towers(Session& s, const std::vector<std::size_t>& live,
                             std::vector<double>& chip_sim);
  /// Key-switch-stage fan-out over the Q basis, same shapes as above.
  void run_relin_batch_per_chip(Session& s, const std::vector<std::size_t>& live,
                                std::vector<double>& chip_sim);
  void run_relin_shard_towers(Session& s, const std::vector<std::size_t>& live,
                              std::vector<double>& chip_sim);

  void note_chip_session(std::size_t chip, const driver::ChipMulReport& rep,
                         std::uint64_t requests, std::uint64_t tower_runs,
                         std::uint64_t relin_tower_runs, double busy_wall_seconds);
  /// Modeled host seconds for `ops` coefficient operations.
  [[nodiscard]] double host_seconds(double ops) const noexcept;

  /// Healing bookkeeping for one chip fault: bump the fault counters and
  /// quarantine the chip once ServiceOptions::quarantine_after consecutive
  /// faults accumulate.  Caller holds mu_.
  void note_chip_fault_locked(std::size_t chip);
  /// Healing bookkeeping for a successful session: reset the chip's
  /// consecutive-fault count and fold `unit_cost_sample` (modeled seconds
  /// per placed item; <= 0 skips the update) into its placement EWMA.
  /// Caller holds mu_.
  void note_chip_ok_locked(std::size_t chip, double unit_cost_sample);
  /// Probe quarantined chips (HostDriver::probe) and re-admit the ones that
  /// answer.  Respects ServiceOptions::probe_interval_rounds unless
  /// `force`.  Called from the dispatcher with no session holding the
  /// probed chips (quarantined chips receive no placements).  Takes mu_.
  void probe_quarantined(bool force);

  /// Per-chip healing state (guarded by mu_).
  struct ChipHealth {
    std::size_t consecutive_faults = 0;  ///< Faults since the last success.
    bool quarantined = false;            ///< Receiving probes, not sessions.
    std::uint64_t last_probe_round = 0;  ///< stats_.rounds at the last probe.
  };

  const bfv::Bfv& scheme_;
  ChipFarm& farm_;
  ServiceOptions opts_;
  std::size_t depth_;  // effective session-ring depth (>= 1)
  backend::Executor exec_;
  std::vector<bool> chip_eligible_;     // can chip c serve the ring at all?
  std::vector<double> chip_unit_cost_;  // measured EWMA seconds per work item
  std::vector<ChipHealth> health_;      // quarantine state (guarded by mu_)
  std::vector<driver::RelinKeyCache> key_caches_;  // one per chip

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // dispatcher: queue non-empty or stopping
  std::condition_variable idle_cv_;  // drain(): queue empty and nothing in flight
  RequestQueue queue_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_req_id_ = 0;  // async-trace request ids (guarded by mu_)
  bool stopping_ = false;
  ServiceStats stats_;  // per_chip sized to the farm; queue_depth/wall filled on read
  std::vector<LatencyWindow> class_latency_;           // kNumPriorities windows
  // Per-class request-latency histograms, resolved once at construction
  // (instrument lookup locks the registry; observe() is lock-free).  Null
  // without ServiceOptions::metrics.
  std::array<obs::Histogram*, kNumPriorities> latency_hist_{};
  std::unordered_map<std::uint64_t, TenantAgg> tenants_;
  std::unordered_map<std::uint64_t, TenantState> tenancy_;  // guarded by mu_
  bool tenancy_enabled_ = false;  // cached opts_.tenancy.enabled()
  double model_host_ = 0;  // pipeline model: virtual host resource clock
  double model_chip_ = 0;  // pipeline model: virtual chip-farm resource clock
  bool any_accepted_ = false;
  Clock::time_point first_accept_{};
  Clock::time_point last_done_{};
  Clock::time_point start_;
  std::thread dispatcher_;
};

}  // namespace cofhee::service
