#include "service/placer.hpp"

namespace cofhee::service {

std::vector<std::size_t> Placer::assign(std::vector<ChipScore> chips,
                                        std::size_t items, Placement policy) {
  std::vector<std::size_t> eligible;
  eligible.reserve(chips.size());
  for (std::size_t c = 0; c < chips.size(); ++c)
    if (chips[c].eligible) eligible.push_back(c);
  if (eligible.empty())
    throw FarmCapacityError("Placer: no chip in the farm can serve this request");

  std::vector<std::size_t> assign(items);
  if (policy == Placement::kRoundRobin) {
    for (std::size_t i = 0; i < items; ++i) assign[i] = eligible[i % eligible.size()];
    return assign;
  }
  // Load-aware: each item goes to the eligible chip with the smallest
  // projected finish time (current load + one more unit), then carries that
  // load forward so subsequent items spread out.  With identical scores
  // this reproduces the round-robin stride exactly (ties break low).
  for (std::size_t i = 0; i < items; ++i) {
    std::size_t best = eligible.front();
    double best_t = chips[best].load + chips[best].unit_cost;
    for (std::size_t k = 1; k < eligible.size(); ++k) {
      const std::size_t c = eligible[k];
      const double t = chips[c].load + chips[c].unit_cost;
      if (t < best_t) {
        best = c;
        best_t = t;
      }
    }
    assign[i] = best;
    chips[best].load = best_t;
  }
  return assign;
}

}  // namespace cofhee::service
