// Scheduler v2 request queue: priority classes + per-tenant weighted
// deficit round-robin, replacing the plain FIFO of the original service.
//
// Requests enter tagged with SubmitOptions{priority, tenant, weight}.  The
// queue maintains one tenant ring per priority class; pop_round() drains up
// to max_batch requests by repeatedly (1) picking the highest non-empty
// class -- unless a lower class has been skipped `starvation_bound` times
// in a row, in which case the most-starved class is force-picked -- and
// (2) serving the class's tenants in weighted deficit round-robin order
// (each tenant's turn grants `weight` picks, so backlogged tenants converge
// to throughput shares proportional to their weights).  Within one tenant
// the order is strict FIFO, so a single-tenant single-class workload
// degenerates to exactly the legacy FIFO schedule.
//
// The queue is not thread-safe; EvalService serializes access under its
// own mutex.  Determinism: pop order depends only on the push order and
// the SubmitOptions carried by each request -- never on wall-clock time --
// which is what tests/service/test_scheduler.cpp's scripted arrival traces
// rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <unordered_map>
#include <vector>

#include "bfv/bfv.hpp"

namespace cofhee::service {

/// What a request asks the farm to compute.
enum class RequestKind : std::uint8_t {
  /// Eq. 4 tensor + t/q rounding; 2-element inputs, 3-element result
  /// ("without relinearization", the Fig. 6 operation).
  kEvalMult = 0,
  /// Algorithm-2 key switching of a 3-element ciphertext (field `a`; `b` is
  /// ignored) back to 2 elements.  Requires ServiceOptions::relin_keys.
  kRelinearize = 1,
  /// The paper's complete EvalMult: tensor then key switching, chained
  /// inside one round.  Requires ServiceOptions::relin_keys.
  kMultRelin = 2,
};

/// One evaluation request.  Field use depends on `kind` (see RequestKind).
struct EvalRequest {
  /// First operand: 2-element for kEvalMult/kMultRelin, 3-element for
  /// kRelinearize.
  bfv::Ciphertext a;
  /// Second operand (kEvalMult/kMultRelin); ignored for kRelinearize.
  bfv::Ciphertext b;
  /// Operation to perform; defaults to the tensor-only EvalMult.
  RequestKind kind = RequestKind::kEvalMult;
  /// Squaring hint for kEvalMult/kMultRelin: the second operand IS `a`
  /// (`b` is ignored and may stay empty).  The service then base-extends
  /// one ciphertext instead of two and the chip synthesizes the B operand
  /// banks from A's by on-chip DMA instead of re-uploading them over the
  /// serial link (ChipBfvEvaluator::prepare_square).  Bit-exact vs
  /// submitting {a, a}.  Rejected for kRelinearize.
  bool square = false;
};

/// Backward-compatible name from when the service only knew EvalMult.
using EvalMultRequest = EvalRequest;

/// Scheduling class of a request; lower value = served first.
enum class Priority : std::uint8_t {
  kHigh = 0,    ///< latency-sensitive traffic, always picked first
  kNormal = 1,  ///< the default class
  kLow = 2,     ///< batch / best-effort traffic
};

/// Number of priority classes (the Priority enumerators are 0..kNumPriorities-1).
inline constexpr std::size_t kNumPriorities = 3;

/// Per-submit scheduling tags; defaults reproduce the legacy single-queue
/// behavior (everyone is tenant 0 at kNormal with weight 1).
struct SubmitOptions {
  /// Scheduling class; classes are served strictly in priority order up to
  /// the starvation bound (ServiceOptions::starvation_bound).
  Priority priority = Priority::kNormal;
  /// Fairness domain: requests from different tenants inside one class
  /// share the farm in weighted deficit round-robin.
  std::uint64_t tenant = 0;
  /// DRR weight of this tenant (throughput share vs its class peers).
  /// Clamped to >= 1; the latest submit's weight wins for the tenant.
  std::uint32_t weight = 1;
};

/// How the dispatcher orders queued requests.
enum class SchedPolicy : std::uint8_t {
  /// Strict arrival order, ignoring SubmitOptions (the v1 reference path).
  kFifo = 0,
  /// Priority classes + per-tenant weighted deficit round-robin with a
  /// starvation bound (scheduler v2, the default).
  kPriorityFair = 1,
};

/// One queued request with its promise and scheduling tags.
struct Pending {
  /// The work to perform.
  EvalRequest req;
  /// Fulfilled by the dispatcher with the result ciphertext or an error.
  std::promise<bfv::Ciphertext> promise;
  /// Scheduling tags the request was submitted with.
  SubmitOptions so;
  /// Clock value at admission, in the caller's time base (EvalService uses
  /// wall seconds since construction; the scheduler tests use a mock clock).
  double enqueued = 0;
  /// Clock value when pop_round() handed the request to a round.
  double dequeued = 0;
  /// True when the starvation bound forced this pick out of priority order.
  bool forced = false;
  /// Rounds this request has already faulted out of (the healing layer's
  /// requeue counter); the dispatcher gives up once it exceeds
  /// ServiceOptions::request_retries and fulfills the promise with the
  /// originating fault instead.
  std::uint32_t attempts = 0;
  /// Service-assigned id (1-based, submit order), carried through requeues.
  /// Correlates the trace's async "request" span with its rounds/stages.
  std::uint64_t id = 0;
};

/// Priority + fairness request queue (see file comment).  Not thread-safe.
class RequestQueue {
 public:
  /// `starvation_bound` is the most consecutive picks a non-empty class can
  /// lose to other classes before it is force-served (0 means unbounded,
  /// i.e. strict priority).  Ignored under SchedPolicy::kFifo.
  explicit RequestQueue(SchedPolicy policy = SchedPolicy::kPriorityFair,
                        std::size_t starvation_bound = 64);

  /// Admit one request (reads p.so for its class/tenant/weight).
  void push(Pending p);

  /// True when no request is queued.
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Requests currently queued.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Requests currently queued in priority class `cls` (tracked under both
  /// policies; under kFifo the class tags still arrive with each push).
  [[nodiscard]] std::size_t class_depth(std::size_t cls) const noexcept {
    return cls < kNumPriorities ? class_size_[cls] : 0;
  }

  /// Dequeue up to `max_batch` requests in scheduling order, stamping each
  /// Pending::dequeued with `now` and Pending::forced where the starvation
  /// bound overrode priority order.
  std::vector<Pending> pop_round(std::size_t max_batch, double now);

  /// Total picks the starvation bound forced out of priority order.
  [[nodiscard]] std::uint64_t forced_picks() const noexcept { return forced_picks_; }

  /// Largest consecutive-skip count any non-empty class ever reached.
  /// With a bound B a lone starved class is served the moment it has lost
  /// B picks; when several classes starve at once only one can be
  /// force-served per pick, so the invariant the scheduler tests assert is
  /// max_skip_observed() <= B + kNumPriorities - 2.
  [[nodiscard]] std::uint64_t max_skip_observed() const noexcept {
    return max_skip_observed_;
  }

 private:
  /// One tenant's FIFO backlog + DRR bookkeeping inside a class.
  struct TenantQueue {
    std::deque<Pending> q;
    std::uint32_t weight = 1;   // latest submitted weight, >= 1
    std::uint32_t deficit = 0;  // picks left in the tenant's current turn
  };
  /// One priority class: tenant queues in DRR rotation order.
  struct ClassState {
    std::unordered_map<std::uint64_t, TenantQueue> tenants;
    std::deque<std::uint64_t> rotation;  // backlogged tenants, turn order
    std::size_t size = 0;                // requests queued in this class
    std::uint64_t skipped = 0;  // consecutive picks lost to other classes
  };

  Pending pop_one(double now);
  std::size_t pick_class(bool* forced);

  SchedPolicy policy_;
  std::size_t bound_;
  std::deque<Pending> fifo_;  // SchedPolicy::kFifo storage
  ClassState classes_[kNumPriorities];
  std::size_t class_size_[kNumPriorities] = {};  // queued per class, any policy
  std::size_t size_ = 0;
  std::uint64_t forced_picks_ = 0;
  std::uint64_t max_skip_observed_ = 0;
};

}  // namespace cofhee::service
