#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#if COFHEE_TRACING

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <utility>

namespace cofhee::obs {

namespace {

/// Never-reused recorder ids: the key that makes the thread-local buffer
/// cache safe.  A destroyed recorder's id can never match a later one, so a
/// stale cache entry is dead weight, never a dangling dereference.
std::atomic<std::uint64_t> g_next_recorder_id{1};

struct TlsEntry {
  std::uint64_t rec_id = 0;
  void* buf = nullptr;
};

/// Per-thread cache of (recorder id -> buffer).  Bounded: threads that
/// outlive many recorders (the main test thread) drop the oldest entries
/// and simply re-register on the next touch.
thread_local std::vector<TlsEntry> t_bufs;

constexpr std::size_t kTlsCacheCap = 32;

/// JSON-escape `s` into `os` (names and thread names; values are numeric).
void escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        else
          os << c;
    }
  }
}

void emit_number(std::ostream& os, double v) {
  // Round-trippable but compact; trace files carry many thousands of
  // timestamps.
  std::ostringstream ss;
  ss << std::setprecision(12) << v;
  os << ss.str();
}

void emit_args(std::ostream& os, const TraceEvent& e) {
  os << "\"args\":{";
  for (int a = 0; a < e.nargs; ++a) {
    if (a != 0) os << ',';
    os << '"';
    escape(os, e.args[a].key);
    os << "\":";
    emit_number(os, e.args[a].value);
  }
  os << '}';
}

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      t0_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

double TraceRecorder::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

TraceRecorder::ThreadBuf& TraceRecorder::buf() {
  for (const TlsEntry& e : t_bufs)
    if (e.rec_id == id_) return *static_cast<ThreadBuf*>(e.buf);
  // First touch from this thread: register a fresh buffer (the only locked
  // path; every later event from this thread is a plain vector append).
  ThreadBuf* b;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    bufs_.push_back(std::make_unique<ThreadBuf>());
    b = bufs_.back().get();
  }
  b->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  if (t_bufs.size() >= kTlsCacheCap)
    t_bufs.erase(t_bufs.begin());  // oldest recorder re-registers if alive
  t_bufs.push_back({id_, b});
  return *b;
}

void TraceRecorder::fill_args(TraceEvent& ev, TraceArgs args) noexcept {
  for (const TraceArg& a : args) {
    if (ev.nargs == kMaxTraceArgs) break;
    ev.args[ev.nargs++] = a;
  }
}

double TraceRecorder::advance_cursor(std::uint32_t track, double dur) noexcept {
  auto& c = sim_cursor_[track % kMaxSimTracks];
  double old = c.load(std::memory_order_relaxed);
  while (!c.compare_exchange_weak(old, old + dur, std::memory_order_relaxed)) {
  }
  return old;
}

TraceRecorder::WallSpan::WallSpan(TraceRecorder* rec, const char* name,
                                  const char* cat, TraceArgs args)
    : rec_(rec) {
  if (rec_ == nullptr) return;
  ev_.name = name;
  ev_.cat = cat;
  ev_.ph = 'X';
  ev_.pid = kPidWall;
  ev_.ts_us = rec_->now_us();
  fill_args(ev_, args);
}

void TraceRecorder::WallSpan::end() noexcept {
  if (rec_ == nullptr) return;
  ev_.dur_us = rec_->now_us() - ev_.ts_us;
  TraceRecorder* r = rec_;
  rec_ = nullptr;
  ev_.tid = r->buf().tid;
  r->record(ev_);
}

void TraceRecorder::WallSpan::arg(const char* key, double value) noexcept {
  if (rec_ == nullptr || ev_.nargs == kMaxTraceArgs) return;
  ev_.args[ev_.nargs++] = {key, value};
}

void TraceRecorder::WallSpan::move_from(WallSpan& o) noexcept {
  rec_ = o.rec_;
  ev_ = o.ev_;
  o.rec_ = nullptr;
}

void TraceRecorder::instant_wall(const char* name, const char* cat, TraceArgs args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.pid = kPidWall;
  ev.ts_us = now_us();
  fill_args(ev, args);
  ev.tid = buf().tid;
  record(ev);
}

void TraceRecorder::async_begin(std::uint64_t id, const char* name, const char* cat,
                                TraceArgs args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'b';
  ev.pid = kPidWall;
  ev.id = id;
  ev.ts_us = now_us();
  fill_args(ev, args);
  ev.tid = buf().tid;
  record(ev);
}

void TraceRecorder::async_end(std::uint64_t id, const char* name, const char* cat,
                              TraceArgs args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'e';
  ev.pid = kPidWall;
  ev.id = id;
  ev.ts_us = now_us();
  fill_args(ev, args);
  ev.tid = buf().tid;
  record(ev);
}

void TraceRecorder::span_sim(std::uint32_t track, const char* name, const char* cat,
                             double dur_seconds, TraceArgs args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.pid = kPidSim;
  ev.tid = track;
  ev.ts_us = advance_cursor(track, dur_seconds) * 1e6;
  ev.dur_us = dur_seconds * 1e6;
  fill_args(ev, args);
  record(ev);
}

void TraceRecorder::span_sim_at(std::uint32_t track, const char* name,
                                const char* cat, double ts_seconds,
                                double dur_seconds, TraceArgs args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.pid = kPidSim;
  ev.tid = track;
  ev.ts_us = ts_seconds * 1e6;
  ev.dur_us = dur_seconds * 1e6;
  fill_args(ev, args);
  record(ev);
}

void TraceRecorder::instant_sim(std::uint32_t track, const char* name,
                                const char* cat, TraceArgs args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.pid = kPidSim;
  ev.tid = track;
  ev.ts_us =
      sim_cursor_[track % kMaxSimTracks].load(std::memory_order_relaxed) * 1e6;
  fill_args(ev, args);
  record(ev);
}

void TraceRecorder::name_thread(const char* name) { buf().name = name; }

void TraceRecorder::name_sim_track(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  track_names_[track] = std::move(name);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::size_t n = 0;
  for (const auto& b : bufs_) n += b->events.size();
  return n;
}

std::size_t TraceRecorder::count_events(const char* cat, const char* name) const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::size_t n = 0;
  for (const auto& b : bufs_)
    for (const TraceEvent& e : b->events)
      if (std::strcmp(e.cat, cat) == 0 &&
          (name == nullptr || std::strcmp(e.name, name) == 0))
        ++n;
  return n;
}

// Buffer registration order depends on thread scheduling, and float
// addition is order-sensitive in the last ulp, so both aggregations sum
// durations in sorted order: the duration multiset is deterministic,
// making the totals bit-identical across runs.
double TraceRecorder::sim_category_seconds(const char* cat) const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::vector<double> durs;
  for (const auto& b : bufs_)
    for (const TraceEvent& e : b->events)
      if (e.pid == kPidSim && e.ph == 'X' && std::strcmp(e.cat, cat) == 0)
        durs.push_back(e.dur_us);
  std::sort(durs.begin(), durs.end());
  double total = 0;
  for (double d : durs) total += d;
  return total * 1e-6;
}

std::map<std::string, double> TraceRecorder::sim_phase_breakdown(
    const char* cat) const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::map<std::string, std::vector<double>> durs;
  for (const auto& b : bufs_)
    for (const TraceEvent& e : b->events)
      if (e.pid == kPidSim && e.ph == 'X' && std::strcmp(e.cat, cat) == 0)
        durs[e.name].push_back(e.dur_us);
  std::map<std::string, double> out;
  for (auto& [name, v] : durs) {
    std::sort(v.begin(), v.end());
    double total = 0;
    for (double d : v) total += d;
    out[name] = total * 1e-6;
  }
  return out;
}

void TraceRecorder::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(reg_mu_);

  os << "{\"traceEvents\":[\n";
  const char* sep = "";
  const auto meta = [&](std::uint32_t pid, std::uint32_t tid, const char* kind,
                        const std::string& value) {
    os << sep << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (std::strcmp(kind, "thread_name") == 0) os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":\"";
    escape(os, value.c_str());
    os << "\"}}";
    sep = ",\n";
  };
  meta(kPidWall, 0, "process_name", "wall");
  meta(kPidSim, 0, "process_name", "simulated");
  for (const auto& b : bufs_)
    if (!b->name.empty()) meta(kPidWall, b->tid, "thread_name", b->name);
  // Sim tracks referenced by at least one event get names so Perfetto's
  // left rail reads "chip0.phases", not "thread 0".
  std::map<std::uint32_t, bool> sim_tracks;
  for (const auto& b : bufs_)
    for (const TraceEvent& e : b->events)
      if (e.pid == kPidSim) sim_tracks[e.tid] = true;
  for (const auto& [track, used] : sim_tracks) {
    (void)used;
    std::string name;
    if (auto it = track_names_.find(track); it != track_names_.end()) {
      name = it->second;
    } else if (track == kSimTrackHostModel) {
      name = "model.host";
    } else if (track == kSimTrackChipModel) {
      name = "model.chip";
    } else {
      name = "chip" + std::to_string(track / 2) +
             (track % 2 == 0 ? ".phases" : ".link");
    }
    meta(kPidSim, track, "thread_name", name);
  }

  // Deterministic order: (pid, tid, ts, insertion index within buffer).
  struct Ref {
    const TraceEvent* e;
    std::size_t buf_idx;
    std::size_t seq;
  };
  std::vector<Ref> refs;
  for (std::size_t bi = 0; bi < bufs_.size(); ++bi) {
    const auto& evs = bufs_[bi]->events;
    for (std::size_t i = 0; i < evs.size(); ++i) refs.push_back({&evs[i], bi, i});
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.e->pid != b.e->pid) return a.e->pid < b.e->pid;
    if (a.e->tid != b.e->tid) return a.e->tid < b.e->tid;
    if (a.e->ts_us != b.e->ts_us) return a.e->ts_us < b.e->ts_us;
    if (a.buf_idx != b.buf_idx) return a.buf_idx < b.buf_idx;
    return a.seq < b.seq;
  });

  for (const Ref& r : refs) {
    const TraceEvent& e = *r.e;
    os << sep << "{\"name\":\"";
    escape(os, e.name);
    os << "\",\"cat\":\"";
    escape(os, e.cat);
    os << "\",\"ph\":\"" << e.ph << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":";
    emit_number(os, e.ts_us);
    if (e.ph == 'X') {
      os << ",\"dur\":";
      emit_number(os, e.dur_us);
    }
    if (e.ph == 'b' || e.ph == 'e') os << ",\"id\":" << e.id;
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ',';
    emit_args(os, e);
    os << '}';
    sep = ",\n";
  }
  os << "\n]}\n";
}

bool TraceRecorder::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

}  // namespace cofhee::obs

#else  // !COFHEE_TRACING

namespace cofhee::obs {

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[]}\n";
}

bool TraceRecorder::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

}  // namespace cofhee::obs

#endif  // COFHEE_TRACING
