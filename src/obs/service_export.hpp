// ServiceStats -> MetricsRegistry bridge.
//
// export_service_stats() maps one consistent EvalService::stats() snapshot
// onto registry instruments, so the Prometheus text exposition subsumes
// every ServiceStats counter without dashboards touching service headers.
// Naming convention (docs/ARCHITECTURE.md "Observability"):
//
//   cofhee_service_<counter>_total           service-wide monotonic counts
//   cofhee_service_<span>_seconds            simulated / wall time totals
//   cofhee_chip_<counter>{chip="C"}          per-chip breakdowns, including
//                                            ewma_unit_cost_seconds and the
//                                            quarantined 0/1 gauge
//   cofhee_class_<counter>{class="high|normal|low"}
//                                            per-priority-class counts plus
//                                            queue_depth and latency
//                                            quantile gauges
//   cofhee_tenant_<counter>{tenant="T"}      per-tenant counts
//
// Call it right before MetricsRegistry::render() -- it overwrites (set),
// never accumulates, so repeated exports of newer snapshots stay correct.
#pragma once

#include "obs/metrics.hpp"
#include "service/service_stats.hpp"

namespace cofhee::obs {

/// Map `st` onto `reg` (creating instruments on first use; see file
/// comment).
void export_service_stats(const service::ServiceStats& st, MetricsRegistry& reg);

}  // namespace cofhee::obs
