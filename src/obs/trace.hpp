// Low-overhead hierarchical tracing for the evaluation stack.
//
// TraceRecorder collects spans and instant events from every layer of a
// request's life -- request -> round -> placement -> per-chip stage ->
// per-tower phase -> serial transaction -- and exports them as Chrome
// trace-event JSON (load the file in Perfetto / chrome://tracing).  Two
// process tracks coexist in one trace, mirroring the repo's two time axes
// (see service/service_stats.hpp):
//
//  * pid kPidWall ("wall") -- wall-clock spans recorded with RAII WallSpan
//    guards on whichever thread ran the work (dispatcher, pool workers,
//    submitters).  Machine-dependent, never regression-tracked.
//  * pid kPidSim ("simulated") -- the deterministic simulated axis.  Each
//    sim track owns a monotonic cursor in simulated seconds; span_sim()
//    appends a span of a given simulated duration at the cursor and
//    advances it, so per-chip phase timelines reconstruct exactly the
//    io/compute seconds ServiceStats accounts.  Track layout:
//    chip C's phases on sim_track_chip_phase(C), its serial-link
//    transactions on sim_track_chip_link(C), and the service's pipeline
//    model on kSimTrackHostModel / kSimTrackChipModel.
//
// Recording is lock-free: every (thread, recorder) pair appends to its own
// buffer (registered once under a mutex, cached thread-locally and keyed by
// a never-reused recorder id, so a stale cache entry can never alias a new
// recorder).  Sim cursors are atomics advanced by CAS.  The null-recorder
// idiom keeps idle cost to a pointer check: every instrumented layer holds
// a TraceRecorder* that is almost always null, and WallSpan accepts null.
//
// Export (write_json / the aggregation helpers) requires quiescence: no
// thread may be recording concurrently.  The service provides that
// happens-before for free -- drain() / shutdown() join all outstanding
// stage work before returning -- which is what keeps the chaos battery
// TSan-clean.
//
// Compile-time gate: building with -DCOFHEE_TRACING=0 (CMake option
// COFHEE_TRACING=OFF) replaces the whole recorder with inline no-ops, so
// instrumented call sites cost literally nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>

#ifndef COFHEE_TRACING
#define COFHEE_TRACING 1
#endif

#if COFHEE_TRACING
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>
#endif

namespace cofhee::obs {

/// One key/value annotation on a trace event.  Keys are string literals
/// (static storage duration); values are doubles -- every id, count and
/// duration the instrumentation attaches fits.
struct TraceArg {
  /// Argument name (must outlive the recorder; use string literals).
  const char* key;
  /// Argument value.
  double value;
};

/// Argument pack accepted by every recording call.
using TraceArgs = std::initializer_list<TraceArg>;

/// Most arguments one event retains (extras are dropped, never UB).
inline constexpr int kMaxTraceArgs = 4;

/// One recorded event in the Chrome trace-event model.
struct TraceEvent {
  /// Event name (string literal; spans/instants group by it).
  const char* name = "";
  /// Category tag (string literal; aggregation helpers filter by it).
  const char* cat = "";
  /// Chrome phase: 'X' complete span, 'i' instant, 'b'/'e' async pair.
  char ph = 'X';
  /// Process track: TraceRecorder::kPidWall or kPidSim.
  std::uint32_t pid = 0;
  /// Thread (wall) or sim-track (sim) id within the process track.
  std::uint32_t tid = 0;
  /// Start timestamp, microseconds in the track's time base.
  double ts_us = 0;
  /// Span duration, microseconds ('X' only).
  double dur_us = 0;
  /// Async correlation id ('b'/'e' only; the request id).
  std::uint64_t id = 0;
  /// Number of valid entries in args.
  int nargs = 0;
  /// Inline annotations (bounded; see kMaxTraceArgs).
  TraceArg args[kMaxTraceArgs] = {};
};

#if COFHEE_TRACING

/// Collects trace events lock-free per thread and exports Chrome
/// trace-event JSON (see file comment).  All recording methods are safe to
/// call concurrently; export/aggregation require quiescence.
class TraceRecorder {
 public:
  /// Process id of the wall-clock track group.
  static constexpr std::uint32_t kPidWall = 1;
  /// Process id of the simulated-time track group.
  static constexpr std::uint32_t kPidSim = 2;
  /// Sim tracks available (cursor array size); chip tracks use 2 per chip
  /// from 0, the pipeline-model tracks sit at the top.
  static constexpr std::uint32_t kMaxSimTracks = 256;
  /// Sim track of the service pipeline model's virtual host resource.
  static constexpr std::uint32_t kSimTrackHostModel = kMaxSimTracks - 2;
  /// Sim track of the pipeline model's virtual chip-farm resource.
  static constexpr std::uint32_t kSimTrackChipModel = kMaxSimTracks - 1;

  /// Sim track carrying chip `chip`'s per-tower phase spans.
  static constexpr std::uint32_t sim_track_chip_phase(std::size_t chip) noexcept {
    return static_cast<std::uint32_t>(2 * chip);
  }
  /// Sim track carrying chip `chip`'s serial-link transaction spans and
  /// fault instants.
  static constexpr std::uint32_t sim_track_chip_link(std::size_t chip) noexcept {
    return static_cast<std::uint32_t>(2 * chip + 1);
  }

  /// Fresh empty recorder; wall timestamps are relative to this moment.
  TraceRecorder();
  /// Destruction requires the same quiescence as export.
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// True when tracing is compiled in (this variant).
  static constexpr bool enabled() noexcept { return true; }

  /// Microseconds of wall clock since recorder construction.
  [[nodiscard]] double now_us() const noexcept;

  /// RAII wall-clock span: opens at construction, records one 'X' event at
  /// destruction (or end()).  A null recorder yields an inert guard, so
  /// call sites need no branch beyond the recorder pointer they pass.
  class WallSpan {
   public:
    /// Inert span (records nothing).
    WallSpan() = default;
    /// Open a span on `rec` (null = inert) named `name` in category `cat`.
    WallSpan(TraceRecorder* rec, const char* name, const char* cat,
             TraceArgs args = {});
    /// Transfer the open span; `o` becomes inert.
    WallSpan(WallSpan&& o) noexcept { move_from(o); }
    /// Close any span this guard held, then take over `o`'s.
    WallSpan& operator=(WallSpan&& o) noexcept {
      if (this != &o) {
        end();
        move_from(o);
      }
      return *this;
    }
    WallSpan(const WallSpan&) = delete;
    WallSpan& operator=(const WallSpan&) = delete;
    /// Closes the span if still open.
    ~WallSpan() { end(); }

    /// Close the span now (idempotent).
    void end() noexcept;
    /// Attach one more argument to the (still open) span.
    void arg(const char* key, double value) noexcept;

   private:
    void move_from(WallSpan& o) noexcept;

    TraceRecorder* rec_ = nullptr;
    TraceEvent ev_{};
  };

  /// Open a wall-clock span (sugar over the WallSpan constructor).
  [[nodiscard]] WallSpan span_wall(const char* name, const char* cat,
                                   TraceArgs args = {}) {
    return WallSpan(this, name, cat, args);
  }

  /// Record a wall-clock instant event on the calling thread's track.
  void instant_wall(const char* name, const char* cat, TraceArgs args = {});

  /// Open the async span of request `id` (one 'b' event; pair with
  /// async_end under the same name/category/id).
  void async_begin(std::uint64_t id, const char* name, const char* cat,
                   TraceArgs args = {});
  /// Close the async span of request `id` (one 'e' event).
  void async_end(std::uint64_t id, const char* name, const char* cat,
                 TraceArgs args = {});

  /// Append a span of `dur_seconds` simulated seconds at sim track
  /// `track`'s cursor and advance the cursor -- the deterministic-axis
  /// workhorse (per-tower chip phases, serial transactions).
  void span_sim(std::uint32_t track, const char* name, const char* cat,
                double dur_seconds, TraceArgs args = {});

  /// Place a sim span at an explicit timestamp without touching the
  /// track's cursor (the pipeline-model tracks, whose clocks the service
  /// already owns).  `ts_seconds`/`dur_seconds` in simulated seconds.
  void span_sim_at(std::uint32_t track, const char* name, const char* cat,
                   double ts_seconds, double dur_seconds, TraceArgs args = {});

  /// Record an instant at sim track `track`'s current cursor (no advance)
  /// -- fault injections, cache events.
  void instant_sim(std::uint32_t track, const char* name, const char* cat,
                   TraceArgs args = {});

  /// Name the calling thread's wall track in the exported trace.
  void name_thread(const char* name);
  /// Name a simulated track (chip phase/link tracks get default names; the
  /// service names them "chip0.phases" etc. at construction).
  void name_sim_track(std::uint32_t track, std::string name);

  // --- export & aggregation (require quiescence; see file comment) --------

  /// Events recorded so far (all tracks).
  [[nodiscard]] std::size_t event_count() const;
  /// Events in category `cat` (and, when non-null, named `name`).
  [[nodiscard]] std::size_t count_events(const char* cat,
                                         const char* name = nullptr) const;
  /// Total simulated seconds of 'X' spans in category `cat` on the sim
  /// process track -- e.g. sim_category_seconds("phase") reconciles against
  /// ServiceStats io_seconds + compute_seconds.
  [[nodiscard]] double sim_category_seconds(const char* cat) const;
  /// Per-name simulated seconds of sim-track 'X' spans in category `cat`:
  /// the per-phase breakdown tools/trace_report.py prints.
  [[nodiscard]] std::map<std::string, double> sim_phase_breakdown(
      const char* cat = "phase") const;

  /// Write the whole trace as Chrome trace-event JSON ({"traceEvents":[..]})
  /// with process/thread metadata, sorted deterministically by
  /// (pid, tid, ts).
  void write_json(std::ostream& os) const;
  /// write_json to `path`; false when the file cannot be written.
  bool write_json_file(const std::string& path) const;

 private:
  struct ThreadBuf {
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
    std::string name;
  };

  /// The calling thread's buffer for this recorder (registers on first
  /// use; afterwards a thread-local lookup, no lock).
  ThreadBuf& buf();
  void record(const TraceEvent& ev) { buf().events.push_back(ev); }
  static void fill_args(TraceEvent& ev, TraceArgs args) noexcept;
  /// Advance `track`'s cursor by `dur` seconds; returns the pre-advance
  /// cursor (CAS loop -- fetch_add on atomic<double> is C++20-library
  /// dependent).
  double advance_cursor(std::uint32_t track, double dur) noexcept;

  const std::uint64_t id_;  // globally unique, never reused (TLS cache key)
  const std::chrono::steady_clock::time_point t0_;
  std::atomic<std::uint32_t> next_tid_{1};
  std::array<std::atomic<double>, kMaxSimTracks> sim_cursor_{};
  mutable std::mutex reg_mu_;  // guards bufs_ growth and track_names_
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::map<std::uint32_t, std::string> track_names_;
};

#else  // !COFHEE_TRACING -- the zero-cost stub: identical surface, no state.

/// No-op tracing stub compiled when COFHEE_TRACING=0; see the enabled
/// variant for semantics.  Every method is an empty inline, so call sites
/// vanish entirely.
class TraceRecorder {
 public:
  static constexpr std::uint32_t kPidWall = 1;
  static constexpr std::uint32_t kPidSim = 2;
  static constexpr std::uint32_t kMaxSimTracks = 256;
  static constexpr std::uint32_t kSimTrackHostModel = kMaxSimTracks - 2;
  static constexpr std::uint32_t kSimTrackChipModel = kMaxSimTracks - 1;

  static constexpr std::uint32_t sim_track_chip_phase(std::size_t chip) noexcept {
    return static_cast<std::uint32_t>(2 * chip);
  }
  static constexpr std::uint32_t sim_track_chip_link(std::size_t chip) noexcept {
    return static_cast<std::uint32_t>(2 * chip + 1);
  }

  static constexpr bool enabled() noexcept { return false; }

  [[nodiscard]] double now_us() const noexcept { return 0; }

  class WallSpan {
   public:
    WallSpan() = default;
    WallSpan(TraceRecorder*, const char*, const char*, TraceArgs = {}) {}
    void end() noexcept {}
    void arg(const char*, double) noexcept {}
  };

  [[nodiscard]] WallSpan span_wall(const char*, const char*, TraceArgs = {}) {
    return {};
  }
  void instant_wall(const char*, const char*, TraceArgs = {}) {}
  void async_begin(std::uint64_t, const char*, const char*, TraceArgs = {}) {}
  void async_end(std::uint64_t, const char*, const char*, TraceArgs = {}) {}
  void span_sim(std::uint32_t, const char*, const char*, double, TraceArgs = {}) {}
  void span_sim_at(std::uint32_t, const char*, const char*, double, double,
                   TraceArgs = {}) {}
  void instant_sim(std::uint32_t, const char*, const char*, TraceArgs = {}) {}
  void name_thread(const char*) {}
  void name_sim_track(std::uint32_t, std::string) {}

  [[nodiscard]] std::size_t event_count() const { return 0; }
  [[nodiscard]] std::size_t count_events(const char*, const char* = nullptr) const {
    return 0;
  }
  [[nodiscard]] double sim_category_seconds(const char*) const { return 0; }
  [[nodiscard]] std::map<std::string, double> sim_phase_breakdown(
      const char* = "phase") const {
    return {};
  }
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;
};

#endif  // COFHEE_TRACING

}  // namespace cofhee::obs
