#include "obs/service_export.hpp"

#include <string>

namespace cofhee::obs {

namespace {

/// Priority label values, indexed like ServiceStats::per_class.
const char* class_label(std::size_t cls) {
  switch (cls) {
    case 0:
      return "high";
    case 1:
      return "normal";
    case 2:
      return "low";
    default:
      return "unknown";
  }
}

std::string tenant_label(std::uint64_t tenant) {
  if (tenant == service::kOverflowTenantId) return "overflow";
  return std::to_string(tenant);
}

/// Latency order statistics as quantile-labeled gauges (the windows keep
/// percentiles, not raw samples, so gauges -- not a histogram -- are the
/// honest exposition).
void export_latency(MetricsRegistry& reg, const std::string& prefix,
                    const Labels& base, const service::LatencyStats& lat) {
  const auto with = [&](const char* k, const std::string& v) {
    Labels l = base;
    l.emplace_back(k, v);
    return l;
  };
  const char* help = "Submit-to-completion latency order statistics "
                     "(wall seconds, bounded recent window).";
  reg.gauge(prefix + "_latency_seconds", help, with("quantile", "0.5")).set(lat.p50);
  reg.gauge(prefix + "_latency_seconds", help, with("quantile", "0.95")).set(lat.p95);
  reg.gauge(prefix + "_latency_seconds", help, with("quantile", "0.99")).set(lat.p99);
  reg.gauge(prefix + "_latency_max_seconds", "Largest latency ever recorded (wall seconds).",
            base)
      .set(lat.max_seconds);
  reg.counter(prefix + "_latency_count_total", "Latency samples recorded.", base)
      .set(static_cast<double>(lat.count));
}

}  // namespace

void export_service_stats(const service::ServiceStats& st, MetricsRegistry& reg) {
  const auto c = [&](const char* name, const char* help, double v) {
    reg.counter(name, help).set(v);
  };
  const auto g = [&](const char* name, const char* help, double v) {
    reg.gauge(name, help).set(v);
  };

  // Service-wide monotonic counts.
  c("cofhee_service_requests_submitted_total", "Requests accepted by submit().",
    static_cast<double>(st.submitted));
  c("cofhee_service_requests_completed_total", "Requests fulfilled with a value.",
    static_cast<double>(st.completed));
  c("cofhee_service_requests_failed_total", "Requests fulfilled with an exception.",
    static_cast<double>(st.failed));
  c("cofhee_service_rounds_total", "Dispatcher rounds (coalesced batches).",
    static_cast<double>(st.rounds));
  c("cofhee_service_overlapped_rounds_total",
    "Rounds whose host prep overlapped a prior chip stage.",
    static_cast<double>(st.overlapped_rounds));
  c("cofhee_service_sessions_total", "Chip sessions, summed over chips.",
    static_cast<double>(st.sessions));
  c("cofhee_service_ks_products_total", "Algorithm-2 key-switch PolyMuls.",
    static_cast<double>(st.ks_products));
  c("cofhee_service_key_uploads_total", "Relin-key tower uploads paid.",
    static_cast<double>(st.key_uploads));
  c("cofhee_service_key_cache_hits_total",
    "Relin-key tower uploads skipped by the batch-aware key cache.",
    static_cast<double>(st.key_cache_hits));
  c("cofhee_service_sram_reuses_total",
    "Operand uploads replaced by on-chip DMA duplication.",
    static_cast<double>(st.sram_reuses));
  c("cofhee_service_batched_writes_total",
    "Register writes coalesced into burst frames by link batching.",
    static_cast<double>(st.batched_writes));
  c("cofhee_service_twiddle_cache_hits_total",
    "Ring configurations skipped by the twiddle-ROM cache.",
    static_cast<double>(st.twiddle_cache_hits));
  c("cofhee_service_key_bytes_saved_total",
    "Wire bytes saved by seed-compressed relin-key uploads.",
    static_cast<double>(st.key_bytes_saved));
  c("cofhee_service_faults_injected_total", "Injected faults the links fired.",
    static_cast<double>(st.faults_injected));
  c("cofhee_service_retries_total", "Intra-stage retries (items re-placed).",
    static_cast<double>(st.retries));
  c("cofhee_service_requeues_total", "Round-level requeues after exhausted retries.",
    static_cast<double>(st.requeues));
  c("cofhee_service_quarantines_total", "Chips quarantined after consecutive faults.",
    static_cast<double>(st.quarantines));
  c("cofhee_service_readmissions_total", "Quarantined chips re-admitted by a probe.",
    static_cast<double>(st.readmissions));
  c("cofhee_service_probes_total", "Health probes sent to quarantined chips.",
    static_cast<double>(st.probes));
  c("cofhee_service_probe_failures_total", "Probes that faulted or mis-read.",
    static_cast<double>(st.probe_failures));
  c("cofhee_service_stage_timeouts_total",
    "Stage attempts abandoned past the modeled timeout.",
    static_cast<double>(st.stage_timeouts));
  c("cofhee_service_forced_picks_total",
    "Picks the starvation bound forced out of priority order.",
    static_cast<double>(st.forced_picks));
  c("cofhee_service_rejected_rate_limited_total",
    "Requests rejected at admission by a tenant rate limit.",
    static_cast<double>(st.rejected_rate_limited));
  c("cofhee_service_rejected_quota_total",
    "Requests rejected at admission by a tenant pending quota.",
    static_cast<double>(st.rejected_quota));
  c("cofhee_service_rejected_queue_full_total",
    "Requests rejected because queued + in-flight work was at max_queue.",
    static_cast<double>(st.rejected_queue_full));
  c("cofhee_service_rejected_batch_too_large_total",
    "Requests rejected because their batch could never fit the queue.",
    static_cast<double>(st.rejected_batch_too_large));

  // Time totals (the three axes; see service/service_stats.hpp).
  c("cofhee_service_io_seconds_total",
    "Simulated serial-link transport, summed over chips.", st.io_seconds);
  c("cofhee_service_compute_seconds_total",
    "Simulated chip compute, summed over chips.", st.compute_seconds);
  c("cofhee_service_sim_host_prep_seconds_total",
    "Modeled host time in pre-chip phases.", st.sim_host_prep_seconds);
  c("cofhee_service_sim_host_finish_seconds_total",
    "Modeled host time in post-chip phases.", st.sim_host_finish_seconds);
  c("cofhee_service_sim_chip_round_seconds_total",
    "Sum over rounds of each round's chip-stage span.", st.sim_chip_round_seconds);

  // Instantaneous / span gauges.
  g("cofhee_service_queue_depth", "Requests pending (queued + in flight).",
    static_cast<double>(st.queue_depth));
  g("cofhee_service_peak_queue_depth", "Largest queue depth observed at submit.",
    static_cast<double>(st.peak_queue_depth));
  g("cofhee_service_max_class_skip",
    "Largest consecutive-pick deficit any class reached.",
    static_cast<double>(st.max_class_skip));
  g("cofhee_service_pipeline_span_seconds",
    "Pipeline-model makespan as actually scheduled (simulated seconds).",
    st.pipeline_span_seconds);
  g("cofhee_service_serial_span_seconds",
    "Pipeline-model makespan with no overlap (simulated seconds).",
    st.serial_span_seconds);
  g("cofhee_service_overlap_wall_seconds",
    "Wall seconds of host work overlapped with chip stages.",
    st.overlap_wall_seconds);
  g("cofhee_service_wall_seconds", "Wall seconds since service construction.",
    st.wall_seconds);
  g("cofhee_service_active_seconds",
    "Wall seconds from first submit to last completion.", st.active_seconds);

  // Per-chip breakdowns.
  for (std::size_t i = 0; i < st.per_chip.size(); ++i) {
    const service::ChipStats& cs = st.per_chip[i];
    const Labels chip{{"chip", std::to_string(i)}};
    const auto cc = [&](const char* name, const char* help, double v) {
      reg.counter(name, help, chip).set(v);
    };
    cc("cofhee_chip_sessions_total", "Sessions this chip ran.",
       static_cast<double>(cs.sessions));
    cc("cofhee_chip_placements_total", "Work items placed on this chip.",
       static_cast<double>(cs.placements));
    cc("cofhee_chip_requests_total", "Requests this chip touched.",
       static_cast<double>(cs.requests));
    cc("cofhee_chip_tower_runs_total", "Algorithm-3 tower executions.",
       static_cast<double>(cs.tower_runs));
    cc("cofhee_chip_relin_tower_runs_total", "Relinearization tower runs.",
       static_cast<double>(cs.relin_tower_runs));
    cc("cofhee_chip_ks_products_total", "Key-switch PolyMuls on this chip.",
       static_cast<double>(cs.ks_products));
    cc("cofhee_chip_key_uploads_total", "Relin-key tower uploads paid.",
       static_cast<double>(cs.key_uploads));
    cc("cofhee_chip_key_cache_hits_total", "Relin-key uploads skipped by the cache.",
       static_cast<double>(cs.key_cache_hits));
    cc("cofhee_chip_ring_configs_total", "Ring reconfigurations paid.",
       static_cast<double>(cs.ring_configs));
    cc("cofhee_chip_sram_reuses_total", "Uploads turned into on-chip DMA copies.",
       static_cast<double>(cs.sram_reuses));
    cc("cofhee_chip_batched_writes_total",
       "Register writes coalesced into burst frames.",
       static_cast<double>(cs.batched_writes));
    cc("cofhee_chip_twiddle_cache_hits_total",
       "Ring configurations skipped by the twiddle-ROM cache.",
       static_cast<double>(cs.twiddle_cache_hits));
    cc("cofhee_chip_key_bytes_saved_total",
       "Wire bytes saved by seed-compressed key uploads.",
       static_cast<double>(cs.key_bytes_saved));
    cc("cofhee_chip_faults_total", "Typed faults this chip surfaced.",
       static_cast<double>(cs.faults));
    cc("cofhee_chip_quarantines_total", "Times this chip was quarantined.",
       static_cast<double>(cs.quarantines));
    cc("cofhee_chip_readmissions_total", "Times this chip was re-admitted.",
       static_cast<double>(cs.readmissions));
    cc("cofhee_chip_probes_total", "Probes sent to this chip.",
       static_cast<double>(cs.probes));
    cc("cofhee_chip_cycles_total", "PE cycles at the configured clock.",
       static_cast<double>(cs.chip_cycles));
    cc("cofhee_chip_io_seconds_total", "Simulated serial-link transport.",
       cs.io_seconds);
    cc("cofhee_chip_compute_seconds_total", "Simulated chip compute.",
       cs.compute_seconds);
    cc("cofhee_chip_busy_wall_seconds_total", "Wall seconds inside sessions.",
       cs.busy_wall_seconds);
    reg.gauge("cofhee_chip_ewma_unit_cost_seconds",
              "EWMA simulated seconds per work item (feeds placement).", chip)
        .set(cs.ewma_unit_cost);
    reg.gauge("cofhee_chip_quarantined",
              "1 while the chip is quarantined (probes only), else 0.", chip)
        .set(cs.quarantined ? 1.0 : 0.0);
  }

  // Per-priority-class breakdowns.
  for (std::size_t i = 0; i < st.per_class.size(); ++i) {
    const service::ClassStats& cl = st.per_class[i];
    const Labels cls{{"class", class_label(i)}};
    reg.counter("cofhee_class_submitted_total", "Requests accepted into the class.",
                cls)
        .set(static_cast<double>(cl.submitted));
    reg.counter("cofhee_class_dispatched_total", "Requests handed to a round.", cls)
        .set(static_cast<double>(cl.dispatched));
    reg.counter("cofhee_class_completed_total", "Requests completed with a value.",
                cls)
        .set(static_cast<double>(cl.completed));
    reg.counter("cofhee_class_failed_total", "Requests completed with an exception.",
                cls)
        .set(static_cast<double>(cl.failed));
    reg.counter("cofhee_class_forced_picks_total",
                "Starvation-bound picks forced for this class.", cls)
        .set(static_cast<double>(cl.forced_picks));
    reg.gauge("cofhee_class_queue_depth",
              "Requests waiting in the queue for this class.", cls)
        .set(static_cast<double>(cl.queued));
    export_latency(reg, "cofhee_class", cls, cl.latency);
  }

  // Per-tenant breakdowns.
  for (const service::TenantStats& tn : st.per_tenant) {
    const Labels ten{{"tenant", tenant_label(tn.tenant)}};
    reg.counter("cofhee_tenant_submitted_total", "Requests accepted from the tenant.",
                ten)
        .set(static_cast<double>(tn.submitted));
    reg.counter("cofhee_tenant_completed_total", "Requests completed with a value.",
                ten)
        .set(static_cast<double>(tn.completed));
    reg.counter("cofhee_tenant_failed_total", "Requests completed with an exception.",
                ten)
        .set(static_cast<double>(tn.failed));
    reg.counter("cofhee_tenant_rejected_total",
                "Requests rejected at admission (rate limit, quota, queue full, "
                "oversized batch).",
                ten)
        .set(static_cast<double>(tn.rejected));
    reg.gauge("cofhee_tenant_weight", "Latest submitted DRR weight.", ten)
        .set(static_cast<double>(tn.weight));
    export_latency(reg, "cofhee_tenant", ten, tn.latency);
  }
}

}  // namespace cofhee::obs
