#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cofhee::obs {

namespace {

/// Prometheus value/le formatting: compact, round-trippable doubles.
std::string num(double v) {
  std::ostringstream ss;
  ss << std::setprecision(15) << v;
  return ss.str();
}

/// Escape a label value (quotes, backslashes, newlines per the text format).
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// `{k1="v1",k2="v2"}` or "" for an unlabeled instance; `extra` appends one
/// more pair (the histogram `le`).
std::string label_str(const Labels& labels, const std::string& extra_key = "",
                      const std::string& extra_val = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  const char* sep = "";
  for (const auto& [k, v] : labels) {
    out += sep;
    out += k + "=\"" + escape_label(v) + "\"";
    sep = ",";
  }
  if (!extra_key.empty()) {
    out += sep;
    out += extra_key + "=\"" + extra_val + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: at least one bucket bound required");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  // First bound >= v; everything past the last bound lands in +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

MetricsRegistry::Instance& MetricsRegistry::instance(const std::string& name,
                                                     const std::string& help,
                                                     Kind kind, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
  } else if (fam.kind != kind) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different kind");
  }
  for (auto& inst : fam.instances)
    if (inst->labels == labels) return *inst;
  fam.instances.push_back(std::make_unique<Instance>());
  Instance& inst = *fam.instances.back();
  inst.labels = std::move(labels);
  return inst;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  Labels labels) {
  Instance& inst = instance(name, help, Kind::kCounter, std::move(labels));
  std::lock_guard<std::mutex> lk(mu_);
  if (inst.counter == nullptr) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  Instance& inst = instance(name, help, Kind::kGauge, std::move(labels));
  std::lock_guard<std::mutex> lk(mu_);
  if (inst.gauge == nullptr) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds, Labels labels) {
  Instance& inst = instance(name, help, Kind::kHistogram, std::move(labels));
  std::lock_guard<std::mutex> lk(mu_);
  if (inst.histogram == nullptr)
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *inst.histogram;
}

void MetricsRegistry::render(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, fam] : families_) {
    os << "# HELP " << name << ' ' << fam.help << '\n';
    os << "# TYPE " << name << ' '
       << (fam.kind == Kind::kCounter   ? "counter"
           : fam.kind == Kind::kGauge   ? "gauge"
                                        : "histogram")
       << '\n';
    // Instances sorted by label string for a deterministic exposition.
    std::vector<const Instance*> insts;
    insts.reserve(fam.instances.size());
    for (const auto& i : fam.instances) insts.push_back(i.get());
    std::sort(insts.begin(), insts.end(), [](const Instance* a, const Instance* b) {
      return label_str(a->labels) < label_str(b->labels);
    });
    for (const Instance* inst : insts) {
      if (fam.kind == Kind::kCounter && inst->counter != nullptr) {
        os << name << label_str(inst->labels) << ' ' << num(inst->counter->value())
           << '\n';
      } else if (fam.kind == Kind::kGauge && inst->gauge != nullptr) {
        os << name << label_str(inst->labels) << ' ' << num(inst->gauge->value())
           << '\n';
      } else if (fam.kind == Kind::kHistogram && inst->histogram != nullptr) {
        const Histogram& h = *inst->histogram;
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          cum += h.bucket_count(b);
          os << name << "_bucket"
             << label_str(inst->labels, "le", num(h.bounds()[b])) << ' ' << cum
             << '\n';
        }
        cum += h.bucket_count(h.bounds().size());
        os << name << "_bucket" << label_str(inst->labels, "le", "+Inf") << ' '
           << cum << '\n';
        os << name << "_sum" << label_str(inst->labels) << ' ' << num(h.sum())
           << '\n';
        os << name << "_count" << label_str(inst->labels) << ' ' << h.count()
           << '\n';
      }
    }
  }
}

std::string MetricsRegistry::render_text() const {
  std::ostringstream ss;
  render(ss);
  return ss.str();
}

}  // namespace cofhee::obs
