// Metrics registry with Prometheus-style text exposition.
//
// Three instrument kinds -- Counter (monotonic), Gauge (free-moving) and
// Histogram (fixed ascending buckets + implicit +Inf) -- grouped into
// families by metric name, each family carrying a help string and any
// number of label-set instances.  render() emits the text format scrapers
// and dashboards expect:
//
//   # HELP cofhee_service_requests_submitted_total Requests accepted.
//   # TYPE cofhee_service_requests_submitted_total counter
//   cofhee_service_requests_submitted_total 4096
//   # HELP cofhee_request_latency_seconds Submit-to-completion latency.
//   # TYPE cofhee_request_latency_seconds histogram
//   cofhee_request_latency_seconds_bucket{class="normal",le="0.001"} 17
//   ...
//   cofhee_request_latency_seconds_bucket{class="normal",le="+Inf"} 420
//   cofhee_request_latency_seconds_sum{class="normal"} 1.25
//   cofhee_request_latency_seconds_count{class="normal"} 420
//
// Lookup (counter()/gauge()/histogram()) takes the registry mutex once and
// returns a stable reference; the hot path -- add/set/observe on the
// returned instrument -- is lock-free (atomics; doubles via CAS).
// obs/service_export.hpp maps a ServiceStats snapshot onto a registry, so
// dashboards need no service internals.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cofhee::obs {

namespace detail {

/// CAS add on an atomic double (fetch_add for floating types is not
/// portable before C++20 library support is universal).
inline void atomic_add(std::atomic<double>& a, double d) noexcept {
  double old = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(old, old + d, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic counter.  set() exists for snapshot exposition (mirroring an
/// externally maintained monotonic total, e.g. a ServiceStats counter).
class Counter {
 public:
  /// Add `d` (>= 0 by convention; not enforced).
  void add(double d) noexcept { detail::atomic_add(v_, d); }
  /// Add 1.
  void inc() noexcept { add(1.0); }
  /// Overwrite with an externally tracked monotonic total.
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  /// Current value.
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
};

/// Free-moving instantaneous value.
class Gauge {
 public:
  /// Set the current value.
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  /// Adjust the current value by `d`.
  void add(double d) noexcept { detail::atomic_add(v_, d); }
  /// Current value.
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram: `bounds` are strictly ascending inclusive upper
/// bounds; an implicit +Inf bucket catches the rest.  observe() is
/// lock-free and wait-free apart from the CAS on the running sum.
class Histogram {
 public:
  /// Throws std::invalid_argument unless `bounds` is non-empty and strictly
  /// ascending.
  explicit Histogram(std::vector<double> bounds);

  /// Record one sample.
  void observe(double v) noexcept;

  /// The configured upper bounds (excluding the implicit +Inf).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Samples in bucket `i` alone (i == bounds().size() is the +Inf bucket);
  /// Prometheus exposition cumulates these.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Total samples observed.
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of all observed samples.
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Label set of one instrument instance, e.g. {{"chip", "2"}}.  Order is
/// preserved in the exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Families of named instruments with Prometheus text exposition (see file
/// comment).  Thread-safe; returned instrument references stay valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  /// Empty registry.
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter `name{labels}`, created (with `help`) on first use.
  /// Throws std::logic_error when `name` already names a different kind.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  /// The gauge `name{labels}`, created on first use.
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  /// The histogram `name{labels}`, created with `bounds` on first use
  /// (later calls ignore `bounds`; the family's first bounds win).
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Emit every family in the Prometheus text format, sorted by name.
  void render(std::ostream& os) const;
  /// render() into a string.
  [[nodiscard]] std::string render_text() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Instance {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<std::unique_ptr<Instance>> instances;
  };

  Instance& instance(const std::string& name, const std::string& help, Kind kind,
                     Labels labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace cofhee::obs
