#include "bfv/params.hpp"

#include <set>
#include <stdexcept>

namespace cofhee::bfv {

BfvParams BfvParams::create(std::size_t n, const std::vector<unsigned>& tower_bits,
                            u64 t) {
  if (!nt::is_power_of_two(n)) throw std::invalid_argument("BfvParams: n must be 2^k");
  if (tower_bits.empty()) throw std::invalid_argument("BfvParams: no towers");
  BfvParams p;
  p.n = n;
  p.t = t;
  std::set<u64> used;
  for (unsigned bits : tower_bits) {
    for (u64 seed = 0;; ++seed) {
      const u64 q = nt::find_ntt_prime_u64(bits, n, seed);
      if (q != t && used.insert(q).second) {
        p.q_moduli.push_back(q);
        break;
      }
    }
  }
  // Aux base: |Q|+1 towers of 55 bits (or tower_bits max, whichever larger),
  // distinct from every Q tower and from t.
  const unsigned aux_bits = 55;
  for (std::size_t i = 0; i < tower_bits.size() + 1; ++i) {
    for (u64 seed = 0;; ++seed) {
      const u64 q = nt::find_ntt_prime_u64(aux_bits, n, seed);
      if (q != t && used.insert(q).second) {
        p.aux_moduli.push_back(q);
        break;
      }
    }
  }
  return p;
}

BfvParams BfvParams::paper_small() { return create(1u << 12, {54, 55}, 65537); }

BfvParams BfvParams::paper_large() {
  return create(1u << 13, {54, 54, 55, 55}, 65537);
}

BfvParams BfvParams::test_tiny(std::size_t n) { return create(n, {40, 41}, 65537); }

unsigned BfvParams::log_q() const {
  poly::RnsBasis b(q_moduli);
  return b.log_q();
}

BfvContext::BfvContext(BfvParams params, backend::ExecPolicy policy)
    : params_(std::move(params)), q_basis_(params_.q_moduli),
      ext_basis_([&] {
        std::vector<u64> all = params_.q_moduli;
        all.insert(all.end(), params_.aux_moduli.begin(), params_.aux_moduli.end());
        return poly::RnsBasis(all);
      }()),
      exec_(policy) {
  // Twiddle-table construction is itself per-tower independent work (root
  // finding + O(n) table fills), so it runs on the same executor.
  q_ntt_.resize(q_basis_.size());
  exec_.for_each(q_basis_.size(), [&](std::size_t i) {
    const u64 q = q_basis_.modulus(i);
    q_ntt_[i] = poly::MergedNtt64(q_basis_.tower(i), params_.n,
                                  nt::primitive_2nth_root(q, params_.n));
  });
  ext_ntt_.resize(ext_basis_.size());
  exec_.for_each(ext_basis_.size(), [&](std::size_t i) {
    const u64 q = ext_basis_.modulus(i);
    ext_ntt_[i] = poly::MergedNtt64(ext_basis_.tower(i), params_.n,
                                    nt::primitive_2nth_root(q, params_.n));
  });
  delta_ = (q_basis_.product() / nt::WideInt<1>(params_.t)).resize_trunc<8>();
  delta_mod_q_.resize(q_basis_.size());
  for (std::size_t i = 0; i < q_basis_.size(); ++i)
    delta_mod_q_[i] = delta_.mod_u64(q_basis_.modulus(i));
}

poly::RnsPoly BfvContext::add(const poly::RnsPoly& a, const poly::RnsPoly& b) const {
  poly::RnsPoly r;
  r.towers.reserve(a.num_towers());
  for (std::size_t i = 0; i < a.num_towers(); ++i)
    r.towers.push_back(poly::pointwise_add(q_basis_.tower(i), a.towers[i], b.towers[i]));
  return r;
}

poly::RnsPoly BfvContext::sub(const poly::RnsPoly& a, const poly::RnsPoly& b) const {
  poly::RnsPoly r;
  r.towers.reserve(a.num_towers());
  for (std::size_t i = 0; i < a.num_towers(); ++i)
    r.towers.push_back(poly::pointwise_sub(q_basis_.tower(i), a.towers[i], b.towers[i]));
  return r;
}

poly::RnsPoly BfvContext::mul(const poly::RnsPoly& a, const poly::RnsPoly& b) const {
  // Per-tower negacyclic NTT multiplications are fully independent; this is
  // the Q-basis hot loop behind relinearization and decryption.
  poly::RnsPoly r;
  r.towers.resize(a.num_towers());
  exec_.for_each(a.num_towers(), [&](std::size_t i) {
    r.towers[i] = q_ntt_.at(i).negacyclic_mul(a.towers[i], b.towers[i]);
  });
  return r;
}

poly::RnsPoly BfvContext::neg(const poly::RnsPoly& a) const {
  poly::RnsPoly r;
  r.towers.reserve(a.num_towers());
  for (std::size_t i = 0; i < a.num_towers(); ++i)
    r.towers.push_back(poly::negate(q_basis_.tower(i), a.towers[i]));
  return r;
}

poly::RnsPoly BfvContext::zero() const {
  poly::RnsPoly r;
  r.towers.assign(q_basis_.size(), poly::Coeffs<u64>(params_.n, 0));
  return r;
}

}  // namespace cofhee::bfv
