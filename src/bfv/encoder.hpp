// Plaintext encoders.
//
// IntegerEncoder places a (signed) scalar in the constant coefficient --
// enough for the quickstart example.  BatchEncoder packs n independent Z_t
// slots via the negacyclic NTT over the plaintext ring (t = 65537 is prime
// with t == 1 mod 2n for every n <= 2^15, so the paper's parameter sets all
// batch) -- this is what CryptoNets-style applications (Section VI-C)
// rely on for their throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "bfv/bfv.hpp"
#include "poly/ntt.hpp"

namespace cofhee::bfv {

class IntegerEncoder {
 public:
  explicit IntegerEncoder(const BfvContext& ctx) : n_(ctx.n()), t_(ctx.t()) {}

  [[nodiscard]] Plaintext encode(std::int64_t v) const;
  [[nodiscard]] std::int64_t decode(const Plaintext& p) const;

 private:
  std::size_t n_;
  u64 t_;
};

class BatchEncoder {
 public:
  explicit BatchEncoder(const BfvContext& ctx);

  [[nodiscard]] std::size_t slot_count() const noexcept { return n_; }

  /// values.size() <= n; missing slots are zero.
  [[nodiscard]] Plaintext encode(const std::vector<u64>& values) const;
  [[nodiscard]] std::vector<u64> decode(const Plaintext& p) const;

 private:
  std::size_t n_;
  nt::Barrett64 t_ring_;
  poly::NegacyclicNtt64 ntt_;
};

}  // namespace cofhee::bfv
