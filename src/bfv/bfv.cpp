#include "bfv/bfv.hpp"

#include <cmath>
#include <stdexcept>

namespace cofhee::bfv {

using poly::BigInt;
using poly::Coeffs;
using poly::RnsPoly;

namespace {

/// Map a signed big integer (mag, neg) into residues of one tower.
u64 signed_mod(const BigInt& mag, bool neg, u64 q) {
  const u64 r = mag.mod_u64(q);
  return neg ? (r == 0 ? 0 : q - r) : r;
}

}  // namespace

poly::RnsPoly Bfv::sample_small_rns(bool ternary) {
  const auto s = ternary ? poly::sample_ternary(rng_, ctx_.n())
                         : poly::sample_cbd(rng_, ctx_.n(), ctx_.params().cbd_eta);
  return poly::to_rns(s, ctx_.q_basis());
}

SecretKey Bfv::keygen_secret() { return SecretKey{sample_small_rns(true)}; }

PublicKey Bfv::keygen_public(const SecretKey& sk) {
  PublicKey pk;
  RnsPoly a;
  a.towers.reserve(ctx_.q_basis().size());
  for (std::size_t i = 0; i < ctx_.q_basis().size(); ++i)
    a.towers.push_back(poly::sample_uniform(rng_, ctx_.n(), ctx_.q_basis().modulus(i)));
  const RnsPoly e = sample_small_rns(false);
  pk.p0 = ctx_.neg(ctx_.add(ctx_.mul(a, sk.s), e));
  pk.p1 = std::move(a);
  return pk;
}

RelinKeys Bfv::keygen_relin(const SecretKey& sk, unsigned digit_bits) {
  if (digit_bits == 0 || digit_bits > 32)
    throw std::invalid_argument("Bfv: digit_bits in [1,32]");
  RelinKeys rk;
  rk.digit_bits = digit_bits;
  const RnsPoly s2 = ctx_.mul(sk.s, sk.s);
  const unsigned digits =
      (ctx_.big_q().bit_len() + digit_bits - 1) / digit_bits;
  for (unsigned d = 0; d < digits; ++d) {
    // a_i is uniform, so it needs no wire bytes beyond a seed: draw one
    // 64-bit digit seed and expand each tower from it with the shared
    // definition the driver's compressed key upload re-runs chip-side.
    const std::uint64_t dseed = rng_.next_u64();
    rk.a_seeds.push_back(dseed);
    RnsPoly a;
    a.towers.reserve(ctx_.q_basis().size());
    for (std::size_t i = 0; i < ctx_.q_basis().size(); ++i)
      a.towers.push_back(poly::expand_uniform(dseed, i, ctx_.n(),
                                              ctx_.q_basis().modulus(i)));
    const RnsPoly e = sample_small_rns(false);
    // b = -(a s + e) + 2^(w d) s^2  (mod Q), per tower.
    RnsPoly b = ctx_.neg(ctx_.add(ctx_.mul(a, sk.s), e));
    BigInt w_pow;
    w_pow.set_bit(digit_bits * d);
    const BigInt w_mod = w_pow % ctx_.big_q();
    for (std::size_t i = 0; i < ctx_.q_basis().size(); ++i) {
      const u64 wq = w_mod.mod_u64(ctx_.q_basis().modulus(i));
      const auto scaled = poly::scalar_mul(ctx_.q_basis().tower(i), s2.towers[i], wq);
      b.towers[i] = poly::pointwise_add(ctx_.q_basis().tower(i), b.towers[i], scaled);
    }
    rk.keys.emplace_back(std::move(b), std::move(a));
  }
  return rk;
}

Ciphertext Bfv::encrypt(const PublicKey& pk, const Plaintext& m) {
  if (m.coeffs.size() != ctx_.n()) throw std::invalid_argument("Bfv: bad plaintext size");
  const RnsPoly u = sample_small_rns(true);
  const RnsPoly e1 = sample_small_rns(false);
  const RnsPoly e2 = sample_small_rns(false);
  Ciphertext ct;
  // c0 = p0 u + e1 + Delta m  (Eq. 2), c1 = p1 u + e2  (Eq. 3).
  RnsPoly c0 = ctx_.add(ctx_.mul(pk.p0, u), e1);
  ctx_.exec().for_each(ctx_.q_basis().size(), [&](std::size_t i) {
    const auto& ring = ctx_.q_basis().tower(i);
    const u64 dm = ctx_.delta_mod(i);
    for (std::size_t j = 0; j < ctx_.n(); ++j) {
      if (m.coeffs[j] >= ctx_.t()) throw std::invalid_argument("Bfv: coeff >= t");
      c0.towers[i][j] = ring.add(c0.towers[i][j], ring.mul(dm, m.coeffs[j] % ring.modulus()));
    }
  });
  ct.c.push_back(std::move(c0));
  ct.c.push_back(ctx_.add(ctx_.mul(pk.p1, u), e2));
  return ct;
}

Plaintext Bfv::decrypt(const SecretKey& sk, const Ciphertext& ct) const {
  if (ct.size() < 2 || ct.size() > 3) throw std::invalid_argument("Bfv: bad ct size");
  // v = c0 + c1 s (+ c2 s^2) over Q.
  RnsPoly v = ctx_.add(ct.c[0], ctx_.mul(ct.c[1], sk.s));
  if (ct.size() == 3) v = ctx_.add(v, ctx_.mul(ctx_.mul(ct.c[2], sk.s), sk.s));

  Plaintext m;
  m.coeffs.assign(ctx_.n(), 0);
  const u64 t = ctx_.t();
  // Coefficient-wise CRT lift + t/q rounding; each task owns a contiguous
  // coefficient range and its own residue scratch.
  ctx_.exec().for_ranges(ctx_.n(), [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> res(ctx_.q_basis().size());
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < res.size(); ++i) res[i] = v.towers[i][j];
      auto [mag, neg] = ctx_.q_basis().reconstruct_centered(res);
      // round(t * |x| / Q) then fold the sign into Z_t.
      u64 carry = 0;
      const BigInt num = mag.mul_small(t, &carry);
      if (carry != 0) throw std::logic_error("Bfv: t*x overflow");
      const BigInt r = nt::div_round(num, ctx_.big_q());
      const u64 mt = r.mod_u64(t);
      m.coeffs[j] = neg ? (mt == 0 ? 0 : t - mt) : mt;
    }
  });
  return m;
}

Ciphertext Bfv::add(const Ciphertext& a, const Ciphertext& b) const {
  if (a.size() != b.size()) throw std::invalid_argument("Bfv: size mismatch");
  Ciphertext r;
  for (std::size_t i = 0; i < a.size(); ++i) r.c.push_back(ctx_.add(a.c[i], b.c[i]));
  return r;
}

Ciphertext Bfv::negate(const Ciphertext& a) const {
  Ciphertext r;
  for (const auto& comp : a.c) r.c.push_back(ctx_.neg(comp));
  return r;
}

Ciphertext Bfv::add_plain(const Ciphertext& a, const Plaintext& m) const {
  Ciphertext r = a;
  for (std::size_t i = 0; i < ctx_.q_basis().size(); ++i) {
    const auto& ring = ctx_.q_basis().tower(i);
    const u64 dm = ctx_.delta_mod(i);
    for (std::size_t j = 0; j < ctx_.n(); ++j)
      r.c[0].towers[i][j] =
          ring.add(r.c[0].towers[i][j], ring.mul(dm, m.coeffs[j] % ring.modulus()));
  }
  return r;
}

Ciphertext Bfv::mul_plain(const Ciphertext& a, const Plaintext& m) const {
  // Plaintext coefficients are small (< t); embed directly in every tower.
  RnsPoly mp;
  mp.towers.assign(ctx_.q_basis().size(), poly::Coeffs<u64>(ctx_.n()));
  ctx_.exec().for_each(ctx_.q_basis().size(), [&](std::size_t i) {
    for (std::size_t j = 0; j < ctx_.n(); ++j)
      mp.towers[i][j] = m.coeffs[j] % ctx_.q_basis().modulus(i);
  });
  Ciphertext r;
  for (const auto& comp : a.c) r.c.push_back(ctx_.mul(comp, mp));
  return r;
}

poly::RnsPoly Bfv::extend_centered(const RnsPoly& p) const {
  const auto& qb = ctx_.q_basis();
  const auto& eb = ctx_.ext_basis();
  const BigInt half = qb.product() >> 1;
  RnsPoly out;
  out.towers.assign(eb.size(), Coeffs<u64>(ctx_.n()));
  ctx_.exec().for_ranges(ctx_.n(), [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> res(qb.size());
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < qb.size(); ++i) res[i] = p.towers[i][j];
      BigInt x = qb.reconstruct(res);
      const bool neg = x > half;
      const BigInt mag = neg ? qb.product() - x : x;
      for (std::size_t i = 0; i < eb.size(); ++i)
        out.towers[i][j] = signed_mod(mag, neg, eb.modulus(i));
    }
  });
  return out;
}

poly::RnsPoly Bfv::scale_round_to_q(const RnsPoly& y_ext) const {
  const auto& qb = ctx_.q_basis();
  const auto& eb = ctx_.ext_basis();
  const BigInt half = eb.product() >> 1;
  RnsPoly out;
  out.towers.assign(qb.size(), Coeffs<u64>(ctx_.n()));
  ctx_.exec().for_ranges(ctx_.n(), [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> res(eb.size());
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < eb.size(); ++i) res[i] = y_ext.towers[i][j];
      BigInt y = eb.reconstruct(res);
      const bool neg = y > half;
      const BigInt mag = neg ? eb.product() - y : y;
      u64 carry = 0;
      const BigInt num = mag.mul_small(ctx_.t(), &carry);
      if (carry != 0) throw std::logic_error("Bfv: tensor scale overflow");
      const BigInt m = nt::div_round(num, ctx_.big_q());
      for (std::size_t i = 0; i < qb.size(); ++i)
        out.towers[i][j] = signed_mod(m, neg, qb.modulus(i));
    }
  });
  return out;
}

Ciphertext Bfv::multiply(const Ciphertext& a, const Ciphertext& b) const {
  if (a.size() != 2 || b.size() != 2)
    throw std::invalid_argument("Bfv: multiply expects 2-element ciphertexts");
  // Centered base extension Q -> Q u B of all four polynomials.
  const RnsPoly a0 = extend_centered(a.c[0]);
  const RnsPoly a1 = extend_centered(a.c[1]);
  const RnsPoly b0 = extend_centered(b.c[0]);
  const RnsPoly b1 = extend_centered(b.c[1]);

  // Tensor per extended tower (Eq. 4 numerators): 4 forward NTTs, 4
  // Hadamard products, 1 add, 3 inverse NTTs -- the exact command mix
  // CoFHEE runs on chip (Algorithm 3), executed host-side as one fused
  // MergedNtt64::tensor call per tower (lazy-reduction butterflies, SIMD
  // pointwise kernels, no intermediate NTT-form wave materialized).  One
  // task per tower: each owns its contiguous coefficient vectors.
  const std::size_t k = ctx_.ext_basis().size();
  RnsPoly y0, y1, y2;
  y0.towers.resize(k);
  y1.towers.resize(k);
  y2.towers.resize(k);
  ctx_.exec().for_each(k, [&](std::size_t i) {
    ctx_.ext_ntt(i).tensor(a0.towers[i], a1.towers[i], b0.towers[i],
                           b1.towers[i], y0.towers[i], y1.towers[i],
                           y2.towers[i]);
  });

  Ciphertext r;
  r.c.push_back(scale_round_to_q(y0));
  r.c.push_back(scale_round_to_q(y1));
  r.c.push_back(scale_round_to_q(y2));
  return r;
}

void Bfv::validate_relin_keys(const RelinKeys& rk) const {
  const auto& qb = ctx_.q_basis();
  if (rk.digit_bits == 0 || rk.digit_bits > 32)
    throw std::invalid_argument("Bfv: relin digit_bits in [1,32]");
  if (rk.keys.empty()) throw std::invalid_argument("Bfv: empty relin keys");
  if (rk.keys.size() * rk.digit_bits < ctx_.big_q().bit_len())
    throw std::invalid_argument(
        "Bfv: relin keys cover fewer digits than log2(Q) -- generated at a "
        "different level");
  for (const auto& [b, a] : rk.keys) {
    if (b.towers.size() != qb.size() || a.towers.size() != qb.size())
      throw std::invalid_argument(
          "Bfv: relin key tower count does not match this scheme's Q basis");
    for (std::size_t i = 0; i < qb.size(); ++i)
      if (b.towers[i].size() != ctx_.n() || a.towers[i].size() != ctx_.n())
        throw std::invalid_argument(
            "Bfv: relin key polynomial degree does not match this ring");
  }
}

std::vector<RnsPoly> Bfv::relin_digits(const RnsPoly& c2, const RelinKeys& rk) const {
  const auto& qb = ctx_.q_basis();
  const unsigned w = rk.digit_bits;
  const u64 mask = (w == 64) ? ~u64{0} : ((u64{1} << w) - 1);

  // Digit-decompose c2 over the integers: c2 = sum_d D_d 2^(w d).  Each
  // task lifts a contiguous coefficient range; digit writes are disjoint.
  const std::size_t nd = rk.keys.size();
  std::vector<RnsPoly> digits(nd);
  for (auto& d : digits) d.towers.assign(qb.size(), Coeffs<u64>(ctx_.n(), 0));
  ctx_.exec().for_ranges(ctx_.n(), [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> res(qb.size());
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < qb.size(); ++i) res[i] = c2.towers[i][j];
      BigInt x = qb.reconstruct(res);
      for (std::size_t d = 0; d < nd; ++d) {
        const u64 digit = x.limb[0] & mask;
        x >>= w;
        for (std::size_t i = 0; i < qb.size(); ++i)
          digits[d].towers[i][j] = digit % qb.modulus(i);
      }
    }
  });
  return digits;
}

Ciphertext Bfv::relinearize(const Ciphertext& ct, const RelinKeys& rk) const {
  if (ct.size() != 3) throw std::invalid_argument("Bfv: relinearize expects 3 elements");
  validate_relin_keys(rk);
  const auto& qb = ctx_.q_basis();
  const std::size_t nd = rk.keys.size();
  const std::vector<RnsPoly> digits = relin_digits(ct.c[2], rk);

  // Key-switch products: one task per (digit, component, tower) -- the
  // relinearization digit loops are nd * 2 * towers independent negacyclic
  // multiplications.
  std::vector<RnsPoly> prod0(nd), prod1(nd);
  for (auto& p : prod0) p.towers.resize(qb.size());
  for (auto& p : prod1) p.towers.resize(qb.size());
  ctx_.exec().for_each(nd * 2 * qb.size(), [&](std::size_t idx) {
    const std::size_t d = idx / (2 * qb.size());
    const std::size_t rem = idx % (2 * qb.size());
    const std::size_t comp = rem / qb.size();
    const std::size_t i = rem % qb.size();
    const auto& key = comp == 0 ? rk.keys[d].first : rk.keys[d].second;
    auto& out = comp == 0 ? prod0[d] : prod1[d];
    out.towers[i] = ctx_.mul_tower(i, digits[d].towers[i], key.towers[i]);
  });

  Ciphertext r;
  r.c.push_back(ct.c[0]);
  r.c.push_back(ct.c[1]);
  // Accumulate per (component, tower), keeping the ascending-d order of the
  // serial reference so sums are bit-identical.
  ctx_.exec().for_each(2 * qb.size(), [&](std::size_t idx) {
    const std::size_t comp = idx / qb.size();
    const std::size_t i = idx % qb.size();
    const auto& ring = qb.tower(i);
    auto& acc = r.c[comp].towers[i];
    const auto& prods = comp == 0 ? prod0 : prod1;
    for (std::size_t d = 0; d < nd; ++d)
      acc = poly::pointwise_add(ring, acc, prods[d].towers[i]);
  });
  return r;
}

double Bfv::noise_budget_bits(const SecretKey& sk, const Ciphertext& ct) const {
  // v = Delta m + e (mod Q); recover m, then measure |e|_inf.
  const Plaintext m = decrypt(sk, ct);
  RnsPoly v = ctx_.add(ct.c[0], ctx_.mul(ct.c[1], sk.s));
  if (ct.size() == 3) v = ctx_.add(v, ctx_.mul(ctx_.mul(ct.c[2], sk.s), sk.s));
  const auto& qb = ctx_.q_basis();
  double max_noise_bits = 0;
  std::vector<u64> res(qb.size());
  for (std::size_t j = 0; j < ctx_.n(); ++j) {
    for (std::size_t i = 0; i < qb.size(); ++i) res[i] = v.towers[i][j];
    BigInt x = qb.reconstruct(res);
    // e = centered(x - Delta*m_j mod Q).
    u64 carry = 0;
    BigInt dm = ctx_.delta().mul_small(m.coeffs[j], &carry);
    if (x >= dm) {
      x -= dm;
    } else {
      x += qb.product() - dm;
    }
    const BigInt half = qb.product() >> 1;
    const BigInt mag = x > half ? qb.product() - x : x;
    max_noise_bits = std::max(max_noise_bits, static_cast<double>(mag.bit_len()));
  }
  const double capacity =
      static_cast<double>(qb.product().bit_len()) - 1.0 -
      static_cast<double>(nt::bit_length(ctx_.t()));
  return capacity - max_noise_bits;
}

}  // namespace cofhee::bfv
