// BFV parameter sets (paper Sections II-B/II-C/VI-B).
//
// The ciphertext modulus q is an RNS product of NTT-friendly 64-bit towers
// (what SEAL runs on a CPU); CoFHEE's native 128-bit datapath instead needs
// one tower per <= 128 coefficient bits.  The two presets mirror the Fig. 6
// configurations: (n, log q) = (2^12, 109) split 54+55, and (2^13, 218)
// split 54+54+55+55, both at the 128-bit classical security level the paper
// cites.  An auxiliary basis B (|Q|+1 towers) extends Q for the tensor step
// of EvalMult so products up to n*q^2 are represented exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/exec_policy.hpp"
#include "nt/primes.hpp"
#include "poly/merged_ntt.hpp"
#include "poly/rns.hpp"

namespace cofhee::bfv {

using nt::u128;
using nt::u64;
using poly::BigInt;

struct BfvParams {
  std::size_t n = 0;
  std::vector<u64> q_moduli;   // ciphertext towers (RNS base Q)
  std::vector<u64> aux_moduli; // extension base B for the tensor
  u64 t = 0;                   // plaintext modulus
  unsigned cbd_eta = 21;       // error distribution (Gaussian stand-in)

  /// Build a parameter set: `tower_bits[i]` sizes each Q tower; aux towers
  /// are chosen automatically (|Q|+1 towers of 55 bits, distinct from Q).
  static BfvParams create(std::size_t n, const std::vector<unsigned>& tower_bits,
                          u64 t);

  /// Fig. 6 small configuration: n = 2^12, log q = 109 (54+55), t = 65537.
  static BfvParams paper_small();
  /// Fig. 6 large configuration: n = 2^13, log q = 218 (54+54+55+55).
  static BfvParams paper_large();
  /// Tiny parameters for fast functional tests.
  static BfvParams test_tiny(std::size_t n = 64);

  [[nodiscard]] unsigned log_q() const;
};

/// Precomputed context shared by keygen/encrypt/decrypt/evaluate.  Carries
/// the execution policy every per-tower / per-coefficient hot loop drains
/// through: serial by default (the bit-exact reference path), pooled when a
/// caller opts in.  Switching policies never changes results -- only which
/// threads compute them (tests/bfv/test_parallel_vs_serial_bfv.cpp).
class BfvContext {
 public:
  explicit BfvContext(BfvParams params,
                      backend::ExecPolicy policy = backend::ExecPolicy::serial());

  [[nodiscard]] const BfvParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t n() const noexcept { return params_.n; }
  [[nodiscard]] u64 t() const noexcept { return params_.t; }
  [[nodiscard]] const poly::RnsBasis& q_basis() const noexcept { return q_basis_; }
  [[nodiscard]] const poly::RnsBasis& ext_basis() const noexcept { return ext_basis_; }
  [[nodiscard]] const BigInt& big_q() const noexcept { return q_basis_.product(); }
  /// Delta = floor(Q / t).
  [[nodiscard]] const BigInt& delta() const noexcept { return delta_; }
  [[nodiscard]] u64 delta_mod(std::size_t tower) const { return delta_mod_q_.at(tower); }

  // Tower engines are the fused/SIMD MergedNtt64 path (lazy-reduction
  // butterflies, Shoup twiddles, nt::simd dispatch); NegacyclicNtt64 stays
  // available in poly/ntt.hpp as the unfused scalar reference the
  // differential suites compare against.
  [[nodiscard]] const poly::MergedNtt64& ntt(std::size_t tower) const {
    return q_ntt_.at(tower);
  }
  [[nodiscard]] const poly::MergedNtt64& ext_ntt(std::size_t tower) const {
    return ext_ntt_.at(tower);
  }

  /// Negacyclic product of two coefficient-domain polynomials in tower i.
  [[nodiscard]] poly::Coeffs<u64> mul_tower(std::size_t i, const poly::Coeffs<u64>& a,
                                            const poly::Coeffs<u64>& b) const {
    return q_ntt_.at(i).negacyclic_mul(a, b);
  }

  /// Executor the evaluation loops run on (serial or pooled).
  [[nodiscard]] const backend::Executor& exec() const noexcept { return exec_; }
  /// Swap the serial reference path and the pooled path at runtime.  Not
  /// safe concurrently with an evaluation on this context.
  void set_exec_policy(backend::ExecPolicy policy) {
    exec_ = backend::Executor(policy);
  }

  // RNS-polynomial helpers over the Q basis.
  [[nodiscard]] poly::RnsPoly add(const poly::RnsPoly& a, const poly::RnsPoly& b) const;
  [[nodiscard]] poly::RnsPoly sub(const poly::RnsPoly& a, const poly::RnsPoly& b) const;
  [[nodiscard]] poly::RnsPoly mul(const poly::RnsPoly& a, const poly::RnsPoly& b) const;
  [[nodiscard]] poly::RnsPoly neg(const poly::RnsPoly& a) const;
  [[nodiscard]] poly::RnsPoly zero() const;

 private:
  BfvParams params_;
  poly::RnsBasis q_basis_;
  poly::RnsBasis ext_basis_;  // Q followed by B
  std::vector<poly::MergedNtt64> q_ntt_;
  std::vector<poly::MergedNtt64> ext_ntt_;
  BigInt delta_{};
  std::vector<u64> delta_mod_q_;
  backend::Executor exec_;
};

}  // namespace cofhee::bfv
