// BFV scheme: key generation, encryption, decryption, evaluation
// (paper Sections II-B, II-C).
//
// Encryption follows Eqs. 2-3; homomorphic multiplication evaluates the
// Eq. 4 tensor with exact arithmetic: inputs are base-extended (centered)
// from Q to Q u B, the three tensor polynomials are computed with per-tower
// NTTs, and the t/q rounding is done through an exact CRT lift -- no
// floating-point approximation, so decryption correctness is provable and
// the tests can assert exact plaintext results.  Relinearization uses
// classic base-2^w digit decomposition key switching.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bfv/params.hpp"
#include "poly/sampler.hpp"

namespace cofhee::bfv {

struct SecretKey {
  poly::RnsPoly s;  // ternary secret in every tower
};

struct PublicKey {
  poly::RnsPoly p0;  // -(a s + e)
  poly::RnsPoly p1;  // a
};

struct RelinKeys {
  unsigned digit_bits = 16;
  // One pair per digit: (b_i = -(a_i s + e_i) + 2^(w i) s^2, a_i).
  std::vector<std::pair<poly::RnsPoly, poly::RnsPoly>> keys;
  // One 64-bit seed per digit: a_i's towers are poly::expand_uniform(seed,
  // tower, n, q_tower), so the `a` half of every key pair compresses to 8
  // bytes on the wire (the driver's seed-frame upload re-expands it
  // chip-side, bit-identically).
  std::vector<std::uint64_t> a_seeds;

  /// Whether the `a` components are seed-expandable (seeds recorded and
  /// consistent with the digit count).
  [[nodiscard]] bool seeded() const noexcept {
    return !keys.empty() && a_seeds.size() == keys.size();
  }
};

/// Plaintext polynomial over Z_t (coefficient embedding).
struct Plaintext {
  poly::Coeffs<u64> coeffs;
};

/// Ciphertext: 2 polynomials normally, 3 after an unrelinearized multiply.
struct Ciphertext {
  std::vector<poly::RnsPoly> c;
  [[nodiscard]] std::size_t size() const noexcept { return c.size(); }
};

class Bfv {
 public:
  explicit Bfv(BfvParams params, std::uint64_t seed = 1,
               backend::ExecPolicy policy = backend::ExecPolicy::serial())
      : ctx_(std::move(params), policy), rng_(seed) {}

  [[nodiscard]] const BfvContext& context() const noexcept { return ctx_; }
  /// Switch between the serial reference path and a pooled path at runtime.
  /// Sampling (keygen/encrypt randomness) always stays serial, so two
  /// schemes with equal seeds produce identical keys and ciphertexts
  /// regardless of policy.
  void set_exec_policy(backend::ExecPolicy policy) { ctx_.set_exec_policy(policy); }

  [[nodiscard]] SecretKey keygen_secret();
  [[nodiscard]] PublicKey keygen_public(const SecretKey& sk);
  [[nodiscard]] RelinKeys keygen_relin(const SecretKey& sk, unsigned digit_bits = 16);

  [[nodiscard]] Ciphertext encrypt(const PublicKey& pk, const Plaintext& m);
  /// Decrypts 2- or 3-element ciphertexts (the latter with s^2).
  [[nodiscard]] Plaintext decrypt(const SecretKey& sk, const Ciphertext& ct) const;

  [[nodiscard]] Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  /// Component-wise negation: noise-free (used to handle negative plaintext
  /// scalars without the |m| ~ t noise blow-up of encoding them as t - |m|).
  [[nodiscard]] Ciphertext negate(const Ciphertext& a) const;
  [[nodiscard]] Ciphertext add_plain(const Ciphertext& a, const Plaintext& m) const;
  [[nodiscard]] Ciphertext mul_plain(const Ciphertext& a, const Plaintext& m) const;
  /// Eq. 4 tensor + t/q rounding; result has 3 components ("without
  /// relinearization", the Fig. 6 operation).
  [[nodiscard]] Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;
  /// Key switching back to 2 components.
  [[nodiscard]] Ciphertext relinearize(const Ciphertext& ct, const RelinKeys& rk) const;

  /// Upper bound check helper for tests: decrypt noise budget proxy --
  /// infinity norm of the centered decryption error scaled by t/Q.
  [[nodiscard]] double noise_budget_bits(const SecretKey& sk, const Ciphertext& ct) const;

  /// Exposed RNS plumbing for backends that compute the Eq. 4 tensor
  /// elsewhere (the chip-backed evaluator in driver/chip_bfv.hpp): centered
  /// exact base extension Q -> Q u B, and the t/q rounding back to Q.
  [[nodiscard]] poly::RnsPoly extend_centered_public(const poly::RnsPoly& p) const {
    return extend_centered(p);
  }
  [[nodiscard]] poly::RnsPoly scale_round_public(const poly::RnsPoly& y_ext) const {
    return scale_round_to_q(y_ext);
  }

  /// Base-2^w digit decomposition of `c2` over the Q basis: the host half of
  /// Algorithm-2 key switching, shared verbatim with the chip-backed
  /// relinearization (driver/chip_bfv.hpp) so both paths are bit-identical.
  /// Validates `rk` against this scheme's level first (see
  /// validate_relin_keys) and throws std::invalid_argument on mismatch.
  [[nodiscard]] std::vector<poly::RnsPoly> relin_digits_public(
      const poly::RnsPoly& c2, const RelinKeys& rk) const {
    validate_relin_keys(rk);
    return relin_digits(c2, rk);
  }

  /// Reject relinearization keys generated at a different level or ring:
  /// wrong tower count / polynomial degree, digit width outside [1,32], or
  /// too few digits to cover log2(Q) (which would silently drop high digits
  /// and corrupt the result).  Throws std::invalid_argument.
  void validate_relin_keys(const RelinKeys& rk) const;

 private:
  [[nodiscard]] poly::RnsPoly sample_small_rns(bool ternary);
  /// Centered exact base extension Q -> Q u B of one polynomial.
  [[nodiscard]] poly::RnsPoly extend_centered(const poly::RnsPoly& p) const;
  /// round(t * y / Q) mod Q for a polynomial given in the extended basis.
  [[nodiscard]] poly::RnsPoly scale_round_to_q(const poly::RnsPoly& y_ext) const;
  /// Digit decomposition behind relinearize()/relin_digits_public().
  [[nodiscard]] std::vector<poly::RnsPoly> relin_digits(const poly::RnsPoly& c2,
                                                        const RelinKeys& rk) const;

  BfvContext ctx_;
  poly::Rng rng_;
};

}  // namespace cofhee::bfv
