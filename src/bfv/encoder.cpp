#include "bfv/encoder.hpp"

#include <stdexcept>

#include "nt/primes.hpp"

namespace cofhee::bfv {

Plaintext IntegerEncoder::encode(std::int64_t v) const {
  Plaintext p;
  p.coeffs.assign(n_, 0);
  const std::int64_t tt = static_cast<std::int64_t>(t_);
  std::int64_t r = v % tt;
  if (r < 0) r += tt;
  p.coeffs[0] = static_cast<u64>(r);
  return p;
}

std::int64_t IntegerEncoder::decode(const Plaintext& p) const {
  const u64 c = p.coeffs.at(0);
  // Centered interpretation.
  return c > t_ / 2 ? static_cast<std::int64_t>(c) - static_cast<std::int64_t>(t_)
                    : static_cast<std::int64_t>(c);
}

BatchEncoder::BatchEncoder(const BfvContext& ctx)
    : n_(ctx.n()), t_ring_(ctx.t()),
      ntt_(t_ring_, ctx.n(), nt::primitive_2nth_root(ctx.t(), ctx.n())) {
  if ((ctx.t() - 1) % (2 * ctx.n()) != 0)
    throw std::invalid_argument("BatchEncoder: t must be prime with t == 1 mod 2n");
}

Plaintext BatchEncoder::encode(const std::vector<u64>& values) const {
  if (values.size() > n_) throw std::invalid_argument("BatchEncoder: too many values");
  poly::Coeffs<u64> slots(n_, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= t_ring_.modulus())
      throw std::invalid_argument("BatchEncoder: value >= t");
    slots[i] = values[i];
  }
  // Slot values live in the NTT domain of R_t; the plaintext polynomial is
  // the inverse transform.
  ntt_.inverse(slots);
  return Plaintext{std::move(slots)};
}

std::vector<u64> BatchEncoder::decode(const Plaintext& p) const {
  poly::Coeffs<u64> slots = p.coeffs;
  if (slots.size() != n_) throw std::invalid_argument("BatchEncoder: bad plaintext");
  ntt_.forward(slots);
  return slots;
}

}  // namespace cofhee::bfv
