// Randomness for RLWE: uniform, ternary, and centered-binomial samplers.
//
// BFV encryption (paper Eqs. 2-3) draws u from {-1, 0, 1} and e1/e2 from a
// discrete Gaussian.  We use a centered binomial distribution with eta = 21
// (sigma = sqrt(eta/2) ~ 3.24, matching SEAL's sigma = 3.2 within 2%) as the
// Gaussian stand-in -- a standard, constant-time-friendly substitution also
// used by Kyber; recorded in DESIGN.md.  All sampling is deterministic from
// a seed so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "poly/polynomial.hpp"
#include "poly/rns.hpp"

namespace cofhee::poly {

/// xoshiro256** -- small, fast, seedable; not cryptographic (this repo's
/// purpose is performance reproduction, not production key generation).
class Rng {
 public:
  explicit Rng(u64 seed = 0x5EED5EED5EEDull);

  u64 next_u64();
  /// Uniform in [0, bound) by rejection (no modulo bias).
  u64 uniform_below(u64 bound);
  u128 uniform_u128_below(u128 bound);

 private:
  u64 s_[4];
};

/// Small signed value (e.g. -1/0/1 or CBD output), representable in any ring.
using SignedCoeffs = std::vector<int32_t>;

/// Uniform polynomial over [0, q).
Coeffs<u64> sample_uniform(Rng& rng, std::size_t n, u64 q);
Coeffs<u128> sample_uniform128(Rng& rng, std::size_t n, u128 q);

/// Per-(seed, tower) stream seed for seed-expandable polynomials (relin-key
/// `a` components): the host records one 64-bit seed per digit, and both
/// ends re-derive any tower's stream independently -- random access per
/// tower, no ordering constraint between towers.  Splitmix-style mix.
u64 tower_seed(u64 seed, std::size_t tower);

/// Expand one tower of a seed-expandable uniform polynomial.  This is THE
/// shared definition both sides use: key generation calls it on the host,
/// and the driver's seed-frame upload calls it as the chip-side expansion
/// -- so the SRAM contents after a compressed upload are bit-identical to a
/// full coefficient burst of the same key.
Coeffs<u64> expand_uniform(u64 seed, std::size_t tower, std::size_t n, u64 q);

/// Ternary polynomial in {-1, 0, 1}.
SignedCoeffs sample_ternary(Rng& rng, std::size_t n);

/// Centered binomial with parameter eta (variance eta/2).
SignedCoeffs sample_cbd(Rng& rng, std::size_t n, unsigned eta = 21);

/// Map a small signed polynomial into one RNS tower.
Coeffs<u64> to_tower(const SignedCoeffs& s, u64 q);

/// Map a small signed polynomial into every tower of a basis.
RnsPoly to_rns(const SignedCoeffs& s, const RnsBasis& basis);

}  // namespace cofhee::poly
