// Residue Number System (paper Section II-D).
//
// A wide ciphertext modulus q = prod(q_i) is split into coprime 64-bit
// towers so the software baseline can use native arithmetic (SEAL-style);
// CoFHEE's 128-bit datapath instead needs only one tower per 128 coefficient
// bits (Section III-C's rationale for the wide multiplier).  Reconstruction
// and exact base conversion go through WideInt CRT -- exactness (rather than
// SEAL's floating-point approximation) keeps the BFV t/q rounding provably
// correct, which the tests rely on.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "nt/barrett.hpp"
#include "nt/wide_int.hpp"
#include "poly/polynomial.hpp"

// poly stays a leaf layer: the pooled overloads below only name the
// executor, so a forward declaration suffices and backend's thread-pool
// headers are not dragged into every poly consumer.
namespace cofhee::backend {
class Executor;
}

namespace cofhee::poly {

/// Big-integer type wide enough for every CRT lift in this codebase:
/// tensor coefficients are bounded by n * q^2 * t < 2^(2*218+14+20) < 2^512
/// for the paper's largest parameter set.
using BigInt = nt::WideInt<8>;

class RnsBasis {
 public:
  RnsBasis() = default;
  explicit RnsBasis(const std::vector<u64>& moduli);

  [[nodiscard]] std::size_t size() const noexcept { return mods_.size(); }
  [[nodiscard]] const nt::Barrett64& tower(std::size_t i) const { return mods_.at(i); }
  [[nodiscard]] u64 modulus(std::size_t i) const { return mods_.at(i).modulus(); }
  [[nodiscard]] const std::vector<nt::Barrett64>& towers() const noexcept { return mods_; }
  /// Product of all tower moduli.
  [[nodiscard]] const BigInt& product() const noexcept { return big_q_; }
  /// Total bit size of the composite modulus (the paper's "log q").
  [[nodiscard]] unsigned log_q() const noexcept { return big_q_.bit_len(); }

  /// Residues of x (0 <= x < product()) in every tower.
  [[nodiscard]] std::vector<u64> decompose(const BigInt& x) const;

  /// CRT reconstruction into [0, product()).
  [[nodiscard]] BigInt reconstruct(std::span<const u64> residues) const;

  /// Reconstruction mapped to the symmetric interval (-Q/2, Q/2], returned
  /// as (magnitude, is_negative) -- the form the BFV rounding step needs.
  [[nodiscard]] std::pair<BigInt, bool> reconstruct_centered(
      std::span<const u64> residues) const;

 private:
  std::vector<nt::Barrett64> mods_;
  BigInt big_q_{};
  std::vector<BigInt> q_hat_;      // Q / q_i
  std::vector<u64> q_hat_inv_;     // (Q / q_i)^-1 mod q_i
};

/// A polynomial in RNS representation: towers[i] holds the coefficients
/// modulo q_i.  All towers have the same length n.
struct RnsPoly {
  std::vector<Coeffs<u64>> towers;

  [[nodiscard]] std::size_t num_towers() const noexcept { return towers.size(); }
  [[nodiscard]] std::size_t n() const noexcept {
    return towers.empty() ? 0 : towers.front().size();
  }
};

/// Decompose big-integer coefficients into an RNS polynomial.
[[nodiscard]] RnsPoly rns_decompose(const RnsBasis& basis,
                                    const std::vector<BigInt>& coeffs);

/// CRT-lift an RNS polynomial back to big-integer coefficients in [0, Q).
[[nodiscard]] std::vector<BigInt> rns_reconstruct(const RnsBasis& basis,
                                                  const RnsPoly& p);

/// Exact base conversion: re-express p (residues w.r.t. `from`) in `to`.
/// Exact because it lifts through the full CRT (no approximation error),
/// valid for values in [0, from.product()).
[[nodiscard]] RnsPoly rns_base_convert(const RnsBasis& from, const RnsBasis& to,
                                       const RnsPoly& p);

// Pooled variants.  Coefficients are independent, so each executor task
// lifts a contiguous coefficient range with its own scratch; results are
// bit-identical to the serial overloads above (every coefficient runs the
// exact same arithmetic).  The bases are read-only during the call and may
// be shared by any number of concurrent conversions.
[[nodiscard]] RnsPoly rns_decompose(const RnsBasis& basis,
                                    const std::vector<BigInt>& coeffs,
                                    const backend::Executor& exec);
[[nodiscard]] std::vector<BigInt> rns_reconstruct(const RnsBasis& basis,
                                                  const RnsPoly& p,
                                                  const backend::Executor& exec);
/// Fused reconstruct + decompose: each task lifts and re-decomposes its own
/// coefficient range without materializing the intermediate BigInt vector.
[[nodiscard]] RnsPoly rns_base_convert(const RnsBasis& from, const RnsBasis& to,
                                       const RnsPoly& p,
                                       const backend::Executor& exec);

}  // namespace cofhee::poly
