#include "poly/merged_ntt.hpp"

#include "nt/simd.hpp"

namespace cofhee::poly {

namespace {
inline u64 shoup_of(u64 w, u64 q) noexcept {
  return static_cast<u64>((static_cast<u128>(w) << 64) / q);
}
}  // namespace

MergedNtt64::MergedNtt64(const nt::Barrett64& red, std::size_t n, u64 psi)
    : red_(red), n_(n) {
  if (!nt::is_power_of_two(n) || n < 2)
    throw std::invalid_argument("MergedNtt64: n must be 2^k, k >= 1");
  if (red.pow(psi, static_cast<u64>(n)) != red.modulus() - 1)
    throw std::invalid_argument("MergedNtt64: psi is not a primitive 2n-th root");
  const unsigned logn = nt::log2_exact(n);
  const u64 q = red.modulus();
  const u64 psi_inv = red.inv(psi);
  std::vector<u64> pow(n), pow_inv(n);
  u64 p = 1, pi = 1;
  for (std::size_t i = 0; i < n; ++i) {
    pow[i] = p;
    pow_inv[i] = pi;
    p = red.mul(p, psi);
    pi = red.mul(pi, psi_inv);
  }
  tw_.resize(n);
  tw_shoup_.resize(n);
  tw_inv_.resize(n);
  tw_inv_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    tw_[i] = pow[nt::bit_reverse(i, logn)];
    tw_shoup_[i] = shoup_of(tw_[i], q);
    tw_inv_[i] = pow_inv[nt::bit_reverse(i, logn)];
    tw_inv_shoup_[i] = shoup_of(tw_inv_[i], q);
  }
  n_inv_ = red.inv(static_cast<u64>(n));
  n_inv_shoup_ = shoup_of(n_inv_, q);
}

void MergedNtt64::forward(Coeffs<u64>& x) const {
  check(x);
  const auto& K = nt::simd::kernels();
  const u64 q = red_.modulus();
  u64* d = x.data();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      K.ct_butterfly(d + j1, d + j1 + t, t, tw_[m + i], tw_shoup_[m + i], q);
    }
  }
  K.canonicalize(d, n_, q);
}

void MergedNtt64::inverse(Coeffs<u64>& x) const {
  check(x);
  const auto& K = nt::simd::kernels();
  const u64 q = red_.modulus();
  u64* d = x.data();
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      K.gs_butterfly(d + j1, d + j1 + t, t, tw_inv_[h + i], tw_inv_shoup_[h + i],
                     q);
      j1 += 2 * t;
    }
    t <<= 1;
  }
  // Shoup scalar multiply accepts the lazy [0, 2q) stage output directly and
  // emits canonical residues: n^-1 scaling and canonicalization in one pass.
  K.scalar_mul_shoup(d, n_, n_inv_, n_inv_shoup_, q);
}

Coeffs<u64> MergedNtt64::negacyclic_mul(const Coeffs<u64>& a,
                                        const Coeffs<u64>& b) const {
  check(a);
  check(b);
  const auto& K = nt::simd::kernels();
  Coeffs<u64> ap(a), bp(b);
  forward(ap);
  forward(bp);
  K.pointwise_mul(ap.data(), ap.data(), bp.data(), n_, red_.modulus(),
                  red_.mu(), red_.k());
  inverse(ap);
  return ap;
}

void MergedNtt64::tensor(const Coeffs<u64>& a0, const Coeffs<u64>& a1,
                         const Coeffs<u64>& b0, const Coeffs<u64>& b1,
                         Coeffs<u64>& y0, Coeffs<u64>& y1,
                         Coeffs<u64>& y2) const {
  check(a0);
  check(a1);
  check(b0);
  check(b1);
  const auto& K = nt::simd::kernels();
  const u64 q = red_.modulus();
  const u64 mu = red_.mu();
  const unsigned k = red_.k();
  Coeffs<u64> fa0(a0), fa1(a1), fb0(b0), fb1(b1);
  forward(fa0);
  forward(fa1);
  forward(fb0);
  forward(fb1);
  y0.resize(n_);
  y1.resize(n_);
  y2.resize(n_);
  K.pointwise_mul(y0.data(), fa0.data(), fb0.data(), n_, q, mu, k);
  K.pointwise_mul(y1.data(), fa0.data(), fb1.data(), n_, q, mu, k);
  K.pointwise_mul_acc(y1.data(), fa1.data(), fb0.data(), n_, q, mu, k);
  K.pointwise_mul(y2.data(), fa1.data(), fb1.data(), n_, q, mu, k);
  inverse(y0);
  inverse(y1);
  inverse(y2);
}

}  // namespace cofhee::poly
