// Number Theoretic Transform engines.
//
// Two implementations, both tested against the schoolbook reference:
//
//  * CyclicNtt<Red, T> -- the chip-faithful path.  Forward transform is a
//    Gentleman-Sande decimation-in-frequency pass over the n-th root omega
//    (natural input -> bit-reversed output); inverse is a Cooley-Tukey
//    decimation-in-time pass (bit-reversed input -> natural output) plus the
//    trailing n^-1 scaling (the chip's CMODMUL by INV_POLYDEG).  Negacyclic
//    semantics come from explicit psi pre-scaling / psi^-1 post-scaling,
//    exactly Algorithm 2 of the paper.  NTT and iNTT share a single omega
//    table (paper Section VIII-B): inverse twiddles are read at mirrored
//    addresses using omega^-e = -omega^(n/2 - e).
//    Note: the paper's Algorithm 1 listing terminates its stage loop at
//    distance 2, omitting the final distance-1 stage; the cycle counts in
//    Table XI ((n/2)*log2 n butterflies) confirm the full log2 n stages, so
//    we implement the complete transform.
//
//  * NegacyclicNtt64 -- the software baseline path (SEAL-style): psi powers
//    merged into the twiddles (Longa-Naehrig), Shoup precomputation, u64
//    towers.  This is what the CPU comparison of Fig. 6 runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "nt/barrett.hpp"
#include "nt/primes.hpp"
#include "poly/polynomial.hpp"

namespace cofhee::poly {

/// Chip-faithful cyclic NTT over the n-th root of unity omega = psi^2.
template <class Red, class T>
class CyclicNtt {
 public:
  CyclicNtt() = default;

  CyclicNtt(const Red& red, std::size_t n, T psi) : red_(red), n_(n), psi_(psi) {
    if (!nt::is_power_of_two(n) || n < 2)
      throw std::invalid_argument("CyclicNtt: n must be 2^k, k >= 1");
    logn_ = nt::log2_exact(n);
    omega_ = red_.mul(psi, psi);
    if (red_.pow(psi_, static_cast<T>(n)) != red_.modulus() - 1)
      throw std::invalid_argument("CyclicNtt: psi is not a primitive 2n-th root");
    psi_inv_ = red_.inv(psi_);
    omega_inv_ = red_.inv(omega_);
    n_inv_ = red_.inv(static_cast<T>(n));
    // Twiddle ROM layout: omega^j for j in [0, n/2), natural order.
    tw_.resize(n / 2);
    T w = 1;
    for (std::size_t j = 0; j < n / 2; ++j) {
      tw_[j] = w;
      w = red_.mul(w, omega_);
    }
    // psi powers for the negacyclic pre/post scaling passes.
    psi_pow_.resize(n);
    psi_inv_pow_.resize(n);
    T p = 1, pi = 1;
    for (std::size_t j = 0; j < n; ++j) {
      psi_pow_[j] = p;
      psi_inv_pow_[j] = pi;
      p = red_.mul(p, psi_);
      pi = red_.mul(pi, psi_inv_);
    }
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] const Red& ring() const noexcept { return red_; }
  [[nodiscard]] T psi() const noexcept { return psi_; }
  [[nodiscard]] T omega() const noexcept { return omega_; }
  [[nodiscard]] T n_inv() const noexcept { return n_inv_; }
  [[nodiscard]] const std::vector<T>& twiddle_rom() const noexcept { return tw_; }
  [[nodiscard]] const std::vector<T>& psi_powers() const noexcept { return psi_pow_; }
  [[nodiscard]] const std::vector<T>& psi_inv_powers() const noexcept {
    return psi_inv_pow_;
  }

  /// Twiddle for forward butterflies: omega^e, e in [0, n/2).
  [[nodiscard]] T fwd_twiddle(std::size_t e) const noexcept { return tw_[e]; }

  /// Twiddle for inverse butterflies: omega^-e, read from the same ROM at
  /// the mirrored address (omega^-e = -omega^(n/2 - e) since omega^(n/2)=-1).
  [[nodiscard]] T inv_twiddle(std::size_t e) const noexcept {
    return e == 0 ? T{1} : red_.neg(tw_[n_ / 2 - e]);
  }

  /// Forward cyclic NTT, GS/DIF, natural order in -> bit-reversed order out.
  void forward(Coeffs<T>& x) const {
    check(x);
    for (std::size_t t = n_ / 2; t >= 1; t >>= 1) {
      const std::size_t stride = n_ / (2 * t);  // twiddle exponent step
      for (std::size_t g = 0; g < n_ / (2 * t); ++g) {
        const std::size_t base = 2 * g * t;
        for (std::size_t j = 0; j < t; ++j) {
          const std::size_t k = base + j;
          const T u = x[k];
          const T v = x[k + t];
          x[k] = red_.add(u, v);
          x[k + t] = red_.mul(red_.sub(u, v), fwd_twiddle(j * stride));
        }
      }
    }
  }

  /// Inverse cyclic NTT, CT/DIT, bit-reversed in -> natural out, scaled by
  /// n^-1.
  void inverse(Coeffs<T>& x) const {
    check(x);
    for (std::size_t t = 1; t <= n_ / 2; t <<= 1) {
      const std::size_t stride = n_ / (2 * t);
      for (std::size_t g = 0; g < n_ / (2 * t); ++g) {
        const std::size_t base = 2 * g * t;
        for (std::size_t j = 0; j < t; ++j) {
          const std::size_t k = base + j;
          const T u = x[k];
          const T v = red_.mul(x[k + t], inv_twiddle(j * stride));
          x[k] = red_.add(u, v);
          x[k + t] = red_.sub(u, v);
        }
      }
    }
    for (auto& c : x) c = red_.mul(c, n_inv_);
  }

  /// Negacyclic product via Algorithm 2: psi scaling + cyclic NTT.
  Coeffs<T> negacyclic_mul(const Coeffs<T>& a, const Coeffs<T>& b) const {
    Coeffs<T> ap(a), bp(b);
    for (std::size_t i = 0; i < n_; ++i) {
      ap[i] = red_.mul(ap[i], psi_pow_[i]);
      bp[i] = red_.mul(bp[i], psi_pow_[i]);
    }
    forward(ap);
    forward(bp);
    Coeffs<T> y = pointwise_mul(red_, ap, bp);
    inverse(y);
    for (std::size_t i = 0; i < n_; ++i) y[i] = red_.mul(y[i], psi_inv_pow_[i]);
    return y;
  }

 private:
  void check(const Coeffs<T>& x) const {
    if (x.size() != n_) throw std::invalid_argument("CyclicNtt: wrong length");
  }

  Red red_{};
  std::size_t n_ = 0;
  unsigned logn_ = 0;
  T psi_{}, psi_inv_{}, omega_{}, omega_inv_{}, n_inv_{};
  std::vector<T> tw_, psi_pow_, psi_inv_pow_;
};

using CyclicNtt64 = CyclicNtt<nt::Barrett64, u64>;
using CyclicNtt128 = CyclicNtt<nt::Barrett128, u128>;

/// Software-baseline negacyclic NTT on 64-bit towers with merged psi powers
/// and Shoup multiplication (the role SEAL's NTT plays in Fig. 6).
class NegacyclicNtt64 {
 public:
  NegacyclicNtt64() = default;
  NegacyclicNtt64(const nt::Barrett64& red, std::size_t n, u64 psi);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] const nt::Barrett64& ring() const noexcept { return red_; }

  /// In-place forward negacyclic NTT (natural in, bit-reversed out).
  void forward(Coeffs<u64>& x) const;
  /// In-place inverse negacyclic NTT (bit-reversed in, natural out),
  /// including the n^-1 scaling.
  void inverse(Coeffs<u64>& x) const;

  Coeffs<u64> negacyclic_mul(const Coeffs<u64>& a, const Coeffs<u64>& b) const;

 private:
  nt::Barrett64 red_{};
  std::size_t n_ = 0;
  std::vector<nt::ShoupMul> psi_br_;      // psi^rev(i), merged CT twiddles
  std::vector<nt::ShoupMul> psi_inv_br_;  // psi^-rev(i), merged GS twiddles
  nt::ShoupMul n_inv_{};
};

}  // namespace cofhee::poly
