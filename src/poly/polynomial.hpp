// Polynomials over Z_q[x]/(x^n + 1).
//
// Coefficient vectors are plain std::vector<T> (T = u64 for the software
// towers, u128 for the chip datapath); the ring structure lives in the
// Barrett reducers.  Schoolbook negacyclic multiplication is the O(n^2)
// reference (paper Section II-C) against which every NTT path is tested.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "nt/barrett.hpp"

namespace cofhee::poly {

using nt::u128;
using nt::u64;

template <class T>
using Coeffs = std::vector<T>;

/// Elementwise (Hadamard) modular product c[i] = a[i]*b[i] mod q.
template <class Red, class T>
Coeffs<T> pointwise_mul(const Red& r, const Coeffs<T>& a, const Coeffs<T>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("pointwise_mul: size mismatch");
  Coeffs<T> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = r.mul(a[i], b[i]);
  return c;
}

template <class Red, class T>
Coeffs<T> pointwise_add(const Red& r, const Coeffs<T>& a, const Coeffs<T>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("pointwise_add: size mismatch");
  Coeffs<T> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = r.add(a[i], b[i]);
  return c;
}

template <class Red, class T>
Coeffs<T> pointwise_sub(const Red& r, const Coeffs<T>& a, const Coeffs<T>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("pointwise_sub: size mismatch");
  Coeffs<T> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = r.sub(a[i], b[i]);
  return c;
}

/// c[i] = a[i] * k mod q (the chip's CMODMUL).
template <class Red, class T>
Coeffs<T> scalar_mul(const Red& r, const Coeffs<T>& a, T k) {
  Coeffs<T> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = r.mul(a[i], k);
  return c;
}

template <class Red, class T>
Coeffs<T> negate(const Red& r, const Coeffs<T>& a) {
  Coeffs<T> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = r.neg(a[i]);
  return c;
}

/// Reference negacyclic product in Z_q[x]/(x^n + 1): O(n^2), used only for
/// verification of the NTT-based paths.
template <class Red, class T>
Coeffs<T> schoolbook_negacyclic_mul(const Red& r, const Coeffs<T>& a,
                                    const Coeffs<T>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("schoolbook: size mismatch");
  Coeffs<T> c(n, T{0});
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == T{0}) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const T p = r.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = r.add(c[k], p);
      } else {
        c[k - n] = r.sub(c[k - n], p);  // x^n == -1
      }
    }
  }
  return c;
}

/// Reference cyclic product in Z_q[x]/(x^n - 1) (what the omega-only NTT
/// diagonalizes before psi pre/post scaling restores negacyclic semantics).
template <class Red, class T>
Coeffs<T> schoolbook_cyclic_mul(const Red& r, const Coeffs<T>& a, const Coeffs<T>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("schoolbook: size mismatch");
  Coeffs<T> c(n, T{0});
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == T{0}) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const T p = r.mul(a[i], b[j]);
      c[(i + j) % n] = r.add(c[(i + j) % n], p);
    }
  }
  return c;
}

}  // namespace cofhee::poly
