#include "poly/sampler.hpp"

namespace cofhee::poly {

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

u64 splitmix64(u64& state) {
  state += 0x9E3779B97F4A7C15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

u64 Rng::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::uniform_below(u64 bound) {
  if (bound == 0) return 0;
  // Rejection sampling over the largest multiple of bound.
  const u64 limit = ~u64{0} - ~u64{0} % bound;
  u64 v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

u128 Rng::uniform_u128_below(u128 bound) {
  if (bound == 0) return 0;
  if (bound <= ~u64{0}) return uniform_below(static_cast<u64>(bound));
  const u128 limit = ~u128{0} - ~u128{0} % bound;
  u128 v;
  do {
    v = (static_cast<u128>(next_u64()) << 64) | next_u64();
  } while (v >= limit);
  return v % bound;
}

Coeffs<u64> sample_uniform(Rng& rng, std::size_t n, u64 q) {
  Coeffs<u64> p(n);
  for (auto& c : p) c = rng.uniform_below(q);
  return p;
}

Coeffs<u128> sample_uniform128(Rng& rng, std::size_t n, u128 q) {
  Coeffs<u128> p(n);
  for (auto& c : p) c = rng.uniform_u128_below(q);
  return p;
}

u64 tower_seed(u64 seed, std::size_t tower) {
  // One splitmix64 step from a per-tower offset of the digit seed; distinct
  // towers land in distinct streams even for adjacent seeds.
  u64 state = seed + 0x9E3779B97F4A7C15ull * static_cast<u64>(tower);
  return splitmix64(state);
}

Coeffs<u64> expand_uniform(u64 seed, std::size_t tower, std::size_t n, u64 q) {
  Rng rng(tower_seed(seed, tower));
  return sample_uniform(rng, n, q);
}

SignedCoeffs sample_ternary(Rng& rng, std::size_t n) {
  SignedCoeffs s(n);
  for (auto& c : s) c = static_cast<int32_t>(rng.uniform_below(3)) - 1;
  return s;
}

SignedCoeffs sample_cbd(Rng& rng, std::size_t n, unsigned eta) {
  SignedCoeffs s(n);
  for (auto& c : s) {
    int32_t acc = 0;
    unsigned remaining = eta;
    while (remaining > 0) {
      const unsigned take = remaining > 32 ? 32 : remaining;
      const u64 bits = rng.next_u64();
      const u64 a = bits & ((u64{1} << take) - 1);
      const u64 b = (bits >> 32) & ((u64{1} << take) - 1);
      acc += static_cast<int32_t>(__builtin_popcountll(a));
      acc -= static_cast<int32_t>(__builtin_popcountll(b));
      remaining -= take;
    }
    c = acc;
  }
  return s;
}

Coeffs<u64> to_tower(const SignedCoeffs& s, u64 q) {
  Coeffs<u64> p(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const int64_t v = s[i];
    p[i] = v >= 0 ? static_cast<u64>(v) % q
                  : q - static_cast<u64>(-v) % q;
  }
  return p;
}

RnsPoly to_rns(const SignedCoeffs& s, const RnsBasis& basis) {
  RnsPoly p;
  p.towers.reserve(basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i)
    p.towers.push_back(to_tower(s, basis.modulus(i)));
  return p;
}

}  // namespace cofhee::poly
