// Merged negacyclic NTT, generic over the coefficient ring.
//
// This is the transform CoFHEE's NTT command executes: the 2n-th root psi
// is folded into the stage twiddles (one constant per butterfly block), so
// a single command performs the full negacyclic transform -- the ciphertext
// multiplication of Algorithm 3 then costs exactly 4 NTT + 4 Hadamard +
// 1 add + 3 iNTT commands, which is what the Table V / Fig. 6 latencies
// decompose into (see DESIGN.md Section 3).  The twiddle ROM holds the n
// bit-reverse-ordered psi powers; inverse twiddles are derived from the
// same table through the mirror identity psi^-e = -psi^(n-e) (paper
// Section VIII-B: "CoFHEE uses the same twiddle factors for both
// operations"), with the iNTT's DMA-assisted reorder pass doing the
// derivation on silicon.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "nt/barrett.hpp"
#include "nt/primes.hpp"
#include "poly/polynomial.hpp"

namespace cofhee::poly {

template <class Red, class T>
class MergedNtt {
 public:
  MergedNtt() = default;

  MergedNtt(const Red& red, std::size_t n, T psi) : red_(red), n_(n) {
    if (!nt::is_power_of_two(n) || n < 2)
      throw std::invalid_argument("MergedNtt: n must be 2^k, k >= 1");
    if (red.pow(psi, static_cast<T>(n)) != red.modulus() - 1)
      throw std::invalid_argument("MergedNtt: psi is not a primitive 2n-th root");
    const unsigned logn = nt::log2_exact(n);
    const T psi_inv = red.inv(psi);
    std::vector<T> pow(n), pow_inv(n);
    T p = 1, pi = 1;
    for (std::size_t i = 0; i < n; ++i) {
      pow[i] = p;
      pow_inv[i] = pi;
      p = red.mul(p, psi);
      pi = red.mul(pi, psi_inv);
    }
    tw_.resize(n);
    tw_inv_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      tw_[i] = pow[nt::bit_reverse(i, logn)];
      tw_inv_[i] = pow_inv[nt::bit_reverse(i, logn)];
    }
    n_inv_ = red.inv(static_cast<T>(n));
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] const Red& ring() const noexcept { return red_; }
  [[nodiscard]] T n_inv() const noexcept { return n_inv_; }
  /// The twiddle ROM image: psi^rev(i) -- what the host preloads into the
  /// chip's TW bank.
  [[nodiscard]] const std::vector<T>& twiddle_rom() const noexcept { return tw_; }
  [[nodiscard]] const std::vector<T>& inv_twiddles() const noexcept { return tw_inv_; }

  /// Forward negacyclic NTT (CT/DIT, natural in, bit-reversed out).
  void forward(Coeffs<T>& x) const {
    check(x);
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
      t >>= 1;
      for (std::size_t i = 0; i < m; ++i) {
        const T s = tw_[m + i];
        const std::size_t j1 = 2 * i * t;
        for (std::size_t j = j1; j < j1 + t; ++j) {
          const T u = x[j];
          const T v = red_.mul(x[j + t], s);
          x[j] = red_.add(u, v);
          x[j + t] = red_.sub(u, v);
        }
      }
    }
  }

  /// Inverse negacyclic NTT (GS/DIF, bit-reversed in, natural out), with
  /// the trailing n^-1 scaling.
  void inverse(Coeffs<T>& x) const {
    check(x);
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
      const std::size_t h = m >> 1;
      std::size_t j1 = 0;
      for (std::size_t i = 0; i < h; ++i) {
        const T s = tw_inv_[h + i];
        for (std::size_t j = j1; j < j1 + t; ++j) {
          const T u = x[j];
          const T v = x[j + t];
          x[j] = red_.add(u, v);
          x[j + t] = red_.mul(red_.sub(u, v), s);
        }
        j1 += 2 * t;
      }
      t <<= 1;
    }
    for (auto& c : x) c = red_.mul(c, n_inv_);
  }

  Coeffs<T> negacyclic_mul(const Coeffs<T>& a, const Coeffs<T>& b) const {
    Coeffs<T> ap(a), bp(b);
    forward(ap);
    forward(bp);
    Coeffs<T> y = pointwise_mul(red_, ap, bp);
    inverse(y);
    return y;
  }

 private:
  void check(const Coeffs<T>& x) const {
    if (x.size() != n_) throw std::invalid_argument("MergedNtt: wrong length");
  }

  Red red_{};
  std::size_t n_ = 0;
  T n_inv_{};
  std::vector<T> tw_, tw_inv_;
};

using MergedNtt128 = MergedNtt<nt::Barrett128, u128>;

/// The default host-side u64 tower engine: the merged transform above,
/// specialized for the 64-bit RNS towers with Shoup-precomputed twiddles,
/// Harvey lazy reduction through the butterfly stages (values ride in
/// [0, 4q) forward / [0, 2q) inverse; one canonicalization pass per
/// transform) and SIMD butterfly/pointwise kernels dispatched through
/// nt::simd.  The inverse transform's n^-1 scaling is fused into its
/// canonicalization pass, so each transform is exactly log2(n) butterfly
/// passes plus one reduction pass over the coefficients.
///
/// tensor() is the fused NTT -> pointwise -> INTT tower kernel behind
/// Bfv::multiply and CpuTensorKernel: one call transforms all four operand
/// towers and emits the three tensor components without materializing
/// intermediate RnsPoly waves.  NegacyclicNtt64 (poly/ntt.hpp) remains the
/// unfused scalar reference this engine is differentially tested against.
class MergedNtt64 {
 public:
  MergedNtt64() = default;
  MergedNtt64(const nt::Barrett64& red, std::size_t n, u64 psi);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] const nt::Barrett64& ring() const noexcept { return red_; }
  [[nodiscard]] u64 modulus() const noexcept { return red_.modulus(); }
  /// The twiddle ROM image (psi^rev(i)), identical to MergedNtt128's for
  /// the same ring -- what the host preloads into the chip's TW bank.
  [[nodiscard]] const std::vector<u64>& twiddle_rom() const noexcept { return tw_; }

  /// Forward negacyclic NTT (CT/DIT, natural in, bit-reversed out).
  /// Canonical residues in, canonical residues out.
  void forward(Coeffs<u64>& x) const;
  /// Inverse negacyclic NTT (GS/DIF, bit-reversed in, natural out) with the
  /// n^-1 scaling fused into the final canonicalization pass.
  void inverse(Coeffs<u64>& x) const;

  /// Fused negacyclic product of two towers.
  [[nodiscard]] Coeffs<u64> negacyclic_mul(const Coeffs<u64>& a,
                                           const Coeffs<u64>& b) const;

  /// Fused BFV tensor for one tower: y0 = a0*b0, y1 = a0*b1 + a1*b0,
  /// y2 = a1*b1 (negacyclic products), computed with 4 forward transforms,
  /// 4 pointwise kernels and 3 inverse transforms in one pass structure.
  void tensor(const Coeffs<u64>& a0, const Coeffs<u64>& a1,
              const Coeffs<u64>& b0, const Coeffs<u64>& b1, Coeffs<u64>& y0,
              Coeffs<u64>& y1, Coeffs<u64>& y2) const;

 private:
  void check(const Coeffs<u64>& x) const {
    if (x.size() != n_) throw std::invalid_argument("MergedNtt64: wrong length");
  }

  nt::Barrett64 red_{};
  std::size_t n_ = 0;
  u64 n_inv_ = 0, n_inv_shoup_ = 0;
  std::vector<u64> tw_, tw_shoup_;          // psi^rev(i) + Shoup companions
  std::vector<u64> tw_inv_, tw_inv_shoup_;  // psi^-rev(i) + Shoup companions
};

}  // namespace cofhee::poly
