#include "poly/ntt.hpp"

namespace cofhee::poly {

NegacyclicNtt64::NegacyclicNtt64(const nt::Barrett64& red, std::size_t n, u64 psi)
    : red_(red), n_(n) {
  if (!nt::is_power_of_two(n) || n < 2)
    throw std::invalid_argument("NegacyclicNtt64: n must be 2^k, k >= 1");
  if (red.pow(psi, static_cast<u64>(n)) != red.modulus() - 1)
    throw std::invalid_argument("NegacyclicNtt64: psi is not a primitive 2n-th root");
  const u64 q = red.modulus();
  const u64 psi_inv = red.inv(psi);
  const unsigned logn = nt::log2_exact(n);

  std::vector<u64> pow(n), pow_inv(n);
  u64 p = 1, pi = 1;
  for (std::size_t i = 0; i < n; ++i) {
    pow[i] = p;
    pow_inv[i] = pi;
    p = red.mul(p, psi);
    pi = red.mul(pi, psi_inv);
  }
  psi_br_.resize(n);
  psi_inv_br_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    psi_br_[i] = nt::ShoupMul(pow[nt::bit_reverse(i, logn)], q);
    psi_inv_br_[i] = nt::ShoupMul(pow_inv[nt::bit_reverse(i, logn)], q);
  }
  n_inv_ = nt::ShoupMul(red.inv(static_cast<u64>(n)), q);
}

void NegacyclicNtt64::forward(Coeffs<u64>& x) const {
  if (x.size() != n_) throw std::invalid_argument("NegacyclicNtt64: wrong length");
  const u64 q = red_.modulus();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& s = psi_br_[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = x[j];
        const u64 v = s.mul(x[j + t]);
        x[j] = u + v >= q ? u + v - q : u + v;
        x[j + t] = u >= v ? u - v : u + q - v;
      }
    }
  }
}

void NegacyclicNtt64::inverse(Coeffs<u64>& x) const {
  if (x.size() != n_) throw std::invalid_argument("NegacyclicNtt64: wrong length");
  const u64 q = red_.modulus();
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      const auto& s = psi_inv_br_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = x[j];
        const u64 v = x[j + t];
        const u64 sum = u + v;
        x[j] = sum >= q ? sum - q : sum;
        x[j + t] = s.mul(u >= v ? u - v : u + q - v);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& c : x) c = n_inv_.mul(c);
}

Coeffs<u64> NegacyclicNtt64::negacyclic_mul(const Coeffs<u64>& a,
                                            const Coeffs<u64>& b) const {
  Coeffs<u64> ap(a), bp(b);
  forward(ap);
  forward(bp);
  Coeffs<u64> y = pointwise_mul(red_, ap, bp);
  inverse(y);
  return y;
}

}  // namespace cofhee::poly
