#include "poly/rns.hpp"

#include "backend/exec_policy.hpp"

namespace cofhee::poly {

RnsBasis::RnsBasis(const std::vector<u64>& moduli) {
  if (moduli.empty()) throw std::invalid_argument("RnsBasis: empty modulus set");
  mods_.reserve(moduli.size());
  for (u64 q : moduli) mods_.emplace_back(q);
  // Pairwise coprimality check (towers are primes in practice, but the CRT
  // below silently mis-reconstructs if this is violated).
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < moduli.size(); ++j) {
      u64 a = moduli[i], b = moduli[j];
      while (b != 0) {
        const u64 t = a % b;
        a = b;
        b = t;
      }
      if (a != 1) throw std::invalid_argument("RnsBasis: moduli not coprime");
    }
  }
  big_q_ = BigInt(u64{1});
  for (u64 q : moduli) {
    u64 carry = 0;
    big_q_ = big_q_.mul_small(q, &carry);
    if (carry != 0) throw std::overflow_error("RnsBasis: product exceeds 512 bits");
  }
  q_hat_.resize(moduli.size());
  q_hat_inv_.resize(moduli.size());
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    q_hat_[i] = (big_q_ / nt::WideInt<1>(moduli[i])).resize_trunc<8>();
    const u64 qhat_mod = q_hat_[i].mod_u64(moduli[i]);
    q_hat_inv_[i] = mods_[i].inv(qhat_mod);
  }
}

std::vector<u64> RnsBasis::decompose(const BigInt& x) const {
  std::vector<u64> r(mods_.size());
  for (std::size_t i = 0; i < mods_.size(); ++i) r[i] = x.mod_u64(mods_[i].modulus());
  return r;
}

BigInt RnsBasis::reconstruct(std::span<const u64> residues) const {
  if (residues.size() != mods_.size())
    throw std::invalid_argument("RnsBasis::reconstruct: residue count mismatch");
  BigInt acc{};
  for (std::size_t i = 0; i < mods_.size(); ++i) {
    const u64 s = mods_[i].mul(residues[i] % mods_[i].modulus(), q_hat_inv_[i]);
    // term = Qhat_i * s < Q, so a conditional subtract keeps acc < Q.
    BigInt term = q_hat_[i].mul_small(s);
    acc += term;
    if (acc >= big_q_) acc -= big_q_;
  }
  return acc;
}

std::pair<BigInt, bool> RnsBasis::reconstruct_centered(
    std::span<const u64> residues) const {
  BigInt v = reconstruct(residues);
  const BigInt half = big_q_ >> 1;
  if (v > half) return {big_q_ - v, true};
  return {v, false};
}

RnsPoly rns_decompose(const RnsBasis& basis, const std::vector<BigInt>& coeffs) {
  return rns_decompose(basis, coeffs, backend::Executor{});
}

std::vector<BigInt> rns_reconstruct(const RnsBasis& basis, const RnsPoly& p) {
  return rns_reconstruct(basis, p, backend::Executor{});
}

RnsPoly rns_base_convert(const RnsBasis& from, const RnsBasis& to, const RnsPoly& p) {
  return rns_base_convert(from, to, p, backend::Executor{});
}

RnsPoly rns_decompose(const RnsBasis& basis, const std::vector<BigInt>& coeffs,
                      const backend::Executor& exec) {
  RnsPoly p;
  p.towers.assign(basis.size(), Coeffs<u64>(coeffs.size()));
  exec.for_ranges(coeffs.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < basis.size(); ++i)
        p.towers[i][j] = coeffs[j].mod_u64(basis.modulus(i));
    }
  });
  return p;
}

std::vector<BigInt> rns_reconstruct(const RnsBasis& basis, const RnsPoly& p,
                                    const backend::Executor& exec) {
  if (p.num_towers() != basis.size())
    throw std::invalid_argument("rns_reconstruct: tower count mismatch");
  const std::size_t n = p.n();
  std::vector<BigInt> coeffs(n);
  exec.for_ranges(n, [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> res(basis.size());
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < basis.size(); ++i) res[i] = p.towers[i][j];
      coeffs[j] = basis.reconstruct(res);
    }
  });
  return coeffs;
}

RnsPoly rns_base_convert(const RnsBasis& from, const RnsBasis& to, const RnsPoly& p,
                         const backend::Executor& exec) {
  if (p.num_towers() != from.size())
    throw std::invalid_argument("rns_base_convert: tower count mismatch");
  const std::size_t n = p.n();
  RnsPoly out;
  out.towers.assign(to.size(), Coeffs<u64>(n));
  exec.for_ranges(n, [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> res(from.size());
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < from.size(); ++i) res[i] = p.towers[i][j];
      const BigInt x = from.reconstruct(res);
      for (std::size_t i = 0; i < to.size(); ++i)
        out.towers[i][j] = x.mod_u64(to.modulus(i));
    }
  });
  return out;
}

}  // namespace cofhee::poly
