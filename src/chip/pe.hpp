// Processing Element (paper Section III-E).
//
// One pipelined 128-bit Barrett modular multiplier plus modular adder and
// subtractor, muxed into four modes: modular multiply, modular add, modular
// subtract, and the radix-2 butterfly (multiply feeding add+sub).  Multiply
// has a 5-cycle latency with II = 1; add/sub are single-cycle.  The PE is
// purely functional here -- cycle accounting lives in the MDMC, which knows
// the memory schedule -- but it owns the Barrett reducer programmed from
// the Q/BARRETTCTL registers and counts every operation it performs.
#pragma once

#include <cstdint>

#include "chip/config.hpp"
#include "nt/barrett.hpp"

namespace cofhee::chip {

using u128 = unsigned __int128;

enum class PeMode : std::uint8_t {
  kModMul = 0,
  kModAdd = 1,
  kModSub = 2,
  kButterfly = 3,
};

struct PeCounters {
  std::uint64_t mults = 0;
  std::uint64_t adds = 0;
  std::uint64_t subs = 0;
  std::uint64_t butterflies = 0;
};

class Pe {
 public:
  explicit Pe(const ChipConfig& cfg) : cfg_(cfg) {}

  /// Program the multiplier's modulus (host writes Q + BARRETTCTL*).
  void set_modulus(u128 q) { red_ = nt::Barrett128(q); }
  [[nodiscard]] u128 modulus() const noexcept { return red_.modulus(); }
  [[nodiscard]] const nt::Barrett128& ring() const noexcept { return red_; }

  [[nodiscard]] u128 mod_mul(u128 a, u128 b) {
    ++counters_.mults;
    return red_.mul(a, b);
  }
  [[nodiscard]] u128 mod_add(u128 a, u128 b) {
    ++counters_.adds;
    return red_.add(a, b);
  }
  [[nodiscard]] u128 mod_sub(u128 a, u128 b) {
    ++counters_.subs;
    return red_.sub(a, b);
  }
  /// Plain (non-modular) multiply, low 128 bits -- the PMUL command.
  [[nodiscard]] u128 mul_plain(u128 a, u128 b) {
    ++counters_.mults;
    return a * b;
  }

  /// Radix-2 Cooley-Tukey butterfly: (u + w*v, u - w*v).
  struct BflyOut {
    u128 lo, hi;
  };
  [[nodiscard]] BflyOut butterfly_ct(u128 u, u128 v, u128 w) {
    ++counters_.butterflies;
    const u128 m = mod_mul(v, w);
    return {mod_add(u, m), mod_sub(u, m)};
  }
  /// Radix-2 Gentleman-Sande butterfly: (u + v, (u - v)*w).
  [[nodiscard]] BflyOut butterfly_gs(u128 u, u128 v, u128 w) {
    ++counters_.butterflies;
    return {mod_add(u, v), mod_mul(mod_sub(u, v), w)};
  }

  /// Latency (cycles) until the first result of an operation emerges; all
  /// modes sustain II = 1 afterwards (Section III-E).
  [[nodiscard]] unsigned latency(PeMode m) const noexcept {
    switch (m) {
      case PeMode::kModAdd:
      case PeMode::kModSub:
        return cfg_.addsub_latency;
      case PeMode::kModMul:
        return cfg_.mult_latency;
      case PeMode::kButterfly:
        return cfg_.mult_latency + cfg_.addsub_latency;
    }
    return cfg_.mult_latency;
  }

  [[nodiscard]] const PeCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = {}; }

 private:
  ChipConfig cfg_;
  nt::Barrett128 red_{u128{3}};
  PeCounters counters_;
};

}  // namespace cofhee::chip
