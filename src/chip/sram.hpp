// SRAM bank models.
//
// The silicon's 68 memory macros group into 8 logical coefficient-wide data
// banks (3 dual-port + 4 single-port polynomial banks + 1 single-port
// twiddle bank) plus the CM0 SRAM (paper Sections III-A and V-A).  The
// model stores one 128-bit coefficient per word, tracks per-port access
// counts (feeding the power model and the port-conflict checks), and
// enforces the structural property the architecture is built around:
// a dual-port bank sustains two accesses per cycle, a single-port bank one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "chip/config.hpp"

namespace cofhee::chip {

using u128 = unsigned __int128;

class Sram {
 public:
  Sram() = default;
  Sram(std::string name, std::size_t words, unsigned ports, unsigned read_latency)
      : name_(std::move(name)), ports_(ports), read_latency_(read_latency),
        data_(words, 0) {
    if (ports != 1 && ports != 2)
      throw std::invalid_argument("Sram: ports must be 1 or 2");
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t words() const noexcept { return data_.size(); }
  [[nodiscard]] unsigned ports() const noexcept { return ports_; }
  [[nodiscard]] bool dual_port() const noexcept { return ports_ == 2; }
  [[nodiscard]] unsigned read_latency() const noexcept { return read_latency_; }

  [[nodiscard]] u128 read(std::size_t addr) {
    bounds(addr);
    ++reads_;
    return data_[addr];
  }

  void write(std::size_t addr, u128 value) {
    bounds(addr);
    ++writes_;
    data_[addr] = value;
  }

  /// Peek/poke without access accounting (testbench/host backdoor, the
  /// moral equivalent of simulator memory preload).
  [[nodiscard]] u128 peek(std::size_t addr) const {
    bounds(addr);
    return data_[addr];
  }
  void poke(std::size_t addr, u128 value) {
    bounds(addr);
    data_[addr] = value;
  }

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  void reset_counters() noexcept { reads_ = writes_ = 0; }

  /// Maximum word transfers this bank supports per cycle.
  [[nodiscard]] unsigned accesses_per_cycle() const noexcept { return ports_; }

 private:
  void bounds(std::size_t addr) const {
    if (addr >= data_.size())
      throw std::out_of_range("Sram " + name_ + ": address out of range");
  }

  std::string name_;
  unsigned ports_ = 1;
  unsigned read_latency_ = 2;
  std::vector<u128> data_;
  std::uint64_t reads_ = 0, writes_ = 0;
};

/// The full data-memory complement of the chip.
class MemorySystem {
 public:
  explicit MemorySystem(const ChipConfig& cfg);

  [[nodiscard]] Sram& bank(Bank b) { return banks_.at(static_cast<std::size_t>(b)); }
  [[nodiscard]] const Sram& bank(Bank b) const {
    return banks_.at(static_cast<std::size_t>(b));
  }
  [[nodiscard]] std::size_t num_banks() const noexcept { return banks_.size(); }

  /// Aggregate data-memory capacity in bytes (polynomial + twiddle banks).
  [[nodiscard]] std::size_t total_bytes() const;

 private:
  std::vector<Sram> banks_;
};

}  // namespace cofhee::chip
