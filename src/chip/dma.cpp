#include "chip/dma.hpp"

#include <stdexcept>

#include "nt/primes.hpp"

namespace cofhee::chip {

void Dma::move(const MemRef& src, const MemRef& dst, std::size_t len,
               bool bit_reverse) {
  Sram& s = mem_.bank(src.bank);
  Sram& d = mem_.bank(dst.bank);
  if (bit_reverse && !nt::is_power_of_two(len))
    throw std::invalid_argument("Dma: bit-reverse transfer needs power-of-two length");
  const unsigned logl = bit_reverse ? nt::log2_exact(len) : 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t di = bit_reverse ? nt::bit_reverse(i, logl) : i;
    d.write(dst.offset + di, s.read(src.offset + i));
  }
  ++stats_.transfers;
  stats_.words_moved += len;
}

std::uint64_t Dma::transfer(const MemRef& src, const MemRef& dst, std::size_t len,
                            bool bit_reverse) {
  move(src, dst, len, bit_reverse);
  const std::uint64_t cycles = burst_cycles(len);
  stats_.cycles_blocking += cycles;
  PowerSegment seg;
  seg.cycles = cycles;
  seg.dma_words = cycles;  // one 8-word burst per cycle
  seg.label = "dma-transfer";
  trace_.append(seg);
  return cycles;
}

std::uint64_t Dma::background_transfer(const MemRef& src, const MemRef& dst,
                                       std::size_t len,
                                       std::uint64_t window_cycles) {
  move(src, dst, len, /*bit_reverse=*/false);
  const std::uint64_t cycles = burst_cycles(len);
  if (!cfg_.dma_background) {
    stats_.cycles_blocking += cycles;
    PowerSegment seg;
    seg.cycles = cycles;
    seg.dma_words = cycles;
    seg.label = "dma-foreground";
    trace_.append(seg);
    return cycles;
  }
  const std::uint64_t hidden = cycles < window_cycles ? cycles : window_cycles;
  stats_.cycles_hidden += hidden;
  const std::uint64_t residue = cycles - hidden;
  if (residue > 0) {
    stats_.cycles_blocking += residue;
    PowerSegment seg;
    seg.cycles = residue;
    seg.dma_words = residue;
    seg.label = "dma-residue";
    trace_.append(seg);
  }
  return residue;
}

}  // namespace cofhee::chip
