// Structural parameters of the fabricated CoFHEE SoC (paper Section III)
// plus the cycle-model constants calibrated against the silicon
// measurements of Table V (see DESIGN.md "Cycle-model calibration").
#pragma once

#include <cstdint>
#include <cstddef>

namespace cofhee::chip {

/// Memory map (ARM Cortex-M series convention, Section III-A/III-G1).
struct MemoryMap {
  static constexpr std::uint32_t kCm0SramBase = 0x0000'0000;   // code + data
  static constexpr std::uint32_t kDataSramBase = 0x2000'0000;  // poly banks
  static constexpr std::uint32_t kBankStride = 0x0010'0000;    // per bank
  /// Dual-port banks expose their second port as a distinct address space
  /// (paper Section III-A: "assigning different base addresses to each
  /// port, treating them as two distinct address spaces at the bus level").
  static constexpr std::uint32_t kPortBOffset = 0x0008'0000;
  static constexpr std::uint32_t kGpcfgBase = 0x4002'0000;     // Table II
  static constexpr std::uint32_t kGpcfgLimit = 0x4002'FFFF;
};

/// Data-memory bank identifiers.  The silicon instantiates 3 logical
/// dual-port banks (48 16-bit x 2096 macros), 4 single-port polynomial
/// banks plus the twiddle bank (16x 32-bit x 8192 and 4x 32-bit x 4096
/// macros), and the CM0's own SRAM -- 68 macro instances total
/// (Section V-A).  The logical view below groups macros into
/// coefficient-wide banks.
enum class Bank : std::uint8_t {
  kDp0 = 0,  // dual-port, NTT ping
  kDp1 = 1,  // dual-port, NTT pong
  kDp2 = 2,  // dual-port, DMA staging buffer (Section III-F)
  kSp0 = 3,  // single-port polynomial storage
  kSp1 = 4,
  kSp2 = 5,
  kSp3 = 6,
  kTw = 7,   // single-port twiddle storage
};
inline constexpr std::size_t kNumBanks = 8;
inline constexpr std::size_t kNumDualPort = 3;

struct ChipConfig {
  // --- Architecture (Section III) ---
  unsigned log2_max_n = 14;      // native degree limit
  unsigned log2_opt_n = 13;      // the degree the design is optimized for
  unsigned coeff_bits = 128;     // native coefficient width
  std::size_t bank_words = 1u << 14;  // coefficients per logical data bank
  std::size_t cm0_sram_bytes = 32 * 1024;
  std::size_t cmd_fifo_depth = 32;    // Section III-I
  double freq_mhz = 250.0;            // memory-read limited (Section III-D)

  // --- PE pipeline (Section III-E) ---
  unsigned mult_latency = 5;     // Barrett multiplier pipeline depth, II=1
  unsigned addsub_latency = 1;
  unsigned mem_read_latency = 2; // ~3.1 ns read path at 4 ns cycle

  // --- Calibrated cycle-model constants (DESIGN.md Section 3) ---
  // Per-NTT-stage overhead: address-unit reconfiguration plus pipeline
  // fill/drain.  NTT(n) = (n/2)log2(n) + stage_overhead*log2(n) + 1.
  unsigned stage_overhead = 22;
  // Pointwise-op pipeline fill; op(n) = n + pointwise_fill + 1.
  unsigned pointwise_fill = 19;
  // DMA-assisted passes (twiddle mirror reorder in iNTT, staging in
  // composed ops) move dma_words_per_cycle coefficients per cycle.
  unsigned dma_words_per_cycle = 8;
  unsigned cmd_issue_cycles = 1;

  // --- Scalability knobs (Section VIII-A; defaults = fabricated chip) ---
  unsigned num_pe = 1;
  unsigned butterfly_radix = 2;
  bool dual_port_compute = true;  // false models II=2 single-port NTT
  bool dma_background = true;     // Section III-F overlap on/off

  [[nodiscard]] double cycle_ns() const noexcept { return 1e3 / freq_mhz; }
  [[nodiscard]] std::size_t max_n() const noexcept {
    return std::size_t{1} << log2_max_n;
  }
};

/// Per-event energies in picojoules, fitted to the silicon power
/// measurements of Table V (GF55 LPE, 1.2 V core).  See DESIGN.md; the
/// power-model test asserts the fit stays within 10% of every Table V row.
struct EnergyTable {
  double static_pj_per_cycle = 12.0;  // clock tree + leakage + control
  double mult_fwd_pj = 48.5;          // 128-bit Barrett multiply (CT dataflow)
  double mult_inv_pj = 29.5;          // same unit, GS dataflow (lower toggling)
  double add_pj = 3.0;
  double sub_pj = 3.0;
  double sram_read_pj = 6.0;          // per 128-bit access
  double sram_write_pj = 6.0;
  double twiddle_read_pj = 6.0;
  double dma_word_pj = 20.0;          // read+write beat of a staged word
  double dma_concurrent_pj = 25.1;    // background staging during compute
};

}  // namespace cofhee::chip
