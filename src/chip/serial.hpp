// Host interfaces: UART (8N1) and SPI mode 0 (paper Sections III-H, V-F).
//
// These are transaction-level transport models: they carry the register
// read/write framing the host driver uses (1 command byte + 4 address bytes
// + 4 data bytes per 32-bit access) and account wall-clock time from the
// line rate -- UART at a programmable baud (the silicon bring-up used an
// FTDI USB-UART at 3 Mbaud), SPI at up to 50 MHz (Section III-K's interface
// timing constraint).  The paper's points about execution mode 1 being slow
// and n >= 2^14 needing host round-trips (Section VIII-A) fall out of these
// byte counts.
// Fault injection: when a FaultInjector is attached (ChipSpec::faults via
// the service's ChipFarm), every transaction -- one register access or one
// burst frame -- consults it first.  A faulted transaction throws the typed
// error (chip/fault.hpp) before any byte moves, so SRAM is never silently
// corrupted; a sub-timeout stall simply accounts extra line seconds, which
// the service's measured per-chip costs then observe.
#pragma once

#include <cstdint>

#include "chip/ahb.hpp"
#include "chip/fault.hpp"

namespace cofhee::chip {

struct LinkStats {
  std::uint64_t bytes_tx = 0;      // host -> chip
  std::uint64_t bytes_rx = 0;      // chip -> host
  std::uint64_t transactions = 0;  // framed transactions (any kind)
  double seconds = 0.0;
};

/// Common register-access framing over a byte pipe.
class SerialLink {
 public:
  SerialLink(AhbBus& bus, BusMaster master, double bytes_per_second)
      : bus_(bus), master_(master), bps_(bytes_per_second) {}
  virtual ~SerialLink() = default;

  /// Host-side 32-bit register/memory write: 9 bytes on the wire.
  void host_write32(std::uint32_t addr, std::uint32_t value) {
    pre_transaction();
    ++stats_.transactions;
    account_tx(9);
    bus_.write32(master_, addr, value);
  }

  /// Host-side 32-bit read: 5 bytes out, 4 bytes back.
  [[nodiscard]] std::uint32_t host_read32(std::uint32_t addr) {
    pre_transaction();
    ++stats_.transactions;
    account_tx(5);
    account_rx(4);
    return bus_.read32(master_, addr);
  }

  /// Bulk payload write (burst framing: 1 cmd + 4 addr + 4 len + payload).
  /// Words land at consecutive word addresses in bus order, so a burst over
  /// a register window is byte-identical in effect to the equivalent
  /// sequence of host_write32 calls -- just one framed transaction instead
  /// of `count`, and 9 + 4*count wire bytes instead of 9*count.  This is
  /// the frame the driver's batched register writes coalesce into.
  void host_write_burst(std::uint32_t addr, const std::uint32_t* words,
                        std::size_t count) {
    pre_transaction();
    ++stats_.transactions;
    account_tx(9 + count * 4);
    for (std::size_t i = 0; i < count; ++i)
      bus_.write32(master_, addr + static_cast<std::uint32_t>(i) * 4, words[i]);
  }

  void host_read_burst(std::uint32_t addr, std::uint32_t* words, std::size_t count) {
    pre_transaction();
    ++stats_.transactions;
    account_tx(9);
    account_rx(count * 4);
    for (std::size_t i = 0; i < count; ++i)
      words[i] = bus_.read32(master_, addr + static_cast<std::uint32_t>(i) * 4);
  }

  /// Compressed-upload frame (seed/delta key compression): the host ships a
  /// compact descriptor -- 1 cmd + 4 addr + 8 seed + 4 len = 17 bytes --
  /// and the chip's sequencer expands it into SRAM locally.  Only the
  /// accounting half lives here (the frame consults the fault injector and
  /// pays line time like any transaction); the caller performs the chip-side
  /// expansion and charges its cycles.
  void host_write_seed_frame(std::uint32_t addr, std::uint64_t seed) {
    (void)addr;
    (void)seed;
    pre_transaction();
    ++stats_.transactions;
    account_tx(17);
  }

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] double bytes_per_second() const noexcept { return bps_; }

  /// Attach (or detach, with nullptr) a fault injector; every transaction
  /// consults it before moving bytes.  Not owned; the caller keeps it alive
  /// for the link's lifetime (ChipFarm owns both).
  void set_fault_injector(FaultInjector* f) noexcept { fault_ = f; }

 protected:
  /// Fault hook: throws the typed fault (frame rejected, nothing moved) or
  /// charges injected stall time to the line clock.
  void pre_transaction() {
    if (fault_ == nullptr) return;
    const double stall = fault_->on_transaction();
    if (stall > 0) stats_.seconds += stall;
  }

  void account_tx(std::size_t bytes) {
    stats_.bytes_tx += bytes;
    stats_.seconds += static_cast<double>(bytes) / bps_;
  }
  void account_rx(std::size_t bytes) {
    stats_.bytes_rx += bytes;
    stats_.seconds += static_cast<double>(bytes) / bps_;
  }

 private:
  AhbBus& bus_;
  BusMaster master_;
  double bps_;
  LinkStats stats_;
  FaultInjector* fault_ = nullptr;
};

/// UART 8N1: 10 line bits per byte.
class Uart : public SerialLink {
 public:
  Uart(AhbBus& bus, double baud)
      : SerialLink(bus, BusMaster::kHostUart, baud / 10.0), baud_(baud) {}
  [[nodiscard]] double baud() const noexcept { return baud_; }

 private:
  double baud_;
};

/// SPI mode 0: 8 clocks per byte, full duplex (we model half-duplex use).
class Spi : public SerialLink {
 public:
  Spi(AhbBus& bus, double clock_hz)
      : SerialLink(bus, BusMaster::kHostSpi, clock_hz / 8.0), clock_hz_(clock_hz) {}
  [[nodiscard]] double clock_hz() const noexcept { return clock_hz_; }

 private:
  double clock_hz_;
};

}  // namespace cofhee::chip
