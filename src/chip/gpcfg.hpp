// General Purpose Configuration registers (paper Table II).
//
// 35 memory-mapped 32-bit registers at 0x4002_0000 - 0x4002_FFFF, with the
// wide ring parameters (Q 128 bits, BARRETTCTL2 160 bits) spanning multiple
// words.  The host programs Q/N/INV_POLYDEG/BARRETTCTL* once per modulus;
// the MDMC reads them on every command.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "chip/config.hpp"
#include "nt/barrett.hpp"

namespace cofhee::chip {

using u128 = unsigned __int128;

/// Word offsets from MemoryMap::kGpcfgBase.
enum class Reg : std::uint32_t {
  kSignature = 0x00,       // RO chip ID
  kFheCtl1 = 0x04,         // command-FIFO select + log2(n)
  kFheCtl2 = 0x08,         // command trigger bits
  kFheCtl3 = 0x0C,         // PLL select / bypass
  kPllCtl = 0x10,
  kCommandFifo0 = 0x14,    // 4-word command window ...
  kCommandFifo1 = 0x18,
  kCommandFifo2 = 0x1C,
  kCommandFifo3 = 0x20,    // write here pushes the 4-word command
  kDbgReg = 0x24,
  kUartMBaudCtl = 0x28,
  kUartSBaudCtl = 0x2C,
  kUartMCtl = 0x30,
  kUartSCtl = 0x34,
  kUartMTxPadCtl = 0x38,
  kUartMRxPadCtl = 0x3C,
  kUartSTxPadCtl = 0x40,
  kSpiMosiPadCtl = 0x44,
  kSpiMisoPadCtl = 0x48,
  kSpiClkPadCtl = 0x4C,
  kSpiCsnPadCtl = 0x50,
  kHostIrqPadCtl = 0x54,
  kQ0 = 0x60,              // modulus q, 128 bits over 4 words
  kQ1 = 0x64,
  kQ2 = 0x68,
  kQ3 = 0x6C,
  kN0 = 0x70,              // polynomial degree (word 0 used)
  kInvPolyDeg0 = 0x80,     // n^-1 mod q, 128 bits over 4 words
  kInvPolyDeg1 = 0x84,
  kInvPolyDeg2 = 0x88,
  kInvPolyDeg3 = 0x8C,
  kBarrettCtl1 = 0x90,     // shift amount k_b
  kBarrettCtl2_0 = 0x94,   // mu = 2^k_b / q, 160 bits over 5 words
  kBarrettCtl2_1 = 0x98,
  kBarrettCtl2_2 = 0x9C,
  kBarrettCtl2_3 = 0xA0,
  kBarrettCtl2_4 = 0xA4,
  kCModConst0 = 0xA8,      // CMODMUL constant, 128 bits over 4 words
  kCModConst1 = 0xAC,
  kCModConst2 = 0xB0,
  kCModConst3 = 0xB4,
  kIrqStatus = 0xB8,       // bit0: FIFO empty, bit1: op done
};

inline constexpr std::uint32_t kSignatureValue = 0xC0F4EE01;

/// The BARRETTCTL register image host software derives alongside Q
/// (Table II): shift amount k_b and the 160-bit mu split into 5 words.
/// Shared by Gpcfg::set_q (backdoor) and the host driver's timed
/// register-programming path so the two flows cannot diverge.
struct BarrettCtlWords {
  std::uint32_t ctl1;                  // k_b
  std::array<std::uint32_t, 5> ctl2;   // mu, little-endian words
};

inline BarrettCtlWords barrett_ctl_words(u128 q) {
  const nt::Barrett128 br(q);
  BarrettCtlWords w{2 * br.k(), {}};
  const auto mu = br.mu();
  for (std::size_t i = 0; i < w.ctl2.size(); ++i)
    w.ctl2[i] = static_cast<std::uint32_t>(mu.limb[(i * 32) / 64] >> ((i * 32) % 64));
  return w;
}

/// IRQ status bits.
inline constexpr std::uint32_t kIrqFifoEmpty = 1u << 0;
inline constexpr std::uint32_t kIrqOpDone = 1u << 1;

class Gpcfg {
 public:
  Gpcfg();

  /// 32-bit bus access by word offset (must be 4-byte aligned, < 0x100).
  [[nodiscard]] std::uint32_t read_word(std::uint32_t offset) const;
  void write_word(std::uint32_t offset, std::uint32_t value);

  [[nodiscard]] std::uint32_t read(Reg r) const {
    return read_word(static_cast<std::uint32_t>(r));
  }
  void write(Reg r, std::uint32_t v) { write_word(static_cast<std::uint32_t>(r), v); }

  // Typed views over the wide registers.
  [[nodiscard]] u128 q() const { return read_u128(Reg::kQ0); }
  void set_q(u128 q);
  [[nodiscard]] std::size_t n() const { return std::size_t{1} << read(Reg::kFheCtl1); }
  void set_n(std::size_t n);
  [[nodiscard]] u128 inv_polydeg() const { return read_u128(Reg::kInvPolyDeg0); }
  void set_inv_polydeg(u128 v) { write_u128(Reg::kInvPolyDeg0, v); }
  [[nodiscard]] u128 cmod_const() const { return read_u128(Reg::kCModConst0); }
  void set_cmod_const(u128 v) { write_u128(Reg::kCModConst0, v); }

  /// Monotone counter bumped on every Q write; the MDMC uses it to know
  /// when to rebuild its Barrett reducer.
  [[nodiscard]] std::uint64_t q_version() const noexcept { return q_version_; }

  void raise_irq(std::uint32_t bits) { regs_[idx(Reg::kIrqStatus)] |= bits; }
  void clear_irq(std::uint32_t bits) { regs_[idx(Reg::kIrqStatus)] &= ~bits; }
  [[nodiscard]] bool irq_pending(std::uint32_t bits) const {
    return (regs_[idx(Reg::kIrqStatus)] & bits) != 0;
  }

  /// Callback hook: the chip wires this to the command FIFO so that writing
  /// kCommandFifo3 pushes the staged 4-word command.
  std::function<void(const std::array<std::uint32_t, 4>&)> on_command_push;

 private:
  static std::size_t idx(Reg r) { return static_cast<std::uint32_t>(r) / 4; }
  [[nodiscard]] u128 read_u128(Reg base) const;
  void write_u128(Reg base, u128 v);

  std::array<std::uint32_t, 64> regs_{};
  std::uint64_t q_version_ = 0;
};

}  // namespace cofhee::chip
