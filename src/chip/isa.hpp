// CoFHEE's instruction set (paper Table I).
//
// Each command names its operand/result memories by bank + word offset and
// carries the vector length delta.  Ring parameters (q, n, n^-1, Barrett
// constants) live in the configuration registers (Table II), not in the
// instruction -- matching the silicon, where the host programs Q/N/
// INV_POLYDEG/BARRETTCTL* once per modulus and then streams commands.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "chip/config.hpp"

namespace cofhee::chip {

enum class Opcode : std::uint8_t {
  kNtt = 0x1,       // NTT on [x]
  kIntt = 0x2,      // inverse NTT on [x] (uses INV_POLYDEG)
  kPModAdd = 0x3,   // [dst] = [x] + [y] mod q
  kPModMul = 0x4,   // [dst] = [x] .* [y] mod q (Hadamard)
  kPModSqr = 0x5,   // [dst] = [x] .* [x] mod q
  kPModSub = 0x6,   // [dst] = [x] - [y] mod q
  kCModMul = 0x7,   // [dst] = [x] * constant mod q
  kPMul = 0x8,      // [dst] = [x] .* [y]  (plain, low 128 bits)
  kMemCpy = 0x9,    // [dst] = [src]
  kMemCpyR = 0xA,   // [dst] = bit-reverse([src])
};

[[nodiscard]] std::string_view opcode_name(Opcode op);

/// Word-granular operand reference: bank plus coefficient offset.
struct MemRef {
  Bank bank = Bank::kDp0;
  std::uint32_t offset = 0;  // in 128-bit words

  bool operator==(const MemRef&) const = default;
};

struct Instr {
  Opcode op = Opcode::kNtt;
  MemRef x{};           // first operand (also NTT in/out)
  MemRef y{};           // second operand (pointwise ops)
  MemRef dst{};         // destination
  std::uint32_t len = 0;          // delta: vector length in words
  unsigned __int128 constant = 0; // CMODMUL constant (from GPCFG in silicon)

  bool operator==(const Instr&) const = default;
};

/// On-the-wire encoding used by the command FIFO: four 32-bit words
/// (opcode/banks packed, x/y/dst offsets, length).  The CMODMUL constant is
/// sourced from a configuration register pair, so it is not encoded.
using EncodedInstr = std::array<std::uint32_t, 4>;

[[nodiscard]] EncodedInstr encode(const Instr& in);
[[nodiscard]] Instr decode(const EncodedInstr& words);

/// True for opcodes that execute on the PE datapath (as opposed to the
/// memory-to-memory commands, which run on the DMA path and may overlap
/// compute -- Section III-B).
[[nodiscard]] bool is_compute_op(Opcode op);

}  // namespace cofhee::chip
