// Command FIFO (paper Section III-I, execution mode 2).
//
// A 32-deep queue of encoded commands.  The host preloads a sequence, the
// FIFO dispatches one command at a time to the MDMC in order ("guarantees
// the execution of a single command at a time in a predefined order ...
// avoids complicated out-of-order executions"), and the chip raises the
// queue-empty interrupt when the last command finishes.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

#include "chip/config.hpp"
#include "chip/gpcfg.hpp"
#include "chip/isa.hpp"
#include "chip/mdmc.hpp"

namespace cofhee::chip {

class CmdFifo {
 public:
  CmdFifo(const ChipConfig& cfg, Mdmc& mdmc, Gpcfg& gpcfg)
      : depth_(cfg.cmd_fifo_depth), mdmc_(mdmc), gpcfg_(gpcfg) {}

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] bool full() const noexcept { return q_.size() >= depth_; }
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }

  void push(const Instr& in) {
    if (full()) throw std::overflow_error("CmdFifo: queue full (depth 32)");
    q_.push_back(in);
    gpcfg_.clear_irq(kIrqFifoEmpty);
  }

  void push_encoded(const EncodedInstr& words) { push(decode(words)); }

  /// Dispatch the next command to the MDMC; returns cycles consumed.
  std::uint64_t step() {
    if (q_.empty()) return 0;
    const Instr in = q_.front();
    q_.pop_front();
    const std::uint64_t cycles = mdmc_.execute(in);
    if (q_.empty()) gpcfg_.raise_irq(kIrqFifoEmpty);
    return cycles;
  }

  /// Drain the whole queue; returns total cycles.
  std::uint64_t run() {
    std::uint64_t total = 0;
    while (!q_.empty()) total += step();
    return total;
  }

 private:
  std::size_t depth_;
  Mdmc& mdmc_;
  Gpcfg& gpcfg_;
  std::deque<Instr> q_;
};

}  // namespace cofhee::chip
